package verilog

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"desync/internal/netlist"
	"desync/internal/stdcells"
)

// Property: any instance/net name round-trips through write + read (the
// escaping rules cover arbitrary printable identifiers).
func TestQuickNameEscaping(t *testing.T) {
	l := stdcells.New(stdcells.HighSpeed)
	f := func(raw string) bool {
		name := sanitizeName(raw)
		if name == "" {
			return true
		}
		d := netlist.NewDesign("top", l)
		m := d.Top
		m.AddPort("a", netlist.In)
		m.AddPort("z", netlist.Out)
		in := m.AddInst(name, l.MustCell("INVX1"))
		m.MustConnect(in, "A", m.Net("a"))
		m.MustConnect(in, "Z", m.Net("z"))
		out := Write(d)
		d2, err := Read(out, l, "")
		if err != nil {
			t.Logf("name %q: %v\n%s", name, err, out)
			return false
		}
		return d2.Top.Inst(name) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// sanitizeName keeps printable non-space ASCII (escaped identifiers cannot
// contain whitespace, and backslashes begin a new escape).
func sanitizeName(raw string) string {
	var sb strings.Builder
	for _, r := range raw {
		if r > ' ' && r < 127 && r != '\\' {
			sb.WriteRune(r)
		}
	}
	s := sb.String()
	if len(s) > 40 {
		s = s[:40]
	}
	return s
}

// Property: random bus widths and wirings round-trip with identical
// connectivity.
func TestQuickBusRoundTrip(t *testing.T) {
	l := stdcells.New(stdcells.HighSpeed)
	f := func(w8 uint8, pick uint16) bool {
		w := int(w8%12) + 2
		d := netlist.NewDesign("top", l)
		m := d.Top
		for i := 0; i < w; i++ {
			m.AddPort(fmt.Sprintf("din[%d]", i), netlist.In)
			m.AddPort(fmt.Sprintf("dout[%d]", i), netlist.Out)
		}
		// Wire each output from a pseudo-randomly picked input via INV.
		for i := 0; i < w; i++ {
			src := int(pick>>uint(i%8)) % w
			if src < 0 {
				src = -src
			}
			g := m.AddInst(fmt.Sprintf("g%d", i), l.MustCell("INVX1"))
			m.MustConnect(g, "A", m.Net(fmt.Sprintf("din[%d]", src)))
			m.MustConnect(g, "Z", m.Net(fmt.Sprintf("dout[%d]", i)))
		}
		out := Write(d)
		d2, err := Read(out, l, "")
		if err != nil {
			t.Logf("%v\n%s", err, out)
			return false
		}
		for i := 0; i < w; i++ {
			g1 := d.Top.Inst(fmt.Sprintf("g%d", i))
			g2 := d2.Top.Inst(fmt.Sprintf("g%d", i))
			if g2 == nil || g2.Conn("A").Name != g1.Conn("A").Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
