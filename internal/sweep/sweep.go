// Package sweep is the flow's robustness-surface engine: a streaming
// scenario sweep over the cross-product of inter-die corners (global delay
// scales), Monte Carlo chips (per-instance intra-die delay draws) and the
// fault matrix of internal/faults. Flow equivalence (§2.1) is what makes
// the product well-posed — a correct desynchronized design produces the
// same capture-value sequence at every operating point, so one nominal
// golden run classifies every cell of the product.
//
// The engine is built for runs that are too big to babysit: results stream
// through par.Fold in strict scenario order into bounded-memory aggregates
// (per-corner detection rates with Wilson intervals, P² period quantiles)
// and an append-only checkpoint journal, scenarios that panic or blow a
// wall-clock deadline are quarantined as records instead of killing the
// sweep, and an interrupted run resumes from its journal to the same final
// aggregates, byte for byte, at any worker count.
package sweep

import (
	"fmt"

	"desync/internal/faults"
)

// Space is the scenario cross-product. Scenario index i decodes as
// fault-fastest: fault = i mod F, chip = (i/F) mod C, corner = i/(F*C) —
// so a journal prefix always covers whole low corners first and the
// per-corner aggregates fill one corner at a time.
type Space struct {
	// Corners are the inter-die operating points, as global delay scales on
	// top of the campaign's nominal corner (1 = nominal); empty means {1}.
	Corners []float64
	// Chips is the number of Monte Carlo intra-die draws per corner; <= 1
	// means a single nominal chip (no draw).
	Chips int
	// Sigma is the per-instance uniform delay spread of a chip draw
	// ([1-Sigma, 1+Sigma]); 0 makes every chip nominal.
	Sigma float64
	// Faults is the injected fault matrix.
	Faults []faults.Fault
}

// normalize resolves the zero values ({1} corners, 1 chip).
func (sp Space) normalize() Space {
	if len(sp.Corners) == 0 {
		sp.Corners = []float64{1}
	}
	if sp.Chips < 1 {
		sp.Chips = 1
	}
	if sp.Sigma <= 0 {
		sp.Sigma = 0
	}
	return sp
}

// Size is the scenario count |corners| * chips * |faults|.
func (sp Space) Size() int {
	sp = sp.normalize()
	return len(sp.Corners) * sp.Chips * len(sp.Faults)
}

// Decode maps a scenario index to its (corner, chip, fault) cell.
func (sp Space) Decode(i int) (corner, chip, fault int) {
	sp = sp.normalize()
	f := len(sp.Faults)
	return i / (f * sp.Chips), (i / f) % sp.Chips, i % f
}

// Kind says why a quarantined scenario failed.
type Kind string

const (
	// KindPanic: the scenario's simulation panicked; the quarantine boundary
	// turned it into a record.
	KindPanic Kind = "panic"
	// KindTimeout: the scenario exceeded the per-scenario wall-clock
	// deadline and was aborted through the simulator's interrupt hook.
	KindTimeout Kind = "timeout"
	// KindError: the scenario returned an ordinary error (bad net name,
	// stimulus failure).
	KindError Kind = "error"
)

// ScenarioError is one quarantined scenario failure: recorded, counted
// against -max-failures, never fatal to the sweep.
type ScenarioError struct {
	Kind Kind   `json:"kind"`
	Msg  string `json:"msg"`
}

func (e *ScenarioError) Error() string {
	return fmt.Sprintf("sweep: scenario %s: %s", e.Kind, e.Msg)
}

// Record is one journaled scenario result: either an Outcome or a
// quarantined Failure, never both. Records carry no wall-clock fields —
// everything in them must replay byte-identically on resume.
type Record struct {
	// Index is the scenario's position in the sweep (Space.Decode order).
	Index  int `json:"index"`
	Corner int `json:"corner"`
	Chip   int `json:"chip"`
	Fault  int `json:"fault"`

	Outcome *faults.Outcome `json:"outcome,omitempty"`
	Failure *ScenarioError  `json:"failure,omitempty"`
}
