package expt

import (
	"context"
	"fmt"

	"desync/internal/faults"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
)

// FaultCampaignConfig sizes the DLX fault-injection campaign.
type FaultCampaignConfig struct {
	// Cycles sets the run length in original clock periods (default 12).
	Cycles int
	// DelayFactor slows each faulted gate by this multiple (default 40 —
	// far past the 1.15 sizing margin, so the matched element demonstrably
	// no longer covers the path).
	DelayFactor float64
	// DelayPerRegion picks this many of the most active datapath gates per
	// region (default 2).
	DelayPerRegion int
	// Glitches adds the pulse faults (informative: glitches may escape).
	Glitches bool
	// Parallelism bounds the campaign's workers (one fault per task); 0
	// means GOMAXPROCS. The report is identical at any value.
	Parallelism int
}

// NewDLXCampaign arms a fault campaign on an already-desynchronized DLX:
// the same reset sequencing as MeasureDDLX, a deadlock watchdog spanning a
// few effective periods, and the latch setup guard.
func NewDLXCampaign(ctx context.Context, f *DLXFlow, cycles, parallelism int) (*faults.Campaign, error) {
	return NewCampaign(ctx, f.Desync.Top, f.Period, cycles, parallelism)
}

// NewCampaign arms a fault campaign on any desynchronized top whose reset
// follows the flow's convention (an rstn input plus the inserted
// rst_desync, with delsel[2:0] tied low when present) — every generator
// ParseSpec builds qualifies. The watchdog horizon and quiescence gap scale
// with the design's original clock period.
func NewCampaign(ctx context.Context, top *netlist.Module, period float64, cycles, parallelism int) (*faults.Campaign, error) {
	if cycles <= 0 {
		cycles = 12
	}
	stim := func(s *sim.Simulator) error {
		if top.Port("delsel[0]") != nil {
			for i := 0; i < 3; i++ {
				if err := s.Drive(fmt.Sprintf("delsel[%d]", i), logic.L, 0); err != nil {
					return err
				}
			}
		}
		s.Drive("rstn", logic.L, 0)
		s.Drive("rst_desync", logic.H, 0)
		s.Drive("rstn", logic.H, 1)
		return s.Drive("rst_desync", logic.L, 2)
	}
	return faults.NewCampaign(ctx, top, faults.Config{
		Stimulus:      stim,
		Horizon:       2 + period*float64(cycles)*6,
		QuiescenceGap: 8 * period,
		SetupGuard:    true,
		Parallelism:   parallelism,
	})
}

// RunDLXFaultCampaign desynchronizes the DLX (when f is nil), then injects
// the configured delay, stuck-at and optional glitch faults and classifies
// every one. The flow's §2.5/§4.6 robustness claims predict — and the
// acceptance tests require — that every under-margin delay fault and every
// control stuck-at fault is detected.
func RunDLXFaultCampaign(ctx context.Context, f *DLXFlow, cfg FaultCampaignConfig) (*faults.Report, error) {
	if f == nil {
		var err error
		if f, err = RunDLXFlow(FlowConfig{Parallelism: cfg.Parallelism}); err != nil {
			return nil, err
		}
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 12
	}
	if cfg.DelayFactor == 0 {
		cfg.DelayFactor = 40
	}
	if cfg.DelayPerRegion == 0 {
		cfg.DelayPerRegion = 2
	}
	c, err := NewDLXCampaign(ctx, f, cfg.Cycles, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	list := c.DelayFaults(cfg.DelayFactor, cfg.DelayPerRegion)
	list = append(list, c.ControlStuckFaults()...)
	if cfg.Glitches {
		// Pulses land mid-run, well past the boot transient.
		mid := 2 + f.Period*float64(cfg.Cycles)*3
		list = append(list, c.GlitchFaults(mid, 0.3)...)
	}
	return c.Run(ctx, list)
}
