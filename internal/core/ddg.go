package core

import (
	"sort"
	"strings"

	"desync/internal/netlist"
)

// DDG is the data dependency graph of §2.4.1/§3.2.4: nodes are regions,
// a directed edge u→v records a path from a register output of region u
// into a register of region v.
type DDG struct {
	// Succs[u] lists the successor regions of u, sorted.
	Succs map[int][]int
	// Preds[v] lists the predecessor regions of v, sorted.
	Preds map[int][]int
	// Nodes lists all regions that contain sequential elements, sorted.
	Nodes []int
}

// BuildDDG derives the dependency graph from a grouped, latch-substituted
// (or still flip-flop-based) module. An edge u→v exists when a sequential
// output of group u reaches a data input of group v — either through
// combinational logic of group v or directly. The internal master→slave
// connection of a substituted pair is not a dependency. Self edges (a
// region feeding its own cloud) are kept: the controller network needs the
// region's own request in its rendezvous.
func BuildDDG(m *netlist.Module) *DDG {
	edges := map[[2]int]bool{}
	hasSeq := map[int]bool{}
	for _, in := range m.Insts {
		if in.Cell == nil {
			continue
		}
		if in.Cell.IsSequential() && in.Cell.Kind != netlist.KindCElem && in.Cell.Kind != netlist.KindGC {
			hasSeq[in.Group] = true
		}
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			pd := in.Cell.Pin(pin)
			if pd == nil || pd.Dir != netlist.In || n.FalsePath {
				continue
			}
			if pd.Class != netlist.ClassData && pd.Class != netlist.ClassScanIn {
				continue
			}
			drv := n.Driver.Inst
			if drv == nil || drv.Cell == nil || drv.Cell.Seq == nil {
				continue
			}
			if isInternalPair(drv, in) {
				continue
			}
			// Direct register-to-register hops inside one region (signal
			// history chains, §3.2.2) are ordered by the region's own
			// master/slave handshake and hold margins; they are not a
			// region-level data dependency. Combinationally-mediated
			// self-edges (a region's cloud reading its own registers) stay.
			if in.Cell.Seq != nil && drv.Group == in.Group {
				continue
			}
			edges[[2]int{drv.Group, in.Group}] = true
		}
	}
	d := &DDG{Succs: map[int][]int{}, Preds: map[int][]int{}}
	for e := range edges {
		if !hasSeq[e[0]] || !hasSeq[e[1]] {
			continue
		}
		d.Succs[e[0]] = append(d.Succs[e[0]], e[1])
		d.Preds[e[1]] = append(d.Preds[e[1]], e[0])
	}
	nodeSet := map[int]bool{}
	for g := range hasSeq {
		nodeSet[g] = true
	}
	for g := range nodeSet {
		d.Nodes = append(d.Nodes, g)
	}
	sort.Ints(d.Nodes)
	for _, l := range d.Succs {
		sort.Ints(l)
	}
	for _, l := range d.Preds {
		sort.Ints(l)
	}
	return d
}

// isInternalPair reports whether drv→sink is the master→slave hop of one
// substituted flip-flop.
func isInternalPair(drv, sink *netlist.Inst) bool {
	if drv.Origin != "ffsub" || sink.Origin != "ffsub" {
		return false
	}
	dp := strings.TrimSuffix(drv.Name, "/ml")
	sp := strings.TrimSuffix(sink.Name, "/sl")
	return dp == sp && dp != drv.Name && sp != sink.Name
}
