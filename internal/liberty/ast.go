// Package liberty reads and writes a practical subset of the Liberty (.lib)
// standard-cell library format. The flow uses it the way the paper does
// (§3.1.1): libraries are characterized per corner as .lib text, and the
// desynchronization tool's library-preparation step parses that text to
// extract the "gatefile" information — cell names, types, pin roles,
// functions and timing.
//
// The subset covers: nested group syntax, simple and quoted attribute
// values, complex attributes (values("...")), cell/pin/ff/latch/timing
// groups, scalar delay tables, setup/hold constraint arcs and a
// vendor-extension pair of attributes for C-Muller elements.
package liberty

import (
	"fmt"
	"strings"
)

// Group is a Liberty group statement: type (args) { attrs; subgroups }.
type Group struct {
	Type   string
	Args   []string
	Attrs  []Attr
	Groups []*Group
}

// Attr is a simple (name : value;) or complex (name (v1, v2);) attribute.
type Attr struct {
	Name    string
	Value   string   // simple form; unquoted
	Complex []string // complex form arguments; nil for simple attributes
}

// Attr returns the first simple attribute with the given name, or "".
func (g *Group) Attr(name string) string {
	for _, a := range g.Attrs {
		if a.Name == name && a.Complex == nil {
			return a.Value
		}
	}
	return ""
}

// Sub returns all subgroups of the given type.
func (g *Group) Sub(typ string) []*Group {
	var out []*Group
	for _, s := range g.Groups {
		if s.Type == typ {
			out = append(out, s)
		}
	}
	return out
}

// First returns the first subgroup of the given type, or nil.
func (g *Group) First(typ string) *Group {
	for _, s := range g.Groups {
		if s.Type == typ {
			return s
		}
	}
	return nil
}

// Parse parses Liberty text into its root group (normally "library").
func Parse(src string) (*Group, error) {
	t := &tokenizer{src: src, line: 1}
	toks, err := t.tokenize()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("liberty: trailing tokens after library group (line %d)", p.toks[p.pos].line)
	}
	return g, nil
}

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokString
	tokPunct // ( ) { } : ; ,
)

type token struct {
	kind tokKind
	text string
	line int
}

type tokenizer struct {
	src  string
	pos  int
	line int
}

func (t *tokenizer) tokenize() ([]token, error) {
	var toks []token
	for t.pos < len(t.src) {
		c := t.src[t.pos]
		switch {
		case c == '\n':
			t.line++
			t.pos++
		case c == ' ' || c == '\t' || c == '\r':
			t.pos++
		case c == '/' && t.pos+1 < len(t.src) && t.src[t.pos+1] == '*':
			end := strings.Index(t.src[t.pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("liberty: unterminated comment at line %d", t.line)
			}
			t.line += strings.Count(t.src[t.pos:t.pos+2+end+2], "\n")
			t.pos += 2 + end + 2
		case c == '/' && t.pos+1 < len(t.src) && t.src[t.pos+1] == '/':
			nl := strings.IndexByte(t.src[t.pos:], '\n')
			if nl < 0 {
				t.pos = len(t.src)
			} else {
				t.pos += nl
			}
		case c == '\\' && t.pos+1 < len(t.src) && (t.src[t.pos+1] == '\n' || t.src[t.pos+1] == '\r'):
			// Line continuation.
			t.pos++
		case c == '"':
			end := t.pos + 1
			for end < len(t.src) && t.src[end] != '"' {
				if t.src[end] == '\n' {
					t.line++
				}
				end++
			}
			if end >= len(t.src) {
				return nil, fmt.Errorf("liberty: unterminated string at line %d", t.line)
			}
			toks = append(toks, token{tokString, t.src[t.pos+1 : end], t.line})
			t.pos = end + 1
		case strings.IndexByte("(){}:;,", c) >= 0:
			toks = append(toks, token{tokPunct, string(c), t.line})
			t.pos++
		default:
			start := t.pos
			for t.pos < len(t.src) && strings.IndexByte(" \t\r\n(){}:;,\"", t.src[t.pos]) < 0 {
				t.pos++
			}
			if t.pos == start {
				return nil, fmt.Errorf("liberty: unexpected character %q at line %d", c, t.line)
			}
			toks = append(toks, token{tokIdent, t.src[start:t.pos], t.line})
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() *token {
	if p.pos >= len(p.toks) {
		return nil
	}
	return &p.toks[p.pos]
}

func (p *parser) expect(kind tokKind, text string) (*token, error) {
	tk := p.peek()
	if tk == nil {
		return nil, fmt.Errorf("liberty: unexpected end of input, expected %q", text)
	}
	if tk.kind != kind || (text != "" && tk.text != text) {
		return nil, fmt.Errorf("liberty: line %d: expected %q, got %q", tk.line, text, tk.text)
	}
	p.pos++
	return tk, nil
}

// parseGroup parses: ident ( args ) { body }
func (p *parser) parseGroup() (*Group, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	g := &Group{Type: name.text}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for {
		tk := p.peek()
		if tk == nil {
			return nil, fmt.Errorf("liberty: unexpected end inside group args of %s", g.Type)
		}
		if tk.kind == tokPunct && tk.text == ")" {
			p.pos++
			break
		}
		if tk.kind == tokPunct && tk.text == "," {
			p.pos++
			continue
		}
		g.Args = append(g.Args, tk.text)
		p.pos++
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for {
		tk := p.peek()
		if tk == nil {
			return nil, fmt.Errorf("liberty: unexpected end inside group body of %s", g.Type)
		}
		if tk.kind == tokPunct && tk.text == "}" {
			p.pos++
			break
		}
		if err := p.parseStatement(g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// parseStatement parses one of:
//
//	name : value ;
//	name ( args ) ;          (complex attribute)
//	name ( args ) { ... }    (subgroup)
func (p *parser) parseStatement(g *Group) error {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	tk := p.peek()
	if tk == nil {
		return fmt.Errorf("liberty: unexpected end after %q", name.text)
	}
	if tk.kind == tokPunct && tk.text == ":" {
		p.pos++
		val := p.peek()
		if val == nil || (val.kind == tokPunct && val.text != "(") {
			return fmt.Errorf("liberty: line %d: missing value for attribute %s", name.line, name.text)
		}
		p.pos++
		// Values may be multi-token up to the semicolon (e.g. "1 ns").
		text := val.text
		for {
			nxt := p.peek()
			if nxt == nil {
				return fmt.Errorf("liberty: missing ';' after attribute %s", name.text)
			}
			if nxt.kind == tokPunct && nxt.text == ";" {
				p.pos++
				break
			}
			text += " " + nxt.text
			p.pos++
		}
		g.Attrs = append(g.Attrs, Attr{Name: name.text, Value: text})
		return nil
	}
	if tk.kind == tokPunct && tk.text == "(" {
		// Look ahead past the closing paren to decide attr vs subgroup.
		depth := 0
		i := p.pos
		for ; i < len(p.toks); i++ {
			if p.toks[i].kind != tokPunct {
				continue
			}
			if p.toks[i].text == "(" {
				depth++
			} else if p.toks[i].text == ")" {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if i+1 < len(p.toks) && p.toks[i+1].kind == tokPunct && p.toks[i+1].text == "{" {
			p.pos-- // rewind over the group name
			sub, err := p.parseGroup()
			if err != nil {
				return err
			}
			g.Groups = append(g.Groups, sub)
			return nil
		}
		// Complex attribute.
		p.pos++ // consume "("
		attr := Attr{Name: name.text, Complex: []string{}}
		for {
			tk := p.peek()
			if tk == nil {
				return fmt.Errorf("liberty: unexpected end in complex attribute %s", name.text)
			}
			if tk.kind == tokPunct && tk.text == ")" {
				p.pos++
				break
			}
			if tk.kind == tokPunct && tk.text == "," {
				p.pos++
				continue
			}
			attr.Complex = append(attr.Complex, tk.text)
			p.pos++
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return fmt.Errorf("liberty: complex attribute %s: %v", name.text, err)
		}
		g.Attrs = append(g.Attrs, attr)
		return nil
	}
	return fmt.Errorf("liberty: line %d: unexpected token %q after %q", tk.line, tk.text, name.text)
}
