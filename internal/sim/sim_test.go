package sim

import (
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/stdcells"
)

func hs() *netlist.Library { return stdcells.New(stdcells.HighSpeed) }

func TestCombPropagation(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("b", netlist.In)
	m.AddPort("z", netlist.Out)
	g := m.AddInst("g", lib.MustCell("NAND2X1"))
	m.MustConnect(g, "A", m.Net("a"))
	m.MustConnect(g, "B", m.Net("b"))
	m.MustConnect(g, "Z", m.Net("z"))

	s, err := New(m, Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drive("a", logic.H, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Drive("b", logic.H, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	if s.Value("z") != logic.L {
		t.Fatalf("z = %v, want 0", s.Value("z"))
	}
	if err := s.Drive("a", logic.L, s.Now()+1); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	if s.Value("z") != logic.H {
		t.Fatalf("z = %v, want 1", s.Value("z"))
	}
}

func TestXPropagation(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	b := m.AddNet("bx") // never driven: stays X
	g := m.AddInst("g", lib.MustCell("AND2X1"))
	m.MustConnect(g, "A", m.Net("a"))
	m.MustConnect(g, "B", b)
	m.MustConnect(g, "Z", m.Net("z"))
	s, _ := New(m, Config{Corner: netlist.Worst})
	// 0 dominates X for AND.
	s.Drive("a", logic.L, 0)
	s.RunUntilQuiescent()
	if s.Value("z") != logic.L {
		t.Fatalf("0&X = %v, want 0", s.Value("z"))
	}
}

// A 4-bit synchronous counter built from XOR/AND + DFFs: checks FF edge
// semantics and capture recording.
func buildCounter(lib *netlist.Library, width int) *netlist.Module {
	m := netlist.NewModule("counter")
	m.AddPort("ck", netlist.In)
	m.AddPort("rstn", netlist.In)
	carry := (*netlist.Net)(nil)
	for i := 0; i < width; i++ {
		q := m.AddNet(busBit("q", i))
		d := m.AddNet(busBit("d", i))
		ff := m.AddInst(busBit("r", i), lib.MustCell("DFFRQX1"))
		m.MustConnect(ff, "D", d)
		m.MustConnect(ff, "CK", m.Net("ck"))
		m.MustConnect(ff, "RN", m.Net("rstn"))
		m.MustConnect(ff, "Q", q)
		if i == 0 {
			inv := m.AddInst("inv0", lib.MustCell("INVX1"))
			m.MustConnect(inv, "A", q)
			m.MustConnect(inv, "Z", d)
			carry = q
		} else {
			x := m.AddInst(busBit("x", i), lib.MustCell("XOR2X1"))
			m.MustConnect(x, "A", q)
			m.MustConnect(x, "B", carry)
			m.MustConnect(x, "Z", d)
			if i < width-1 {
				newCarry := m.AddNet(busBit("c", i))
				a := m.AddInst(busBit("a", i), lib.MustCell("AND2X1"))
				m.MustConnect(a, "A", q)
				m.MustConnect(a, "B", carry)
				m.MustConnect(a, "Z", newCarry)
				carry = newCarry
			}
		}
	}
	return m
}

func busBit(base string, i int) string {
	return base + "[" + string(rune('0'+i)) + "]"
}

func TestSynchronousCounter(t *testing.T) {
	lib := hs()
	m := buildCounter(lib, 4)
	s, err := New(m, Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	period := 2.0
	s.Drive("rstn", logic.L, 0)
	s.Drive("rstn", logic.H, period*1.5)
	s.Clock("ck", period, 0, period*20)
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	got := s.Vector("q", 4)
	if !got.Known() {
		t.Fatalf("counter value unknown: %v", got)
	}
	// Reset releases after the first edge; count the remaining edges.
	// Clock rises at period/2 + k*period (Clock drives low first).
	// Edges at 1, 3, 5, ..., 39 -> 20 edges; reset active until 3.0 so
	// edges at 1 and 3(?) forced; count from the recorded captures of r[0].
	caps := s.Captures["r[0]"]
	if len(caps) == 0 {
		t.Fatal("no captures recorded")
	}
	// The counter increments once running; verify against the capture
	// sequence of bit 0 (alternating 0,1 once out of reset).
	var incs uint64
	for _, v := range caps {
		if v == logic.H {
			incs++
		}
	}
	if logic.FromBool(got.Uint()&1 == 1) != caps[len(caps)-1] {
		t.Fatalf("q[0]=%v inconsistent with last capture %v", got[0], caps[len(caps)-1])
	}
	if incs == 0 {
		t.Fatal("counter never incremented")
	}
}

func TestAsyncResetDominates(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("ck", netlist.In)
	m.AddPort("rstn", netlist.In)
	m.AddPort("d", netlist.In)
	q := m.AddNet("q")
	ff := m.AddInst("ff", lib.MustCell("DFFRQX1"))
	m.MustConnect(ff, "D", m.Net("d"))
	m.MustConnect(ff, "CK", m.Net("ck"))
	m.MustConnect(ff, "RN", m.Net("rstn"))
	m.MustConnect(ff, "Q", q)

	s, _ := New(m, Config{Corner: netlist.Worst})
	s.Drive("d", logic.H, 0)
	s.Drive("rstn", logic.H, 0)
	s.Clock("ck", 2, 0, 10)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.H {
		t.Fatalf("q=%v want 1 after clocking d=1", s.Value("q"))
	}
	// Assert reset with no clock: q falls asynchronously.
	s.Drive("rstn", logic.L, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.L {
		t.Fatalf("q=%v want 0 under async reset", s.Value("q"))
	}
	// Clock edges while reset held: q stays 0 even with d=1.
	s.Clock("ck", 2, s.Now()+1, s.Now()+9)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.L {
		t.Fatalf("q=%v want 0 while reset held", s.Value("q"))
	}
}

func TestLatchTransparency(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("d", netlist.In)
	m.AddPort("g", netlist.In)
	q := m.AddNet("q")
	la := m.AddInst("la", lib.MustCell("LATQX1"))
	m.MustConnect(la, "D", m.Net("d"))
	m.MustConnect(la, "G", m.Net("g"))
	m.MustConnect(la, "Q", q)

	s, _ := New(m, Config{Corner: netlist.Worst})
	s.Drive("g", logic.L, 0)
	s.Drive("d", logic.H, 0)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.X {
		t.Fatalf("opaque latch should hold X, got %v", s.Value("q"))
	}
	s.Drive("g", logic.H, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.H {
		t.Fatalf("transparent latch should follow d=1, got %v", s.Value("q"))
	}
	s.Drive("d", logic.L, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.L {
		t.Fatal("transparent latch should track d")
	}
	// Close, then change d: q holds.
	s.Drive("g", logic.L, s.Now()+1)
	s.RunUntilQuiescent()
	s.Drive("d", logic.H, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.L {
		t.Fatal("opaque latch should hold")
	}
	// Closing edge recorded a capture of the held value.
	caps := s.Captures["la"]
	if len(caps) != 1 || caps[0] != logic.L {
		t.Fatalf("captures = %v, want [0]", caps)
	}
}

func TestCElementHold(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("b", netlist.In)
	q := m.AddNet("q")
	c := m.AddInst("c", lib.MustCell("C2X1"))
	m.MustConnect(c, "A", m.Net("a"))
	m.MustConnect(c, "B", m.Net("b"))
	m.MustConnect(c, "Q", q)

	s, _ := New(m, Config{Corner: netlist.Worst})
	s.Drive("a", logic.L, 0)
	s.Drive("b", logic.L, 0)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.L {
		t.Fatalf("all-0 inputs: q=%v want 0", s.Value("q"))
	}
	s.Drive("a", logic.H, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.L {
		t.Fatal("mixed inputs must hold")
	}
	s.Drive("b", logic.H, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.H {
		t.Fatal("all-1 inputs must set")
	}
	s.Drive("a", logic.L, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.H {
		t.Fatal("mixed inputs must hold 1")
	}
}

func TestClockGatedFF(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	for _, p := range []string{"ck", "en", "d"} {
		m.AddPort(p, netlist.In)
	}
	q := m.AddNet("q")
	ff := m.AddInst("ff", lib.MustCell("DFFCGX1"))
	m.MustConnect(ff, "D", m.Net("d"))
	m.MustConnect(ff, "EN", m.Net("en"))
	m.MustConnect(ff, "CK", m.Net("ck"))
	m.MustConnect(ff, "Q", q)

	s, _ := New(m, Config{Corner: netlist.Worst})
	s.Drive("d", logic.H, 0)
	s.Drive("en", logic.L, 0)
	s.Clock("ck", 2, 0, 6)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.X {
		t.Fatalf("gated-off FF should not capture, q=%v", s.Value("q"))
	}
	s.Drive("en", logic.H, s.Now()+0.5)
	s.Clock("ck", 2, s.Now()+1, s.Now()+5)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.H {
		t.Fatalf("enabled FF should capture, q=%v", s.Value("q"))
	}
}

func TestScanFF(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	for _, p := range []string{"ck", "se", "si", "d"} {
		m.AddPort(p, netlist.In)
	}
	q := m.AddNet("q")
	ff := m.AddInst("ff", lib.MustCell("SDFFQX1"))
	m.MustConnect(ff, "D", m.Net("d"))
	m.MustConnect(ff, "SI", m.Net("si"))
	m.MustConnect(ff, "SE", m.Net("se"))
	m.MustConnect(ff, "CK", m.Net("ck"))
	m.MustConnect(ff, "Q", q)

	s, _ := New(m, Config{Corner: netlist.Worst})
	s.Drive("d", logic.L, 0)
	s.Drive("si", logic.H, 0)
	s.Drive("se", logic.H, 0)
	s.Clock("ck", 2, 0, 3)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.H {
		t.Fatalf("scan mode should capture SI, q=%v", s.Value("q"))
	}
	s.Drive("se", logic.L, s.Now()+0.5)
	s.Clock("ck", 2, s.Now()+1, s.Now()+3)
	s.RunUntilQuiescent()
	if s.Value("q") != logic.L {
		t.Fatalf("functional mode should capture D, q=%v", s.Value("q"))
	}
}

// Inertial semantics: a pulse shorter than the gate delay does not emerge.
func TestInertialGlitchSuppression(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	g := m.AddInst("g", lib.MustCell("BUFX1"))
	m.MustConnect(g, "A", m.Net("a"))
	m.MustConnect(g, "Z", m.Net("z"))

	s, _ := New(m, Config{Corner: netlist.Worst})
	s.Drive("a", logic.L, 0)
	s.RunUntilQuiescent()
	togglesBefore := s.Toggles[s.netIdx[m.Net("z")]]
	// Pulse much shorter than the buffer delay.
	bufDelay := lib.MustCell("BUFX1").Arcs[0].Rise.At(netlist.Worst)
	s.Drive("a", logic.H, s.Now()+1)
	s.Drive("a", logic.L, s.Now()+1+bufDelay/10)
	s.RunUntilQuiescent()
	toggles := s.Toggles[s.netIdx[m.Net("z")]] - togglesBefore
	if toggles != 0 {
		t.Fatalf("glitch propagated: %d extra toggles on z", toggles)
	}
}

func TestEventBudgetCatchesOscillation(t *testing.T) {
	lib := hs()
	// A gated ring oscillator: z = NAND(en, z).
	m := netlist.NewModule("osc")
	m.AddPort("en", netlist.In)
	z := m.AddNet("z")
	n := m.AddInst("n", lib.MustCell("NAND2X1"))
	m.MustConnect(n, "A", m.Net("en"))
	m.MustConnect(n, "B", z)
	m.MustConnect(n, "Z", z)
	s, _ := New(m, Config{Corner: netlist.Worst, MaxEvents: 1000})
	s.Drive("en", logic.L, 0)
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	if s.Value("z") != logic.H {
		t.Fatalf("z=%v want 1 with en=0", s.Value("z"))
	}
	s.Drive("en", logic.H, s.Now()+1)
	if err := s.RunUntilQuiescent(); err == nil {
		t.Fatal("expected oscillation to exhaust the event budget")
	}
}

func TestScaleSlowsEverything(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	g := m.AddInst("g", lib.MustCell("INVX1"))
	m.MustConnect(g, "A", m.Net("a"))
	m.MustConnect(g, "Z", m.Net("z"))

	run := func(scale float64) float64 {
		s, _ := New(m, Config{Corner: netlist.Worst, Scale: scale})
		var tEdge float64
		s.OnChange("z", func(tm float64, v logic.V) {
			if v == logic.L {
				tEdge = tm
			}
		})
		s.Drive("a", logic.H, 1)
		s.RunUntilQuiescent()
		return tEdge
	}
	t1, t2 := run(1), run(2)
	if t2-1 <= t1-1 || !approx((t2-1)/(t1-1), 2, 1e-6) {
		t.Fatalf("scale not applied: %.5f vs %.5f", t1, t2)
	}
}

func approx(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
