package dft

import (
	"testing"

	"desync/internal/designs"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/stdcells"
)

func small(t *testing.T) *netlist.Design {
	t.Helper()
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInsertScanStructure(t *testing.T) {
	d := small(t)
	before := d.Top.ComputeStats()
	res, err := InsertScan(d)
	if err != nil {
		t.Fatal(err)
	}
	after := d.Top.ComputeStats()
	if res.Converted != before.FFs {
		t.Fatalf("converted %d of %d FFs", res.Converted, before.FFs)
	}
	if after.FFs != before.FFs {
		t.Fatalf("FF count changed: %d -> %d", before.FFs, after.FFs)
	}
	if after.SeqArea <= before.SeqArea {
		t.Fatal("scan cells should be larger")
	}
	for _, p := range []string{"scan_in", "scan_en", "scan_out"} {
		if d.Top.Port(p) == nil {
			t.Fatalf("port %s missing", p)
		}
	}
	if errs := d.Top.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	// Every scan FF's SI must be driven by another FF's Q or scan_in.
	for _, in := range d.Top.Insts {
		if in.Cell == nil || in.Cell.Seq == nil || in.Cell.Seq.ScanIn == "" {
			continue
		}
		si := in.Conn(in.Cell.Seq.ScanIn)
		drv := si.Driver
		if drv.Inst == nil {
			if si.Name != "scan_in" {
				t.Fatalf("%s SI driven by %s", in.Name, si.Name)
			}
			continue
		}
		if drv.Inst.Cell.Kind != netlist.KindFF {
			t.Fatalf("%s SI driven by non-FF %s", in.Name, drv.Inst.Name)
		}
	}
}

// Shift a known pattern through the whole chain: after chain-length cycles
// in scan mode, scan_out replays scan_in.
func TestScanChainShifts(t *testing.T) {
	d := small(t)
	res, err := InsertScan(d)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d.Top, sim.Config{Corner: netlist.Best})
	if err != nil {
		t.Fatal(err)
	}
	period := 6.0
	n := res.ChainLen
	s.Drive("rstn", logic.H, 0) // no functional reset: scan controls state
	s.Drive("scan_en", logic.H, 0)
	pattern := []logic.V{logic.H, logic.L, logic.H, logic.H, logic.L}
	// Drive the pattern then zeros; sample scan_out after n+len cycles.
	for i := 0; i < n+len(pattern)+2; i++ {
		v := logic.L
		if i < len(pattern) {
			v = pattern[i]
		}
		s.Drive("scan_in", v, float64(i)*period+0.1)
	}
	s.Clock("clk", period, 0, float64(n+len(pattern)+2)*period)
	var outs []logic.V
	s.OnChange("clk", func(tm float64, v logic.V) {
		if v == logic.L { // sample on the falling edge
			outs = append(outs, s.Value("scan_out"))
		}
	})
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	// outs[0] is the initial clock-low sample; outs[k+1] is scan_out after
	// rising edge k. The bit driven before edge i reaches the last of the n
	// chain positions after edge n-1+i.
	for i, want := range pattern {
		idx := n + i
		if idx >= len(outs) {
			t.Fatalf("not enough samples: %d", len(outs))
		}
		if outs[idx] != want {
			t.Fatalf("chain bit %d: got %v want %v", i, outs[idx], want)
		}
	}
}

func TestFaultCoverage(t *testing.T) {
	d := small(t)
	if _, err := InsertScan(d); err != nil {
		t.Fatal(err)
	}
	rep, err := GenerateVectors(d, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults < 1000 {
		t.Fatalf("fault list too small: %d", rep.Faults)
	}
	if rep.Coverage() < 0.55 {
		t.Fatalf("random-pattern coverage %.2f implausibly low", rep.Coverage())
	}
	if rep.Coverage() > 1.0 {
		t.Fatal("coverage > 1")
	}
	// More vectors detect at least as many faults.
	rep2, err := GenerateVectors(d, 48, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Detected < rep.Detected {
		t.Fatal("coverage decreased with more vectors")
	}
}

func TestInsertScanRejectsQNUsers(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	d := netlist.NewDesign("m", lib)
	m := d.Top
	m.AddPort("clk", netlist.In)
	m.AddPort("d", netlist.In)
	m.AddPort("z", netlist.Out)
	ff := m.AddInst("f", lib.MustCell("DFFQX1"))
	m.MustConnect(ff, "D", m.Net("d"))
	m.MustConnect(ff, "CK", m.Net("clk"))
	m.MustConnect(ff, "Q", m.AddNet("q"))
	m.MustConnect(ff, "QN", m.Net("z")) // QN in use
	if _, err := InsertScan(d); err == nil {
		t.Fatal("expected QN rejection")
	}
}
