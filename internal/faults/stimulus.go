package faults

import (
	"strings"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
)

// ResetStimulus builds a campaign stimulus from the common port naming
// conventions of this flow's designs: active-low resets pulse low then
// release at t=1, active-high resets pulse high then release at t=1, the
// rst_desync controller reset releases at t=2 (after the datapath reset, as
// in the reference DLX testbench), delsel taps take the bits of sel, and
// every other input idles low. cmd/drdesync uses it when no hand-written
// testbench is available; designs with other conventions supply their own
// Stimulus function.
func ResetStimulus(m *netlist.Module, sel int) func(*sim.Simulator) error {
	type drive struct {
		port string
		v    logic.V
		at   float64
	}
	var drives []drive
	for _, p := range m.Ports {
		if p.Dir != netlist.In {
			continue
		}
		base, idx, isBus := netlist.BusBase(p.Name)
		if !isBus {
			base = p.Name
		}
		lower := strings.ToLower(base)
		switch {
		case strings.Contains(lower, "delsel"):
			v := logic.L
			if isBus && sel >= 0 && sel>>uint(idx)&1 == 1 {
				v = logic.H
			}
			drives = append(drives, drive{p.Name, v, 0})
		case strings.Contains(lower, "desync"):
			drives = append(drives, drive{p.Name, logic.H, 0}, drive{p.Name, logic.L, 2})
		case strings.Contains(lower, "rstn") || strings.Contains(lower, "rst_n") ||
			strings.Contains(lower, "resetn") || strings.Contains(lower, "reset_n"):
			drives = append(drives, drive{p.Name, logic.L, 0}, drive{p.Name, logic.H, 1})
		case strings.Contains(lower, "rst") || strings.Contains(lower, "reset"):
			drives = append(drives, drive{p.Name, logic.H, 0}, drive{p.Name, logic.L, 1})
		default:
			drives = append(drives, drive{p.Name, logic.L, 0})
		}
	}
	return func(s *sim.Simulator) error {
		for _, d := range drives {
			if err := s.Drive(d.port, d.v, d.at); err != nil {
				return err
			}
		}
		return nil
	}
}
