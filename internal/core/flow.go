package core

import (
	"context"
	"fmt"
	"sort"

	"desync/internal/ctrlnet"
	"desync/internal/netlist"
	"desync/internal/sdc"
	"desync/internal/sta"
)

// Flow is the shared state of one conversion run, threaded through the
// stage skeleton and handed to the backend's stage methods. Backends read
// Design/Opts and extend Res; the skeleton owns everything else.
type Flow struct {
	// Design is the netlist under conversion, mutated in place.
	Design *netlist.Design
	// Opts is the canonicalized option set (Options.Canonicalize ran).
	Opts Options
	// Res accumulates the run's results stage by stage.
	Res *Result
}

// Result reports everything a conversion run produced. The first block is
// backend-independent; the second is filled by the desync backend only,
// and other backends publish their network record through BackendResult.
type Result struct {
	// Backend is the name of the backend that ran.
	Backend      string
	CleanedCells int
	Grouping     GroupingResult
	Substitution *SubstituteResult
	RegionDelays map[int]*sta.RegionDelay
	Constraints  *sdc.Constraints

	// DDG, DelayLevels, Insert, UnderMargin, Network and CtrlDiff are
	// desync-backend results; they stay nil/empty under other backends.
	DDG         *DDG
	DelayLevels map[int]int
	Insert      *InsertResult
	// UnderMargin lists regions whose sized delay element does not cover
	// the measured launch-to-capture budget (only possible when the margin
	// is below 1.0). The flow still completes — the ablation studies sweep
	// such margins deliberately — but cmd/drdesync warns and can auto-bump.
	UnderMargin []int
	// Network is the control-network IR derived from the exported netlist
	// (ctrlnet.Derive); downstream consumers — lint's DS-* rules, the equiv
	// model, fault campaigns — reuse it instead of re-deriving their own.
	Network *ctrlnet.Network
	// CtrlDiff lists disagreements between the insert stage's Claim and
	// Network. Always empty on a successful flow: any mismatch is a flow
	// error at the export stage.
	CtrlDiff []ctrlnet.Mismatch

	// BackendResult carries a non-desync backend's own record of what it
	// generated (*twophase.Result for the two-phase backend); nil under
	// the desync backend.
	BackendResult any
}

// Convert runs the clocking conversion selected by opts.Backend on the
// design in place, through the shared stage skeleton:
//
//	Import → Clean → Group → Substitute → Size → Generate → Export
//
// The skeleton owns Import (flatten, false paths, the single-clock check
// of §4.1), Clean (buffer/inverter-pair removal), Group (automatic or
// manual region creation) and Export (netlist checks, the backend's
// structural cross-check, final validation); the backend owns Substitute,
// Size and Generate. The datapath is untouched (§2.1) and the clock
// network is gone in every backend; what replaces it — the handshake
// controller network plus matched delays, or the two-phase non-overlapping
// clock generator — is the backend's choice.
//
// Cancellation is observed at every stage boundary (and inside the sized
// kernels); a canceled flow aborts as a FlowError of the stage it was
// entering, leaving the design in that stage's state. Validate, the
// optional StageCheck gate and Progress run at the same boundaries for
// every backend — the discipline lives here, once.
func Convert(ctx context.Context, d *netlist.Design, opts Options) (*Result, error) {
	name := d.Name
	opts, err := opts.Canonicalize()
	if err != nil {
		return nil, flowErr(StageImport, name, "options", err)
	}
	be, err := NewBackend(opts.Backend)
	if err != nil {
		return nil, flowErr(StageImport, name, "options", err)
	}
	f := &Flow{Design: d, Opts: opts, Res: &Result{Backend: be.Name()}}
	res := f.Res
	progress := opts.Progress
	if progress == nil {
		progress = func(string) {}
	}

	// validate runs the netlist invariant checker after each stage so a
	// stage that corrupts the structure is caught at its own boundary; it
	// is also where a cancellation between stages surfaces.
	validate := func(stage string, midFlow bool) error {
		if err := ctx.Err(); err != nil {
			return flowErr(stage, name, "canceled", err)
		}
		errs := d.Top.Validate(netlist.ValidateOptions{AllowUndriven: midFlow})
		if len(errs) > 0 {
			return flowErr(stage, name, "post-stage validation",
				fmt.Errorf("%v (and %d more)", errs[0], len(errs)-1))
		}
		if opts.StageCheck != nil {
			if err := opts.StageCheck(stage, midFlow); err != nil {
				return flowErr(stage, name, "post-stage lint", err)
			}
		}
		return nil
	}

	if err := ctx.Err(); err != nil {
		return nil, flowErr(StageImport, name, "canceled", err)
	}
	progress(StageImport)

	// Design import finalization: the paper's tool works on a flat view; a
	// two-level netlist flattens with hierarchy-derived groups (§3.2.2).
	if err := d.Flatten(opts.ManualGroups); err != nil {
		return nil, flowErr(StageImport, name, "flatten", err)
	}
	if missing := MarkFalsePaths(d.Top, opts.FalsePaths); len(missing) > 0 {
		return nil, flowErr(StageImport, name, "",
			fmt.Errorf("unknown false-path nets %v", missing))
	}

	// Single-clock designs only (§4.1); multiple clock domains are the
	// paper's future work, and silently merging them would fabricate
	// cross-domain synchronization that the original never had.
	clocks := map[*netlist.Net]bool{}
	for _, in := range d.Top.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindFF {
			continue
		}
		if ck := in.Conn(in.Cell.Seq.ClockPin); ck != nil {
			clocks[ck] = true
		}
	}
	if len(clocks) > 1 {
		var names []string
		for n := range clocks {
			names = append(names, n.Name)
		}
		sort.Strings(names)
		return nil, flowErr(StageImport, name, "",
			fmt.Errorf("%d clock domains (%v); the flow supports single-clock designs (§4.1)",
				len(names), names))
	}
	if err := validate(StageImport, true); err != nil {
		return nil, err
	}

	if !opts.SkipClean {
		progress(StageClean)
		res.CleanedCells = CleanLogic(d.Top)
		if err := validate(StageClean, true); err != nil {
			return nil, err
		}
	}
	progress(StageGroup)
	if opts.ManualGroups {
		for _, in := range d.Top.Insts {
			if in.Group < 0 {
				in.Group = 0
			}
		}
		res.Grouping.Groups = compactGroups(d.Top)
	} else {
		res.Grouping = AutoGroup(d.Top)
	}
	if res.Grouping.Groups == 0 {
		return nil, flowErr(StageGroup, name, "", ErrNoRegions)
	}

	progress(StageSubstitute)
	if err := be.Substitute(ctx, f); err != nil {
		return nil, flowErr(StageSubstitute, name, "", err)
	}
	if err := validate(StageSubstitute, true); err != nil {
		return nil, err
	}

	progress(StageSize)
	if err := be.Size(ctx, f); err != nil {
		return nil, flowErr(StageSize, name, "", err)
	}

	progress(StageGenerate)
	if err := be.Generate(ctx, f); err != nil {
		return nil, flowErr(StageGenerate, name, "clock-replacement network", err)
	}

	progress(StageExport)
	if errs := d.Top.Check(); len(errs) > 0 {
		return nil, flowErr(StageExport, name, "netlist checks",
			fmt.Errorf("%v (and %d more)", errs[0], len(errs)-1))
	}

	// Cross-check what the generate stage claims it built against what the
	// exported netlist structurally contains. The derivation is independent
	// of flow state (names and pin connectivity only), so a disagreement
	// means a stage corrupted the network after generation — a class of bug
	// per-consumer re-derivation used to absorb silently.
	if err := be.Verify(ctx, f); err != nil {
		return nil, flowErr(StageExport, name, "network cross-check", err)
	}

	if err := validate(StageExport, false); err != nil {
		return nil, err
	}
	return res, nil
}
