package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desync/internal/designs"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// End-to-end CLI flow on real files: generate the DLX, desynchronize it
// through run(), and verify every artifact re-reads.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "dlx.v")
	if err := os.WriteFile(in, []byte(verilog.Write(d)), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "ddlx.v")
	sdcOut := filepath.Join(dir, "ddlx.sdc")
	blifOut := filepath.Join(dir, "ddlx.blif")
	tbOut := filepath.Join(dir, "tb.v")
	if err := run(context.Background(), runOpts{
		in: in, libVariant: "HS", out: out, sdcOut: sdcOut, blifOut: blifOut,
		tbOut: tbOut, period: 4.65, margin: 1.15, mux: true,
	}); err != nil {
		t.Fatal(err)
	}
	// The desynchronized netlist re-imports cleanly.
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := verilog.Read(string(src), stdcells.New(stdcells.HighSpeed), "")
	if err != nil {
		t.Fatal(err)
	}
	if errs := d2.Top.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	if d2.Top.Port("rst_desync") == nil || d2.Top.Port("delsel[0]") == nil {
		t.Fatal("desynchronization ports missing")
	}
	// Constraints and BLIF landed.
	sdcText, err := os.ReadFile(sdcOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"create_clock", "set_disable_timing", "set_size_only"} {
		if !strings.Contains(string(sdcText), want) {
			t.Fatalf("SDC missing %s", want)
		}
	}
	blifText, err := os.ReadFile(blifOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blifText), ".model dlx") {
		t.Fatal("BLIF broken")
	}
	tbText, err := os.ReadFile(tbOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tbText), "rst_desync") {
		t.Fatal("testbench broken")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	// Missing input file.
	if err := run(context.Background(), runOpts{
		in: filepath.Join(dir, "nope.v"), libVariant: "HS",
		out: filepath.Join(dir, "o.v"), period: 1, margin: 1.15,
	}); err == nil {
		t.Fatal("expected missing-file error")
	}
	// Bad library variant.
	in := filepath.Join(dir, "x.v")
	os.WriteFile(in, []byte("module m (a); input a; endmodule"), 0o644)
	if err := run(context.Background(), runOpts{
		in: in, libVariant: "XX", out: filepath.Join(dir, "o.v"),
		period: 1, margin: 1.15,
	}); err == nil {
		t.Fatal("expected library error")
	}
	// Unknown false-path net.
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	dlxIn := filepath.Join(dir, "dlx.v")
	os.WriteFile(dlxIn, []byte(verilog.Write(d)), 0o644)
	if err := run(context.Background(), runOpts{
		in: dlxIn, libVariant: "HS", out: filepath.Join(dir, "o.v"),
		falsePaths: "no_such_net", period: 1, margin: 1.15,
	}); err == nil {
		t.Fatal("expected false-path error")
	}
}
