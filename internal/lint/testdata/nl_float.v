// NL-FLOAT fixture: wire fl is read by u1 but has no driver.
module bad_float (a, z);
  input a;
  output z;
  wire fl;
  AND2X1 u1 (.A(a), .B(fl), .Z(z));
endmodule
