// Package mga is the static marked-graph analysis engine of the flow: it
// reasons about the delay-annotated marked graph underlying the inserted
// controller network — the same extraction internal/equiv explores
// exhaustively — but structurally, in polynomial time, so its verdicts
// scale to designs whose state space no BFS can reach.
//
// The controller network of a desynchronized design is a marked graph (a
// Petri net where every place has one producer and one consumer): each
// region contributes a master-capture and a slave-capture transition, each
// request/acknowledge channel and each master→slave connection contributes
// places whose token counts come from the latch reset phases. On that
// graph three classic results make verification structural:
//
//   - liveness: a marked graph is live iff every directed cycle carries at
//     least one token. Checked by SCC decomposition of the token-free
//     subgraph — no cycle enumeration — plus a dead-input fixpoint over
//     the extracted model's stuck operands (a handshake input that can
//     never transition starves its transition no matter the marking).
//   - safety: the maximum token count a place can reach is its initial
//     count plus the minimum token count over return paths from its
//     consumer back to its producer (a shortest-path computation). A place
//     with no return path is unbounded — a request channel whose
//     acknowledge was severed.
//   - throughput: the steady-state period equals the maximum cycle ratio
//     delay(C)/tokens(C) over all cycles, computed exactly by condensing
//     the token-free subgraph (a DAG once liveness holds) and running
//     Karp's maximum-mean-cycle algorithm, which also names the critical
//     handshake cycle and its bottleneck channel.
//
// Place delays are priced from the library arcs the simulator uses (worst
// corner, instance delay factors included), walking the actual request
// trees and matched delay chains in the netlist, and serializing the
// return-to-zero half of each four-phase handshake that the controllers
// hide behind computation only partially — so the static period is an
// upper bound on (and on the case studies within a few percent of) the
// simulated steady-state period.
//
// Everything is deterministic: reports are byte-identical across runs and
// worker counts, so mga gates flows the way internal/lint rules do.
package mga

import (
	"desync/internal/ctrlnet"
	"desync/internal/equiv"
	"desync/internal/netlist"
)

// Options configures an analysis. The zero value analyzes at the worst
// corner, the corner the matched delays are sized against.
type Options struct {
	// BestCorner prices the place delays at the best library corner instead
	// of the worst corner (the default) — the corner the matched delays are
	// sized against and the simulator's steady-state measurements use.
	BestCorner bool
}

// corner returns the netlist corner the options select.
func (o Options) corner() netlist.Corner {
	if o.BestCorner {
		return netlist.Best
	}
	return netlist.Worst
}

// Analyze extracts the marked graph of a desynchronized module (reusing
// the shared control-network IR and the equiv model extraction) and runs
// every static check. It fails only when the module has no controller
// network to analyze; verdict-level problems are findings in the report.
func Analyze(mod *netlist.Module, cn *ctrlnet.Network, opts Options) (*Report, error) {
	m, err := equiv.FromNetwork(mod, cn)
	if err != nil {
		return nil, err
	}
	return AnalyzeModel(mod, cn, m, opts), nil
}

// AnalyzeModel is Analyze for callers that already hold the extracted
// equiv model — the static half of a static-vs-BFS comparison over one
// extraction, or a flow that runs both engines.
func AnalyzeModel(mod *netlist.Module, cn *ctrlnet.Network, m *equiv.Model, opts Options) *Report {
	g := BuildGraph(mod, cn, m, opts)
	g.CheckModel(m)
	rep := g.Analyze()
	rep.ModelFindings = m.Findings
	return rep
}

// StateEstimate is the 8^regions protocol-state estimate used to decide
// whether the equiv BFS is within reach of a state budget: each region's
// four-phase handshake lattice has eight phases (the desynchronization
// protocol lattice of Fig 2.4), and the DLX's four regions reach 4013 of
// the 4096 estimated markings. The estimate saturates at 1<<62.
func StateEstimate(regions int) uint64 {
	est := uint64(1)
	for i := 0; i < regions; i++ {
		if est > 1<<59 {
			return 1 << 62
		}
		est *= 8
	}
	return est
}
