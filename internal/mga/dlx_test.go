package mga

import (
	"bytes"
	"testing"

	"desync/internal/ctrlnet"
	"desync/internal/expt"
)

// TestDLXStaticVerdicts pins the full analysis on the DLX case study. The
// period bound is calibrated against the simulator: the steady-state
// capture spacing of the desynchronized DLX at the worst corner measures
// 6.50855 ns, and the static bound must cover it without exceeding it by
// more than 10% (the acceptance window of the static engine).
func TestDLXStaticVerdicts(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cn := ctrlnet.Derive(f.Desync.Top)
	rep, err := Analyze(f.Desync.Top, cn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Live || !rep.Safe {
		for _, fd := range rep.Findings {
			t.Logf("finding: %s", fd.String())
		}
		t.Fatalf("healthy DLX: live=%v safe=%v, want true/true", rep.Live, rep.Safe)
	}
	if rep.Regions != 4 || rep.Transitions != 8 {
		t.Fatalf("regions=%d transitions=%d, want 4/8", rep.Regions, rep.Transitions)
	}
	if rep.MaxBound != 1 {
		t.Fatalf("MaxBound = %d, want 1 (every channel single-rail)", rep.MaxBound)
	}

	const sim = 6.50855 // measured steady-state period, worst corner
	if rep.PeriodNs < sim-1e-3 {
		t.Fatalf("static period %.5f ns under the simulated %.5f ns: the bound is not conservative", rep.PeriodNs, sim)
	}
	if rep.PeriodNs > 1.10*sim {
		t.Fatalf("static period %.5f ns exceeds 1.10x the simulated %.5f ns: the bound is too loose", rep.PeriodNs, sim)
	}
	if rep.Bottleneck != "G1>G3" {
		t.Fatalf("bottleneck %q, want the long-chain channel G1>G3", rep.Bottleneck)
	}
	want := []string{"req G1>G3", "ack G3>G1"}
	if len(rep.CriticalCycle) != len(want) {
		t.Fatalf("critical cycle %v, want %v", rep.CriticalCycle, want)
	}
	for i := range want {
		if rep.CriticalCycle[i] != want[i] {
			t.Fatalf("critical cycle %v, want %v", rep.CriticalCycle, want)
		}
	}
	if len(rep.PerRegion) != 4 {
		t.Fatalf("per-region table has %d rows, want 4", len(rep.PerRegion))
	}

	// Determinism: a second analysis of the same netlist renders the same
	// bytes, text and JSON.
	rep2, err := Analyze(f.Desync.Top, cn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b, ja, jb bytes.Buffer
	rep.WriteText(&a)
	rep2.WriteText(&b)
	if a.String() != b.String() {
		t.Fatal("text report not byte-identical across runs")
	}
	if err := rep.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := rep2.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Fatal("JSON report not byte-identical across runs")
	}
}

// TestBestCornerScales checks the corner plumbing: the best corner prices
// every arc at 1/CornerSpread of the worst, so the period scales down.
func TestBestCornerScales(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cn := ctrlnet.Derive(f.Desync.Top)
	worst, err := Analyze(f.Desync.Top, cn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best, err := Analyze(f.Desync.Top, cn, Options{BestCorner: true})
	if err != nil {
		t.Fatal(err)
	}
	if best.PeriodNs <= 0 || best.PeriodNs >= worst.PeriodNs {
		t.Fatalf("best-corner period %.4f not under worst-corner %.4f", best.PeriodNs, worst.PeriodNs)
	}
	if !best.Live || !best.Safe {
		t.Fatal("corner choice must not change the structural verdicts")
	}
}
