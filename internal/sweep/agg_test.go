package sweep

import (
	"math"
	"testing"

	"desync/internal/faults"
)

// lcg is a tiny deterministic generator for test streams (no seeding
// subtleties, identical on every platform).
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>11) / float64(1<<53)
}

// TestQuantileUniform: on 20k uniform draws the P² markers must land close
// to the true quantiles — and identically on every run, since the stream
// is fixed.
func TestQuantileUniform(t *testing.T) {
	for _, tc := range []struct{ p, tol float64 }{{0.5, 0.02}, {0.9, 0.02}, {0.99, 0.01}} {
		g := lcg(42)
		q := NewQuantile(tc.p)
		for i := 0; i < 20000; i++ {
			q.Add(g.next())
		}
		if v := q.Value(); math.Abs(v-tc.p) > tc.tol {
			t.Errorf("p%.0f estimate %.4f, want within %.3f", 100*tc.p, v, tc.tol)
		}
		if q.Count() != 20000 {
			t.Errorf("count %d", q.Count())
		}
	}
}

// TestQuantileSmall: below five samples the estimator falls back to the
// nearest-rank quantile of what it has.
func TestQuantileSmall(t *testing.T) {
	q := NewQuantile(0.5)
	if q.Value() != 0 {
		t.Fatal("empty estimator must report 0")
	}
	for _, x := range []float64{3, 1, 2} {
		q.Add(x)
	}
	if v := q.Value(); v != 2 {
		t.Fatalf("median of {3,1,2} = %v, want 2", v)
	}
}

// TestQuantileDeterministic: the estimate is a pure function of the
// insertion order — the property that makes resumed sweeps byte-identical.
func TestQuantileDeterministic(t *testing.T) {
	run := func() float64 {
		g := lcg(7)
		q := NewQuantile(0.9)
		for i := 0; i < 5000; i++ {
			q.Add(g.next())
		}
		return q.Value()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same stream, different estimates: %v vs %v", a, b)
	}
}

// TestWilsonCI: interval shape at the boundaries the sweep lives near.
func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty interval [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI(100, 100)
	if hi != 1 || lo < 0.95 || lo > 0.995 {
		t.Fatalf("100/100 interval [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI(95, 100)
	if lo >= 0.95 || hi <= 0.95 {
		t.Fatalf("95/100 interval [%v,%v] does not bracket the rate", lo, hi)
	}
	if lo < 0.85 || hi > 1 {
		t.Fatalf("95/100 interval [%v,%v] implausibly wide", lo, hi)
	}
}

// TestSpaceDecode: the index decomposition must be a bijection onto the
// cross-product, fault-fastest.
func TestSpaceDecode(t *testing.T) {
	sp := Space{Corners: []float64{1, 2, 3}, Chips: 4, Faults: make([]faults.Fault, 5)}
	if sp.Size() != 60 {
		t.Fatalf("size %d", sp.Size())
	}
	seen := map[[3]int]bool{}
	prevCorner := 0
	for i := 0; i < sp.Size(); i++ {
		c, ch, f := sp.Decode(i)
		if c < 0 || c > 2 || ch < 0 || ch > 3 || f < 0 || f > 4 {
			t.Fatalf("index %d decoded out of range (%d,%d,%d)", i, c, ch, f)
		}
		if c < prevCorner {
			t.Fatalf("corner order regressed at index %d", i)
		}
		prevCorner = c
		key := [3]int{c, ch, f}
		if seen[key] {
			t.Fatalf("index %d repeats cell %v", i, key)
		}
		seen[key] = true
	}
	if len(seen) != 60 {
		t.Fatalf("covered %d cells", len(seen))
	}
}
