package main

import (
	"fmt"
	"io"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/equiv"
	"desync/internal/mga"
	"desync/internal/netlist"
)

// staticGate is the always-on structural verification gate: it analyzes
// the delay-annotated marked graph of the freshly inserted control network
// — liveness, place bounds, the request-vs-data cross-check and the static
// period bound — in polynomial time, before (and independently of) the
// optional exhaustive -equiv gate. Error findings fail the run with a
// StageStatic flow error. It returns the report so the caller can decide
// whether the state space is within the -equiv gate's reach.
func staticGate(d *netlist.Design, cn *ctrlnet.Network, stdout, stderr io.Writer) (*mga.Report, error) {
	fail := func(err error) (*mga.Report, error) {
		return nil, &core.FlowError{Stage: core.StageStatic, Design: d.Top.Name, Detail: "static marked-graph gate", Err: err}
	}
	if cn == nil || cn.Module != d.Top {
		cn = ctrlnet.Derive(d.Top)
	}
	rep, err := mga.Analyze(d.Top, cn, mga.Options{})
	if err != nil {
		return fail(err)
	}
	rep.WriteText(stdout)
	if err := lintGate("static", rep.LintReport(rep.ModelFindings), stderr); err != nil {
		return fail(err)
	}
	return rep, nil
}

// equivWithinReach decides whether the exhaustive gate's marking budget
// covers the design's estimated protocol state space; when it does not,
// the caller skips the BFS with an explicit downgrade note and the static
// verdicts stand alone.
func equivWithinReach(rep *mga.Report, maxStates int, stderr io.Writer) bool {
	budget := maxStates
	if budget <= 0 {
		budget = equiv.DefaultMaxStates
	}
	if est := mga.StateEstimate(rep.Regions); est > uint64(budget) {
		fmt.Fprintf(stderr, "drdesync: %d-region state estimate %d exceeds the %d-marking equiv budget; "+
			"skipping the exhaustive gate — the static marked-graph verdicts stand alone\n",
			rep.Regions, est, budget)
		return false
	}
	return true
}
