package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestParallelismVar(t *testing.T) {
	fs := newFS()
	var j int
	ParallelismVar(fs, &j)
	if err := fs.Parse([]string{"-j", "4"}); err != nil {
		t.Fatal(err)
	}
	if j != 4 {
		t.Fatalf("-j 4 parsed as %d", j)
	}

	fs = newFS()
	ParallelismVar(fs, &j)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if j != 0 {
		t.Fatalf("default -j = %d, want 0 (GOMAXPROCS)", j)
	}
}

func TestSeedVarKeepsNameAndDefault(t *testing.T) {
	fs := newFS()
	var seed int64
	SeedVar(fs, &seed, "equiv-seed", 1, "PRNG seed for -equiv-xval traces")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if seed != 1 {
		t.Fatalf("default seed = %d, want 1", seed)
	}
	f := fs.Lookup("equiv-seed")
	if f == nil {
		t.Fatal("flag not registered under its historical name")
	}
	if !strings.Contains(f.Usage, "reproduce") {
		t.Fatalf("usage %q lacks the reproducibility suffix", f.Usage)
	}
	if err := fs.Parse([]string{"-equiv-seed", "77"}); err != nil {
		t.Fatal(err)
	}
	if seed != 77 {
		t.Fatalf("parsed seed = %d, want 77", seed)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := Context()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh context already dead: %v", err)
	}
	cancel()
	<-ctx.Done()
}
