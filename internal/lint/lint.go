// Package lint is the static verification engine of the flow: a rule-based
// analyzer that checks netlists before the pipeline runs and the
// desynchronized control network after it, without simulating a single
// vector. It complements the dynamic fault campaigns of internal/faults —
// most failure classes a broken flow can produce (mis-paired req/ack
// channels, incomplete C-element rendezvous, master/slave phase violations,
// delay elements shorter than the datapath they match, timing loops no SDC
// constraint breaks) are structurally detectable, which is the territory
// formal approaches to desynchronization (flow-equivalence checking) cover
// with proofs and this engine covers with rules.
//
// Two rule families exist. Netlist rules (NL-*) apply to any imported
// design; desynchronization rules (DS-*) apply to a post-flow design and
// cross-check the control network against the derived region graph, the
// timing analysis, and the generated SDC constraints.
package lint

import (
	"sort"

	"desync/internal/ctrlnet"
	"desync/internal/netlist"
	"desync/internal/sdc"
)

// Severity orders findings. Error findings make drlint exit non-zero and
// abort the drdesync flow gates; Warning findings are reported but do not
// gate; Info findings are advisory notes.
type Severity int

// Severity levels, least severe first.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "unknown"
}

// Rule identifiers. The IDs are stable: baselines, golden tests and the
// DESIGN.md catalog refer to them by name.
const (
	// Netlist rules — any design.
	RuleValidate = "NL-VALIDATE" // structural invariant violation (netlist.Validate)
	RulePin      = "NL-PIN"      // unconnected instance pin
	RuleFloat    = "NL-FLOAT"    // net with sinks but no driver
	RuleMulti    = "NL-MULTI"    // net driven by more than one output
	RuleLoop     = "NL-LOOP"     // combinational loop outside control cells
	RuleCone     = "NL-CONE"     // logic cone unreachable from any observable point
	RuleName     = "NL-NAME"     // names colliding after escaped-name simplification

	// Desynchronization rules — post-flow design.
	RuleFF     = "DS-FF"     // flip-flop survived substitution
	RuleEnable = "DS-ENABLE" // latch enable not rooted at a controller
	RulePhase  = "DS-PHASE"  // master/slave phases do not alternate on a data path
	RulePair   = "DS-PAIR"   // req/ack channel pairing disagrees with the region graph
	RuleCElem  = "DS-CELEM"  // C-element rendezvous input incomplete
	RuleMargin = "DS-MARGIN" // matched delay element under its STA budget
	RuleSDC    = "DS-SDC"    // control loop not covered by an SDC loop-breaking constraint

	// Two-phase rules — a design converted by the twophase backend.
	RuleTPFF      = "TP-FF"      // flip-flop survived substitution
	RuleTPGen     = "TP-GEN"     // generator structure incomplete
	RuleTPPhase   = "TP-PHASE"   // latch enable not rooted at a phase, or adjacent latches sharing one
	RuleTPOverlap = "TP-OVERLAP" // phase clock waveforms overlap or non-overlap chains missing
	RuleTPSDC     = "TP-SDC"     // generator loop not covered by an SDC loop-breaking constraint
)

// RuleInfo describes one rule for the catalog (drlint -rules, DESIGN.MD §9).
type RuleInfo struct {
	ID       string
	Severity Severity
	Summary  string
}

// Rules is the catalog of everything the engine can report, in report order.
var Rules = []RuleInfo{
	{RuleValidate, Error, "structural invariant violation (wrapped netlist.Validate finding)"},
	{RulePin, Error, "unconnected instance pin (inputs error, outputs warn)"},
	{RuleFloat, Error, "net with sinks but no driver"},
	{RuleMulti, Error, "net driven by more than one output pin or input port"},
	{RuleLoop, Error, "combinational loop outside handshake/control cells"},
	{RuleCone, Warning, "combinational cone unreachable from any port or sequential input"},
	{RuleName, Warning, "distinct names that collide after escaped-name simplification"},
	{RuleFF, Error, "flip-flop survived master/slave substitution"},
	{RuleEnable, Error, "latch enable not driven (solely) by one controller phase"},
	{RulePhase, Error, "latch-to-latch data path without master/slave phase alternation"},
	{RulePair, Error, "req/ack channel wiring disagrees with the derived region graph"},
	{RuleCElem, Error, "C-element input missing, constant, or duplicated"},
	{RuleMargin, Error, "matched delay element shorter than its region's STA budget"},
	{RuleSDC, Error, "cyclic control path not covered by a loop-breaking constraint"},
	{RuleTPFF, Error, "flip-flop survived master/slave substitution (two-phase flow)"},
	{RuleTPGen, Error, "two-phase generator incomplete (ring, splitter, or distribution)"},
	{RuleTPPhase, Error, "latch enable not rooted at a phase, or adjacent latches on one phase"},
	{RuleTPOverlap, Error, "phase clock waveforms overlap or non-overlap chains missing"},
	{RuleTPSDC, Error, "generator loop not covered by a loop-breaking constraint"},
}

// Finding is one rule violation, located as precisely as the rule allows.
type Finding struct {
	Rule       string   `json:"rule"`
	Severity   Severity `json:"-"`
	Module     string   `json:"module,omitempty"`
	Inst       string   `json:"inst,omitempty"`
	Net        string   `json:"net,omitempty"`
	Msg        string   `json:"msg"`
	Suppressed bool     `json:"suppressed,omitempty"`
}

// Key is the finding's baseline identity: rule and location, not message,
// so a suppression survives cosmetic message changes.
func (f Finding) Key() string {
	return f.Rule + "|" + f.Module + "|" + f.Inst + "|" + f.Net
}

// Report is an ordered collection of findings.
type Report struct {
	Findings []Finding
}

func (r *Report) add(f Finding) { r.Findings = append(r.Findings, f) }

// Merge appends findings produced by another engine (equiv, mga) to the
// report, preserving their order, so flow gates aggregate every analysis
// into one reporting and baseline surface.
func (r *Report) Merge(fs []Finding) { r.Findings = append(r.Findings, fs...) }

func (r *Report) addf(rule string, sev Severity, module, inst, net, msg string) {
	r.add(Finding{Rule: rule, Severity: sev, Module: module, Inst: inst, Net: net, Msg: msg})
}

// Sort orders findings most severe first, then by rule and location, so
// text output, JSON output and golden tests are deterministic.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		if a.Inst != b.Inst {
			return a.Inst < b.Inst
		}
		if a.Net != b.Net {
			return a.Net < b.Net
		}
		return a.Msg < b.Msg
	})
}

// Count returns the number of unsuppressed findings at or above min.
func (r *Report) Count(min Severity) int {
	n := 0
	for _, f := range r.Findings {
		if !f.Suppressed && f.Severity >= min {
			n++
		}
	}
	return n
}

// Errors is the number of unsuppressed Error findings — the quantity exit
// codes and flow gates key on.
func (r *Report) Errors() int { return r.Count(Error) }

// ByRule returns the unsuppressed findings carrying the given rule ID.
func (r *Report) ByRule(id string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed && f.Rule == id {
			out = append(out, f)
		}
	}
	return out
}

// Options selects which rules run and supplies their cross-check inputs.
type Options struct {
	// MidFlow marks a snapshot between flow stages, where nets legally wait
	// for a driver (latch enables between substitution and insertion): the
	// floating-net rule is suspended and validation runs in the same relaxed
	// mode the flow itself uses.
	MidFlow bool
	// Desync enables the DS-* family: the module is expected to be a
	// complete post-flow design with a controller network.
	Desync bool
	// TwoPhase enables the TP-* family: the module is expected to be a
	// complete post-flow design with a two-phase clock generator.
	TwoPhase bool
	// Constraints is the generated SDC used by the DS-SDC and DS-MARGIN
	// rules. When nil and Desync is set, loop coverage cannot be
	// cross-checked and the engine says so with an Info finding.
	Constraints *sdc.Constraints
	// Network is an already-derived control-network IR for the module under
	// check. Callers that derived one (the flow, cmd/drdesync) pass it so
	// one derivation serves the whole run; when nil — or when it belongs to
	// a different module — the DS-* rules derive their own via
	// ctrlnet.Derive, which is itself memoized.
	Network *ctrlnet.Network
	// Parallelism bounds the workers of the timing cross-checks' region
	// extraction; 0 means GOMAXPROCS. Findings are identical at any value.
	Parallelism int
}

// Check runs the selected rule families over one flat module and returns
// the sorted report. The module is not modified, with one documented
// exception: on a design re-read from Verilog (where in-memory Group tags
// are gone) the desync rules recover each latch's region from its enable
// root and store it back, so the timing cross-checks can attribute budgets.
func Check(m *netlist.Module, opts Options) *Report {
	r := &Report{}
	r.checkNetlist(m, opts)
	if opts.Desync {
		r.checkDesync(m, opts)
	}
	if opts.TwoPhase {
		r.checkTwoPhase(m, opts)
	}
	r.Sort()
	return r
}

// CheckDesign lints every module of a design with the netlist family and,
// when requested, the top module with the desynchronization family.
func CheckDesign(d *netlist.Design, opts Options) *Report {
	r := &Report{}
	sub := opts
	sub.Desync = false
	for _, m := range d.Modules {
		if m == d.Top {
			continue
		}
		r.checkNetlist(m, sub)
	}
	r.checkNetlist(d.Top, opts)
	if opts.Desync {
		r.checkDesync(d.Top, opts)
	}
	if opts.TwoPhase {
		r.checkTwoPhase(d.Top, opts)
	}
	r.Sort()
	return r
}
