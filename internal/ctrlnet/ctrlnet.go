// Package ctrlnet is the canonical intermediate representation of the
// inserted control network. Desynchronization derives a self-timed
// controller network whose structure — regions and their dependency graph,
// master/slave latch phases, req/ack channel pairing, C-Muller rendezvous
// trees, matched delay-element arrivals — used to be re-derived privately by
// every consumer (lint's DS-* rules, equiv's marking model, the fault
// campaigns). This package owns that derivation once:
//
//   - Derive(mod) rebuilds the Network from netlist structure alone (names
//     and pin connectivity, both of which survive Verilog round trips),
//     memoized against the module's mutation counter;
//   - the insert stage of internal/core emits a Claim — what the flow says
//     it built — directly from its own bookkeeping;
//   - Diff(claim, network) cross-checks the two, making "what the flow
//     claims" vs "what the netlist says" a first-class flow gate instead of
//     a per-consumer re-implementation.
//
// The package also owns the "G<id>_" naming convention (names.go); repolint
// rule RL-CTRLNET forbids parsing or constructing those names anywhere else.
package ctrlnet

import (
	"context"

	"desync/internal/netlist"
	"desync/internal/sta"
)

// Phase is a latch's side of the master/slave substitution.
type Phase int

// The two latch phases.
const (
	Master Phase = iota
	Slave
)

func (p Phase) String() string {
	if p == Master {
		return "master"
	}
	return "slave"
}

// Root is one controller latch-enable gate reachable backwards from a latch
// enable net: the (region, phase) that controls the latch.
type Root struct {
	Region int
	Phase  Phase
}

// Latch is one latch instance with its derived coloring. A well-formed latch
// has exactly one Root; zero roots (floating or un-gated enables) and
// multiple roots (enables mixing controller phases) are the DS-ENABLE
// failure modes, kept explicit here so rules can report them.
type Latch struct {
	Inst   *netlist.Inst
	Enable *netlist.Net // net on the enable pin; nil when unconnected
	Roots  []Root       // distinct controller roots, first-reached order
}

// Colored reports whether the latch has exactly one controller root.
func (l *Latch) Colored() bool { return len(l.Roots) == 1 }

// Region returns the owning region of a colored latch, -1 otherwise.
func (l *Latch) Region() int {
	if !l.Colored() {
		return -1
	}
	return l.Roots[0].Region
}

// Phase returns the phase of a colored latch; only meaningful when Colored.
func (l *Latch) Phase() Phase {
	if !l.Colored() {
		return Master
	}
	return l.Roots[0].Phase
}

// Gates holds the four gate instances of one controller half (any may be
// nil when missing from the netlist — consumers report, not crash).
type Gates struct {
	G, RO, B, AI *netlist.Inst
}

// Controller is one region's master/slave controller pair.
type Controller struct {
	Region        int
	Master, Slave Gates
}

// Complete reports whether all eight controller gates exist.
func (c *Controller) Complete() bool {
	return c.Master.G != nil && c.Master.RO != nil && c.Master.B != nil && c.Master.AI != nil &&
		c.Slave.G != nil && c.Slave.RO != nil && c.Slave.B != nil && c.Slave.AI != nil
}

// Channel holds the six control nets of one region's req/ack channel; a nil
// field means the net is missing from the netlist.
type Channel struct {
	MRI, MAI, MRO, SRI, SAI, SRO *netlist.Net
}

// BySuffix returns the channel net for one of the ChannelSuffixes.
func (c *Channel) BySuffix(suffix string) *netlist.Net {
	switch suffix {
	case "mri":
		return c.MRI
	case "mai":
		return c.MAI
	case "mro":
		return c.MRO
	case "sri":
		return c.SRI
	case "sai":
		return c.SAI
	case "sro":
		return c.SRO
	}
	return nil
}

// CTree is one C-Muller rendezvous tree, collapsed to its external inputs.
type CTree struct {
	Prefix  string // instance prefix including the trailing slash
	Members []*netlist.Inst
	Leaves  []string // sorted external input net names
}

// DelayChain is one matched delay-element AND chain with its measured
// worst-corner arrival (rise through the longest tap, variability-priced the
// same way sta.Build prices gates).
type DelayChain struct {
	Prefix string        // instance prefix including the trailing slash
	First  *netlist.Inst // stage a1
	Levels int
	Delay  float64
}

// DataEdge is one latch-to-latch data reach: sequential source Src reaches
// the data net Net of sink latch Sink backwards through combinational
// datapath logic. Direct marks Src driving Net itself (the intra-region
// register hop the dependency graph excludes).
type DataEdge struct {
	Sink   *netlist.Inst
	Net    *netlist.Net
	Src    *netlist.Inst
	Direct bool
}

// Network is the derived IR of one module's control network.
type Network struct {
	Module  *netlist.Module
	Regions []int // sorted region ids, from master controller instances

	Controllers map[int]*Controller
	Channels    map[int]*Channel

	// Latches lists every latch instance in module order with its coloring;
	// latchOf indexes them by instance.
	Latches []*Latch
	latchOf map[*netlist.Inst]*Latch

	// Edges lists every latch-to-latch data reach of the colored latches, in
	// deterministic (module, pin, source-name) order. Duplicate (sink, net)
	// pairs are preserved when several data pins share one net, so finding
	// multiplicity matches the per-pin view the rules take.
	Edges []DataEdge

	// Preds/Succs is the region dependency graph derived from Edges: an edge
	// u→v when a latch of u reaches a data input of a latch of v, excluding
	// direct intra-region register hops (matching core.BuildDDG).
	Preds, Succs map[int][]int

	// ReqTrees/AckTrees hold the rendezvous trees that exist in the netlist
	// (regions with at most one predecessor/successor have none).
	ReqTrees, AckTrees map[int]*CTree

	// ReqDelays/MSDelays hold the matched request elements and master→slave
	// elements found per region (completion-detected regions have no request
	// element).
	ReqDelays, MSDelays map[int]*DelayChain

	// Completion marks regions using dual-rail completion detection.
	Completion map[int]bool

	// FFs lists flip-flops that survived substitution (a DS-FF violation on
	// a post-flow design; non-empty on any synchronous design).
	FFs []*netlist.Inst

	// EnvRequests/EnvAcks list the environment handshake input ports present
	// for boundary regions, sorted.
	EnvRequests, EnvAcks []string

	seq uint64 // Module.ModSeq() at derivation time
}

// Empty reports whether no controller network was found: the module is not
// a desynchronized design.
func (n *Network) Empty() bool { return len(n.Regions) == 0 }

// Latch returns the coloring of one latch instance, nil for non-latches.
func (n *Network) Latch(in *netlist.Inst) *Latch { return n.latchOf[in] }

// ControlNet resolves a region control net by suffix: the six channel nets
// from the Channel, the gm/gs latch-enable nets from the controller gate
// outputs, anything else by canonical name.
func (n *Network) ControlNet(g int, suffix string) *netlist.Net {
	if ch := n.Channels[g]; ch != nil {
		if net := ch.BySuffix(suffix); net != nil {
			return net
		}
	}
	gateQ := func(in *netlist.Inst) *netlist.Net {
		if in == nil {
			return nil
		}
		return in.Conn("Q")
	}
	if c := n.Controllers[g]; c != nil {
		switch suffix {
		case "gm":
			if net := gateQ(c.Master.G); net != nil {
				return net
			}
		case "gs":
			if net := gateQ(c.Slave.G); net != nil {
				return net
			}
		}
	}
	return n.Module.Net(Name(g, suffix))
}

// RegionBudgets computes every region's launch-to-capture budget with the
// given loop-breaking arc disables — the STA view the matched elements are
// checked against. A convenience wrapper so IR consumers need not assemble
// sta.Options themselves; it runs to completion (no cancellation point).
// parallelism bounds the per-region extraction workers (0: GOMAXPROCS); the
// budgets are identical at any value.
func (n *Network) RegionBudgets(disabled map[sta.ArcKey]bool, parallelism int) (map[int]*sta.RegionDelay, error) {
	return sta.RegionDelays(context.Background(), n.Module, netlist.Worst, sta.Options{
		Corner: netlist.Worst, AutoBreakLoops: true, Disabled: disabled,
		Parallelism: parallelism,
	})
}
