package sim

import (
	"testing"
	"testing/quick"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// Property: simulation is deterministic — two runs of the same stimulus on
// the same netlist produce identical capture sequences and toggle counts.
func TestQuickDeterminism(t *testing.T) {
	lib := hs()
	f := func(seed uint32, period8 uint8) bool {
		period := 1.5 + float64(period8%10)*0.3
		run := func() ([]logic.V, int64) {
			m := buildCounter(lib, 4)
			s, err := New(m, Config{Corner: netlist.Worst})
			if err != nil {
				t.Fatal(err)
			}
			s.Drive("rstn", logic.L, 0)
			s.Drive("rstn", logic.H, period*1.2)
			s.Clock("ck", period, 0, period*12)
			if err := s.RunUntilQuiescent(); err != nil {
				t.Fatal(err)
			}
			var toggles int64
			for _, c := range s.Toggles {
				toggles += c
			}
			return s.Captures["r[2]"], toggles
		}
		c1, t1 := run()
		c2, t2 := run()
		if t1 != t2 || len(c1) != len(c2) {
			return false
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				return false
			}
		}
		_ = seed
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling all delays by k scales every capture time by k without
// changing the captured data (the self-similarity that makes desynchronized
// circuits corner-tolerant).
func TestQuickScaleInvariance(t *testing.T) {
	lib := hs()
	f := func(k8 uint8) bool {
		k := 1 + float64(k8%15)/10 // 1.0 .. 2.4
		runCaps := func(scale, period float64) []logic.V {
			m := buildCounter(lib, 4)
			s, err := New(m, Config{Corner: netlist.Worst, Scale: scale})
			if err != nil {
				t.Fatal(err)
			}
			s.Drive("rstn", logic.L, 0)
			s.Drive("rstn", logic.H, period*1.2)
			s.Clock("ck", period, 0, period*12)
			if err := s.RunUntilQuiescent(); err != nil {
				t.Fatal(err)
			}
			return s.Captures["r[1]"]
		}
		// Scale delays by k and the clock by k: same data.
		a := runCaps(1, 4)
		b := runCaps(k, 4*k)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: a combinational cone settles to the function of its inputs
// regardless of input arrival order.
func TestQuickArrivalOrderIndependence(t *testing.T) {
	lib := hs()
	f := func(a, b, c bool, order uint8) bool {
		m := netlist.NewModule("m")
		for _, p := range []string{"a", "b", "c"} {
			m.AddPort(p, netlist.In)
		}
		m.AddPort("z", netlist.Out)
		t1 := m.AddNet("t1")
		g1 := m.AddInst("g1", lib.MustCell("XOR2X1"))
		m.MustConnect(g1, "A", m.Net("a"))
		m.MustConnect(g1, "B", m.Net("b"))
		m.MustConnect(g1, "Z", t1)
		g2 := m.AddInst("g2", lib.MustCell("AOI21X1"))
		m.MustConnect(g2, "A", t1)
		m.MustConnect(g2, "B", m.Net("c"))
		m.MustConnect(g2, "C", m.Net("a"))
		m.MustConnect(g2, "Z", m.Net("z"))

		s, err := New(m, Config{Corner: netlist.Worst})
		if err != nil {
			t.Fatal(err)
		}
		names := []string{"a", "b", "c"}
		vals := map[string]bool{"a": a, "b": b, "c": c}
		// Permute drive times by the order byte.
		perm := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}[order%6]
		for slot, idx := range perm {
			s.Drive(names[idx], logic.FromBool(vals[names[idx]]), float64(slot)*0.7)
		}
		if err := s.RunUntilQuiescent(); err != nil {
			t.Fatal(err)
		}
		want := !((a != b) && c || a) // AOI21: !((A&B)|C) with A=a^b, B=c, C=a
		return s.Value("z") == logic.FromBool(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
