package flowserv

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The golden byte-identity suite pins the default-backend artifacts of the
// three case studies plus one parametric spec across driver refactors: any
// change to the flow that alters a single byte of the exported netlist, the
// SDC constraints or the lint/static/equiv reports shows up as a digest
// mismatch here. Digests rather than full files keep testdata small (the
// ARM netlist alone is megabytes); a mismatch is re-derived locally with
// -update-golden and inspected through git.
//
// result.json is deliberately NOT pinned: it embeds the canonicalized
// options record, whose JSON shape is allowed to evolve with the API.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_digests.txt from the current flow output")

const goldenFile = "testdata/golden_digests.txt"

var goldenCases = []struct {
	name      string
	gen       string
	opts      FlowOptions
	artifacts []string
}{
	{"dlx", "dlx", FlowOptions{Equiv: true},
		[]string{ArtifactNetlist, ArtifactConstraints, ArtifactLint, ArtifactStatic, ArtifactEquiv}},
	{"arm", "arm", FlowOptions{},
		[]string{ArtifactNetlist, ArtifactConstraints, ArtifactLint, ArtifactStatic}},
	{"fir", "fir", FlowOptions{},
		[]string{ArtifactNetlist, ArtifactConstraints, ArtifactLint, ArtifactStatic}},
	{"pipeline", "pipeline:depth=4,width=8,regions=6", FlowOptions{},
		[]string{ArtifactNetlist, ArtifactConstraints, ArtifactLint, ArtifactStatic}},
}

// goldenDigests runs one case through the same path the job server takes
// (validate, normalize, build, flow) and returns artifact -> sha256 hex.
func goldenDigests(t *testing.T, gen string, opts FlowOptions, names []string) map[string]string {
	t.Helper()
	req := JobRequest{Gen: gen, Options: opts}
	if err := req.validate(); err != nil {
		t.Fatal(err)
	}
	req.normalize()
	d, err := req.buildDesign()
	if err != nil {
		t.Fatal(err)
	}
	key, err := cacheKey(d, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	j := newJob("golden", &req, key, d)
	arts, err := runFlow(context.Background(), j, 1)
	if err != nil {
		t.Fatalf("flow: %v", err)
	}
	out := map[string]string{}
	for _, name := range names {
		b, ok := arts[name]
		if !ok {
			t.Fatalf("artifact %s missing", name)
		}
		sum := sha256.Sum256(b)
		out[name] = hex.EncodeToString(sum[:])
	}
	return out
}

// readGoldenFile parses "case artifact digest" lines.
func readGoldenFile(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("no golden digest table (%v); run with -update-golden to create it", err)
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 3 {
			t.Fatalf("bad golden line %q", line)
		}
		out[parts[0]+" "+parts[1]] = parts[2]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGoldenArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite runs the full flow on four designs")
	}
	got := map[string]string{}
	for _, tc := range goldenCases {
		for art, digest := range goldenDigests(t, tc.gen, tc.opts, tc.artifacts) {
			got[tc.name+" "+art] = digest
		}
	}

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString("# sha256 digests of default-backend flow artifacts, pinned across\n")
		b.WriteString("# driver refactors. Regenerate with:\n")
		b.WriteString("#   go test ./internal/flowserv/ -run TestGoldenArtifactsByteIdentical -update-golden\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s\n", k, got[k])
		}
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenFile)
		return
	}

	want := readGoldenFile(t)
	for k, wd := range want {
		gd, ok := got[k]
		if !ok {
			t.Errorf("%s: artifact no longer produced", k)
			continue
		}
		if gd != wd {
			t.Errorf("%s: digest %s, golden %s — default-backend output changed", k, gd, wd)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: not in the golden table; run -update-golden", k)
		}
	}
}
