package ctrlnet

import (
	"fmt"
	"strings"

	"desync/internal/handshake"
)

// This file is the single owner of the flow's "G<id>_" naming convention.
// Every name the control-network insertion creates — channel nets, controller
// gates, delay-element chains, rendezvous trees, completion networks,
// environment ports — is constructed and parsed here and nowhere else
// (repolint rule RL-CTRLNET pins the invariant). The names survive Verilog
// round trips, which is what lets Derive rebuild the IR from a re-read
// netlist with no in-memory flow state.

// Channel net suffixes, in the order the six-net channel is laid out:
// master request/ack in, master request out, slave request/ack in, slave
// request out.
var ChannelSuffixes = []string{"mri", "mai", "mro", "sri", "sai", "sro"}

// Controller gate names within one controller half, per
// handshake.AddController: the latch-enable gC, the request-out gC, the
// opened-bit, and the acknowledge AND.
const (
	GateG  = "g"
	GateRO = "ro"
	GateB  = "b"
	GateAI = "ai"
)

// Region parses the "G<id>_" prefix off a control-network name. It is the
// blessed accessor for the convention; handshake.ControlRegion is its
// implementation and must not be called from other packages.
func Region(name string) (int, bool) { return handshake.ControlRegion(name) }

// Name builds the canonical "G<id>_<suffix>" control-network name: channel
// nets (Name(g, "mri")), enable nets (Name(g, "gm")), rendezvous nets
// (Name(g, "reqjoin"), Name(g, "sao")), environment ports
// (Name(g, "env_ri")).
func Name(g int, suffix string) string { return fmt.Sprintf("G%d_%s", g, suffix) }

// CtrlPrefix returns the instance-name prefix of region g's master or slave
// controller ("G<g>_Mctrl" / "G<g>_Sctrl").
func CtrlPrefix(g int, master bool) string {
	if master {
		return Name(g, "Mctrl")
	}
	return Name(g, "Sctrl")
}

// CtrlGate returns the full instance name of one controller gate, e.g.
// CtrlGate(3, true, GateG) == "G3_Mctrl/g".
func CtrlGate(g int, master bool, gate string) string {
	return CtrlPrefix(g, master) + "/" + gate
}

// DelayPrefix returns region g's matched request delay-element instance
// prefix (without the trailing slash).
func DelayPrefix(g int) string { return Name(g, "delem") }

// MSDelayPrefix returns region g's master→slave delay-element prefix.
func MSDelayPrefix(g int) string { return Name(g, "deMS") }

// ChainStage returns the i-th AND stage (1-based) of a delay-element chain,
// e.g. ChainStage(DelayPrefix(3), 1) == "G3_delem/a1".
func ChainStage(prefix string, i int) string { return fmt.Sprintf("%s/a%d", prefix, i) }

// CTreePrefix returns region g's request or acknowledge C-Muller rendezvous
// tree instance prefix.
func CTreePrefix(g int, req bool) string {
	if req {
		return Name(g, "reqC")
	}
	return Name(g, "ackC")
}

// CdetPrefix returns region g's dual-rail completion-network prefix.
func CdetPrefix(g int) string { return Name(g, "cdet") }

// Environment handshake port names for boundary regions (§4.8): a region
// with no predecessors receives requests on env_ri and publishes its
// acknowledge on env_ai; a region with no successors receives acknowledges
// on env_ao and publishes its request on env_ro.
func EnvRequestPort(g int) string { return Name(g, "env_ri") }
func EnvReqAckPort(g int) string  { return Name(g, "env_ai") }
func EnvAckPort(g int) string     { return Name(g, "env_ao") }
func EnvReadyPort(g int) string   { return Name(g, "env_ro") }

// IsEnvRequestNet classifies a port-driven net as a request input of region
// g: the flow's exact env_ri name, or (for mutated/foreign netlists that
// keep the suffix) any _env_ri-suffixed name.
func IsEnvRequestNet(name string, g int) bool {
	return name == EnvRequestPort(g) || strings.HasSuffix(name, "_env_ri")
}

// IsDelayInstName reports whether an instance name places it inside a
// matched or master→slave delay-element chain.
func IsDelayInstName(name string) bool {
	return strings.Contains(name, "_delem/") || strings.Contains(name, "_deMS/")
}

// Two-phase clock-generator names (the twophase backend). The generator is
// region-independent, so its gates live under the fixed TPGenPrefix; only
// the per-region phase-distribution buffers carry the "G<id>_" prefix. The
// names follow the same round-trip discipline as the handshake network:
// twophase.Derive rebuilds its IR from a re-read netlist using them alone.
const (
	// TPGenPrefix roots every generator-owned instance and net name.
	TPGenPrefix = "TPgen"
	// TPSrcName is the ring-oscillator NOR: A = rst_2phase, B = the ring
	// feedback, Z = the raw oscillation.
	TPSrcName = "TPgen/src"
	// TPInvName inverts the raw oscillation for the phase splitter.
	TPInvName = "TPgen/inv"
	// TPPhase1Name / TPPhase2Name are the cross-coupled splitter NORs whose
	// Z pins are the phi1 / phi2 phase roots.
	TPPhase1Name = "TPgen/p1"
	TPPhase2Name = "TPgen/p2"
	// TPRingPrefix is the symmetric buffer chain setting the half-period.
	TPRingPrefix = "TPgen_ring"
	// TPNov1Prefix / TPNov2Prefix are the non-overlap feedback chains from
	// phi1 into the p2 NOR and from phi2 into the p1 NOR.
	TPNov1Prefix = "TPgen_nov1"
	TPNov2Prefix = "TPgen_nov2"
)

// TPDistName returns region g's phase-distribution buffer name: the master
// (phi1) or slave (phi2) enable driver.
func TPDistName(g int, master bool) string {
	if master {
		return Name(g, "tpm")
	}
	return Name(g, "tps")
}

// IsTPGenName reports whether an instance or net name belongs to the
// two-phase generator core (not the per-region distribution, which the
// "G<id>_" convention already classifies).
func IsTPGenName(name string) bool {
	return name == TPGenPrefix ||
		strings.HasPrefix(name, TPGenPrefix+"/") ||
		strings.HasPrefix(name, TPGenPrefix+"_")
}
