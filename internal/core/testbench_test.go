package core

import (
	"context"
	"strings"
	"testing"

	"desync/internal/designs"
)

// §4.8: the desynchronized testbench differs from the synchronous one only
// in replacing clock references with request/acknowledge handling.
func TestWriteTestbench(t *testing.T) {
	lib := hs()
	dsync, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	tbSync := WriteTestbench(dsync, nil, "clk", 4.65)
	if !strings.Contains(tbSync, "always #2.3250 clk = ~clk;") {
		t.Fatalf("synchronous testbench missing clock generator:\n%s", tbSync)
	}
	if !strings.Contains(tbSync, "module tb_dlx;") || !strings.Contains(tbSync, "dlx dut (") {
		t.Fatal("testbench skeleton broken")
	}

	ddes, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Desynchronize(context.Background(), ddes, Options{Period: 4.65})
	if err != nil {
		t.Fatal(err)
	}
	tbDes := WriteTestbench(ddes, res, "", 4.65)
	if strings.Contains(tbDes, "always #") {
		t.Fatal("desynchronized testbench must not generate a clock")
	}
	if !strings.Contains(tbDes, "rst_desync = 1;") || !strings.Contains(tbDes, "rst_desync = 0; // release") {
		t.Fatalf("desynchronization reset sequence missing:\n%s", tbDes)
	}
	// Every environment handshake port created by the tool is driven.
	for _, port := range append(res.Insert.EnvRequests, res.Insert.EnvAcks...) {
		if !strings.Contains(tbDes, tbName(port)) {
			t.Fatalf("environment port %s not handled", port)
		}
	}
	// Bus-bit ports flatten to legal identifiers.
	if strings.Contains(tbDes, "watch[") {
		t.Fatal("bus-bit names not flattened")
	}
	if !strings.Contains(tbDes, "watch_0") {
		t.Fatal("flattened bus names missing")
	}
}
