package designs

import (
	"fmt"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/stdcells"
)

func TestBuildARMStructure(t *testing.T) {
	lib := stdcells.New(stdcells.LowLeakage)
	d, err := BuildARMLike(lib, 42)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Top.ComputeStats()
	if st.FFs < 1000 {
		t.Fatalf("ARM too small: %d FFs", st.FFs)
	}
	if st.CombGates < 3000 {
		t.Fatalf("ARM too small: %d comb gates", st.CombGates)
	}
	if errs := d.Top.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	// Single-region pre-assignment for the manual grouping path (§5.3).
	for _, in := range d.Top.Insts {
		if in.Group != 1 {
			t.Fatalf("%s not in region 1", in.Name)
		}
	}
	// Deterministic program: same seed, same netlist size.
	d2, err := BuildARMLike(stdcells.New(stdcells.LowLeakage), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Top.Insts) != len(d.Top.Insts) {
		t.Fatal("generator not deterministic")
	}
}

// The ARM-like core has no golden model (the paper had no ARM testbench,
// §5.3), but it must at least run: the PC advances every cycle and the
// datapath produces known values.
func TestARMSimulates(t *testing.T) {
	lib := stdcells.New(stdcells.LowLeakage)
	d, err := BuildARMLike(lib, 42)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d.Top, sim.Config{Corner: netlist.Best})
	if err != nil {
		t.Fatal(err)
	}
	period := 12.0
	s.Drive("rstn", logic.L, 0)
	s.Drive("rstn", logic.H, period*0.4)
	s.Clock("clk", period, 0, period*20)
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	caps := s.Captures["apc_r[0]"]
	if len(caps) < 15 {
		t.Fatalf("PC captured only %d cycles", len(caps))
	}
	// PC is an incrementing counter: bit 0 alternates once out of reset.
	flips := 0
	for k := 1; k < len(caps); k++ {
		if caps[k] != caps[k-1] {
			flips++
		}
	}
	if flips < len(caps)/2 {
		t.Fatalf("PC not advancing: %d flips in %d cycles", flips, len(caps))
	}
	// Register-file writes resolve to known values.
	known := 0
	for r := 0; r < 16; r++ {
		if s.Vector(fmt.Sprintf("ar%d_q", r), 32).Known() {
			known++
		}
	}
	if known < 4 {
		t.Fatalf("only %d registers reached known values", known)
	}
}
