package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestRepoClean runs the checker over the actual repository; the conventions
// it enforces must hold on every commit.
func TestRepoClean(t *testing.T) {
	var sb strings.Builder
	n, err := run("../..", &sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("repolint reported %d finding(s) on the tree:\n%s", n, sb.String())
	}
}

// check parses src as the file named rel and returns the rule IDs fired.
func check(t *testing.T, rel, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, rel, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rules []string
	for _, fd := range checkFile(fset, rel, f) {
		rules = append(rules, fd.rule)
	}
	return rules
}

func TestPanicOutsideAllowlistFires(t *testing.T) {
	src := `package foo
func Bad() { panic("boom") }
`
	got := check(t, "internal/foo/foo.go", src)
	if len(got) != 1 || got[0] != "RL-PANIC" {
		t.Fatalf("want [RL-PANIC], got %v", got)
	}
}

func TestAllowlistedPanicAccepted(t *testing.T) {
	src := `package netlist
func (m *Module) MustConnect(a, b int) { panic("bad connect") }
`
	if got := check(t, "internal/netlist/design.go", src); len(got) != 0 {
		t.Fatalf("allowlisted panic flagged: %v", got)
	}
}

func TestStageArgRuleFires(t *testing.T) {
	src := `package core
func f() error { return flowErr("import", "d", "", nil) }
func g() error { return flowErr(StageImport, "d", "", nil) }
func h(stage string) error { return flowErr(stage, "d", "", nil) }
`
	got := check(t, "internal/core/other.go", src)
	if len(got) != 1 || got[0] != "RL-STAGE" {
		t.Fatalf("want exactly one RL-STAGE for the string literal, got %v", got)
	}
}

func TestFlowReturnRuleFires(t *testing.T) {
	src := `package core
import "fmt"
func Desynchronize() (int, error) {
	if true {
		return 0, fmt.Errorf("bare")
	}
	f := func() error { return fmt.Errorf("nested bare") }
	_ = f
	return 1, nil
}
`
	got := check(t, "internal/core/desync.go", src)
	var flow int
	for _, r := range got {
		if r == "RL-FLOW" {
			flow++
		}
	}
	if flow != 2 {
		t.Fatalf("want 2 RL-FLOW findings (outer + nested literal), got %v", got)
	}
}

func TestFlowReturnRuleScopedToDriver(t *testing.T) {
	src := `package core
import "fmt"
func ecoMeasure() error { return fmt.Errorf("bare but legal here") }
`
	if got := check(t, "internal/core/eco.go", src); len(got) != 0 {
		t.Fatalf("RL-FLOW leaked outside desync.go: %v", got)
	}
}

// TestEquivPanicPolicy pins the formal engine to the no-panic policy: a
// panic introduced anywhere in internal/equiv is flagged, because the
// package has no allowlisted sites — and must not silently grow any, since
// a panic mid-exploration would take down a drdesync -equiv run instead of
// producing a finding.
func TestEquivPanicPolicy(t *testing.T) {
	src := `package equiv
func (m *Model) explode() { panic("unaudited") }
`
	got := check(t, "internal/equiv/explore.go", src)
	if len(got) != 1 || got[0] != "RL-PANIC" {
		t.Fatalf("want [RL-PANIC] for a panic in internal/equiv, got %v", got)
	}
	for key := range panicAllowlist {
		if strings.HasPrefix(key, "internal/equiv/") {
			t.Fatalf("internal/equiv must stay panic-free, but %q is allowlisted", key)
		}
	}
}
