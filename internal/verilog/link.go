package verilog

import (
	"fmt"

	"desync/internal/netlist"
)

// Names of the internal constant nets created for 1'b0/1'b1 connections.
const (
	tie0Net = "__tie0"
	tie1Net = "__tie1"
)

// Read parses gate-level Verilog and links it against the library, returning
// a design rooted at the named top module (auto-detected when top is "": the
// single module never instantiated by another). Buses are bit-blasted,
// assigns are replaced by net aliases (§3.2.1), and constants are driven by
// tie cells.
func Read(src string, lib *netlist.Library, top string) (*netlist.Design, error) {
	mods, err := parseSource(src)
	if err != nil {
		return nil, err
	}
	byName := map[string]*srcModule{}
	instantiated := map[string]bool{}
	for _, m := range mods {
		if byName[m.name] != nil {
			return nil, fmt.Errorf("verilog: duplicate module %s", m.name)
		}
		byName[m.name] = m
	}
	for _, m := range mods {
		for _, in := range m.insts {
			if byName[in.cell] != nil {
				instantiated[in.cell] = true
			}
		}
	}
	if top == "" {
		for _, m := range mods {
			if !instantiated[m.name] {
				if top != "" {
					return nil, fmt.Errorf("verilog: multiple top candidates (%s, %s); specify one", top, m.name)
				}
				top = m.name
			}
		}
		if top == "" {
			return nil, fmt.Errorf("verilog: no top-level module found")
		}
	}
	if byName[top] == nil {
		return nil, fmt.Errorf("verilog: top module %s not in source", top)
	}

	lk := &linker{lib: lib, src: byName, built: map[string]*netlist.Module{}, building: map[string]bool{}}
	topMod, err := lk.module(top)
	if err != nil {
		return nil, err
	}
	d := &netlist.Design{Name: top, Top: topMod, Modules: lk.built, Lib: lib}
	return d, nil
}

type linker struct {
	lib      *netlist.Library
	src      map[string]*srcModule
	built    map[string]*netlist.Module
	building map[string]bool
	// pinShapes caches pinBits per cell/module name: port shapes are fixed,
	// and rebuilding the map for each of a million instances dominated the
	// link step's allocation.
	pinShapes map[string]pinShape
}

// pinShape is the flattened pin list of a cell or module: single-bit pin
// names in declaration order, and the same bits grouped by declared base
// name. Cached entries are shared and must not be mutated.
type pinShape struct {
	order  []string
	byBase map[string][]string
}

func (lk *linker) module(name string) (*netlist.Module, error) {
	if m := lk.built[name]; m != nil {
		return m, nil
	}
	if lk.building[name] {
		return nil, fmt.Errorf("verilog: recursive module instantiation of %s", name)
	}
	lk.building[name] = true
	defer delete(lk.building, name)

	sm := lk.src[name]
	b := &modBuilder{lk: lk, sm: sm, m: netlist.NewModule(name), alias: map[string]string{}, ncCount: 0}
	if err := b.build(); err != nil {
		return nil, err
	}
	lk.built[name] = b.m
	return b.m, nil
}

type modBuilder struct {
	lk      *linker
	sm      *srcModule
	m       *netlist.Module
	alias   map[string]string // union-find parent; roots absent
	ncCount int
	tie     [2]*netlist.Net
}

func (b *modBuilder) find(name string) string {
	root := name
	for {
		p, ok := b.alias[root]
		if !ok {
			break
		}
		root = p
	}
	// Path compression.
	for name != root {
		next := b.alias[name]
		b.alias[name] = root
		name = next
	}
	return root
}

// union makes rhs the canonical name of lhs (rhs drives lhs in an assign).
func (b *modBuilder) union(lhs, rhs string) {
	rl, rr := b.find(lhs), b.find(rhs)
	if rl != rr {
		b.alias[rl] = rr
	}
}

func (b *modBuilder) build() error {
	sm := b.sm
	// 1. Resolve assign aliases (constants alias to the tie nets).
	for _, a := range sm.assigns {
		for i := range a.lhs {
			l, r := a.lhs[i], a.rhs[i]
			if l.name == "" {
				return fmt.Errorf("verilog: %s: line %d: assign to non-net", sm.name, a.line)
			}
			switch {
			case r.cval == 0:
				b.union(l.name, tie0Net)
			case r.cval == 1:
				b.union(l.name, tie1Net)
			default:
				b.union(l.name, r.name)
			}
		}
	}
	// 2. Ports, bit-blasted in header order.
	for _, base := range sm.portOrder {
		dir, ok := sm.dirs[base]
		if !ok {
			return fmt.Errorf("verilog: %s: port %s has no direction declaration", sm.name, base)
		}
		var bitNames []string
		if r, isBus := sm.ranges[base]; isBus {
			for _, bit := range r.bits() {
				bitNames = append(bitNames, fmt.Sprintf("%s[%d]", base, bit))
			}
		} else {
			bitNames = []string{base}
		}
		for _, pn := range bitNames {
			net := b.m.EnsureNet(b.find(pn))
			if _, err := b.m.AddPortOnNet(pn, dir, net); err != nil {
				return fmt.Errorf("verilog: %s: %v", sm.name, err)
			}
		}
	}
	// 3. Instances.
	for _, si := range sm.insts {
		if err := b.instance(si); err != nil {
			return err
		}
	}
	// 4. Constant nets still undriven after linking get tie-cell drivers.
	// This runs after all instances so a netlist that spells out its own
	// tie cells (e.g. a re-imported export) keeps them as the drivers.
	for v, name := range [2]string{tie0Net, tie1Net} {
		n := b.m.Net(name)
		if n == nil || n.HasDriver() {
			continue
		}
		cell, ok := b.lk.lib.Cells[[2]string{"TIE0", "TIE1"}[v]]
		if !ok {
			continue
		}
		instName := "__" + cell.Name
		for b.m.Inst(instName) != nil {
			instName += "_"
		}
		in := b.m.AddInst(instName, cell)
		if err := b.m.Connect(in, "Z", n); err != nil {
			return fmt.Errorf("verilog: %s: %v", sm.name, err)
		}
	}
	return nil
}

// pinBits returns the single-bit pin names of a cell or submodule in
// positional order, and a lookup from base name to its expanded bit pins.
func (b *modBuilder) pinBits(si srcInst) (order []string, byBase map[string][]string, err error) {
	if sh, ok := b.lk.pinShapes[si.cell]; ok {
		return sh.order, sh.byBase, nil
	}
	byBase = map[string][]string{}
	if cell, ok := b.lk.lib.Cells[si.cell]; ok {
		for _, p := range cell.Pins {
			order = append(order, p.Name)
			byBase[p.Name] = []string{p.Name}
		}
	} else {
		ssm, ok := b.lk.src[si.cell]
		if !ok {
			return nil, nil, fmt.Errorf("verilog: %s: line %d: unknown cell or module %q", b.sm.name, si.line, si.cell)
		}
		for _, base := range ssm.portOrder {
			var bits []string
			if r, isBus := ssm.ranges[base]; isBus {
				for _, bit := range r.bits() {
					bits = append(bits, fmt.Sprintf("%s[%d]", base, bit))
				}
			} else {
				bits = []string{base}
			}
			order = append(order, bits...)
			byBase[base] = bits
		}
	}
	if b.lk.pinShapes == nil {
		b.lk.pinShapes = map[string]pinShape{}
	}
	b.lk.pinShapes[si.cell] = pinShape{order: order, byBase: byBase}
	return order, byBase, nil
}

func (b *modBuilder) instance(si srcInst) error {
	order, byBase, err := b.pinBits(si)
	if err != nil {
		return err
	}
	if b.m.Inst(si.name) != nil {
		return fmt.Errorf("verilog: %s: line %d: duplicate instance %q", b.sm.name, si.line, si.name)
	}
	var inst *netlist.Inst
	if cell, ok := b.lk.lib.Cells[si.cell]; ok {
		inst = b.m.AddInst(si.name, cell)
	} else {
		sub, err := b.lk.module(si.cell)
		if err != nil {
			return err
		}
		inst = b.m.AddSubInst(si.name, sub)
	}

	connect := func(pin string, ref srcRef) error {
		var net *netlist.Net
		switch {
		case ref.open:
			b.ncCount++
			net = b.m.EnsureNet(fmt.Sprintf("__nc%d", b.ncCount))
		case ref.cval == 0:
			net = b.tieNet(0)
		case ref.cval == 1:
			net = b.tieNet(1)
		default:
			switch canon := b.find(ref.name); canon {
			case tie0Net:
				net = b.tieNet(0)
			case tie1Net:
				net = b.tieNet(1)
			default:
				net = b.m.EnsureNet(canon)
			}
		}
		if err := b.m.Connect(inst, pin, net); err != nil {
			return fmt.Errorf("verilog: %s: line %d: %v", b.sm.name, si.line, err)
		}
		return nil
	}

	if si.positional {
		var flat []srcRef
		for _, c := range si.conns {
			flat = append(flat, c.refs...)
		}
		if len(flat) != len(order) {
			return fmt.Errorf("verilog: %s: line %d: instance %s has %d positional connections, cell %s has %d pins",
				b.sm.name, si.line, si.name, len(flat), si.cell, len(order))
		}
		for i, ref := range flat {
			if err := connect(order[i], ref); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range si.conns {
		pins, ok := byBase[c.pin]
		if !ok {
			return fmt.Errorf("verilog: %s: line %d: instance %s: no pin %q on %s",
				b.sm.name, si.line, si.name, c.pin, si.cell)
		}
		if len(c.refs) != len(pins) {
			return fmt.Errorf("verilog: %s: line %d: instance %s pin %s: width %d vs %d",
				b.sm.name, si.line, si.name, c.pin, len(c.refs), len(pins))
		}
		for i, ref := range c.refs {
			if err := connect(pins[i], ref); err != nil {
				return err
			}
		}
	}
	return nil
}

// tieNet lazily resolves the constant nets. Drivers are added in build
// step 4, once every source instance has had its chance to drive them.
func (b *modBuilder) tieNet(v int) *netlist.Net {
	if b.tie[v] == nil {
		b.tie[v] = b.m.EnsureNet([2]string{tie0Net, tie1Net}[v])
	}
	return b.tie[v]
}
