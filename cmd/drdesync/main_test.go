package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desync/internal/designs"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// End-to-end CLI flow on real files: generate the DLX, desynchronize it
// through run(), and verify every artifact re-reads.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "dlx.v")
	if err := os.WriteFile(in, []byte(verilog.Write(d)), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "ddlx.v")
	sdcOut := filepath.Join(dir, "ddlx.sdc")
	blifOut := filepath.Join(dir, "ddlx.blif")
	tbOut := filepath.Join(dir, "tb.v")
	if err := run(context.Background(), runOpts{
		in: in, libVariant: "HS", out: out, sdcOut: sdcOut, blifOut: blifOut,
		tbOut: tbOut, period: 4.65, margin: 1.15, mux: true,
	}); err != nil {
		t.Fatal(err)
	}
	// The desynchronized netlist re-imports cleanly.
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := verilog.Read(string(src), stdcells.New(stdcells.HighSpeed), "")
	if err != nil {
		t.Fatal(err)
	}
	if errs := d2.Top.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	if d2.Top.Port("rst_desync") == nil || d2.Top.Port("delsel[0]") == nil {
		t.Fatal("desynchronization ports missing")
	}
	// Constraints and BLIF landed.
	sdcText, err := os.ReadFile(sdcOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"create_clock", "set_disable_timing", "set_size_only"} {
		if !strings.Contains(string(sdcText), want) {
			t.Fatalf("SDC missing %s", want)
		}
	}
	blifText, err := os.ReadFile(blifOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blifText), ".model dlx") {
		t.Fatal("BLIF broken")
	}
	tbText, err := os.ReadFile(tbOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tbText), "rst_desync") {
		t.Fatal("testbench broken")
	}
}

// TestRunTwoPhaseBackend drives the CLI end to end with -backend twophase:
// the converted netlist must carry the two-phase reset port instead of the
// handshake one, the SDC must define both phase clocks, and the
// desync-only -tb output must be skipped, not written.
func TestRunTwoPhaseBackend(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "dlx2p.v")
	sdcOut := filepath.Join(dir, "dlx2p.sdc")
	tbOut := filepath.Join(dir, "tb.v")
	if err := run(context.Background(), runOpts{
		gen: "dlx", backend: "twophase", libVariant: "HS",
		out: out, sdcOut: sdcOut, tbOut: tbOut, period: 4.65, margin: 1.15,
	}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := verilog.Read(string(src), stdcells.New(stdcells.HighSpeed), "")
	if err != nil {
		t.Fatal(err)
	}
	if errs := d2.Top.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	if d2.Top.Port("rst_2phase") == nil {
		t.Fatal("two-phase reset port missing")
	}
	if d2.Top.Port("rst_desync") != nil {
		t.Fatal("handshake reset port on a two-phase conversion")
	}
	sdcText, err := os.ReadFile(sdcOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Phi1", "Phi2", "set_disable_timing"} {
		if !strings.Contains(string(sdcText), want) {
			t.Fatalf("SDC missing %s", want)
		}
	}
	if _, err := os.Stat(tbOut); !os.IsNotExist(err) {
		t.Fatal("-tb wrote a testbench for the twophase backend")
	}

	// An unregistered backend fails with a staged error, not a panic.
	if err := run(context.Background(), runOpts{
		gen: "dlx", backend: "fourphase", libVariant: "HS",
		out: filepath.Join(dir, "o.v"), period: 1, margin: 1.15,
	}); err == nil || !strings.Contains(err.Error(), "fourphase") {
		t.Fatalf("unknown backend not rejected: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	// Missing input file.
	if err := run(context.Background(), runOpts{
		in: filepath.Join(dir, "nope.v"), libVariant: "HS",
		out: filepath.Join(dir, "o.v"), period: 1, margin: 1.15,
	}); err == nil {
		t.Fatal("expected missing-file error")
	}
	// Bad library variant.
	in := filepath.Join(dir, "x.v")
	os.WriteFile(in, []byte("module m (a); input a; endmodule"), 0o644)
	if err := run(context.Background(), runOpts{
		in: in, libVariant: "XX", out: filepath.Join(dir, "o.v"),
		period: 1, margin: 1.15,
	}); err == nil {
		t.Fatal("expected library error")
	}
	// Unknown false-path net.
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	dlxIn := filepath.Join(dir, "dlx.v")
	os.WriteFile(dlxIn, []byte(verilog.Write(d)), 0o644)
	if err := run(context.Background(), runOpts{
		in: dlxIn, libVariant: "HS", out: filepath.Join(dir, "o.v"),
		falsePaths: "no_such_net", period: 1, margin: 1.15,
	}); err == nil {
		t.Fatal("expected false-path error")
	}
}
