package expt

import (
	"context"
	"fmt"
	"strings"
	"time"

	"desync/internal/netlist"
	"desync/internal/stdcells"
	"desync/internal/sweep"
)

// SurfaceConfig sizes the DLX robustness-surface sweep — the Fig 5.3/5.4
// measurement extended over the full corner × chip × fault cross-product
// the original paper never ran.
type SurfaceConfig struct {
	// Corners is the number of grid points across [1, CornerSpread]
	// (default 3: best, mid, worst).
	Corners int
	// Chips is the Monte Carlo intra-die population per corner (default 3).
	Chips int
	// Sigma is the per-instance mismatch sigma of each chip (default 0.05).
	Sigma float64
	// Cycles sets each scenario's run length in original clock periods
	// (default 6 — shorter than the campaign's 12: the sweep trades
	// per-scenario depth for cross-product breadth).
	Cycles int
	// DelayFactor / DelayPerRegion / Glitches select the fault matrix, as
	// in FaultCampaignConfig (defaults 40 / 2 / off).
	DelayFactor    float64
	DelayPerRegion int
	Glitches       bool
	// Seed roots the chip draws and per-scenario jitter; every scenario
	// reproduces standalone from (Seed, index).
	Seed int64
	// Parallelism bounds the sweep workers; the report is identical at any
	// value.
	Parallelism int
	// Checkpoint/Resume/FsyncEvery, ScenarioTimeout and MaxFailures pass
	// through to sweep.Config.
	Checkpoint      string
	Resume          bool
	FsyncEvery      int
	ScenarioTimeout time.Duration
	MaxFailures     int
	// Progress, when non-nil, observes every folded scenario.
	Progress func(done, total int)
}

// DLXRobustnessSurface desynchronizes the DLX (when f is nil) and sweeps
// the robustness surface: the fault campaign's matrix evaluated at every
// corner-grid point with Monte Carlo mismatch on top. Flow equivalence
// predicts the surface is flat at 100% detection for the under-margin and
// stuck-at classes — the delay-insensitivity claim, measured instead of
// assumed.
func DLXRobustnessSurface(ctx context.Context, f *DLXFlow, cfg SurfaceConfig) (*sweep.Report, error) {
	if f == nil {
		var err error
		if f, err = RunDLXFlow(FlowConfig{Parallelism: cfg.Parallelism}); err != nil {
			return nil, err
		}
	}
	return RobustnessSurface(ctx, f.Desync.Top, f.Period, cfg)
}

// RobustnessSurface sweeps the same surface over any desynchronized top
// that follows the flow's reset convention — drsweep's -gen path hands it
// the generic-flow output for parametric pipeline designs.
func RobustnessSurface(ctx context.Context, top *netlist.Module, period float64, cfg SurfaceConfig) (*sweep.Report, error) {
	if cfg.Corners <= 0 {
		cfg.Corners = 3
	}
	if cfg.Chips <= 0 {
		cfg.Chips = 3
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 0.05
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 6
	}
	if cfg.DelayFactor == 0 {
		cfg.DelayFactor = 40
	}
	if cfg.DelayPerRegion == 0 {
		cfg.DelayPerRegion = 2
	}
	c, err := NewCampaign(ctx, top, period, cfg.Cycles, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	list := c.DelayFaults(cfg.DelayFactor, cfg.DelayPerRegion)
	list = append(list, c.ControlStuckFaults()...)
	if cfg.Glitches {
		mid := 2 + period*float64(cfg.Cycles)*3
		list = append(list, c.GlitchFaults(mid, 0.3)...)
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("expt: fault matrix is empty")
	}
	return sweep.Run(ctx, c, sweep.Config{
		Space: sweep.Space{
			Corners: stdcells.CornerGrid(cfg.Corners),
			Chips:   cfg.Chips,
			Sigma:   cfg.Sigma,
			Faults:  list,
		},
		Seed:            cfg.Seed,
		Parallelism:     cfg.Parallelism,
		ScenarioTimeout: cfg.ScenarioTimeout,
		MaxFailures:     cfg.MaxFailures,
		Checkpoint:      cfg.Checkpoint,
		Resume:          cfg.Resume,
		FsyncEvery:      cfg.FsyncEvery,
		Progress:        cfg.Progress,
	})
}

// RenderSurface prints the robustness surface with the SSTA prediction it
// is measured against: the statistical matching verdict says the delay
// elements cover their logic with on-die probability ~1 at every global
// operating point, so the measured detection rate should not degrade
// toward the worst corner.
func RenderSurface(rep *sweep.Report, rows []MatchRow) string {
	var sb strings.Builder
	sb.WriteString(rep.Render())
	if len(rows) > 0 {
		min := rows[0].CoverShared
		for _, r := range rows[1:] {
			if r.CoverShared < min {
				min = r.CoverShared
			}
		}
		fmt.Fprintf(&sb, "  ssta prediction: min on-die element coverage %.1f%% across regions — surface should stay flat\n", 100*min)
	}
	return sb.String()
}
