package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"desync/internal/faults"
	"desync/internal/par"
	"desync/internal/variability"
)

// Config drives one sweep.
type Config struct {
	// Space is the scenario cross-product (corners × chips × faults).
	Space Space
	// Seed roots the Monte Carlo chip draws: chip k's per-instance factors
	// come from DeriveSeed(Seed, k), so the same (Seed, Space) enumerates
	// the same chips in any run — resumed, re-sharded or replayed.
	Seed int64
	// Parallelism bounds the sweep's workers (0 = GOMAXPROCS). The report
	// and journal are byte-identical at any value.
	Parallelism int
	// ScenarioTimeout quarantines any single scenario that runs longer than
	// this wall-clock budget (0 = no deadline). Timeouts are recorded, not
	// fatal — but they are machine-speed dependent, so byte-identical
	// replays are only guaranteed for sweeps where no deadline fires.
	ScenarioTimeout time.Duration
	// MaxFailures stops the sweep gracefully once this many scenarios have
	// been quarantined (0 = no limit). The report is flagged EarlyStopped
	// and covers exactly the journaled prefix.
	MaxFailures int
	// Checkpoint is the journal path ("" = no checkpointing).
	Checkpoint string
	// Resume replays an existing journal at Checkpoint and continues after
	// its clean prefix instead of starting over.
	Resume bool
	// FsyncEvery batches journal fsyncs (records per sync; 0 = every
	// record). A crash can lose at most this many trailing records.
	FsyncEvery int
	// Progress, when non-nil, is called after every folded scenario.
	Progress func(done, total int)
}

// Report is the sweep's aggregate result — the robustness surface.
type Report struct {
	Design  string    `json:"design"`
	Seed    int64     `json:"seed"`
	Corners []float64 `json:"corners"`
	Chips   int       `json:"chips"`
	Sigma   float64   `json:"sigma"`
	Faults  int       `json:"faults"`

	Total int `json:"total"`
	Done  int `json:"done"`
	// EarlyStopped marks a MaxFailures cutoff. The report deliberately does
	// not say whether the run was resumed: a resumed sweep must serialize
	// byte-identically to an uninterrupted one.
	EarlyStopped bool `json:"early_stopped,omitempty"`

	Injected int `json:"injected"`
	Detected int `json:"detected"`

	CornerStats []*CornerStats `json:"corner_stats"`

	FailureCount int          `json:"failure_count"`
	Failures     []FailureRef `json:"failures,omitempty"`
}

// errEnough is the fold's graceful MaxFailures cutoff.
var errEnough = errors.New("sweep: failure budget exhausted")

// errDeadline marks a scenario that blew its wall-clock budget; it travels
// out of the simulator through the interrupt hook.
var errDeadline = errors.New("sweep: scenario deadline exceeded")

// Run sweeps the whole space against the campaign. Scenarios compute on
// cfg.Parallelism workers; results fold in strict scenario order into the
// aggregates and (when configured) the checkpoint journal, so the report
// is byte-identical at any worker count and a resumed run converges to the
// same bytes as an uninterrupted one. A cancelled context aborts with
// ctx.Err() after the journal's clean prefix is durable; scenarios that
// panic, time out or error are quarantined as records and never kill the
// sweep.
func Run(ctx context.Context, c *faults.Campaign, cfg Config) (*Report, error) {
	space := cfg.Space.normalize()
	if len(space.Faults) == 0 {
		return nil, fmt.Errorf("sweep: empty fault matrix")
	}
	total := space.Size()

	// Chip draws: one per-instance intra-die factor map per chip
	// (variability's Normal(1, σ) mismatch model), shared read-only by every
	// corner — a chip's mismatch pattern is silicon; the corner is
	// environment. Chip k reproduces from DeriveSeed(Seed, k) alone. Chip 0
	// of a Sigma=0 sweep is the nominal die.
	chips := make([]map[string]float64, space.Chips)
	if space.Sigma > 0 {
		for k := range chips {
			rng := rand.New(rand.NewSource(faults.DeriveSeed(cfg.Seed, int64(k))))
			chips[k] = variability.IntraDieFactors(c.M, space.Sigma, rng)
		}
	}

	a := newAgg(space)
	rep := &Report{
		Design: c.M.Name, Seed: cfg.Seed, Corners: space.Corners,
		Chips: space.Chips, Sigma: space.Sigma, Faults: len(space.Faults),
		Total: total,
	}

	var jn *Journal
	start := 0
	if cfg.Checkpoint != "" {
		hdr := Header{
			Design: c.M.Name, Seed: cfg.Seed, Corners: space.Corners,
			Chips: space.Chips, Sigma: space.Sigma,
			FaultsHash: HashFaults(space.Faults), Total: total,
		}
		var err error
		if cfg.Resume {
			var prefix []Record
			jn, prefix, err = ResumeJournal(cfg.Checkpoint, hdr, cfg.FsyncEvery)
			if err != nil {
				return nil, err
			}
			for _, rec := range prefix {
				a.add(rec)
			}
			start = len(prefix)
		} else {
			jn, err = CreateJournal(cfg.Checkpoint, hdr, cfg.FsyncEvery)
			if err != nil {
				return nil, err
			}
		}
		defer jn.Close()
	}

	err := par.Fold(ctx, cfg.Parallelism, start, total,
		func(ctx context.Context, i int) (Record, error) {
			return runOne(ctx, c, cfg, space, chips, i)
		},
		func(i int, rec Record) error {
			if jn != nil {
				if err := jn.Append(rec); err != nil {
					return fmt.Errorf("sweep: journal: %w", err)
				}
			}
			a.add(rec)
			if cfg.Progress != nil {
				cfg.Progress(a.done, total)
			}
			if cfg.MaxFailures > 0 && a.failureCount >= cfg.MaxFailures {
				return errEnough
			}
			return nil
		})
	if errors.Is(err, errEnough) {
		rep.EarlyStopped = true
		err = nil
	}
	if err != nil {
		return nil, err
	}
	if jn != nil {
		if cerr := jn.Close(); cerr != nil {
			return nil, fmt.Errorf("sweep: journal: %w", cerr)
		}
		jn = nil
	}

	rep.Done = a.done
	rep.Injected, rep.Detected = a.injected, a.detected
	rep.FailureCount = a.failureCount
	rep.Failures = a.failures
	for _, cs := range a.corners {
		cs.finalize()
		rep.CornerStats = append(rep.CornerStats, cs)
	}
	return rep, nil
}

// runOne computes one scenario: decode the cell, arm the wall-clock
// deadline, run quarantined, and classify the error. Only a context
// cancellation escapes as an error — everything else becomes a Record.
func runOne(ctx context.Context, c *faults.Campaign, cfg Config, space Space, chips []map[string]float64, i int) (Record, error) {
	corner, chip, fault := space.Decode(i)
	rec := Record{Index: i, Corner: corner, Chip: chip, Fault: fault}

	began := time.Now()
	interrupt := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if cfg.ScenarioTimeout > 0 && time.Since(began) > cfg.ScenarioTimeout {
			return errDeadline
		}
		return nil
	}
	out, err := runQuarantined(ctx, c, faults.Scenario{
		Fault:        space.Faults[fault],
		Index:        int64(i),
		Scale:        space.Corners[corner],
		DelayFactors: chips[chip],
		Interrupt:    interrupt,
	})
	switch {
	case err == nil:
		rec.Outcome = &out
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return rec, err // sweep abort, not a scenario failure
	case errors.Is(err, errDeadline):
		rec.Failure = &ScenarioError{Kind: KindTimeout, Msg: err.Error()}
	default:
		var se *ScenarioError
		if errors.As(err, &se) {
			rec.Failure = se
		} else {
			rec.Failure = &ScenarioError{Kind: KindError, Msg: err.Error()}
		}
	}
	return rec, nil
}

// runQuarantined is the sweep's only recover boundary: a panicking
// scenario — a simulator bug tripped by one cell of a 10^4-scenario matrix
// — must come back as a quarantined record, not take down the hours of
// sweep around it. The repolint RL-RECOVER rule pins recover() to this
// function; widening the boundary needs a lint allowlist change.
func runQuarantined(ctx context.Context, c *faults.Campaign, sc faults.Scenario) (out faults.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ScenarioError{Kind: KindPanic, Msg: fmt.Sprint(r)}
		}
	}()
	return c.RunScenario(ctx, sc)
}

// WriteJSON renders the report as indented JSON — deterministic, and the
// byte stream the resume tests diff.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Render formats the robustness surface as a text table: one row per
// corner with detection rate, Wilson interval and period quantiles, then
// the quarantine summary.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario sweep %s: %d scenarios (%d corners x %d chips x %d faults), %d done",
		r.Design, r.Total, len(r.Corners), r.Chips, r.Faults, r.Done)
	if r.EarlyStopped {
		sb.WriteString(" [stopped: failure budget]")
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "  %-6s %6s %9s %9s %7s %15s %8s %8s %8s\n",
		"corner", "scale", "injected", "detected", "rate", "95% CI", "p50", "p90", "p99")
	for _, cs := range r.CornerStats {
		if cs.Injected == 0 && cs.Timeouts+cs.Panics+cs.Errors == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-6d %6.2f %9d %9d %6.1f%% [%5.1f%%,%5.1f%%] %8.3f %8.3f %8.3f\n",
			cs.Corner, cs.Scale, cs.Injected, cs.Detected, 100*cs.Rate,
			100*cs.RateLo, 100*cs.RateHi, cs.PeriodP50, cs.PeriodP90, cs.PeriodP99)
	}
	if r.FailureCount > 0 {
		fmt.Fprintf(&sb, "  quarantined: %d", r.FailureCount)
		for _, f := range r.Failures {
			fmt.Fprintf(&sb, "\n    #%d (corner %d chip %d fault %d) %s: %s",
				f.Index, f.Corner, f.Chip, f.Fault, f.Kind, f.Msg)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
