package cdet

import (
	"fmt"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/stdcells"
)

func hs() *netlist.Library { return stdcells.New(stdcells.HighSpeed) }

// buildRippleCloud makes an n-bit ripple-carry incrementer cloud with
// declared inputs in[i] and outputs out[i], plus the completion network.
func buildRippleCloud(t *testing.T, n, margin int) (*netlist.Module, *Result) {
	t.Helper()
	lib := hs()
	m := netlist.NewModule("m")
	var cloud []*netlist.Inst
	ins := make([]*netlist.Net, n)
	outs := make([]*netlist.Net, n)
	for i := 0; i < n; i++ {
		ins[i] = m.AddPort(fmt.Sprintf("in[%d]", i), netlist.In).Net
		outs[i] = m.AddNet(fmt.Sprintf("out[%d]", i))
	}
	carry := ins[0]
	inv := m.AddInst("g_inv", lib.MustCell("INVX1"))
	m.MustConnect(inv, "A", ins[0])
	m.MustConnect(inv, "Z", outs[0])
	cloud = append(cloud, inv)
	for i := 1; i < n; i++ {
		x := m.AddInst(fmt.Sprintf("g_x%d", i), lib.MustCell("XOR2X1"))
		m.MustConnect(x, "A", ins[i])
		m.MustConnect(x, "B", carry)
		m.MustConnect(x, "Z", outs[i])
		cloud = append(cloud, x)
		if i < n-1 {
			c := m.AddNet(fmt.Sprintf("c[%d]", i))
			a := m.AddInst(fmt.Sprintf("g_a%d", i), lib.MustCell("AND2X1"))
			m.MustConnect(a, "A", ins[i])
			m.MustConnect(a, "B", carry)
			m.MustConnect(a, "Z", c)
			cloud = append(cloud, a)
			carry = c
		}
	}
	goNet := m.AddPort("go", netlist.In).Net
	done := m.AddPort("done", netlist.Out).Net
	res, err := AddCompletionNetwork(m, lib, "cd", cloud, outs, goNet, done, margin)
	if err != nil {
		t.Fatal(err)
	}
	if errs := m.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	return m, res
}

func TestCompletionRisesAfterResolution(t *testing.T) {
	m, res := buildRippleCloud(t, 8, 0)
	if res.RailCells == 0 || res.Outputs != 8 {
		t.Fatalf("network empty: %+v", res)
	}
	s, err := sim.New(m, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	// Apply data, then raise go; done must rise, and only after the rails
	// resolved.
	for i := 0; i < 8; i++ {
		s.Drive(fmt.Sprintf("in[%d]", i), logic.H, 0) // all ones: worst carry
	}
	s.Drive("go", logic.L, 0)
	s.RunUntilQuiescent()
	if s.Value("done") != logic.L {
		t.Fatalf("done=%v before go", s.Value("done"))
	}
	var doneAt float64
	s.OnChange("done", func(tm float64, v logic.V) {
		if v == logic.H && doneAt == 0 {
			doneAt = tm
		}
	})
	t0 := s.Now() + 1
	s.Drive("go", logic.H, t0)
	s.RunUntilQuiescent()
	if s.Value("done") != logic.H {
		t.Fatal("done never rose")
	}
	worstLatency := doneAt - t0

	// Return to zero: go falls, done collapses.
	s.Drive("go", logic.L, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("done") != logic.L {
		t.Fatal("done did not return to zero")
	}

	// Average case: with input 0 (no carry chain), done is faster.
	for i := 0; i < 8; i++ {
		s.Drive(fmt.Sprintf("in[%d]", i), logic.L, s.Now()+1)
	}
	s.RunUntilQuiescent()
	doneAt = 0
	t1 := s.Now() + 1
	s.Drive("go", logic.H, t1)
	s.RunUntilQuiescent()
	if s.Value("done") != logic.H {
		t.Fatal("done never rose for easy data")
	}
	easyLatency := doneAt - t1
	if easyLatency >= worstLatency {
		t.Fatalf("completion not data-dependent: easy %.3f vs worst %.3f", easyLatency, worstLatency)
	}
}

// The bundling requirement: done must never rise before the real outputs
// have settled. Exhaustively over all 6-bit inputs, record the last real
// output transition and the done rise.
func TestCompletionBoundsDatapath(t *testing.T) {
	m, _ := buildRippleCloud(t, 6, 0)
	s, err := sim.New(m, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	var lastData, doneRise float64
	for i := 0; i < 6; i++ {
		i := i
		s.OnChange(fmt.Sprintf("out[%d]", i), func(tm float64, v logic.V) {
			if tm > lastData {
				lastData = tm
			}
		})
	}
	s.OnChange("done", func(tm float64, v logic.V) {
		if v == logic.H {
			doneRise = tm
		}
	})
	for val := 0; val < 64; val++ {
		s.Drive("go", logic.L, s.Now()+1)
		s.RunUntilQuiescent()
		for i := 0; i < 6; i++ {
			s.Drive(fmt.Sprintf("in[%d]", i), logic.FromBool(val>>i&1 == 1), s.Now()+1)
		}
		s.RunUntilQuiescent()
		lastData, doneRise = 0, 0
		s.Drive("go", logic.H, s.Now()+1)
		s.RunUntilQuiescent()
		if s.Value("done") != logic.H {
			t.Fatalf("val %d: done never rose", val)
		}
		if doneRise < lastData {
			t.Fatalf("val %d: done at %.4f before data settled at %.4f", val, doneRise, lastData)
		}
	}
}

func TestCompletionMarginAddsDelay(t *testing.T) {
	latency := func(margin int) float64 {
		m, _ := buildRippleCloud(t, 6, margin)
		s, _ := sim.New(m, sim.Config{Corner: netlist.Worst})
		for i := 0; i < 6; i++ {
			s.Drive(fmt.Sprintf("in[%d]", i), logic.H, 0)
		}
		s.Drive("go", logic.L, 0)
		s.RunUntilQuiescent()
		var doneAt float64
		s.OnChange("done", func(tm float64, v logic.V) {
			if v == logic.H {
				doneAt = tm
			}
		})
		t0 := s.Now() + 1
		s.Drive("go", logic.H, t0)
		s.RunUntilQuiescent()
		return doneAt - t0
	}
	if latency(4) <= latency(0) {
		t.Fatal("margin levels did not add delay")
	}
}

func TestCompletionRejectsBadInput(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	goNet := m.AddPort("go", netlist.In).Net
	done := m.AddPort("done", netlist.Out).Net
	// Sequential cell in the cloud is rejected.
	ff := m.AddInst("f", lib.MustCell("DFFQX1"))
	m.MustConnect(ff, "D", m.AddNet("d"))
	m.MustConnect(ff, "CK", m.AddNet("ck"))
	m.MustConnect(ff, "Q", m.AddNet("q"))
	if _, err := AddCompletionNetwork(m, lib, "cd", []*netlist.Inst{ff}, nil, goNet, done, 0); err == nil {
		t.Fatal("expected rejection of sequential cloud member")
	}
	// Empty detect list is rejected.
	g := m.AddInst("g", lib.MustCell("INVX1"))
	m.MustConnect(g, "A", m.Net("d"))
	m.MustConnect(g, "Z", m.AddNet("z"))
	if _, err := AddCompletionNetwork(m, lib, "cd2", []*netlist.Inst{g}, nil, goNet, done, 0); err == nil {
		t.Fatal("expected rejection of empty detect list")
	}
}
