package sdc

import (
	"strings"
	"testing"
)

func TestWriteClockSpec(t *testing.T) {
	// Fig 4.2: the original clock and the derived master/slave enables.
	c := &Constraints{
		Clocks: []Clock{
			{Name: "ClkM", Period: 2.4, Waveform: [2]float64{1.0, 2.4},
				Sources: []string{"G2_Ctrl/master/g", "G1_Ctrl/master/g"}, OnPins: true},
			{Name: "ClkS", Period: 2.4, Waveform: [2]float64{2.4, 2.8},
				Sources: []string{"G1_Ctrl/slave/g"}, OnPins: true},
		},
	}
	out := c.Write()
	if !strings.Contains(out, `create_clock -name "ClkM" -period 2.4 -waveform {1 2.4}`) {
		t.Fatalf("master clock line wrong:\n%s", out)
	}
	// Sources sorted.
	if !strings.Contains(out, "{G1_Ctrl/master/g G2_Ctrl/master/g}") {
		t.Fatalf("sources not sorted:\n%s", out)
	}
	if !strings.Contains(out, "get_pins") {
		t.Fatalf("pin collection missing:\n%s", out)
	}
}

func TestWriteLoopBreakingAndSizeOnly(t *testing.T) {
	c := &Constraints{
		Disabled: []DisabledArc{
			{Inst: "G1_Ctrl/gc2", From: "B", To: "Q"},
			{Inst: "G1_Ctrl/gc1", From: "A", To: "Q"},
		},
		SizeOnly:    []string{"G1_Ctrl/gc2", "G1_Ctrl/gc1"},
		PointDelays: []PointDelay{{From: "a/Z", To: "b/A", Min: 0.1, Max: 1.5}},
		FalsePaths:  [][2]string{{"rst", "G1_Ctrl/gc1/A"}},
	}
	out := c.Write()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Fatalf("want 7 lines, got %d:\n%s", len(lines), out)
	}
	// Deterministic ordering: gc1 before gc2.
	if !strings.Contains(lines[0], "gc1") {
		t.Fatalf("disabled arcs not sorted:\n%s", out)
	}
	for _, want := range []string{
		"set_disable_timing -from A -to Q [get_cells {G1_Ctrl/gc1}]",
		"set_size_only [get_cells {G1_Ctrl/gc1}]",
		"set_min_delay 0.1 -from [get_pins {a/Z}] -to [get_pins {b/A}]",
		"set_max_delay 1.5 -from [get_pins {a/Z}] -to [get_pins {b/A}]",
		"set_false_path -from [get_pins {rst}] -to [get_pins {G1_Ctrl/gc1/A}]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	c := &Constraints{
		SizeOnly: []string{"b", "a", "c"},
	}
	if c.Write() != c.Write() {
		t.Fatal("not deterministic")
	}
	out := c.Write()
	if strings.Index(out, "{a}") > strings.Index(out, "{b}") {
		t.Fatal("size-only not sorted")
	}
}
