package par

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// TestFoldOrdered: the fold must see every index exactly once, strictly
// ascending, at any worker count — the property checkpoint journals and
// streaming aggregates are built on.
func TestFoldOrdered(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 2, 3, 8, 32} {
		want := 0
		sum := 0
		err := Fold(context.Background(), workers, 0, n,
			func(_ context.Context, i int) (int, error) {
				runtime.Gosched() // shake completion order
				return 3 * i, nil
			},
			func(i, r int) error {
				if i != want {
					t.Fatalf("workers=%d: fold saw index %d, want %d", workers, i, want)
				}
				if r != 3*i {
					t.Fatalf("workers=%d: fold saw result %d for index %d", workers, r, i)
				}
				want++
				sum += r
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want != n || sum != 3*n*(n-1)/2 {
			t.Fatalf("workers=%d: folded %d of %d (sum %d)", workers, want, n, sum)
		}
	}
}

// TestFoldStart: resume semantics — folding [start, n) touches exactly the
// tail, so a journal replay can hand the engine its first unwritten index.
func TestFoldStart(t *testing.T) {
	for _, workers := range []int{1, 4} {
		want := 100
		err := Fold(context.Background(), workers, 100, 150,
			func(_ context.Context, i int) (int, error) { return i, nil },
			func(i, r int) error {
				if i != want {
					t.Fatalf("workers=%d: fold saw %d, want %d", workers, i, want)
				}
				want++
				return nil
			})
		if err != nil || want != 150 {
			t.Fatalf("workers=%d: folded up to %d, err %v", workers, want, err)
		}
	}
}

// TestFoldEmpty: an already-complete range folds nothing and succeeds.
func TestFoldEmpty(t *testing.T) {
	err := Fold(context.Background(), 4, 10, 10,
		func(_ context.Context, i int) (int, error) { t.Fatal("compute called"); return 0, nil },
		func(i, r int) error { t.Fatal("fold called"); return nil })
	if err != nil {
		t.Fatal(err)
	}
}

// TestFoldComputeError: a failing compute surfaces its own error (not a
// cancellation echo) and the fold stops on a contiguous prefix strictly
// before the failed index — the journal is left valid.
func TestFoldComputeError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 2, 8} {
		last := -1
		err := Fold(context.Background(), workers, 0, 200,
			func(_ context.Context, i int) (int, error) {
				if i == 37 {
					return 0, boom
				}
				return i, nil
			},
			func(i, r int) error {
				if i != last+1 {
					t.Fatalf("workers=%d: non-contiguous fold at %d after %d", workers, i, last)
				}
				last = i
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
		if last >= 37 {
			t.Fatalf("workers=%d: folded index %d past the failure", workers, last)
		}
	}
}

// TestFoldFoldError: the fold's own error is a graceful early stop — it
// comes back verbatim and no further fold calls happen.
func TestFoldFoldError(t *testing.T) {
	stop := errors.New("enough")
	for _, workers := range []int{1, 6} {
		calls := 0
		err := Fold(context.Background(), workers, 0, 1000,
			func(_ context.Context, i int) (int, error) { return i, nil },
			func(i, r int) error {
				calls++
				if i == 25 {
					return stop
				}
				return nil
			})
		if !errors.Is(err, stop) {
			t.Fatalf("workers=%d: got %v, want stop", workers, err)
		}
		if calls != 26 {
			t.Fatalf("workers=%d: %d fold calls, want 26", workers, calls)
		}
	}
}

// TestFoldCancel: parent-context cancellation aborts with ctx.Err().
func TestFoldCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Fold(ctx, 4, 0, 100,
		func(ctx context.Context, i int) (int, error) { return i, ctx.Err() },
		func(i, r int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
