// Package sta is the static timing analysis engine of the flow. It plays
// the role PrimeTime plays in the paper: it sizes the matched delay elements
// (§3.2.5), checks setup at latch inputs, and times the cyclic asynchronous
// controller network after loop breaking (§4.6.1).
//
// The engine builds a pin-level timing graph (net arcs plus cell arcs with
// function-derived unateness), topologically sorts it — honouring
// timing-disabled arcs and optionally auto-breaking remaining back-edges the
// way a synchronous STA tool arbitrarily cuts combinational cycles — and
// propagates rise/fall arrival times for late (max) and early (min)
// analysis at a chosen corner.
package sta

import (
	"fmt"
	"sort"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// ArcKey identifies one cell timing arc for disabling (§4.6.1).
type ArcKey struct {
	Inst string
	From string
	To   string
}

// Unateness of a cell arc, derived from the cell function.
type unate uint8

const (
	positiveUnate unate = iota
	negativeUnate
	nonUnate
)

// node identities: instance pin or module port.
type pinKey struct {
	inst *netlist.Inst // nil for ports
	pin  string
}

func (k pinKey) String() string {
	if k.inst == nil {
		return k.pin
	}
	return k.inst.Name + "/" + k.pin
}

type edge struct {
	to         int
	rise, fall float64 // delay to a rising/falling transition at the head
	sense      unate
	key        ArcKey // zero for net arcs
	isNet      bool
}

// Graph is a timing graph over a flat module at a fixed corner.
type Graph struct {
	Module *netlist.Module
	Corner netlist.Corner

	keys  []pinKey
	idOf  map[pinKey]int
	out   [][]edge
	indeg []int

	starts []int // startpoints: input ports, sequential outputs, tie outputs
	ends   []int // endpoints: output ports, sequential data/control inputs

	// AutoBroken lists arcs removed by back-edge breaking when the build
	// options allowed it.
	AutoBroken []ArcKey

	order []int // topological order
}

// Options configures graph construction.
type Options struct {
	Corner netlist.Corner
	// Disabled arcs (set_disable_timing) are excluded from the graph.
	Disabled map[ArcKey]bool
	// AutoBreakLoops removes back-edges found by DFS instead of failing,
	// mimicking the arbitrary cuts a synchronous STA tool makes (§4.6).
	AutoBreakLoops bool
	// UseWireDelays adds annotated net delays (post-layout analysis).
	UseWireDelays bool
	// NoVariability ignores per-instance delay factors.
	NoVariability bool
	// LatchTransparent includes latch D→Q arcs (time borrowing through
	// transparent latches). Off by default: pipelined latch rings would
	// otherwise be combinational cycles; standard register-bounded analysis
	// treats each latch as a path boundary.
	LatchTransparent bool
	// Parallelism bounds the workers RegionDelays uses for per-region
	// extraction; 0 means GOMAXPROCS. Results are identical at any value.
	Parallelism int
}

// Build constructs the timing graph for a flat module.
// EffectiveFactor is the delay multiplier an instance contributes to all of
// its timing arcs: its DelayFactor, with the zero value meaning nominal.
// Every consumer that prices an instance's arcs (the graph build, the lint
// engine's delay-element audit) must agree on this defaulting.
func EffectiveFactor(in *netlist.Inst) float64 {
	if in.DelayFactor == 0 {
		return 1
	}
	return in.DelayFactor
}

func Build(m *netlist.Module, opts Options) (*Graph, error) {
	g := &Graph{Module: m, Corner: opts.Corner, idOf: map[pinKey]int{}}

	id := func(k pinKey) int {
		if i, ok := g.idOf[k]; ok {
			return i
		}
		i := len(g.keys)
		g.idOf[k] = i
		g.keys = append(g.keys, k)
		g.out = append(g.out, nil)
		return i
	}

	// Ports.
	for _, p := range m.Ports {
		n := id(pinKey{pin: p.Name})
		switch p.Dir {
		case netlist.In:
			g.starts = append(g.starts, n)
		case netlist.Out:
			g.ends = append(g.ends, n)
		}
	}

	// Cell arcs.
	for _, in := range m.Insts {
		if in.Sub != nil {
			return nil, fmt.Errorf("sta: module %s not flat (instance %s)", m.Name, in.Name)
		}
		c := in.Cell
		factor := EffectiveFactor(in)
		if opts.NoVariability {
			factor = 1
		}
		senses := arcSenses(c)
		seqStart := c.IsSequential()
		for _, a := range c.Arcs {
			key := ArcKey{in.Name, a.From, a.To}
			if opts.Disabled[key] {
				continue
			}
			// Sequential cells: clock/enable/async→Q arcs start new timing
			// paths, they do not extend arriving ones — except latch D→Q,
			// which is a real combinational path while transparent.
			if seqStart && c.Kind != netlist.KindCElem && c.Kind != netlist.KindGC {
				transparent := opts.LatchTransparent && c.Kind == netlist.KindLatch && a.From == "D"
				if c.Seq != nil && !transparent {
					continue
				}
			}
			from := id(pinKey{in, a.From})
			to := id(pinKey{in, a.To})
			g.out[from] = append(g.out[from], edge{
				to:    to,
				rise:  a.Rise.At(opts.Corner) * factor,
				fall:  a.Fall.At(opts.Corner) * factor,
				sense: senses[[2]string{a.From, a.To}],
				key:   key,
			})
		}
		// Start/end classification.
		for _, p := range c.Pins {
			k := pinKey{in, p.Name}
			if p.Dir == netlist.Out {
				if seqStart || c.Kind == netlist.KindTie {
					g.starts = append(g.starts, id(k))
				}
				continue
			}
			if seqStart {
				// Every input of a sequential cell is a timing endpoint
				// (data: setup; clock/enable: path target for skew).
				g.ends = append(g.ends, id(k))
			}
		}
	}

	// Net arcs.
	for _, n := range m.Nets {
		if !n.HasDriver() {
			continue
		}
		var w float64
		if opts.UseWireDelays {
			w = n.Wire.At(opts.Corner)
		}
		from := id(pinKey{n.Driver.Inst, n.Driver.Pin})
		for _, s := range n.Sinks {
			to := id(pinKey{s.Inst, s.Pin})
			g.out[from] = append(g.out[from], edge{to: to, rise: w, fall: w, sense: positiveUnate, isNet: true})
		}
	}

	if err := g.sort(opts.AutoBreakLoops); err != nil {
		return nil, err
	}
	return g, nil
}

// arcSenses derives per-arc unateness from the cell's functions by
// exhaustive evaluation; anything not provably unate is non-unate.
func arcSenses(c *netlist.CellDef) map[[2]string]unate {
	out := map[[2]string]unate{}
	for _, a := range c.Arcs {
		out[[2]string{a.From, a.To}] = nonUnate
		fn := c.Functions[a.To]
		if fn == nil {
			continue
		}
		vars := fn.Vars()
		var others []string
		found := false
		for _, v := range vars {
			if v == a.From {
				found = true
			} else {
				others = append(others, v)
			}
		}
		if !found || len(others) > 12 {
			continue
		}
		pos, neg := true, true
		for mask := 0; mask < 1<<len(others); mask++ {
			env := map[string]logic.V{}
			for i, v := range others {
				env[v] = logic.FromBool(mask>>i&1 == 1)
			}
			env[a.From] = logic.L
			lo := fn.Eval(env)
			env[a.From] = logic.H
			hi := fn.Eval(env)
			if lo == logic.H && hi == logic.L {
				pos = false
			}
			if lo == logic.L && hi == logic.H {
				neg = false
			}
		}
		switch {
		case pos && !neg:
			out[[2]string{a.From, a.To}] = positiveUnate
		case neg && !pos:
			out[[2]string{a.From, a.To}] = negativeUnate
		}
	}
	return out
}

// sort computes a topological order, auto-breaking or rejecting cycles.
func (g *Graph) sort(autoBreak bool) error {
	n := len(g.keys)
	// Iterative DFS to find back edges.
	color := make([]uint8, n) // 0 white, 1 grey, 2 black
	type frame struct {
		node int
		ei   int
	}
	var stack []frame
	var postorder []int
	removed := map[*edge]bool{}

	for root := 0; root < n; root++ {
		if color[root] != 0 {
			continue
		}
		stack = append(stack[:0], frame{root, 0})
		color[root] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(g.out[f.node]) {
				e := &g.out[f.node][f.ei]
				f.ei++
				if removed[e] {
					continue
				}
				switch color[e.to] {
				case 0:
					color[e.to] = 1
					stack = append(stack, frame{e.to, 0})
				case 1:
					// Back edge: a timing loop.
					if !autoBreak {
						return fmt.Errorf("sta: timing loop through %s -> %s (use set_disable_timing or AutoBreakLoops)",
							g.keys[f.node], g.keys[e.to])
					}
					removed[e] = true
					g.AutoBroken = append(g.AutoBroken, arcKeyFor(g, f.node, e))
				}
				continue
			}
			color[f.node] = 2
			postorder = append(postorder, f.node)
			stack = stack[:len(stack)-1]
		}
	}
	// Remove broken edges for good.
	if len(removed) > 0 {
		for v := range g.out {
			kept := g.out[v][:0]
			for i := range g.out[v] {
				if !removed[&g.out[v][i]] {
					kept = append(kept, g.out[v][i])
				}
			}
			g.out[v] = kept
		}
	}
	// Reverse postorder is a topological order.
	g.order = make([]int, n)
	for i, v := range postorder {
		g.order[n-1-i] = v
	}
	return nil
}

func arcKeyFor(g *Graph, from int, e *edge) ArcKey {
	if e.key != (ArcKey{}) {
		return e.key
	}
	// Net arc: identify by endpoint names.
	return ArcKey{Inst: "(net)", From: g.keys[from].String(), To: g.keys[e.to].String()}
}

// NodeID returns the graph node for an instance pin, or -1.
func (g *Graph) NodeID(inst *netlist.Inst, pin string) int {
	if i, ok := g.idOf[pinKey{inst, pin}]; ok {
		return i
	}
	return -1
}

// PortID returns the graph node for a module port, or -1.
func (g *Graph) PortID(port string) int {
	if i, ok := g.idOf[pinKey{pin: port}]; ok {
		return i
	}
	return -1
}

// Endpoints returns the endpoint node ids (sequential inputs, output ports).
func (g *Graph) Endpoints() []int { return append([]int(nil), g.ends...) }

// NodeName renders a node id for reports.
func (g *Graph) NodeName(id int) string { return g.keys[id].String() }

// nodeInst returns the instance of a node (nil for ports).
func (g *Graph) nodeInst(id int) *netlist.Inst { return g.keys[id].inst }

// SortStable sorts ids by name for deterministic reports.
func (g *Graph) SortStable(ids []int) {
	sort.Slice(ids, func(i, j int) bool { return g.NodeName(ids[i]) < g.NodeName(ids[j]) })
}

// EdgeInfo is an exported view of one timing arc for external propagation
// engines (statistical STA). Delay is the worse of the rise/fall values.
type EdgeInfo struct {
	From, To int
	Delay    float64
	IsNet    bool
	// Inst is the owning instance for cell arcs (nil for net arcs), so
	// external engines can apply per-instance models.
	Inst *netlist.Inst
}

// TopoOrder returns the node ids in topological order.
func (g *Graph) TopoOrder() []int { return append([]int(nil), g.order...) }

// StartNodes returns the startpoint ids (inputs, sequential outputs).
func (g *Graph) StartNodes() []int { return append([]int(nil), g.starts...) }

// OutEdges calls visit for each arc leaving node id.
func (g *Graph) OutEdges(id int, visit func(EdgeInfo)) {
	for _, e := range g.out[id] {
		d := e.rise
		if e.fall > d {
			d = e.fall
		}
		visit(EdgeInfo{From: id, To: e.to, Delay: d, IsNet: e.isNet, Inst: g.keys[id].inst})
	}
}

// NodeCount returns the number of timing nodes.
func (g *Graph) NodeCount() int { return len(g.keys) }
