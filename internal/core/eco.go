package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"desync/internal/ctrlnet"
	"desync/internal/netlist"
	"desync/internal/sta"
)

// ECORow is the post-layout verdict for one region's matched delay element.
type ECORow struct {
	Region       int
	ElementDelay float64 // post-layout delay through the element path (ns)
	Budget       float64 // post-layout launch+comb+setup budget (ns)
	Covered      bool
	AddedLevels  int // levels spliced in by the repair
}

// ECOCalibrate re-verifies every matched delay element against post-layout
// timing (wire delays annotated by P&R) and, when repair is true, fixes any
// shortfall by splicing extra AND levels into the element — the Engineering
// Change Order the paper's future-work section proposes: "after the final
// layout, ECO can be used to calibrate the length of the delay elements
// taking into consideration the final delays including full parasitics"
// (§6). Returns one row per region with a fixed element.
//
// The repair path splices gates into the shared netlist, so regions
// calibrate serially; cancellation is observed between regions.
func ECOCalibrate(ctx context.Context, d *netlist.Design, res *Result, margin float64, repair bool) ([]ECORow, error) {
	if margin <= 0 {
		margin = 1.15
	}
	m := d.Top
	rows := []ECORow{}
	for _, g := range res.DDG.Nodes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row, ok, err := ecoRegion(ctx, d, res, g, margin, repair)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Region < rows[j].Region })
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no matched delay elements to calibrate")
	}
	_ = m
	return rows, nil
}

func ecoRegion(ctx context.Context, d *netlist.Design, res *Result, g int, margin float64, repair bool) (ECORow, bool, error) {
	m := d.Top
	ctl := m.Inst(ctrlnet.CtrlGate(g, true, ctrlnet.GateG))
	if ctl == nil || m.Inst(ctrlnet.ChainStage(ctrlnet.DelayPrefix(g), 1)) == nil {
		return ECORow{}, false, nil // completion-detected or env region
	}
	row := ECORow{Region: g}
	for attempt := 0; ; attempt++ {
		elem, budget, err := ecoMeasure(ctx, d, res, g, ctl)
		if err != nil {
			return ECORow{}, false, err
		}
		row.ElementDelay, row.Budget = elem, budget
		// Covered means the element exceeds the raw post-layout budget; the
		// margin decides how much headroom a repair targets.
		row.Covered = elem >= budget
		if row.Covered || !repair {
			return row, true, nil
		}
		if attempt > 4 {
			return row, true, fmt.Errorf("core: ECO did not converge on region %d", g)
		}
		// Splice the shortfall (with margin) into the element, right before
		// the master's request input.
		and := d.Lib.MustCell("AND2X1")
		level := and.Arc("A", "Z").Rise.At(netlist.Worst)
		need := int(math.Ceil((budget*margin - elem) / level))
		if need < 1 {
			need = 1
		}
		if err := spliceLevels(d, g, need); err != nil {
			return row, true, err
		}
		row.AddedLevels += need
	}
}

// ecoMeasure computes the post-layout element path delay (arrival at the
// master controller's request pin) and the region's post-layout budget.
func ecoMeasure(ctx context.Context, d *netlist.Design, res *Result, g int, ctl *netlist.Inst) (elem, budget float64, err error) {
	graph, err := sta.Build(d.Top, sta.Options{
		Corner:        netlist.Worst,
		Disabled:      res.DisabledArcMap(),
		UseWireDelays: true,
	})
	if err != nil {
		return 0, 0, err
	}
	r := graph.Analyze()
	id := graph.NodeID(ctl, "B")
	if id < 0 {
		return 0, 0, fmt.Errorf("core: region %d request pin missing", g)
	}
	elem = r.MaxAt(id)
	if math.IsInf(elem, -1) {
		return 0, 0, fmt.Errorf("core: region %d request path unconstrained", g)
	}
	rds, err := sta.RegionDelays(ctx, d.Top, netlist.Worst, sta.Options{
		Disabled:      res.DisabledArcMap(),
		UseWireDelays: true,
	})
	if err != nil {
		return 0, 0, err
	}
	if rd := rds[g]; rd != nil {
		budget = rd.Budget()
	}
	return elem, budget, nil
}

// spliceLevels inserts extra asymmetric AND levels between the element's
// current output and the master's request input — an incremental netlist
// change, as an ECO would be. Each level is gated by the element's primary
// input so the return-to-zero stays fast (Fig 2.9's structure).
func spliceLevels(d *netlist.Design, g, levels int) error {
	m := d.Top
	mri := m.Net(ctrlnet.Name(g, "mri"))
	if mri == nil || mri.Driver.Inst == nil {
		return fmt.Errorf("core: region %d request net not found", g)
	}
	first := m.Inst(ctrlnet.ChainStage(ctrlnet.DelayPrefix(g), 1))
	if first == nil {
		return fmt.Errorf("core: region %d delay element not found", g)
	}
	in := first.Conn("B") // the element's primary input
	drv := mri.Driver
	m.Disconnect(drv.Inst, drv.Pin)
	prev := m.AddNet(ctrlnet.Name(g, fmt.Sprintf("eco_in%d", len(m.Nets))))
	m.MustConnect(drv.Inst, drv.Pin, prev)
	and := d.Lib.MustCell("AND2X1")
	for i := 0; i < levels; i++ {
		out := mri
		if i != levels-1 {
			out = m.AddNet(ctrlnet.Name(g, fmt.Sprintf("eco%d_%d", len(m.Nets), i)))
		}
		gate := m.AddInst(ctrlnet.Name(g, fmt.Sprintf("eco%d", len(m.Insts))), and)
		gate.Origin = "delem"
		gate.SizeOnly = true
		m.MustConnect(gate, "A", prev)
		m.MustConnect(gate, "B", in)
		m.MustConnect(gate, "Z", out)
		prev = out
	}
	return nil
}
