// Static-analysis export hooks: a read-only view of the extracted
// token-marking model for consumers that reason about the controller
// network structurally instead of exploring its state space
// (internal/mga). The view deliberately exposes indexes, not pointers —
// the model stays immutable and the consumer cannot perturb a later BFS
// over the same extraction.
package equiv

// Exported signal kind names, matching sigKind.String().
const (
	SigG       = "g"       // latch-enable gC output (CGMX1/CGSX1)
	SigRO      = "ro"      // request-out gC output (CROX1)
	SigB       = "b"       // opened-since-handshake bit (CBX1)
	SigAI      = "ai"      // acknowledge AND (ANDN3X1)
	SigJoin    = "join"    // collapsed C-Muller rendezvous tree
	SigDelay   = "delay"   // matched delay-element arrival
	SigEnvSrc  = "env-req" // environment request producer
	SigEnvSink = "env-ack" // environment acknowledge consumer
)

// StaticOperand mirrors one resolved input of a model signal. Sig < 0
// means the source is stuck at the constant Stuck (an undriven net, a
// tie cell, an unmodelled driver): it never transitions, so whatever
// depends on it for a handshake phase is structurally dead.
type StaticOperand struct {
	Sig   int
	Stuck bool
}

// StaticSignal is the read-only export of one model signal: its design
// net name, kind, owning controller half, reset value and the real
// input operands the extractor resolved for it (placeholder operands of
// two-input gates are omitted).
type StaticSignal struct {
	Name   string
	Kind   string
	Region int
	Master bool
	Init   bool
	Inputs []StaticOperand
}

// StaticSignals exports every model signal in extraction order; the
// slice index is the signal index StaticOperand.Sig and GenLink.Sig
// refer to. The export is computed once and shared across calls (the
// model is immutable after extraction); callers must not modify it.
func (m *Model) StaticSignals() []StaticSignal {
	if m.staticSigs != nil {
		return m.staticSigs
	}
	out := make([]StaticSignal, len(m.sigs))
	for i := range m.sigs {
		s := &m.sigs[i]
		v := StaticSignal{
			Name:   s.name,
			Kind:   s.kind.String(),
			Region: s.region,
			Master: s.master,
			Init:   s.init,
		}
		switch s.kind {
		case kindG, kindRO, kindB:
			v.Inputs = []StaticOperand{{s.a.sig, s.a.stuck}, {s.b.sig, s.b.stuck}}
		case kindAI:
			v.Inputs = []StaticOperand{{s.a.sig, s.a.stuck}, {s.b.sig, s.b.stuck}, {s.c.sig, s.c.stuck}}
		case kindDelay:
			v.Inputs = []StaticOperand{{s.a.sig, s.a.stuck}}
		case kindJoin:
			for _, t := range s.terms {
				v.Inputs = append(v.Inputs, StaticOperand{t.sig, t.stuck})
			}
		case kindEnvSrc, kindEnvSink:
			// The watched controller gate; a missing gate exports as stuck.
			v.Inputs = []StaticOperand{{s.a.sig, s.a.stuck}}
		}
		out[i] = v
	}
	m.staticSigs = out
	return out
}

// StaticGates holds the model signal indexes of one region's eight
// controller gate outputs (-1 when the gate is missing from the
// netlist).
type StaticGates struct {
	MG, SG, MRO, SRO, MB, SB, MAI, SAI int
}

// StaticGates exports the controller gate signal indexes of one region.
func (m *Model) StaticGates(region int) StaticGates {
	at := func(idx map[int]int) int {
		if i, ok := idx[region]; ok {
			return i
		}
		return -1
	}
	return StaticGates{
		MG: at(m.mg), SG: at(m.sg),
		MRO: at(m.mro), SRO: at(m.sro),
		MB: at(m.mb), SB: at(m.sb),
		MAI: at(m.mai), SAI: at(m.sai),
	}
}

// GenLink kinds: how one generation source or consumer connects.
const (
	LinkSlave   = "slave"    // pred region's slave request-out (the normal case)
	LinkMaster  = "master"   // pred region's master request-out (unusual wiring)
	LinkEnv     = "env"      // environment request channel
	LinkCons    = "consumer" // consuming region's master acknowledge
	LinkEnvSink = "env-sink" // environment acknowledge consumer
)

// GenLink is the exported form of one generation edge: Region is set for
// region-to-region links, Sig for environment channels.
type GenLink struct {
	Kind   string
	Region int
	Sig    int
}

func exportLinks(refs []genRef) []GenLink {
	out := make([]GenLink, 0, len(refs))
	for _, r := range refs {
		l := GenLink{Region: r.region, Sig: r.sig}
		switch r.kind {
		case genSlave:
			l.Kind = LinkSlave
		case genMaster:
			l.Kind = LinkMaster
		case genEnv:
			l.Kind = LinkEnv
		case genCons:
			l.Kind = LinkCons
		case genEnvSink:
			l.Kind = LinkEnvSink
		}
		out = append(out, l)
	}
	return out
}

// StaticPreds exports the generation sources feeding one region's master
// capture, as resolved from the request wiring (C-trees expanded to
// their leaves, delay chains walked through).
func (m *Model) StaticPreds(region int) []GenLink { return exportLinks(m.preds[region]) }

// StaticConsumers exports who must consume one region's slave output
// before it may reopen, as resolved from the acknowledge wiring.
func (m *Model) StaticConsumers(region int) []GenLink { return exportLinks(m.consumers[region]) }
