// Package logic provides the three-valued logic system (0, 1, X) and the
// boolean expression representation used throughout the flow: Liberty cell
// functions are parsed into Expr trees, the simulator evaluates them, and the
// desynchronization tool inspects them (e.g. to find inverting/buffering
// cells during logic cleaning).
package logic

import "strings"

// V is a three-valued logic value. The zero value is X (unknown), so freshly
// allocated signal state starts out unknown, matching gate-level simulation
// semantics before reset.
type V uint8

// The three logic values.
const (
	X V = iota // unknown / uninitialized
	L          // logic 0
	H          // logic 1
)

// FromBool converts a Go bool to a logic value.
func FromBool(b bool) V {
	if b {
		return H
	}
	return L
}

// Bool reports the value as a bool; X maps to false.
func (v V) Bool() bool { return v == H }

// Known reports whether v is 0 or 1 (not X).
func (v V) Known() bool { return v != X }

// String returns "0", "1" or "x".
func (v V) String() string {
	switch v {
	case L:
		return "0"
	case H:
		return "1"
	}
	return "x"
}

// Not returns the three-valued negation of v.
func (v V) Not() V {
	switch v {
	case L:
		return H
	case H:
		return L
	}
	return X
}

// And returns the three-valued conjunction: 0 dominates X.
func And(a, b V) V {
	if a == L || b == L {
		return L
	}
	if a == H && b == H {
		return H
	}
	return X
}

// Or returns the three-valued disjunction: 1 dominates X.
func Or(a, b V) V {
	if a == H || b == H {
		return H
	}
	if a == L && b == L {
		return L
	}
	return X
}

// Xor returns the three-valued exclusive-or; any X input yields X.
func Xor(a, b V) V {
	if a == X || b == X {
		return X
	}
	if a != b {
		return H
	}
	return L
}

// Vector is a slice of logic values, LSB first, used for datapath buses in
// tests and design generators.
type Vector []V

// VectorFromUint builds an n-bit vector (LSB first) from the low n bits of u.
func VectorFromUint(u uint64, n int) Vector {
	v := make(Vector, n)
	for i := 0; i < n; i++ {
		v[i] = FromBool(u>>uint(i)&1 == 1)
	}
	return v
}

// Uint interprets the vector as an unsigned integer (LSB first). X bits are
// treated as 0; use Known to check cleanliness first.
func (vec Vector) Uint() uint64 {
	var u uint64
	for i, v := range vec {
		if v == H {
			u |= 1 << uint(i)
		}
	}
	return u
}

// Known reports whether every bit of the vector is 0 or 1.
func (vec Vector) Known() bool {
	for _, v := range vec {
		if v == X {
			return false
		}
	}
	return true
}

// String renders the vector MSB first, e.g. "0101".
func (vec Vector) String() string {
	var sb strings.Builder
	for i := len(vec) - 1; i >= 0; i-- {
		sb.WriteString(vec[i].String())
	}
	return sb.String()
}
