// Command drdesync is the desynchronization tool of the paper (§3.2): it
// reads a post-synthesis gate-level Verilog netlist, applies the
// desynchronization methodology — logic cleaning, automatic region
// creation, flip-flop substitution, dependency-graph construction, matched
// delay-element sizing and controller-network insertion — and writes the
// desynchronized netlist plus the backend timing constraints.
//
// Usage:
//
//	drdesync -in design.v [-top name] [-lib HS|LL] [-period 2.4] \
//	         [-mux] [-margin 1.15] [-falsepath net1,net2] [-manual-groups] \
//	         [-simplify-names] -out out.v [-sdc out.sdc] [-blif out.blif]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"desync/internal/blif"
	"desync/internal/core"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

func main() {
	var (
		in           = flag.String("in", "", "input gate-level Verilog netlist (required)")
		top          = flag.String("top", "", "top module (default: auto-detect)")
		lib          = flag.String("lib", "HS", "technology library variant: HS or LL")
		period       = flag.Float64("period", 0, "original clock period in ns for constraint generation")
		mux          = flag.Bool("mux", false, "build 8-tap multiplexed delay elements (adds delsel[2:0] ports)")
		margin       = flag.Float64("margin", 1.15, "delay-element sizing margin")
		falsePaths   = flag.String("falsepath", "", "comma-separated nets to ignore during grouping")
		manualGroups = flag.Bool("manual-groups", false, "keep hierarchy-derived regions instead of auto grouping")
		simplify     = flag.Bool("simplify-names", false, "rewrite escaped names as simple identifiers first")
		out          = flag.String("out", "", "output Verilog netlist (required)")
		sdcOut       = flag.String("sdc", "", "output SDC constraints file")
		blifOut      = flag.String("blif", "", "output BLIF netlist (SIS export)")
		skipClean    = flag.Bool("no-clean", false, "skip buffer/inverter-pair removal")
		cdetFlag     = flag.Bool("cdet", false, "use dual-rail completion detection instead of matched delay elements (§2.4.4)")
		tbOut        = flag.String("tb", "", "output a behavioural testbench skeleton (§4.8)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *top, *lib, *out, *sdcOut, *blifOut, *falsePaths,
		*period, *margin, *mux, *manualGroups, *simplify, *skipClean, *cdetFlag, *tbOut); err != nil {
		fmt.Fprintln(os.Stderr, "drdesync:", err)
		os.Exit(1)
	}
}

func run(in, top, libVariant, out, sdcOut, blifOut, falsePaths string,
	period, margin float64, mux, manualGroups, simplify, skipClean, cdetFlag bool, tbOut string) error {

	var variant stdcells.Variant
	switch libVariant {
	case "HS":
		variant = stdcells.HighSpeed
	case "LL":
		variant = stdcells.LowLeakage
	default:
		return fmt.Errorf("unknown library variant %q", libVariant)
	}
	lib := stdcells.New(variant)

	src, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	d, err := verilog.Read(string(src), lib, top)
	if err != nil {
		return err
	}
	if simplify {
		n := core.SimplifyNames(d.Top)
		fmt.Printf("simplified %d names\n", n)
	}
	var fps []string
	if falsePaths != "" {
		fps = strings.Split(falsePaths, ",")
	}
	res, err := core.Desynchronize(d, core.Options{
		Period:              period,
		Margin:              margin,
		MuxTaps:             mux,
		FalsePaths:          fps,
		ManualGroups:        manualGroups,
		SkipClean:           skipClean,
		CompletionDetection: cdetFlag,
	})
	if err != nil {
		return err
	}

	fmt.Printf("cleaned %d buffering cells\n", res.CleanedCells)
	fmt.Printf("regions: %d (+%d cells in group 0)\n", res.Grouping.Groups, res.Grouping.Group0)
	fmt.Printf("flip-flops substituted: %d (+%d helper gates)\n",
		res.Substitution.FFs, res.Substitution.ExtraGates)
	var nodes []int
	for _, g := range res.DDG.Nodes {
		nodes = append(nodes, g)
	}
	sort.Ints(nodes)
	for _, g := range nodes {
		fmt.Printf("  region %d: succs %v, comb %.3f ns, delay element %d levels\n",
			g, res.DDG.Succs[g], res.RegionDelays[g].CombMax, res.DelayLevels[g])
	}
	fmt.Printf("controllers: %d, C-tree cells: %d, delay cells: %d\n",
		res.Insert.Controllers, res.Insert.CTreeCells, res.Insert.DelayCells)

	if err := os.WriteFile(out, []byte(verilog.Write(d)), 0o644); err != nil {
		return err
	}
	if sdcOut != "" {
		if err := os.WriteFile(sdcOut, []byte(res.Constraints.Write()), 0o644); err != nil {
			return err
		}
	}
	if tbOut != "" {
		if err := os.WriteFile(tbOut, []byte(core.WriteTestbench(d, res, "", period)), 0o644); err != nil {
			return err
		}
	}
	if blifOut != "" {
		text, err := blif.Write(d.Top)
		if err != nil {
			return err
		}
		if err := os.WriteFile(blifOut, []byte(text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
