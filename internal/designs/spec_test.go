package designs

import (
	"strings"
	"testing"

	"desync/internal/stdcells"
)

func TestParsePipelineSpec(t *testing.T) {
	for _, c := range []struct {
		spec string
		want PipelineCfg
	}{
		{"pipeline", PipelineCfg{Depth: 8, Width: 32}},
		{"pipeline:depth=32,width=64,regions=100", PipelineCfg{Depth: 32, Width: 64, Regions: 100}},
		{"pipeline:depth=4,width=16,fanout=tree,kind=mix,seed=9", PipelineCfg{Depth: 4, Width: 16, Fanout: "tree", Kind: "mix", Seed: 9}},
		{"riscv", pipelinePresets["riscv"]},
		{"des", pipelinePresets["des"]},
		{"riscv:depth=8,regions=2", PipelineCfg{Depth: 8, Width: 64, Regions: 2, Fanout: "balanced", Kind: "mix", Seed: 1}},
	} {
		got, err := ParsePipelineSpec(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParsePipelineSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"pipeline:depth",            // no value
		"pipeline:depth=x",          // not an integer
		"pipeline:color=blue",       // unknown key
		"pipeline:depth=0",          // fails validate
		"pipeline:fanout=star",      // bad enum
		"dlx",                       // not a pipeline generator
		"des:width=17,kind=feistel", // odd feistel width
	} {
		if _, err := ParsePipelineSpec(spec); err == nil {
			t.Errorf("%s: want error", spec)
		}
	}
}

func TestParseSpec(t *testing.T) {
	for _, spec := range []string{"dlx", "arm", "fir", "pipeline", "riscv:depth=2", "des:depth=2"} {
		d, err := ParseSpec(spec, nil)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if d.Top == nil || len(d.Top.Insts) == 0 {
			t.Fatalf("%s: empty design", spec)
		}
	}
	for _, spec := range []string{"", "dlx:extra=1", "arm:seed=2", "vax", "pipeline:bad"} {
		if _, err := ParseSpec(spec, nil); err == nil {
			t.Errorf("%q: want error", spec)
		}
	}
	// An explicit library wins over the per-spec default.
	ll := stdcells.New(stdcells.LowLeakage)
	d, err := ParseSpec("fir", ll)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lib != ll {
		t.Fatal("fir: explicit library not used")
	}
}

func TestSpecHelpers(t *testing.T) {
	names := SpecNames()
	for _, want := range []string{"arm", "des", "dlx", "fir", "pipeline", "riscv"} {
		if !strings.Contains(strings.Join(names, ","), want) {
			t.Fatalf("SpecNames() = %v missing %s", names, want)
		}
	}
	for spec, want := range map[string]bool{
		"dlx": true, "arm": true, "fir": true, "pipeline": true,
		"pipeline:depth=2,width=16": true,
		"riscv":                     true,
		"dlx:x=1":                   false,
		"pipeline:depth=0":          false,
		"vax":                       false,
		"":                          false,
	} {
		if got := ValidSpec(spec); got != want {
			t.Errorf("ValidSpec(%q) = %v, want %v", spec, got, want)
		}
	}
	if DefaultLibVariant("arm") != stdcells.LowLeakage {
		t.Fatal("arm default variant is not LL")
	}
	if DefaultLibVariant("pipeline:depth=2") != stdcells.HighSpeed {
		t.Fatal("pipeline default variant is not HS")
	}
	for spec, want := range map[string]bool{
		"arm": true, "pipeline": true, "riscv:depth=2": true, "des": true,
		"dlx": false, "fir": false, "": false,
	} {
		if got := PreGrouped(spec); got != want {
			t.Errorf("PreGrouped(%q) = %v, want %v", spec, got, want)
		}
	}
}
