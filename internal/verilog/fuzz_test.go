package verilog

import (
	"strings"
	"testing"

	"desync/internal/stdcells"
)

// FuzzRead feeds arbitrary source text through the full front end
// (lex → parse → link). Read must either return a design or an error;
// panics, hangs and out-of-memory blowups are bugs — this is the path that
// consumes files from other tools.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"module m (a); input a; endmodule",
		"module m (a, z); input a; output z; INVX1 u (.A(a), .Z(z)); endmodule",
		"module m (a, z); input a; output z; INVX1 u (a, z); endmodule",
		"module m (q); output [3:0] q; wire [3:0] q; endmodule",
		"module m (z); output z; assign z = 1'b0; endmodule",
		"module sub (a); input a; endmodule\nmodule top (x); input x; sub s (.a(x)); endmodule",
		"module m (\\a.b ); input \\a.b ; endmodule",
		"// comment\nmodule m (a); /* block */ input a; endmodule",
		"module m (a); input a; BOGUS u (.A(a)); endmodule",
		"module m (a; input a; endmodule",
		"module m (a) input a endmodule",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lib := stdcells.New(stdcells.HighSpeed)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound parse work per input
		}
		d, err := Read(src, lib, "")
		if err != nil {
			return
		}
		// A successfully linked design must re-export and re-import.
		text := Write(d)
		if _, err := Read(text, lib, d.Name); err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q\nexport:\n%s", err, src, text)
		}
		_ = strings.Count(text, "\n")
	})
}
