package pnr

import (
	"context"
	"testing"

	"desync/internal/designs"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/sta"
	"desync/internal/stdcells"
)

func TestPlaceAndRouteDLX(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	pre := d.Top.ComputeStats()
	lay, err := PlaceAndRoute(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := lay.Report
	if r.Cells <= pre.Cells {
		t.Fatal("CTS should add buffers")
	}
	if r.CTSBuffers == 0 {
		t.Fatal("the clock net fans out to hundreds of FFs; a tree is required")
	}
	if r.CoreArea <= r.StdCellArea {
		t.Fatal("core must be larger than the cells")
	}
	if r.Utilization < 90 || r.Utilization > 100 {
		t.Fatalf("utilization %.1f%% far from the 95%% target", r.Utilization)
	}
	// Every instance is placed inside the core.
	for in, p := range lay.Pos {
		if p[0] < 0 || p[0] > lay.CoreW || p[1] < 0 || p[1] > lay.CoreH {
			t.Fatalf("%s placed outside the core: %v", in.Name, p)
		}
	}
	if len(lay.Pos) != len(d.Top.Insts) {
		t.Fatal("not all instances placed")
	}
	// Netlist still sane and fanout bounded on the clock tree.
	if errs := d.Top.Check(); len(errs) > 0 {
		t.Fatalf("post-CTS check: %v", errs[0])
	}
	clk := d.Top.Net("clk")
	ctlSinks := 0
	for _, s := range clk.Sinks {
		if s.Inst != nil {
			ctlSinks++
		}
	}
	if ctlSinks > DefaultOptions().MaxFanout {
		t.Fatalf("clock root still drives %d pins", ctlSinks)
	}
	// Wire delays annotated.
	annotated := 0
	for _, n := range d.Top.Nets {
		if n.Wire.Worst > 0 {
			annotated++
		}
	}
	if annotated < len(d.Top.Nets)/2 {
		t.Fatalf("only %d nets carry wire delay", annotated)
	}
}

// Post-layout timing includes interconnect: the critical path grows.
func TestPostLayoutTimingGrows(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	pre, err := sta.RegionDelays(context.Background(), d.Top, netlist.Worst, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceAndRoute(d, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	post, err := sta.RegionDelays(context.Background(), d.Top, netlist.Worst, sta.Options{UseWireDelays: true})
	if err != nil {
		t.Fatal(err)
	}
	grew := false
	for g, rd := range post {
		if p, ok := pre[g]; ok && rd.CombMax > p.CombMax {
			grew = true
		}
		if p, ok := pre[g]; ok && rd.CombMax < p.CombMax-1e-9 {
			t.Fatalf("region %d got faster after layout", g)
		}
	}
	if !grew {
		t.Fatal("wire delays did not affect timing")
	}
}

// The design still works functionally after CTS (buffered clocks).
func TestPostCTSFunctional(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceAndRoute(d, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d.Top, sim.Config{Corner: netlist.Worst, UseWireDelays: true})
	if err != nil {
		t.Fatal(err)
	}
	period := 8.0
	s.Drive("rstn", logic.L, 0)
	s.Drive("rstn", logic.H, period*0.4)
	s.Clock("clk", period, 0, period*30)
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	model := designs.NewModel(designs.TestProgram())
	steps := len(s.Captures["pc_r[0]"])
	if steps < 25 {
		t.Fatalf("too few cycles: %d", steps)
	}
	model.Run(steps)
	got := uint16(s.Vector("rf7_q", 16).Uint())
	if got != model.Regs[7] {
		t.Fatalf("post-layout DLX computed r7=%d, model %d", got, model.Regs[7])
	}
}

func TestBadOptions(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, _ := designs.BuildDLX(lib, designs.TestProgram())
	if _, err := PlaceAndRoute(d, Options{Utilization: 0}); err == nil {
		t.Fatal("expected utilization error")
	}
	opts := DefaultOptions()
	opts.MaxFanout = 1
	if _, err := PlaceAndRoute(d, opts); err == nil {
		t.Fatal("expected fanout error")
	}
}
