package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// BackendDesync is the name of the built-in desynchronization backend: the
// paper's handshake control network replaces the clock.
const BackendDesync = "desync"

// BackendTwoPhase is the name under which internal/twophase registers the
// two-phase non-overlapping clocking backend. The constant lives here so
// drivers can branch on Result.Backend without importing the backend
// package; the implementation stays in internal/twophase.
const BackendTwoPhase = "twophase"

// Backend is one clock-replacement strategy plugged into the shared stage
// skeleton. The skeleton (Convert) owns Import, Clean, Group and Export —
// flattening, false paths, the single-clock check, logic cleaning, region
// creation, the final netlist checks — plus the Validate/StageCheck/
// Progress/cancellation discipline at every boundary; a backend owns only
// what varies between strategies: what replaces the flip-flops' clock
// (Substitute), how the replacement is sized from the per-region STA
// budgets (Size), what network is generated to drive the latches plus the
// SDC constraints that make it safe (Generate), and the independent
// structural cross-check of that network (Verify).
//
// Backend methods return plain errors; the skeleton wraps them into staged
// FlowErrors, so FlowError minting stays in one place (repolint RL-BACKEND
// pins this). Methods must observe ctx inside long-running kernels; the
// skeleton checks it at every stage boundary.
type Backend interface {
	// Name returns the registry name, stable across releases: it is part
	// of the job server's cache key and the Result record.
	Name() string
	// Canonicalize applies backend-specific defaulting and zeroes the
	// knobs this backend never reads, or rejects an unknown Mode. The
	// shared knobs (Backend, Margin, TapScales) are already canonical when
	// it runs.
	Canonicalize(o Options) (Options, error)
	// Substitute replaces the clocked flip-flops with backend-specific
	// storage (both current backends share the master/slave latch
	// substitution) and records the outcome on f.Res.
	Substitute(ctx context.Context, f *Flow) error
	// Size computes the replacement network's timing parameters from the
	// per-region STA budgets.
	Size(ctx context.Context, f *Flow) error
	// Generate inserts the clock-replacement network and produces the
	// backend constraints (f.Res.Constraints).
	Generate(ctx context.Context, f *Flow) error
	// Verify structurally cross-checks the generated network against what
	// the netlist actually contains, independently of flow state; it runs
	// inside the Export stage, before the final validation.
	Verify(ctx context.Context, f *Flow) error
}

var (
	backendMu  sync.RWMutex
	backendReg = map[string]Backend{}
)

// RegisterBackend makes a backend available to Convert under its Name.
// Backends register from an init function (the desync backend here, the
// two-phase backend in internal/twophase); a duplicate name is a wiring
// bug and is reported on first use via NewBackend.
func RegisterBackend(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backendReg[b.Name()] = b
}

// NewBackend resolves a registered backend by name.
func NewBackend(name string) (Backend, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	if b, ok := backendReg[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("unknown backend %q (registered: %v)", name, backendNamesLocked())
}

// BackendNames lists the registered backends, sorted — what -backend and
// the job server's schema validation advertise.
func BackendNames() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	names := make([]string, 0, len(backendReg))
	for name := range backendReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
