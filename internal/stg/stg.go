// Package stg implements Signal Transition Graphs restricted to marked
// graphs (every place has one producer and one consumer), the class used to
// specify desynchronization handshake protocols (Fig 2.4). It provides
// reachability analysis (state counts), liveness checking, and a
// flow-equivalence check that executes a protocol over a ring of latches and
// verifies that every interleaving captures the synchronous data sequences.
package stg

import (
	"fmt"
	"sort"
	"strings"
)

// Event is a signal transition, e.g. "L0+".
type Event struct {
	Signal string
	Plus   bool
}

// String renders the transition name.
func (e Event) String() string {
	if e.Plus {
		return e.Signal + "+"
	}
	return e.Signal + "-"
}

// Arc is a token-carrying causal arc between two events.
type Arc struct {
	From, To int // event indices
	Tokens   int // initial marking
}

// Graph is a marked graph over events.
type Graph struct {
	Events []Event
	Arcs   []Arc

	evIdx map[Event]int
	in    [][]int // arc indices into each event
	out   [][]int
}

// NewGraph returns an empty marked graph.
func NewGraph() *Graph {
	return &Graph{evIdx: map[Event]int{}}
}

// Ev interns an event and returns its index.
func (g *Graph) Ev(signal string, plus bool) int {
	e := Event{signal, plus}
	if i, ok := g.evIdx[e]; ok {
		return i
	}
	i := len(g.Events)
	g.evIdx[e] = i
	g.Events = append(g.Events, e)
	return i
}

// AddArc adds a causal arc with an initial token count.
func (g *Graph) AddArc(from, to, tokens int) {
	g.Arcs = append(g.Arcs, Arc{from, to, tokens})
}

// freeze builds the incidence indexes.
func (g *Graph) freeze() {
	if g.in != nil {
		return
	}
	g.in = make([][]int, len(g.Events))
	g.out = make([][]int, len(g.Events))
	for ai, a := range g.Arcs {
		g.in[a.To] = append(g.in[a.To], ai)
		g.out[a.From] = append(g.out[a.From], ai)
	}
}

// Marking is a token count per arc.
type Marking []uint8

func (m Marking) key() string { return string(m) }

// Initial returns the initial marking. It panics on a token count outside
// 0..255; graphs built from literals use this, graphs built from external
// input should call InitialChecked.
func (g *Graph) Initial() Marking {
	m, err := g.InitialChecked()
	if err != nil {
		panic(err.Error())
	}
	return m
}

// InitialChecked is Initial with the token-count validation returned as an
// error instead of a panic.
func (g *Graph) InitialChecked() (Marking, error) {
	m := make(Marking, len(g.Arcs))
	for i, a := range g.Arcs {
		if a.Tokens < 0 || a.Tokens > 255 {
			return nil, fmt.Errorf("stg: bad token count %d on arc %d", a.Tokens, i)
		}
		m[i] = uint8(a.Tokens)
	}
	return m, nil
}

// Enabled reports whether event e can fire under m.
func (g *Graph) Enabled(m Marking, e int) bool {
	g.freeze()
	for _, ai := range g.in[e] {
		if m[ai] == 0 {
			return false
		}
	}
	return true
}

// EnabledEvents lists all enabled events.
func (g *Graph) EnabledEvents(m Marking) []int {
	var out []int
	for e := range g.Events {
		if g.Enabled(m, e) {
			out = append(out, e)
		}
	}
	return out
}

// Fire returns the marking after firing e (which must be enabled).
func (g *Graph) Fire(m Marking, e int) Marking {
	g.freeze()
	n := make(Marking, len(m))
	copy(n, m)
	for _, ai := range g.in[e] {
		n[ai]--
	}
	for _, ai := range g.out[e] {
		n[ai]++
	}
	return n
}

// ReachResult summarizes a reachability analysis.
type ReachResult struct {
	States    int
	Deadlock  bool     // some reachable marking enables nothing
	Unbounded bool     // a marking exceeded the bound (not a safe net)
	DeadTrace []string // events leading to the deadlock, if any
}

// Reachable explores the state space breadth-first up to limit states and a
// per-arc token bound.
func (g *Graph) Reachable(limit int) ReachResult {
	g.freeze()
	init := g.Initial()
	seen := map[string]bool{init.key(): true}
	type qe struct {
		m     Marking
		trace []string
	}
	queue := []qe{{init, nil}}
	res := ReachResult{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		res.States++
		if res.States > limit {
			res.Unbounded = true
			return res
		}
		enabled := g.EnabledEvents(cur.m)
		if len(enabled) == 0 {
			res.Deadlock = true
			res.DeadTrace = cur.trace
			continue
		}
		for _, e := range enabled {
			next := g.Fire(cur.m, e)
			// Safety bound: protocols here are safe nets (≤2 tokens/arc).
			for _, t := range next {
				if t > 4 {
					res.Unbounded = true
					return res
				}
			}
			k := next.key()
			if !seen[k] {
				seen[k] = true
				var tr []string
				if len(cur.trace) < 32 {
					tr = append(append(tr, cur.trace...), g.Events[e].String())
				}
				queue = append(queue, qe{next, tr})
			}
		}
	}
	return res
}

// Live reports whether the marked graph is live: strongly connected with
// every directed cycle carrying at least one token. For strongly-connected
// marked graphs this is equivalent to deadlock freedom, which Reachable
// confirms; this structural check is independent of state-space size.
func (g *Graph) Live() bool {
	g.freeze()
	if !g.stronglyConnected() {
		return false
	}
	// A cycle with zero tokens exists iff the subgraph of zero-token arcs
	// has a cycle.
	n := len(g.Events)
	adj := make([][]int, n)
	for _, a := range g.Arcs {
		if a.Tokens == 0 {
			adj[a.From] = append(adj[a.From], a.To)
		}
	}
	color := make([]uint8, n)
	var cyclic bool
	var dfs func(v int)
	dfs = func(v int) {
		color[v] = 1
		for _, w := range adj[v] {
			switch color[w] {
			case 0:
				dfs(w)
			case 1:
				cyclic = true
			}
			if cyclic {
				return
			}
		}
		color[v] = 2
	}
	for v := 0; v < n && !cyclic; v++ {
		if color[v] == 0 {
			dfs(v)
		}
	}
	return !cyclic
}

func (g *Graph) stronglyConnected() bool {
	n := len(g.Events)
	if n == 0 {
		return true
	}
	reach := func(adjOf func(int) []int) int {
		seen := make([]bool, n)
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adjOf(v) {
				if !seen[w] {
					seen[w] = true
					count++
					stack = append(stack, w)
				}
			}
		}
		return count
	}
	fwd := make([][]int, n)
	rev := make([][]int, n)
	for _, a := range g.Arcs {
		fwd[a.From] = append(fwd[a.From], a.To)
		rev[a.To] = append(rev[a.To], a.From)
	}
	return reach(func(v int) []int { return fwd[v] }) == n &&
		reach(func(v int) []int { return rev[v] }) == n
}

// Dump renders the graph for debugging.
func (g *Graph) Dump() string {
	var lines []string
	for _, a := range g.Arcs {
		lines = append(lines, fmt.Sprintf("%s -> %s [%d]",
			g.Events[a.From], g.Events[a.To], a.Tokens))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
