package expt

import (
	"strings"
	"testing"
)

// TestRunGenFlow pushes a small parametric pipeline through the generic
// desynchronization flow — the path drequiv/drsweep take for -gen specs —
// and checks the manual grouping survived into the control network.
func TestRunGenFlow(t *testing.T) {
	f, err := RunGenFlow("pipeline:depth=4,width=16,regions=2", FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Period <= 0 {
		t.Fatalf("period = %v, want > 0", f.Period)
	}
	if got := len(f.Result.Network.Regions); got != 2 {
		t.Fatalf("regions = %d, want 2", got)
	}
	if f.Desync.Top.Port("rst_desync") == nil {
		t.Fatal("desynchronized top has no rst_desync")
	}
}

func TestRunGenFlowRejects(t *testing.T) {
	if _, err := RunGenFlow("pipeline:depth=0", FlowConfig{}); err == nil {
		t.Fatal("want error for invalid spec")
	}
}

// TestCompareBackends runs both backends over one small parametric spec and
// checks the comparison's internal consistency: same reference, both rows,
// plausible overheads.
func TestCompareBackends(t *testing.T) {
	rows, err := CompareBackends([]string{"pipeline:depth=4,width=8,regions=3"},
		[]string{"desync", "twophase"}, FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0].Backends) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	r := rows[0]
	if r.SyncCells == 0 || r.SyncArea <= 0 || r.SyncPeriod <= 0 {
		t.Fatalf("degenerate sync reference: %+v", r)
	}
	for _, c := range r.Backends {
		if c.Cells <= r.SyncCells || c.CellArea <= r.SyncArea {
			t.Errorf("%s conversion did not grow the netlist: %+v", c.Backend, c)
		}
		if c.Period <= 0 {
			t.Errorf("%s period %.3f", c.Backend, c.Period)
		}
	}
	if got := RenderBackendTable(rows); !strings.Contains(got, "desync") || !strings.Contains(got, "twophase") {
		t.Errorf("rendered table lacks backend rows:\n%s", got)
	}
}
