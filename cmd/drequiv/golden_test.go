package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

// The goldens pin the full model extraction and exploration of both case
// studies — region count, signal count, reduced state count and every proved
// property — so a refactor of the derivation cannot silently change what is
// verified.
func TestGoldenReports(t *testing.T) {
	for _, gen := range []string{"dlx", "arm"} {
		t.Run(gen, func(t *testing.T) {
			if gen == "arm" && testing.Short() {
				t.Skip("ARM exploration takes ~15s; skipped with -short")
			}
			var out, errb bytes.Buffer
			if code := run([]string{"-gen", gen, "-json"}, &out, &errb); code != 0 {
				t.Fatalf("drequiv -gen %s exited %d: %s", gen, code, errb.String())
			}
			path := filepath.Join("testdata", "golden", gen+".json")
			if *update {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("report drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
			}
		})
	}
}

// The static goldens pin the -static report the same way: verdicts,
// period bound, critical cycle and the per-region table must stay
// byte-identical, and a second run in the same process must reproduce
// the first run exactly (the report promises determinism at any -j).
func TestGoldenStaticReports(t *testing.T) {
	for _, gen := range []string{"dlx", "fir"} {
		t.Run(gen, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{"-gen", gen, "-static", "-json"}, &out, &errb); code != 0 {
				t.Fatalf("drequiv -gen %s -static exited %d: %s", gen, code, errb.String())
			}
			var again bytes.Buffer
			if code := run([]string{"-gen", gen, "-static", "-json"}, &again, &errb); code != 0 {
				t.Fatalf("second run exited %d: %s", code, errb.String())
			}
			if !bytes.Equal(out.Bytes(), again.Bytes()) {
				t.Error("static report not byte-identical across runs")
			}
			path := filepath.Join("testdata", "golden", gen+"-static.json")
			if *update {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("static report drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, out.Bytes(), want)
			}
		})
	}
}
