package designs

import (
	"fmt"

	"desync/internal/netlist"
)

// FIRTaps are the constant coefficients of the third case study: a 4-tap
// FIR filter y[n] = 3·x[n] + 5·x[n−1] + 7·x[n−2] + 3·x[n−3]. The paper's
// future work asks for "more study case circuits to evaluate how much the
// results can be generalized" (§6); unlike the DLX ring, this datapath has
// open boundaries — its first region is fed by primary inputs and its last
// drives primary outputs — so desynchronizing it exercises the environment
// request/acknowledge handshakes of §4.8.
var FIRTaps = []uint64{3, 5, 7, 3}

// FIRWidth is the input sample width; the accumulator carries FIRWidth+4.
const FIRWidth = 8

// BuildFIR generates the synchronous gate-level filter: an input stage
// registering x and its delay line (flip-flop chains), a multiply stage
// (constant multipliers from shift-and-add), and an accumulate stage
// driving the y output. Ports: clk, rstn, x[7:0], y[11:0].
func BuildFIR(lib *netlist.Library) (_ *netlist.Design, err error) {
	defer recoverBuildErr("FIR", &err)
	b := NewBuilder("fir", lib)
	m := b.M
	clk := m.AddPort("clk", netlist.In).Net
	rstn := m.AddPort("rstn", netlist.In).Net
	x := b.InputBus("x", FIRWidth)
	yOut := b.OutputBus("y", FIRWidth+4)

	// ---- Input stage: x register plus the delay line (FF->FF chains the
	// grouping step-2 rule attaches to this region). ----
	xr := make([]Bus, len(FIRTaps))
	xr[0] = b.RegBank("xr0", x, clk, rstn, "xr0_q")
	for k := 1; k < len(FIRTaps); k++ {
		xr[k] = b.RegBank(fmt.Sprintf("xr%d", k), xr[k-1], clk, rstn, fmt.Sprintf("xr%d_q", k))
	}

	// ---- Multiply stage: constant multipliers (shift-and-add). ----
	acw := FIRWidth + 4
	pad := func(in Bus, shift int) Bus {
		out := make(Bus, acw)
		for i := range out {
			switch {
			case i < shift || i-shift >= len(in):
				out[i] = b.Tie(0)
			default:
				out[i] = in[i-shift]
			}
		}
		return out
	}
	prods := make([]Bus, len(FIRTaps))
	for k, c := range FIRTaps {
		var terms []Bus
		for bit := 0; bit < 4; bit++ {
			if c>>uint(bit)&1 == 1 {
				terms = append(terms, pad(xr[k], bit))
			}
		}
		p := terms[0]
		for _, t := range terms[1:] {
			p = b.Adder(p, t, nil)
		}
		prods[k] = b.RegBank(fmt.Sprintf("pr%d", k), p, clk, rstn, fmt.Sprintf("pr%d_q", k))
	}

	// ---- Accumulate stage. ----
	widen := func(in Bus) Bus {
		if len(in) == acw {
			return in
		}
		return pad(in, 0)
	}
	sum := widen(prods[0])
	for _, p := range prods[1:] {
		sum = b.Adder(sum, widen(p), nil)
	}
	yq := b.RegBank("yr", sum, clk, rstn, "yr_q")
	for i := range yq {
		b.Gate("BUFX1", yq[i], yOut[i])
	}

	// Per-stage D-bus naming so the bus heuristic binds each stage's
	// disconnected cones (the same mechanism as the DLX generator).
	stageOf := func(inst string) string {
		switch {
		case hasPrefix(inst, "xr"):
			return "in"
		case hasPrefix(inst, "pr"):
			return "mul"
		case hasPrefix(inst, "yr"):
			return "acc"
		}
		return ""
	}
	idx := map[string]int{}
	renamed := map[*netlist.Net]bool{}
	for _, in := range m.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindFF {
			continue
		}
		stage := stageOf(in.Name)
		if stage == "" {
			continue
		}
		d := in.Conn("D")
		if d == nil || renamed[d] || d.Driver.Inst == nil || d.Driver.Inst.Cell.Seq != nil {
			continue
		}
		renamed[d] = true
		_ = m.RenameNet(d, fmt.Sprintf("%s_d[%d]", stage, idx[stage]))
		idx[stage]++
	}

	d := &netlist.Design{Name: "fir", Top: m, Modules: map[string]*netlist.Module{"fir": m}, Lib: lib}
	if errs := m.Check(); len(errs) > 0 {
		return nil, fmt.Errorf("designs: FIR netlist broken: %v", errs[0])
	}
	return d, nil
}

// FIRModel is the cycle-accurate golden reference: same three pipeline
// stages.
type FIRModel struct {
	xr    [4]uint16
	prods [4]uint16
	Y     uint16
	// YTrace records Y after each step.
	YTrace []uint16
}

// Step feeds one input sample and advances one clock.
func (f *FIRModel) Step(x uint16) {
	mask := uint16(1<<(FIRWidth+4) - 1)
	y := (f.prods[0] + f.prods[1] + f.prods[2] + f.prods[3]) & mask
	var np [4]uint16
	for k, c := range FIRTaps {
		np[k] = uint16(uint64(f.xr[k])*c) & mask
	}
	var nx [4]uint16
	nx[0] = x & (1<<FIRWidth - 1)
	nx[1], nx[2], nx[3] = f.xr[0], f.xr[1], f.xr[2]
	f.Y = y
	f.prods = np
	f.xr = nx
	f.YTrace = append(f.YTrace, y)
}
