package par

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// Fold runs compute(ctx, i) for i in [start, n) on at most workers
// goroutines and folds every result exactly once, strictly in index order,
// on the caller's goroutine. It is the streaming counterpart of Map: the
// per-task results never accumulate into a slice, so a sweep over 10^6
// scenarios holds O(workers) results in memory while its aggregates (and
// its checkpoint journal) still see the exact serial order — byte-identical
// output at any worker count.
//
// The reorder buffer is naturally bounded: results travel through a channel
// of capacity workers, so a worker that has raced far ahead of the fold
// blocks sending and the caller holds at most ~2*workers undelivered
// results at any moment.
//
// fold may return an error to stop the sweep early (a graceful cutoff such
// as "too many failures"); that error is returned as-is, no further fold
// calls happen, and in-flight computes are cancelled. A compute error also
// stops the fold — results already folded stay folded (the journal keeps a
// valid prefix), and the error returned is deterministic ForEach-style: the
// lowest-index compute error that is not a cancellation echo. Because the
// fold is strictly ordered, a fold error always precedes (in index order)
// any concurrent compute error, so it wins.
func Fold[R any](ctx context.Context, workers, start, n int, compute func(ctx context.Context, i int) (R, error), fold func(i int, r R) error) error {
	if start < 0 {
		start = 0
	}
	if n <= start {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n-start {
		workers = n - start
	}
	if workers <= 1 {
		// The serial path is the specification the parallel one must match:
		// compute then fold, index by index, first error wins.
		for i := start; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			r, err := compute(ctx, i)
			if err != nil {
				return err
			}
			if err := fold(i, r); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type slot struct {
		i   int
		r   R
		err error
	}
	ch := make(chan slot, workers)
	var next atomic.Int64
	next.Store(int64(start))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if cctx.Err() != nil {
					return
				}
				r, err := compute(cctx, i)
				select {
				case ch <- slot{i: i, r: r, err: err}:
				case <-cctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	pending := make(map[int]slot, 2*workers)
	errs := map[int]error{}
	var foldErr error
	want := start
	for s := range ch {
		if s.err != nil {
			errs[s.i] = s.err
			cancel()
			continue
		}
		if foldErr != nil || len(errs) > 0 {
			continue // draining after a stop: never fold past the first error
		}
		pending[s.i] = s
		for {
			p, ok := pending[want]
			if !ok {
				break
			}
			delete(pending, want)
			if err := fold(p.i, p.r); err != nil {
				foldErr = err
				cancel()
				break
			}
			want++
		}
	}
	if foldErr != nil {
		return foldErr
	}
	// Deterministic selection, as in ForEach: the lowest-index compute error
	// that is not just the cancellation rippling through sibling tasks.
	idxs := make([]int, 0, len(errs))
	for i := range errs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var firstAny error
	for _, i := range idxs {
		err := errs[i]
		if firstAny == nil {
			firstAny = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstAny
}
