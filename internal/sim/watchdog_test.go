package sim

import (
	"strings"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// buildLatch wires one LATRQX1 with D, G and RN as primary inputs.
func buildLatch(t *testing.T) *netlist.Module {
	t.Helper()
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("d", netlist.In)
	m.AddPort("g", netlist.In)
	m.AddPort("rn", netlist.In)
	m.AddPort("q", netlist.Out)
	l := m.AddInst("l", lib.MustCell("LATRQX1"))
	m.MustConnect(l, "D", m.Net("d"))
	m.MustConnect(l, "G", m.Net("g"))
	m.MustConnect(l, "RN", m.Net("rn"))
	m.MustConnect(l, "Q", m.Net("q"))
	return m
}

func TestWatchdogDeadlock(t *testing.T) {
	m := buildLatch(t)
	s, err := New(m, Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Watch(WatchdogConfig{
		HandshakeNets: []string{"g"}, QuiescenceGap: 10, XCaptureAfter: -1,
	}); err != nil {
		t.Fatal(err)
	}
	s.Drive("rn", logic.H, 0)
	s.Drive("d", logic.L, 0)
	for i := 0; i < 4; i++ {
		s.Drive("g", logic.V([]logic.V{logic.H, logic.L}[i%2]), float64(i))
	}
	// The "handshake" stops at t=3; the horizon is far past the gap.
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	diags := s.Diagnostics()
	if len(diags) != 1 || diags[0].Kind != DiagDeadlock {
		t.Fatalf("diags = %v, want one deadlock", diags)
	}
	if diags[0].Net != "g" || diags[0].Stage != "watchdog/deadlock" {
		t.Errorf("diagnostic fields wrong: %+v", diags[0])
	}
	if !strings.Contains(diags[0].String(), "deadlock") {
		t.Errorf("String() = %q", diags[0].String())
	}
}

func TestWatchdogQuiescenceRespectsGap(t *testing.T) {
	m := buildLatch(t)
	s, _ := New(m, Config{Corner: netlist.Worst})
	if err := s.Watch(WatchdogConfig{
		HandshakeNets: []string{"g"}, QuiescenceGap: 10, XCaptureAfter: -1,
	}); err != nil {
		t.Fatal(err)
	}
	s.Drive("rn", logic.H, 0)
	s.Drive("d", logic.L, 0)
	s.Drive("g", logic.H, 1)
	s.Drive("g", logic.L, 95)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if diags := s.Diagnostics(); len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

func TestWatchdogSetupViolation(t *testing.T) {
	m := buildLatch(t)
	s, _ := New(m, Config{Corner: netlist.Worst})
	if err := s.Watch(WatchdogConfig{SetupGuard: true, XCaptureAfter: -1}); err != nil {
		t.Fatal(err)
	}
	setup := m.Inst("l").Cell.Setup.At(netlist.Worst)
	if setup <= 0 {
		t.Skip("library latch has no setup requirement")
	}
	s.Drive("rn", logic.H, 0)
	s.Drive("g", logic.H, 0)
	s.Drive("d", logic.H, 5)
	s.Drive("g", logic.L, 5+setup/4) // closes within the setup window
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	diags := s.Diagnostics()
	if len(diags) != 1 || diags[0].Kind != DiagSetup {
		t.Fatalf("diags = %v, want one setup violation", diags)
	}
	if diags[0].Inst != "l" || diags[0].Net != "d" {
		t.Errorf("diagnostic fields wrong: %+v", diags[0])
	}
}

func TestWatchdogSetupCleanClose(t *testing.T) {
	m := buildLatch(t)
	s, _ := New(m, Config{Corner: netlist.Worst})
	if err := s.Watch(WatchdogConfig{SetupGuard: true, XCaptureAfter: -1}); err != nil {
		t.Fatal(err)
	}
	s.Drive("rn", logic.H, 0)
	s.Drive("g", logic.H, 0)
	s.Drive("d", logic.H, 5)
	s.Drive("g", logic.L, 9) // data settled long before the closing edge
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if diags := s.Diagnostics(); len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
}

func TestWatchdogXCapture(t *testing.T) {
	m := buildLatch(t)
	s, _ := New(m, Config{Corner: netlist.Worst})
	if err := s.Watch(WatchdogConfig{XCaptureAfter: 1}); err != nil {
		t.Fatal(err)
	}
	s.Drive("rn", logic.H, 0)
	// d stays undriven: X flows into the latch at the closing edge.
	s.Drive("g", logic.H, 2)
	s.Drive("g", logic.L, 5)
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	diags := s.Diagnostics()
	if len(diags) != 1 || diags[0].Kind != DiagXCapture || diags[0].Inst != "l" {
		t.Fatalf("diags = %v, want one x-capture on l", diags)
	}
}

func TestWatchUnknownNet(t *testing.T) {
	m := buildLatch(t)
	s, _ := New(m, Config{Corner: netlist.Worst})
	if err := s.Watch(WatchdogConfig{HandshakeNets: []string{"nope"}}); err == nil {
		t.Fatal("expected error for unknown handshake net")
	}
}

func TestForceReleaseNet(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("b", netlist.In)
	m.AddPort("z", netlist.Out)
	g := m.AddInst("g", lib.MustCell("AND2X1"))
	m.MustConnect(g, "A", m.Net("a"))
	m.MustConnect(g, "B", m.Net("b"))
	m.MustConnect(g, "Z", m.Net("z"))
	s, _ := New(m, Config{Corner: netlist.Worst})
	s.Drive("a", logic.H, 0)
	s.Drive("b", logic.H, 0)
	if err := s.Force("z", logic.L, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Release("z", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(4); err != nil {
		t.Fatal(err)
	}
	if s.Value("z") != logic.H {
		t.Fatalf("before force: z = %v, want 1", s.Value("z"))
	}
	if err := s.Run(8); err != nil {
		t.Fatal(err)
	}
	if s.Value("z") != logic.L {
		t.Fatalf("while forced: z = %v, want 0", s.Value("z"))
	}
	// Driver transitions while pinned must be dropped, not queued.
	s.Drive("a", logic.L, 8.2)
	s.Drive("a", logic.H, 8.4)
	if err := s.Run(9); err != nil {
		t.Fatal(err)
	}
	if s.Value("z") != logic.L {
		t.Fatalf("forced net moved: z = %v", s.Value("z"))
	}
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if s.Value("z") != logic.H {
		t.Fatalf("after release: z = %v, want 1", s.Value("z"))
	}
}

func TestForceErrors(t *testing.T) {
	m := buildLatch(t)
	s, _ := New(m, Config{Corner: netlist.Worst})
	if err := s.Force("nope", logic.H, 0); err == nil {
		t.Error("expected error forcing unknown net")
	}
	if err := s.Release("nope", 0); err == nil {
		t.Error("expected error releasing unknown net")
	}
	s.now = 5
	if err := s.At(1, func() {}); err == nil {
		t.Error("expected error scheduling action in the past")
	}
}
