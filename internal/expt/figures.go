package expt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"desync/internal/netlist"
	"desync/internal/stg"
	"desync/internal/variability"
)

// TimingPoint is one (selection, corner) measurement of Fig 5.3 / Fig 5.5.
type TimingPoint struct {
	Selection int
	Corner    netlist.Corner
	Period    float64 // effective period, ns
	Correct   bool    // false = "too short delay elements" (dashed in Fig 5.3)
	PowerMW   float64 // total power (Fig 5.5)
}

// TimingSweep is the dataset behind Fig 5.3 and Fig 5.5.
type TimingSweep struct {
	DDLX []TimingPoint
	// DLX periods (clock from STA) and measured power per corner.
	DLXPeriod map[netlist.Corner]float64
	DLXPower  map[netlist.Corner]float64
	// BestSelection is the shortest selection that is still correct at
	// both corners (the paper's "delay selection 2").
	BestSelection int
}

// Fig53 sweeps the multiplexed delay-element selection 7..0 at both
// library corners, measuring the desynchronized DLX's effective period and
// whether it still operates correctly — regenerating Fig 5.3 (and
// collecting the power data of Fig 5.5 on the way).
func Fig53(cycles int) (*TimingSweep, *DLXFlow, error) {
	f, err := RunDLXFlow(FlowConfig{MuxTaps: true})
	if err != nil {
		return nil, nil, err
	}
	sweep := &TimingSweep{
		DLXPeriod: map[netlist.Corner]float64{netlist.Worst: f.Period, netlist.Best: f.BestPeriod},
		DLXPower:  map[netlist.Corner]float64{},
	}
	for _, corner := range []netlist.Corner{netlist.Best, netlist.Worst} {
		p := sweep.DLXPeriod[corner]
		run, err := MeasureDLX(f, corner, p, cycles)
		if err != nil {
			return nil, nil, err
		}
		sweep.DLXPower[corner] = run.DynamicMW + run.LeakageMW
	}
	okAtBoth := map[int]int{}
	for sel := 7; sel >= 0; sel-- {
		for _, corner := range []netlist.Corner{netlist.Best, netlist.Worst} {
			run, err := MeasureDDLX(f, corner, 1, sel, cycles)
			if err != nil {
				return nil, nil, err
			}
			pt := TimingPoint{
				Selection: sel,
				Corner:    corner,
				Period:    run.EffectivePeriod,
				Correct:   run.Correct,
				PowerMW:   run.DynamicMW + run.LeakageMW,
			}
			sweep.DDLX = append(sweep.DDLX, pt)
			if run.Correct {
				okAtBoth[sel]++
			}
		}
	}
	sweep.BestSelection = -1
	for sel := 0; sel <= 7; sel++ {
		if okAtBoth[sel] == 2 {
			sweep.BestSelection = sel
			break
		}
	}
	return sweep, f, nil
}

// Render prints the sweep as the series of Fig 5.3.
func (s *TimingSweep) Render() string {
	var sb strings.Builder
	sb.WriteString("Operational period vs delay selection (Fig 5.3)\n")
	fmt.Fprintf(&sb, "  DLX best case:  %.3f ns   DLX worst case: %.3f ns\n",
		s.DLXPeriod[netlist.Best], s.DLXPeriod[netlist.Worst])
	fmt.Fprintf(&sb, "  %-10s %-8s %12s %10s\n", "selection", "corner", "period (ns)", "status")
	pts := append([]TimingPoint(nil), s.DDLX...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Selection != pts[j].Selection {
			return pts[i].Selection > pts[j].Selection
		}
		return pts[i].Corner < pts[j].Corner
	})
	for _, p := range pts {
		status := "ok"
		if !p.Correct {
			status = "TOO SHORT"
		}
		fmt.Fprintf(&sb, "  %-10d %-8s %12.3f %10s\n", p.Selection, p.Corner, p.Period, status)
	}
	fmt.Fprintf(&sb, "  best working setup: delay selection %d\n", s.BestSelection)
	return sb.String()
}

// RenderPower prints the same sweep as the series of Fig 5.5.
func (s *TimingSweep) RenderPower() string {
	var sb strings.Builder
	sb.WriteString("Total power vs delay selection (Fig 5.5)\n")
	fmt.Fprintf(&sb, "  DLX best case:  %.3f mW   DLX worst case: %.3f mW\n",
		s.DLXPower[netlist.Best], s.DLXPower[netlist.Worst])
	fmt.Fprintf(&sb, "  %-10s %-8s %12s\n", "selection", "corner", "power (mW)")
	for _, p := range s.DDLX {
		if !p.Correct {
			continue // the paper plots power for working setups (sel >= 2)
		}
		fmt.Fprintf(&sb, "  %-10d %-8s %12.3f\n", p.Selection, p.Corner, p.PowerMW)
	}
	return sb.String()
}

// MonteCarlo is the dataset behind Fig 5.4: the effective period of the
// desynchronized DLX across an inter-die population, against the fixed
// synchronous worst-case period.
type MonteCarlo struct {
	Chips          int
	Periods        []float64 // sorted effective periods
	DLXWorstPeriod float64
	DDLXBest       float64
	DDLXWorst      float64
	FasterFraction float64 // chips beating the synchronous worst case
}

// Fig54 samples chips between the corners (normal inter-die distribution,
// as the paper assumes), adds intra-die mismatch, and measures each chip's
// effective period. sel chooses the delay-element tap (the paper evaluates
// at the calibrated setup; sel < 0 uses fixed, conservatively sized
// elements).
func Fig54(chips, cycles, sel int, seed int64) (*MonteCarlo, *DLXFlow, error) {
	f, err := RunDLXFlow(FlowConfig{MuxTaps: sel >= 0})
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	pop := variability.Sample(rng, chips, 1.0/6)
	mc := &MonteCarlo{Chips: chips, DLXWorstPeriod: f.Period}
	for _, chip := range pop {
		variability.ApplyIntraDie(f.Desync.Top, 0.03, rng)
		run, err := MeasureDDLX(f, netlist.Best, chip.Scale(), sel, cycles)
		if err != nil {
			return nil, nil, err
		}
		if !run.Correct {
			return nil, nil, fmt.Errorf("expt: chip theta=%.3f failed flow equivalence", chip.Theta)
		}
		mc.Periods = append(mc.Periods, run.EffectivePeriod)
	}
	variability.ResetIntraDie(f.Desync.Top)
	sort.Float64s(mc.Periods)
	mc.DDLXBest = mc.Periods[0]
	mc.DDLXWorst = mc.Periods[len(mc.Periods)-1]
	n := 0
	for _, p := range mc.Periods {
		if p < mc.DLXWorstPeriod {
			n++
		}
	}
	mc.FasterFraction = float64(n) / float64(len(mc.Periods))
	return mc, f, nil
}

// Render prints the distribution summary of Fig 5.4.
func (mc *MonteCarlo) Render() string {
	var sb strings.Builder
	sb.WriteString("Real operation delay: DDLX population vs DLX worst case (Fig 5.4)\n")
	fmt.Fprintf(&sb, "  chips sampled: %d\n", mc.Chips)
	fmt.Fprintf(&sb, "  DDLX best / median / worst period: %.3f / %.3f / %.3f ns\n",
		mc.DDLXBest, mc.Periods[len(mc.Periods)/2], mc.DDLXWorst)
	fmt.Fprintf(&sb, "  DLX worst-case period: %.3f ns\n", mc.DLXWorstPeriod)
	fmt.Fprintf(&sb, "  DDLX faster than synchronous worst case on %.0f%% of chips\n",
		mc.FasterFraction*100)
	return sb.String()
}

// ProtocolRow is one line of the Fig 2.4 experiment.
type ProtocolRow struct {
	Name   string
	States int
	Live   bool
	FlowEq bool
}

// Fig24 classifies the protocol lattice: reachable-state counts of the
// closed two-signal STGs plus liveness and flow equivalence checked over a
// latch ring.
func Fig24() ([]ProtocolRow, error) {
	var rows []ProtocolRow
	for i := range stg.Protocols {
		p := &stg.Protocols[i]
		states := 0
		pg, err := p.PairGraph()
		if err != nil {
			return nil, err
		}
		r := pg.Reachable(100000)
		if !r.Unbounded {
			states = r.States
		}
		rr, err := p.CheckRing(2, 2_000_000)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ProtocolRow{p.Name, states, rr.Live, rr.FlowEquiv})
	}
	return rows, nil
}

// RenderFig24 prints the lattice.
func RenderFig24(rows []ProtocolRow) string {
	var sb strings.Builder
	sb.WriteString("Desynchronization protocols by allowed concurrency (Fig 2.4)\n")
	fmt.Fprintf(&sb, "  %-24s %8s %6s %16s\n", "protocol", "states", "live", "flow-equivalent")
	for _, r := range rows {
		st := fmt.Sprintf("%d", r.States)
		if r.States == 0 {
			st = "unbounded"
		}
		fmt.Fprintf(&sb, "  %-24s %8s %6v %16v\n", r.Name, st, r.Live, r.FlowEq)
	}
	return sb.String()
}

// Table21 renders the C-Muller element truth table from the library cell's
// own set/reset functions.
func Table21() string {
	var sb strings.Builder
	sb.WriteString("C-Muller element (Table 2.1)\n")
	sb.WriteString("  inputs    output\n")
	sb.WriteString("  all 0s    0\n")
	sb.WriteString("  all 1s    1\n")
	sb.WriteString("  other     unchanged\n")
	return sb.String()
}

// Ablation compares controller overhead: effective period of the sized
// (non-muxed) DDLX against the synchronous period at the same corner,
// reproducing the "~3 complex gates over a 13-level critical path" analysis
// of §5.2.2.
type Ablation struct {
	SyncPeriod   float64
	DesyncPeriod float64
	OverheadPct  float64
}

// ControlOverhead measures the §5.2.2 typical-case overhead at the worst
// corner.
func ControlOverhead(f *DLXFlow, cycles int) (*Ablation, error) {
	run, err := MeasureDDLX(f, netlist.Worst, 1, -1, cycles)
	if err != nil {
		return nil, err
	}
	if !run.Correct {
		return nil, fmt.Errorf("expt: sized DDLX not flow-equivalent")
	}
	a := &Ablation{SyncPeriod: f.Period, DesyncPeriod: run.EffectivePeriod}
	a.OverheadPct = (a.DesyncPeriod - a.SyncPeriod) / a.SyncPeriod * 100
	if math.IsNaN(a.OverheadPct) {
		return nil, fmt.Errorf("expt: bad periods")
	}
	return a, nil
}
