// Package verilog reads and writes gate-level structural Verilog, the
// exchange format between synthesis, DFT, drdesync and the backend (§3.2.1,
// §3.2.7). The supported subset is what post-synthesis netlists contain:
// module/endmodule, input/output/inout and wire declarations (scalar and
// bused), library-cell and submodule instantiations with named or positional
// connections, simple alias assigns, escaped identifiers, bit-selects and
// 1'b0/1'b1 constants. Buses are bit-blasted on import.
package verilog

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tIdent tokKind = iota
	tNumber
	tPunct
	tEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

// next scans and returns the next token. The parser pulls tokens one at a
// time: netlist text averages under three bytes per token, so materializing
// the whole stream would cost more memory than the source itself — at
// million-gate sizes that dominated import time.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += nl
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("verilog: line %d: unterminated comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			goto scan
		}
	}
	return token{kind: tEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	switch {
	case c == '\\':
		// Escaped identifier: backslash up to (exclusive) next whitespace.
		start := l.pos + 1
		end := start
		for end < len(l.src) && !isSpace(l.src[end]) {
			end++
		}
		if end == start {
			return token{}, fmt.Errorf("verilog: line %d: empty escaped identifier", l.line)
		}
		l.pos = end
		return token{tIdent, "\\" + l.src[start:end], l.line}, nil
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tIdent, l.src[start:l.pos], l.line}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (isIdentPart(l.src[l.pos]) || l.src[l.pos] == '\'') {
			l.pos++
		}
		return token{tNumber, l.src[start:l.pos], l.line}, nil
	case strings.IndexByte("()[]{},;:.=", c) >= 0:
		l.pos++
		return token{tPunct, string(c), l.line}, nil
	}
	return token{}, fmt.Errorf("verilog: line %d: unexpected character %q", l.line, c)
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }
