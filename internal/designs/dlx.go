package designs

import (
	"fmt"

	"desync/internal/netlist"
)

// The DLX case study (§5.2): a four-stage (IF, ID, EX, MEM — writeback
// folded into MEM) 16-bit RISC pipeline with the full integer ISA below, an
// on-chip instruction ROM, an 8x16 register file and a 16x16 data memory,
// and no data forwarding, as in the paper. Software schedules around the
// pipeline: three delay slots after taken control flow and three
// instructions between a definition and its use.
//
// Instruction format: [15:12] opcode, [11:9] rd, [8:6] rs1, [5:3] rs2,
// [5:0] imm6 (sign extended).
const (
	OpNOP  = 0
	OpADD  = 1 // rd = rs1 + rs2
	OpSUB  = 2 // rd = rs1 - rs2
	OpAND  = 3
	OpOR   = 4
	OpXOR  = 5
	OpADDI = 6  // rd = rs1 + imm6
	OpLW   = 7  // rd = DMEM[(rs1+imm6) & 15]
	OpSW   = 8  // DMEM[(rs1+imm6) & 15] = R[rd]
	OpBEQZ = 9  // if R[rs1]==0: PC = pc+1+imm6
	OpJMP  = 10 // PC = pc+1+sext(instr[8:0])
	OpLI   = 11 // rd = sext(imm6)
)

// Encode assembles one instruction.
func Encode(op, rd, rs1, rs2, imm int) uint16 {
	switch op {
	case OpADD, OpSUB, OpAND, OpOR, OpXOR:
		return uint16(op<<12 | rd<<9 | rs1<<6 | rs2<<3)
	case OpADDI, OpLW, OpSW, OpLI:
		return uint16(op<<12 | rd<<9 | rs1<<6 | imm&0x3f)
	case OpBEQZ:
		return uint16(op<<12 | rs1<<6 | imm&0x3f)
	case OpJMP:
		return uint16(op<<12 | imm&0x1ff)
	}
	return 0
}

// PCBits is the program counter width; the instruction ROM holds 1<<PCBits
// words.
const PCBits = 6

// BuildDLX generates the synchronous gate-level DLX with the given program
// in its instruction ROM. Ports: clk, rstn, and a 16-bit observation bus
// "watch" showing register R7.
func BuildDLX(lib *netlist.Library, program []uint16) (_ *netlist.Design, err error) {
	defer recoverBuildErr("DLX", &err)
	if len(program) > 1<<PCBits {
		return nil, fmt.Errorf("designs: program of %d words exceeds ROM depth %d", len(program), 1<<PCBits)
	}
	b := NewBuilder("dlx", lib)
	m := b.M
	clk := m.AddPort("clk", netlist.In).Net
	rstn := m.AddPort("rstn", netlist.In).Net
	watch := b.OutputBus("watch", 16)

	// ---------------- IF ----------------
	pcD := b.NewBus("pc_d", PCBits) // driven by the next-PC mux below
	pc := b.RegBank("pc_r", pcD, clk, rstn, "pc_q")
	pc1 := b.Inc(pc)
	words := make([]uint64, len(program))
	for i, w := range program {
		words[i] = uint64(w)
	}
	instr := b.NewBus("if_instr", 16)
	b.Rom(pc, words, 16, instr)

	// Branch redirect comes from the EX/MEM register (resolved in EX).
	btakeQ := m.AddNet("exmem_btake_q")
	btgtQ := b.NewBus("exmem_btgt_q", PCBits)
	b.MuxBus(pc1, btgtQ, btakeQ, pcD)
	ifidInstr := b.RegBank("ifid_instr_r", instr, clk, rstn, "ifid_instr_q")
	ifidPC1 := b.RegBank("ifid_pc1_r", pc1, clk, rstn, "ifid_pc1_q")

	// ---------------- ID ----------------
	op := Bus{ifidInstr[12], ifidInstr[13], ifidInstr[14], ifidInstr[15]}
	rd := Bus{ifidInstr[9], ifidInstr[10], ifidInstr[11]}
	rs1 := Bus{ifidInstr[6], ifidInstr[7], ifidInstr[8]}
	rs2 := Bus{ifidInstr[3], ifidInstr[4], ifidInstr[5]}

	// Register file storage lives with the MEM (writeback) cloud; its read
	// muxes belong to ID. Declare the Q buses now, build the write side in
	// MEM below.
	regQ := make([]Bus, 8)
	for r := 0; r < 8; r++ {
		regQ[r] = b.NewBus(fmt.Sprintf("rf%d_q", r), 16)
	}
	readPort := func(addr Bus) Bus { return b.MuxTree(regQ, addr) }
	aVal := readPort(rs1)
	bVal := readPort(rs2)
	sVal := readPort(rd) // store data for SW

	// Sign-extend imm6; JMP uses a 9-bit offset.
	imm := make(Bus, 16)
	isJmp := b.EqConst(op, OpJMP)
	for i := 0; i < 6; i++ {
		imm[i] = ifidInstr[i]
	}
	// Bits 6..8: instruction bits for JMP, sign bit otherwise.
	for i := 6; i < 9; i++ {
		imm[i] = b.Mux(ifidInstr[5], ifidInstr[i], isJmp)
	}
	signTop := b.Mux(ifidInstr[5], ifidInstr[8], isJmp)
	for i := 9; i < 16; i++ {
		imm[i] = signTop
	}

	idexOp := b.RegBank("idex_op_r", op, clk, rstn, "idex_op_q")
	idexRd := b.RegBank("idex_rd_r", rd, clk, rstn, "idex_rd_q")
	idexA := b.RegBank("idex_a_r", aVal, clk, rstn, "idex_a_q")
	idexB := b.RegBank("idex_b_r", bVal, clk, rstn, "idex_b_q")
	idexImm := b.RegBank("idex_imm_r", imm, clk, rstn, "idex_imm_q")
	idexS := b.RegBank("idex_s_r", sVal, clk, rstn, "idex_s_q")
	idexPC1 := b.RegBank("idex_pc1_r", ifidPC1, clk, rstn, "idex_pc1_q")

	// ---------------- EX ----------------
	exIsImm := b.OrTree([]*netlist.Net{
		b.EqConst(idexOp, OpADDI), b.EqConst(idexOp, OpLW), b.EqConst(idexOp, OpSW),
	})
	opB := b.MuxBus(idexB, idexImm, exIsImm, nil)
	addOut := b.Adder(idexA, opB, nil)
	subOut := b.Sub(idexA, idexB)
	andOut := b.BitwiseOp("AND2X1", idexA, idexB)
	orOut := b.BitwiseOp("OR2X1", idexA, idexB)
	xorOut := b.BitwiseOp("XOR2X1", idexA, idexB)

	isSub := b.EqConst(idexOp, OpSUB)
	isAnd := b.EqConst(idexOp, OpAND)
	isOr := b.EqConst(idexOp, OpOR)
	isXor := b.EqConst(idexOp, OpXOR)
	isLi := b.EqConst(idexOp, OpLI)
	result := addOut
	result = b.MuxBus(result, subOut, isSub, nil)
	result = b.MuxBus(result, andOut, isAnd, nil)
	result = b.MuxBus(result, orOut, isOr, nil)
	result = b.MuxBus(result, xorOut, isXor, nil)
	result = b.MuxBus(result, idexImm, isLi, nil)

	// Branch resolution.
	aZero := b.IsZero(idexA)
	isBeqz := b.EqConst(idexOp, OpBEQZ)
	exIsJmp := b.EqConst(idexOp, OpJMP)
	btake := b.Or(b.And(isBeqz, aZero), exIsJmp)
	btgt := b.Adder(idexPC1, Bus(idexImm[:PCBits]), nil)

	exmemOp := b.RegBank("exmem_op_r", idexOp, clk, rstn, "exmem_op_q")
	exmemRd := b.RegBank("exmem_rd_r", idexRd, clk, rstn, "exmem_rd_q")
	exmemRes := b.RegBank("exmem_res_r", result, clk, rstn, "exmem_res_q")
	exmemS := b.RegBank("exmem_s_r", idexS, clk, rstn, "exmem_s_q")
	// The branch registers declared in IF get their D logic here.
	connectReg := func(name string, d Bus, q Bus) {
		for i := range d {
			ff := m.AddInst(fmt.Sprintf("%s[%d]", name, i), lib.MustCell("DFFRQX1"))
			m.MustConnect(ff, "D", d[i])
			m.MustConnect(ff, "CK", clk)
			m.MustConnect(ff, "RN", rstn)
			m.MustConnect(ff, "Q", q[i])
		}
	}
	connectReg("exmem_btake_r", Bus{btake}, Bus{btakeQ})
	connectReg("exmem_btgt_r", btgt, btgtQ)

	// ---------------- MEM (+WB) ----------------
	memAddr := Bus(exmemRes[:4])
	memIsSW := b.EqConst(exmemOp, OpSW)
	memIsLW := b.EqConst(exmemOp, OpLW)
	wsel := b.Decoder(memAddr)
	dmemQ := make([]Bus, 16)
	for w := 0; w < 16; w++ {
		we := b.And(memIsSW, wsel[w])
		q := b.NewBus(fmt.Sprintf("dm%d_q", w), 16)
		d := b.MuxBus(q, exmemS, we, nil)
		for i := 0; i < 16; i++ {
			ff := m.AddInst(fmt.Sprintf("dm%d_r[%d]", w, i), lib.MustCell("DFFRQX1"))
			m.MustConnect(ff, "D", d[i])
			m.MustConnect(ff, "CK", clk)
			m.MustConnect(ff, "RN", rstn)
			m.MustConnect(ff, "Q", q[i])
		}
		dmemQ[w] = q
	}
	rdata := b.MuxTree(dmemQ, memAddr)
	wbVal := b.MuxBus(exmemRes, rdata, memIsLW, nil)
	// Write enable: every op that produces a register result.
	wen := b.OrTree([]*netlist.Net{
		b.EqConst(exmemOp, OpADD), b.EqConst(exmemOp, OpSUB),
		b.EqConst(exmemOp, OpAND), b.EqConst(exmemOp, OpOR),
		b.EqConst(exmemOp, OpXOR), b.EqConst(exmemOp, OpADDI),
		memIsLW, b.EqConst(exmemOp, OpLI),
	})
	rsel := b.Decoder(exmemRd)
	for r := 0; r < 8; r++ {
		we := b.And(wen, rsel[r])
		d := b.MuxBus(regQ[r], wbVal, we, nil)
		for i := 0; i < 16; i++ {
			ff := m.AddInst(fmt.Sprintf("rf%d_r[%d]", r, i), lib.MustCell("DFFRQX1"))
			m.MustConnect(ff, "D", d[i])
			m.MustConnect(ff, "CK", clk)
			m.MustConnect(ff, "RN", rstn)
			m.MustConnect(ff, "Q", regQ[r][i])
		}
	}
	// Observe R7.
	for i := 0; i < 16; i++ {
		b.Gate("BUFX1", regQ[7][i], watch[i])
	}

	// Stage D-net bus naming: rename each stage's register data nets into a
	// per-stage bus so the grouping bus heuristic (Fig 3.6) binds the
	// stage's disconnected logic cones into one region, the way synthesized
	// netlists keep register-input buses named.
	stageOf := func(inst string) string {
		switch {
		case hasPrefix(inst, "pc_r") || hasPrefix(inst, "ifid_"):
			return "if"
		case hasPrefix(inst, "idex_"):
			return "id"
		case hasPrefix(inst, "exmem_"):
			return "ex"
		case hasPrefix(inst, "rf") || hasPrefix(inst, "dm"):
			return "mem"
		}
		return ""
	}
	idx := map[string]int{}
	renamed := map[*netlist.Net]bool{}
	for _, in := range m.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindFF {
			continue
		}
		stage := stageOf(in.Name)
		if stage == "" {
			continue
		}
		d := in.Conn("D")
		if d == nil || renamed[d] || d.Driver.Inst == nil || d.Driver.Inst.Cell.Seq != nil {
			continue
		}
		renamed[d] = true
		_ = m.RenameNet(d, fmt.Sprintf("%s_d[%d]", stage, idx[stage]))
		idx[stage]++
	}

	d := &netlist.Design{Name: "dlx", Top: m, Modules: map[string]*netlist.Module{"dlx": m}, Lib: lib}
	if errs := m.Check(); len(errs) > 0 {
		return nil, fmt.Errorf("designs: DLX netlist broken: %v", errs[0])
	}
	return d, nil
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
