package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestRepoClean runs the checker over the actual repository; the conventions
// it enforces must hold on every commit.
func TestRepoClean(t *testing.T) {
	var sb strings.Builder
	n, err := run("../..", &sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("repolint reported %d finding(s) on the tree:\n%s", n, sb.String())
	}
}

// check parses src as the file named rel and returns the rule IDs fired.
func check(t *testing.T, rel, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, rel, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rules []string
	for _, fd := range checkFile(fset, rel, f) {
		rules = append(rules, fd.rule)
	}
	return rules
}

func TestPanicOutsideAllowlistFires(t *testing.T) {
	src := `package foo
func Bad() { panic("boom") }
`
	got := check(t, "internal/foo/foo.go", src)
	if len(got) != 1 || got[0] != "RL-PANIC" {
		t.Fatalf("want [RL-PANIC], got %v", got)
	}
}

func TestAllowlistedPanicAccepted(t *testing.T) {
	src := `package netlist
func (m *Module) MustConnect(a, b int) { panic("bad connect") }
`
	if got := check(t, "internal/netlist/design.go", src); len(got) != 0 {
		t.Fatalf("allowlisted panic flagged: %v", got)
	}
}

func TestStageArgRuleFires(t *testing.T) {
	src := `package core
func f() error { return flowErr("import", "d", "", nil) }
func g() error { return flowErr(StageImport, "d", "", nil) }
func h(stage string) error { return flowErr(stage, "d", "", nil) }
`
	got := check(t, "internal/core/other.go", src)
	if len(got) != 1 || got[0] != "RL-STAGE" {
		t.Fatalf("want exactly one RL-STAGE for the string literal, got %v", got)
	}
}

func TestFlowReturnRuleFires(t *testing.T) {
	src := `package core
import "fmt"
func Desynchronize() (int, error) {
	if true {
		return 0, fmt.Errorf("bare")
	}
	f := func() error { return fmt.Errorf("nested bare") }
	_ = f
	return 1, nil
}
`
	got := check(t, "internal/core/flow.go", src)
	var flow int
	for _, r := range got {
		if r == "RL-FLOW" {
			flow++
		}
	}
	if flow != 2 {
		t.Fatalf("want 2 RL-FLOW findings (outer + nested literal), got %v", got)
	}
}

func TestFlowReturnRuleScopedToDriver(t *testing.T) {
	src := `package core
import "fmt"
func ecoMeasure() error { return fmt.Errorf("bare but legal here") }
`
	if got := check(t, "internal/core/eco.go", src); len(got) != 0 {
		t.Fatalf("RL-FLOW leaked outside flow.go: %v", got)
	}
}

func TestBackendRuleFiresOnCoreImport(t *testing.T) {
	src := `package core
import "desync/internal/twophase"
var _ = twophase.RstPortName
`
	got := check(t, "internal/core/backend.go", src)
	if len(got) != 1 || got[0] != "RL-BACKEND" {
		t.Fatalf("want [RL-BACKEND] for core importing a backend, got %v", got)
	}
}

func TestBackendRuleFiresOnFlowErrorMint(t *testing.T) {
	src := `package twophase
import "desync/internal/core"
func (backend) Size() error {
	return &core.FlowError{Stage: core.StageSize}
}
`
	got := check(t, "internal/twophase/backend.go", src)
	if len(got) != 1 || got[0] != "RL-BACKEND" {
		t.Fatalf("want [RL-BACKEND] for a backend minting a FlowError, got %v", got)
	}
}

func TestBackendRuleAllowsInvertedImports(t *testing.T) {
	// A backend importing core (registration, options, shared substitution)
	// is the designed direction; so is a cmd driver importing both.
	src := `package twophase
import "desync/internal/core"
func init() { core.RegisterBackend(nil) }
`
	if got := check(t, "internal/twophase/backend.go", src); len(got) != 0 {
		t.Fatalf("backend importing core flagged: %v", got)
	}
	cmd := `package main
import (
	"desync/internal/core"
	"desync/internal/twophase"
)
var _ = core.BackendTwoPhase
var _ = twophase.RstPortName
`
	if got := check(t, "cmd/drdesync/gates.go", cmd); len(got) != 0 {
		t.Fatalf("cmd driver importing a backend flagged: %v", got)
	}
}

func TestBackendRuleMintAllowlist(t *testing.T) {
	src := `package main
import "desync/internal/core"
func staticGate() error {
	return &core.FlowError{Stage: core.StageStatic}
}
func otherGate() error {
	return &core.FlowError{Stage: core.StageStatic}
}
`
	got := check(t, "cmd/drdesync/static.go", src)
	if len(got) != 1 || got[0] != "RL-BACKEND" {
		t.Fatalf("want [RL-BACKEND] only for the unaudited mint, got %v", got)
	}
}

func TestCtrlnetRuleFires(t *testing.T) {
	src := `package faults
import "fmt"
func names(g int) []string {
	n := fmt.Sprintf("G%d_%s", g, "mri")
	r, _ := handshake.ControlRegion("G1_Mctrl/g")
	_ = r
	return []string{n}
}
`
	got := check(t, "internal/faults/campaign.go", src)
	var ctrl int
	for _, r := range got {
		if r == "RL-CTRLNET" {
			ctrl++
		}
	}
	if ctrl != 2 {
		t.Fatalf("want 2 RL-CTRLNET findings (format string + ControlRegion call), got %v", got)
	}
}

func TestCtrlnetRuleCoversCmd(t *testing.T) {
	src := `package main
func net(g int) string { return fmt.Sprintf("G%d_mri", g) }
`
	got := check(t, "cmd/drdesync/main.go", src)
	if len(got) != 1 || got[0] != "RL-CTRLNET" {
		t.Fatalf("want [RL-CTRLNET] for a G%%d_ literal under cmd/, got %v", got)
	}
}

func TestCtrlnetRuleExemptsOwners(t *testing.T) {
	src := `package ctrlnet
func Name(g int, suffix string) string { return fmt.Sprintf("G%d_%s", g, suffix) }
`
	if got := check(t, "internal/ctrlnet/names.go", src); len(got) != 0 {
		t.Fatalf("RL-CTRLNET fired inside its owner package: %v", got)
	}
	src2 := `package handshake
func ControlRegion(name string) (int, bool) { _ = "G%d_"; return 0, false }
`
	if got := check(t, "internal/handshake/handshake.go", src2); len(got) != 0 {
		t.Fatalf("RL-CTRLNET fired inside internal/handshake: %v", got)
	}
}

func TestOptsRuleFires(t *testing.T) {
	src := `package foo
func Tune(cycles, workers int, margin float64, verbose bool, name string) {}
`
	got := check(t, "internal/foo/foo.go", src)
	if len(got) != 1 || got[0] != "RL-OPTS" {
		t.Fatalf("want [RL-OPTS] for five scalar parameters, got %v", got)
	}
}

func TestOptsRuleIgnoresNonScalars(t *testing.T) {
	// Pointers, structs, slices, funcs and contexts are not configuration
	// scalars; four scalars is the documented ceiling; unexported functions
	// are free to be as positional as they like.
	src := `package foo
import "context"
func Run(ctx context.Context, d *Design, opts Options, cycles, workers int, margin float64, verbose bool) {}
func internalHelper(a, b, c, d, e, f int) {}
`
	if got := check(t, "internal/foo/foo.go", src); len(got) != 0 {
		t.Fatalf("RL-OPTS overcounted: %v", got)
	}
}

func TestOptsRuleAllowlist(t *testing.T) {
	src := `package designs
func Encode(op, rd, rs1, rs2, imm int) uint16 { return 0 }
`
	if got := check(t, "internal/designs/dlx.go", src); len(got) != 0 {
		t.Fatalf("allowlisted assembler helper flagged: %v", got)
	}
	if got := check(t, "internal/other/dlx.go", src); len(got) != 1 || got[0] != "RL-OPTS" {
		t.Fatalf("allowlist must be path-specific, got %v", got)
	}
}

func TestRecoverOutsideAllowlistFires(t *testing.T) {
	// A recover inside a deferred closure is pinned to the top-level
	// function that defers it, so hiding one in a defer still fires.
	src := `package foo
func Swallow() {
	defer func() {
		if r := recover(); r != nil {
		}
	}()
}
`
	got := check(t, "internal/foo/foo.go", src)
	if len(got) != 1 || got[0] != "RL-RECOVER" {
		t.Fatalf("want [RL-RECOVER] for a recover outside the audited boundaries, got %v", got)
	}
}

func TestRecoverQuarantineBoundaryAccepted(t *testing.T) {
	src := `package sweep
func runQuarantined() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return nil
}
`
	if got := check(t, "internal/sweep/run.go", src); len(got) != 0 {
		t.Fatalf("quarantine boundary flagged: %v", got)
	}
	// The boundary is the named function in the named file, nothing wider.
	if got := check(t, "internal/sweep/other.go", src); len(got) != 1 || got[0] != "RL-RECOVER" {
		t.Fatalf("allowlist must be path-specific, got %v", got)
	}
}

func TestRecoverCmdBoundaryAccepted(t *testing.T) {
	src := `package main
func main() {
	defer func() { recover() }()
}
func helper() { defer func() { recover() }() }
`
	got := check(t, "cmd/drdesync/main.go", src)
	if len(got) != 1 || got[0] != "RL-RECOVER" {
		t.Fatalf("want exactly the helper's recover flagged (main is the boundary), got %v", got)
	}
}

// TestEquivPanicPolicy pins the formal engine to the no-panic policy: a
// panic introduced anywhere in internal/equiv is flagged, because the
// package has no allowlisted sites — and must not silently grow any, since
// a panic mid-exploration would take down a drdesync -equiv run instead of
// producing a finding.
func TestEquivPanicPolicy(t *testing.T) {
	src := `package equiv
func (m *Model) explode() { panic("unaudited") }
`
	got := check(t, "internal/equiv/explore.go", src)
	if len(got) != 1 || got[0] != "RL-PANIC" {
		t.Fatalf("want [RL-PANIC] for a panic in internal/equiv, got %v", got)
	}
	for key := range panicAllowlist {
		if strings.HasPrefix(key, "internal/equiv/") {
			t.Fatalf("internal/equiv must stay panic-free, but %q is allowlisted", key)
		}
	}
}

func TestMapOrderRuleFires(t *testing.T) {
	// Appending in map-iteration order without a sort is the footgun.
	src := `package foo
func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	got := check(t, "internal/foo/foo.go", src)
	if len(got) != 1 || got[0] != "RL-MAPORDER" {
		t.Fatalf("want [RL-MAPORDER], got %v", got)
	}
}

func TestMapOrderSortNeutralizes(t *testing.T) {
	// Collect-then-sort is the canonical deterministic idiom and must pass.
	src := `package foo
import "sort"
func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`
	if got := check(t, "internal/foo/foo.go", src); len(got) != 0 {
		t.Fatalf("sorted collection flagged: %v", got)
	}
}

func TestMapOrderIgnoresOrderFreeBodies(t *testing.T) {
	// Accumulation (sums, maxima, map writes, deletes) is commutative;
	// only bodies that emit elements in visit order are flagged.
	src := `package foo
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
func Invert(m map[string]int) map[int]string {
	inv := map[int]string{}
	for k, v := range m {
		inv[v] = k
	}
	return inv
}
`
	if got := check(t, "internal/foo/foo.go", src); len(got) != 0 {
		t.Fatalf("order-free map loops flagged: %v", got)
	}
}

func TestMapOrderSeesLocalDeclarations(t *testing.T) {
	// make(map...), map literals and var declarations all mark the
	// identifier; printing in iteration order fires on any of them.
	src := `package foo
import "fmt"
func Dump() {
	seen := make(map[int]bool)
	for k := range seen {
		fmt.Println(k)
	}
	var idx map[string]int
	for k := range idx {
		fmt.Println(k)
	}
}
`
	got := check(t, "internal/foo/foo.go", src)
	var n int
	for _, r := range got {
		if r == "RL-MAPORDER" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("want 2 RL-MAPORDER findings (make + var decl), got %v", got)
	}
}

func TestMapOrderAllowlist(t *testing.T) {
	src := `package equiv
func (m *Model) closure(set map[string]int) {
	var queue []int
	for _, st := range set {
		queue = append(queue, st)
	}
	_ = queue
}
`
	if got := check(t, "internal/equiv/xval.go", src); len(got) != 0 {
		t.Fatalf("allowlisted closure seeding flagged: %v", got)
	}
	if got := check(t, "internal/equiv/other.go", src); len(got) != 1 || got[0] != "RL-MAPORDER" {
		t.Fatalf("allowlist must be path-specific, got %v", got)
	}
}

func TestHTTPCtxRuleFires(t *testing.T) {
	src := `package web
import (
	"context"
	"net/http"
)
func handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	_ = ctx
}
`
	got := check(t, "internal/web/web.go", src)
	if len(got) != 1 || got[0] != "RL-HTTPCTX" {
		t.Fatalf("want [RL-HTTPCTX] for context.Background in a handler, got %v", got)
	}
}

func TestHTTPCtxCatchesTODOInHandlerClosure(t *testing.T) {
	src := `package web
import (
	"context"
	"net/http"
)
func handle(w http.ResponseWriter, r *http.Request) {
	go func() {
		ctx := context.TODO()
		_ = ctx
	}()
}
`
	got := check(t, "internal/web/web.go", src)
	if len(got) != 1 || got[0] != "RL-HTTPCTX" {
		t.Fatalf("want [RL-HTTPCTX] for context.TODO in a handler goroutine, got %v", got)
	}
}

func TestHTTPCtxAcceptsRequestContext(t *testing.T) {
	src := `package web
import (
	"context"
	"net/http"
)
func handle(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 0)
	defer cancel()
	_ = ctx
}
`
	if got := check(t, "internal/web/web.go", src); len(got) != 0 {
		t.Fatalf("r.Context() derivation flagged: %v", got)
	}
}

func TestHTTPCtxIgnoresNonHandlers(t *testing.T) {
	src := `package web
import "context"
func Serve() {
	ctx := context.Background()
	_ = ctx
}
`
	if got := check(t, "internal/web/web.go", src); len(got) != 0 {
		t.Fatalf("non-handler Background flagged: %v", got)
	}
}

func TestNetIDRuleFires(t *testing.T) {
	src := `package foo
import "desync/internal/netlist"
type index struct{ nets map[string]*netlist.Net }
func build(m *netlist.Module) map[string]*netlist.Inst {
	byName := map[string]*netlist.Inst{}
	return byName
}
`
	got := check(t, "internal/foo/foo.go", src)
	if len(got) != 3 {
		t.Fatalf("want 3 RL-NETID findings (field, result, literal), got %v", got)
	}
	for _, r := range got {
		if r != "RL-NETID" {
			t.Fatalf("want RL-NETID, got %v", got)
		}
	}
}

func TestNetIDRuleAllowsOtherMaps(t *testing.T) {
	src := `package foo
import "desync/internal/netlist"
func ok(m *netlist.Module) {
	byID := map[int]*netlist.Net{}
	names := map[string]string{}
	stats := map[string]*netlist.Module{}
	_, _, _ = byID, names, stats
}
`
	if got := check(t, "internal/foo/foo.go", src); len(got) != 0 {
		t.Fatalf("non-name-index maps flagged: %v", got)
	}
}

func TestNetIDRuleExemptsOwnerAndAllowlist(t *testing.T) {
	owner := `package netlist
type Module struct{ byName map[string]*Net }
`
	if got := check(t, "internal/netlist/design.go", owner); len(got) != 0 {
		t.Fatalf("owner package flagged: %v", got)
	}
	allowed := `package core
import "desync/internal/netlist"
func substituteOne() { conns := map[string]*netlist.Net{}; _ = conns }
`
	if got := check(t, "internal/core/ffsub.go", allowed); len(got) != 0 {
		t.Fatalf("allowlisted site flagged: %v", got)
	}
}
