package mga

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"desync/internal/lint"
)

// ring builds the minimal healthy two-transition graph: a forward place
// carrying the schedule token and a return place closing the cycle.
func ring(fwdTok, backTok int, fwdD, backD float64) *Graph {
	g := &Graph{Design: "ring"}
	a := g.AddTransition("A", TransMaster, 1)
	b := g.AddTransition("B", TransSlave, 1)
	g.AddPlace(Place{Src: a, Dst: b, Tokens: fwdTok, Delay: fwdD, Name: "fwd", Channel: "A>B"})
	g.AddPlace(Place{Src: b, Dst: a, Tokens: backTok, Delay: backD, Name: "back"})
	return g
}

func findingWith(fs []lint.Finding, rule, substr string) bool {
	for _, f := range fs {
		if f.Rule == rule && strings.Contains(f.Msg, substr) {
			return true
		}
	}
	return false
}

func TestLiveRingPeriod(t *testing.T) {
	r := ring(1, 0, 2, 3).Analyze()
	if !r.Live || !r.Safe {
		t.Fatalf("healthy ring: live=%v safe=%v, want true/true", r.Live, r.Safe)
	}
	if r.MaxBound != 1 {
		t.Fatalf("MaxBound = %d, want 1", r.MaxBound)
	}
	// One token on a 5 ns cycle: the period is the full cycle delay.
	if math.Abs(r.PeriodNs-5) > 1e-12 {
		t.Fatalf("PeriodNs = %v, want 5", r.PeriodNs)
	}
	if len(r.CriticalCycle) != 2 {
		t.Fatalf("critical cycle %v, want both places", r.CriticalCycle)
	}
	if r.Bottleneck != "back" {
		t.Fatalf("bottleneck %q, want the slowest place %q", r.Bottleneck, "back")
	}
}

func TestTokenFreeCycleRejected(t *testing.T) {
	r := ring(0, 0, 2, 3).Analyze()
	if r.Live {
		t.Fatal("token-free cycle accepted as live")
	}
	if !findingWith(r.Findings, RuleLive, "token-free cycle") {
		t.Fatalf("no token-free-cycle finding in %v", r.Findings)
	}
	// Liveness failed: the throughput pass must step aside, not divide by
	// a zero token count.
	if r.PeriodNs != 0 {
		t.Fatalf("PeriodNs = %v on a non-live graph, want 0", r.PeriodNs)
	}
	if !findingWith(r.Findings, RuleCycle, "skipped") {
		t.Fatal("missing the throughput-skipped note")
	}
}

func TestSelfLoopTokenFreeCycle(t *testing.T) {
	// A single-transition self-loop is the smallest cycle: Tarjan's
	// singleton SCCs must still notice the self-edge.
	g := &Graph{Design: "selfloop"}
	a := g.AddTransition("A", TransMaster, 1)
	g.AddPlace(Place{Src: a, Dst: a, Tokens: 0, Delay: 1, Name: "self"})
	r := g.Analyze()
	if r.Live {
		t.Fatal("token-free self-loop accepted as live")
	}
	if !findingWith(r.Findings, RuleLive, "token-free cycle") {
		t.Fatalf("no token-free-cycle finding in %v", r.Findings)
	}
}

func TestUnboundedPlace(t *testing.T) {
	// A forward place with no return path: the producer free-runs and the
	// place accumulates tokens without bound (a severed acknowledge).
	g := &Graph{Design: "unbounded"}
	a := g.AddTransition("A", TransMaster, 1)
	b := g.AddTransition("B", TransSlave, 1)
	g.AddPlace(Place{Src: a, Dst: b, Tokens: 1, Delay: 2, Name: "fwd", Channel: "A>B"})
	g.AddPlace(Place{Src: a, Dst: a, Tokens: 1, Delay: 1, Name: "spin"}) // keeps A firing
	r := g.Analyze()
	if r.Safe {
		t.Fatal("unbounded place accepted as safe")
	}
	if !findingWith(r.Findings, RuleSafe, "unbounded") {
		t.Fatalf("no unbounded finding in %v", r.Findings)
	}
}

func TestOverflowBound(t *testing.T) {
	// Two tokens on a two-place cycle: each place can see both at once,
	// overflowing a single-rail channel.
	r := ring(1, 1, 2, 2).Analyze()
	if !r.Live {
		t.Fatal("double-token ring should still be live")
	}
	if r.Safe {
		t.Fatal("double-token ring accepted as safe")
	}
	if r.MaxBound != 2 {
		t.Fatalf("MaxBound = %d, want 2", r.MaxBound)
	}
	if !findingWith(r.Findings, RuleSafe, "can hold 2 tokens") {
		t.Fatalf("no overflow finding in %v", r.Findings)
	}
	// The cycle ratio divides by both tokens: 4 ns / 2 = 2 ns.
	if math.Abs(r.PeriodNs-2) > 1e-12 {
		t.Fatalf("PeriodNs = %v, want 2", r.PeriodNs)
	}
}

func TestKarpPicksWorstCycle(t *testing.T) {
	// Two cycles through a shared transition: ratio 10/1 beats 8/2. The
	// maximum cycle ratio — not the heaviest total delay — must win.
	g := &Graph{Design: "tworings"}
	a := g.AddTransition("A", TransMaster, 1)
	b := g.AddTransition("B", TransSlave, 1)
	c := g.AddTransition("C", TransSlave, 2)
	g.AddPlace(Place{Src: a, Dst: b, Tokens: 1, Delay: 10, Name: "slow", Channel: "A>B"})
	g.AddPlace(Place{Src: b, Dst: a, Tokens: 0, Delay: 0, Name: "slowback"})
	g.AddPlace(Place{Src: a, Dst: c, Tokens: 1, Delay: 4, Name: "fast", Channel: "A>C"})
	g.AddPlace(Place{Src: c, Dst: a, Tokens: 1, Delay: 4, Name: "fastback"})
	r := g.Analyze()
	if !r.Live {
		t.Fatal("graph should be live")
	}
	if math.Abs(r.PeriodNs-10) > 1e-12 {
		t.Fatalf("PeriodNs = %v, want 10", r.PeriodNs)
	}
	if r.Bottleneck != "A>B" {
		t.Fatalf("bottleneck %q, want A>B", r.Bottleneck)
	}
	found := false
	for _, n := range r.CriticalCycle {
		if n == "slow" {
			found = true
		}
	}
	if !found {
		t.Fatalf("critical cycle %v does not include the slow place", r.CriticalCycle)
	}
}

func TestMultipleSCCsEachChecked(t *testing.T) {
	// Two disconnected rings: one healthy, one token-free. The liveness
	// check must inspect every SCC, not stop at the first.
	g := &Graph{Design: "twosccs"}
	a := g.AddTransition("A", TransMaster, 1)
	b := g.AddTransition("B", TransSlave, 1)
	c := g.AddTransition("C", TransMaster, 2)
	d := g.AddTransition("D", TransSlave, 2)
	g.AddPlace(Place{Src: a, Dst: b, Tokens: 1, Delay: 1, Name: "ok-fwd"})
	g.AddPlace(Place{Src: b, Dst: a, Tokens: 0, Delay: 1, Name: "ok-back"})
	g.AddPlace(Place{Src: c, Dst: d, Tokens: 0, Delay: 1, Name: "bad-fwd"})
	g.AddPlace(Place{Src: d, Dst: c, Tokens: 0, Delay: 1, Name: "bad-back"})
	r := g.Analyze()
	if r.Live {
		t.Fatal("graph with one token-free SCC accepted as live")
	}
	if !findingWith(r.Findings, RuleLive, "bad-fwd") && !findingWith(r.Findings, RuleLive, "bad-back") {
		t.Fatalf("token-free finding does not name the broken ring: %v", r.Findings)
	}
}

func TestReportDeterminism(t *testing.T) {
	render := func() (string, string) {
		r := ring(1, 1, 2, 2).Analyze()
		var txt, js bytes.Buffer
		r.WriteText(&txt)
		if err := r.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	t1, j1 := render()
	t2, j2 := render()
	if t1 != t2 {
		t.Fatalf("text report not byte-identical:\n%s\nvs\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Fatalf("JSON report not byte-identical:\n%s\nvs\n%s", j1, j2)
	}
}

func TestStateEstimate(t *testing.T) {
	if got := StateEstimate(4); got != 4096 {
		t.Fatalf("StateEstimate(4) = %d, want 4096 (8^4)", got)
	}
	if got := StateEstimate(40); got != 1<<62 {
		t.Fatalf("StateEstimate(40) = %d, want saturation at 1<<62", got)
	}
	if got := StateEstimate(0); got != 1 {
		t.Fatalf("StateEstimate(0) = %d, want 1", got)
	}
}

func TestLintReportFoldsFindings(t *testing.T) {
	r := ring(0, 0, 1, 1).Analyze()
	extra := []lint.Finding{{Rule: "EQ-MODEL", Severity: lint.Warning, Msg: "stub"}}
	lr := r.LintReport(extra)
	if lr.Errors() == 0 {
		t.Fatal("lint report lost the liveness error")
	}
	if len(lr.ByRule("EQ-MODEL")) != 1 {
		t.Fatal("lint report lost the extra model finding")
	}
}
