package equiv

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
)

// jsonOf renders a result the way drequiv -json does, so byte equality here
// is byte equality of the CLI report.
func jsonOf(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExploreParallelDeterministic is the determinism contract of the
// parallel engine: the DLX exploration at -j 1, -j 4 and -j GOMAXPROCS
// must visit exactly the same reduced state space (pinned at dlxStates)
// and produce byte-identical JSON reports.
func TestExploreParallelDeterministic(t *testing.T) {
	m, err := FromModule(dlxModule(t))
	if err != nil {
		t.Fatal(err)
	}
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	var base []byte
	for _, j := range workers {
		res := mustExplore(t, m, ExploreOptions{Parallelism: j})
		if res.States != dlxStates {
			t.Fatalf("-j %d: %d markings, pinned %d", j, res.States, dlxStates)
		}
		if !res.Clean() {
			t.Fatalf("-j %d: not clean: %+v", j, res.Violation)
		}
		got := jsonOf(t, res)
		if base == nil {
			base = got
		} else if !bytes.Equal(got, base) {
			t.Fatalf("-j %d report differs from -j %d:\n%s\n---\n%s", j, workers[0], got, base)
		}
	}
}

// TestExploreParallelCounterexampleIdentical pins the other half of the
// contract: on a broken network the parallel search must reconstruct the
// exact same counterexample — same violated rule, same firing sequence,
// same enabling marking — as the serial one.
func TestExploreParallelCounterexampleIdentical(t *testing.T) {
	mod := dlxModule(t)
	ai := mod.Inst("G2_Mctrl/ai")
	if ai == nil {
		t.Fatal("G2_Mctrl/ai not found")
	}
	mod.Disconnect(ai, "Z")
	m, err := FromModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	serial := mustExplore(t, m, ExploreOptions{Parallelism: 1})
	if serial.Violation == nil {
		t.Fatal("serial search missed the cut acknowledge")
	}
	for _, j := range []int{2, 4} {
		par := mustExplore(t, m, ExploreOptions{Parallelism: j})
		if par.States != serial.States {
			t.Fatalf("-j %d explored %d states, serial %d", j, par.States, serial.States)
		}
		if !reflect.DeepEqual(par.Violation, serial.Violation) {
			t.Fatalf("-j %d counterexample differs:\n%+v\n---\n%+v", j, par.Violation, serial.Violation)
		}
	}
}

// TestExploreNoReduceParallelDeterministic covers the full-interleaving
// mode (drequiv -no-reduce) with a -max-states truncation: the truncation
// point and flags must not move with the worker count.
func TestExploreNoReduceParallelDeterministic(t *testing.T) {
	m, err := FromModule(dlxModule(t))
	if err != nil {
		t.Fatal(err)
	}
	serial := mustExplore(t, m, ExploreOptions{NoReduce: true, MaxStates: 20_000, Parallelism: 1})
	if !serial.Truncated {
		t.Fatalf("expected a truncated full search, got %d states", serial.States)
	}
	par := mustExplore(t, m, ExploreOptions{NoReduce: true, MaxStates: 20_000, Parallelism: 4})
	if !bytes.Equal(jsonOf(t, par), jsonOf(t, serial)) {
		t.Fatal("-no-reduce -max-states report depends on the worker count")
	}
}

// TestExploreCancellation: a canceled context aborts the search with
// context.Canceled instead of returning a partial result.
func TestExploreCancellation(t *testing.T) {
	m, err := FromModule(dlxModule(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := m.Explore(ctx, ExploreOptions{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("canceled exploration returned a result: %+v", res)
	}
}

// TestCrossValidateParallelDeterministic: the xval report — accepted event
// count, seed, traces — is identical at any worker count, because each
// trace derives its delay factors from the seed alone.
func TestCrossValidateParallelDeterministic(t *testing.T) {
	mod := dlxModule(t)
	m, err := FromModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := m.CrossValidate(context.Background(), mod, XValConfig{Traces: 3, Seed: 7, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := m.CrossValidate(context.Background(), mod, XValConfig{Traces: 3, Seed: 7, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("xval result depends on the worker count:\n%+v\n---\n%+v", serial, par)
	}
	if serial.Events == 0 || serial.Divergence != nil {
		t.Fatalf("xval did not accept the clean DLX: %+v", serial)
	}
}

// TestCrossValidateCancellation: a canceled context aborts the trace fan-out.
func TestCrossValidateCancellation(t *testing.T) {
	mod := dlxModule(t)
	m, err := FromModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.CrossValidate(ctx, mod, XValConfig{Traces: 3, Seed: 7, Parallelism: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
