package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachDeterministicError(t *testing.T) {
	// Several tasks fail; the reported error must be the lowest-index one
	// at every worker count, even though completion order differs.
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(context.Background(), workers, 64, func(_ context.Context, i int) error {
				if i == 7 || i == 40 || i == 63 {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "task 7 failed" {
				t.Fatalf("workers=%d: got %v, want task 7 failed", workers, err)
			}
		}
	}
}

func TestForEachErrorCancelsSiblings(t *testing.T) {
	var started atomic.Int32
	err := ForEach(context.Background(), 2, 10_000, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
	// Cancellation is advisory per claim, so some tasks run after the
	// failure — but nowhere near all of them.
	if n := started.Load(); n == 10_000 {
		t.Fatalf("all %d tasks ran despite early error", n)
	}
}

func TestForEachParentCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForEach(ctx, workers, 10_000, func(ctx context.Context, i int) error {
			if ran.Add(1) == 10 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n == 10_000 {
			t.Fatalf("workers=%d: cancellation not observed", workers)
		}
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i
	}
	var want []int
	for _, workers := range []int{1, 2, 4, 9} {
		got, err := Map(context.Background(), workers, items, func(_ context.Context, i, item int) (int, error) {
			return item*item + i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(context.Background(), 4, []int{0, 1, 2, 3}, func(_ context.Context, i, item int) (int, error) {
		if item >= 2 {
			return 0, fmt.Errorf("item %d", item)
		}
		return item, nil
	})
	if err == nil || err.Error() != "item 2" {
		t.Fatalf("got %v", err)
	}
}

func TestSlabs(t *testing.T) {
	cases := []struct {
		n, k int
		want [][2]int
	}{
		{0, 4, nil},
		{3, 1, [][2]int{{0, 3}}},
		{3, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{10, 3, [][2]int{{0, 4}, {4, 7}, {7, 10}}},
		{8, 4, [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
	}
	for _, c := range cases {
		got := Slabs(c.n, c.k)
		if len(got) != len(c.want) {
			t.Fatalf("Slabs(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Slabs(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			}
		}
	}
	// Any n,k: slabs tile [0,n) exactly.
	for n := 1; n < 50; n++ {
		for k := 1; k < 10; k++ {
			prev := 0
			for _, s := range Slabs(n, k) {
				if s[0] != prev || s[1] <= s[0] {
					t.Fatalf("Slabs(%d,%d): bad slab %v", n, k, s)
				}
				prev = s[1]
			}
			if prev != n {
				t.Fatalf("Slabs(%d,%d): covers up to %d", n, k, prev)
			}
		}
	}
}

func TestStripedInsertIfMin(t *testing.T) {
	// Concurrent workers race to claim keys with different priorities; the
	// minimum must win for every key, at any stripe/worker count.
	s := NewStriped[uint64](8)
	const keys, writers = 200, 8
	err := ForEach(context.Background(), writers, writers, func(_ context.Context, w int) error {
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("k%03d", k)
			prio := uint64(w*1000 + k)
			s.Update(key, func(old uint64, ok bool) (uint64, bool) {
				return prio, !ok || prio < old
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != keys {
		t.Fatalf("Len = %d, want %d", got, keys)
	}
	for k := 0; k < keys; k++ {
		v, ok := s.Get(fmt.Sprintf("k%03d", k))
		if !ok || v != uint64(k) {
			t.Fatalf("key %d: got %d,%v want %d", k, v, ok, k)
		}
	}
}

func TestStripedGetMissing(t *testing.T) {
	s := NewStriped[int](1)
	if v, ok := s.Get("nope"); ok || v != 0 {
		t.Fatalf("got %d,%v", v, ok)
	}
}
