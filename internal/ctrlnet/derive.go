package ctrlnet

import (
	"sort"
	"strings"
	"sync"

	"desync/internal/handshake"
	"desync/internal/netlist"
	"desync/internal/sta"
)

// Derive returns the control-network IR of a module, rebuilding it from
// netlist structure alone. Results are memoized against the module's
// mutation counter: repeated calls between structural changes (the common
// CLI pattern — flow, then lint, then equiv, then faults on one module)
// share a single derivation.
//
// Derivation has one documented side effect, inherited from the lint engine
// it replaces: on designs re-read from Verilog (where in-memory Group tags
// are gone) each cleanly colored latch gets its recovered region stored
// back into Inst.Group, so region-aware timing analyses keep working.
func Derive(m *netlist.Module) *Network {
	mu.Lock()
	defer mu.Unlock()
	for _, e := range cache {
		if e != nil && e.Module == m && e.seq == m.ModSeq() {
			return e
		}
	}
	n := derive(m)
	cache[cacheNext] = n
	cacheNext = (cacheNext + 1) % len(cache)
	return n
}

// DeriveFresh derives the IR bypassing the memo — for benchmarks and tests
// that measure or exercise the derivation itself.
func DeriveFresh(m *netlist.Module) *Network {
	mu.Lock()
	defer mu.Unlock()
	return derive(m)
}

// The memo is a small ring: flows touch one module at a time, tests a
// handful, and a bounded ring cannot pin arbitrarily many dead modules the
// way a grow-only map would. The mutex also serializes the derivation
// itself (it writes the recovered Group tags).
var (
	mu        sync.Mutex
	cache     [4]*Network
	cacheNext int
)

// deriver carries the memoized cone walks of one derivation.
type deriver struct {
	m *netlist.Module
	n *Network

	enableMemo map[*netlist.Net][]Root
	srcMemo    map[*netlist.Net]map[*netlist.Inst]bool
	// prefixIdx buckets instances by their name up to and including the
	// first '/'. Every ctree query prefix is slash-free plus a trailing
	// slash, so one pass over Insts answers all of them — scanning the whole
	// module per region made derivation quadratic past a few hundred regions.
	prefixIdx map[string][]*netlist.Inst
}

func derive(m *netlist.Module) *Network {
	n := &Network{
		Module:      m,
		Controllers: map[int]*Controller{},
		Channels:    map[int]*Channel{},
		latchOf:     map[*netlist.Inst]*Latch{},
		Preds:       map[int][]int{}, Succs: map[int][]int{},
		ReqTrees: map[int]*CTree{}, AckTrees: map[int]*CTree{},
		ReqDelays: map[int]*DelayChain{}, MSDelays: map[int]*DelayChain{},
		Completion: map[int]bool{},
		seq:        m.ModSeq(),
	}
	d := &deriver{
		m: m, n: n,
		enableMemo: map[*netlist.Net][]Root{},
		srcMemo:    map[*netlist.Net]map[*netlist.Inst]bool{},
	}

	// Regions are discovered by their master enable gates; the instance
	// names survive Verilog round trips. Flip-flops are collected for the
	// DS-FF rule; completion networks mark their region.
	regionSet := map[int]bool{}
	for _, in := range m.Insts {
		if in.Cell != nil && in.Cell.Kind == netlist.KindFF {
			n.FFs = append(n.FFs, in)
		}
		g, ok := Region(in.Name)
		if !ok {
			continue
		}
		if in.Name == CtrlGate(g, true, GateG) && !regionSet[g] {
			regionSet[g] = true
			n.Regions = append(n.Regions, g)
		}
		if strings.HasPrefix(in.Name, CdetPrefix(g)) {
			n.Completion[g] = true
		}
	}
	sort.Ints(n.Regions)
	if n.Empty() {
		return n
	}

	for _, g := range n.Regions {
		n.Controllers[g] = &Controller{
			Region: g,
			Master: d.gates(g, true),
			Slave:  d.gates(g, false),
		}
		n.Channels[g] = &Channel{
			MRI: m.Net(Name(g, "mri")), MAI: m.Net(Name(g, "mai")),
			MRO: m.Net(Name(g, "mro")), SRI: m.Net(Name(g, "sri")),
			SAI: m.Net(Name(g, "sai")), SRO: m.Net(Name(g, "sro")),
		}
		if t := d.ctree(CTreePrefix(g, true) + "/"); t != nil {
			n.ReqTrees[g] = t
		}
		if t := d.ctree(CTreePrefix(g, false) + "/"); t != nil {
			n.AckTrees[g] = t
		}
		if c := d.chain(DelayPrefix(g) + "/"); c != nil {
			n.ReqDelays[g] = c
		}
		if c := d.chain(MSDelayPrefix(g) + "/"); c != nil {
			n.MSDelays[g] = c
		}
		if p := m.Port(EnvRequestPort(g)); p != nil && p.Dir == netlist.In {
			n.EnvRequests = append(n.EnvRequests, p.Name)
		}
		if p := m.Port(EnvAckPort(g)); p != nil && p.Dir == netlist.In {
			n.EnvAcks = append(n.EnvAcks, p.Name)
		}
	}

	d.colorLatches()
	d.buildEdges()
	return n
}

func (d *deriver) gates(g int, master bool) Gates {
	return Gates{
		G:  d.m.Inst(CtrlGate(g, master, GateG)),
		RO: d.m.Inst(CtrlGate(g, master, GateRO)),
		B:  d.m.Inst(CtrlGate(g, master, GateB)),
		AI: d.m.Inst(CtrlGate(g, master, GateAI)),
	}
}

// ctrlEnableRoot matches the controller latch-enable gates by name.
func ctrlEnableRoot(name string) (Root, bool) {
	g, ok := Region(name)
	if !ok {
		return Root{}, false
	}
	switch name {
	case CtrlGate(g, true, GateG):
		return Root{Region: g, Phase: Master}, true
	case CtrlGate(g, false, GateG):
		return Root{Region: g, Phase: Slave}, true
	}
	return Root{}, false
}

// enableRoots walks backwards from an enable net through combinational
// gating (clock-gate ANDs, set ORs, inverters of Fig 3.1) and returns the
// controller enable gates that feed it.
func (d *deriver) enableRoots(n *netlist.Net, visiting map[*netlist.Net]bool) []Root {
	if rs, ok := d.enableMemo[n]; ok {
		return rs
	}
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)
	var out []Root
	drv := n.Driver.Inst
	switch {
	case drv == nil || drv.Cell == nil:
		// port, tie-off through submodule, or floating: no root
	default:
		if rt, ok := ctrlEnableRoot(drv.Name); ok {
			out = append(out, rt)
			break
		}
		if drv.Cell.Kind != netlist.KindComb {
			break
		}
		for _, pc := range drv.Conns() {
			pin, in := pc.Pin, pc.Net
			if dir, ok := pinDirOf(drv, pin); ok && dir == netlist.In && in != nil {
				out = append(out, d.enableRoots(in, visiting)...)
			}
		}
	}
	d.enableMemo[n] = out
	return out
}

// colorLatches records every latch with its enable net and distinct
// controller roots, and recovers Group tags for cleanly colored latches.
func (d *deriver) colorLatches() {
	for _, in := range d.m.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindLatch {
			continue
		}
		l := &Latch{Inst: in, Enable: in.Conn(in.Cell.Seq.ClockPin)}
		if l.Enable != nil {
			seen := map[Root]bool{}
			for _, rt := range d.enableRoots(l.Enable, map[*netlist.Net]bool{}) {
				if !seen[rt] {
					seen[rt] = true
					l.Roots = append(l.Roots, rt)
				}
			}
		}
		if l.Colored() && in.Group < 0 {
			in.Group = l.Roots[0].Region
		}
		d.n.Latches = append(d.n.Latches, l)
		d.n.latchOf[in] = l
	}
}

// isControl reports whether an instance belongs to the control network —
// by Origin tag for in-memory designs, by name for re-read ones.
func isControl(in *netlist.Inst) bool {
	if handshake.IsControlOrigin(in.Origin) {
		return true
	}
	_, ok := Region(in.Name)
	return ok
}

// netSources returns the sequential instances whose outputs reach net n
// backwards through combinational datapath logic (memoized; cycles
// terminate the walk).
func (d *deriver) netSources(n *netlist.Net, visiting map[*netlist.Net]bool) map[*netlist.Inst]bool {
	if s, ok := d.srcMemo[n]; ok {
		return s
	}
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)
	out := map[*netlist.Inst]bool{}
	drv := n.Driver.Inst
	if drv != nil && drv.Cell != nil {
		switch {
		case drv.Cell.Seq != nil:
			out[drv] = true
		case drv.Cell.Kind == netlist.KindComb && !isControl(drv):
			for _, pc := range drv.Conns() {
				pin, in := pc.Pin, pc.Net
				if dir, ok := pinDirOf(drv, pin); ok && dir == netlist.In && in != nil {
					for s := range d.netSources(in, visiting) {
						out[s] = true
					}
				}
			}
		}
	}
	d.srcMemo[n] = out
	return out
}

// latchDataNets returns the data-input nets of a sequential instance, one
// entry per connected data pin (shared nets repeat).
func latchDataNets(in *netlist.Inst) []*netlist.Net {
	var out []*netlist.Net
	for _, p := range in.Cell.Pins {
		if p.Dir == netlist.In && p.Class == netlist.ClassData {
			if n := in.Conn(p.Name); n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// buildEdges enumerates the latch-to-latch data reaches of the colored
// latches and derives the region dependency graph from them. Direct
// same-region hops (the internal master→slave connection and signal-history
// chains) are not dependencies, matching core.BuildDDG;
// combinationally-mediated self edges stay.
func (d *deriver) buildEdges() {
	n := d.n
	graph := map[[2]int]bool{}
	for _, l := range n.Latches {
		if !l.Colored() {
			continue
		}
		v := l.Region()
		for _, net := range latchDataNets(l.Inst) {
			srcSet := d.netSources(net, map[*netlist.Net]bool{})
			srcs := make([]*netlist.Inst, 0, len(srcSet))
			for s := range srcSet {
				srcs = append(srcs, s)
			}
			sort.Slice(srcs, func(i, j int) bool { return srcs[i].Name < srcs[j].Name })
			for _, src := range srcs {
				e := DataEdge{Sink: l.Inst, Net: net, Src: src, Direct: net.Driver.Inst == src}
				n.Edges = append(n.Edges, e)
				if sl := n.latchOf[src]; sl != nil && sl.Colored() {
					u := sl.Region()
					if u == v && e.Direct {
						continue // direct intra-region register hop
					}
					graph[[2]int{u, v}] = true
				}
			}
		}
	}
	for e := range graph {
		n.Succs[e[0]] = append(n.Succs[e[0]], e[1])
		n.Preds[e[1]] = append(n.Preds[e[1]], e[0])
	}
	for _, l := range n.Succs {
		sort.Ints(l)
	}
	for _, l := range n.Preds {
		sort.Ints(l)
	}
}

// ctree collects the C-element tree carrying the given instance prefix,
// with its external input nets as sorted leaves; nil when no member exists.
func (d *deriver) ctree(prefix string) *CTree {
	if d.prefixIdx == nil {
		d.prefixIdx = map[string][]*netlist.Inst{}
		for _, in := range d.m.Insts {
			if cut := strings.IndexByte(in.Name, '/'); cut >= 0 {
				key := in.Name[:cut+1]
				d.prefixIdx[key] = append(d.prefixIdx[key], in)
			}
		}
	}
	internal := map[*netlist.Net]bool{}
	var members []*netlist.Inst
	for _, in := range d.prefixIdx[prefix] {
		if in.Cell == nil {
			continue
		}
		members = append(members, in)
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			if dir, ok := pinDirOf(in, pin); ok && dir == netlist.Out && n != nil {
				internal[n] = true
			}
		}
	}
	if len(members) == 0 {
		return nil
	}
	leafSet := map[string]bool{}
	for _, in := range members {
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			if dir, ok := pinDirOf(in, pin); ok && dir == netlist.In && n != nil && !internal[n] {
				leafSet[n.Name] = true
			}
		}
	}
	t := &CTree{Prefix: prefix, Members: members}
	for n := range leafSet {
		t.Leaves = append(t.Leaves, n)
	}
	sort.Strings(t.Leaves)
	return t
}

// chain walks a delay-element AND chain (prefix + "a1", "a2", ...) summing
// the worst-corner rise delay with each gate's variability factor — the
// same pricing sta.Build uses. For muxed elements this is the longest tap.
// Returns nil when no stage exists.
func (d *deriver) chain(prefix string) *DelayChain {
	c := &DelayChain{Prefix: prefix}
	for {
		in := d.m.Inst(ChainStage(strings.TrimSuffix(prefix, "/"), c.Levels+1))
		if in == nil || in.Cell == nil {
			break
		}
		arc := in.Cell.Arc("A", "Z")
		if arc == nil {
			break
		}
		if c.First == nil {
			c.First = in
		}
		c.Delay += arc.Rise.At(netlist.Worst) * sta.EffectiveFactor(in)
		c.Levels++
	}
	if c.Levels == 0 {
		return nil
	}
	return c
}

// pinDirOf resolves a connection's direction for cell and submodule
// instances alike; ok is false for pins the instance does not declare.
func pinDirOf(in *netlist.Inst, pin string) (netlist.PinDir, bool) {
	if in.Cell != nil {
		if pd := in.Cell.Pin(pin); pd != nil {
			return pd.Dir, true
		}
		return netlist.In, false
	}
	if p := in.Sub.Port(pin); p != nil {
		return p.Dir, true
	}
	return netlist.In, false
}
