package verilog

import (
	"fmt"
	"sort"
	"strings"

	"desync/internal/netlist"
)

// Write renders the design as structural Verilog: submodules first, top
// last. Bus-bit net names ("data[3]") are re-grouped into declared buses so
// that a written netlist re-imports with identical names — which the
// grouping bus heuristic (§3.2.2) depends on.
func Write(d *netlist.Design) string {
	var sb strings.Builder
	written := map[string]bool{}
	var emit func(m *netlist.Module)
	emit = func(m *netlist.Module) {
		if written[m.Name] {
			return
		}
		written[m.Name] = true
		for _, in := range m.Insts {
			if in.Sub != nil {
				emit(in.Sub)
			}
		}
		writeModule(&sb, m)
	}
	emit(d.Top)
	return sb.String()
}

// busInfo describes a reconstructed bus declaration.
type busInfo struct {
	base     string
	min, max int
}

// analyzeBuses groups the given names into buses where safe: a base
// qualifies when no scalar of the same name exists and indices are unique.
func analyzeBuses(names []string, scalarTaken map[string]bool) (buses map[string]*busInfo, busNames map[string]bool) {
	buses = map[string]*busInfo{}
	seen := map[string]map[int]bool{}
	disqualified := map[string]bool{}
	for _, n := range names {
		base, idx, ok := netlist.BusBase(n)
		if !ok {
			continue
		}
		if scalarTaken[base] {
			disqualified[base] = true
			continue
		}
		if seen[base] == nil {
			seen[base] = map[int]bool{}
			buses[base] = &busInfo{base: base, min: idx, max: idx}
		}
		if seen[base][idx] {
			disqualified[base] = true
			continue
		}
		seen[base][idx] = true
		if idx < buses[base].min {
			buses[base].min = idx
		}
		if idx > buses[base].max {
			buses[base].max = idx
		}
	}
	for b := range disqualified {
		delete(buses, b)
	}
	busNames = map[string]bool{}
	for _, n := range names {
		if base, _, ok := netlist.BusBase(n); ok && buses[base] != nil {
			busNames[n] = true
		}
	}
	return buses, busNames
}

func writeModule(sb *strings.Builder, m *netlist.Module) {
	// Scalar names in use (ports and nets without [i] suffixes).
	scalarTaken := map[string]bool{}
	var allNames []string
	for _, n := range m.Nets {
		allNames = append(allNames, n.Name)
		if _, _, ok := netlist.BusBase(n.Name); !ok {
			scalarTaken[n.Name] = true
		}
	}
	buses, isBusBit := analyzeBuses(allNames, scalarTaken)

	// Header: port bases in declaration order, each base once.
	fmt.Fprintf(sb, "module %s (", escape(m.Name))
	var headerDone = map[string]bool{}
	first := true
	portDirs := map[string]netlist.PinDir{}
	var portBases []string
	for _, p := range m.Ports {
		base := p.Name
		if b, _, ok := netlist.BusBase(p.Name); ok && buses[b] != nil {
			base = b
		}
		if !headerDone[base] {
			headerDone[base] = true
			portBases = append(portBases, base)
			portDirs[base] = p.Dir
			if !first {
				sb.WriteString(", ")
			}
			first = false
			sb.WriteString(escape(base))
		}
	}
	sb.WriteString(");\n")

	// Port declarations.
	portNets := map[string]bool{}
	for _, p := range m.Ports {
		portNets[p.Name] = true
	}
	for _, base := range portBases {
		if b := buses[base]; b != nil && !scalarTaken[base] {
			fmt.Fprintf(sb, "  %s [%d:%d] %s;\n", portDirs[base], b.max, b.min, escape(base))
		} else {
			fmt.Fprintf(sb, "  %s %s;\n", portDirs[base], escape(base))
		}
	}

	// Wire declarations (everything that is not a port).
	declared := map[string]bool{}
	var wireLines []string
	for _, n := range m.SortedNets() {
		if portNets[n.Name] {
			continue
		}
		if base, _, ok := netlist.BusBase(n.Name); ok && buses[base] != nil {
			if headerDone[base] || declared[base] {
				continue
			}
			declared[base] = true
			b := buses[base]
			wireLines = append(wireLines, fmt.Sprintf("  wire [%d:%d] %s;\n", b.max, b.min, escape(base)))
			continue
		}
		if declared[n.Name] {
			continue
		}
		declared[n.Name] = true
		wireLines = append(wireLines, fmt.Sprintf("  wire %s;\n", escape(n.Name)))
	}
	sort.Strings(wireLines)
	for _, l := range wireLines {
		sb.WriteString(l)
	}

	// Ports whose net carries a different name (assign aliases) need the
	// alias restated so a re-import reproduces the binding.
	for _, p := range m.Ports {
		if p.Net == nil || p.Net.Name == p.Name {
			continue
		}
		switch p.Dir {
		case netlist.Out:
			fmt.Fprintf(sb, "  assign %s = %s;\n", escape(p.Name), netRef(p.Net, isBusBit))
		case netlist.In:
			fmt.Fprintf(sb, "  assign %s = %s;\n", netRef(p.Net, isBusBit), escape(p.Name))
		}
	}

	// Instances, in creation order (stable, meaningful for diffs).
	for _, in := range m.Insts {
		writeInst(sb, m, in, isBusBit)
	}
	sb.WriteString("endmodule\n\n")
}

func writeInst(sb *strings.Builder, m *netlist.Module, in *netlist.Inst, isBusBit map[string]bool) {
	fmt.Fprintf(sb, "  %s %s (", escape(in.CellName()), escape(in.Name))

	type pinConn struct {
		pin  string
		nets []*netlist.Net // one for scalar, many (MSB-first) for submodule bus pins
	}
	var conns []pinConn
	if in.Cell != nil {
		for _, p := range in.Cell.Pins {
			if n := in.Conn(p.Name); n != nil {
				conns = append(conns, pinConn{p.Name, []*netlist.Net{n}})
			}
		}
	} else {
		// Group submodule bus-bit ports back into one connection with a
		// concatenation, MSB-first following the submodule's port order.
		type group struct {
			pins []string
			nets []*netlist.Net
		}
		var order []string
		groups := map[string]*group{}
		for _, p := range in.Sub.Ports {
			base := p.Name
			if b, _, ok := netlist.BusBase(p.Name); ok {
				base = b
			}
			g := groups[base]
			if g == nil {
				g = &group{}
				groups[base] = g
				order = append(order, base)
			}
			g.pins = append(g.pins, p.Name)
			g.nets = append(g.nets, in.Conn(p.Name))
		}
		for _, base := range order {
			g := groups[base]
			if len(g.pins) == 1 && g.pins[0] == base {
				if g.nets[0] != nil {
					conns = append(conns, pinConn{base, g.nets}) //nolint:staticcheck
				}
				continue
			}
			conns = append(conns, pinConn{base, g.nets})
		}
	}

	for i, c := range conns {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, ".%s(", escape(c.pin))
		if len(c.nets) == 1 {
			sb.WriteString(netRef(c.nets[0], isBusBit))
		} else {
			sb.WriteString("{")
			for j, n := range c.nets {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(netRef(n, isBusBit))
			}
			sb.WriteString("}")
		}
		sb.WriteString(")")
	}
	sb.WriteString(");\n")
}

// netRef renders a net reference: bus bits as base[idx], other names
// escaped when necessary. nil nets (unconnected submodule bus slices)
// render as 1'b0 — they should not occur in checked designs.
func netRef(n *netlist.Net, isBusBit map[string]bool) string {
	if n == nil {
		return "1'b0"
	}
	if isBusBit[n.Name] {
		base, idx, _ := netlist.BusBase(n.Name)
		return fmt.Sprintf("%s[%d]", escape(base), idx)
	}
	return escape(n.Name)
}

// escape renders a name as a simple or escaped Verilog identifier.
func escape(name string) string {
	if name == "" {
		return "\\ "
	}
	simple := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')) {
			simple = false
			break
		}
	}
	if simple && !isKeyword(name) {
		return name
	}
	return "\\" + name + " "
}

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "assign": true, "reg": true,
}

func isKeyword(s string) bool { return keywords[s] }
