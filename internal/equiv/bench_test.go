package equiv

import (
	"context"
	"fmt"
	"testing"
	"time"

	"desync/internal/ctrlnet"
	"desync/internal/expt"
)

// dlxStates is the reduced reachable-marking count of the desynchronized
// DLX control network. It is pinned (rather than merely bounded) so that
// any change to the model construction or the partial-order reduction is
// a conscious decision: a silent growth here is how the gate stops being
// tractable.
const dlxStates = 4013

// dlxExploreBudget bounds one reduced exploration of the DLX network. The
// gate runs inside drdesync and make check; it must stay interactive.
const dlxExploreBudget = 30 * time.Second

// BenchmarkEquivDLX guards the formal gate's cost on the DLX case study:
// the reduced state count must stay exactly dlxStates and a single
// exploration must finish within dlxExploreBudget.
func BenchmarkEquivDLX(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatalf("DLX flow: %v", err)
	}
	m, err := FromModule(f.Desync.Top)
	if err != nil {
		b.Fatalf("FromModule: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res := mustExplore(b, m, ExploreOptions{})
		if d := time.Since(start); d > dlxExploreBudget {
			b.Fatalf("exploration took %v, budget %v", d, dlxExploreBudget)
		}
		if !res.Clean() {
			b.Fatalf("DLX network no longer verifies: %+v", res.Violation)
		}
		if res.States != dlxStates {
			b.Fatalf("reduced state count drifted: got %d, pinned %d (update the pin deliberately)", res.States, dlxStates)
		}
	}
	b.ReportMetric(float64(dlxStates), "markings")
}

// BenchmarkEquivParallelDLX prices the same exploration with the parallel
// frontier engine at 4 workers. On a single-core host this measures the
// sharding overhead, not a speedup; the guard is the determinism pin — the
// parallel search must land on exactly the serial state count.
func BenchmarkEquivParallelDLX(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatalf("DLX flow: %v", err)
	}
	m, err := FromModule(f.Desync.Top)
	if err != nil {
		b.Fatalf("FromModule: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res := mustExplore(b, m, ExploreOptions{Parallelism: 4})
		if d := time.Since(start); d > dlxExploreBudget {
			b.Fatalf("exploration took %v, budget %v", d, dlxExploreBudget)
		}
		if !res.Clean() {
			b.Fatalf("DLX network no longer verifies: %+v", res.Violation)
		}
		if res.States != dlxStates {
			b.Fatalf("parallel state count drifted: got %d, pinned %d", res.States, dlxStates)
		}
	}
	b.ReportMetric(float64(dlxStates), "markings")
}

// BenchmarkEquivScaling measures the two equiv kernels across worker
// counts for the EXPERIMENTS.md scaling table: the DLX full-interleaving
// search bounded at 20k markings (the reduced search, at 4013 markings in
// single-digit milliseconds, is too small to time) and the ARM
// cross-validation trace fan-out.
func BenchmarkEquivScaling(b *testing.B) {
	dlx, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatal(err)
	}
	md, err := FromModule(dlx.Desync.Top)
	if err != nil {
		b.Fatal(err)
	}
	arm, err := expt.RunARMFlow(false)
	if err != nil {
		b.Fatal(err)
	}
	ma, err := FromModule(arm.Desync.Top)
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dlx-full-j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mustExplore(b, md, ExploreOptions{NoReduce: true, MaxStates: 20_000, Parallelism: j})
				if !res.Truncated {
					b.Fatalf("expected a bounded search, got %d markings", res.States)
				}
			}
		})
		b.Run(fmt.Sprintf("arm-xval-j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x, err := ma.CrossValidate(context.Background(), arm.Desync.Top, XValConfig{Traces: 4, Seed: 7, Parallelism: j})
				if err != nil {
					b.Fatal(err)
				}
				if x.Divergence != nil {
					b.Fatalf("ARM xval diverged: %+v", x.Divergence)
				}
			}
		})
	}
}

// BenchmarkModelFromFreshDerive vs BenchmarkModelFromSharedNetwork price
// what the derive-once refactor buys: extraction on top of a private
// re-derivation of the control network versus extraction reusing the IR the
// rest of the run already holds.
func BenchmarkModelFromFreshDerive(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatalf("DLX flow: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromNetwork(f.Desync.Top, ctrlnet.DeriveFresh(f.Desync.Top)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelFromSharedNetwork(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatalf("DLX flow: %v", err)
	}
	cn := ctrlnet.Derive(f.Desync.Top)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromNetwork(f.Desync.Top, cn); err != nil {
			b.Fatal(err)
		}
	}
}
