// Package power reproduces the paper's power-estimation chain (§5.2.3):
// switching activity is collected from gate-level simulation (the VCD →
// SAIF path), combined with per-cell switching energy and leakage from the
// library, and reported as dynamic + static power. A VCD writer is included
// for waveform export.
package power

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
)

// Report is a power summary in mW.
type Report struct {
	DynamicMW float64
	LeakageMW float64
}

// Total returns dynamic + leakage power.
func (r Report) Total() float64 { return r.DynamicMW + r.LeakageMW }

// Estimate computes power from a finished simulation: per-net toggle counts
// weighted by the driving cell's switching energy, over the given active
// duration (ns), plus the design's leakage at the corner. 1 pJ/ns = 1 mW.
func Estimate(m *netlist.Module, s *sim.Simulator, duration float64, corner netlist.Corner) (Report, error) {
	if duration <= 0 {
		return Report{}, fmt.Errorf("power: non-positive duration %v", duration)
	}
	if s.M != m {
		return Report{}, fmt.Errorf("power: simulator belongs to a different module")
	}
	var energy float64 // pJ
	for i, n := range m.Nets {
		drv := n.Driver.Inst
		if drv == nil || drv.Cell == nil {
			continue // primary inputs are charged to the environment
		}
		energy += float64(s.Toggles[i]) * drv.Cell.Energy
	}
	var leak float64 // µW
	for _, in := range m.Insts {
		if in.Cell != nil {
			leak += in.Cell.Leakage.At(corner)
		}
	}
	return Report{
		DynamicMW: energy / duration,
		LeakageMW: leak / 1000,
	}, nil
}

// SAIF is a per-net activity summary, the moral equivalent of the file
// vcd2saif produces.
type SAIF struct {
	Duration float64
	Nets     map[string]*NetActivity
}

// NetActivity is one net's record: toggle count and time spent high.
type NetActivity struct {
	TC int64   // toggle count
	T1 float64 // time at logic 1
}

// Collector accumulates activity during simulation; attach before running.
type Collector struct {
	s        *sim.Simulator
	start    float64
	lastHigh map[string]float64 // time the net last rose; -1 when low
	saif     *SAIF
}

// NewCollector hooks every net of the module.
func NewCollector(s *sim.Simulator) (*Collector, error) {
	c := &Collector{
		s:        s,
		lastHigh: map[string]float64{},
		saif:     &SAIF{Nets: map[string]*NetActivity{}},
	}
	for _, n := range s.M.Nets {
		name := n.Name
		na := &NetActivity{}
		c.saif.Nets[name] = na
		c.lastHigh[name] = -1
		err := s.OnChange(name, func(tm float64, v logic.V) {
			na.TC++
			if v == logic.H {
				c.lastHigh[name] = tm
			} else if h := c.lastHigh[name]; h >= 0 {
				na.T1 += tm - h
				c.lastHigh[name] = -1
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Finish closes open high intervals at the given end time and returns the
// summary.
func (c *Collector) Finish(end float64) *SAIF {
	for name, h := range c.lastHigh {
		if h >= 0 {
			c.saif.Nets[name].T1 += end - h
			c.lastHigh[name] = -1
		}
	}
	c.saif.Duration = end - c.start
	return c.saif
}

// Write renders the summary in a SAIF-like text form.
func (s *SAIF) Write(w io.Writer) error {
	names := make([]string, 0, len(s.Nets))
	for n := range s.Nets {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "(SAIFILE (DURATION %.4f)\n", s.Duration); err != nil {
		return err
	}
	for _, n := range names {
		a := s.Nets[n]
		if _, err := fmt.Fprintf(w, "  (NET %q (T1 %.4f) (TC %d))\n", n, a.T1, a.TC); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, ")")
	return err
}

// VCD streams value changes in Verilog VCD format. Attach before running,
// then call Close after the simulation finishes.
type VCD struct {
	w        io.Writer
	ids      map[string]string
	lastTime float64
	wroteT   bool
	err      error
}

// NewVCD writes the header and hooks every net of the simulator's module.
func NewVCD(s *sim.Simulator, w io.Writer, topName string) (*VCD, error) {
	v := &VCD{w: w, ids: map[string]string{}, lastTime: -1}
	fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", topName)
	nets := append([]*netlist.Net(nil), s.M.Nets...)
	sort.Slice(nets, func(i, j int) bool { return nets[i].Name < nets[j].Name })
	for i, n := range nets {
		id := vcdID(i)
		v.ids[n.Name] = id
		fmt.Fprintf(w, "$var wire 1 %s %s $end\n", id, vcdName(n.Name))
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")
	for _, n := range nets {
		name := n.Name
		if err := s.OnChange(name, func(tm float64, val logic.V) {
			v.emit(tm, name, val)
		}); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func (v *VCD) emit(tm float64, net string, val logic.V) {
	if v.err != nil {
		return
	}
	if tm != v.lastTime || !v.wroteT {
		// VCD time is integral; use picoseconds-scaled ns.
		_, v.err = fmt.Fprintf(v.w, "#%d\n", int64(tm*1000))
		v.lastTime = tm
		v.wroteT = true
	}
	ch := "x"
	switch val {
	case logic.L:
		ch = "0"
	case logic.H:
		ch = "1"
	}
	if v.err == nil {
		_, v.err = fmt.Fprintf(v.w, "%s%s\n", ch, v.ids[net])
	}
}

// Err reports any write error encountered.
func (v *VCD) Err() error { return v.err }

func vcdID(i int) string {
	const alphabet = "!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var sb strings.Builder
	for {
		sb.WriteByte(alphabet[i%len(alphabet)])
		i /= len(alphabet)
		if i == 0 {
			return sb.String()
		}
	}
}

func vcdName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}
