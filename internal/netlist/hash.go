package netlist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// ContentHash returns a stable hex digest of the module's canonical content:
// the module name, ports in declaration order (the interface contract), and
// nets and instances in name-sorted order with their connectivity, region
// assignment, origin and timing annotations. Two modules that export the
// same design hash identically regardless of the order nets or instances
// were created in, and nothing in the walk ranges over a map without
// sorting first — the digest is deterministic across processes.
//
// The hash covers everything the desynchronization flow's output depends
// on, so it is a sound cache key for flow results: structure (driver/sink
// connectivity), cell bindings, groups, false-path marks, SizeOnly/Origin
// flags, and the per-instance/per-net delay annotations.
//
// The walk reuses the module's cached name-sorted orders and scratch
// buffers: hashing costs one sort per structural revision (shared with
// SortedNets and the exporters) plus a constant number of allocations,
// instead of rebuilding per-node maps and string slices on every call.
func (m *Module) ContentHash() string {
	h := sha256.New()
	writeModuleContent(h, m)
	return hex.EncodeToString(h.Sum(nil))
}

// ContentHash returns the design-level digest: the library identity (name
// and variant — the same structure mapped to HS vs LL cells times
// differently), then every module of the design in name-sorted order. It is
// the netlist half of a content-addressed flow-result cache key.
func (d *Design) ContentHash() string {
	h := sha256.New()
	if d.Lib != nil {
		fmt.Fprintf(h, "lib %s %s\n", d.Lib.Name, d.Lib.Variant)
	}
	fmt.Fprintf(h, "design %s top %s\n", d.Name, d.Top.Name)
	var names []string
	for name := range d.Modules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "module %s\n", name)
		writeModuleContent(h, d.Modules[name])
	}
	// A top module outside the Modules map (hand-assembled designs) still
	// contributes its content.
	if _, ok := d.Modules[d.Top.Name]; !ok {
		writeModuleContent(h, d.Top)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// appendRef appends a PinRef exactly as PinRef.String renders it.
func appendRef(buf []byte, r PinRef) []byte {
	if r.Inst == nil {
		return append(buf, r.Pin...)
	}
	buf = append(buf, r.Inst.Name...)
	buf = append(buf, '/')
	return append(buf, r.Pin...)
}

// cmpRef orders two PinRefs by the byte order of their String() renderings
// without materializing the strings. The concatenation matters: sorting by
// (Inst.Name, Pin) pairs would order "a/z" after "a.x/c" ('.' < '/'),
// while String() order puts "a/z" first — and the hash's historical sink
// order is String() order.
func cmpRef(a, b PinRef) int {
	as := [3]string{a.Pin, "", ""}
	if a.Inst != nil {
		as = [3]string{a.Inst.Name, "/", a.Pin}
	}
	bs := [3]string{b.Pin, "", ""}
	if b.Inst != nil {
		bs = [3]string{b.Inst.Name, "/", b.Pin}
	}
	ai, ao := 0, 0
	bi, bo := 0, 0
	for {
		for ai < 3 && ao == len(as[ai]) {
			ai++
			ao = 0
		}
		for bi < 3 && bo == len(bs[bi]) {
			bi++
			bo = 0
		}
		if ai == 3 || bi == 3 {
			switch {
			case ai == 3 && bi == 3:
				return 0
			case ai == 3:
				return -1
			default:
				return 1
			}
		}
		if ca, cb := as[ai][ao], bs[bi][bo]; ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		ao++
		bo++
	}
}

// appendG appends a float exactly as fmt's %g verb renders it.
func appendG(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// writeModuleContent streams the canonical form of one module. Every
// collection is emitted in a sorted or declaration order; connection-list
// iteration order (insertion order) never reaches the writer. Lines are
// assembled in the module's scratch buffer and flushed per record.
func writeModuleContent(w io.Writer, m *Module) {
	buf := m.scratch.buf[:0]
	flush := func() {
		w.Write(buf)
		buf = buf[:0]
	}
	buf = append(buf, "name "...)
	buf = append(buf, m.Name...)
	buf = append(buf, '\n')
	for _, p := range m.Ports {
		buf = append(buf, "port "...)
		buf = append(buf, p.Name...)
		buf = append(buf, ' ')
		buf = append(buf, p.Dir.String()...)
		buf = append(buf, ' ')
		if p.Net != nil {
			buf = append(buf, p.Net.Name...)
		}
		buf = append(buf, '\n')
	}
	flush()

	refs := m.scratch.refs
	for _, n := range m.sortedNetsCached() {
		buf = append(buf, "net "...)
		buf = append(buf, n.Name...)
		buf = append(buf, " drv "...)
		buf = appendRef(buf, n.Driver)
		refs = append(refs[:0], n.Sinks...)
		slices.SortFunc(refs, cmpRef)
		for _, s := range refs {
			buf = append(buf, " snk "...)
			buf = appendRef(buf, s)
		}
		if n.FalsePath {
			buf = append(buf, " fp"...)
		}
		if n.Wire != (Delay{}) {
			buf = append(buf, " wire "...)
			buf = appendG(buf, n.Wire.Best)
			buf = append(buf, ' ')
			buf = appendG(buf, n.Wire.Worst)
		}
		buf = append(buf, '\n')
		flush()
	}
	m.scratch.refs = refs

	conns := m.scratch.conns
	for _, in := range m.sortedInstsCached() {
		buf = append(buf, "inst "...)
		buf = append(buf, in.Name...)
		buf = append(buf, ' ')
		buf = append(buf, in.CellName()...)
		buf = append(buf, " g "...)
		buf = strconv.AppendInt(buf, int64(in.Group), 10)
		if in.SizeOnly {
			buf = append(buf, " so"...)
		}
		if in.Origin != "" {
			buf = append(buf, " org "...)
			buf = append(buf, in.Origin...)
		}
		if in.DelayFactor != 0 && in.DelayFactor != 1 {
			buf = append(buf, " df "...)
			buf = appendG(buf, in.DelayFactor)
		}
		conns = append(conns[:0], in.conns...)
		slices.SortFunc(conns, func(a, b PinConn) int { return strings.Compare(a.Pin, b.Pin) })
		for i := range conns {
			if conns[i].Net == nil {
				continue
			}
			buf = append(buf, ' ')
			buf = append(buf, conns[i].Pin...)
			buf = append(buf, '=')
			buf = append(buf, conns[i].Net.Name...)
		}
		buf = append(buf, '\n')
		flush()
	}
	m.scratch.conns = conns
	m.scratch.buf = buf[:0]
}
