package ssta

import (
	"math"
	"math/rand"
	"testing"

	"desync/internal/netlist"
	"desync/internal/sta"
	"desync/internal/stdcells"
)

func TestDistAlgebra(t *testing.T) {
	a := Dist{Mean: 1, G: 0.2, L: 0.1}
	b := Dist{Mean: 2, G: 0.3, L: 0.2}
	s := a.Add(b)
	if !approx(s.Mean, 3, 1e-12) || !approx(s.G, 0.5, 1e-12) {
		t.Fatalf("add wrong: %+v", s)
	}
	if !approx(s.L, math.Hypot(0.1, 0.2), 1e-12) {
		t.Fatalf("local RSS wrong: %+v", s)
	}
	d := b.Sub(a)
	if !approx(d.Mean, 1, 1e-12) || !approx(d.G, 0.1, 1e-12) {
		t.Fatalf("sub wrong: %+v", d)
	}
	if a.Quantile(3) <= a.Mean {
		t.Fatal("quantile wrong")
	}
}

// Clark's max approximation must agree with Monte Carlo moments.
func TestClarkMaxVsMonteCarlo(t *testing.T) {
	cases := []struct{ a, b Dist }{
		{Dist{Mean: 1, G: 0.2, L: 0.1}, Dist{Mean: 1.1, G: 0.15, L: 0.2}},
		{Dist{Mean: 2, G: 0.4, L: 0}, Dist{Mean: 1, G: 0.1, L: 0.3}},
		{Dist{Mean: 1, G: 0, L: 0.3}, Dist{Mean: 1, G: 0, L: 0.3}},
	}
	rng := rand.New(rand.NewSource(9))
	for ci, c := range cases {
		got := Max(c.a, c.b)
		const n = 200000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			xg := rng.NormFloat64()
			v1 := c.a.Mean + c.a.G*xg + c.a.L*rng.NormFloat64()
			v2 := c.b.Mean + c.b.G*xg + c.b.L*rng.NormFloat64()
			m := math.Max(v1, v2)
			sum += m
			sum2 += m * m
		}
		mean := sum / n
		sigma := math.Sqrt(sum2/n - mean*mean)
		if !approx(got.Mean, mean, 0.01) {
			t.Fatalf("case %d: Clark mean %.4f vs MC %.4f", ci, got.Mean, mean)
		}
		if !approx(got.Sigma(), sigma, 0.02) {
			t.Fatalf("case %d: Clark sigma %.4f vs MC %.4f", ci, got.Sigma(), sigma)
		}
	}
}

func TestChainPropagation(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	m := netlist.NewModule("m")
	m.AddPort("in", netlist.In)
	m.AddPort("out", netlist.Out)
	prev := m.Net("in")
	n := 10
	for i := 0; i < n; i++ {
		net := m.Net("out")
		if i != n-1 {
			net = m.AddNet(string(rune('a' + i)))
		}
		g := m.AddInst("g"+string(rune('a'+i)), lib.MustCell("INVX1"))
		m.MustConnect(g, "A", prev)
		m.MustConnect(g, "Z", net)
		prev = net
	}
	model := DefaultModel(stdcells.CornerSpread)
	r, err := Analyze(m, sta.Options{}, model)
	if err != nil {
		t.Fatal(err)
	}
	d := lib.MustCell("INVX1").Arcs[0].Rise.Best
	id := r.G.PortID("out")
	got := r.Arrivals[id]
	wantMean := float64(n) * d * model.GlobalMean
	if !approx(got.Mean, wantMean, 1e-9) {
		t.Fatalf("chain mean %.4f want %.4f", got.Mean, wantMean)
	}
	// Global sensitivities add linearly (fully correlated)...
	if !approx(got.G, float64(n)*d*model.GlobalSigma, 1e-9) {
		t.Fatalf("global sens %.5f", got.G)
	}
	// ...locals in quadrature: sqrt(n) scaling.
	wantL := math.Sqrt(float64(n)) * d * model.GlobalMean * model.LocalSigma
	if !approx(got.L, wantL, 1e-9) {
		t.Fatalf("local sens %.5f want %.5f", got.L, wantL)
	}
	// The global term dominates: total sigma reflects the corner spread.
	if got.Sigma() < got.G {
		t.Fatal("sigma inconsistent")
	}
}

// The paper's argument, quantified: a matched delay element covers the
// logic with near-certainty when they share the die (global cancels), but
// an independently-varying reference of the same mean margin does not.
func TestCoverageSharedVsIndependent(t *testing.T) {
	model := DefaultModel(stdcells.CornerSpread)
	logicPath := model.CellDelay(4.0)
	cover := model.CellDelay(4.4) // 10% margin
	shared := CoverageProbability(cover, logicPath, 0, true)
	indep := CoverageProbability(cover, logicPath, 0, false)
	if shared < 0.95 {
		t.Fatalf("shared-die coverage %.4f, want near-certain", shared)
	}
	if indep > shared-0.05 {
		t.Fatalf("independent reference coverage %.4f not clearly worse than shared %.4f", indep, shared)
	}
	// Coverage increases with margin in both models.
	if CoverageProbability(model.CellDelay(4.0), logicPath, 0, false) >= indep {
		t.Fatal("margin did not help the independent model")
	}
}

func TestReconvergentMax(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	// Two parallel paths of different depth into an AND.
	mid1 := m.AddNet("m1")
	g1 := m.AddInst("g1", lib.MustCell("BUFX1"))
	m.MustConnect(g1, "A", m.Net("a"))
	m.MustConnect(g1, "Z", mid1)
	mid2 := m.AddNet("m2")
	g2 := m.AddInst("g2", lib.MustCell("INVX1"))
	m.MustConnect(g2, "A", mid1)
	m.MustConnect(g2, "Z", mid2)
	g3 := m.AddInst("g3", lib.MustCell("AND2X1"))
	m.MustConnect(g3, "A", mid1)
	m.MustConnect(g3, "B", mid2)
	m.MustConnect(g3, "Z", m.Net("z"))

	r, err := Analyze(m, sta.Options{}, DefaultModel(stdcells.CornerSpread))
	if err != nil {
		t.Fatal(err)
	}
	out := r.Arrivals[r.G.PortID("z")]
	// The deeper path dominates the mean.
	buf := lib.MustCell("BUFX1").Arcs[0].Rise.Best
	inv := lib.MustCell("INVX1").Arcs[0].Rise.Best
	and := lib.MustCell("AND2X1").Arc("A", "Z").Rise.Best
	deeper := (buf + inv + and) * DefaultModel(stdcells.CornerSpread).GlobalMean
	if out.Mean < deeper-1e-9 {
		t.Fatalf("max lost the deeper path: %.4f < %.4f", out.Mean, deeper)
	}
	if _, err := r.ArrivalAt(g3, "NOPE"); err == nil {
		t.Fatal("expected error for unknown pin")
	}
}

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
