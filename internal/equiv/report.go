package equiv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"desync/internal/lint"
)

// Rule identifiers for the structured findings, in the style of the lint
// engine's NL-*/DS-* families.
const (
	RuleDeadlock = "EQ-DEAD"   // reachable marking with no enabled transition
	RuleSafety   = "EQ-SAFE"   // latch overwrite / data race
	RuleFlow     = "EQ-FLOW"   // capture off the synchronous schedule
	RuleBound    = "EQ-BOUND"  // search truncated by the marking budget
	RuleModel    = "EQ-MODEL"  // extraction diagnostics (stuck/unmodelled sources)
	RuleHazard   = "EQ-HAZARD" // excitation withdrawn without firing (SI hazard)
	RuleXVal     = "EQ-XVAL"   // simulation trace diverged from the model
)

// Violation is one disproved property with its counterexample: the firing
// sequence from reset and the enabling marking of the final event.
type Violation struct {
	Rule    string          `json:"rule"`
	Region  int             `json:"region,omitempty"`
	Sig     string          `json:"signal,omitempty"`
	Msg     string          `json:"msg"`
	Events  []TraceEvent    `json:"events,omitempty"`
	Marking map[string]bool `json:"marking,omitempty"`
	Gens    map[string]int  `json:"generations,omitempty"`
}

// Result is the outcome of one verification run. The three property flags
// are proofs only when the search completed (no violation, no truncation).
type Result struct {
	Design  string `json:"design"`
	Regions int    `json:"regions"`
	Signals int    `json:"signals"`

	States    int  `json:"states"`
	MaxStates int  `json:"maxStates"`
	Truncated bool `json:"truncated"`
	Reduced   bool `json:"reduced"`

	DeadlockFree   bool `json:"deadlockFree"`
	Safe           bool `json:"safe"`
	FlowEquivalent bool `json:"flowEquivalent"`

	Violation *Violation `json:"violation,omitempty"`
	Hazards   []string   `json:"hazards,omitempty"`

	Model *ModelInfo  `json:"model,omitempty"`
	XVal  *XValResult `json:"xval,omitempty"`
}

// ModelInfo summarizes extraction for the JSON report.
type ModelInfo struct {
	Findings []lint.Finding `json:"findings,omitempty"`
}

// Report folds the run into the lint engine's structured finding format,
// which is what the drdesync -equiv gate consumes.
func (r *Result) Report(modelFindings []lint.Finding) *lint.Report {
	rep := &lint.Report{}
	rep.Findings = append(rep.Findings, modelFindings...)
	if r.Violation != nil {
		rep.Findings = append(rep.Findings, lint.Finding{
			Rule: r.Violation.Rule, Severity: lint.Error, Module: r.Design,
			Net: r.Violation.Sig,
			Msg: fmt.Sprintf("%s (counterexample: %d events)", r.Violation.Msg, len(r.Violation.Events)),
		})
	}
	if r.Truncated {
		rep.Findings = append(rep.Findings, lint.Finding{
			Rule: RuleBound, Severity: lint.Warning, Module: r.Design,
			Msg: fmt.Sprintf("state space truncated at %d markings; properties verified only up to this bound", r.States),
		})
	}
	for _, h := range r.Hazards {
		rep.Findings = append(rep.Findings, lint.Finding{
			Rule: RuleHazard, Severity: lint.Warning, Module: r.Design, Msg: h,
		})
	}
	if r.XVal != nil && r.XVal.Divergence != nil {
		rep.Findings = append(rep.Findings, lint.Finding{
			Rule: RuleXVal, Severity: lint.Error, Module: r.Design,
			Net: r.XVal.Divergence.Net,
			Msg: fmt.Sprintf("simulated trace %d (seed %d) diverged from the model at t=%.3f ns on %s",
				r.XVal.Divergence.TraceIndex, r.XVal.Seed, r.XVal.Divergence.Time, r.XVal.Divergence.Net),
		})
	}
	rep.Sort()
	return rep
}

// Clean reports whether the run proved all three properties with no
// divergence and no truncation.
func (r *Result) Clean() bool {
	return r.Violation == nil && !r.Truncated &&
		(r.XVal == nil || r.XVal.Divergence == nil)
}

func mark(ok bool) string {
	if ok {
		return "proved"
	}
	return "NOT proved"
}

// WriteText renders the human report.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "equiv: %s: %d regions, %d signals, %d reachable markings", r.Design, r.Regions, r.Signals, r.States)
	if r.Reduced {
		fmt.Fprintf(w, " (reduced)")
	}
	fmt.Fprintln(w)
	if r.Truncated {
		fmt.Fprintf(w, "equiv: WARNING: truncated at the -max-states bound (%d); results hold only up to this bound\n", r.MaxStates)
	}
	fmt.Fprintf(w, "  deadlock-freedom: %s\n", mark(r.DeadlockFree))
	fmt.Fprintf(w, "  phase safety:     %s\n", mark(r.Safe))
	fmt.Fprintf(w, "  flow equivalence: %s\n", mark(r.FlowEquivalent))
	for _, h := range r.Hazards {
		fmt.Fprintf(w, "  hazard: %s\n", h)
	}
	if v := r.Violation; v != nil {
		fmt.Fprintf(w, "  %s: %s\n", v.Rule, v.Msg)
		fmt.Fprintf(w, "  counterexample (%d events from reset):\n", len(v.Events))
		for _, e := range v.Events {
			fmt.Fprintf(w, "    %s %s\n", e.Net, edge(e.Value))
		}
		if len(v.Marking) > 0 {
			fmt.Fprintf(w, "  enabling marking:\n")
			names := make([]string, 0, len(v.Marking))
			for n := range v.Marking {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				val := 0
				if v.Marking[n] {
					val = 1
				}
				fmt.Fprintf(w, "    %s = %d\n", n, val)
			}
			gens := make([]string, 0, len(v.Gens))
			for n := range v.Gens {
				gens = append(gens, n)
			}
			sort.Strings(gens)
			for _, n := range gens {
				fmt.Fprintf(w, "    gen %s = %d\n", n, v.Gens[n])
			}
		}
	}
	if x := r.XVal; x != nil {
		if x.Divergence == nil {
			fmt.Fprintf(w, "  cross-validation: %d simulated traces, %d events accepted (seed %d)\n", x.Traces, x.Events, x.Seed)
		} else {
			fmt.Fprintf(w, "  cross-validation: trace %d DIVERGED at t=%.3f ns on %s (seed %d)\n",
				x.Divergence.TraceIndex, x.Divergence.Time, x.Divergence.Net, x.Seed)
		}
	}
}

func edge(v bool) string {
	if v {
		return "+"
	}
	return "-"
}

// WriteJSON renders the machine report.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
