package pnr

import (
	"context"
	"testing"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/netlist"
	"desync/internal/sta"
	"desync/internal/stdcells"
)

// §4.7 in-place optimization: resizing drive strengths on the worst paths
// shortens the critical path without restructuring any logic.
func TestResizeForTiming(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	cellsBefore := len(d.Top.Insts)
	netsBefore := len(d.Top.Nets)
	rep, err := ResizeForTiming(d, sta.Options{Corner: netlist.Worst}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Upsized == 0 {
		t.Fatal("nothing resized")
	}
	if rep.After >= rep.Before {
		t.Fatalf("critical path did not improve: %.4f -> %.4f", rep.Before, rep.After)
	}
	if rep.AreaAfter <= rep.AreaBefore {
		t.Fatal("stronger drives must cost area")
	}
	// Structure untouched: same cells, same nets, only cell bindings moved.
	if len(d.Top.Insts) != cellsBefore || len(d.Top.Nets) != netsBefore {
		t.Fatal("resize restructured the netlist")
	}
	if errs := d.Top.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	// The design still computes after resizing: the simulator sees only
	// faster cells of the same function (spot check via STA re-run).
	g, err := sta.Build(d.Top, sta.Options{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Analyze().WorstEndpointArrival(); got != rep.After {
		t.Fatalf("report inconsistent with timing: %.4f vs %.4f", got, rep.After)
	}
}

// Resizing applies to the controller network too — size-only cells may be
// sized (§4.6.2).
func TestResizeRespectsDesynchronizedNetlist(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	cres, err := core.Desynchronize(context.Background(), d, core.Options{Period: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ResizeForTiming(d, sta.Options{Corner: netlist.Worst, Disabled: cres.DisabledArcMap()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.After > rep.Before {
		t.Fatal("resize made the desynchronized design worse")
	}
	if errs := d.Top.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
}
