package twophase

import (
	"fmt"
	"sort"
	"strings"

	"desync/internal/ctrlnet"
	"desync/internal/netlist"
)

// Network is the two-phase generator structure as derived from a netlist —
// names and pin connectivity only, no flow state — so the same extraction
// works on a freshly generated design and on one re-read from Verilog.
// It deliberately shares no code with the generate stage: the whole point
// of the cross-check is that the two views are produced independently.
type Network struct {
	// Regions lists the regions with a complete distribution pair, sorted.
	Regions []int
	// RingLevels, Nov1Levels and Nov2Levels are the observed chain depths.
	RingLevels, Nov1Levels, Nov2Levels int
	// Phi1 and Phi2 are the splitter output net names ("" when missing).
	Phi1, Phi2 string
	// RingClosed reports the ring topology: the chain's first stage taps
	// the source NOR's output and its last stage drives the feedback pin.
	RingClosed bool
	// CrossCoupled reports the splitter topology: each NOR's feedback pin
	// is the opposite phase through its non-overlap chain.
	CrossCoupled bool
	// Wired marks regions whose distribution buffers tap the phase roots
	// on their inputs and drive a net on their outputs.
	Wired map[int]bool
}

// chainLen counts the stages of one symmetric chain by name, returning the
// first and last stage instances for topology checks.
func chainLen(m *netlist.Module, prefix string) (n int, first, last *netlist.Inst) {
	for i := 1; ; i++ {
		in := m.Inst(fmt.Sprintf("%s/b%d", prefix, i))
		if in == nil {
			return i - 1, first, last
		}
		if i == 1 {
			first = in
		}
		last = in
	}
}

// chainSpans reports whether a chain runs from net `from` into net `to`.
func chainSpans(first, last *netlist.Inst, from, to *netlist.Net) bool {
	return first != nil && last != nil &&
		first.Conn("A") == from && last.Conn("Z") == to
}

// Derive extracts the generator structure from the module. A module with
// no generator yields an empty Network (nil Phi nets, no regions); Diff
// then reports every absence against the claim.
func Derive(m *netlist.Module) *Network {
	n := &Network{Wired: map[int]bool{}}

	src := m.Inst(ctrlnet.TPSrcName)
	p1 := m.Inst(ctrlnet.TPPhase1Name)
	p2 := m.Inst(ctrlnet.TPPhase2Name)

	var ringFirst, ringLast, nov1First, nov1Last, nov2First, nov2Last *netlist.Inst
	n.RingLevels, ringFirst, ringLast = chainLen(m, ctrlnet.TPRingPrefix)
	n.Nov1Levels, nov1First, nov1Last = chainLen(m, ctrlnet.TPNov1Prefix)
	n.Nov2Levels, nov2First, nov2Last = chainLen(m, ctrlnet.TPNov2Prefix)

	if src != nil {
		n.RingClosed = chainSpans(ringFirst, ringLast, src.Conn("Z"), src.Conn("B"))
	}
	var phi1, phi2 *netlist.Net
	if p1 != nil {
		phi1 = p1.Conn("Z")
		if phi1 != nil {
			n.Phi1 = phi1.Name
		}
	}
	if p2 != nil {
		phi2 = p2.Conn("Z")
		if phi2 != nil {
			n.Phi2 = phi2.Name
		}
	}
	if p1 != nil && p2 != nil {
		n.CrossCoupled = chainSpans(nov1First, nov1Last, phi1, p2.Conn("B")) &&
			chainSpans(nov2First, nov2Last, phi2, p1.Conn("B"))
	}

	// Distribution: collect each region's buffer pair by name and check it
	// taps the phase roots.
	type pair struct{ tpm, tps *netlist.Inst }
	dist := map[int]*pair{}
	for _, in := range m.Insts {
		g, ok := ctrlnet.Region(in.Name)
		if !ok {
			continue
		}
		switch in.Name {
		case ctrlnet.TPDistName(g, true):
			p := dist[g]
			if p == nil {
				p = &pair{}
				dist[g] = p
			}
			p.tpm = in
		case ctrlnet.TPDistName(g, false):
			p := dist[g]
			if p == nil {
				p = &pair{}
				dist[g] = p
			}
			p.tps = in
		}
	}
	for g, p := range dist {
		if p.tpm == nil || p.tps == nil {
			continue
		}
		n.Regions = append(n.Regions, g)
		n.Wired[g] = phi1 != nil && phi2 != nil &&
			p.tpm.Conn("A") == phi1 && p.tpm.Conn("Z") != nil &&
			p.tps.Conn("A") == phi2 && p.tps.Conn("Z") != nil
	}
	sort.Ints(n.Regions)
	return n
}

// Diff cross-checks the generate stage's claim against the derived
// network, in the same vocabulary as the desync backend's ctrlnet.Diff.
// An empty result means the netlist structurally realizes exactly what
// the flow reported.
func Diff(c *Claim, n *Network) []ctrlnet.Mismatch {
	var out []ctrlnet.Mismatch
	miss := func(g int, format string, args ...any) {
		out = append(out, ctrlnet.Mismatch{Region: g, What: fmt.Sprintf(format, args...)})
	}
	if !equalInts(c.Regions, n.Regions) {
		miss(-1, "claimed regions %v, netlist has %v", c.Regions, n.Regions)
		return out // per-region checks would only cascade noise
	}
	if n.RingLevels != c.RingLevels {
		miss(-1, "claimed %d ring levels, netlist has %d", c.RingLevels, n.RingLevels)
	}
	if !n.RingClosed {
		miss(-1, "ring oscillator loop is not closed through the source NOR")
	}
	if n.Nov1Levels != c.NovLevels || n.Nov2Levels != c.NovLevels {
		miss(-1, "claimed %d non-overlap levels, netlist has %d/%d",
			c.NovLevels, n.Nov1Levels, n.Nov2Levels)
	}
	if !n.CrossCoupled {
		miss(-1, "phase splitter is not cross-coupled through the non-overlap chains")
	}
	if n.Phi1 == n.Phi2 {
		miss(-1, "phi1 and phi2 resolve to the same net %q", n.Phi1)
	}
	for _, g := range c.Regions {
		if !n.Wired[g] {
			miss(g, "distribution pair does not tap the phase roots")
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsGeneratorInst reports whether an instance belongs to the two-phase
// network: the generator core by name, or a region's distribution buffer.
func IsGeneratorInst(name string) bool {
	if ctrlnet.IsTPGenName(name) {
		return true
	}
	if g, ok := ctrlnet.Region(name); ok {
		return name == ctrlnet.TPDistName(g, true) || name == ctrlnet.TPDistName(g, false) ||
			strings.HasPrefix(name, ctrlnet.TPDistName(g, true)+"/") ||
			strings.HasPrefix(name, ctrlnet.TPDistName(g, false)+"/")
	}
	return false
}
