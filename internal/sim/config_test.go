package sim

import (
	"errors"
	"strings"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// buildRingOsc wires an odd-inversion ring behind an enable gate: once en
// goes high the loop oscillates forever, generating an unbounded event
// stream — the shape of run the event budget and the Interrupt hook exist
// to bound.
func buildRingOsc(t *testing.T) *netlist.Module {
	t.Helper()
	lib := hs()
	m := netlist.NewModule("ring")
	m.AddPort("en", netlist.In)
	loop := m.AddNet("loop")
	fb := m.AddNet("fb")
	g := m.AddInst("g", lib.MustCell("NAND2X1"))
	m.MustConnect(g, "A", m.Net("en"))
	m.MustConnect(g, "B", fb)
	m.MustConnect(g, "Z", loop)
	inv := m.AddInst("inv", lib.MustCell("BUFX2"))
	m.MustConnect(inv, "A", loop)
	m.MustConnect(inv, "Z", fb)
	return m
}

// TestMaxEventsTightened: a unit test can shrink the oscillation budget far
// below DefaultMaxEvents through the config instead of waiting out 50M
// events.
func TestMaxEventsTightened(t *testing.T) {
	m := buildRingOsc(t)
	s, err := New(m, Config{Corner: netlist.Worst, MaxEvents: 200})
	if err != nil {
		t.Fatal(err)
	}
	// en=0 forces the NAND high, flushing the X out of the loop; raising en
	// then lets it oscillate.
	s.Drive("en", logic.L, 0)
	s.Drive("en", logic.H, 1)
	err = s.Run(1e9)
	if err == nil || !strings.Contains(err.Error(), "event budget") {
		t.Fatalf("tightened MaxEvents did not trip: %v", err)
	}
}

// TestInterruptHookAborts: the Interrupt hook is polled on the event stream
// and its error aborts Run — the mechanism scenario sweeps use for
// wall-clock deadlines and context cancellation inside a single run.
func TestInterruptHookAborts(t *testing.T) {
	m := buildRingOsc(t)
	stop := errors.New("deadline exceeded")
	polls := 0
	s, err := New(m, Config{
		Corner:         netlist.Worst,
		InterruptEvery: 64,
		Interrupt: func() error {
			polls++
			if polls >= 3 {
				return stop
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Drive("en", logic.L, 0)
	s.Drive("en", logic.H, 1)
	err = s.Run(1e9)
	if !errors.Is(err, stop) {
		t.Fatalf("interrupt error not surfaced: %v", err)
	}
	if polls != 3 {
		t.Fatalf("interrupt polled %d times, want 3", polls)
	}
	if s.Events() > 3*64 {
		t.Fatalf("run kept going after interrupt: %d events", s.Events())
	}
}

// TestMaxDiagsFromConfig: the per-run diagnostic bound moves with
// Config.MaxDiags (WatchdogConfig.MaxDiags = 0 defers to it).
func TestMaxDiagsFromConfig(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("g", netlist.In)
	m.AddPort("d", netlist.In)
	q := m.AddNet("q")
	la := m.AddInst("la", lib.MustCell("LATQX1"))
	m.MustConnect(la, "G", m.Net("g"))
	m.MustConnect(la, "D", m.Net("d"))
	m.MustConnect(la, "Q", q)

	run := func(maxDiags int) []Diagnostic {
		s, err := New(m, Config{Corner: netlist.Worst, MaxDiags: maxDiags})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Watch(WatchdogConfig{XCaptureAfter: 0}); err != nil {
			t.Fatal(err)
		}
		// Repeatedly close the latch while D is still X: every closing edge
		// captures X past the boot threshold.
		for i := 0; i < 8; i++ {
			s.Drive("g", logic.H, float64(2*i+1))
			s.Drive("g", logic.L, float64(2*i+2))
		}
		if err := s.Run(100); err != nil {
			t.Fatal(err)
		}
		return s.Diagnostics()
	}
	if got := run(2); len(got) != 2 {
		t.Fatalf("MaxDiags=2 recorded %d diagnostics", len(got))
	}
	if got := run(0); len(got) != 8 {
		t.Fatalf("default MaxDiags recorded %d diagnostics, want all 8", len(got))
	}
}
