package expt

import (
	"context"
	"testing"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/designs"
	"desync/internal/stdcells"
)

// TestScalePipelineSmoke pushes a small pipeline through the full scaling
// row — build, export, re-import, hash, validate, flow, derive — and checks
// every stage actually ran. The 100k wall-clock guard lives in `make scale`;
// this keeps the row's plumbing covered by the ordinary test suite.
func TestScalePipelineSmoke(t *testing.T) {
	row, err := ScalePipeline(context.Background(), 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Insts < row.Target/2 || row.Insts > row.Target*2 {
		t.Fatalf("generated %d instances for target %d", row.Insts, row.Target)
	}
	if row.Flow == 0 || row.Import == 0 || row.Derive == 0 {
		t.Fatalf("unmeasured stages in row: %+v", row)
	}
	for _, stage := range []string{core.StageSubstitute, core.StageSize, core.StageGenerate} {
		if _, ok := row.Stages[stage]; !ok {
			t.Fatalf("flow never reported stage %q (got %v)", stage, row.SortedStageNames())
		}
	}
}

// BenchmarkNetlistDerive100k is the scaling drift guard `make check` runs:
// a fresh control-network derivation over a desynchronized 100k-instance
// pipeline. Before the prefix-indexed derivation this walked every instance
// once per region and took seconds; a regression back to that shape shows
// up as an order-of-magnitude jump here.
func BenchmarkNetlistDerive100k(b *testing.B) {
	cfg := ScalePipelineCfg(100000)
	d, err := designs.BuildPipeline(stdcells.New(stdcells.HighSpeed), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.Desynchronize(context.Background(), d, core.Options{
		Period: 2.0, ManualGroups: true,
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := ctrlnet.DeriveFresh(d.Top)
		if n.Empty() {
			b.Fatal("derived an empty control network")
		}
	}
}
