// Package netlist defines the in-memory representation of technology
// libraries and gate-level designs used by every stage of the
// desynchronization flow: library cells with functions and timing, and flat
// or hierarchical netlists of instances connected by nets.
package netlist

import (
	"fmt"

	"desync/internal/logic"
)

// PinDir is the direction of a cell or module pin.
type PinDir uint8

// Pin directions.
const (
	In PinDir = iota
	Out
	InOut
)

// String returns the Verilog keyword for the direction.
func (d PinDir) String() string {
	switch d {
	case In:
		return "input"
	case Out:
		return "output"
	}
	return "inout"
}

// PinClass describes the role a pin plays on a sequential or special cell.
// Combinational data pins use ClassData.
type PinClass uint8

// Pin classes.
const (
	ClassData       PinClass = iota
	ClassClock               // FF clock / trigger
	ClassEnable              // latch enable
	ClassAsyncSet            // asynchronous set (active high after normalization)
	ClassAsyncReset          // asynchronous reset
	ClassScanIn              // scan data in
	ClassScanEnable          // scan enable
	ClassOutput              // data output (Q)
	ClassOutputN             // inverted data output (QN)
)

// PinDef describes one pin of a library cell.
type PinDef struct {
	Name  string
	Dir   PinDir
	Class PinClass
	Cap   float64 // input pin capacitance in pF (load model for timing)
}

// CellKind is the coarse classification of a library cell, mirroring the
// "type" column of the paper's gatefile (§3.1.1).
type CellKind uint8

// Cell kinds.
const (
	KindComb  CellKind = iota // combinational gate
	KindFF                    // edge-triggered flip-flop
	KindLatch                 // level-sensitive latch
	KindCElem                 // C-Muller (rendezvous) element
	KindGC                    // generalized C element (set/reset functions)
	KindTie                   // constant driver (TIE0/TIE1)
)

// String names the cell kind as in the gatefile.
func (k CellKind) String() string {
	switch k {
	case KindComb:
		return "comb"
	case KindFF:
		return "ff"
	case KindLatch:
		return "latch"
	case KindCElem:
		return "celem"
	case KindGC:
		return "gc"
	case KindTie:
		return "tie"
	}
	return "?"
}

// Delay is a pin-to-pin propagation delay in nanoseconds at the two library
// corners. The best corner (fast process, high voltage, low temperature) is
// index 0; the worst corner is index 1. The paper's library has no typical
// corner (§5 footnote), and neither does ours.
type Delay struct {
	Best, Worst float64
}

// At returns the delay at the given corner.
func (d Delay) At(c Corner) float64 {
	if c == Best {
		return d.Best
	}
	return d.Worst
}

// Scale returns the delay multiplied by k at both corners.
func (d Delay) Scale(k float64) Delay { return Delay{d.Best * k, d.Worst * k} }

// Corner selects a library characterization corner.
type Corner uint8

// The two characterized corners.
const (
	Best  Corner = 0
	Worst Corner = 1
)

// String names the corner.
func (c Corner) String() string {
	if c == Best {
		return "best"
	}
	return "worst"
}

// TimingArc is a combinational propagation arc from an input pin to an
// output pin with separate rise and fall delays (asymmetric delay elements
// rely on the distinction, §3.1.4).
type TimingArc struct {
	From, To   string
	Rise, Fall Delay // delay to a rising / falling transition of To
}

// SeqSpec describes the sequential behaviour of a flip-flop or latch cell in
// enough detail for simulation and for the flip-flop substitution rules of
// §3.1.2: the next-state function (which already folds in scan muxing,
// synchronous set/reset and clock gating), the control pins, and optional
// asynchronous set/reset.
type SeqSpec struct {
	Next          *logic.Expr // next-state function over input pin names
	ClockPin      string      // KindFF: rising-edge trigger; KindLatch: transparent-high enable
	AsyncSet      string      // pin forcing Q=1 immediately ("" if none)
	AsyncReset    string      // pin forcing Q=0 immediately ("" if none)
	AsyncSetLow   bool        // AsyncSet pin is active low
	AsyncResetLow bool        // AsyncReset pin is active low
	ScanIn        string      // scan data pin ("" if not a scan cell)
	ScanEnable    string      // scan enable pin
	ClockGate     string      // clock-gating enable pin CEN ("" if none); clock is effective only while high
	Q             string      // data output pin
	QN            string      // inverted output pin ("" if none)
}

// GCSpec describes a generalized C element: the output rises when Set
// evaluates true, falls when Reset evaluates true, and holds otherwise. A
// plain C-Muller element is the special case Set = AND(inputs),
// Reset = AND(!inputs).
type GCSpec struct {
	Set, Reset *logic.Expr
	Q          string
}

// CellDef is one library cell: its interface, function, physical properties
// and timing. Delay and power numbers come from the Liberty view
// (internal/liberty) or from the built-in libraries (internal/stdcells).
type CellDef struct {
	Name string
	Kind CellKind
	Pins []PinDef

	Area    float64 // µm²
	Leakage Delay   // leakage power in µW at best/worst corner (reuses Delay as a per-corner pair)
	Energy  float64 // dynamic energy per output transition, pJ

	// Functions maps each output pin of a combinational cell to its boolean
	// function over input pin names. Sequential cells instead use Seq; C
	// elements use GC.
	Functions map[string]*logic.Expr
	Seq       *SeqSpec
	GC        *GCSpec

	Arcs  []TimingArc
	Setup Delay // setup requirement of sequential cells (data before clock/enable closing edge)
	Hold  Delay // hold requirement

	pinIdx map[string]int
}

// Pin returns the definition of the named pin, or nil.
func (c *CellDef) Pin(name string) *PinDef {
	if c.pinIdx == nil {
		c.pinIdx = make(map[string]int, len(c.Pins))
		for i := range c.Pins {
			c.pinIdx[c.Pins[i].Name] = i
		}
	}
	if i, ok := c.pinIdx[name]; ok {
		return &c.Pins[i]
	}
	return nil
}

// Inputs returns the names of all input pins in declaration order.
func (c *CellDef) Inputs() []string {
	var out []string
	for _, p := range c.Pins {
		if p.Dir == In {
			out = append(out, p.Name)
		}
	}
	return out
}

// Outputs returns the names of all output pins in declaration order.
func (c *CellDef) Outputs() []string {
	var out []string
	for _, p := range c.Pins {
		if p.Dir == Out {
			out = append(out, p.Name)
		}
	}
	return out
}

// IsSequential reports whether the cell stores state (FF, latch, C element).
func (c *CellDef) IsSequential() bool {
	switch c.Kind {
	case KindFF, KindLatch, KindCElem, KindGC:
		return true
	}
	return false
}

// IsBufferLike reports whether the cell is a buffer or inverter: exactly one
// input, one output, and the function is the input or its negation. Logic
// cleaning (§3.2.2) removes such cells before grouping.
func (c *CellDef) IsBufferLike() (inverting, ok bool) {
	if c.Kind != KindComb {
		return false, false
	}
	ins, outs := c.Inputs(), c.Outputs()
	if len(ins) != 1 || len(outs) != 1 {
		return false, false
	}
	f := c.Functions[outs[0]]
	if f == nil {
		return false, false
	}
	switch {
	case f.Op == logic.OpVar && f.Name == ins[0]:
		return false, true
	case f.Op == logic.OpNot && f.Child[0].Op == logic.OpVar && f.Child[0].Name == ins[0]:
		return true, true
	}
	return false, false
}

// Arc returns the timing arc from input pin from to output pin to, or nil.
func (c *CellDef) Arc(from, to string) *TimingArc {
	for i := range c.Arcs {
		if c.Arcs[i].From == from && c.Arcs[i].To == to {
			return &c.Arcs[i]
		}
	}
	return nil
}

// MaxDelay returns the largest rise/fall delay of any arc at the corner;
// used for quick cell-level estimates.
func (c *CellDef) MaxDelay(corner Corner) float64 {
	var m float64
	for _, a := range c.Arcs {
		if d := a.Rise.At(corner); d > m {
			m = d
		}
		if d := a.Fall.At(corner); d > m {
			m = d
		}
	}
	return m
}

// Library is a set of cells plus identification of the technology node and
// variant (High-Speed vs Low-Leakage, §5).
type Library struct {
	Name    string
	Variant string // "HS" or "LL"
	Cells   map[string]*CellDef
}

// NewLibrary returns an empty library.
func NewLibrary(name, variant string) *Library {
	return &Library{Name: name, Variant: variant, Cells: map[string]*CellDef{}}
}

// Add inserts the cell, panicking on duplicate names (library construction
// is programmatic; a duplicate is a programming error).
func (l *Library) Add(c *CellDef) *CellDef {
	if _, dup := l.Cells[c.Name]; dup {
		panic(fmt.Sprintf("netlist: duplicate cell %q in library %s", c.Name, l.Name))
	}
	l.Cells[c.Name] = c
	return c
}

// Cell returns the named cell or an error.
func (l *Library) Cell(name string) (*CellDef, error) {
	c, ok := l.Cells[name]
	if !ok {
		return nil, fmt.Errorf("netlist: library %s has no cell %q", l.Name, name)
	}
	return c, nil
}

// MustCell returns the named cell, panicking if absent.
func (l *Library) MustCell(name string) *CellDef {
	c, err := l.Cell(name)
	if err != nil {
		panic(err)
	}
	return c
}
