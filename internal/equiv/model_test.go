package equiv

import (
	"context"
	"testing"

	"desync/internal/expt"
	"desync/internal/lint"
	"desync/internal/netlist"
)

// mustExplore runs an uncancelled exploration, failing the test on the
// (impossible without cancellation) error path.
func mustExplore(t testing.TB, m *Model, opts ExploreOptions) *Result {
	t.Helper()
	res, err := m.Explore(context.Background(), opts)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	return res
}

// dlxModule runs the full desynchronization flow on a fresh DLX and returns
// the desynchronized top module. Each caller gets its own netlist so
// mutation tests cannot contaminate each other.
func dlxModule(t *testing.T) *netlist.Module {
	t.Helper()
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatalf("DLX flow: %v", err)
	}
	return f.Desync.Top
}

// TestDLXClean is the end-to-end proof the issue asks for: the flow's DLX
// output model-checks clean — deadlock-free, phase-safe and flow
// equivalent — within the default state budget.
func TestDLXClean(t *testing.T) {
	m, err := FromModule(dlxModule(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Findings {
		if f.Severity == lint.Error {
			t.Errorf("model extraction error finding: %s %s %s", f.Rule, f.Net, f.Msg)
		}
	}
	if len(m.Regions) != 4 {
		t.Fatalf("DLX regions = %v, want 4", m.Regions)
	}
	res := mustExplore(t, m, ExploreOptions{})
	if !res.Clean() {
		t.Fatalf("DLX not clean: %+v (truncated=%v)", res.Violation, res.Truncated)
	}
	if !res.DeadlockFree || !res.Safe || !res.FlowEquivalent {
		t.Fatalf("DLX verdicts: deadlock-free=%v safe=%v flow=%v",
			res.DeadlockFree, res.Safe, res.FlowEquivalent)
	}
	if res.States < 1000 {
		t.Fatalf("suspiciously small reachable space: %d markings", res.States)
	}
	t.Logf("DLX: %d regions, %d signals, %d markings, %d hazard notes",
		res.Regions, res.Signals, res.States, len(res.Hazards))
}

// TestDLXFullPrefixAgrees bounds a full-interleaving search (which cannot
// finish on the DLX) and checks the partial-order reduction is not hiding a
// shallow violation: the unreduced prefix must be violation-free too.
func TestDLXFullPrefixAgrees(t *testing.T) {
	m, err := FromModule(dlxModule(t))
	if err != nil {
		t.Fatal(err)
	}
	res := mustExplore(t, m, ExploreOptions{NoReduce: true, MaxStates: 150_000})
	if res.Violation != nil {
		t.Fatalf("full interleaving found a violation the reduction missed: %+v", res.Violation)
	}
	if !res.Truncated {
		t.Logf("full search completed in %d states", res.States)
	}
}

// TestARMClean proves the three properties for the ARM case study in both
// reduced and full mode — the single-region network is small enough to
// enumerate completely, so it doubles as the reduction soundness check.
func TestARMClean(t *testing.T) {
	f, err := expt.RunARMFlow(false)
	if err != nil {
		t.Fatalf("ARM flow: %v", err)
	}
	m, err := FromModule(f.Desync.Top)
	if err != nil {
		t.Fatal(err)
	}
	red := mustExplore(t, m, ExploreOptions{})
	full := mustExplore(t, m, ExploreOptions{NoReduce: true})
	for name, res := range map[string]*Result{"reduced": red, "full": full} {
		if !res.Clean() {
			t.Fatalf("ARM %s not clean: %+v (truncated=%v)", name, res.Violation, res.Truncated)
		}
	}
	if red.States > full.States {
		t.Fatalf("reduced search (%d markings) larger than full (%d)", red.States, full.States)
	}
	t.Logf("ARM: %d regions, reduced %d / full %d markings", len(m.Regions), red.States, full.States)
}

// TestDLXCrossValidation checks the model accepts randomized simulator
// traces of the real netlist (seeded, so failures reproduce).
func TestDLXCrossValidation(t *testing.T) {
	mod := dlxModule(t)
	m, err := FromModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	xv, err := m.CrossValidate(context.Background(), mod, XValConfig{Traces: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if xv.Divergence != nil {
		t.Fatalf("model rejected a simulated trace: %+v", xv.Divergence)
	}
	if xv.Events == 0 {
		t.Fatal("cross-validation observed no visible events")
	}
	t.Logf("cross-validation accepted %d visible events over %d traces", xv.Events, xv.Traces)
}

// TestStuckAckCaughtFormally injects the fault-campaign's stuck-at on an
// acknowledge net — the master acknowledge output is cut, so G2 never acks
// its predecessors — and checks the model catches it purely formally, with
// a concrete counterexample trace and no simulation.
func TestStuckAckCaughtFormally(t *testing.T) {
	mod := dlxModule(t)
	ai := mod.Inst("G2_Mctrl/ai")
	if ai == nil {
		t.Fatal("G2_Mctrl/ai not found")
	}
	mod.Disconnect(ai, "Z")

	m, err := FromModule(mod)
	if err != nil {
		t.Fatal(err)
	}
	res := mustExplore(t, m, ExploreOptions{})
	if res.Violation == nil {
		t.Fatalf("stuck acknowledge not caught (states=%d truncated=%v)", res.States, res.Truncated)
	}
	if res.Violation.Rule != RuleDeadlock && res.Violation.Rule != RuleSafety {
		t.Fatalf("stuck acknowledge flagged as %s, want %s or %s",
			res.Violation.Rule, RuleDeadlock, RuleSafety)
	}
	if len(res.Violation.Events) == 0 {
		t.Fatal("violation has no counterexample trace")
	}
	t.Logf("caught as %s after %d states: %s", res.Violation.Rule, res.States, res.Violation.Msg)
}
