package designs

import (
	"fmt"
	"math/rand"

	"desync/internal/netlist"
)

// BuildARMLike generates the second case study of §5.3: an ARM966E-class
// 32-bit three-stage core — fetch, decode/register-read, execute/writeback
// — with a 16x32 register file, a 32-bit ALU, a barrel shifter, a 16x16
// multiplier and a small data memory. The paper's ARM was implemented on
// the Low-Leakage library, as a scan design, desynchronized as a single
// region (its internal architecture being too complex to group), and
// evaluated on area only; this generator mirrors that usage: every
// instance is pre-assigned to region 1 for the manual-grouping path.
//
// The instruction ROM is filled with a seeded pseudo-random program: the
// design computes continuously (for power runs) but carries no testbench
// semantics, as in the paper.
func BuildARMLike(lib *netlist.Library, seed int64) (_ *netlist.Design, err error) {
	defer recoverBuildErr("ARM", &err)
	b := NewBuilder("arm", lib)
	m := b.M
	clk := m.AddPort("clk", netlist.In).Net
	rstn := m.AddPort("rstn", netlist.In).Net
	watch := b.OutputBus("awatch", 8)

	const pcBits = 5
	rng := rand.New(rand.NewSource(seed))
	prog := make([]uint64, 1<<pcBits)
	for i := range prog {
		prog[i] = uint64(rng.Uint32())
	}

	// ---- Fetch ----
	pcD := b.NewBus("apc_d", pcBits)
	pc := b.RegBank("apc_r", pcD, clk, rstn, "apc_q")
	pc1 := b.Inc(pc)
	for i := range pcD {
		b.Gate("BUFX1", pc1[i], pcD[i])
	}
	instr := b.NewBus("afetch", 32)
	b.Rom(pc, prog, 32, instr)
	fd := b.RegBank("afd_r", instr, clk, rstn, "afd_q")

	// ---- Decode / register read ----
	op := Bus{fd[28], fd[29], fd[30], fd[31]}
	rd := Bus{fd[24], fd[25], fd[26], fd[27]}
	rs1 := Bus{fd[20], fd[21], fd[22], fd[23]}
	rs2 := Bus{fd[16], fd[17], fd[18], fd[19]}
	regQ := make([]Bus, 16)
	for r := 0; r < 16; r++ {
		regQ[r] = b.NewBus(fmt.Sprintf("ar%d_q", r), 32)
	}
	aVal := b.MuxTree(regQ, rs1)
	bVal := b.MuxTree(regQ, rs2)
	imm := make(Bus, 32)
	for i := 0; i < 16; i++ {
		imm[i] = fd[i]
	}
	for i := 16; i < 32; i++ {
		imm[i] = fd[15]
	}
	deOp := b.RegBank("ade_op_r", op, clk, rstn, "ade_op_q")
	deRd := b.RegBank("ade_rd_r", rd, clk, rstn, "ade_rd_q")
	deA := b.RegBank("ade_a_r", aVal, clk, rstn, "ade_a_q")
	deB := b.RegBank("ade_b_r", bVal, clk, rstn, "ade_b_q")
	deImm := b.RegBank("ade_imm_r", imm, clk, rstn, "ade_imm_q")

	// ---- Execute ----
	addOut := b.Adder(deA, deB, nil)
	subOut := b.Sub(deA, deB)
	andOut := b.BitwiseOp("AND2X1", deA, deB)
	orOut := b.BitwiseOp("OR2X1", deA, deB)
	xorOut := b.BitwiseOp("XOR2X1", deA, deB)
	shOut := b.barrel(deA, Bus(deB[:5]))
	mul16 := b.multiplier(Bus(deA[:8]), Bus(deB[:8]))
	mulOut := make(Bus, 32)
	copy(mulOut, mul16)
	for i := len(mul16); i < 32; i++ {
		mulOut[i] = b.Tie(0)
	}

	sel := func(opv int) *netlist.Net { return b.EqConst(deOp, uint64(opv)) }
	res := addOut
	res = b.MuxBus(res, subOut, sel(1), nil)
	res = b.MuxBus(res, andOut, sel(2), nil)
	res = b.MuxBus(res, orOut, sel(3), nil)
	res = b.MuxBus(res, xorOut, sel(4), nil)
	res = b.MuxBus(res, shOut, sel(5), nil)
	res = b.MuxBus(res, mulOut, sel(6), nil)
	res = b.MuxBus(res, deImm, sel(7), nil)

	// Data memory: ops 8 write, 9 read.
	memAddr := Bus(deA[:4])
	isSt := sel(8)
	isLd := sel(9)
	wsel := b.Decoder(memAddr)
	dmemQ := make([]Bus, 16)
	for w := 0; w < 16; w++ {
		we := b.And(isSt, wsel[w])
		q := b.NewBus(fmt.Sprintf("adm%d_q", w), 32)
		dd := b.MuxBus(q, deB, we, nil)
		for i := 0; i < 32; i++ {
			ff := m.AddInst(fmt.Sprintf("adm%d_r[%d]", w, i), lib.MustCell("DFFRQX1"))
			m.MustConnect(ff, "D", dd[i])
			m.MustConnect(ff, "CK", clk)
			m.MustConnect(ff, "RN", rstn)
			m.MustConnect(ff, "Q", q[i])
		}
		dmemQ[w] = q
	}
	rdata := b.MuxTree(dmemQ, memAddr)
	wb := b.MuxBus(res, rdata, isLd, nil)

	// Register write (every op except stores writes rd).
	wen := b.Not(isSt)
	rsel := b.Decoder(deRd)
	for r := 0; r < 16; r++ {
		we := b.And(wen, rsel[r])
		dd := b.MuxBus(regQ[r], wb, we, nil)
		for i := 0; i < 32; i++ {
			ff := m.AddInst(fmt.Sprintf("ar%d_r[%d]", r, i), lib.MustCell("DFFRQX1"))
			m.MustConnect(ff, "D", dd[i])
			m.MustConnect(ff, "CK", clk)
			m.MustConnect(ff, "RN", rstn)
			m.MustConnect(ff, "Q", regQ[r][i])
		}
	}
	for i := 0; i < 8; i++ {
		b.Gate("BUFX1", regQ[15][i], watch[i])
	}

	// Single desynchronization region, per the paper.
	for _, in := range m.Insts {
		in.Group = 1
	}

	d := &netlist.Design{Name: "arm", Top: m, Modules: map[string]*netlist.Module{"arm": m}, Lib: lib}
	if errs := m.Check(); len(errs) > 0 {
		return nil, fmt.Errorf("designs: ARM netlist broken: %v", errs[0])
	}
	return d, nil
}

// barrel builds a left barrel shifter: out = a << sh.
func (b *Builder) barrel(a, sh Bus) Bus {
	cur := a
	for lvl := 0; lvl < len(sh); lvl++ {
		shift := 1 << lvl
		shifted := make(Bus, len(a))
		for i := range a {
			if i < shift {
				shifted[i] = b.Tie(0)
			} else {
				shifted[i] = cur[i-shift]
			}
		}
		cur = b.MuxBus(cur, shifted, sh[lvl], nil)
	}
	return cur
}

// multiplier builds an unsigned multiplier from partial products reduced by
// a balanced adder tree (log-depth rather than a linear array, to keep the
// critical path realistic).
func (b *Builder) multiplier(a, c Bus) Bus {
	width := len(a) + len(c)
	var terms []Bus
	for i := range c {
		pp := make(Bus, width)
		for j := range pp {
			if j >= i && j-i < len(a) {
				pp[j] = b.And(a[j-i], c[i])
			} else {
				pp[j] = b.Tie(0)
			}
		}
		terms = append(terms, pp)
	}
	for len(terms) > 1 {
		var next []Bus
		for i := 0; i < len(terms); i += 2 {
			if i+1 == len(terms) {
				next = append(next, terms[i])
				continue
			}
			s := b.Adder(terms[i], terms[i+1], nil)
			next = append(next, s)
		}
		terms = next
	}
	return terms[0]
}
