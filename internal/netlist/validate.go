package netlist

import (
	"fmt"
	"slices"
	"strings"
)

// ValidateOptions tunes the invariant checker for mid-flow snapshots.
type ValidateOptions struct {
	// AllowUndriven permits nets with sinks but no driver: between flip-flop
	// substitution and controller insertion the latch-enable nets legally
	// wait for their driver.
	AllowUndriven bool
	// MaxErrors bounds the report (0 = 64). Validation is a diagnostic, not
	// a dump of every consequence of one broken link.
	MaxErrors int
}

// Validation rule tags. Each ValidationError carries one, so consumers
// (drlint wraps them as findings) can classify without parsing messages.
const (
	VRuleIndex     = "index"     // name index disagrees with the slices
	VRulePort      = "port"      // port binding broken or foreign
	VRuleInstKind  = "inst-kind" // instance without exactly one of cell/submodule
	VRuleConn      = "conn"      // connection to nil/foreign net or unknown pin
	VRuleDriver    = "driver"    // net/driver bookkeeping mismatch
	VRuleSink      = "sink"      // net/sink bookkeeping mismatch
	VRuleUndriven  = "undriven"  // net with sinks but no driver
	VRuleTruncated = "truncated" // report hit MaxErrors; Msg carries the count
)

// ValidationError is one structural invariant violation, tagged with the
// rule that fired so downstream tooling can classify it without string
// matching.
type ValidationError struct {
	Rule   string // one of the VRule* constants
	Module string
	Msg    string
}

// Error renders "module: message" like the old bare errors did.
func (e ValidationError) Error() string { return e.Module + ": " + e.Msg }

// Validate checks the module's structural invariants beyond what Check
// covers: the name indices agree with the slices, every connection is
// bidirectionally consistent (instance pin ↔ net driver/sink lists), pins
// exist on their cells, and nets referenced by instances belong to the
// module. It is run between desynchronization stages so a stage that
// corrupts the netlist is caught at its own boundary instead of surfacing
// as a wrong answer (or a panic) stages later.
//
// The common case — a module that is in fact clean — is allocation-free:
// a boolean scan over the record arrays using the module's epoch-mark
// scratch decides cleanliness, and the diagnostic pass (which builds maps
// and formats messages) runs only when some invariant is actually broken.
// When a clean baseline exists and only a bounded set of records has been
// mutated since (ECO splices, FF substitution windows), the scan is further
// scoped to the dirty records instead of the whole module.
//
// At most MaxErrors violations are reported; when more exist, the final
// entry is tagged VRuleTruncated and counts the suppressed remainder.
func (m *Module) Validate(opts ValidateOptions) []ValidationError {
	m.compact()
	v := &m.valid
	if v.ok && !v.overflow && (!v.allowUndriven || opts.AllowUndriven) {
		if m.modseq == v.seq {
			return nil // unchanged since the clean baseline
		}
		if m.incrementalClean(opts) {
			m.noteClean(opts)
			return nil
		}
	} else if m.cleanScan(opts.AllowUndriven) {
		m.noteClean(opts)
		return nil
	}
	errs := m.validateFull(opts)
	if len(errs) == 0 {
		m.noteClean(opts)
	} else {
		m.dropBaseline()
	}
	return errs
}

// nextEpoch advances the validator mark epoch, clearing stale marks on the
// (practically unreachable) uint32 wraparound.
func (m *Module) nextEpoch() uint32 {
	m.epoch++
	if m.epoch == 0 {
		for _, in := range m.Insts {
			for i := range in.conns {
				in.conns[i].mark = 0
			}
		}
		m.epoch = 1
	}
	return m.epoch
}

// netEndpointsClean checks one net's bookkeeping: the driver points back at
// a live connection, every sink resolves to a live connection on this net
// (stamping the entry's mark to catch the same PinRef listed twice), and —
// unless undriven nets are allowed — a net with sinks has a driver. Port
// sinks are appended to *portRefs for the caller's duplicate check.
func (m *Module) netEndpointsClean(n *Net, epoch uint32, allowUndriven bool, portRefs *[]PinRef) bool {
	if d := n.Driver; d.Inst != nil {
		if !m.containsInst(d.Inst) || d.Inst.Conn(d.Pin) != n {
			return false
		}
	}
	for _, s := range n.Sinks {
		if s.Inst == nil {
			*portRefs = append(*portRefs, s)
			continue
		}
		if !m.containsInst(s.Inst) {
			return false
		}
		e := s.Inst.connEntry(s.Pin)
		if e == nil || e.Net != n || e.mark == epoch {
			return false
		}
		e.mark = epoch
	}
	if !allowUndriven && len(n.Sinks) > 0 && !n.HasDriver() {
		return false
	}
	return true
}

// instConnClean checks one connection of an instance: the net is non-nil
// and belongs to the module, the pin exists on the cell or submodule, an
// output pin is recorded as the net's driver, and an input pin was resolved
// from some net's sink list during this pass (mark == epoch) — or, when
// markless is set (incremental scan, where clean nets are not swept), the
// net's sink list is searched directly.
func (m *Module) instConnClean(in *Inst, pc *PinConn, epoch uint32, markless bool) bool {
	if pc.Net == nil || !m.containsNet(pc.Net) {
		return false
	}
	var dir PinDir
	if in.Cell != nil {
		pd := in.Cell.Pin(pc.Pin)
		if pd == nil {
			return false
		}
		dir = pd.Dir
	} else {
		p := in.Sub.Port(pc.Pin)
		if p == nil {
			return false
		}
		dir = p.Dir
	}
	ref := PinRef{Inst: in, Pin: pc.Pin}
	if dir == Out {
		return pc.Net.Driver == ref
	}
	if markless {
		return slices.Contains(pc.Net.Sinks, ref)
	}
	return pc.mark == epoch
}

// dupPortRefs reports whether the collected port-sink references contain a
// duplicate (the same module port listed as a sink more than once, on one
// net or across nets). Sorts in place using the caller's scratch.
func dupPortRefs(refs []PinRef) bool {
	if len(refs) < 2 {
		return false
	}
	slices.SortFunc(refs, func(a, b PinRef) int { return strings.Compare(a.Pin, b.Pin) })
	for i := 1; i < len(refs); i++ {
		if refs[i].Pin == refs[i-1].Pin {
			return true
		}
	}
	return false
}

// cleanScan is the allocation-free full cleanliness check: true means the
// module would produce zero validation errors. Any anomaly returns false
// and the caller runs the diagnostic pass.
func (m *Module) cleanScan(allowUndriven bool) bool {
	if len(m.netByName) != len(m.Nets) || len(m.instByName) != len(m.Insts) {
		return false
	}
	for _, n := range m.Nets {
		if id, ok := m.netByName[n.Name]; !ok || m.netsByID[id] != n {
			return false
		}
	}
	for _, in := range m.Insts {
		if id, ok := m.instByName[in.Name]; !ok || m.instsByID[id] != in {
			return false
		}
		if (in.Cell == nil) == (in.Sub == nil) {
			return false
		}
	}
	for _, p := range m.Ports {
		if p.Net == nil || !m.containsNet(p.Net) {
			return false
		}
	}
	epoch := m.nextEpoch()
	portRefs := m.scratch.refs[:0]
	clean := true
	for _, n := range m.Nets {
		if !m.netEndpointsClean(n, epoch, allowUndriven, &portRefs) {
			clean = false
			break
		}
	}
	if clean && dupPortRefs(portRefs) {
		clean = false
	}
	m.scratch.refs = portRefs
	if !clean {
		return false
	}
	for _, in := range m.Insts {
		for i := range in.conns {
			if !m.instConnClean(in, &in.conns[i], epoch, false) {
				return false
			}
		}
	}
	return true
}

// incrementalClean rechecks only the records mutated since the clean
// baseline. Sound under the same contract as the ModSeq derivation caches:
// mutations go through the module's mutators (which record every touched
// record); a state corrupted by bypassing them is caught by the next full
// scan. A false negative here only costs a wasted diagnostic pass — the
// diagnostic pass, not this scan, decides what errors exist.
func (m *Module) incrementalClean(opts ValidateOptions) bool {
	v := &m.valid
	epoch := m.nextEpoch()
	portRefs := m.scratch.refs[:0]
	clean := true
	for _, id := range v.dirtyNets {
		n := m.NetByID(id)
		if n == nil {
			continue // removed since the baseline
		}
		if got, ok := m.netByName[n.Name]; !ok || got != id {
			clean = false
			break
		}
		if !m.netEndpointsClean(n, epoch, opts.AllowUndriven, &portRefs) {
			clean = false
			break
		}
	}
	if clean && dupPortRefs(portRefs) {
		clean = false
	}
	m.scratch.refs = portRefs
	if !clean {
		return false
	}
	for _, id := range v.dirtyInsts {
		in := m.InstByID(id)
		if in == nil {
			continue
		}
		if got, ok := m.instByName[in.Name]; !ok || got != id {
			return false
		}
		if (in.Cell == nil) == (in.Sub == nil) {
			return false
		}
		for i := range in.conns {
			if !m.instConnClean(in, &in.conns[i], epoch, true) {
				return false
			}
		}
	}
	// Ports can be rebound (ReplaceSinks) without a dedicated dirty list;
	// they are few, so recheck them all.
	for _, p := range m.Ports {
		if p.Net == nil || !m.containsNet(p.Net) {
			return false
		}
	}
	return true
}

// validateFull is the diagnostic pass: the original full-module algorithm,
// kept verbatim (message formats and rule tags unchanged) so a dirty module
// reports exactly what it always did.
func (m *Module) validateFull(opts ValidateOptions) []ValidationError {
	limit := opts.MaxErrors
	if limit <= 0 {
		limit = 64
	}
	var errs []ValidationError
	suppressed := 0
	report := func(rule, format string, args ...any) {
		if len(errs) < limit {
			errs = append(errs, ValidationError{Rule: rule, Module: m.Name, Msg: fmt.Sprintf(format, args...)})
		} else {
			suppressed++
		}
	}

	// Name indices agree with the slices.
	inNets := make(map[*Net]bool, len(m.Nets))
	for _, n := range m.Nets {
		inNets[n] = true
		if id, ok := m.netByName[n.Name]; !ok || m.netsByID[id] != n {
			report(VRuleIndex, "net %q missing from or mismatched in the name index", n.Name)
		}
	}
	if len(m.netByName) != len(m.Nets) {
		report(VRuleIndex, "net index has %d entries for %d nets", len(m.netByName), len(m.Nets))
	}
	inInsts := make(map[*Inst]bool, len(m.Insts))
	for _, in := range m.Insts {
		inInsts[in] = true
		if id, ok := m.instByName[in.Name]; !ok || m.instsByID[id] != in {
			report(VRuleIndex, "instance %q missing from or mismatched in the name index", in.Name)
		}
	}
	if len(m.instByName) != len(m.Insts) {
		report(VRuleIndex, "instance index has %d entries for %d instances", len(m.instByName), len(m.Insts))
	}

	// Ports bind to nets of this module.
	for _, p := range m.Ports {
		if p.Net == nil {
			report(VRulePort, "port %s has no net", p.Name)
			continue
		}
		if !inNets[p.Net] {
			report(VRulePort, "port %s bound to foreign net %q", p.Name, p.Net.Name)
		}
	}

	// Instance connections: pin exists, net belongs to the module, and the
	// net's driver/sink bookkeeping lists exactly this endpoint.
	sinkCount := map[PinRef]int{}
	for _, n := range m.Nets {
		for _, s := range n.Sinks {
			sinkCount[s]++
			if sinkCount[s] > 1 {
				report(VRuleSink, "net %s lists sink %s %d times", n.Name, s, sinkCount[s])
			}
		}
	}
	for _, in := range m.Insts {
		if (in.Cell == nil) == (in.Sub == nil) {
			report(VRuleInstKind, "instance %s must reference exactly one of cell and submodule", in.Name)
			continue
		}
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			if n == nil {
				report(VRuleConn, "%s/%s connected to nil net", in.Name, pin)
				continue
			}
			if !inNets[n] {
				report(VRuleConn, "%s/%s connected to foreign net %q", in.Name, pin, n.Name)
				continue
			}
			dir, err := m.pinDir(in, pin)
			if err != nil {
				report(VRuleConn, "%v", err)
				continue
			}
			ref := PinRef{Inst: in, Pin: pin}
			if dir == Out {
				if n.Driver != ref {
					report(VRuleDriver, "%s drives net %s but the net records driver %s", ref, n.Name, n.Driver)
				}
			} else if sinkCount[ref] == 0 {
				report(VRuleSink, "%s reads net %s but is not in its sink list", ref, n.Name)
			}
		}
	}

	// Net endpoints point back at real connections.
	for _, n := range m.Nets {
		if d := n.Driver; d.Inst != nil {
			if !inInsts[d.Inst] {
				report(VRuleDriver, "net %s driven by removed instance %s", n.Name, d.Inst.Name)
			} else if d.Inst.Conn(d.Pin) != n {
				report(VRuleDriver, "net %s records driver %s which is connected elsewhere", n.Name, d)
			}
		}
		for _, s := range n.Sinks {
			if s.Inst == nil {
				continue
			}
			if !inInsts[s.Inst] {
				report(VRuleSink, "net %s sinks removed instance %s", n.Name, s.Inst.Name)
			} else if s.Inst.Conn(s.Pin) != n {
				report(VRuleSink, "net %s records sink %s which is connected elsewhere", n.Name, s)
			}
		}
		if !opts.AllowUndriven && len(n.Sinks) > 0 && !n.HasDriver() {
			report(VRuleUndriven, "net %s has sinks but no driver", n.Name)
		}
	}
	if suppressed > 0 {
		errs = append(errs, ValidationError{
			Rule:   VRuleTruncated,
			Module: m.Name,
			Msg:    fmt.Sprintf("%d further validation errors suppressed (MaxErrors=%d)", suppressed, limit),
		})
	}
	return errs
}
