// Command repolint enforces repository-level coding conventions that plain
// `go vet` cannot express. It parses every non-test Go file under internal/
// and cmd/ (no type checking, stdlib go/ast only) and applies the rules
// below:
//
//	RL-PANIC    panic() is reserved for programmer-error guards in the small
//	            audited set of constructor/builder helpers below. Any panic in
//	            other non-test internal code must become an error return.
//	RL-RECOVER  recover() has exactly three audited jobs: the sweep's
//	            scenario quarantine (internal/sweep runQuarantined), the
//	            design builders' construction-panic translation
//	            (internal/designs recoverBuildErr), and the cmd main
//	            top-level guards. Anywhere else, a recover hides a bug; let
//	            it crash in tests and quarantine it at the audited boundary
//	            in production paths.
//	RL-STAGE    Every flowErr(...) call in internal/core must name its stage
//	            with a Stage* constant (or propagate an enclosing `stage`
//	            parameter), so FlowError.Stage is always machine-matchable.
//	RL-FLOW     In the flow driver (internal/core/flow.go, the shared stage
//	            skeleton), functions that return an error must return nil, a
//	            propagated error variable, or a flowErr(...) call — never a
//	            bare fmt.Errorf/errors.New. This is what guarantees
//	            core.StageOf works on every failure that escapes Convert.
//	RL-BACKEND  Staged flow errors are minted by the shared skeleton only:
//	            outside internal/core no file may build a core.FlowError
//	            composite literal (backends return plain errors; the skeleton
//	            wraps them with the stage it was running). And the backend
//	            registry stays inverted: internal/core must not import a
//	            backend package (backends import core and register themselves
//	            via RegisterBackend), and backend packages must not import
//	            each other.
//	RL-CTRLNET  The G<id>_ control-net naming convention has one owner:
//	            internal/ctrlnet. Outside it (and internal/handshake, which
//	            defines the instance-name grammar ctrlnet wraps), no file may
//	            build or parse those names by hand — neither "G%d_" format
//	            strings nor direct handshake.ControlRegion calls. Go through
//	            ctrlnet.Name/CtrlGate/Region instead, so a naming change stays
//	            a one-package change.
//	RL-OPTS     Exported functions and methods must not take more than four
//	            scalar configuration parameters (basic types: ints, floats,
//	            bools, strings). Past that, positional call sites stop being
//	            readable and every new knob is a breaking change; bundle the
//	            knobs into an options struct (the Options/Config pattern with
//	            documented zero values) instead.
//	RL-HTTPCTX  HTTP handlers — any function taking a *http.Request — must
//	            derive cancellation from the request via r.Context(), never
//	            mint a fresh root with context.Background()/context.TODO().
//	            A handler on a detached context keeps computing for clients
//	            that hung up and ignores server shutdown, which breaks the
//	            flow server's drain guarantee.
//	RL-NETID    Outside internal/netlist, no new map[string]*netlist.Net or
//	            map[string]*netlist.Inst: a string-keyed side table rebuilds
//	            a name index the module already maintains (Net/Inst lookups,
//	            dense NetID/InstID handles and the NetByID/InstByID tables)
//	            and puts per-record map hashing back on paths the SoA
//	            refactor took it off of. Small audited snapshots — e.g. one
//	            instance's pin bindings captured just before RemoveInst —
//	            live in the allowlist.
//	RL-MAPORDER Iterating a map with an order-dependent body (appending to a
//	            slice, printing, writing) leaks Go's randomized iteration
//	            order into output — the exact nondeterminism the flow's
//	            byte-identical-reports guarantee forbids. The canonical fix
//	            is collect-keys-then-sort; a loop immediately followed by a
//	            sort of what it collected is recognized and accepted. Sites
//	            where the order provably cannot escape are audited into the
//	            allowlist, never waved through silently. (Detection is
//	            syntactic: it sees maps declared or received in the same
//	            function, which is where the footgun lives.)
//
// Exit status is 1 when any finding is produced, 2 on usage/parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// panicAllowlist keys are "slash-relative-path:function" for the audited
// panic sites. These are all constructor or builder helpers whose contract
// is "misuse is a bug in the caller": duplicate-name registration, malformed
// generator parameters, and Must* wrappers.
var panicAllowlist = map[string]bool{
	"internal/stdcells/stdcells.go:New":      true, // library construction from vetted tables
	"internal/designs/blocks.go:Gate":        true, // builder arity guard
	"internal/designs/blocks.go:tree":        true, // empty reduction guard
	"internal/designs/blocks.go:MuxBus":      true, // width mismatch guard
	"internal/designs/blocks.go:MuxTree":     true, // empty tree guard
	"internal/designs/blocks.go:Adder":       true, // width mismatch guard
	"internal/netlist/design.go:AddNet":      true, // duplicate-name registration
	"internal/netlist/design.go:addInst":     true, // duplicate-name registration
	"internal/netlist/design.go:MustConnect": true,
	"internal/netlist/storage.go:EndBulk":    true, // unmatched Begin/EndBulk is a caller bug
	"internal/netlist/cell.go:Add":           true, // duplicate-cell registration
	"internal/netlist/cell.go:MustCell":      true,
	"internal/stg/stg.go:Initial":            true, // malformed built-in STG spec
	"internal/logic/expr.go:MustParseExpr":   true,
	"internal/sweep/journal.go:mustJSON":     true, // Must* wrapper; plain-struct marshal cannot fail
}

// recoverAllowlist keys are "slash-relative-path:function" for the audited
// recover sites: the sweep's scenario quarantine, the design builders'
// panic-to-error translation, and the top-level guard each cmd main wraps
// around its whole run. Widening a quarantine boundary is a reviewed change
// to this table, never a drive-by defer.
var recoverAllowlist = map[string]bool{
	"internal/sweep/run.go:runQuarantined":       true, // scenario quarantine
	"internal/designs/blocks.go:recoverBuildErr": true, // builder panic -> Build* error
	"internal/flowserv/run.go:runGuarded":        true, // job-server flow quarantine
	"cmd/sta/main.go:main":                       true,
	"cmd/dlxgen/main.go:main":                    true,
	"cmd/drdesync/main.go:main":                  true,
	"cmd/experiments/main.go:main":               true,
	"cmd/libprep/main.go:main":                   true,
}

// optsAllowlist exempts audited functions from RL-OPTS. The only legitimate
// exemptions are positional by nature: the DLX assembler helpers mirror the
// ISA's field order (op, rd, rs1, rs2, imm), which is a fixed encoding, not
// a set of tunables.
var optsAllowlist = map[string]bool{
	"internal/designs/dlx.go:Encode": true,
	"internal/designs/model.go:I":    true,
}

// netidAllowlist exempts audited sites from RL-NETID, keyed like the other
// allowlists. An entry means the map was reviewed and is not a module-scale
// name index: all current entries snapshot per-flip-flop pin->net bindings
// immediately before the substitution detaches and removes the flip-flops.
var netidAllowlist = map[string]bool{
	"internal/core/ffsub.go:SubstituteFlipFlops": true, // FF pin snapshots pre-detach
	"internal/core/ffsub.go:substituteOne":       true, // consumes the snapshot
	"internal/dft/dft.go:InsertScan":             true, // FF pin snapshot pre-removal
}

// mapOrderAllowlist exempts audited map-range loops from RL-MAPORDER, keyed
// like the other allowlists. An entry means the iteration order was reviewed
// and cannot reach any output: the collected values are order-insensitive
// (set union, error joining where any witness suffices) or sorted beyond the
// checker's one-block horizon.
var mapOrderAllowlist = map[string]bool{
	// closure seeds its worklist from a marking set; the saturation is a
	// fixpoint, so the queue's initial order cannot change the result set.
	"internal/equiv/xval.go:closure": true,
}

type finding struct {
	pos  token.Position
	rule string
	msg  string
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	n, err := run(root, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stdout, "repolint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// run checks the tree rooted at root and writes findings to w, returning
// how many were produced.
func run(root string, w io.Writer) (int, error) {
	var files []string
	for _, sub := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(filepath.Join(root, sub), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	sort.Strings(files)

	var all []finding
	fset := token.NewFileSet()
	for _, path := range files {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return 0, err
		}
		all = append(all, checkFile(fset, rel, f)...)
	}
	for _, fd := range all {
		fmt.Fprintf(w, "%s: %s: %s\n", fd.pos, fd.rule, fd.msg)
	}
	return len(all), nil
}

func checkFile(fset *token.FileSet, rel string, f *ast.File) []finding {
	var out []finding
	core := strings.HasPrefix(rel, "internal/core/")
	driver := rel == "internal/core/flow.go"

	// cmd/repolint is exempt: its finding messages name the forbidden pattern.
	if !strings.HasPrefix(rel, "internal/ctrlnet/") && !strings.HasPrefix(rel, "internal/handshake/") &&
		!strings.HasPrefix(rel, "cmd/repolint/") {
		out = append(out, checkCtrlnetOwnership(fset, f)...)
	}
	// internal/netlist owns the name indexes RL-NETID forbids rebuilding.
	if !strings.HasPrefix(rel, "internal/netlist/") && !strings.HasPrefix(rel, "cmd/repolint/") {
		out = append(out, checkNetIDMaps(fset, rel, f)...)
	}
	out = append(out, checkBackendBoundaries(fset, rel, f)...)

	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		// RL-PANIC: any panic call outside the audited allowlist.
		key := rel + ":" + fn.Name.Name
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch {
				case id.Name == "panic" && !panicAllowlist[key]:
					out = append(out, finding{fset.Position(call.Pos()), "RL-PANIC",
						fmt.Sprintf("panic in %s is not on the audited allowlist; return an error instead", fn.Name.Name)})
				case id.Name == "recover" && !recoverAllowlist[key]:
					// RL-RECOVER: recover only at the audited quarantine and
					// cmd-boundary sites. The key is the top-level declaration,
					// so a recover inside a deferred closure is still pinned to
					// the function that defers it.
					out = append(out, finding{fset.Position(call.Pos()), "RL-RECOVER",
						fmt.Sprintf("recover in %s is not an audited quarantine boundary; let the panic propagate or move it behind an allowlisted boundary", fn.Name.Name)})
				}
			}
			return true
		})
		if core {
			out = append(out, checkStageArgs(fset, fn.Body)...)
		}
		if driver {
			out = append(out, checkFlowReturns(fset, fn.Type, fn.Body)...)
		}
		if !optsAllowlist[key] {
			out = append(out, checkScalarParams(fset, fn)...)
		}
		out = append(out, checkHTTPCtx(fset, fn)...)
		if !mapOrderAllowlist[key] {
			out = append(out, checkMapOrder(fset, fn)...)
		}
	}
	return out
}

// flowErrorMintAllowlist exempts audited sites from RL-BACKEND's
// FlowError-mint check. The only legitimate exemptions are the drdesync
// CLI's post-flow gates: StageStatic and StageEquiv are driver-side stages
// that run after Convert returns, so the skeleton cannot wrap them — the
// gates mint their own staged errors to keep `failed during the %s stage`
// working for the whole run. Backend packages never qualify.
var flowErrorMintAllowlist = map[string]bool{
	"cmd/drdesync/static.go:staticGate": true,
	"cmd/drdesync/equiv.go:equivGate":   true,
}

// backendPackages lists every clocking-conversion backend package by import
// path. Adding a backend means adding its path here, which buys it both
// directions of the RL-BACKEND import check for free.
var backendPackages = []string{
	"desync/internal/twophase",
}

// checkBackendBoundaries enforces RL-BACKEND: the staged-error mint stays in
// the skeleton (no core.FlowError composite literal outside internal/core)
// and the backend registry stays inverted (internal/core imports no backend
// package; backend packages do not import each other).
func checkBackendBoundaries(fset *token.FileSet, rel string, f *ast.File) []finding {
	var out []finding
	inCore := strings.HasPrefix(rel, "internal/core/")
	ownPkg := ""
	for _, bp := range backendPackages {
		dir := strings.TrimPrefix(bp, "desync/") + "/"
		if strings.HasPrefix(rel, dir) {
			ownPkg = bp
		}
	}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		for _, bp := range backendPackages {
			if path != bp {
				continue
			}
			switch {
			case inCore:
				out = append(out, finding{fset.Position(imp.Pos()), "RL-BACKEND",
					fmt.Sprintf("internal/core must not import backend package %s; backends import core and register via RegisterBackend", bp)})
			case ownPkg != "" && bp != ownPkg:
				out = append(out, finding{fset.Position(imp.Pos()), "RL-BACKEND",
					fmt.Sprintf("backend package %s must not import fellow backend %s; shared vocabulary belongs in core, ctrlnet or handshake", ownPkg, bp)})
			}
		}
	}
	if inCore || strings.HasPrefix(rel, "cmd/repolint/") {
		return out
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || flowErrorMintAllowlist[rel+":"+fn.Name.Name] {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			sel, ok := cl.Type.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "core" && sel.Sel.Name == "FlowError" {
				out = append(out, finding{fset.Position(cl.Pos()), "RL-BACKEND",
					fmt.Sprintf("staged flow errors are minted by the core skeleton only; %s should return a plain error and let Convert wrap it with its stage", fn.Name.Name)})
			}
			return true
		})
	}
	return out
}

// checkNetIDMaps enforces RL-NETID: outside internal/netlist, a
// map[string]*netlist.Net or map[string]*netlist.Inst — as a type, a
// make() argument, a composite literal, a field or a parameter — rebuilds
// a name index the module already owns. Detection is syntactic over every
// MapType node; the allowlist key is the enclosing top-level declaration.
func checkNetIDMaps(fset *token.FileSet, rel string, f *ast.File) []finding {
	var out []finding
	for _, decl := range f.Decls {
		name := ""
		switch d := decl.(type) {
		case *ast.FuncDecl:
			name = d.Name.Name
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					name = s.Name.Name
				case *ast.ValueSpec:
					if len(s.Names) > 0 {
						name = s.Names[0].Name
					}
				}
			}
		}
		if netidAllowlist[rel+":"+name] {
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			mt, ok := n.(*ast.MapType)
			if !ok {
				return true
			}
			k, ok := mt.Key.(*ast.Ident)
			if !ok || k.Name != "string" {
				return true
			}
			star, ok := mt.Value.(*ast.StarExpr)
			if !ok {
				return true
			}
			sel, ok := star.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "netlist" || (sel.Sel.Name != "Net" && sel.Sel.Name != "Inst") {
				return true
			}
			out = append(out, finding{fset.Position(mt.Pos()), "RL-NETID",
				fmt.Sprintf("map[string]*netlist.%s in %s rebuilds a name index the module owns; use Net/Inst lookups or dense NetID/InstID-indexed slices, or audit the site into netidAllowlist", sel.Sel.Name, name)})
			return true
		})
	}
	return out
}

// mapIdents collects the identifiers the function visibly binds to map
// values: map-typed parameters, receivers, := / = assignments from make(map)
// or map composite literals, and var declarations of map type. Purely
// syntactic — a map arriving through a selector or a function result is
// invisible, which keeps the rule free of false positives at the cost of
// recall.
func mapIdents(fn *ast.FuncDecl) map[string]bool {
	maps := map[string]bool{}
	bind := func(names []*ast.Ident, typ ast.Expr) {
		if _, ok := typ.(*ast.MapType); !ok {
			return
		}
		for _, id := range names {
			maps[id.Name] = true
		}
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			bind(f.Names, f.Type)
		}
	}
	isMapExpr := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CompositeLit:
			_, ok := e.Type.(*ast.MapType)
			return ok
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
				_, ok := e.Args[0].(*ast.MapType)
				return ok
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if isMapExpr(n.Rhs[i]) {
					maps[id.Name] = true
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if vs.Type != nil {
					bind(vs.Names, vs.Type)
				}
				for i, v := range vs.Values {
					if i < len(vs.Names) && isMapExpr(v) {
						maps[vs.Names[i].Name] = true
					}
				}
			}
		}
		return true
	})
	return maps
}

// orderDependent reports whether a range body leaks iteration order:
// appending to a slice, printing, or writing all emit elements in the order
// visited. Accumulation into maps, sums, maxima and deletes do not.
func orderDependent(body *ast.BlockStmt) bool {
	dep := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				dep = true
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
				strings.HasPrefix(name, "Write") {
				dep = true
			}
		}
		return !dep
	})
	return dep
}

// sortsAfter reports whether any statement in stmts calls into sort or
// slices — the collect-then-sort idiom that neutralizes map iteration
// order before it can reach output.
func sortsAfter(stmts []ast.Stmt) bool {
	sorted := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}

// checkMapOrder enforces RL-MAPORDER: a range over a visibly map-typed
// value whose body is order-dependent must be followed (in the same
// statement list) by a sort, or be on the audited allowlist.
func checkMapOrder(fset *token.FileSet, fn *ast.FuncDecl) []finding {
	maps := mapIdents(fn)
	if len(maps) == 0 {
		return nil
	}
	var out []finding
	scan := func(stmts []ast.Stmt) {
		for i, s := range stmts {
			rng, ok := s.(*ast.RangeStmt)
			if !ok {
				continue
			}
			id, ok := rng.X.(*ast.Ident)
			if !ok || !maps[id.Name] || !orderDependent(rng.Body) {
				continue
			}
			if sortsAfter(stmts[i+1:]) {
				continue
			}
			out = append(out, finding{fset.Position(rng.Pos()), "RL-MAPORDER",
				fmt.Sprintf("range over map %s has an order-dependent body; collect keys and sort, or audit the site into the allowlist", id.Name)})
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			scan(n.List)
		case *ast.CaseClause:
			scan(n.Body)
		case *ast.CommClause:
			scan(n.Body)
		}
		return true
	})
	return out
}

// scalarTypes are the basic types counted by RL-OPTS. Pointers, slices,
// maps, funcs and named struct/interface types are not configuration
// scalars and do not count.
var scalarTypes = map[string]bool{
	"bool": true, "string": true, "byte": true, "rune": true,
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true, "uintptr": true,
	"float32": true, "float64": true, "complex64": true, "complex128": true,
}

// checkScalarParams enforces RL-OPTS: an exported function or method taking
// more than four scalar basic-type parameters needs an options struct.
func checkScalarParams(fset *token.FileSet, fn *ast.FuncDecl) []finding {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return nil
	}
	scalars := 0
	for _, field := range fn.Type.Params.List {
		id, ok := field.Type.(*ast.Ident)
		if !ok || !scalarTypes[id.Name] {
			continue
		}
		// An unnamed field declares one parameter; a named field one per name.
		if n := len(field.Names); n > 0 {
			scalars += n
		} else {
			scalars++
		}
	}
	if scalars <= 4 {
		return nil
	}
	return []finding{{fset.Position(fn.Pos()), "RL-OPTS",
		fmt.Sprintf("%s takes %d scalar configuration parameters; past four, bundle them into an options struct with documented zero values", fn.Name.Name, scalars)}}
}

// checkCtrlnetOwnership enforces RL-CTRLNET on one file that is not part of
// the naming convention's owner packages: no "G%d_" format-string literal
// (hand-building control-net names) and no handshake.ControlRegion call
// (hand-parsing controller instance names). Both have ctrlnet equivalents.
func checkCtrlnetOwnership(fset *token.FileSet, f *ast.File) []finding {
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.STRING && strings.Contains(n.Value, "G%d_") {
				out = append(out, finding{fset.Position(n.Pos()), "RL-CTRLNET",
					"control-net names are built by internal/ctrlnet (Name, CtrlGate, ...), not by G%d_ format strings"})
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "handshake" && sel.Sel.Name == "ControlRegion" {
					out = append(out, finding{fset.Position(n.Pos()), "RL-CTRLNET",
						"controller instance names are parsed by ctrlnet.Region, not handshake.ControlRegion"})
				}
			}
		}
		return true
	})
	return out
}

// checkHTTPCtx enforces RL-HTTPCTX: a function with a *http.Request
// parameter must not call context.Background() or context.TODO() anywhere
// in its body (function literals included — a goroutine spawned from a
// handler on a detached root has the same lifetime bug). The request's own
// context is the only correct cancellation root inside a handler.
func checkHTTPCtx(fset *token.FileSet, fn *ast.FuncDecl) []finding {
	if fn.Type.Params == nil {
		return nil
	}
	isHTTPRequest := func(e ast.Expr) bool {
		star, ok := e.(*ast.StarExpr)
		if !ok {
			return false
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		pkg, ok := sel.X.(*ast.Ident)
		return ok && pkg.Name == "http" && sel.Sel.Name == "Request"
	}
	handler := false
	for _, field := range fn.Type.Params.List {
		if isHTTPRequest(field.Type) {
			handler = true
			break
		}
	}
	if !handler {
		return nil
	}
	var out []finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			out = append(out, finding{fset.Position(call.Pos()), "RL-HTTPCTX",
				fmt.Sprintf("HTTP handler %s mints a detached context with context.%s; derive from r.Context() so client hangups and server drain cancel the work", fn.Name.Name, sel.Sel.Name)})
		}
		return true
	})
	return out
}

// checkStageArgs enforces RL-STAGE: the first argument of every flowErr call
// must be a Stage* constant, or an identifier named like the conventional
// `stage` parameter that forwards one.
func checkStageArgs(fset *token.FileSet, body ast.Node) []finding {
	var out []finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "flowErr" || len(call.Args) == 0 {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok {
			if strings.HasPrefix(arg.Name, "Stage") || strings.HasPrefix(arg.Name, "stage") {
				return true
			}
		}
		out = append(out, finding{fset.Position(call.Pos()), "RL-STAGE",
			"flowErr stage argument must be a Stage* constant (or a forwarded stage parameter)"})
		return true
	})
	return out
}

// checkFlowReturns enforces RL-FLOW on one function (and any function
// literals it contains, each judged against its own signature): when the
// last result is an error, every return's final value must be nil, an
// identifier propagating an existing error, or a flowErr(...) call.
func checkFlowReturns(fset *token.FileSet, typ *ast.FuncType, body *ast.BlockStmt) []finding {
	var out []finding
	returnsError := false
	if typ.Results != nil && len(typ.Results.List) > 0 {
		last := typ.Results.List[len(typ.Results.List)-1]
		if id, ok := last.Type.(*ast.Ident); ok && id.Name == "error" {
			returnsError = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			out = append(out, checkFlowReturns(fset, n.Type, n.Body)...)
			return false
		case *ast.ReturnStmt:
			if !returnsError || len(n.Results) == 0 {
				return true
			}
			last := n.Results[len(n.Results)-1]
			switch e := last.(type) {
			case *ast.Ident:
				return true // nil, or a propagated (already wrapped) error
			case *ast.CallExpr:
				if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "flowErr" {
					return true
				}
			}
			out = append(out, finding{fset.Position(n.Pos()), "RL-FLOW",
				"flow driver error returns must be nil, a propagated error, or flowErr(...)"})
		}
		return true
	})
	return out
}
