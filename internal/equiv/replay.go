package equiv

import (
	"fmt"

	"desync/internal/faults"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
)

// ReplayConfig tunes dynamic counterexample confirmation.
type ReplayConfig struct {
	Corner  netlist.Corner
	Step    float64 // ns between forced trace events (default 1.5)
	Horizon float64 // free-running watch window after release (default 40)
}

// ReplayResult reports how a formal counterexample behaved when its
// interleaving was imposed on the real gate-level simulation.
type ReplayResult struct {
	Steps       int      `json:"steps"`       // trace events forced
	PostEvents  int      `json:"postEvents"`  // latch-enable transitions after release
	Diagnostics []string `json:"diagnostics"` // watchdog reports
	Confirmed   bool     `json:"confirmed"`
	Detail      string   `json:"detail"`
}

// Replay feeds a formal counterexample trace back through the simulator:
// the control nets are forced along the trace's firing order (realizing the
// exact interleaving the model found), then released, and the free-running
// network is watched. A deadlock counterexample is confirmed when the
// control network stays silent; safety and flow counterexamples are
// confirmed when the released network trips a watchdog (deadlock, setup
// violation, X capture) or its per-region capture schedules drift apart —
// the dynamic shadows of a formally broken schedule.
func Replay(mod *netlist.Module, m *Model, tr *Trace, cfg ReplayConfig) (*ReplayResult, error) {
	if cfg.Step <= 0 {
		cfg.Step = 1.5
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 40
	}
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("equiv: trace has no events to replay")
	}
	for _, e := range tr.Events {
		if mod.Net(e.Net) == nil {
			return nil, fmt.Errorf("equiv: trace net %s not in module %s (trace from a different design?)", e.Net, mod.Name)
		}
	}

	s, err := sim.New(mod, sim.Config{Corner: cfg.Corner})
	if err != nil {
		return nil, err
	}
	if err := faults.ResetStimulus(mod, 0)(s); err != nil {
		return nil, err
	}
	if err := m.driveEnvironment(s); err != nil {
		return nil, err
	}

	// Force the counterexample interleaving, one event per step, starting
	// after the reset sequence has settled.
	const t0 = 4.0
	forced := map[string]bool{}
	for k, e := range tr.Events {
		v := logic.L
		if e.Value {
			v = logic.H
		}
		if err := s.Force(e.Net, v, t0+float64(k)*cfg.Step); err != nil {
			return nil, err
		}
		forced[e.Net] = true
	}
	end := t0 + float64(len(tr.Events))*cfg.Step
	for net := range forced {
		if err := s.Release(net, end); err != nil {
			return nil, err
		}
	}

	// Watch the released network: enable activity, per-region capture
	// schedules, and the standard watchdogs.
	var roNets []string
	post := 0
	capCount := map[int]int{}
	for i := range m.sigs {
		sg := &m.sigs[i]
		switch sg.kind {
		case kindRO:
			roNets = append(roNets, sg.name)
		case kindG:
			region, master, name := sg.region, sg.master, sg.name
			if err := s.OnChange(name, func(t float64, v logic.V) {
				if t <= end {
					return
				}
				post++
				if !master && v == logic.L {
					capCount[region]++
				}
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Watch(sim.WatchdogConfig{
		HandshakeNets: roNets,
		QuiescenceGap: cfg.Horizon / 2,
		SetupGuard:    true,
		XCaptureAfter: t0,
	}); err != nil {
		return nil, err
	}
	if err := s.Run(end + cfg.Horizon); err != nil {
		return nil, err
	}

	res := &ReplayResult{Steps: len(tr.Events), PostEvents: post}
	for _, d := range s.Diagnostics() {
		res.Diagnostics = append(res.Diagnostics, d.String())
	}
	spread := captureSpread(capCount, m.Regions)
	switch tr.Rule {
	case RuleDeadlock:
		res.Confirmed = post == 0 || hasDiag(s, sim.DiagDeadlock)
		if res.Confirmed {
			res.Detail = fmt.Sprintf("control network silent after replaying the prefix (%d enable transitions in %.0f ns)", post, cfg.Horizon)
		} else {
			res.Detail = fmt.Sprintf("control network still made %d enable transitions after release", post)
		}
	default:
		res.Confirmed = len(res.Diagnostics) > 0 || spread > 2 || post == 0
		switch {
		case spread > 2:
			res.Detail = fmt.Sprintf("per-region capture schedules drifted %d generations apart after release", spread)
		case len(res.Diagnostics) > 0:
			res.Detail = "watchdog tripped after release: " + res.Diagnostics[0]
		case post == 0:
			res.Detail = "control network deadlocked after replaying the prefix"
		default:
			res.Detail = "released network showed no dynamic divergence in the watch window"
		}
	}
	return res, nil
}

func hasDiag(s *sim.Simulator, kind sim.DiagKind) bool {
	for _, d := range s.Diagnostics() {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// captureSpread measures how far apart the per-region slave capture counts
// ended up; lockstep semi-decoupled rings stay within a couple.
func captureSpread(counts map[int]int, regions []int) int {
	if len(regions) == 0 {
		return 0
	}
	min, max := -1, 0
	for _, g := range regions {
		c := counts[g]
		if min < 0 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return max - min
}
