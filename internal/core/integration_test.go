package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"desync/internal/designs"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/verilog"
)

// The tool-boundary round trip the CLI exercises: generated DLX → Verilog
// text → re-import → desynchronize → Verilog text → re-import → simulate,
// and the result is still flow-equivalent to the original synchronous
// netlist. This covers the standard-format interoperability claim of §4.4
// ("drdesync uses standard file formats and thus may be embedded in
// virtually any modern industrial EDA flow").
func TestVerilogRoundTripFlowEquivalence(t *testing.T) {
	lib := hs()
	prog := designs.TestProgram()

	orig, err := designs.BuildDLX(lib, prog)
	if err != nil {
		t.Fatal(err)
	}
	text := verilog.Write(orig)

	// Synchronous reference from the re-imported netlist.
	dsync, err := verilog.Read(text, lib, "")
	if err != nil {
		t.Fatal(err)
	}
	period := 5.0
	ss, err := sim.New(dsync.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ss.Drive("rstn", logic.L, 0)
	ss.Drive("rstn", logic.H, period*0.4)
	ss.Clock("clk", period, 0, period*25)
	if err := ss.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}

	// Desynchronize a second import, export, re-import, simulate.
	dwork, err := verilog.Read(text, lib, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Desynchronize(context.Background(), dwork, Options{Period: period})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grouping.Groups != 4 {
		t.Fatalf("groups after round trip = %d, want 4", res.Grouping.Groups)
	}
	dtext := verilog.Write(dwork)
	dfinal, err := verilog.Read(dtext, lib, "")
	if err != nil {
		t.Fatalf("desynchronized netlist does not re-import: %v", err)
	}
	if errs := dfinal.Top.Check(); len(errs) > 0 {
		t.Fatalf("re-imported netlist broken: %v", errs[0])
	}
	ds, err := sim.New(dfinal.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ds.Drive("rstn", logic.L, 0)
	ds.Drive("rst_desync", logic.H, 0)
	ds.Drive("rstn", logic.H, 1)
	ds.Drive("rst_desync", logic.L, 2)
	if err := ds.Run(period * 50); err != nil {
		t.Fatal(err)
	}

	compared := 0
	for name, want := range ss.Captures {
		got := ds.Captures[name+"/sl"]
		if len(got) < 8 {
			t.Fatalf("%s: only %d captures after file round trip", name, len(got))
		}
		n := len(want)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k] != want[k] {
				t.Fatalf("%s capture %d differs after file round trip", name, k)
			}
		}
		compared++
	}
	if compared < 500 {
		t.Fatalf("compared only %d registers", compared)
	}
}

// §3.2.2's manual path: a two-level netlist whose top contains only
// flattened submodules treated as the regions.
func TestManualGroupsFromHierarchy(t *testing.T) {
	lib := hs()
	src := `
module stage_a (ck, rn, in, out);
  input ck, rn;
  input [1:0] in;
  output [1:0] out;
  wire [1:0] d;
  INVX1 g0 (.A(in[0]), .Z(d[0]));
  INVX1 g1 (.A(in[1]), .Z(d[1]));
  DFFRQX1 r0 (.D(d[0]), .CK(ck), .RN(rn), .Q(out[0]));
  DFFRQX1 r1 (.D(d[1]), .CK(ck), .RN(rn), .Q(out[1]));
endmodule

module stage_b (ck, rn, in, out);
  input ck, rn;
  input [1:0] in;
  output [1:0] out;
  wire [1:0] d;
  XOR2X1 g0 (.A(in[0]), .B(in[1]), .Z(d[0]));
  XOR2X1 g1 (.A(in[1]), .B(in[0]), .Z(d[1]));
  DFFRQX1 r0 (.D(d[0]), .CK(ck), .RN(rn), .Q(out[0]));
  DFFRQX1 r1 (.D(d[1]), .CK(ck), .RN(rn), .Q(out[1]));
endmodule

module top (ck, rn, q);
  input ck, rn;
  output [1:0] q;
  wire [1:0] x;
  stage_a sa (.ck(ck), .rn(rn), .in(q), .out(x));
  stage_b sb (.ck(ck), .rn(rn), .in(x), .out(q));
endmodule
`
	d, err := verilog.Read(src, lib, "top")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Desynchronize(context.Background(), d, Options{Period: 2, ManualGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grouping.Groups != 2 {
		t.Fatalf("hierarchy-derived regions = %d, want 2", res.Grouping.Groups)
	}
	// The two regions form a ring in the DDG.
	for _, g := range res.DDG.Nodes {
		if len(res.DDG.Succs[g]) != 1 {
			t.Fatalf("region %d succs = %v", g, res.DDG.Succs[g])
		}
	}
	// And it runs.
	s, err := sim.New(d.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	s.Drive("rn", logic.L, 0)
	s.Drive("rst_desync", logic.H, 0)
	s.Drive("rn", logic.H, 1)
	s.Drive("rst_desync", logic.L, 2)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	caps := s.Captures["sa/r0/sl"]
	if len(caps) < 5 {
		t.Fatalf("manual-grouped ring not live: %d captures (%v)", len(caps), caps)
	}
}

// §6 lists multiple clock domains as future work; the tool must refuse them
// loudly rather than silently merging unrelated timing domains.
func TestMultipleClocksRejected(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("ck1", netlist.In)
	m.AddPort("ck2", netlist.In)
	m.AddPort("d", netlist.In)
	for i, ck := range []string{"ck1", "ck2"} {
		ff := m.AddInst(fmt.Sprintf("f%d", i), lib.MustCell("DFFQX1"))
		m.MustConnect(ff, "D", m.Net("d"))
		m.MustConnect(ff, "CK", m.Net(ck))
		m.MustConnect(ff, "Q", m.AddNet(fmt.Sprintf("q%d", i)))
		m.MustConnect(ff, "QN", m.AddNet(fmt.Sprintf("qn%d", i)))
	}
	d := &netlist.Design{Name: "m", Top: m, Lib: lib, Modules: map[string]*netlist.Module{"m": m}}
	_, err := Desynchronize(context.Background(), d, Options{Period: 2})
	if err == nil {
		t.Fatal("expected multiple-clock rejection")
	}
	// The refusal must be actionable: name both offending clock nets and
	// state the single-clock restriction.
	for _, want := range []string{"ck1", "ck2", "single-clock"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("rejection %q does not mention %q", err, want)
		}
	}
	if StageOf(err) != StageImport {
		t.Fatalf("StageOf = %q, want %q", StageOf(err), StageImport)
	}
}
