package core

// Mode selects a backend sub-strategy. Modes belong to a backend: the
// desync backend defines ModeMatched and ModeCompletion; a backend with a
// single strategy leaves the mode empty.
type Mode string

const (
	// ModeMatched is the desync backend's default: per-region matched delay
	// elements sized from the STA budgets (§3.2.5).
	ModeMatched Mode = "matched"
	// ModeCompletion replaces the matched elements with dual-rail completion
	// networks (§2.4.4): true data-dependent, average-case timing at ~2x
	// combinational area.
	ModeCompletion Mode = "cdet"
)

// Options configures one clocking-conversion run (the tool's command line,
// §3.2). The zero value selects the documented default for every knob;
// Canonicalize makes those defaults explicit and zeroes knobs that are
// inert under the selected backend and mode, producing the single
// canonical form shared by the flow itself, the job server's JSON mirror
// and its content-addressed cache key.
type Options struct {
	// Backend names the conversion backend that owns the Substitute, Size
	// and Generate stages: BackendDesync (the default) inserts the paper's
	// handshake control network; other backends register themselves via
	// RegisterBackend (internal/twophase registers "twophase").
	Backend string
	// Mode selects a sub-strategy of the backend. For the desync backend:
	// ModeMatched (default) or ModeCompletion. Backends without modes
	// reject any non-empty value.
	Mode Mode
	// Period is the original clock period in ns, used for the derived
	// clock constraints (Fig 4.2) and the request-path max delays.
	Period float64
	// Margin scales the matched delay elements (or the two-phase generator
	// ring) over the measured region budget; defaults to 1.15.
	Margin float64
	// MuxTaps builds 8-tap multiplexed delay elements selected by new
	// delsel[2:0] ports (the calibration knob of Fig 5.3). Desync only.
	MuxTaps bool
	// TapScales overrides DefaultTapScales when MuxTaps is set.
	TapScales []float64
	// FalsePaths names nets the grouping and dependency analyses ignore
	// (§3.2.2 "False Paths").
	FalsePaths []string
	// ManualGroups keeps the Group fields already present on the instances
	// (e.g. from a two-level hierarchy import) instead of running the
	// automatic grouping.
	ManualGroups bool
	// SkipClean disables buffer/inverter-pair removal.
	SkipClean bool
	// CompletionMargin adds slow-rise levels to each DONE under
	// ModeCompletion (default 2); zeroed under every other mode.
	CompletionMargin int
	// StageCheck, when non-nil, runs after each stage's Validate boundary
	// with the stage name and whether the snapshot is mid-flow (undriven
	// latch-enable nets are legal). cmd/drdesync hooks the static lint
	// engine here so every stage is gated, not just import and export; an
	// error aborts the flow as a FlowError of that stage.
	StageCheck func(stage string, midFlow bool) error
	// Progress, when non-nil, is called with each Stage* constant as the
	// flow enters that stage — the same seams FlowError.Stage reports, in
	// Stages order (minus StageClean under SkipClean). The job server
	// streams these to clients; the callback runs on the flow's goroutine,
	// so it must be fast and must not call back into the design.
	Progress func(stage string)
	// Parallelism bounds the workers of the flow's parallel kernels
	// (per-region STA extraction during sizing); 0 means GOMAXPROCS. The
	// flow's output is identical at any value.
	Parallelism int
}

// Canonicalize returns the options with every documented default explicit
// and every knob the selected backend and mode never read zeroed, or an
// error naming an unknown backend or mode. It is idempotent, and it is the
// only place defaulting happens: Convert canonicalizes on entry, and the
// job server canonicalizes the same way before hashing its cache key, so
// {} and {"margin":1.15} can never address different results.
func (o Options) Canonicalize() (Options, error) {
	if o.Backend == "" {
		o.Backend = BackendDesync
	}
	if o.Margin == 0 {
		o.Margin = 1.15
	}
	if !o.MuxTaps {
		// Tap scales are inert without the mux ports.
		o.TapScales = nil
	}
	be, err := NewBackend(o.Backend)
	if err != nil {
		return o, err
	}
	return be.Canonicalize(o)
}
