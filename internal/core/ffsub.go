package core

import (
	"sort"

	"fmt"

	"desync/internal/ctrlnet"
	"desync/internal/netlist"
)

// EnableNets holds the per-group master/slave latch-enable nets created by
// flip-flop substitution and driven later by the controller network.
type EnableNets struct {
	Master, Slave *netlist.Net
}

// SubstituteResult reports the substitution outcome.
type SubstituteResult struct {
	Enables    map[int]EnableNets
	FFs        int // flip-flops replaced
	ExtraGates int // helper gates created (muxes, set/reset gating, Fig 3.1)
	ClockNets  []string
}

// SubstituteFlipFlops replaces every flip-flop with a master/slave latch
// pair per the rules of Fig 3.1, creates per-group enable nets, and removes
// the now-unloaded clock network. The library provides only plain and
// async-reset latches (the paper's worst case, §3.1.2), so scan muxing,
// synchronous set/reset and clock gating are rebuilt from discrete gates,
// all tagged Origin "ffsub" so the area accounting attributes them to
// sequential logic as the paper does for the ARM (§5.3.1).
func SubstituteFlipFlops(d *netlist.Design) (*SubstituteResult, error) {
	m := d.Top
	lib := d.Lib
	res := &SubstituteResult{Enables: map[int]EnableNets{}}

	enables := func(grp int) EnableNets {
		if e, ok := res.Enables[grp]; ok {
			return e
		}
		e := EnableNets{
			Master: m.EnsureNet(ctrlnet.Name(grp, "gm")),
			Slave:  m.EnsureNet(ctrlnet.Name(grp, "gs")),
		}
		res.Enables[grp] = e
		return e
	}

	clockNets := map[*netlist.Net]bool{}
	var ffs []*netlist.Inst
	ffSet := map[*netlist.Inst]bool{}
	for _, in := range m.Insts {
		if in.Cell != nil && in.Cell.Kind == netlist.KindFF {
			ffs = append(ffs, in)
			ffSet[in] = true
		}
	}
	// Snapshot every flip-flop's pin->net map, then detach all FF input
	// sinks in one filter pass per net. Clock, reset and scan-enable nets
	// fan out to every flip-flop, so the per-pin Disconnect inside
	// RemoveInst would rescan and resplice those sink lists once per FF —
	// quadratic at hundreds of thousands of flip-flops.
	ffConns := make([]map[string]*netlist.Net, len(ffs))
	touched := map[*netlist.Net]bool{}
	for i, ff := range ffs {
		conns := make(map[string]*netlist.Net, len(ff.Conns()))
		for _, pc := range ff.Conns() {
			conns[pc.Pin] = pc.Net
			if pc.Dir == netlist.In {
				touched[pc.Net] = true
			}
		}
		ffConns[i] = conns
		clockNets[conns[ff.Cell.Seq.ClockPin]] = true
	}
	dropFF := func(s netlist.PinRef) bool { return ffSet[s.Inst] }
	for n := range touched {
		m.DisconnectSinks(n, dropFF)
	}
	// Every substitution removes one flip-flop; batch the removals so the
	// Insts array compacts once after the loop instead of splicing per FF.
	m.BeginBulk()
	for i, ff := range ffs {
		if err := substituteOne(m, lib, ff, ffConns[i], enables, res); err != nil {
			m.EndBulk()
			return nil, err
		}
	}
	m.EndBulk()
	res.FFs = len(ffs)

	// Remove clock nets that no longer drive anything, and their ports —
	// in name order, so the result (and any report built from it) does not
	// inherit the map's iteration order.
	clks := make([]*netlist.Net, 0, len(clockNets))
	for n := range clockNets {
		clks = append(clks, n)
	}
	sort.Slice(clks, func(i, j int) bool { return clks[i].Name < clks[j].Name })
	for _, n := range clks {
		if len(n.Sinks) == 0 || onlyPortSinks(n) {
			removeNetAndPort(m, n)
			res.ClockNets = append(res.ClockNets, n.Name)
		}
	}
	return res, nil
}

func onlyPortSinks(n *netlist.Net) bool {
	for _, s := range n.Sinks {
		if s.Inst != nil {
			return false
		}
	}
	return true
}

func removeNetAndPort(m *netlist.Module, n *netlist.Net) {
	for i, p := range m.Ports {
		if p.Net == n {
			m.Ports = append(m.Ports[:i], m.Ports[i+1:]...)
			break
		}
	}
	n.Driver = netlist.PinRef{}
	n.Sinks = nil
	_ = m.RemoveNet(n)
}

// substituteOne rewrites a single flip-flop as a latch pair. conns is the
// flip-flop's pin->net map snapshotted before its input pins were detached.
func substituteOne(m *netlist.Module, lib *netlist.Library, ff *netlist.Inst,
	conns map[string]*netlist.Net, enables func(int) EnableNets, res *SubstituteResult) error {

	c := ff.Cell
	spec := c.Seq
	grp := ff.Group
	if grp < 0 {
		return fmt.Errorf("core: flip-flop %s has no region; run grouping first", ff.Name)
	}
	en := enables(grp)

	newGate := func(suffix, cell string) *netlist.Inst {
		g := m.AddInst(ff.Name+"/"+suffix, lib.MustCell(cell))
		g.Group = grp
		g.Origin = "ffsub"
		return g
	}
	newNet := func(suffix string) *netlist.Net { return m.AddNet(ff.Name + "/" + suffix) }

	// The flip-flop disappears first so its pins release their nets.
	m.RemoveInst(ff)

	// Data path into the master latch: start from D, fold in scan muxing
	// and synchronous reset per Fig 3.1(a)/(b).
	dataNet := conns["D"]
	if dataNet == nil {
		return fmt.Errorf("core: flip-flop %s has no D pin", ff.Name)
	}
	res.ExtraGates += 0
	if spec.ScanIn != "" {
		// Fig 3.1(a): multiplexer before the master latch.
		mux := newGate("scanmux", "MUX2X1")
		out := newNet("md")
		m.MustConnect(mux, "A", dataNet)
		m.MustConnect(mux, "B", conns[spec.ScanIn])
		m.MustConnect(mux, "S", conns[spec.ScanEnable])
		m.MustConnect(mux, "Z", out)
		dataNet = out
		res.ExtraGates++
	}
	if c.Name == "DFFSYNRX1" {
		// Fig 3.1(b): AND with inverted input before the master latch.
		g := newGate("syncr", "ANDN2X1")
		out := newNet("mr")
		m.MustConnect(g, "A", dataNet)
		m.MustConnect(g, "B", conns["R"])
		m.MustConnect(g, "Z", out)
		dataNet = out
		res.ExtraGates++
	}

	// Latch enables, gated per Fig 3.1(d) for clock-gated flip-flops.
	gm, gs := en.Master, en.Slave
	if spec.ClockGate != "" {
		gateM := newGate("cgm", "AND2X1")
		gateS := newGate("cgs", "AND2X1")
		gmn, gsn := newNet("gm"), newNet("gs")
		m.MustConnect(gateM, "A", gm)
		m.MustConnect(gateM, "B", conns[spec.ClockGate])
		m.MustConnect(gateM, "Z", gmn)
		m.MustConnect(gateS, "A", gs)
		m.MustConnect(gateS, "B", conns[spec.ClockGate])
		m.MustConnect(gateS, "Z", gsn)
		gm, gs = gmn, gsn
		res.ExtraGates += 2
	}

	// Asynchronous set needs Fig 3.1(c): open the latches and force the
	// value while the set is asserted. Asynchronous reset uses the
	// library's reset latch directly.
	latchCell := "LATQX1"
	var rn *netlist.Net
	if spec.AsyncReset != "" {
		latchCell = "LATRQX1"
		rn = conns[spec.AsyncReset]
		if !spec.AsyncResetLow {
			inv := newGate("rinv", "INVX1")
			out := newNet("rn")
			m.MustConnect(inv, "A", rn)
			m.MustConnect(inv, "Z", out)
			rn = out
			res.ExtraGates++
		}
	}
	if spec.AsyncSet != "" {
		// setx is active-high set.
		setx := conns[spec.AsyncSet]
		if spec.AsyncSetLow {
			inv := newGate("sinv", "INVX1")
			out := newNet("setx")
			m.MustConnect(inv, "A", setx)
			m.MustConnect(inv, "Z", out)
			setx = out
			res.ExtraGates++
		}
		// Force data high and open both latches while set is asserted.
		dOr := newGate("setd", "OR2X1")
		dOut := newNet("sd")
		m.MustConnect(dOr, "A", dataNet)
		m.MustConnect(dOr, "B", setx)
		m.MustConnect(dOr, "Z", dOut)
		dataNet = dOut
		gOrM := newGate("setgm", "OR2X1")
		gOrS := newGate("setgs", "OR2X1")
		gmn, gsn := newNet("sgm"), newNet("sgs")
		m.MustConnect(gOrM, "A", gm)
		m.MustConnect(gOrM, "B", setx)
		m.MustConnect(gOrM, "Z", gmn)
		m.MustConnect(gOrS, "A", gs)
		m.MustConnect(gOrS, "B", setx)
		m.MustConnect(gOrS, "Z", gsn)
		gm, gs = gmn, gsn
		res.ExtraGates += 3
	}

	// The master/slave pair.
	master := newGate("ml", latchCell)
	slave := newGate("sl", latchCell)
	mq := newNet("mq")
	m.MustConnect(master, "D", dataNet)
	m.MustConnect(master, "G", gm)
	m.MustConnect(master, "Q", mq)
	m.MustConnect(slave, "D", mq)
	m.MustConnect(slave, "G", gs)
	if rn != nil {
		m.MustConnect(master, "RN", rn)
		m.MustConnect(slave, "RN", rn)
	}
	if q := conns[spec.Q]; q != nil {
		m.MustConnect(slave, "Q", q)
	} else {
		m.MustConnect(slave, "Q", newNet("q"))
	}
	if spec.QN != "" {
		if qn := conns[spec.QN]; qn != nil {
			if len(qn.Sinks) > 0 {
				inv := newGate("qninv", "INVX1")
				m.MustConnect(inv, "A", slave.Conn("Q"))
				m.MustConnect(inv, "Z", qn)
				res.ExtraGates++
			} else if !isPortNet(m, qn) {
				_ = m.RemoveNet(qn)
			}
		}
	}
	return nil
}
