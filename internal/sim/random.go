package sim

// Randomized-trace support: deterministic, seedable delay randomization.
// The desynchronized control network is speed independent, so its formal
// model must accept the simulator's behaviour under any assignment of gate
// delays; jittering per-instance delay factors from a seed is how the
// equiv cross-validation explores different interleavings reproducibly.

import (
	"math/rand"

	"desync/internal/netlist"
)

// DelayFactorMap draws a jittered delay factor for every instance accepted
// by filter (all instances when nil): the instance's DelayFactor (nominal
// when zero) times a uniform factor in [1-spread, 1+spread], from a PRNG
// seeded with seed. The walk order is the module's instance order, so the
// same seed always produces the same factors. The module is not touched —
// the result feeds Config.DelayFactors, so concurrent traces with
// different seeds can share one immutable module.
func DelayFactorMap(m *netlist.Module, seed int64, spread float64, filter func(*netlist.Inst) bool) map[string]float64 {
	if spread < 0 {
		spread = 0
	}
	if spread > 0.9 {
		spread = 0.9
	}
	rng := rand.New(rand.NewSource(seed))
	out := map[string]float64{}
	for _, in := range m.Insts {
		if filter != nil && !filter(in) {
			continue
		}
		f := in.DelayFactor
		if f == 0 {
			f = 1
		}
		out[in.Name] = f * (1 + spread*(2*rng.Float64()-1))
	}
	return out
}
