# Build and verification entry points. `make check` is the CI gate:
# vet, the full test suite under the race detector, and the fault-campaign
# smoke guard (any escaped delay or stuck-at fault fails the build).

GO ?= go

.PHONY: all build test check fuzz bench faults

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run XXX -bench BenchmarkFaultCampaignSmoke -benchtime 1x .

# Short fuzz passes over the two text front ends; corpora are committed
# under internal/{verilog,liberty}/testdata/fuzz.
fuzz:
	$(GO) test ./internal/verilog/ -fuzz FuzzRead -fuzztime 20s
	$(GO) test ./internal/liberty/ -fuzz FuzzParse -fuzztime 20s

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

faults:
	$(GO) run ./cmd/experiments -faults
