package stg

import (
	"testing"
	"testing/quick"
)

// Property (the concurrency-reduction theorem the lattice of Fig 2.4 rests
// on): any protocol containing the desynchronization model's two essential
// arcs, extended with extra arcs from the catalog, is flow-equivalent
// whenever it is live — adding causality can deadlock but never corrupt
// data.
func TestQuickConcurrencyReductionsStayFlowEquivalent(t *testing.T) {
	catalog := []CrossArc{
		{FromA: true, FromPlus: false, ToPlus: true, Offset: 0},  // A- -> B+
		{FromA: true, FromPlus: false, ToPlus: true, Offset: 1},  // A-(k) -> B+(k+1)
		{FromA: true, FromPlus: true, ToPlus: true, Offset: 0},   // A+ -> B+
		{FromA: true, FromPlus: false, ToPlus: false, Offset: 0}, // A- -> B-
		{FromPlus: true, ToA: true, ToPlus: true, Offset: 1},     // B+(k) -> A+(k+1)
		{FromPlus: false, ToA: true, ToPlus: false, Offset: 1},   // B-(k) -> A-(k+1)
	}
	f := func(mask uint8) bool {
		cross := []CrossArc{arcDataValid, arcNoOverwrite}
		for i, a := range catalog {
			if mask>>uint(i)&1 == 1 {
				cross = append(cross, a)
			}
		}
		p := Protocol{Name: "rand", Cross: cross}
		if _, err := p.Ring(2); err != nil {
			return true // marking infeasible for this reset state: skip
		}
		rep, err := p.CheckRing(2, 2_000_000)
		if err != nil {
			return true // state blow-up: skip
		}
		// Live implies flow-equivalent for supersets of the safe core.
		return !rep.Live || rep.FlowEquiv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

// Property: reachability is invariant under firing — from any reachable
// marking, the reachable set is a subset of the original one (the toggle
// graph and protocol graphs are strongly connected, so it is equal).
func TestQuickReachabilityClosure(t *testing.T) {
	p, err := ProtocolByName("semi-decoupled")
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.PairGraph()
	if err != nil {
		t.Fatal(err)
	}
	base := g.Reachable(10000).States
	f := func(steps uint8) bool {
		// Fire a random-ish walk, then re-explore: same state count.
		m := g.Initial()
		for i := 0; i < int(steps%12); i++ {
			en := g.EnabledEvents(m)
			if len(en) == 0 {
				return false // deadlock would be a bug here
			}
			m = g.Fire(m, en[int(steps)%len(en)])
		}
		g2 := NewGraph()
		// Rebuild the same structure with m as the initial marking.
		for _, e := range g.Events {
			g2.Ev(e.Signal, e.Plus)
		}
		for i, a := range g.Arcs {
			g2.AddArc(a.From, a.To, int(m[i]))
		}
		return g2.Reachable(10000).States == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
