package netlist

import "fmt"

// ValidateOptions tunes the invariant checker for mid-flow snapshots.
type ValidateOptions struct {
	// AllowUndriven permits nets with sinks but no driver: between flip-flop
	// substitution and controller insertion the latch-enable nets legally
	// wait for their driver.
	AllowUndriven bool
	// MaxErrors bounds the report (0 = 64). Validation is a diagnostic, not
	// a dump of every consequence of one broken link.
	MaxErrors int
}

// Validation rule tags. Each ValidationError carries one, so consumers
// (drlint wraps them as findings) can classify without parsing messages.
const (
	VRuleIndex     = "index"     // name index disagrees with the slices
	VRulePort      = "port"      // port binding broken or foreign
	VRuleInstKind  = "inst-kind" // instance without exactly one of cell/submodule
	VRuleConn      = "conn"      // connection to nil/foreign net or unknown pin
	VRuleDriver    = "driver"    // net/driver bookkeeping mismatch
	VRuleSink      = "sink"      // net/sink bookkeeping mismatch
	VRuleUndriven  = "undriven"  // net with sinks but no driver
	VRuleTruncated = "truncated" // report hit MaxErrors; Msg carries the count
)

// ValidationError is one structural invariant violation, tagged with the
// rule that fired so downstream tooling can classify it without string
// matching.
type ValidationError struct {
	Rule   string // one of the VRule* constants
	Module string
	Msg    string
}

// Error renders "module: message" like the old bare errors did.
func (e ValidationError) Error() string { return e.Module + ": " + e.Msg }

// Validate checks the module's structural invariants beyond what Check
// covers: the name indices agree with the slices, every connection is
// bidirectionally consistent (instance pin ↔ net driver/sink lists), pins
// exist on their cells, and nets referenced by instances belong to the
// module. It is run between desynchronization stages so a stage that
// corrupts the netlist is caught at its own boundary instead of surfacing
// as a wrong answer (or a panic) stages later.
//
// At most MaxErrors violations are reported; when more exist, the final
// entry is tagged VRuleTruncated and counts the suppressed remainder.
func (m *Module) Validate(opts ValidateOptions) []ValidationError {
	limit := opts.MaxErrors
	if limit <= 0 {
		limit = 64
	}
	var errs []ValidationError
	suppressed := 0
	report := func(rule, format string, args ...any) {
		if len(errs) < limit {
			errs = append(errs, ValidationError{Rule: rule, Module: m.Name, Msg: fmt.Sprintf(format, args...)})
		} else {
			suppressed++
		}
	}

	// Name indices agree with the slices.
	inNets := make(map[*Net]bool, len(m.Nets))
	for _, n := range m.Nets {
		inNets[n] = true
		if m.netByName[n.Name] != n {
			report(VRuleIndex, "net %q missing from or mismatched in the name index", n.Name)
		}
	}
	if len(m.netByName) != len(m.Nets) {
		report(VRuleIndex, "net index has %d entries for %d nets", len(m.netByName), len(m.Nets))
	}
	inInsts := make(map[*Inst]bool, len(m.Insts))
	for _, in := range m.Insts {
		inInsts[in] = true
		if m.instByName[in.Name] != in {
			report(VRuleIndex, "instance %q missing from or mismatched in the name index", in.Name)
		}
	}
	if len(m.instByName) != len(m.Insts) {
		report(VRuleIndex, "instance index has %d entries for %d instances", len(m.instByName), len(m.Insts))
	}

	// Ports bind to nets of this module.
	for _, p := range m.Ports {
		if p.Net == nil {
			report(VRulePort, "port %s has no net", p.Name)
			continue
		}
		if !inNets[p.Net] {
			report(VRulePort, "port %s bound to foreign net %q", p.Name, p.Net.Name)
		}
	}

	// Instance connections: pin exists, net belongs to the module, and the
	// net's driver/sink bookkeeping lists exactly this endpoint.
	sinkCount := map[PinRef]int{}
	for _, n := range m.Nets {
		for _, s := range n.Sinks {
			sinkCount[s]++
			if sinkCount[s] > 1 {
				report(VRuleSink, "net %s lists sink %s %d times", n.Name, s, sinkCount[s])
			}
		}
	}
	for _, in := range m.Insts {
		if (in.Cell == nil) == (in.Sub == nil) {
			report(VRuleInstKind, "instance %s must reference exactly one of cell and submodule", in.Name)
			continue
		}
		for pin, n := range in.Conns {
			if n == nil {
				report(VRuleConn, "%s/%s connected to nil net", in.Name, pin)
				continue
			}
			if !inNets[n] {
				report(VRuleConn, "%s/%s connected to foreign net %q", in.Name, pin, n.Name)
				continue
			}
			dir, err := m.pinDir(in, pin)
			if err != nil {
				report(VRuleConn, "%v", err)
				continue
			}
			ref := PinRef{Inst: in, Pin: pin}
			if dir == Out {
				if n.Driver != ref {
					report(VRuleDriver, "%s drives net %s but the net records driver %s", ref, n.Name, n.Driver)
				}
			} else if sinkCount[ref] == 0 {
				report(VRuleSink, "%s reads net %s but is not in its sink list", ref, n.Name)
			}
		}
	}

	// Net endpoints point back at real connections.
	for _, n := range m.Nets {
		if d := n.Driver; d.Inst != nil {
			if !inInsts[d.Inst] {
				report(VRuleDriver, "net %s driven by removed instance %s", n.Name, d.Inst.Name)
			} else if d.Inst.Conns[d.Pin] != n {
				report(VRuleDriver, "net %s records driver %s which is connected elsewhere", n.Name, d)
			}
		}
		for _, s := range n.Sinks {
			if s.Inst == nil {
				continue
			}
			if !inInsts[s.Inst] {
				report(VRuleSink, "net %s sinks removed instance %s", n.Name, s.Inst.Name)
			} else if s.Inst.Conns[s.Pin] != n {
				report(VRuleSink, "net %s records sink %s which is connected elsewhere", n.Name, s)
			}
		}
		if !opts.AllowUndriven && len(n.Sinks) > 0 && !n.HasDriver() {
			report(VRuleUndriven, "net %s has sinks but no driver", n.Name)
		}
	}
	if suppressed > 0 {
		errs = append(errs, ValidationError{
			Rule:   VRuleTruncated,
			Module: m.Name,
			Msg:    fmt.Sprintf("%d further validation errors suppressed (MaxErrors=%d)", suppressed, limit),
		})
	}
	return errs
}
