package main

import (
	"context"
	"fmt"
	"io"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/equiv"
	"desync/internal/netlist"
)

// equivGate is the optional formal post-export gate: it compiles the
// freshly inserted control network into the token-marking model and
// model-checks deadlock-freedom, phase safety and flow equivalence, folding
// the outcome into the same lint-style findings the other gates use. A
// disproved property fails the run with a StageEquiv flow error; the
// counterexample trace is printed so the failure is actionable without
// re-running drequiv. The gate reuses the control-network IR the flow
// derived at export instead of re-deriving its own.
func equivGate(ctx context.Context, d *netlist.Design, cn *ctrlnet.Network, o runOpts, stdout, stderr io.Writer) error {
	fail := func(err error) error {
		return &core.FlowError{Stage: core.StageEquiv, Design: d.Top.Name, Detail: "formal verification gate", Err: err}
	}
	if cn == nil || cn.Module != d.Top {
		cn = ctrlnet.Derive(d.Top)
	}
	m, err := equiv.FromNetwork(d.Top, cn)
	if err != nil {
		return fail(err)
	}
	res, err := m.Explore(ctx, equiv.ExploreOptions{
		MaxStates: o.equivMaxStates, Parallelism: o.parallelism,
	})
	if err != nil {
		return fail(err)
	}
	if o.equivXval > 0 && res.Violation == nil {
		xv, err := m.CrossValidate(ctx, d.Top, equiv.XValConfig{
			Traces: o.equivXval, Seed: o.equivSeed, Parallelism: o.parallelism,
		})
		if err != nil {
			return fail(err)
		}
		res.XVal = xv
	}
	res.WriteText(stdout)
	if err := lintGate("equiv", res.Report(m.Findings), stderr); err != nil {
		return fail(err)
	}
	if res.Truncated {
		fmt.Fprintf(stderr, "drdesync: equiv gate truncated at %d markings; properties hold only up to this bound\n", res.States)
	}
	return nil
}
