package stg

import "fmt"

// CrossArc is a causal arc of a latch-enable protocol between an upstream
// latch A and the downstream latch B it feeds. Offset gives the occurrence
// pairing: the k-th firing of To requires the (k−Offset)-th firing of From.
// Offset 0 constrains within a data token's lifetime, offset 1 crosses to
// the next token (e.g. "A may reopen only after B captured the previous
// datum" is B- → A+ with offset 1).
type CrossArc struct {
	FromA, FromPlus bool
	ToA, ToPlus     bool
	Offset          int
}

// String renders e.g. "A+ -> B- (0)".
func (c CrossArc) String() string {
	name := func(a, plus bool) string {
		s := "B"
		if a {
			s = "A"
		}
		if plus {
			return s + "+"
		}
		return s + "-"
	}
	return fmt.Sprintf("%s -> %s (%d)", name(c.FromA, c.FromPlus), name(c.ToA, c.ToPlus), c.Offset)
}

// Named cross arcs used by the protocols of Fig 2.4.
var (
	// B captures only data A has passed: B-(k) after A+(k).
	arcDataValid = CrossArc{FromA: true, FromPlus: true, ToPlus: false, Offset: 0}
	// A admits a new datum only after B secured the previous: A+(k+1) after B-(k).
	arcNoOverwrite = CrossArc{FromPlus: false, ToA: true, ToPlus: true, Offset: 1}
	// B reopens only after A captured: B+(k) after A-(k).
	arcHandover = CrossArc{FromA: true, FromPlus: false, ToPlus: true, Offset: 0}
	// B closes only after A closed: B-(k) after A-(k).
	arcCaptureOrder = CrossArc{FromA: true, FromPlus: false, ToPlus: false, Offset: 0}
	// A reopens only after B reopened: A+(k+1) after B+(k).
	arcReopenOrder = CrossArc{FromPlus: true, ToA: true, ToPlus: true, Offset: 1}
	// A captures the next datum only after B captured the previous:
	// A-(k+1) after B-(k).
	arcCaptureGate = CrossArc{FromPlus: false, ToA: true, ToPlus: false, Offset: 1}
)

// Protocol is a latch-enable handshake protocol between adjacent latches.
type Protocol struct {
	Name  string
	Cross []CrossArc
	// Expected classification from Fig 2.4 (checked by the experiments).
	ExpectStates int
	ExpectLive   bool
	ExpectFE     bool
}

// Protocols is the lattice of Fig 2.4, ordered by decreasing concurrency.
// The first five are live and flow-equivalent; the last two illustrate the
// failure modes the figure marks "not live" and "not flow-equivalent".
// Exact arc sets are re-derived from the protocols' published behaviour (the
// figure itself is not machine-readable in the source text); the state
// counts, liveness and flow-equivalence classifications are the reproduced
// observables.
// Note on state counts: the thesis figure annotates the protocols with 10,
// 8, 6, 5 and 4 states, counted over the original Furber & Day controller
// STGs that include the request/acknowledge signals. Our abstraction closes
// the protocols over the two latch-enable signals only, where the maximally
// concurrent flow-equivalent protocol has 8 reachable markings; the lattice
// ordering (strictly decreasing concurrency down to non-overlapping's 4)
// and the live/flow-equivalent classification are preserved exactly.
var Protocols = []Protocol{
	{
		Name:         "desynchronization",
		Cross:        []CrossArc{arcDataValid, arcNoOverwrite},
		ExpectStates: 8, ExpectLive: true, ExpectFE: true,
	},
	{
		Name: "fully-decoupled",
		Cross: []CrossArc{arcDataValid,
			{FromA: true, FromPlus: false, ToPlus: true, Offset: 1}, // B+(k+1) after A-(k)
			arcNoOverwrite},
		ExpectStates: 7, ExpectLive: true, ExpectFE: true,
	},
	{
		Name: "semi-decoupled",
		Cross: []CrossArc{
			{FromA: true, FromPlus: true, ToPlus: true, Offset: 0}, // B+(k) after A+(k)
			arcNoOverwrite},
		ExpectStates: 6, ExpectLive: true, ExpectFE: true,
	},
	{
		Name: "simple",
		Cross: []CrossArc{
			{FromA: true, FromPlus: true, ToPlus: true, Offset: 0}, // B+(k) after A+(k)
			arcCaptureOrder, // B-(k) after A-(k)
			arcNoOverwrite},
		ExpectStates: 5, ExpectLive: true, ExpectFE: true,
	},
	{
		Name:         "non-overlapping",
		Cross:        []CrossArc{arcHandover, arcNoOverwrite},
		ExpectStates: 4, ExpectLive: true, ExpectFE: true,
	},
	{
		// Drops the data-validity arc: the downstream latch may close on
		// stale data — the figure's "not flow-equivalent" branch.
		Name:         "fall-decoupled-unsafe",
		Cross:        []CrossArc{arcNoOverwrite},
		ExpectStates: 0, ExpectLive: true, ExpectFE: false,
	},
	{
		// Adds a token-free constraint cycle: deadlocks — the figure's
		// "not live" branch.
		Name: "over-constrained",
		Cross: []CrossArc{arcDataValid, arcNoOverwrite,
			{FromA: true, FromPlus: true, ToPlus: true, Offset: 0},
			{FromPlus: true, ToA: true, ToPlus: false, Offset: 0}},
		ExpectStates: 0, ExpectLive: false, ExpectFE: true,
	},
}

// ProtocolByName looks a protocol up.
func ProtocolByName(name string) (*Protocol, error) {
	for i := range Protocols {
		if Protocols[i].Name == name {
			return &Protocols[i], nil
		}
	}
	return nil, fmt.Errorf("stg: no protocol %q", name)
}

// firedCount gives how often each transition of a latch has conceptually
// fired at reset, per its role in the pair and its reset phase. Upstream
// closed latches have completed occurrence 1 (they hold datum x1);
// downstream closed latches have not started (they hold x0); open latches
// are mid-occurrence 1.
func firedCount(isA, open bool) (plus, minus int) {
	if open {
		return 1, 0
	}
	if isA {
		return 1, 1
	}
	return 0, 0
}

// pairTokens computes the initial marking of a cross arc for a pair in the
// given reset phases.
func pairTokens(c CrossArc, aOpen, bOpen bool) (int, error) {
	fp, fm := firedCount(true, aOpen)
	gp, gm := firedCount(false, bOpen)
	pick := func(isA, plus bool) int {
		if isA {
			if plus {
				return fp
			}
			return fm
		}
		if plus {
			return gp
		}
		return gm
	}
	t := pick(c.FromA, c.FromPlus) - pick(c.ToA, c.ToPlus) + c.Offset
	if t < 0 {
		return 0, fmt.Errorf("stg: arc %v has negative marking for phase A:%v B:%v", c, aOpen, bOpen)
	}
	return t, nil
}

// selfTokens gives a latch's own +/- cycle marking for its reset phase.
func selfTokens(open bool) (plusToMinus, minusToPlus int) {
	if open {
		return 1, 0
	}
	return 0, 1
}

// PairGraph builds the closed two-signal STG of the protocol with A open
// and B closed (the canonical reset phase): the state machine whose
// reachable-marking count is the "states" annotation of Fig 2.4.
func (p *Protocol) PairGraph() (*Graph, error) {
	g := NewGraph()
	aPlus, aMinus := g.Ev("A", true), g.Ev("A", false)
	bPlus, bMinus := g.Ev("B", true), g.Ev("B", false)
	pm, mp := selfTokens(true)
	g.AddArc(aPlus, aMinus, pm)
	g.AddArc(aMinus, aPlus, mp)
	pm, mp = selfTokens(false)
	g.AddArc(bPlus, bMinus, pm)
	g.AddArc(bMinus, bPlus, mp)
	for _, c := range p.Cross {
		t, err := pairTokens(c, true, false)
		if err != nil {
			return nil, err
		}
		from := g.Ev(signalOf(c.FromA), c.FromPlus)
		to := g.Ev(signalOf(c.ToA), c.ToPlus)
		g.AddArc(from, to, t)
	}
	return g, nil
}

func signalOf(isA bool) string {
	if isA {
		return "A"
	}
	return "B"
}
