package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randExpr builds a random expression over the given variables.
func randExpr(rng *rand.Rand, vars []string, depth int) *Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(8) == 0 {
			return Const(FromBool(rng.Intn(2) == 1))
		}
		return Var(vars[rng.Intn(len(vars))])
	}
	switch rng.Intn(4) {
	case 0:
		return Not(randExpr(rng, vars, depth-1))
	case 1:
		return NewAnd(randExpr(rng, vars, depth-1), randExpr(rng, vars, depth-1))
	case 2:
		return NewOr(randExpr(rng, vars, depth-1), randExpr(rng, vars, depth-1))
	default:
		return NewXor(randExpr(rng, vars, depth-1), randExpr(rng, vars, depth-1))
	}
}

// Property: String() output re-parses to a semantically identical
// expression for arbitrary random expression trees.
func TestQuickExprStringRoundTrip(t *testing.T) {
	vars := []string{"A", "B", "C", "D"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1 := randExpr(rng, vars, 5)
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Logf("re-parse of %q failed: %v", e1.String(), err)
			return false
		}
		for mask := 0; mask < 1<<len(vars); mask++ {
			env := map[string]V{}
			for i, v := range vars {
				env[v] = FromBool(mask>>i&1 == 1)
			}
			if e1.Eval(env) != e2.Eval(env) {
				t.Logf("mismatch for %q under %v", e1.String(), env)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: evaluation is monotone in information — refining an X input to
// 0 or 1 never flips an already-known output.
func TestQuickEvalMonotone(t *testing.T) {
	vars := []string{"A", "B", "C"}
	f := func(seed int64, mask uint8, xmask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randExpr(rng, vars, 4)
		env := map[string]V{}
		for i, v := range vars {
			if xmask>>i&1 == 1 {
				env[v] = X
			} else {
				env[v] = FromBool(mask>>uint(i)&1 == 1)
			}
		}
		out := e.Eval(env)
		if !out.Known() {
			return true
		}
		// Refine every X in all combinations: output must not change.
		var xs []string
		for i, v := range vars {
			if xmask>>i&1 == 1 {
				xs = append(xs, v)
			}
		}
		for r := 0; r < 1<<len(xs); r++ {
			for i, v := range xs {
				env[v] = FromBool(r>>i&1 == 1)
			}
			if e.Eval(env) != out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
