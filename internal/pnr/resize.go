package pnr

import (
	"math"
	"strings"

	"desync/internal/netlist"
	"desync/internal/sta"
)

// ResizeReport summarizes an in-place optimization pass.
type ResizeReport struct {
	Upsized    int
	Before     float64 // worst endpoint arrival before (ns)
	After      float64
	AreaBefore float64
	AreaAfter  float64
	Passes     int
}

// drive families with size variants available in the libraries, weakest
// first.
var driveFamilies = [][]string{
	{"INVX1", "INVX2", "INVX4"},
	{"BUFX1", "BUFX2", "BUFX4"},
	{"AND2X1", "AND2X2"},
	{"OR2X1", "OR2X2"},
	{"CLKBUFX2", "CLKBUFX4", "CLKBUFX8"},
}

// ResizeForTiming is the in-place optimization of §4.7: it walks the worst
// timing paths and swaps cells for stronger drive variants of the same
// function — resizing only, never restructuring, which is exactly what the
// size_only constraint permits on the hazard-free controller gates
// (§4.6.2). It iterates until the worst arrival stops improving or
// maxPasses is reached.
func ResizeForTiming(d *netlist.Design, opts sta.Options, maxPasses int) (*ResizeReport, error) {
	m := d.Top
	upgrade := map[string]string{}
	for _, fam := range driveFamilies {
		for i := 0; i+1 < len(fam); i++ {
			upgrade[fam[i]] = fam[i+1]
		}
	}
	rep := &ResizeReport{}
	for _, in := range m.Insts {
		if in.Cell != nil {
			rep.AreaBefore += in.Cell.Area
		}
	}

	worst := func() (float64, []string, error) {
		g, err := sta.Build(m, opts)
		if err != nil {
			return 0, nil, err
		}
		r := g.Analyze()
		var names []string
		for _, step := range r.CriticalPath() {
			if i := strings.LastIndexByte(step.Node, '/'); i > 0 {
				names = append(names, step.Node[:i])
			}
		}
		return r.WorstEndpointArrival(), names, nil
	}

	w0, _, err := worst()
	if err != nil {
		return nil, err
	}
	rep.Before, rep.After = w0, w0
	prev := math.Inf(1)
	for pass := 0; pass < maxPasses && rep.After < prev; pass++ {
		prev = rep.After
		rep.Passes++
		_, path, err := worst()
		if err != nil {
			return nil, err
		}
		changed := false
		seen := map[string]bool{}
		for _, name := range path {
			if seen[name] {
				continue
			}
			seen[name] = true
			in := m.Inst(name)
			if in == nil || in.Cell == nil {
				continue
			}
			next, ok := upgrade[in.Cell.Name]
			if !ok {
				continue
			}
			in.Cell = d.Lib.MustCell(next)
			rep.Upsized++
			changed = true
		}
		if !changed {
			break
		}
		w, _, err := worst()
		if err != nil {
			return nil, err
		}
		rep.After = w
	}
	for _, in := range m.Insts {
		if in.Cell != nil {
			rep.AreaAfter += in.Cell.Area
		}
	}
	return rep, nil
}
