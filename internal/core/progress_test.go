package core

import (
	"context"
	"reflect"
	"testing"
)

// TestProgressReportsStagesInOrder pins the Progress callback to the Stages
// sequence: one call per stage, in pipeline order, at the same seams
// FlowError.Stage reports.
func TestProgressReportsStagesInOrder(t *testing.T) {
	d := buildPipelineRing(hs())
	var seen []string
	_, err := Desynchronize(context.Background(), d, Options{
		Period:   3.0,
		Progress: func(stage string) { seen = append(seen, stage) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, Stages) {
		t.Fatalf("progress sequence %v, want %v", seen, Stages)
	}
}

// TestProgressSkipsCleanUnderSkipClean: the emitted sequence mirrors what
// actually ran.
func TestProgressSkipsCleanUnderSkipClean(t *testing.T) {
	d := buildPipelineRing(hs())
	var seen []string
	_, err := Desynchronize(context.Background(), d, Options{
		Period:    3.0,
		SkipClean: true,
		Progress:  func(stage string) { seen = append(seen, stage) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{StageImport, StageGroup, StageSubstitute, StageSize, StageGenerate, StageExport}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("progress sequence %v, want %v", seen, want)
	}
}

// TestProgressStopsAtFailingStage: a canceled flow reports progress only up
// to the stage whose FlowError it returns.
func TestProgressStopsAtFailingStage(t *testing.T) {
	d := buildPipelineRing(hs())
	ctx, cancel := context.WithCancel(context.Background())
	var seen []string
	_, err := Desynchronize(ctx, d, Options{
		Period: 3.0,
		Progress: func(stage string) {
			seen = append(seen, stage)
			if stage == StageSize {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("want a cancellation error")
	}
	stage := StageOf(err)
	if stage == "" {
		t.Fatalf("cancellation must surface as a staged FlowError, got %v", err)
	}
	last := seen[len(seen)-1]
	// The failure stage is the last one entered, or the next seam after it
	// (a cancellation between stages surfaces at the following boundary).
	next := ""
	for i, s := range Stages {
		if s == last && i+1 < len(Stages) {
			next = Stages[i+1]
		}
	}
	if stage != last && stage != next {
		t.Fatalf("failed at stage %s but progress last entered %s", stage, last)
	}
	for _, s := range seen[:len(seen)-1] {
		if s == StageGenerate || s == StageExport {
			t.Fatalf("progress ran past the cancelled stage: %v", seen)
		}
	}
}
