// Package sdc models the Synopsys Design Constraints the desynchronization
// tool generates for the backend (§4.4–4.6): clock specifications for the
// master/slave latch-enable networks (Fig 4.2), timing-disabled pins that
// break the controller loops (Fig 4.5), size-only markers for hazard-free
// controller gates, and min/max point-to-point delays that keep the control
// network constrained during timing-driven P&R.
package sdc

import (
	"fmt"
	"sort"
	"strings"
)

// Clock is a create_clock specification. Sources are ports or instance
// output pins ("inst/pin").
type Clock struct {
	Name     string
	Period   float64
	Waveform [2]float64 // rise, fall edge times
	Sources  []string
	OnPins   bool // sources are pins (get_pins) rather than ports (get_ports)
}

// DisabledArc is a set_disable_timing directive on one cell arc, used to
// break the asynchronous control loops so STA sees an acyclic graph
// (§4.6.1).
type DisabledArc struct {
	Inst string
	From string
	To   string
}

// PointDelay is a set_min_delay/set_max_delay pair on a from->to pin path,
// constraining controller connections the clocks do not cover.
type PointDelay struct {
	From, To string
	Min, Max float64
}

// Constraints is everything the tool exports alongside the desynchronized
// netlist.
type Constraints struct {
	Clocks      []Clock
	Disabled    []DisabledArc
	SizeOnly    []string // instance names
	PointDelays []PointDelay
	FalsePaths  [][2]string // from, to
}

// Write renders the constraints as SDC text, deterministically.
func (c *Constraints) Write() string {
	var sb strings.Builder
	for _, ck := range c.Clocks {
		coll := "get_ports"
		if ck.OnPins {
			coll = "get_pins"
		}
		srcs := append([]string(nil), ck.Sources...)
		sort.Strings(srcs)
		// The name goes inside plain quotes, not %q: the reader's quoted
		// strings are raw (no escape sequences), so Go-style escaping would
		// not survive a Write/Parse round trip.
		fmt.Fprintf(&sb, "create_clock -name \"%s\" -period %.4g -waveform {%.4g %.4g} [%s {%s}]\n",
			ck.Name, ck.Period, ck.Waveform[0], ck.Waveform[1], coll, strings.Join(srcs, " "))
	}
	disabled := append([]DisabledArc(nil), c.Disabled...)
	sort.Slice(disabled, func(i, j int) bool {
		a, b := disabled[i], disabled[j]
		if a.Inst != b.Inst {
			return a.Inst < b.Inst
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	for _, d := range disabled {
		fmt.Fprintf(&sb, "set_disable_timing -from %s -to %s [get_cells {%s}]\n", d.From, d.To, d.Inst)
	}
	so := append([]string(nil), c.SizeOnly...)
	sort.Strings(so)
	for _, inst := range so {
		fmt.Fprintf(&sb, "set_size_only [get_cells {%s}]\n", inst)
	}
	pds := append([]PointDelay(nil), c.PointDelays...)
	sort.Slice(pds, func(i, j int) bool {
		if pds[i].From != pds[j].From {
			return pds[i].From < pds[j].From
		}
		return pds[i].To < pds[j].To
	})
	for _, p := range pds {
		fmt.Fprintf(&sb, "set_min_delay %.4g -from [get_pins {%s}] -to [get_pins {%s}]\n", p.Min, p.From, p.To)
		fmt.Fprintf(&sb, "set_max_delay %.4g -from [get_pins {%s}] -to [get_pins {%s}]\n", p.Max, p.From, p.To)
	}
	for _, fp := range c.FalsePaths {
		fmt.Fprintf(&sb, "set_false_path -from [get_pins {%s}] -to [get_pins {%s}]\n", fp[0], fp[1])
	}
	return sb.String()
}
