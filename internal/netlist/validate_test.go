package netlist

import (
	"strings"
	"testing"
)

// Validate's errors are rule-tagged and the report announces how many
// violations MaxErrors suppressed, instead of silently clipping.
func TestValidateRuleTagsAndTruncation(t *testing.T) {
	lib := NewLibrary("tl", "HS")
	buf := lib.Add(&CellDef{
		Name: "BUF", Kind: KindComb, Area: 1,
		Pins: []PinDef{{Name: "A", Dir: In}, {Name: "Z", Dir: Out}},
	})

	m := NewModule("bad")
	// Many undriven nets with sinks: one finding each.
	const n = 10
	for i := 0; i < n; i++ {
		in := m.AddInst(string(rune('a'+i)), buf)
		w := m.AddNet("w" + string(rune('a'+i)))
		if err := m.Connect(in, "A", w); err != nil {
			t.Fatal(err)
		}
	}

	errs := m.Validate(ValidateOptions{})
	if len(errs) != n {
		t.Fatalf("want %d errors, got %d", n, len(errs))
	}
	for _, e := range errs {
		if e.Rule != VRuleUndriven {
			t.Fatalf("want rule %q, got %q (%s)", VRuleUndriven, e.Rule, e.Msg)
		}
		if e.Module != "bad" {
			t.Fatalf("module not recorded: %+v", e)
		}
		if !strings.Contains(e.Error(), "bad: ") {
			t.Fatalf("Error() lost the module prefix: %q", e.Error())
		}
	}

	// A tighter budget truncates and says by how much.
	errs = m.Validate(ValidateOptions{MaxErrors: 4})
	if len(errs) != 5 {
		t.Fatalf("want 4 errors + truncation marker, got %d", len(errs))
	}
	last := errs[len(errs)-1]
	if last.Rule != VRuleTruncated {
		t.Fatalf("last error not the truncation marker: %+v", last)
	}
	if !strings.Contains(last.Msg, "6 further") {
		t.Fatalf("truncation count wrong: %q", last.Msg)
	}
}
