package ctrlnet

import (
	"fmt"
	"sort"

	"desync/internal/netlist"
)

// Claim is what the flow says it built: the insert stage emits one directly
// from its own bookkeeping (the DDG it walked, the delay levels it sized,
// the ports it punched). It deliberately shares no code with Derive — the
// whole point of the cross-check is that the two views are produced
// independently, one from flow state and one from netlist structure.
type Claim struct {
	Module  *netlist.Module
	Regions []int // sorted

	// Preds/Succs is the region dependency graph the flow derived before
	// insertion (core.BuildDDG), restricted to inserted regions.
	Preds, Succs map[int][]int

	// DelayLevels is the sized matched-element stage count per region; zero
	// for completion-detected regions (which have no matched element).
	DelayLevels map[int]int

	// MSLevels is the master→slave element stage count per region.
	MSLevels map[int]int

	// Completion marks regions the flow equipped with completion detection.
	Completion map[int]bool

	// EnvRequests/EnvAcks list the environment handshake input ports the
	// flow exposed, in region order.
	EnvRequests, EnvAcks []string
}

// Mismatch is one disagreement between a Claim and a derived Network.
type Mismatch struct {
	Region int // -1 when not specific to one region
	What   string
}

func (mm Mismatch) String() string {
	if mm.Region < 0 {
		return mm.What
	}
	return fmt.Sprintf("G%d: %s", mm.Region, mm.What)
}

// Diff cross-checks the flow's claim against the netlist-derived network
// and returns every disagreement, in deterministic order. An empty result
// means the netlist structurally realizes exactly what the flow reported.
func Diff(c *Claim, n *Network) []Mismatch {
	var out []Mismatch
	miss := func(g int, format string, args ...any) {
		out = append(out, Mismatch{Region: g, What: fmt.Sprintf(format, args...)})
	}

	if !equalInts(c.Regions, n.Regions) {
		miss(-1, "claimed regions %v, netlist has %v", c.Regions, n.Regions)
		return out // per-region checks would only cascade noise
	}

	for _, g := range c.Regions {
		if ctl := n.Controllers[g]; ctl == nil || !ctl.Complete() {
			miss(g, "controller gate set incomplete in netlist")
		}
		if !equalInts(c.Succs[g], n.Succs[g]) {
			miss(g, "claimed successors %v, derived %v", c.Succs[g], n.Succs[g])
		}
		if !equalInts(c.Preds[g], n.Preds[g]) {
			miss(g, "claimed predecessors %v, derived %v", c.Preds[g], n.Preds[g])
		}
		if c.Completion[g] != n.Completion[g] {
			miss(g, "claimed completion detection %v, derived %v", c.Completion[g], n.Completion[g])
		}
		if want, rd := c.DelayLevels[g], n.ReqDelays[g]; rd == nil {
			if want != 0 {
				miss(g, "claimed %d matched delay levels, netlist has no %s chain", want, DelayPrefix(g))
			}
		} else if rd.Levels != want {
			miss(g, "claimed %d matched delay levels, derived %d", want, rd.Levels)
		}
		if want, ms := c.MSLevels[g], n.MSDelays[g]; ms == nil {
			if want != 0 {
				miss(g, "claimed %d master-slave delay levels, netlist has no %s chain", want, MSDelayPrefix(g))
			}
		} else if ms.Levels != want {
			miss(g, "claimed %d master-slave delay levels, derived %d", want, ms.Levels)
		}
	}

	if !equalStrs(c.EnvRequests, n.EnvRequests) {
		miss(-1, "claimed environment request ports %v, derived %v", c.EnvRequests, n.EnvRequests)
	}
	if !equalStrs(c.EnvAcks, n.EnvAcks) {
		miss(-1, "claimed environment ack ports %v, derived %v", c.EnvAcks, n.EnvAcks)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func equalStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
