// Command drsweep sweeps the robustness surface of a desynchronized
// design: the fault-injection matrix (under-margin delay, control
// stuck-at, optional glitch faults) evaluated over a PVT corner grid with
// Monte Carlo intra-die mismatch on top — the Fig 5.3/5.4-style
// measurement over the full cross-product the original paper sampled at
// two points. The default subject is the DLX case study; -gen accepts any
// designs.ParseSpec generator spec (arm, fir, pipeline:depth=8,width=32,
// ...), desynchronized through the generic flow.
//
// Usage:
//
//	drsweep [-gen dlx] [-corners 3] [-chips 3] [-sigma 0.05] [-cycles 6]
//	        [-delay-factor 40] [-per-region 2] [-glitches]
//	        [-checkpoint sweep.journal] [-resume] [-fsync-every 64]
//	        [-scenario-timeout 30s] [-max-failures N]
//	        [-seed 5] [-j N] [-json] [-quiet]
//
// The sweep streams: scenarios run on -j workers, fold in scenario order
// into bounded-memory aggregates, and (with -checkpoint) into an
// append-only journal. Ctrl-C or SIGTERM cancels cleanly after the
// journal's current prefix is durable; rerunning with -resume replays that
// prefix and continues, converging to the same report byte-for-byte as an
// uninterrupted run at any -j. Scenarios that panic or exceed
// -scenario-timeout are quarantined as recorded failures, never a crashed
// sweep; -max-failures stops gracefully once the budget is spent.
//
// Exit codes: 0 sweep completed (check the report for escapes), 1 sweep
// aborted (including interruption — resume with -resume), 2 usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"desync/internal/cliutil"
	"desync/internal/expt"
	"desync/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type sweepOpts struct {
	gen                     string
	corners, chips, cycles  int
	sigma                   float64
	delayFactor             float64
	perRegion               int
	glitches                bool
	checkpoint              string
	resume                  bool
	fsyncEvery, maxFailures int
	scenarioTimeout         time.Duration
	seed                    int64
	parallelism             int
	jsonOut, quiet          bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o sweepOpts
	fs.StringVar(&o.gen, "gen", "dlx", "design to sweep: dlx (case-study flow), or any spec like pipeline:depth=8,width=32")
	fs.IntVar(&o.corners, "corners", 3, "PVT grid points across [1, CornerSpread]")
	fs.IntVar(&o.chips, "chips", 3, "Monte Carlo chips (intra-die draws) per corner")
	fs.Float64Var(&o.sigma, "sigma", 0.05, "per-instance intra-die mismatch sigma")
	fs.IntVar(&o.cycles, "cycles", 6, "simulated original-clock cycles per scenario")
	fs.Float64Var(&o.delayFactor, "delay-factor", 40, "delay-fault factor (raised per gate until under-margin)")
	fs.IntVar(&o.perRegion, "per-region", 2, "delay faults per region (most active gates first)")
	fs.BoolVar(&o.glitches, "glitches", false, "include the glitch faults (informative: glitches may escape)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "append-only journal path for crash/SIGTERM resume")
	fs.BoolVar(&o.resume, "resume", false, "replay the -checkpoint journal's clean prefix and continue it")
	fs.IntVar(&o.fsyncEvery, "fsync-every", 64, "journal records per fsync (1: every record)")
	fs.IntVar(&o.maxFailures, "max-failures", 0, "stop gracefully after this many quarantined scenarios (0: no budget)")
	cliutil.DurationVar(fs, &o.scenarioTimeout, "scenario-timeout", 0, "wall-clock budget per scenario; overruns are quarantined")
	cliutil.SeedVar(fs, &o.seed, "seed", 5, "random seed for chip draws and per-scenario jitter")
	cliutil.ParallelismVar(fs, &o.parallelism)
	fs.BoolVar(&o.jsonOut, "json", false, "emit the report as JSON")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress progress on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.resume && o.checkpoint == "" {
		fmt.Fprintln(stderr, "drsweep: -resume needs -checkpoint")
		return 2
	}

	var progress func(done, total int)
	if !o.quiet {
		last := -1
		progress = func(done, total int) {
			// One line per ~5%: visible on an hours-long sweep, silent cost.
			step := total / 20
			if step < 1 {
				step = 1
			}
			if done/step != last || done == total {
				last = done / step
				fmt.Fprintf(stderr, "drsweep: %d/%d scenarios\n", done, total)
			}
		}
	}

	var rep *sweep.Report
	interrupted, err := cliutil.RunDrained(func(ctx context.Context) error {
		cfg := expt.SurfaceConfig{
			Corners: o.corners, Chips: o.chips, Sigma: o.sigma,
			Cycles: o.cycles, DelayFactor: o.delayFactor,
			DelayPerRegion: o.perRegion, Glitches: o.glitches,
			Seed: o.seed, Parallelism: o.parallelism,
			Checkpoint: o.checkpoint, Resume: o.resume, FsyncEvery: o.fsyncEvery,
			ScenarioTimeout: o.scenarioTimeout, MaxFailures: o.maxFailures,
			Progress: progress,
		}
		var err error
		if o.gen == "dlx" {
			// The DLX keeps its hand-tuned case-study flow (and its existing
			// checkpoint journals stay replayable).
			rep, err = expt.DLXRobustnessSurface(ctx, nil, cfg)
			return err
		}
		f, err := expt.RunGenFlow(o.gen, expt.FlowConfig{Parallelism: o.parallelism})
		if err != nil {
			return err
		}
		rep, err = expt.RobustnessSurface(ctx, f.Desync.Top, f.Period, cfg)
		return err
	})
	if err != nil {
		if interrupted && o.checkpoint != "" {
			fmt.Fprintf(stderr, "drsweep: interrupted; journal %s holds the completed prefix — rerun with -resume\n", o.checkpoint)
		} else {
			fmt.Fprintf(stderr, "drsweep: %v\n", err)
		}
		return 1
	}
	if o.jsonOut {
		if err := rep.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "drsweep: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprint(stdout, rep.Render())
	return 0
}
