package stdcells

import (
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
)

func TestLibrariesBuild(t *testing.T) {
	hs := New(HighSpeed)
	ll := New(LowLeakage)
	if len(hs.Cells) == 0 || len(hs.Cells) != len(ll.Cells) {
		t.Fatalf("cell counts: HS=%d LL=%d", len(hs.Cells), len(ll.Cells))
	}
	// Every cell must have coherent pins, functions and arcs.
	for name, c := range hs.Cells {
		switch c.Kind {
		case netlist.KindComb, netlist.KindTie:
			if len(c.Functions) == 0 {
				t.Errorf("%s: combinational cell without function", name)
			}
			for out, fn := range c.Functions {
				if c.Pin(out) == nil || c.Pin(out).Dir != netlist.Out {
					t.Errorf("%s: function output %s is not an output pin", name, out)
				}
				for _, v := range fn.Vars() {
					if c.Pin(v) == nil || c.Pin(v).Dir != netlist.In {
						t.Errorf("%s: function references unknown input %s", name, v)
					}
				}
			}
		case netlist.KindFF, netlist.KindLatch:
			if c.Seq == nil {
				t.Errorf("%s: sequential cell without SeqSpec", name)
				continue
			}
			if c.Pin(c.Seq.ClockPin) == nil || c.Pin(c.Seq.Q) == nil {
				t.Errorf("%s: SeqSpec references missing pins", name)
			}
			if c.Setup.Worst <= 0 || c.Hold.Worst <= 0 {
				t.Errorf("%s: missing setup/hold", name)
			}
		case netlist.KindCElem:
			if c.GC == nil {
				t.Errorf("%s: C element without GC spec", name)
			}
		}
		// All arcs reference real pins with positive worst-case delay.
		for _, a := range c.Arcs {
			if c.Pin(a.From) == nil || c.Pin(a.To) == nil {
				t.Errorf("%s: arc %s->%s references missing pins", name, a.From, a.To)
			}
			if a.Rise.Worst <= 0 || a.Fall.Worst <= 0 {
				t.Errorf("%s: arc %s->%s has non-positive delay", name, a.From, a.To)
			}
			if a.Rise.Worst < a.Rise.Best || a.Fall.Worst < a.Fall.Best {
				t.Errorf("%s: worst faster than best on %s->%s", name, a.From, a.To)
			}
		}
		if c.Area <= 0 {
			t.Errorf("%s: non-positive area", name)
		}
	}
}

func TestVariantScaling(t *testing.T) {
	hs := New(HighSpeed)
	ll := New(LowLeakage)
	h := hs.MustCell("NAND2X1")
	l := ll.MustCell("NAND2X1")
	if l.Arcs[0].Rise.Best <= h.Arcs[0].Rise.Best {
		t.Error("LL should be slower than HS")
	}
	if l.Leakage.Worst >= h.Leakage.Worst {
		t.Error("LL should leak less than HS")
	}
	if l.Area != h.Area {
		t.Error("area should not depend on variant")
	}
}

func TestCellFunctions(t *testing.T) {
	lib := New(HighSpeed)
	cases := []struct {
		cell string
		env  map[string]logic.V
		out  logic.V
	}{
		{"NAND2X1", map[string]logic.V{"A": logic.H, "B": logic.H}, logic.L},
		{"NOR2X1", map[string]logic.V{"A": logic.L, "B": logic.L}, logic.H},
		{"MUX2X1", map[string]logic.V{"A": logic.H, "B": logic.L, "S": logic.L}, logic.H},
		{"MUX2X1", map[string]logic.V{"A": logic.H, "B": logic.L, "S": logic.H}, logic.L},
		{"AOI21X1", map[string]logic.V{"A": logic.H, "B": logic.H, "C": logic.L}, logic.L},
		{"OAI21X1", map[string]logic.V{"A": logic.L, "B": logic.L, "C": logic.H}, logic.H},
		{"ANDN2X1", map[string]logic.V{"A": logic.H, "B": logic.L}, logic.H},
		{"ANDN2X1", map[string]logic.V{"A": logic.H, "B": logic.H}, logic.L},
		{"XOR2X1", map[string]logic.V{"A": logic.H, "B": logic.L}, logic.H},
		{"TIE0", nil, logic.L},
		{"TIE1", nil, logic.H},
	}
	for _, c := range cases {
		cell := lib.MustCell(c.cell)
		if got := cell.Functions["Z"].Eval(c.env); got != c.out {
			t.Errorf("%s under %v: got %v want %v", c.cell, c.env, got, c.out)
		}
	}
}

// Table 2.1: the C-Muller element's truth table — all-0 inputs give 0,
// all-1 inputs give 1, anything else holds the previous value. The GC spec
// encodes set/reset conditions; here we check they partition correctly.
func TestCMullerTruthTable(t *testing.T) {
	lib := New(HighSpeed)
	for _, name := range []string{"C2X1", "C3X1"} {
		c := lib.MustCell(name)
		n := len(c.Inputs())
		for mask := 0; mask < 1<<n; mask++ {
			env := map[string]logic.V{}
			for i, p := range c.Inputs() {
				env[p] = logic.FromBool(mask>>i&1 == 1)
			}
			set := c.GC.Set.Eval(env) == logic.H
			reset := c.GC.Reset.Eval(env) == logic.H
			allOnes := mask == 1<<n-1
			allZeros := mask == 0
			if set != allOnes {
				t.Errorf("%s: set wrong for mask %b", name, mask)
			}
			if reset != allZeros {
				t.Errorf("%s: reset wrong for mask %b", name, mask)
			}
			if set && reset {
				t.Errorf("%s: set and reset both active for mask %b", name, mask)
			}
		}
	}
}

func TestC2NInvertedInput(t *testing.T) {
	c := New(HighSpeed).MustCell("C2NX1")
	env := map[string]logic.V{"A": logic.H, "B": logic.L}
	if c.GC.Set.Eval(env) != logic.H {
		t.Error("C2N should set on A=1,B=0")
	}
	env = map[string]logic.V{"A": logic.L, "B": logic.H}
	if c.GC.Reset.Eval(env) != logic.H {
		t.Error("C2N should reset on A=0,B=1")
	}
}

func TestLatchVsFlipFlopAreaRatio(t *testing.T) {
	lib := New(HighSpeed)
	dff := lib.MustCell("DFFQX1")
	lat := lib.MustCell("LATQX1")
	ratio := 2 * lat.Area / dff.Area
	// A master/slave latch pair must cost mildly more than a flip-flop:
	// this ratio drives the sequential-area overheads of Tables 5.1/5.2.
	if ratio < 1.05 || ratio > 1.35 {
		t.Fatalf("latch pair / DFF area ratio %.2f outside the regime the paper reports", ratio)
	}
}

func TestGatefileExtraction(t *testing.T) {
	lib := New(HighSpeed)
	g := ExtractGatefile(lib)
	if len(g.Cells) != len(lib.Cells) {
		t.Fatalf("gatefile has %d cells, library %d", len(g.Cells), len(lib.Cells))
	}
	// Sorted by name.
	for i := 1; i < len(g.Cells); i++ {
		if g.Cells[i-1].Name >= g.Cells[i].Name {
			t.Fatal("gatefile not sorted")
		}
	}
	// Scan FF pin classes survive extraction.
	for _, e := range g.Cells {
		if e.Name == "SDFFQX1" {
			var si, se bool
			for _, p := range e.Pins {
				si = si || p.Class == netlist.ClassScanIn
				se = se || p.Class == netlist.ClassScanEnable
			}
			if !si || !se {
				t.Fatal("scan pin classes lost in gatefile")
			}
		}
	}
}

func TestBufferLikeCellsInLibrary(t *testing.T) {
	lib := New(HighSpeed)
	for _, name := range []string{"BUFX1", "BUFX2", "BUFX4", "CLKBUFX2"} {
		if inv, ok := lib.MustCell(name).IsBufferLike(); !ok || inv {
			t.Errorf("%s should be a non-inverting buffer", name)
		}
	}
	for _, name := range []string{"INVX1", "INVX2", "INVX4"} {
		if inv, ok := lib.MustCell(name).IsBufferLike(); !ok || !inv {
			t.Errorf("%s should be an inverting buffer", name)
		}
	}
}

func TestGatefileTextRoundTrip(t *testing.T) {
	lib := New(HighSpeed)
	text := WriteGatefile(lib)
	sum, err := ParseGatefile(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Cells) != len(lib.Cells) {
		t.Fatalf("parsed %d cells, want %d", len(sum.Cells), len(lib.Cells))
	}
	for name, c := range lib.Cells {
		if sum.Cells[name] != c.Kind {
			t.Fatalf("%s: kind %v want %v", name, sum.Cells[name], c.Kind)
		}
		if len(sum.Pins[name]) != len(c.Pins) {
			t.Fatalf("%s: %d pins want %d", name, len(sum.Pins[name]), len(c.Pins))
		}
	}
	// Every flip-flop has a replacement rule with the right latch.
	for name, c := range lib.Cells {
		if c.Kind != netlist.KindFF {
			continue
		}
		r, ok := sum.Replaces[name]
		if !ok {
			t.Fatalf("%s: no replacement rule", name)
		}
		wantLatch := "LATQX1"
		if c.Seq.AsyncReset != "" {
			wantLatch = "LATRQX1"
		}
		if r.Latch != wantLatch {
			t.Fatalf("%s: latch %s want %s", name, r.Latch, wantLatch)
		}
	}
	// Scan flip-flops carry the scanmux helper (Fig 3.1a).
	if r := sum.Replaces["SDFFQX1"]; len(r.Extra) == 0 || r.Extra[0] != "scanmux:MUX2X1" {
		t.Fatalf("SDFFQX1 rule wrong: %+v", sum.Replaces["SDFFQX1"])
	}
	// Malformed inputs error.
	for _, bad := range []string{"cell X", "replace A B", "bogus line here", "cell X nope"} {
		if _, err := ParseGatefile(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

// TestCornerGrid: the PVT axis spans [1, CornerSpread] inclusive, evenly,
// with exact endpoints (sweep journals compare these floats bitwise).
func TestCornerGrid(t *testing.T) {
	for _, n := range []int{0, 1} {
		if g := CornerGrid(n); len(g) != 1 || g[0] != 1 {
			t.Fatalf("CornerGrid(%d) = %v", n, g)
		}
	}
	g := CornerGrid(7)
	if len(g) != 7 || g[0] != 1 || g[6] != CornerSpread {
		t.Fatalf("CornerGrid(7) = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing at %d: %v", i, g)
		}
	}
	if g2 := CornerGrid(2); g2[0] != 1 || g2[1] != CornerSpread {
		t.Fatalf("CornerGrid(2) = %v", g2)
	}
}
