package designs

import (
	"math/rand"
	"testing"

	"desync/internal/lint"
	"desync/internal/netlist"
	"desync/internal/stdcells"
)

// checkPipelineClean asserts the generator's core contract: every knob
// combination yields a design that passes Validate and carries no NL-*
// lint findings at all (not merely none at Error severity).
func checkPipelineClean(t *testing.T, cfg PipelineCfg) *netlist.Design {
	t.Helper()
	d, err := BuildPipeline(stdcells.New(stdcells.HighSpeed), cfg)
	if err != nil {
		t.Fatalf("%+v: build: %v", cfg, err)
	}
	if errs := d.Top.Validate(netlist.ValidateOptions{}); len(errs) > 0 {
		t.Fatalf("%+v: validate: %v", cfg, errs[0])
	}
	rep := lint.Check(d.Top, lint.Options{})
	if len(rep.Findings) > 0 {
		t.Fatalf("%+v: lint: %v (and %d more)", cfg, rep.Findings[0], len(rep.Findings)-1)
	}
	return d
}

// TestPipelineKnobMatrix sweeps every fanout × kind combination at several
// shapes, plus randomized configurations, and requires each to be
// Validate- and lint-clean.
func TestPipelineKnobMatrix(t *testing.T) {
	for _, fanout := range []string{"balanced", "broadcast", "tree"} {
		for _, kind := range []string{"mix", "feistel"} {
			for _, shape := range []struct{ depth, width, regions int }{
				{1, 16, 0}, {3, 16, 1}, {8, 32, 4}, {5, 24, 5},
			} {
				cfg := PipelineCfg{
					Depth: shape.depth, Width: shape.width, Regions: shape.regions,
					Fanout: fanout, Kind: kind, Seed: 7,
				}
				checkPipelineClean(t, cfg)
			}
		}
	}
	// Randomized shapes: quick seeds, bounded size so the matrix stays fast.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 12; i++ {
		cfg := PipelineCfg{
			Depth:   1 + rng.Intn(10),
			Width:   2 * (8 + rng.Intn(24)), // even, >= 16: valid for both kinds
			Fanout:  []string{"balanced", "broadcast", "tree"}[rng.Intn(3)],
			Kind:    []string{"mix", "feistel"}[rng.Intn(2)],
			Seed:    rng.Int63(),
			Regions: 0,
		}
		cfg.Regions = rng.Intn(cfg.Depth + 1)
		checkPipelineClean(t, cfg)
	}
}

// TestPipelineDeterministic requires the same configuration to reproduce
// the same netlist, byte for byte, via ContentHash — the property the flow
// server's content-addressed cache depends on — and a different seed to
// produce a different one.
func TestPipelineDeterministic(t *testing.T) {
	cfg := PipelineCfg{Depth: 6, Width: 32, Regions: 3, Fanout: "broadcast", Kind: "mix", Seed: 42}
	a := checkPipelineClean(t, cfg)
	b := checkPipelineClean(t, cfg)
	if ah, bh := a.ContentHash(), b.ContentHash(); ah != bh {
		t.Fatalf("same cfg, different ContentHash: %s vs %s", ah, bh)
	}
	cfg.Seed = 43
	c := checkPipelineClean(t, cfg)
	if a.ContentHash() == c.ContentHash() {
		t.Fatalf("different seeds produced identical netlists")
	}
}

// TestPipelineShape pins down the structural promises: group assignment
// covers exactly 1..Regions contiguously, every instance is grouped, and
// the port list matches the kind.
func TestPipelineShape(t *testing.T) {
	cfg := PipelineCfg{Depth: 8, Width: 16, Regions: 4, Kind: "feistel", Seed: 3}
	d := checkPipelineClean(t, cfg)
	m := d.Top
	seen := map[int]bool{}
	for _, in := range m.Insts {
		if in.Group < 1 || in.Group > cfg.Regions {
			t.Fatalf("inst %s group %d outside [1,%d]", in.Name, in.Group, cfg.Regions)
		}
		seen[in.Group] = true
	}
	if len(seen) != cfg.Regions {
		t.Fatalf("populated %d regions, want %d", len(seen), cfg.Regions)
	}
	for _, p := range []string{"clk", "rstn", "din[0]", "key[0]", "dout[0]"} {
		if m.Port(p) == nil {
			t.Fatalf("missing port %s", p)
		}
	}
	if got := len(m.Insts); got < cfg.EstInsts()/2 || got > cfg.EstInsts()*2 {
		t.Fatalf("instance count %d far from estimate %d", got, cfg.EstInsts())
	}
}

// TestPipelineValidateRejects enumerates the configuration errors.
func TestPipelineValidateRejects(t *testing.T) {
	for _, cfg := range []PipelineCfg{
		{Depth: 0, Width: 16},
		{Depth: 4, Width: 4},
		{Depth: 4, Width: 16, Regions: -1},
		{Depth: 4, Width: 16, Fanout: "star"},
		{Depth: 4, Width: 16, Kind: "sponge"},
		{Depth: 4, Width: 17, Kind: "feistel"},
		{Depth: 4, Width: 8, Kind: "feistel"},
	} {
		if _, err := BuildPipeline(stdcells.New(stdcells.HighSpeed), cfg); err == nil {
			t.Errorf("%+v: build accepted an invalid configuration", cfg)
		}
	}
}
