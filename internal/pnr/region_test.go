package pnr

import (
	"context"
	"testing"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/netlist"
	"desync/internal/stdcells"
)

// §6: region-aware placement keeps each matched delay element near the
// logic it tracks; measure the element-to-region spread with and without.
func TestRegionAwarePlacementTightensDelayElements(t *testing.T) {
	build := func() *netlist.Design {
		lib := stdcells.New(stdcells.HighSpeed)
		d, err := designs.BuildDLX(lib, designs.TestProgram())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Desynchronize(context.Background(), d, core.Options{Period: 5}); err != nil {
			t.Fatal(err)
		}
		return d
	}
	spread := func(regionAware bool) float64 {
		d := build()
		opts := DefaultOptions()
		opts.Utilization = 0.91
		opts.RegionAware = regionAware
		lay, err := PlaceAndRoute(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		sp := RegionSpread(lay, d.Top)
		if len(sp) == 0 {
			t.Fatal("no delay-element spread measured")
		}
		total := 0.0
		for _, v := range sp {
			total += v
		}
		return total / float64(len(sp))
	}
	base := spread(false)
	aware := spread(true)
	if aware >= base {
		t.Fatalf("region-aware placement did not tighten delay elements: %.1f vs %.1f µm", aware, base)
	}
	t.Logf("mean delay-element distance to region centroid: %.1f µm -> %.1f µm", base, aware)
}
