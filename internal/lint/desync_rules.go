package lint

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"desync/internal/handshake"
	"desync/internal/netlist"
	"desync/internal/sta"
)

// Latch phases of the master/slave substitution.
const (
	phaseMaster = iota
	phaseSlave
)

func phaseName(p int) string {
	if p == phaseMaster {
		return "master"
	}
	return "slave"
}

// root is one controller latch-enable gate reachable backwards from a latch
// enable net.
type root struct {
	region int
	phase  int
}

// dsChecker carries the state the DS-* rules share: the latch coloring, the
// derived region graph, and memoized cone walks.
type dsChecker struct {
	r *Report
	m *netlist.Module

	regions   []int // sorted region ids, from controller instance names
	regionSet map[int]bool

	latchPhase  map[*netlist.Inst]int
	latchRegion map[*netlist.Inst]int

	enableMemo map[*netlist.Net][]root
	srcMemo    map[*netlist.Net]map[*netlist.Inst]bool

	preds, succs map[int][]int
}

// checkDesync runs the DS-* family over one post-flow module.
func (r *Report) checkDesync(m *netlist.Module, opts Options) {
	c := &dsChecker{
		r: r, m: m,
		regionSet:   map[int]bool{},
		latchPhase:  map[*netlist.Inst]int{},
		latchRegion: map[*netlist.Inst]int{},
		enableMemo:  map[*netlist.Net][]root{},
		srcMemo:     map[*netlist.Net]map[*netlist.Inst]bool{},
		preds:       map[int][]int{}, succs: map[int][]int{},
	}
	c.checkFFs()
	c.discoverRegions()
	if len(c.regions) == 0 {
		r.addf(RulePair, Error, m.Name, "", "",
			"no controller network found (no G<id>_Mctrl instances); the design is not desynchronized")
		return
	}
	c.colorLatches()
	c.checkPhases()
	c.buildRegionGraph()
	c.checkChannels()
	c.checkCElems()
	c.checkTiming(opts)
}

// checkFFs: after substitution no flip-flop may remain (DS-FF).
func (c *dsChecker) checkFFs() {
	for _, in := range c.m.Insts {
		if in.Cell != nil && in.Cell.Kind == netlist.KindFF {
			c.r.addf(RuleFF, Error, c.m.Name, in.Name, "",
				fmt.Sprintf("flip-flop %s survived master/slave substitution", in.CellName()))
		}
	}
}

// discoverRegions reads the region ids off the controller instance names,
// which survive Verilog round trips.
func (c *dsChecker) discoverRegions() {
	for _, in := range c.m.Insts {
		g, ok := handshake.ControlRegion(in.Name)
		if ok && in.Name == fmt.Sprintf("G%d_Mctrl/g", g) && !c.regionSet[g] {
			c.regionSet[g] = true
			c.regions = append(c.regions, g)
		}
	}
	sort.Ints(c.regions)
}

// ctrlEnableRoot matches the controller latch-enable gates by name.
func ctrlEnableRoot(name string) (root, bool) {
	g, ok := handshake.ControlRegion(name)
	if !ok {
		return root{}, false
	}
	switch name {
	case fmt.Sprintf("G%d_Mctrl/g", g):
		return root{region: g, phase: phaseMaster}, true
	case fmt.Sprintf("G%d_Sctrl/g", g):
		return root{region: g, phase: phaseSlave}, true
	}
	return root{}, false
}

// enableRoots walks backwards from an enable net through combinational
// gating (clock-gate ANDs, set ORs, inverters of Fig 3.1) and returns the
// controller enable gates that feed it.
func (c *dsChecker) enableRoots(n *netlist.Net, visiting map[*netlist.Net]bool) []root {
	if rs, ok := c.enableMemo[n]; ok {
		return rs
	}
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)
	var out []root
	drv := n.Driver.Inst
	switch {
	case drv == nil || drv.Cell == nil:
		// port, tie-off through submodule, or floating: no root
	default:
		if rt, ok := ctrlEnableRoot(drv.Name); ok {
			out = append(out, rt)
			break
		}
		if drv.Cell.Kind != netlist.KindComb {
			break
		}
		for pin, in := range drv.Conns {
			if dir, ok := pinDirOf(drv, pin); ok && dir == netlist.In && in != nil {
				out = append(out, c.enableRoots(in, visiting)...)
			}
		}
	}
	c.enableMemo[n] = out
	return out
}

// colorLatches assigns every latch its phase and region from its enable
// root (DS-ENABLE). On designs re-read from Verilog — where in-memory Group
// tags are gone — the recovered region is stored back on the latch so the
// timing rules can attribute budgets per region.
func (c *dsChecker) colorLatches() {
	for _, in := range c.m.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindLatch {
			continue
		}
		en := in.Conns[in.Cell.Seq.ClockPin]
		if en == nil {
			c.r.addf(RuleEnable, Error, c.m.Name, in.Name, "",
				"latch enable pin is unconnected")
			continue
		}
		roots := c.enableRoots(en, map[*netlist.Net]bool{})
		uniq := map[root]bool{}
		for _, rt := range roots {
			uniq[rt] = true
		}
		switch len(uniq) {
		case 0:
			c.r.addf(RuleEnable, Error, c.m.Name, in.Name, en.Name,
				"latch enable is not driven by any controller")
		case 1:
			rt := roots[0]
			c.latchPhase[in] = rt.phase
			c.latchRegion[in] = rt.region
			if in.Group < 0 {
				in.Group = rt.region
			}
		default:
			var names []string
			for rt := range uniq {
				names = append(names, fmt.Sprintf("G%d/%s", rt.region, phaseName(rt.phase)))
			}
			sort.Strings(names)
			c.r.addf(RuleEnable, Error, c.m.Name, in.Name, en.Name,
				"latch enable reaches multiple controller phases: "+strings.Join(names, ", "))
		}
	}
}

// netSources returns the sequential instances whose outputs reach net n
// backwards through combinational datapath logic (memoized; cycles — which
// NL-LOOP reports separately — terminate the walk).
func (c *dsChecker) netSources(n *netlist.Net, visiting map[*netlist.Net]bool) map[*netlist.Inst]bool {
	if s, ok := c.srcMemo[n]; ok {
		return s
	}
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)
	out := map[*netlist.Inst]bool{}
	drv := n.Driver.Inst
	if drv != nil && drv.Cell != nil {
		switch {
		case drv.Cell.Seq != nil:
			out[drv] = true
		case drv.Cell.Kind == netlist.KindComb && !isControlInst(drv):
			for pin, in := range drv.Conns {
				if dir, ok := pinDirOf(drv, pin); ok && dir == netlist.In && in != nil {
					for s := range c.netSources(in, visiting) {
						out[s] = true
					}
				}
			}
		}
	}
	c.srcMemo[n] = out
	return out
}

// latchDataNets returns the data-input nets of a sequential instance.
func latchDataNets(in *netlist.Inst) []*netlist.Net {
	var out []*netlist.Net
	for _, p := range in.Cell.Pins {
		if p.Dir == netlist.In && p.Class == netlist.ClassData {
			if n := in.Conns[p.Name]; n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// checkPhases verifies the flow-equivalence prerequisite: every
// latch-to-latch data path connects opposite phases — masters are fed by
// slaves (of the predecessor regions, or their own master→slave pair seen
// from the other side) and slaves by masters (DS-PHASE).
func (c *dsChecker) checkPhases() {
	for _, in := range c.m.Insts {
		p, ok := c.latchPhase[in]
		if !ok {
			continue // uncolored: DS-ENABLE already reported
		}
		for _, n := range latchDataNets(in) {
			for src := range c.netSources(n, map[*netlist.Net]bool{}) {
				sp, ok := c.latchPhase[src]
				if !ok || sp != p {
					continue // uncolored, a flip-flop (DS-FF), or alternating
				}
				c.r.addf(RulePhase, Error, c.m.Name, in.Name, n.Name,
					fmt.Sprintf("%s-phase latch is fed by %s-phase latch %s: phases must alternate",
						phaseName(p), phaseName(sp), src.Name))
			}
		}
	}
}

// buildRegionGraph derives the region dependency graph from latch
// connectivity alone: an edge u→v when a latch of region u reaches a data
// input of a latch of region v. Direct same-region hops (the internal
// master→slave connection and signal-history chains) are not dependencies,
// matching core.BuildDDG; combinationally-mediated self edges stay.
func (c *dsChecker) buildRegionGraph() {
	edges := map[[2]int]bool{}
	for _, in := range c.m.Insts {
		v, ok := c.latchRegion[in]
		if !ok {
			continue
		}
		for _, n := range latchDataNets(in) {
			for src := range c.netSources(n, map[*netlist.Net]bool{}) {
				u, ok := c.latchRegion[src]
				if !ok {
					continue
				}
				if u == v && n.Driver.Inst == src {
					continue // direct intra-region register hop
				}
				edges[[2]int{u, v}] = true
			}
		}
	}
	for e := range edges {
		c.succs[e[0]] = append(c.succs[e[0]], e[1])
		c.preds[e[1]] = append(c.preds[e[1]], e[0])
	}
	for _, l := range c.succs {
		sort.Ints(l)
	}
	for _, l := range c.preds {
		sort.Ints(l)
	}
}

// ctreeLeaves collects the external input nets of the C-element tree whose
// instance names carry the given prefix.
func (c *dsChecker) ctreeLeaves(prefix string) []string {
	internal := map[*netlist.Net]bool{}
	var members []*netlist.Inst
	for _, in := range c.m.Insts {
		if !strings.HasPrefix(in.Name, prefix) || in.Cell == nil {
			continue
		}
		members = append(members, in)
		for pin, n := range in.Conns {
			if dir, ok := pinDirOf(in, pin); ok && dir == netlist.Out && n != nil {
				internal[n] = true
			}
		}
	}
	leafSet := map[string]bool{}
	for _, in := range members {
		for pin, n := range in.Conns {
			if dir, ok := pinDirOf(in, pin); ok && dir == netlist.In && n != nil && !internal[n] {
				leafSet[n.Name] = true
			}
		}
	}
	var leaves []string
	for n := range leafSet {
		leaves = append(leaves, n)
	}
	sort.Strings(leaves)
	return leaves
}

// checkChannels cross-checks the req/ack wiring of every region against the
// derived region graph (DS-PAIR): the six control nets exist and are driven
// by their controller gates, the master request arrives from the rendezvous
// of exactly the predecessors' slave requests through the region's delay
// element, and the slave acknowledge rendezvouses exactly the successors'
// master acknowledges.
func (c *dsChecker) checkChannels() {
	m := c.m
	pair := func(inst, net, format string, args ...any) {
		c.r.addf(RulePair, Error, m.Name, inst, net, fmt.Sprintf(format, args...))
	}
	// Latches colored to a region without a controller can't happen (colors
	// come from controllers); the reverse — a controller pair no latch
	// listens to — is dead control logic.
	latchRegions := map[int]bool{}
	for _, g := range c.latchRegion {
		latchRegions[g] = true
	}
	for _, g := range c.regions {
		if !latchRegions[g] {
			pair(fmt.Sprintf("G%d_Mctrl/g", g), "", "controller pair for region %d, but no latch is enabled by it", g)
		}
	}

	for _, g := range c.regions {
		nets := map[string]*netlist.Net{}
		missing := false
		for _, suffix := range []string{"mri", "mai", "mro", "sri", "sai", "sro"} {
			name := fmt.Sprintf("G%d_%s", g, suffix)
			n := m.Net(name)
			if n == nil {
				pair("", name, "control net %s is missing", name)
				missing = true
			}
			nets[suffix] = n
		}
		if missing {
			continue
		}
		// Controller gates drive their channel nets.
		drivenBy := func(n *netlist.Net, inst string) bool {
			return n.Driver.Inst != nil && n.Driver.Inst.Name == inst
		}
		for _, chk := range []struct {
			suffix, inst string
		}{
			{"mro", fmt.Sprintf("G%d_Mctrl/ro", g)},
			{"sro", fmt.Sprintf("G%d_Sctrl/ro", g)},
			{"mai", fmt.Sprintf("G%d_Mctrl/ai", g)},
			{"sai", fmt.Sprintf("G%d_Sctrl/ai", g)},
		} {
			if !drivenBy(nets[chk.suffix], chk.inst) {
				got := "nothing"
				if d := nets[chk.suffix].Driver.Inst; d != nil {
					got = d.Name
				}
				pair(chk.inst, nets[chk.suffix].Name, "net must be driven by %s, driven by %s", chk.inst, got)
			}
		}
		// Master acknowledges the slave: its Ao pin must see sai.
		if mg := m.Inst(fmt.Sprintf("G%d_Mctrl/g", g)); mg != nil {
			if ao := mg.Conns["A"]; ao != nets["sai"] {
				got := "(unconnected)"
				if ao != nil {
					got = ao.Name
				}
				pair(mg.Name, "", "master ack-in must be G%d_sai, got %s", g, got)
			}
		}
		// Master request reaches the slave through the master/slave element.
		msPrefix := fmt.Sprintf("G%d_deMS/", g)
		if a1 := m.Inst(msPrefix + "a1"); a1 == nil {
			pair("", nets["sri"].Name, "master/slave delay element %sa1 is missing", msPrefix)
		} else if a1.Conns["B"] != nets["mro"] {
			pair(a1.Name, "", "master/slave element input must be G%d_mro", g)
		}
		if d := nets["sri"].Driver.Inst; d == nil || !strings.HasPrefix(d.Name, msPrefix) {
			got := "nothing"
			if d != nil {
				got = d.Name
			}
			pair("", nets["sri"].Name, "slave request must come from %s*, driven by %s", msPrefix, got)
		}

		// Request side: predecessors' slave requests → rendezvous → matched
		// delay element → mri. Completion-detected regions trace differently
		// and their request timing is data-dependent by construction.
		if c.cdetRegion(g) {
			c.r.addf(RulePair, Info, m.Name, "", nets["mri"].Name,
				fmt.Sprintf("region %d uses completion detection; request pairing not traced", g))
		} else {
			c.checkRequestSide(g, nets["mri"])
		}

		// Ack side.
		c.checkAckSide(g, nets["sai"])
	}
}

// cdetRegion reports whether region g uses a completion network instead of
// a matched delay element.
func (c *dsChecker) cdetRegion(g int) bool {
	prefix := fmt.Sprintf("G%d_cdet", g)
	for _, in := range c.m.Insts {
		if strings.HasPrefix(in.Name, prefix) {
			return true
		}
	}
	return false
}

func (c *dsChecker) checkRequestSide(g int, mri *netlist.Net) {
	m := c.m
	pair := func(inst, net, format string, args ...any) {
		c.r.addf(RulePair, Error, m.Name, inst, net, fmt.Sprintf(format, args...))
	}
	dePrefix := fmt.Sprintf("G%d_delem/", g)
	if d := mri.Driver.Inst; d == nil || !strings.HasPrefix(d.Name, dePrefix) {
		got := "nothing"
		if d != nil {
			got = d.Name
		}
		pair("", mri.Name, "master request must come through the matched element %s*, driven by %s", dePrefix, got)
	}
	a1 := m.Inst(dePrefix + "a1")
	if a1 == nil {
		pair("", mri.Name, "matched delay element %sa1 is missing", dePrefix)
		return
	}
	reqSrc := a1.Conns["B"]
	if reqSrc == nil {
		pair(a1.Name, "", "matched element input pin B is unconnected")
		return
	}
	preds := c.preds[g]
	switch len(preds) {
	case 0:
		port := m.Port(fmt.Sprintf("G%d_env_ri", g))
		if port == nil || port.Dir != netlist.In || port.Net != reqSrc {
			pair(a1.Name, reqSrc.Name,
				"region %d has no predecessors: request must come from input port G%d_env_ri", g, g)
		}
		if m.Port(fmt.Sprintf("G%d_env_ai", g)) == nil {
			pair("", "", "region %d has no predecessors but no G%d_env_ai acknowledge port exists", g, g)
		}
	case 1:
		want := fmt.Sprintf("G%d_sro", preds[0])
		if reqSrc.Name != want {
			pair(a1.Name, reqSrc.Name,
				"region %d request source must be %s (its one predecessor's slave request), got %s",
				g, want, reqSrc.Name)
		}
	default:
		join := fmt.Sprintf("G%d_reqjoin", g)
		if reqSrc.Name != join {
			pair(a1.Name, reqSrc.Name,
				"region %d has %d predecessors: request source must be rendezvous net %s, got %s",
				g, len(preds), join, reqSrc.Name)
			return
		}
		var want []string
		for _, p := range preds {
			want = append(want, fmt.Sprintf("G%d_sro", p))
		}
		sort.Strings(want)
		got := c.ctreeLeaves(fmt.Sprintf("G%d_reqC/", g))
		if strings.Join(got, " ") != strings.Join(want, " ") {
			pair("", reqSrc.Name,
				"region %d request rendezvous joins {%s}, want {%s} (predecessors %v)",
				g, strings.Join(got, " "), strings.Join(want, " "), preds)
		}
	}
}

func (c *dsChecker) checkAckSide(g int, sai *netlist.Net) {
	m := c.m
	pair := func(inst, net, format string, args ...any) {
		c.r.addf(RulePair, Error, m.Name, inst, net, fmt.Sprintf(format, args...))
	}
	sg := m.Inst(fmt.Sprintf("G%d_Sctrl/g", g))
	if sg == nil {
		pair("", "", "slave controller G%d_Sctrl is missing", g)
		return
	}
	sao := sg.Conns["A"]
	if sao == nil {
		pair(sg.Name, "", "slave ack-in pin is unconnected")
		return
	}
	succs := c.succs[g]
	switch len(succs) {
	case 0:
		port := m.Port(fmt.Sprintf("G%d_env_ao", g))
		if port == nil || port.Dir != netlist.In || port.Net != sao {
			pair(sg.Name, sao.Name,
				"region %d has no successors: acknowledge must come from input port G%d_env_ao", g, g)
		}
		if m.Port(fmt.Sprintf("G%d_env_ro", g)) == nil {
			pair("", "", "region %d has no successors but no G%d_env_ro request port exists", g, g)
		}
	case 1:
		want := fmt.Sprintf("G%d_mai", succs[0])
		if sao.Name != want {
			pair(sg.Name, sao.Name,
				"region %d acknowledge source must be %s (its one successor's master ack), got %s",
				g, want, sao.Name)
		}
	default:
		join := fmt.Sprintf("G%d_sao", g)
		if sao.Name != join {
			pair(sg.Name, sao.Name,
				"region %d has %d successors: acknowledge must be rendezvous net %s, got %s",
				g, len(succs), join, sao.Name)
			return
		}
		var want []string
		for _, s := range succs {
			want = append(want, fmt.Sprintf("G%d_mai", s))
		}
		sort.Strings(want)
		got := c.ctreeLeaves(fmt.Sprintf("G%d_ackC/", g))
		if strings.Join(got, " ") != strings.Join(want, " ") {
			pair("", sao.Name,
				"region %d acknowledge rendezvous joins {%s}, want {%s} (successors %v)",
				g, strings.Join(got, " "), strings.Join(want, " "), succs)
		}
	}
}

// checkCElems verifies rendezvous completeness (DS-CELEM): every C-element
// input must be connected, driven, non-constant, and distinct — a missing
// or tied leg makes the rendezvous fire early or deadlock.
func (c *dsChecker) checkCElems() {
	for _, in := range c.m.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindCElem {
			continue
		}
		seen := map[*netlist.Net]string{}
		for _, p := range in.Cell.Pins {
			if p.Dir != netlist.In {
				continue
			}
			n := in.Conns[p.Name]
			switch {
			case n == nil:
				c.r.addf(RuleCElem, Error, c.m.Name, in.Name, "",
					fmt.Sprintf("rendezvous input %s is unconnected", p.Name))
				continue
			case !n.HasDriver():
				c.r.addf(RuleCElem, Error, c.m.Name, in.Name, n.Name,
					fmt.Sprintf("rendezvous input %s floats", p.Name))
			case n.Driver.Inst != nil && n.Driver.Inst.Cell != nil &&
				n.Driver.Inst.Cell.Kind == netlist.KindTie:
				c.r.addf(RuleCElem, Error, c.m.Name, in.Name, n.Name,
					fmt.Sprintf("rendezvous input %s is tied constant: the rendezvous can never wait on it", p.Name))
			}
			if prev, dup := seen[n]; dup {
				c.r.addf(RuleCElem, Error, c.m.Name, in.Name, n.Name,
					fmt.Sprintf("inputs %s and %s share one net: the rendezvous is degenerate", prev, p.Name))
			}
			seen[n] = p.Name
		}
	}
}

// checkTiming runs the two STA cross-checks: DS-SDC (every cyclic control
// path is covered by a loop-breaking constraint) and DS-MARGIN (every
// matched delay element covers its region's launch-to-capture budget at the
// worst corner, honoring per-instance variability factors).
func (c *dsChecker) checkTiming(opts Options) {
	m := c.m
	staOpts := sta.Options{Corner: netlist.Worst, AutoBreakLoops: true}
	if opts.Constraints != nil {
		staOpts.Disabled = map[sta.ArcKey]bool{}
		for _, da := range opts.Constraints.Disabled {
			staOpts.Disabled[sta.ArcKey{Inst: da.Inst, From: da.From, To: da.To}] = true
		}
		// Every controller needs its three loop-breaking disables present.
		for _, g := range c.regions {
			for _, prefix := range []string{fmt.Sprintf("G%d_Mctrl", g), fmt.Sprintf("G%d_Sctrl", g)} {
				for _, a := range handshake.ControllerDisabledArcs(prefix) {
					if !staOpts.Disabled[sta.ArcKey{Inst: a[0], From: a[1], To: a[2]}] {
						c.r.addf(RuleSDC, Error, m.Name, a[0], "",
							fmt.Sprintf("loop-breaking constraint missing for arc %s %s->%s", a[0], a[1], a[2]))
					}
				}
			}
		}
	} else {
		c.r.addf(RuleSDC, Info, m.Name, "", "",
			"no SDC constraints supplied; loop coverage not cross-checked")
	}

	g, err := sta.Build(m, staOpts)
	if err != nil {
		c.r.addf(RuleSDC, Error, m.Name, "", "", fmt.Sprintf("timing graph build failed: %v", err))
		return
	}
	if opts.Constraints != nil {
		for _, ak := range g.AutoBroken {
			c.r.addf(RuleSDC, Error, m.Name, ak.Inst, "",
				fmt.Sprintf("cyclic control path not covered by the constraints; auto-broken at %s %s->%s",
					ak.Inst, ak.From, ak.To))
		}
	}

	rds, err := sta.RegionDelays(m, netlist.Worst, staOpts)
	if err != nil {
		c.r.addf(RuleMargin, Error, m.Name, "", "",
			fmt.Sprintf("region delay analysis failed: %v", err))
		return
	}
	// Worst latch launch + capture cost, for the master/slave elements.
	var c2q, setup float64
	for _, in := range m.Insts {
		cd := in.Cell
		if cd == nil || cd.Kind != netlist.KindLatch {
			continue
		}
		if a := cd.Arc(cd.Seq.ClockPin, cd.Seq.Q); a != nil {
			c2q = math.Max(c2q, math.Max(a.Rise.Worst, a.Fall.Worst))
		}
		setup = math.Max(setup, cd.Setup.Worst)
	}
	const eps = 1e-9
	for _, reg := range c.regions {
		if delay, n, ok := c.chainDelay(fmt.Sprintf("G%d_deMS/", reg)); ok {
			if budget := c2q + setup; delay+eps < budget {
				c.r.addf(RuleMargin, Error, m.Name, fmt.Sprintf("G%d_deMS/a1", reg), "",
					fmt.Sprintf("master/slave element (%d levels, %.3f ns) is under the latch launch+capture cost %.3f ns",
						n, delay, budget))
			}
		}
		if c.cdetRegion(reg) {
			continue // completion detection: timing is data-dependent by construction
		}
		delay, n, ok := c.chainDelay(fmt.Sprintf("G%d_delem/", reg))
		if !ok {
			continue // missing element already reported by DS-PAIR
		}
		rd := rds[reg]
		if rd == nil {
			continue
		}
		if budget := rd.Budget(); delay+eps < budget {
			c.r.addf(RuleMargin, Error, m.Name, fmt.Sprintf("G%d_delem/a1", reg), "",
				fmt.Sprintf("matched element (%d levels, %.3f ns) does not cover region %d's budget %.3f ns (worst path into %s)",
					n, delay, reg, budget, rd.WorstPath))
		}
	}
}

// chainDelay sums the worst-corner rise delay of a delay-element AND chain
// (prefix + "a1", "a2", ...), applying each gate's variability factor — the
// same pricing sta.Build uses. For muxed elements this is the longest tap.
func (c *dsChecker) chainDelay(prefix string) (float64, int, bool) {
	total := 0.0
	n := 0
	for {
		in := c.m.Inst(fmt.Sprintf("%sa%d", prefix, n+1))
		if in == nil || in.Cell == nil {
			break
		}
		arc := in.Cell.Arc("A", "Z")
		if arc == nil {
			break
		}
		total += arc.Rise.At(netlist.Worst) * sta.EffectiveFactor(in)
		n++
	}
	return total, n, n > 0
}
