// Package designs generates the gate-level case-study circuits of §5: a
// four-stage DLX RISC processor (Fig 5.2) and an ARM-class 32-bit scan
// design. The paper starts from post-synthesis netlists produced by a
// commercial synthesis tool; these generators play that role, emitting flat
// mapped netlists over the internal/stdcells libraries.
package designs

import (
	"fmt"

	"desync/internal/netlist"
)

// Builder wraps a module with gate-level construction helpers. Generated
// instance names carry a running index under a caller-chosen prefix.
type Builder struct {
	M   *netlist.Module
	Lib *netlist.Library
	n   int
}

// NewBuilder returns a builder over a fresh flat module.
func NewBuilder(name string, lib *netlist.Library) *Builder {
	return &Builder{M: netlist.NewModule(name), Lib: lib}
}

// recoverBuildErr converts a construction panic (wrong pin count, unknown
// cell, duplicate name) into the Build* function's returned error, so the
// generators stay usable as a library. Deferred by every Build* entry point.
func recoverBuildErr(design string, err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("designs: %s construction: %v", design, r)
	}
}

// Bus is an ordered list of single-bit nets, LSB first.
type Bus []*netlist.Net

// NewBus declares a named bus of fresh nets base[0..width-1].
func (b *Builder) NewBus(base string, width int) Bus {
	out := make(Bus, width)
	for i := range out {
		out[i] = b.M.AddNet(fmt.Sprintf("%s[%d]", base, i))
	}
	return out
}

// InputBus declares an input port bus.
func (b *Builder) InputBus(base string, width int) Bus {
	out := make(Bus, width)
	for i := range out {
		out[i] = b.M.AddPort(fmt.Sprintf("%s[%d]", base, i), netlist.In).Net
	}
	return out
}

// OutputBus declares an output port bus.
func (b *Builder) OutputBus(base string, width int) Bus {
	out := make(Bus, width)
	for i := range out {
		out[i] = b.M.AddPort(fmt.Sprintf("%s[%d]", base, i), netlist.Out).Net
	}
	return out
}

// Gate instantiates a named library cell with positional nets matching the
// cell's pin order and returns the instance.
func (b *Builder) Gate(cell string, nets ...*netlist.Net) *netlist.Inst {
	c := b.Lib.MustCell(cell)
	b.n++
	in := b.M.AddInst(fmt.Sprintf("u%d_%s", b.n, cell), c)
	if len(nets) != len(c.Pins) {
		panic(fmt.Sprintf("designs: %s takes %d nets, got %d", cell, len(c.Pins), len(nets)))
	}
	for i, p := range c.Pins {
		if nets[i] != nil {
			b.M.MustConnect(in, p.Name, nets[i])
		}
	}
	return in
}

// fresh returns an anonymous intermediate net.
func (b *Builder) fresh() *netlist.Net {
	b.n++
	return b.M.AddNet(fmt.Sprintf("n%d", b.n))
}

// Tie returns the constant net for v, creating the tie cell on first use.
func (b *Builder) Tie(v int) *netlist.Net {
	name := "const0"
	cell := "TIE0"
	if v != 0 {
		name, cell = "const1", "TIE1"
	}
	if n := b.M.Net(name); n != nil {
		return n
	}
	n := b.M.AddNet(name)
	b.Gate(cell, n)
	return n
}

// Unary and binary gate helpers returning the output net.

// Not returns !a.
func (b *Builder) Not(a *netlist.Net) *netlist.Net {
	z := b.fresh()
	b.Gate("INVX1", a, z)
	return z
}

// And returns a&b.
func (b *Builder) And(a, c *netlist.Net) *netlist.Net {
	z := b.fresh()
	b.Gate("AND2X1", a, c, z)
	return z
}

// Or returns a|b.
func (b *Builder) Or(a, c *netlist.Net) *netlist.Net {
	z := b.fresh()
	b.Gate("OR2X1", a, c, z)
	return z
}

// Xor returns a^b.
func (b *Builder) Xor(a, c *netlist.Net) *netlist.Net {
	z := b.fresh()
	b.Gate("XOR2X1", a, c, z)
	return z
}

// AndNot returns a&!b.
func (b *Builder) AndNot(a, c *netlist.Net) *netlist.Net {
	z := b.fresh()
	b.Gate("ANDN2X1", a, c, z)
	return z
}

// Mux returns s ? hi : lo.
func (b *Builder) Mux(lo, hi, s *netlist.Net) *netlist.Net {
	z := b.fresh()
	b.Gate("MUX2X1", lo, hi, s, z)
	return z
}

// AndTree reduces nets with a balanced AND tree.
func (b *Builder) AndTree(ns []*netlist.Net) *netlist.Net {
	return b.tree(ns, b.And)
}

// OrTree reduces nets with a balanced OR tree.
func (b *Builder) OrTree(ns []*netlist.Net) *netlist.Net {
	return b.tree(ns, b.Or)
}

func (b *Builder) tree(ns []*netlist.Net, op func(a, c *netlist.Net) *netlist.Net) *netlist.Net {
	if len(ns) == 0 {
		panic("designs: empty reduction")
	}
	for len(ns) > 1 {
		var next []*netlist.Net
		for i := 0; i < len(ns); i += 2 {
			if i+1 == len(ns) {
				next = append(next, ns[i])
			} else {
				next = append(next, op(ns[i], ns[i+1]))
			}
		}
		ns = next
	}
	return ns[0]
}

// MuxBus returns s ? hi : lo bitwise, writing into dst when non-nil.
func (b *Builder) MuxBus(lo, hi Bus, s *netlist.Net, dst Bus) Bus {
	if len(lo) != len(hi) {
		panic("designs: mux width mismatch")
	}
	out := dst
	if out == nil {
		out = make(Bus, len(lo))
	}
	for i := range lo {
		if out[i] == nil {
			out[i] = b.fresh()
		}
		b.Gate("MUX2X1", lo[i], hi[i], s, out[i])
	}
	return out
}

// MuxTree selects inputs[sel] over a power-of-two input list using the
// select bus (LSB first). Short input lists are padded with the last entry.
func (b *Builder) MuxTree(inputs []Bus, sel Bus) Bus {
	if len(inputs) == 0 {
		panic("designs: empty mux tree")
	}
	level := append([]Bus(nil), inputs...)
	for k := 0; k < len(sel); k++ {
		if len(level) == 1 {
			break
		}
		var next []Bus
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			next = append(next, b.MuxBus(level[i], level[i+1], sel[k], nil))
		}
		level = next
	}
	return level[0]
}

// Adder builds a ripple-carry adder: sum = a + c + cin (cin may be nil for
// 0). The carry-out is not built: no design consumes it, and the dead
// final-bit carry cone would (rightly) trip the NL-CONE lint rule.
func (b *Builder) Adder(a, c Bus, cin *netlist.Net) Bus {
	if len(a) != len(c) {
		panic("designs: adder width mismatch")
	}
	sum := make(Bus, len(a))
	carry := cin
	last := len(a) - 1
	for i := range a {
		axb := b.Xor(a[i], c[i])
		if carry == nil {
			sum[i] = axb
			if i != last {
				carry = b.And(a[i], c[i])
			}
			continue
		}
		sum[i] = b.Xor(axb, carry)
		if i == last {
			break
		}
		// carry' = a&c | carry&(a^c)
		carry = b.Or(b.And(a[i], c[i]), b.And(carry, axb))
	}
	return sum
}

// Sub builds a - c via two's complement (a + ~c + 1).
func (b *Builder) Sub(a, c Bus) Bus {
	nc := make(Bus, len(c))
	for i := range c {
		nc[i] = b.Not(c[i])
	}
	return b.Adder(a, nc, b.Tie(1))
}

// Inc builds a + 1.
func (b *Builder) Inc(a Bus) Bus {
	sum := make(Bus, len(a))
	carry := (*netlist.Net)(nil)
	for i := range a {
		if i == 0 {
			sum[0] = b.Not(a[0])
			carry = a[0]
			continue
		}
		sum[i] = b.Xor(a[i], carry)
		if i < len(a)-1 {
			carry = b.And(a[i], carry)
		}
	}
	return sum
}

// IsZero returns a net that is high when the whole bus is zero.
func (b *Builder) IsZero(a Bus) *netlist.Net {
	any := b.OrTree(a)
	return b.Not(any)
}

// EqConst returns a net that is high when the bus equals the constant.
func (b *Builder) EqConst(a Bus, v uint64) *netlist.Net {
	terms := make([]*netlist.Net, len(a))
	for i := range a {
		if v>>uint(i)&1 == 1 {
			terms[i] = a[i]
		} else {
			terms[i] = b.Not(a[i])
		}
	}
	return b.AndTree(terms)
}

// BitwiseOp applies a 2-input cell bitwise across two buses.
func (b *Builder) BitwiseOp(cell string, a, c Bus) Bus {
	out := make(Bus, len(a))
	for i := range a {
		out[i] = b.fresh()
		b.Gate(cell, a[i], c[i], out[i])
	}
	return out
}

// RegBank instantiates a bank of async-reset flip-flops named
// "<name>[i]" capturing d into the named q bus.
func (b *Builder) RegBank(name string, d Bus, clk, rstn *netlist.Net, qBase string) Bus {
	q := b.NewBus(qBase, len(d))
	for i := range d {
		ff := b.M.AddInst(fmt.Sprintf("%s[%d]", name, i), b.Lib.MustCell("DFFRQX1"))
		b.M.MustConnect(ff, "D", d[i])
		b.M.MustConnect(ff, "CK", clk)
		b.M.MustConnect(ff, "RN", rstn)
		b.M.MustConnect(ff, "Q", q[i])
	}
	return q
}

// Rom builds a combinational lookup table: out = words[addr], with
// constant-folded multiplexer trees. Addresses beyond len(words) read 0.
// The outputs are written onto dst (one net per bit).
func (b *Builder) Rom(addr Bus, words []uint64, width int, dst Bus) {
	depth := 1 << len(addr)
	for bit := 0; bit < width; bit++ {
		b.romBit(addr, words, bit, 0, depth, dst[bit])
	}
}

// romBit recursively builds one output bit over addr[level...].
func (b *Builder) romBit(addr Bus, words []uint64, bit, base, span int, dst *netlist.Net) {
	v, constant := romConst(words, bit, base, span)
	if constant {
		b.aliasConst(dst, v)
		return
	}
	half := span / 2
	level := 0
	for 1<<level < span {
		level++
	}
	selBit := addr[level-1]
	lo, hi := b.fresh(), b.fresh()
	b.romBitInner(addr, words, bit, base, half, lo)
	b.romBitInner(addr, words, bit, base+half, half, hi)
	b.Gate("MUX2X1", lo, hi, selBit, dst)
}

func (b *Builder) romBitInner(addr Bus, words []uint64, bit, base, span int, dst *netlist.Net) {
	v, constant := romConst(words, bit, base, span)
	if constant {
		// Replace the fresh net's role with the constant by buffering it —
		// a tie-driven buffer keeps single-driver discipline simple here;
		// the cleaner removes it if desynchronization follows.
		b.Gate("BUFX1", b.Tie(v), dst)
		return
	}
	b.romBit(addr, words, bit, base, span, dst)
}

func (b *Builder) aliasConst(dst *netlist.Net, v int) {
	b.Gate("BUFX1", b.Tie(v), dst)
}

// romConst reports whether words[base:base+span] bit is constant.
func romConst(words []uint64, bit, base, span int) (int, bool) {
	get := func(i int) int {
		if i >= len(words) {
			return 0
		}
		return int(words[i] >> uint(bit) & 1)
	}
	v := get(base)
	for i := base + 1; i < base+span; i++ {
		if get(i) != v {
			return 0, false
		}
	}
	return v, true
}

// Decoder builds a one-hot decoder of the address bus; out[i] is high when
// addr == i.
func (b *Builder) Decoder(addr Bus) []*netlist.Net {
	n := 1 << len(addr)
	out := make([]*netlist.Net, n)
	for i := 0; i < n; i++ {
		out[i] = b.EqConst(addr, uint64(i))
	}
	return out
}
