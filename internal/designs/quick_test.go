package designs

import (
	"fmt"
	"testing"
	"testing/quick"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
)

// evalBlock builds a circuit from the builder callback, drives the named
// input buses, settles, and returns the output bus value.
func evalBlock(t *testing.T, width int, nIn int, construct func(b *Builder, ins []Bus) Bus, vals []uint64) uint64 {
	t.Helper()
	b := NewBuilder("blk", hs())
	ins := make([]Bus, nIn)
	for i := range ins {
		ins[i] = b.InputBus(fmt.Sprintf("x%d", i), width)
	}
	out := construct(b, ins)
	for i, n := range out {
		o := b.M.AddPort(fmt.Sprintf("y[%d]", i), netlist.Out).Net
		b.Gate("BUFX1", n, o)
	}
	if errs := b.M.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	s, err := sim.New(b.M, sim.Config{Corner: netlist.Best})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins {
		if err := s.DriveVector(fmt.Sprintf("x%d", i), width, vals[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	v := s.Vector("y", len(out))
	if !v.Known() {
		t.Fatalf("output unknown: %v", v)
	}
	return v.Uint()
}

// Property: the ripple adder computes modular addition for random operands.
func TestQuickAdder(t *testing.T) {
	const w = 16
	f := func(a, b uint16) bool {
		got := evalBlock(t, w, 2, func(bl *Builder, ins []Bus) Bus {
			s := bl.Adder(ins[0], ins[1], nil)
			return s
		}, []uint64{uint64(a), uint64(b)})
		return uint16(got) == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: two's-complement subtraction.
func TestQuickSub(t *testing.T) {
	const w = 16
	f := func(a, b uint16) bool {
		got := evalBlock(t, w, 2, func(bl *Builder, ins []Bus) Bus {
			s := bl.Sub(ins[0], ins[1])
			return s
		}, []uint64{uint64(a), uint64(b)})
		return uint16(got) == a-b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the incrementer.
func TestQuickInc(t *testing.T) {
	const w = 12
	f := func(a uint16) bool {
		a &= 1<<w - 1
		got := evalBlock(t, w, 1, func(bl *Builder, ins []Bus) Bus {
			return bl.Inc(ins[0])
		}, []uint64{uint64(a)})
		return uint16(got) == (a+1)&(1<<w-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the barrel shifter is a left shift modulo the bus width.
func TestQuickBarrel(t *testing.T) {
	const w = 16
	f := func(a uint16, sh uint8) bool {
		shift := uint64(sh) & 15
		got := evalBlock(t, w, 2, func(bl *Builder, ins []Bus) Bus {
			return bl.barrel(ins[0], Bus(ins[1][:4]))
		}, []uint64{uint64(a), shift})
		return uint16(got) == a<<shift
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the multiplier tree computes the full product.
func TestQuickMultiplier(t *testing.T) {
	f := func(a, b uint8) bool {
		got := evalBlock(t, 8, 2, func(bl *Builder, ins []Bus) Bus {
			return bl.multiplier(ins[0], ins[1])
		}, []uint64{uint64(a), uint64(b)})
		return uint16(got) == uint16(a)*uint16(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ROM returns the stored word for every address.
func TestQuickRom(t *testing.T) {
	f := func(seed uint32) bool {
		words := make([]uint64, 16)
		x := uint64(seed) | 1
		for i := range words {
			x = x*6364136223846793005 + 1442695040888963407
			words[i] = x >> 32 & 0xffff
		}
		b := NewBuilder("rom", hs())
		addr := b.InputBus("a", 4)
		out := b.NewBus("romq", 16)
		b.Rom(addr, words, 16, out)
		for i, n := range out {
			o := b.M.AddPort(fmt.Sprintf("y[%d]", i), netlist.Out).Net
			b.Gate("BUFX1", n, o)
		}
		s, err := sim.New(b.M, sim.Config{Corner: netlist.Best})
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < 16; a++ {
			if err := s.DriveVector("a", 4, uint64(a), s.Now()+1); err != nil {
				t.Fatal(err)
			}
			if err := s.RunUntilQuiescent(); err != nil {
				t.Fatal(err)
			}
			if got := s.Vector("y", 16).Uint(); got != words[a] {
				t.Logf("addr %d: rom %04x want %04x", a, got, words[a])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// Property: MuxTree selects exactly inputs[sel].
func TestQuickMuxTree(t *testing.T) {
	f := func(a, b, c, d uint16, sel uint8) bool {
		vals := []uint64{uint64(a), uint64(b), uint64(c), uint64(d)}
		s := uint64(sel) & 3
		bl := NewBuilder("mt", hs())
		var ins []Bus
		for i := 0; i < 4; i++ {
			ins = append(ins, bl.InputBus(fmt.Sprintf("x%d", i), 16))
		}
		selBus := bl.InputBus("s", 2)
		out := bl.MuxTree(ins, selBus)
		for i, n := range out {
			o := bl.M.AddPort(fmt.Sprintf("y[%d]", i), netlist.Out).Net
			bl.Gate("BUFX1", n, o)
		}
		sm, err := sim.New(bl.M, sim.Config{Corner: netlist.Best})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			sm.DriveVector(fmt.Sprintf("x%d", i), 16, vals[i], 0)
		}
		sm.DriveVector("s", 2, s, 0)
		sm.RunUntilQuiescent()
		return sm.Vector("y", 16).Uint() == vals[s]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the golden model's PC stays within the ROM address space and
// the model is deterministic.
func TestQuickModelDeterminism(t *testing.T) {
	f := func(n uint8) bool {
		steps := int(n%64) + 1
		m1 := NewModel(TestProgram())
		m2 := NewModel(TestProgram())
		m1.Run(steps)
		m2.Run(steps)
		if m1.PC != m2.PC || m1.Regs != m2.Regs || m1.DMem != m2.DMem {
			return false
		}
		return m1.PC < 1<<PCBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

var _ = logic.H // keep the import for helpers above
