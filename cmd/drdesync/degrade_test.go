package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/designs"
	"desync/internal/netlist"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

func buildDLXDesign() (*netlist.Design, error) {
	return designs.BuildDLX(stdcells.New(stdcells.HighSpeed), designs.TestProgram())
}

// inputRegsOnly is a design the automatic grouping rejects: its only
// flip-flops register primary inputs directly (no combinational cloud), so
// every sequential element lands in group 0 and no region exists.
const inputRegsOnly = `
module m (clk, rstn, a, b, qa, qb);
  input clk, rstn, a, b;
  output qa, qb;
  DFFRQX1 ra (.D(a), .CK(clk), .RN(rstn), .Q(qa));
  DFFRQX1 rb (.D(b), .CK(clk), .RN(rstn), .Q(qb));
endmodule
`

func buildFrom(t *testing.T, src string) func() (*designState, error) {
	t.Helper()
	return func() (*designState, error) {
		d, err := verilog.Read(src, stdcells.New(stdcells.HighSpeed), "")
		if err != nil {
			return nil, err
		}
		return &designState{d: d}, nil
	}
}

// TestFallbackSingleRegion: a grouping failure degrades to one region with
// a warning instead of aborting the run.
func TestFallbackSingleRegion(t *testing.T) {
	// Direct flow attempt fails with the staged no-regions error.
	st, err := buildFrom(t, inputRegsOnly)()
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Desynchronize(context.Background(), st.d, core.Options{Period: 1})
	if !errors.Is(err, core.ErrNoRegions) {
		t.Fatalf("direct flow: err = %v, want ErrNoRegions", err)
	}
	if core.StageOf(err) != core.StageGroup {
		t.Fatalf("StageOf = %q, want %q", core.StageOf(err), core.StageGroup)
	}

	var warnings bytes.Buffer
	d, res, err := desynchronizeWithFallback(context.Background(), buildFrom(t, inputRegsOnly),
		core.Options{Period: 1}, &warnings)
	if err != nil {
		t.Fatalf("fallback flow failed: %v", err)
	}
	if res.Grouping.Groups != 1 {
		t.Fatalf("fallback regions = %d, want 1", res.Grouping.Groups)
	}
	if !strings.Contains(warnings.String(), "single region") {
		t.Fatalf("no fallback warning, got %q", warnings.String())
	}
	if d.Top.Net("G1_mri") == nil {
		t.Fatal("fallback design has no region-1 handshake net")
	}
	// The degraded run still carries a derived control network whose
	// insert-stage claim cross-checks clean, exactly like a first-try run.
	assertCleanCtrlnet(t, res)
	if res.Network.ControlNet(1, "mri") == nil {
		t.Fatal("derived network does not resolve the region-1 master request")
	}
}

// assertCleanCtrlnet checks a fallback-produced result against the same
// claim/derivation contract the straight-through flow enforces: a network
// was derived, the flow shipped with an empty diff, and re-running the diff
// against the insert stage's claim stays empty.
func assertCleanCtrlnet(t *testing.T, res *core.Result) {
	t.Helper()
	if res.Network == nil || res.Network.Empty() {
		t.Fatal("result carries no derived control network")
	}
	if len(res.CtrlDiff) != 0 {
		t.Fatalf("flow shipped with claim/derivation mismatches: %v", res.CtrlDiff)
	}
	if ds := ctrlnet.Diff(res.Insert.Claim, res.Network); len(ds) != 0 {
		t.Fatalf("re-running the cross-check disagrees: %v", ds)
	}
}

// TestMarginAutoBump: an under-margin sizing result triggers a margin bump
// and retry rather than shipping an element that does not cover its region.
func TestMarginAutoBump(t *testing.T) {
	src := dlxSource(t)
	var warnings bytes.Buffer
	_, res, err := desynchronizeWithFallback(context.Background(), buildFrom(t, src),
		core.Options{Period: 4.65, Margin: 0.05}, &warnings)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warnings.String(), "under-cover") {
		t.Fatalf("no under-margin warning, got %q", warnings.String())
	}
	if len(res.UnderMargin) > 0 {
		// Three 15% bumps from 0.05 cannot reach 1.0; the tool must still
		// finish and leave the advisory in place.
		if !strings.Contains(warnings.String(), "retries") {
			t.Fatalf("missing final under-margin advisory, got %q", warnings.String())
		}
	}
	// Under-margin delay elements degrade timing, not structure: the shipped
	// network's claim/derivation diff is as clean as a full-margin run's.
	assertCleanCtrlnet(t, res)
}

// TestNoDegradationOnCleanRun: a healthy design desynchronizes on the first
// attempt with no warnings.
func TestNoDegradationOnCleanRun(t *testing.T) {
	var warnings bytes.Buffer
	_, res, err := desynchronizeWithFallback(context.Background(), buildFrom(t, dlxSource(t)),
		core.Options{Period: 4.65}, &warnings)
	if err != nil {
		t.Fatal(err)
	}
	if warnings.Len() != 0 {
		t.Fatalf("unexpected warnings: %q", warnings.String())
	}
	if res.Grouping.Groups < 2 {
		t.Fatalf("DLX regions = %d, want several", res.Grouping.Groups)
	}
}

var dlxSrcCache string

func dlxSource(t *testing.T) string {
	t.Helper()
	if dlxSrcCache == "" {
		d, err := buildDLXDesign()
		if err != nil {
			t.Fatal(err)
		}
		dlxSrcCache = verilog.Write(d)
	}
	return dlxSrcCache
}
