package core

import (
	"context"
	"fmt"
	"testing"

	"desync/internal/designs"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/sta"
)

// firSamples is the deterministic input stream for both runs.
func firSamples(n int) []uint64 {
	out := make([]uint64, n)
	x := uint64(0x9e)
	for i := range out {
		x = (x*137 + 71) % 251
		out[i] = x
	}
	return out
}

// The third case study (§6 future work: "more study case circuits"): a
// FIR filter whose boundary regions are driven by the environment through
// the request/acknowledge ports the tool creates — the §4.8 testbench
// discipline, executed end to end.
func TestFIRDesynchronizedFlowEquivalence(t *testing.T) {
	lib := hs()
	nSamples := 20
	samples := firSamples(nSamples)

	// The accumulator's adder tree dominates: take the clock from STA.
	tmp, err := designs.BuildFIR(lib)
	if err != nil {
		t.Fatal(err)
	}
	rds, err := sta.RegionDelays(context.Background(), tmp.Top, netlist.Worst, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	period := 0.0
	for _, rd := range rds {
		if b := rd.Budget(); b > period {
			period = b
		}
	}
	period *= 1.15

	// Synchronous reference: one sample per clock edge.
	dsync, err := designs.BuildFIR(lib)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sim.New(dsync.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ss.Drive("rstn", logic.L, 0)
	ss.Drive("rstn", logic.H, period*0.4)
	for n, s := range samples {
		// Sample n stable before edge n (edges at period/2 + n*period).
		if err := ss.DriveVector("x", designs.FIRWidth, s, float64(n)*period+0.05); err != nil {
			t.Fatal(err)
		}
	}
	ss.Clock("clk", period, 0, period*float64(nSamples))
	if err := ss.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}

	// Golden model sanity.
	model := &designs.FIRModel{}
	for _, s := range samples {
		model.Step(uint16(s))
	}
	yCaps := ss.Captures["yr[0]"]
	if len(yCaps) < nSamples-2 {
		t.Fatalf("sync run too short: %d captures", len(yCaps))
	}
	for k := 0; k < len(yCaps); k++ {
		var y uint16
		for i := 0; i < designs.FIRWidth+4; i++ {
			if ss.Captures[fmt.Sprintf("yr[%d]", i)][k] == logic.H {
				y |= 1 << uint(i)
			}
		}
		if y != model.YTrace[k] {
			t.Fatalf("sync cycle %d: y=%d model %d", k, y, model.YTrace[k])
		}
	}

	// Desynchronized version with environment handshakes.
	ddes, err := designs.BuildFIR(lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Desynchronize(context.Background(), ddes, Options{Period: period})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Insert.EnvRequests) != 1 || len(res.Insert.EnvAcks) != 1 {
		t.Fatalf("expected one open boundary on each side, got %v / %v",
			res.Insert.EnvRequests, res.Insert.EnvAcks)
	}
	riPort := res.Insert.EnvRequests[0]
	aoPort := res.Insert.EnvAcks[0]
	aiPort := riPort[:len(riPort)-len("_ri")] + "_ai"
	roPort := aoPort[:len(aoPort)-len("_ao")] + "_ro"
	for _, p := range []string{aiPort, roPort} {
		if ddes.Top.Port(p) == nil {
			t.Fatalf("environment port %s missing", p)
		}
	}

	ds, err := sim.New(ddes.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	// Input side: a 4-phase producer. Data changes only while ri is low and
	// the previous handshake completed; edges during the boot window are the
	// X->0 settling of the acknowledge, not handshakes — a real testbench
	// gates on reset the same way.
	const kickAt = 3.5
	next := 0
	if err := ds.OnChange(aiPort, func(tm float64, v logic.V) {
		if tm <= kickAt {
			return
		}
		if v == logic.H {
			ds.Drive(riPort, logic.L, tm+0.1)
			return
		}
		// ai fell: present the next sample and request again.
		if next < len(samples) {
			ds.DriveVector("x", designs.FIRWidth, samples[next], tm+0.2)
			next++
			ds.Drive(riPort, logic.H, tm+1.0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Output side: a 4-phase consumer.
	if err := ds.OnChange(roPort, func(tm float64, v logic.V) {
		ds.Drive(aoPort, v, tm+0.2)
	}); err != nil {
		t.Fatal(err)
	}
	ds.Drive("rstn", logic.L, 0)
	ds.Drive("rst_desync", logic.H, 0)
	ds.Drive(riPort, logic.L, 0)
	ds.Drive(aoPort, logic.L, 0)
	ds.Drive("rstn", logic.H, 1)
	ds.Drive("rst_desync", logic.L, 2)
	// Kick the first sample.
	ds.DriveVector("x", designs.FIRWidth, samples[0], 2.5)
	next = 1
	ds.Drive(riPort, logic.H, kickAt)
	if err := ds.Run(period * float64(nSamples) * 8); err != nil {
		t.Fatal(err)
	}

	// Flow equivalence across every register.
	compared := 0
	for name, want := range ss.Captures {
		got := ds.Captures[name+"/sl"]
		if len(got) < 8 {
			t.Fatalf("%s: only %d desync captures (env handshake stalled?)", name, len(got))
		}
		n := len(want)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k] != want[k] {
				t.Fatalf("%s capture %d: desync %v vs sync %v", name, k, got[k], want[k])
			}
		}
		compared++
	}
	if compared != 92 { // 4x8 delay line + 4x12 products + 12 accumulator
		t.Fatalf("compared %d registers, want 92", compared)
	}
	t.Logf("FIR flow equivalence verified over %d registers, %d regions, env ports %v/%v",
		compared, len(res.DDG.Nodes), riPort, aoPort)
}
