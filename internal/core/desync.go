package core

import (
	"context"
	"fmt"
	"sort"

	"desync/internal/handshake"
	"desync/internal/netlist"
	"desync/internal/sta"
)

// Desynchronize converts the synchronous design in place with the desync
// backend: flatten, clean, group, substitute flip-flops, build the
// dependency graph, size the matched delay elements and insert the
// controller network. The datapath is untouched (§2.1); the clock network
// is gone; the design gains a rst_desync input (and delsel[2:0] when
// MuxTaps is set), plus environment handshake ports for boundary regions.
//
// It is Convert pinned to BackendDesync — the original single-backend
// entry point, kept for callers that mean the paper's transformation by
// name. Callers selecting a backend at run time use Convert directly.
func Desynchronize(ctx context.Context, d *netlist.Design, opts Options) (*Result, error) {
	opts.Backend = BackendDesync
	res, err := Convert(ctx, d, opts)
	return res, err
}

// underMarginRegions flags regions whose sized element delay falls short of
// the measured budget: the matched element no longer matches. The per-level
// delay comes from the same resolver the sizing uses, so the audit can
// never apply a different quantum than the chain it audits was built with.
func underMarginRegions(lib *netlist.Library, ddg *DDG, levels map[int]int, rds map[int]*sta.RegionDelay) []int {
	level, err := handshake.DelayLevel(lib)
	if err != nil || level <= 0 {
		return nil
	}
	var under []int
	for _, g := range ddg.Nodes {
		rd := rds[g]
		if rd == nil {
			continue
		}
		if float64(levels[g])*level < rd.Budget() {
			under = append(under, g)
		}
	}
	sort.Ints(under)
	return under
}

// DisabledArcMap converts the generated loop-breaking constraints into the
// STA option format.
func (r *Result) DisabledArcMap() map[sta.ArcKey]bool {
	out := map[sta.ArcKey]bool{}
	for _, da := range r.Constraints.Disabled {
		out[sta.ArcKey{Inst: da.Inst, From: da.From, To: da.To}] = true
	}
	return out
}

// SimpleName rewrites one escaped/hierarchical identifier into a plain one
// (§3.2.1 "escaped names are substituted by simple ones"), preserving the
// bus-bit [n] suffix so the bus heuristic keeps working. Identifiers that
// are already plain come back unchanged. The lint engine uses the same
// mapping to warn about names that would collide after simplification.
func SimpleName(s string) string {
	base, idx, isBus := netlist.BusBase(s)
	body := s
	if isBus {
		body = base
	}
	out := make([]byte, 0, len(body))
	changed := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		ok := c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			out = append(out, c)
		} else {
			out = append(out, '_')
			changed = true
		}
	}
	if !changed {
		return s
	}
	if isBus {
		return fmt.Sprintf("%s[%d]", out, idx)
	}
	return string(out)
}

// SimplifyNames applies SimpleName to every net of the module, skipping
// renames that would collide. Returns the number of renamed nets.
func SimplifyNames(m *netlist.Module) int {
	renamed := 0
	simple := SimpleName
	taken := map[string]bool{}
	for _, n := range m.Nets {
		taken[n.Name] = true
	}
	for _, n := range m.Nets {
		ns := simple(n.Name)
		if ns == n.Name || taken[ns] {
			continue
		}
		delete(taken, n.Name)
		taken[ns] = true
		if err := m.RenameNet(n, ns); err != nil {
			continue
		}
		renamed++
	}
	return renamed
}
