// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks — one benchmark per table/figure, plus
// ablation benchmarks for the design choices DESIGN.md calls out, and
// micro-benchmarks of the flow's engines. Key measured quantities are
// attached via b.ReportMetric so `go test -bench . -benchmem` prints the
// reproduced series next to the runtimes.
package bench

import (
	"context"
	"math/rand"
	"testing"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/designs"
	"desync/internal/dft"
	"desync/internal/equiv"
	"desync/internal/expt"
	"desync/internal/faults"
	"desync/internal/lint"
	"desync/internal/logic"
	"desync/internal/mga"
	"desync/internal/netlist"
	"desync/internal/pnr"
	"desync/internal/sim"
	"desync/internal/sta"
	"desync/internal/stdcells"
	"desync/internal/stg"
	"desync/internal/variability"
)

// BenchmarkTable21CMuller evaluates the C-Muller element truth table
// (Table 2.1) via the library cell's generalized-C functions.
func BenchmarkTable21CMuller(b *testing.B) {
	lib := stdcells.New(stdcells.HighSpeed)
	c := lib.MustCell("C3X1")
	env := map[string]logic.V{}
	for i := 0; i < b.N; i++ {
		for mask := 0; mask < 8; mask++ {
			env["A"] = logic.FromBool(mask&1 == 1)
			env["B"] = logic.FromBool(mask&2 == 2)
			env["C"] = logic.FromBool(mask&4 == 4)
			set := c.GC.Set.Eval(env) == logic.H
			reset := c.GC.Reset.Eval(env) == logic.H
			if set != (mask == 7) || reset != (mask == 0) {
				b.Fatal("C element truth table broken")
			}
		}
	}
}

// BenchmarkFig24Protocols classifies the protocol lattice (Fig 2.4):
// reachable-state counts, liveness and flow equivalence over a latch ring.
func BenchmarkFig24Protocols(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig24()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatal("protocol lattice incomplete")
		}
	}
}

// BenchmarkTable51DLXArea implements both DLX branches down to layout and
// reports the core-size overhead of Table 5.1.
func BenchmarkTable51DLXArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, _, err := expt.Table51()
		if err != nil {
			b.Fatal(err)
		}
		core51, _ := expt.Find(tbl.PostLayout, "core size (um2)")
		seq, _ := expt.Find(tbl.PostSynthesis, "sequential logic (um2)")
		b.ReportMetric(core51.Overhead, "coreOverhead%")
		b.ReportMetric(seq.Overhead, "seqOverhead%")
	}
}

// BenchmarkTable52ARMArea implements both ARM branches (scan design,
// Low-Leakage library, single region) and reports Table 5.2's overheads.
func BenchmarkTable52ARMArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, _, err := expt.Table52()
		if err != nil {
			b.Fatal(err)
		}
		core52, _ := expt.Find(tbl.PostLayout, "core size (um2)")
		seq, _ := expt.Find(tbl.PostSynthesis, "sequential logic (um2)")
		b.ReportMetric(core52.Overhead, "coreOverhead%")
		b.ReportMetric(seq.Overhead, "seqOverhead%")
	}
}

// BenchmarkFig53Timing sweeps the 8-tap delay-element selection at both
// corners (Fig 5.3) and reports the best working setup and its period.
func BenchmarkFig53Timing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, _, err := expt.Fig53(20)
		if err != nil {
			b.Fatal(err)
		}
		if sweep.BestSelection != 2 {
			b.Fatalf("best selection %d, want 2", sweep.BestSelection)
		}
		for _, p := range sweep.DDLX {
			if p.Selection == sweep.BestSelection && p.Corner == netlist.Worst {
				b.ReportMetric(p.Period, "bestSetupWorst_ns")
			}
		}
	}
}

// BenchmarkFig54Variability samples an inter-die population and reports the
// fraction of chips on which the desynchronized DLX beats the synchronous
// worst-case clock (Fig 5.4).
func BenchmarkFig54Variability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mc, _, err := expt.Fig54(16, 12, 3, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mc.FasterFraction*100, "fasterChips%")
	}
}

// BenchmarkFig55Power reruns the selection sweep and reports the power at
// the best working setup, worst corner (Fig 5.5).
func BenchmarkFig55Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, _, err := expt.Fig53(20)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range sweep.DDLX {
			if p.Selection == 2 && p.Corner == netlist.Worst {
				b.ReportMetric(p.PowerMW, "ddlxPower_mW")
			}
		}
		b.ReportMetric(sweep.DLXPower[netlist.Worst], "dlxPower_mW")
	}
}

// ---- Ablations ----

// BenchmarkAblationMargin varies the delay-element sizing margin and
// reports the resulting effective period: the cost of conservatism.
func BenchmarkAblationMargin(b *testing.B) {
	for _, margin := range []float64{0.85, 1.15, 1.5} {
		b.Run(marginName(margin), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := expt.RunDLXFlow(expt.FlowConfig{Margin: margin})
				if err != nil {
					b.Fatal(err)
				}
				run, err := expt.MeasureDDLX(f, netlist.Worst, 1, -1, 20)
				if err != nil {
					b.Fatal(err)
				}
				if !run.Correct {
					b.Fatalf("margin %.2f broke flow equivalence", margin)
				}
				b.ReportMetric(run.EffectivePeriod, "period_ns")
			}
		})
	}
}

func marginName(m float64) string {
	switch m {
	case 0.85:
		return "margin0.85"
	case 1.15:
		return "margin1.15"
	default:
		return "margin1.50"
	}
}

// BenchmarkAblationSingleRegion desynchronizes the DLX as one region (the
// ARM fallback) and compares its effective period against the four-region
// version: what automatic grouping buys.
func BenchmarkAblationSingleRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f4, err := expt.RunDLXFlow(expt.FlowConfig{})
		if err != nil {
			b.Fatal(err)
		}
		r4, err := expt.MeasureDDLX(f4, netlist.Worst, 1, -1, 20)
		if err != nil {
			b.Fatal(err)
		}
		f1, err := expt.RunDLXFlow(expt.FlowConfig{SingleRegion: true})
		if err != nil {
			b.Fatal(err)
		}
		r1, err := expt.MeasureDDLX(f1, netlist.Worst, 1, -1, 20)
		if err != nil {
			b.Fatal(err)
		}
		if !r4.Correct || !r1.Correct {
			b.Fatal("ablation run broke flow equivalence")
		}
		b.ReportMetric(r4.EffectivePeriod, "fourRegions_ns")
		b.ReportMetric(r1.EffectivePeriod, "oneRegion_ns")
	}
}

// BenchmarkAblationCompletionDetection compares the §2.4.4 alternative —
// dual-rail completion networks, true average-case timing — against the
// paper's matched delay elements on the DLX.
func BenchmarkAblationCompletionDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fd, err := expt.RunDLXFlow(expt.FlowConfig{})
		if err != nil {
			b.Fatal(err)
		}
		rd, err := expt.MeasureDDLX(fd, netlist.Worst, 1, -1, 20)
		if err != nil {
			b.Fatal(err)
		}
		fc, err := expt.RunDLXFlow(expt.FlowConfig{Mode: core.ModeCompletion})
		if err != nil {
			b.Fatal(err)
		}
		rc, err := expt.MeasureDDLX(fc, netlist.Worst, 1, -1, 20)
		if err != nil {
			b.Fatal(err)
		}
		if !rd.Correct || !rc.Correct {
			b.Fatal("ablation broke flow equivalence")
		}
		b.ReportMetric(rd.EffectivePeriod, "matchedDelay_ns")
		b.ReportMetric(rc.EffectivePeriod, "completion_ns")
		b.ReportMetric(float64(fc.Result.Insert.CompletionCells), "completionCells")
	}
}

// BenchmarkFaultCampaignSmoke runs the DLX fault-injection campaign
// (§4.6-style robustness check) and fails outright if any under-margin
// delay fault or control stuck-at fault escapes: detection of those two
// classes is the flow's safety argument, not a statistic to trend.
func BenchmarkFaultCampaignSmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := expt.RunDLXFaultCampaign(context.Background(), nil, expt.FaultCampaignConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for _, class := range []faults.Class{faults.ClassDelay, faults.ClassStuckAt} {
			det, inj := rep.Detected(class)
			if inj == 0 {
				b.Fatalf("campaign injected no %s faults", class)
			}
			if det != inj {
				b.Fatalf("%s detection %d/%d; escaped:\n%s", class, det, inj, rep.Render())
			}
		}
		det, inj := rep.Detected(faults.ClassDelay)
		b.ReportMetric(float64(inj), "delayFaults")
		sdet, sinj := rep.Detected(faults.ClassStuckAt)
		b.ReportMetric(float64(sinj), "stuckFaults")
		b.ReportMetric(float64(det+sdet)/float64(inj+sinj), "detectionRate")
	}
}

// BenchmarkCampaignParallelDLX runs the same campaign with the parallel
// fault fan-out at 4 workers. The detection guard is identical to the smoke
// benchmark — parallelism must not change which faults are caught. On a
// single-core host the runtime measures scheduling overhead, not speedup.
func BenchmarkCampaignParallelDLX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := expt.RunDLXFaultCampaign(context.Background(), nil, expt.FaultCampaignConfig{Parallelism: 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, class := range []faults.Class{faults.ClassDelay, faults.ClassStuckAt} {
			det, inj := rep.Detected(class)
			if inj == 0 {
				b.Fatalf("campaign injected no %s faults", class)
			}
			if det != inj {
				b.Fatalf("%s detection %d/%d under -j 4; escaped:\n%s", class, det, inj, rep.Render())
			}
		}
		b.ReportMetric(float64(len(rep.Outcomes)), "faults")
	}
}

// BenchmarkCampaignScalingDLX measures the campaign kernel alone (flow and
// fault list built outside the timer) across worker counts; it is the
// source of the EXPERIMENTS.md scaling table. The numbers are only a
// speedup curve on a multi-core host — on a single core the sub-benchmarks
// should coincide, which is itself a useful overhead bound.
func BenchmarkCampaignScalingDLX(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(jobsName(j), func(b *testing.B) {
			c, err := expt.NewDLXCampaign(context.Background(), f, 0, j)
			if err != nil {
				b.Fatal(err)
			}
			list := c.DelayFaults(40, 2)
			list = append(list, c.ControlStuckFaults()...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := c.Run(context.Background(), list)
				if err != nil {
					b.Fatal(err)
				}
				if det, inj := rep.Detected(""); det != inj {
					b.Fatalf("detection %d/%d at %d workers", det, inj, j)
				}
			}
		})
	}
}

func jobsName(j int) string {
	return "j" + string(rune('0'+j))
}

// BenchmarkLintClean runs the static verifier over the DLX golden flow and
// fails outright on any finding, pre- or post-desynchronization: like the
// fault-campaign smoke guard, a lint-dirty tree is a broken build, not a
// statistic. The runtime is the cost of the full lint pass.
func BenchmarkLintClean(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre := lint.Check(f.Sync.Top, lint.Options{})
		post := lint.Check(f.Desync.Top, lint.Options{Desync: true, Constraints: f.Result.Constraints})
		if n := pre.Count(lint.Warning) + post.Count(lint.Warning); n != 0 {
			b.Fatalf("golden flow is not lint-clean: %d finding(s)\n%s%s", n, pre.Text(), post.Text())
		}
		b.ReportMetric(float64(len(f.Desync.Top.Insts)), "instances")
	}
}

// BenchmarkMGAStaticDLX runs the static marked-graph engine over the DLX
// golden flow and guards its verdicts: the graph must be live and safe,
// and the static period bound must stay within 10% above the calibrated
// 6.5085 ns (a drift in either direction means the pricing model or the
// extraction changed). The per-op runtime is the cost of one full static
// analysis over a prebuilt extraction — the number the static-vs-BFS
// speedup in EXPERIMENTS.md is computed from.
func BenchmarkMGAStaticDLX(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cn := ctrlnet.Derive(f.Desync.Top)
	m, err := equiv.FromNetwork(f.Desync.Top, cn)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := mga.AnalyzeModel(f.Desync.Top, cn, m, mga.Options{})
		if !rep.Live || !rep.Safe {
			b.Fatalf("DLX golden flow fails static verification: live=%v safe=%v", rep.Live, rep.Safe)
		}
		if rep.PeriodNs < 6.50 || rep.PeriodNs > 6.51*1.10 {
			b.Fatalf("static period bound drifted: %.4f ns", rep.PeriodNs)
		}
		b.ReportMetric(rep.PeriodNs, "period-ns")
	}
}

// BenchmarkAblationGrouping measures what the logic-cleaning and bus
// heuristics contribute to automatic region creation on the DLX.
func BenchmarkAblationGrouping(b *testing.B) {
	lib := stdcells.New(stdcells.HighSpeed)
	for i := 0; i < b.N; i++ {
		full, err := designs.BuildDLX(lib, designs.TestProgram())
		if err != nil {
			b.Fatal(err)
		}
		core.CleanLogic(full.Top)
		gFull := core.AutoGroup(full.Top)

		noBus, err := designs.BuildDLX(lib, designs.TestProgram())
		if err != nil {
			b.Fatal(err)
		}
		core.CleanLogic(noBus.Top)
		gNoBus := core.AutoGroupOpt(noBus.Top, core.GroupOptions{DisableBusRule: true})

		noClean, err := designs.BuildDLX(lib, designs.TestProgram())
		if err != nil {
			b.Fatal(err)
		}
		gNoClean := core.AutoGroup(noClean.Top)

		b.ReportMetric(float64(gFull.Groups), "groups")
		b.ReportMetric(float64(gNoBus.Groups), "groupsNoBusRule")
		b.ReportMetric(float64(gNoClean.Groups), "groupsNoCleaning")
	}
}

// BenchmarkSSTAMatching runs the §6 future-work verification: statistical
// coverage of the matched delay elements across the operating spectrum.
func BenchmarkSSTAMatching(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := expt.SSTAMatching(f)
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for _, r := range rows {
			if r.CoverShared < worst {
				worst = r.CoverShared
			}
		}
		b.ReportMetric(worst*100, "onDieCoverage%")
	}
}

// BenchmarkFIRDesynchronize runs the third case study's transformation (§6
// "more study case circuits"): the FIR filter with open handshake
// boundaries.
func BenchmarkFIRDesynchronize(b *testing.B) {
	lib := stdcells.New(stdcells.HighSpeed)
	for i := 0; i < b.N; i++ {
		d, err := designs.BuildFIR(lib)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Desynchronize(context.Background(), d, core.Options{Period: 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Insert.EnvRequests) != 1 || len(res.Insert.EnvAcks) != 1 {
			b.Fatal("environment boundary ports missing")
		}
		b.ReportMetric(float64(len(res.DDG.Nodes)), "regions")
	}
}

// ---- Engine micro-benchmarks ----

// BenchmarkDesynchronizeDLX measures the transformation itself (§3.2).
func BenchmarkDesynchronizeDLX(b *testing.B) {
	lib := stdcells.New(stdcells.HighSpeed)
	for i := 0; i < b.N; i++ {
		d, err := designs.BuildDLX(lib2(i, lib), designs.TestProgram())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Desynchronize(context.Background(), d, core.Options{Period: 4.65}); err != nil {
			b.Fatal(err)
		}
	}
}

func lib2(i int, base *netlist.Library) *netlist.Library {
	_ = i
	return base
}

// BenchmarkSimulateDLX measures gate-level simulation throughput.
func BenchmarkSimulateDLX(b *testing.B) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		b.Fatal(err)
	}
	period := 5.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.New(d.Top, sim.Config{Corner: netlist.Worst})
		if err != nil {
			b.Fatal(err)
		}
		s.Drive("rstn", logic.L, 0)
		s.Drive("rstn", logic.H, period*0.4)
		s.Clock("clk", period, 0, period*30)
		if err := s.RunUntilQuiescent(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.Events()), "events")
	}
}

// BenchmarkSTADLX measures the timing engine on the DLX.
func BenchmarkSTADLX(b *testing.B) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := sta.Build(d.Top, sta.Options{Corner: netlist.Worst})
		if err != nil {
			b.Fatal(err)
		}
		r := g.Analyze()
		b.ReportMetric(r.WorstEndpointArrival(), "criticalPath_ns")
	}
}

// BenchmarkFaultSimulation measures the DFT random-pattern fault simulator.
func BenchmarkFaultSimulation(b *testing.B) {
	lib := stdcells.New(stdcells.HighSpeed)
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dft.InsertScan(d); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := dft.GenerateVectors(d, 64, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Coverage()*100, "coverage%")
	}
}

// BenchmarkPlaceAndRoute measures the backend substrate.
func BenchmarkPlaceAndRoute(b *testing.B) {
	lib := stdcells.New(stdcells.HighSpeed)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := designs.BuildDLX(lib, designs.TestProgram())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		lay, err := pnr.PlaceAndRoute(d, pnr.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lay.Report.CoreArea, "coreArea_um2")
	}
}

// BenchmarkMonteCarloChip measures one variability sample end to end.
func BenchmarkMonteCarloChip(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		variability.ApplyIntraDie(f.Desync.Top, 0.03, rng)
		chip := variability.Sample(rng, 1, 1.0/6)[0]
		run, err := expt.MeasureDDLX(f, netlist.Best, chip.Scale(), -1, 12)
		if err != nil {
			b.Fatal(err)
		}
		if !run.Correct {
			b.Fatal("chip failed")
		}
	}
	b.StopTimer()
	variability.ResetIntraDie(f.Desync.Top)
}

// BenchmarkProtocolRingCheck measures the STG flow-equivalence checker.
func BenchmarkProtocolRingCheck(b *testing.B) {
	p, err := stg.ProtocolByName("semi-decoupled")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := p.CheckRing(2, 2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Live || !rep.FlowEquiv {
			b.Fatal("semi-decoupled misclassified")
		}
	}
}

// BenchmarkSweepSmokeDLX runs a small corner x chip x fault robustness
// sweep end to end and fails outright if the surface is not flat: every
// corner must detect 100% of its injected faults and no scenario may be
// quarantined. This is the guard for the streaming sweep engine — the
// ordered fold, the quarantine boundary and the aggregation all sit on
// this path — sized to stay a smoke test, not a measurement.
func BenchmarkSweepSmokeDLX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := expt.DLXRobustnessSurface(context.Background(), nil, expt.SurfaceConfig{
			Corners: 2, Chips: 2, DelayPerRegion: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.FailureCount != 0 {
			b.Fatalf("sweep quarantined %d scenario(s):\n%s", rep.FailureCount, rep.Render())
		}
		for _, cs := range rep.CornerStats {
			if cs.Injected == 0 {
				b.Fatalf("corner %d injected no faults", cs.Corner)
			}
			if cs.Detected != cs.Injected {
				b.Fatalf("corner %d detection %d/%d; surface not flat:\n%s",
					cs.Corner, cs.Detected, cs.Injected, rep.Render())
			}
		}
		b.ReportMetric(float64(rep.Total), "scenarios")
		b.ReportMetric(float64(rep.Detected)/float64(rep.Injected), "detectionRate")
	}
}
