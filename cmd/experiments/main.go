// Command experiments regenerates the paper's evaluation: Tables 5.1 and
// 5.2, Figures 5.3, 5.4 and 5.5, plus Table 2.1 and the Fig 2.4 protocol
// classification.
//
// Usage:
//
//	experiments -all
//	experiments -table 5.1 | -table 5.2
//	experiments -fig 2.4 | -fig 5.3 | -fig 5.4 | -fig 5.5
//	experiments -faults
//	experiments -sweep
//	experiments -static
//	experiments -backends
//	            [-cycles 25] [-chips 60] [-sel 3] [-seed 5] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"desync/internal/cliutil"
	"desync/internal/core"
	"desync/internal/expt"
	"desync/internal/expt/static"
	"desync/internal/netlist"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run everything")
		table   = flag.String("table", "", "regenerate a table: 2.1, 5.1 or 5.2")
		fig     = flag.String("fig", "", "regenerate a figure: 2.4, 5.3, 5.4 or 5.5")
		cycles  = flag.Int("cycles", 25, "simulated cycles per measurement")
		chips   = flag.Int("chips", 60, "Monte Carlo population for Fig 5.4")
		sel     = flag.Int("sel", 3, "delay selection for Fig 5.4 (-1 = fixed sized elements)")
		faults  = flag.Bool("faults", false, "run the DLX fault-injection campaign")
		doSweep = flag.Bool("sweep", false, "sweep the DLX robustness surface (corners x chips x faults)")
		doStat  = flag.Bool("static", false, "cross-check the static marked-graph engine against simulation and the BFS")
		doBacks = flag.Bool("backends", false, "compare the clocking-conversion backends (area, cycle time) over the case studies")
		scale   = flag.String("scale", "", "measure the netlist-core scaling table at these comma-separated instance counts (e.g. 10000,100000,1000000)")
	)
	var seed int64
	var jobs int
	cliutil.SeedVar(flag.CommandLine, &seed, "seed", 5, "random seed")
	cliutil.ParallelismVar(flag.CommandLine, &jobs)
	flag.Parse()
	if !*all && *table == "" && *fig == "" && !*faults && !*doSweep && !*doStat && !*doBacks && *scale == "" {
		flag.Usage()
		os.Exit(2)
	}
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "experiments: internal error: %v\n", r)
			os.Exit(3)
		}
	}()
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *all || *table == "2.1" {
		fmt.Println(expt.Table21())
	}
	if *all || *fig == "2.4" {
		run("fig 2.4", func() error {
			rows, err := expt.Fig24()
			if err != nil {
				return err
			}
			fmt.Println(expt.RenderFig24(rows))
			return nil
		})
	}
	if *all || *table == "5.1" {
		run("table 5.1", func() error {
			tbl, f, err := expt.Table51()
			if err != nil {
				return err
			}
			fmt.Println(tbl.Render())
			fmt.Printf("  synchronous clock period (STA): best %.3f ns, worst %.3f ns\n",
				f.BestPeriod, f.Period)
			ab, err := expt.ControlOverhead(f, *cycles)
			if err != nil {
				return err
			}
			fmt.Printf("  as-sized DDLX effective period (worst): %.3f ns (%.1f%% over DLX)\n\n",
				ab.DesyncPeriod, ab.OverheadPct)
			return nil
		})
	}
	if *all || *fig == "5.3" || *fig == "5.5" {
		run("fig 5.3/5.5", func() error {
			sweep, _, err := expt.Fig53(*cycles)
			if err != nil {
				return err
			}
			if *all || *fig == "5.3" {
				fmt.Println(sweep.Render())
			}
			if *all || *fig == "5.5" {
				fmt.Println(sweep.RenderPower())
				fmt.Printf("  DLX power: best %.3f mW, worst %.3f mW\n\n",
					sweep.DLXPower[netlist.Best], sweep.DLXPower[netlist.Worst])
			}
			return nil
		})
	}
	if *all || *fig == "5.4" {
		run("fig 5.4", func() error {
			mc, _, err := expt.Fig54(*chips, *cycles, *sel, seed)
			if err != nil {
				return err
			}
			fmt.Println(mc.Render())
			return nil
		})
	}
	if *all || *fig == "ssta" {
		run("ssta", func() error {
			f, err := expt.RunDLXFlow(expt.FlowConfig{})
			if err != nil {
				return err
			}
			rows, err := expt.SSTAMatching(f)
			if err != nil {
				return err
			}
			fmt.Println(expt.RenderSSTA(rows))
			return nil
		})
	}
	if *all || *faults {
		run("faults", func() error {
			ctx, cancel := cliutil.Context()
			defer cancel()
			rep, err := expt.RunDLXFaultCampaign(ctx, nil, expt.FaultCampaignConfig{
				Glitches: true, Parallelism: jobs,
			})
			if err != nil {
				return err
			}
			fmt.Println(rep.Render())
			return nil
		})
	}
	if *all || *doStat {
		run("static", func() error {
			tab, err := static.Run(static.Options{SimCycles: *cycles * 16, Parallelism: jobs})
			if err != nil {
				return err
			}
			static.Render(os.Stdout, tab)
			fmt.Println()
			return nil
		})
	}
	if *all || *doBacks {
		run("backends", func() error {
			rows, err := expt.CompareBackends(expt.DefaultComparisonSpecs,
				[]string{core.BackendDesync, core.BackendTwoPhase},
				expt.FlowConfig{Parallelism: jobs})
			if err != nil {
				return err
			}
			fmt.Println(expt.RenderBackendTable(rows))
			return nil
		})
	}
	if *all || *doSweep {
		run("sweep", func() error {
			ctx, cancel := cliutil.Context()
			defer cancel()
			f, err := expt.RunDLXFlow(expt.FlowConfig{Parallelism: jobs})
			if err != nil {
				return err
			}
			rep, err := expt.DLXRobustnessSurface(ctx, f, expt.SurfaceConfig{
				Seed: seed, Parallelism: jobs,
			})
			if err != nil {
				return err
			}
			rows, err := expt.SSTAMatching(f)
			if err != nil {
				return err
			}
			fmt.Println(expt.RenderSurface(rep, rows))
			return nil
		})
	}
	if *all || *table == "5.2" {
		run("table 5.2", func() error {
			tbl, f, err := expt.Table52()
			if err != nil {
				return err
			}
			fmt.Println(tbl.Render())
			fmt.Printf("  scan chain: %d flip-flops, random-pattern stuck-at coverage %.1f%%\n\n",
				f.ScanChain, f.Coverage*100)
			return nil
		})
	}
	if *scale != "" {
		run("scale", func() error {
			var targets []int
			for _, s := range strings.Split(*scale, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					return fmt.Errorf("bad -scale size %q", s)
				}
				targets = append(targets, n)
			}
			ctx, cancel := cliutil.Context()
			defer cancel()
			return expt.RenderScaleTable(ctx, os.Stdout, targets, jobs)
		})
	}
}
