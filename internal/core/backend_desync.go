package core

import (
	"context"
	"fmt"

	"desync/internal/ctrlnet"
)

func init() { RegisterBackend(desyncBackend{}) }

// desyncBackend is the paper's transformation behind the Backend seam: the
// master/slave latch substitution, matched delay-element sizing from the
// per-region STA budgets, handshake controller-network insertion, and the
// ctrlnet claim-versus-derivation cross-check.
type desyncBackend struct{}

func (desyncBackend) Name() string { return BackendDesync }

// Canonicalize defaults the mode to matched delay elements, defaults the
// completion margin under ModeCompletion and zeroes it everywhere else —
// the knob is inert without a completion network, and a live inert knob
// would split the job server's cache entries.
func (desyncBackend) Canonicalize(o Options) (Options, error) {
	switch o.Mode {
	case "":
		o.Mode = ModeMatched
	case ModeMatched, ModeCompletion:
	default:
		return o, fmt.Errorf("unknown desync mode %q (want %q or %q)",
			o.Mode, ModeMatched, ModeCompletion)
	}
	if o.Mode == ModeCompletion {
		if o.CompletionMargin == 0 {
			o.CompletionMargin = 2
		}
	} else {
		o.CompletionMargin = 0
	}
	return o, nil
}

func (desyncBackend) Substitute(ctx context.Context, f *Flow) error {
	sub, err := SubstituteFlipFlops(f.Design)
	if err != nil {
		return err
	}
	f.Res.Substitution = sub
	return nil
}

func (desyncBackend) Size(ctx context.Context, f *Flow) error {
	f.Res.DDG = BuildDDG(f.Design.Top)
	levels, rds, err := SizeDelayElements(ctx, f.Design, f.Res.DDG, f.Opts.Margin, f.Opts.Parallelism)
	if err != nil {
		return err
	}
	f.Res.DelayLevels = levels
	f.Res.RegionDelays = rds
	f.Res.UnderMargin = underMarginRegions(f.Design.Lib, f.Res.DDG, levels, rds)
	return nil
}

func (desyncBackend) Generate(ctx context.Context, f *Flow) error {
	ins, err := InsertControlNetwork(f.Design, f.Res.DDG, f.Res.Substitution.Enables,
		f.Res.DelayLevels, InsertOptions{
			Margin:              f.Opts.Margin,
			MuxTaps:             f.Opts.MuxTaps,
			TapScales:           f.Opts.TapScales,
			Period:              f.Opts.Period,
			CompletionDetection: f.Opts.Mode == ModeCompletion,
			CompletionMargin:    f.Opts.CompletionMargin,
		})
	if err != nil {
		return err
	}
	f.Res.Insert = ins
	f.Res.Constraints = ins.Constraints
	return nil
}

func (desyncBackend) Verify(ctx context.Context, f *Flow) error {
	f.Res.Network = ctrlnet.Derive(f.Design.Top)
	f.Res.CtrlDiff = ctrlnet.Diff(f.Res.Insert.Claim, f.Res.Network)
	if len(f.Res.CtrlDiff) > 0 {
		return fmt.Errorf("netlist disagrees with the generate stage's claim: %v (and %d more)",
			f.Res.CtrlDiff[0], len(f.Res.CtrlDiff)-1)
	}
	return nil
}
