// Package expt regenerates every table and figure of the paper's
// evaluation (Chapter 5, plus Table 2.1 and Fig 2.4): it runs the full
// synchronous and desynchronization flows on the two case studies, measures
// area, timing, power and variability tolerance, and renders the results as
// text tables. cmd/experiments and bench_test.go drive it.
package expt

import (
	"context"
	"fmt"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/dft"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/pnr"
	"desync/internal/power"
	"desync/internal/sim"
	"desync/internal/sta"
	"desync/internal/stdcells"
)

// DLXFlow holds the fully implemented synchronous and desynchronized DLX.
type DLXFlow struct {
	Sync   *netlist.Design
	Desync *netlist.Design
	Result *core.Result
	// Period is the synchronous worst-case clock period from STA (ns).
	Period float64
	// BestPeriod is the same budget at the best corner.
	BestPeriod float64
	// Layouts when P&R has run.
	SyncLayout, DesyncLayout *pnr.Layout
	// Post-synthesis snapshots taken before P&R.
	SyncSynth, DesyncSynth Breakdown
}

// FlowConfig selects optional steps.
type FlowConfig struct {
	MuxTaps   bool
	TapScales []float64
	Layout    bool
	Program   []uint16
	// Margin overrides the delay-element sizing margin (0 = default).
	Margin float64
	// SingleRegion desynchronizes the whole design as one region (the
	// ARM-style fallback), for the grouping ablation.
	SingleRegion bool
	// Backend selects the conversion backend (empty = the desync default).
	Backend string
	// Mode selects a backend sub-strategy; core.ModeCompletion replaces
	// delay elements with dual-rail completion networks (§2.4.4).
	Mode core.Mode
	// Parallelism bounds the flow's parallel kernels; 0 means GOMAXPROCS.
	// The results are identical at any value.
	Parallelism int
}

// RunDLXFlow implements the experimental procedure of Fig 5.1 for the DLX:
// the same generated netlist goes once through the synchronous backend and
// once through desynchronization plus the same backend.
func RunDLXFlow(cfg FlowConfig) (*DLXFlow, error) {
	lib := stdcells.New(stdcells.HighSpeed)
	prog := cfg.Program
	if prog == nil {
		prog = designs.TestProgram()
	}
	f := &DLXFlow{}
	var err error
	if f.Sync, err = designs.BuildDLX(lib, prog); err != nil {
		return nil, err
	}
	// A second identical netlist for the desynchronization branch (the
	// paper's flow forks the post-synthesis netlist).
	lib2 := stdcells.New(stdcells.HighSpeed)
	if f.Desync, err = designs.BuildDLX(lib2, prog); err != nil {
		return nil, err
	}
	// Remove generator buffering artifacts from the synchronous branch the
	// same way the desynchronization import does, so the area comparison
	// starts from the same logical netlist.
	core.CleanLogic(f.Sync.Top)
	f.Period, f.BestPeriod, err = syncPeriods(f.Sync)
	if err != nil {
		return nil, err
	}
	if cfg.SingleRegion {
		for _, in := range f.Desync.Top.Insts {
			in.Group = 1
		}
	}
	f.Result, err = core.Convert(context.Background(), f.Desync, core.Options{
		Backend:      cfg.Backend,
		Mode:         cfg.Mode,
		Period:       f.Period,
		Margin:       cfg.Margin,
		MuxTaps:      cfg.MuxTaps,
		TapScales:    cfg.TapScales,
		ManualGroups: cfg.SingleRegion,
		Parallelism:  cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	f.SyncSynth = BreakdownOf(f.Sync.Top)
	f.DesyncSynth = BreakdownOf(f.Desync.Top)
	if cfg.Layout {
		opts := pnr.DefaultOptions()
		opts.Utilization = 0.95
		if f.SyncLayout, err = pnr.PlaceAndRoute(f.Sync, opts); err != nil {
			return nil, err
		}
		opts.Utilization = 0.91
		if f.DesyncLayout, err = pnr.PlaceAndRoute(f.Desync, opts); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// syncPeriods computes the synchronous clock period at both corners: the
// worst launch-to-capture budget over all regions.
func syncPeriods(d *netlist.Design) (worst, best float64, err error) {
	for _, corner := range []netlist.Corner{netlist.Worst, netlist.Best} {
		rds, err := sta.RegionDelays(context.Background(), d.Top, corner, sta.Options{})
		if err != nil {
			return 0, 0, err
		}
		p := 0.0
		for _, rd := range rds {
			if b := rd.Budget(); b > p {
				p = b
			}
		}
		if corner == netlist.Worst {
			worst = p * 1.05 // small clock margin
		} else {
			best = p * 1.05
		}
	}
	return worst, best, nil
}

// ARMFlow holds the ARM case study (area only, as in §5.3).
type ARMFlow struct {
	Sync, Desync             *netlist.Design
	Result                   *core.Result
	ScanChain                int
	Coverage                 float64
	SyncSynth, DesyncSynth   Breakdown
	SyncLayout, DesyncLayout *pnr.Layout
}

// RunARMFlow builds the ARM-like scan design on the Low-Leakage library,
// inserts scan, extracts vectors, desynchronizes it as a single region
// (§5.3: grouping the ARM automatically was not possible; one group was
// used), and runs both backends.
func RunARMFlow(layout bool) (*ARMFlow, error) {
	f := &ARMFlow{}
	build := func() (*netlist.Design, error) {
		lib := stdcells.New(stdcells.LowLeakage)
		d, err := designs.BuildARMLike(lib, 42)
		if err != nil {
			return nil, err
		}
		res, err := dft.InsertScan(d)
		if err != nil {
			return nil, err
		}
		f.ScanChain = res.ChainLen
		return d, nil
	}
	var err error
	if f.Sync, err = build(); err != nil {
		return nil, err
	}
	core.CleanLogic(f.Sync.Top)
	cov, err := dft.GenerateVectors(f.Sync, 64, 11)
	if err != nil {
		return nil, err
	}
	f.Coverage = cov.Coverage()
	if f.Desync, err = build(); err != nil {
		return nil, err
	}
	if f.Result, err = core.Desynchronize(context.Background(), f.Desync, core.Options{
		Period:       armPeriod(f.Sync),
		ManualGroups: true,
	}); err != nil {
		return nil, err
	}
	f.SyncSynth = BreakdownOf(f.Sync.Top)
	f.DesyncSynth = BreakdownOf(f.Desync.Top)
	if layout {
		opts := pnr.DefaultOptions()
		opts.Utilization = 0.80 // the paper's ARM used a roomier floorplan
		if f.SyncLayout, err = pnr.PlaceAndRoute(f.Sync, opts); err != nil {
			return nil, err
		}
		opts.Utilization = 0.88
		if f.DesyncLayout, err = pnr.PlaceAndRoute(f.Desync, opts); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func armPeriod(d *netlist.Design) float64 {
	rds, err := sta.RegionDelays(context.Background(), d.Top, netlist.Worst, sta.Options{})
	if err != nil {
		return 10
	}
	p := 0.0
	for _, rd := range rds {
		if b := rd.Budget(); b > p {
			p = b
		}
	}
	return p * 1.05
}

// MeasureRun is one desynchronized simulation outcome.
type MeasureRun struct {
	EffectivePeriod float64
	Cycles          int
	Correct         bool // flow-equivalent to the golden model
	DynamicMW       float64
	LeakageMW       float64
}

// MeasureDDLX simulates the desynchronized DLX at a corner (optionally
// scaled for inter-die variability) with the given delay selection, and
// measures the effective period, correctness against the golden model and
// power. sel < 0 means the design has no selection ports.
func MeasureDDLX(f *DLXFlow, corner netlist.Corner, scale float64, sel int, cycles int) (*MeasureRun, error) {
	s, err := sim.New(f.Desync.Top, sim.Config{Corner: corner, Scale: scale})
	if err != nil {
		return nil, err
	}
	if sel >= 0 {
		for i := 0; i < 3; i++ {
			if err := s.Drive(fmt.Sprintf("delsel[%d]", i), logic.FromBool(sel>>i&1 == 1), 0); err != nil {
				return nil, err
			}
		}
	}
	s.Drive("rstn", logic.L, 0)
	s.Drive("rst_desync", logic.H, 0)
	s.Drive("rstn", logic.H, 1)
	s.Drive("rst_desync", logic.L, 2)
	// Bound the run generously: worst corner, longest tap.
	horizon := 2 + f.Period*float64(cycles)*6*scale
	if err := s.Run(horizon); err != nil {
		return nil, err
	}

	times := s.CaptureTimes["pc_r[0]/sl"]
	run := &MeasureRun{Cycles: len(times)}
	if len(times) < cycles/2 {
		return nil, fmt.Errorf("expt: desynchronized DLX stalled: %d captures", len(times))
	}
	// Steady-state effective period: skip the boot transient.
	skip := 3
	if len(times) <= skip+2 {
		skip = 0
	}
	run.EffectivePeriod = (times[len(times)-1] - times[skip]) / float64(len(times)-1-skip)

	// Correctness: PC trace and R7 against the golden model. The trace is
	// compared only over cycles where every PC bit has a capture (the run
	// horizon can cut a capture wave in half).
	model := designs.NewModel(designs.TestProgram())
	model.Run(len(times))
	kmax := len(times)
	for i := 0; i < designs.PCBits; i++ {
		if n := len(s.Captures[fmt.Sprintf("pc_r[%d]/sl", i)]); n < kmax {
			kmax = n
		}
	}
	run.Correct = true
	for k := 0; k < kmax && run.Correct; k++ {
		var pc uint16
		for i := 0; i < designs.PCBits; i++ {
			if s.Captures[fmt.Sprintf("pc_r[%d]/sl", i)][k] == logic.H {
				pc |= 1 << uint(i)
			}
		}
		if pc != model.Trace[k] {
			run.Correct = false
		}
	}
	// R7 check from the recorded capture values (net state can be cut
	// mid-settling by the run horizon): the k-th capture of the rf7 slave
	// latches is R7 after k+1 model cycles.
	kLast := -1
	for i := 0; i < 16; i++ {
		n := len(s.Captures[fmt.Sprintf("rf7_r[%d]/sl", i)])
		if kLast < 0 || n-1 < kLast {
			kLast = n - 1
		}
	}
	if kLast < 1 {
		run.Correct = false
	} else {
		m2 := designs.NewModel(designs.TestProgram())
		m2.Run(kLast + 1)
		var r7 uint16
		for i := 0; i < 16; i++ {
			if s.Captures[fmt.Sprintf("rf7_r[%d]/sl", i)][kLast] == logic.H {
				r7 |= 1 << uint(i)
			}
		}
		if r7 != m2.Regs[7] {
			run.Correct = false
		}
	}

	// Power over the active window.
	duration := times[len(times)-1] - 2
	rep, err := power.Estimate(f.Desync.Top, s, duration, corner)
	if err != nil {
		return nil, err
	}
	run.DynamicMW, run.LeakageMW = rep.DynamicMW, rep.LeakageMW
	return run, nil
}

// MeasureDLX simulates the synchronous DLX at a corner and period and
// returns its power (its period is the clock, not a measurement).
func MeasureDLX(f *DLXFlow, corner netlist.Corner, period float64, cycles int) (*MeasureRun, error) {
	s, err := sim.New(f.Sync.Top, sim.Config{Corner: corner})
	if err != nil {
		return nil, err
	}
	s.Drive("rstn", logic.L, 0)
	s.Drive("rstn", logic.H, period*0.4)
	s.Clock("clk", period, 0, period*float64(cycles))
	if err := s.RunUntilQuiescent(); err != nil {
		return nil, err
	}
	n := len(s.Captures["pc_r[0]"])
	model := designs.NewModel(designs.TestProgram())
	model.Run(n)
	run := &MeasureRun{EffectivePeriod: period, Cycles: n, Correct: true}
	if r7 := s.Vector("rf7_q", 16); !r7.Known() || uint16(r7.Uint()) != model.Regs[7] {
		run.Correct = false
	}
	rep, err := power.Estimate(f.Sync.Top, s, period*float64(cycles), corner)
	if err != nil {
		return nil, err
	}
	run.DynamicMW, run.LeakageMW = rep.DynamicMW, rep.LeakageMW
	return run, nil
}
