package flowserv

import (
	"container/list"
	"sort"
	"sync"
)

// entry is one cached flow result: the artifact bytes exactly as the fresh
// run produced them. Entries are immutable after insertion — a cache hit
// serves the same byte slices the fresh run stored, which is what makes the
// cached-equals-fresh guarantee trivial to audit.
type entry struct {
	key       string
	artifacts map[string][]byte
}

// cache is the content-addressed result store: an LRU bounded by entry
// count. Keys are the (netlist content hash, canonical options) digests of
// request.go; the cross-request analogue of ctrlnet's ModSeq memoization.
type cache struct {
	mu      sync.Mutex
	max     int
	byKey   map[string]*list.Element // value: *entry
	lru     *list.List               // front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64
}

func newCache(maxEntries int) *cache {
	return &cache{max: maxEntries, byKey: map[string]*list.Element{}, lru: list.New()}
}

// get returns the entry for key, counting the hit or miss.
func (c *cache) get(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*entry), true
}

// put inserts a fresh result, evicting from the LRU tail past the bound.
// A concurrent duplicate insert (two identical jobs racing) keeps the
// first entry: both hold byte-identical artifacts by the flow's
// determinism guarantee, so which one wins is unobservable.
func (c *cache) put(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[e.key] = c.lru.PushFront(e)
	for c.max > 0 && c.lru.Len() > c.max {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.evicted++
	}
}

// CacheStats is the /stats cache section.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Evicted uint64 `json:"evicted"`
}

func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.lru.Len(), Hits: c.hits, Misses: c.misses, Evicted: c.evicted}
}

// artifactNames lists an artifact map's keys sorted, for stable JSON.
func artifactNames(m map[string][]byte) []string {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
