// Package core implements drdesync, the desynchronization tool of the
// paper: it converts a post-synthesis synchronous gate-level netlist into a
// flow-equivalent asynchronous one. The pipeline mirrors §3.2: design
// import and cleanup, logic cleaning, automatic region creation (the
// grouping algorithm of Fig 3.4), flip-flop substitution (Fig 3.1),
// data-dependency-graph construction, matched delay-element sizing via STA,
// controller-network insertion and export with backend timing constraints
// (Fig 4.2, §4.5–4.6).
package core

import (
	"desync/internal/netlist"
)

// CleanLogic removes signal-buffering cells so that the grouping algorithm
// sees only true data dependencies (§3.2.2, Fig 3.5): non-inverting buffers
// are bypassed, and inverter pairs in series collapse. Nets bound to module
// ports are preserved. Returns the number of removed cells. In an in-place
// optimization flow the removed buffering is not reinstated; the backend
// re-buffers as needed (§4.7).
func CleanLogic(m *netlist.Module) int {
	removed := 0
	for {
		changed := false
		// Each sweep removes up to O(n) buffers; batch the removals so the
		// Insts/Nets arrays compact once per sweep instead of splicing per
		// removal (quadratic on million-instance inputs).
		m.BeginBulk()
		// Pass 1: non-inverting buffers.
		for _, in := range append([]*netlist.Inst(nil), m.Insts...) {
			if in.Cell == nil {
				continue
			}
			inv, ok := in.Cell.IsBufferLike()
			if !ok || inv {
				continue
			}
			if bypassSingleInOut(m, in) {
				removed++
				changed = true
			}
		}
		// Pass 2: inverter pairs — an inverter whose entire fanout is a
		// single second inverter, with no port on the intermediate net.
		for _, in := range append([]*netlist.Inst(nil), m.Insts...) {
			if m.Inst(in.Name) == nil || in.Cell == nil {
				continue // already removed this sweep
			}
			inv, ok := in.Cell.IsBufferLike()
			if !ok || !inv {
				continue
			}
			mid := in.Conn(outPin(in))
			if mid == nil || isPortNet(m, mid) || len(mid.Sinks) != 1 {
				continue
			}
			second := mid.Sinks[0].Inst
			if second == nil || second.Cell == nil {
				continue
			}
			if inv2, ok2 := second.Cell.IsBufferLike(); !ok2 || !inv2 {
				continue
			}
			src := in.Conn(inPin(in))
			out := second.Conn(outPin(second))
			if src == nil || out == nil {
				continue
			}
			m.RemoveInst(in)
			m.RemoveInst(second)
			m.ReplaceSinks(out, src)
			_ = m.RemoveNet(mid)
			_ = m.RemoveNet(out)
			removed += 2
			changed = true
		}
		m.EndBulk()
		if !changed {
			return removed
		}
	}
}

// bypassSingleInOut removes a buffer, moving its output sinks onto its
// input net. Returns false when the move is unsafe (output net is a port
// while the buffer is its only driver — the port keeps the net, so the
// buffer stays only if input is also a port-driven... the sinks move and
// the port rebinds; unsafe only when input and output are both ports).
func bypassSingleInOut(m *netlist.Module, in *netlist.Inst) bool {
	src := in.Conn(inPin(in))
	out := in.Conn(outPin(in))
	if src == nil || out == nil {
		return false
	}
	if isPortNet(m, out) && isPortNet(m, src) {
		// A buffer directly between two ports carries a real boundary; the
		// backend may need it. Leave it alone.
		return false
	}
	m.RemoveInst(in)
	// ReplaceSinks moves instance sinks and rebinds any port on out to src.
	m.ReplaceSinks(out, src)
	_ = m.RemoveNet(out)
	return true
}

func inPin(in *netlist.Inst) string  { return in.Cell.Inputs()[0] }
func outPin(in *netlist.Inst) string { return in.Cell.Outputs()[0] }

func isPortNet(m *netlist.Module, n *netlist.Net) bool { return portOf(m, n) != nil }

func portOf(m *netlist.Module, n *netlist.Net) *netlist.Port {
	for _, p := range m.Ports {
		if p.Net == n {
			return p
		}
	}
	return nil
}
