package flowserv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"desync/internal/cliutil"
	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// newTestServer mounts a Server on a real HTTP listener via httptest and
// runs its worker pool until the test ends.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range s.queue {
				s.runJob(ctx, j)
			}
		}()
	}
	t.Cleanup(func() {
		s.beginDrain()
		cancel()
		wg.Wait()
	})
	return s, hs
}

func mustPost(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, b
}

func mustGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, b
}

func submitJob(t *testing.T, base, body string) Status {
	t.Helper()
	code, b := mustPost(t, base+"/jobs", body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("submit: %v", err)
	}
	return st
}

// streamEvents follows the NDJSON feed to the terminal event and returns
// every event in order.
func streamEvents(t *testing.T, base, id string) []Event {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	var evs []Event
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return evs
		} else if err != nil {
			t.Fatalf("events: %v", err)
		}
		evs = append(evs, ev)
	}
}

func waitTerminal(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		_, b := mustGet(t, base+"/jobs/"+id)
		var st Status
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("status: %v", err)
		}
		if terminalState(st.State) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobLifecycleE2E pushes one DLX submission through the whole HTTP
// lifecycle: accept, per-stage event stream in Stages order, artifact
// fetches, terminal status.
func TestJobLifecycleE2E(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	st := submitJob(t, hs.URL, `{"gen":"dlx"}`)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh submission state = %s", st.State)
	}
	if st.CacheKey == "" {
		t.Fatalf("submission has no cache key")
	}

	evs := streamEvents(t, hs.URL, st.ID)
	var stages []string
	var kinds []string
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "stage" {
			stages = append(stages, ev.Stage)
		}
	}
	if kinds[0] != "submitted" || kinds[1] != "start" {
		t.Fatalf("stream opens %v, want submitted,start", kinds[:2])
	}
	if last := kinds[len(kinds)-1]; last != StateDone {
		t.Fatalf("stream ends with %q: %+v", last, evs[len(evs)-1])
	}
	want := core.Stages
	if fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Fatalf("stage events %v, want %v", stages, want)
	}

	final := waitTerminal(t, hs.URL, st.ID)
	if final.State != StateDone || final.Cached {
		t.Fatalf("final status: %+v", final)
	}
	for _, name := range []string{ArtifactNetlist, ArtifactConstraints, ArtifactLint, ArtifactStatic, ArtifactResult} {
		code, b := mustGet(t, hs.URL+"/jobs/"+st.ID+"/artifacts/"+name)
		if code != http.StatusOK || len(b) == 0 {
			t.Fatalf("artifact %s: HTTP %d, %d bytes", name, code, len(b))
		}
	}
	_, rb := mustGet(t, hs.URL+"/jobs/"+st.ID+"/artifacts/"+ArtifactResult)
	var sum Summary
	if err := json.Unmarshal(rb, &sum); err != nil {
		t.Fatalf("result.json: %v", err)
	}
	if sum.Regions == 0 || sum.Controllers == 0 || sum.Period <= 0 {
		t.Fatalf("implausible summary: %+v", sum)
	}
	if sum.CacheKey != st.CacheKey {
		t.Fatalf("result.json cache key %s != submission's %s", sum.CacheKey, st.CacheKey)
	}
}

// TestCachedResubmissionByteIdentical is the tentpole guarantee: the same
// design and options submitted twice hit the cache and every artifact is
// byte-identical to the fresh run's.
func TestCachedResubmissionByteIdentical(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	fresh := submitJob(t, hs.URL, `{"gen":"dlx","options":{"faults":true}}`)
	freshDone := waitTerminal(t, hs.URL, fresh.ID)
	if freshDone.State != StateDone || freshDone.Cached {
		t.Fatalf("fresh run: %+v", freshDone)
	}

	hit := submitJob(t, hs.URL, `{"gen":"dlx","options":{"faults":true}}`)
	if hit.State != StateDone || !hit.Cached {
		t.Fatalf("resubmission not an instant cache hit: %+v", hit)
	}
	if hit.CacheKey != fresh.CacheKey {
		t.Fatalf("cache keys differ: %s vs %s", hit.CacheKey, fresh.CacheKey)
	}
	if fmt.Sprint(hit.Artifacts) != fmt.Sprint(freshDone.Artifacts) {
		t.Fatalf("artifact lists differ: %v vs %v", hit.Artifacts, freshDone.Artifacts)
	}
	for _, name := range freshDone.Artifacts {
		_, fb := mustGet(t, hs.URL+"/jobs/"+fresh.ID+"/artifacts/"+name)
		_, hb := mustGet(t, hs.URL+"/jobs/"+hit.ID+"/artifacts/"+name)
		if !bytes.Equal(fb, hb) {
			t.Fatalf("artifact %s differs between fresh and cached", name)
		}
	}

	var stats ServerStats
	_, sb := mustGet(t, hs.URL+"/stats")
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits == 0 || stats.Done != 2 {
		t.Fatalf("stats after hit: %+v", stats)
	}
}

// TestCanonicalOptionsShareCacheEntry: a request spelling out a default
// must address the same cache entry as one omitting it.
func TestCanonicalOptionsShareCacheEntry(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	a := submitJob(t, hs.URL, `{"gen":"fir"}`)
	waitTerminal(t, hs.URL, a.ID)
	b := submitJob(t, hs.URL, `{"gen":"fir","options":{"margin":1.15,"j":3}}`)
	if b.CacheKey != a.CacheKey {
		t.Fatalf("explicit defaults split the cache: %s vs %s", a.CacheKey, b.CacheKey)
	}
	if !b.Cached {
		t.Fatalf("canonical resubmission missed the cache: %+v", b)
	}
	c := submitJob(t, hs.URL, `{"gen":"fir","options":{"margin":1.3}}`)
	if c.CacheKey == a.CacheKey {
		t.Fatalf("a different margin must address a different entry")
	}
}

// TestUploadVerilogLifecycle drives the upload path: export a built design
// to Verilog text, submit it as an upload, and desynchronize it.
func TestUploadVerilogLifecycle(t *testing.T) {
	d, err := designs.BuildFIR(stdcells.New(stdcells.HighSpeed))
	if err != nil {
		t.Fatal(err)
	}
	src := verilog.Write(d)
	body, err := json.Marshal(JobRequest{Verilog: src})
	if err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, Config{})
	st := submitJob(t, hs.URL, string(body))
	final := waitTerminal(t, hs.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("uploaded FIR failed: %+v", final)
	}
	// The upload resubmitted must hit — the content hash, not the upload
	// bytes, addresses the cache.
	again := submitJob(t, hs.URL, string(body))
	if !again.Cached {
		t.Fatalf("identical upload missed the cache: %+v", again)
	}
}

// TestSingleflightAttach holds one job in flight and submits it again:
// the duplicate must attach to the running leader (no second run, no queue
// slot), terminate with the leader's artifacts byte-identically, and show
// up in /stats. A submission with different options must not attach.
func TestSingleflightAttach(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	testStageHook = func(ctx context.Context, stage string) {
		if stage == "clean" {
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
	}
	t.Cleanup(func() { testStageHook = nil; once.Do(func() { close(release) }) })

	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	leader := submitJob(t, hs.URL, `{"gen":"fir"}`)
	waitForKind(t, hs.URL, leader.ID, "start")

	follower := submitJob(t, hs.URL, `{"gen":"fir"}`)
	if follower.Attached != leader.ID {
		t.Fatalf("duplicate submission did not attach: %+v", follower)
	}
	if follower.Cached {
		t.Fatalf("follower claims a cache hit: %+v", follower)
	}
	// Different canonical options queue their own run instead of attaching.
	other := submitJob(t, hs.URL, `{"gen":"fir","options":{"margin":1.3}}`)
	if other.Attached != "" {
		t.Fatalf("different options attached to the leader: %+v", other)
	}

	once.Do(func() { close(release) })
	lDone := waitTerminal(t, hs.URL, leader.ID)
	fDone := waitTerminal(t, hs.URL, follower.ID)
	waitTerminal(t, hs.URL, other.ID)
	if lDone.State != StateDone || fDone.State != StateDone {
		t.Fatalf("leader %s, follower %s", lDone.State, fDone.State)
	}
	if fmt.Sprint(fDone.Artifacts) != fmt.Sprint(lDone.Artifacts) {
		t.Fatalf("artifact lists differ: %v vs %v", fDone.Artifacts, lDone.Artifacts)
	}
	for _, name := range lDone.Artifacts {
		_, lb := mustGet(t, hs.URL+"/jobs/"+leader.ID+"/artifacts/"+name)
		_, fb := mustGet(t, hs.URL+"/jobs/"+follower.ID+"/artifacts/"+name)
		if !bytes.Equal(lb, fb) {
			t.Fatalf("artifact %s differs between leader and follower", name)
		}
	}
	evs := streamEvents(t, hs.URL, follower.ID)
	var sawAttach bool
	for _, ev := range evs {
		if ev.Kind == "attached" {
			sawAttach = true
		}
		if ev.Kind == "start" || ev.Kind == "stage" {
			t.Fatalf("follower ran its own flow: %+v", ev)
		}
	}
	if !sawAttach {
		t.Fatalf("follower stream lacks the attached event: %+v", evs)
	}

	var stats ServerStats
	_, sb := mustGet(t, hs.URL+"/stats")
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Attached != 1 {
		t.Fatalf("stats.Attached = %d, want 1", stats.Attached)
	}

	// The leader is terminal and out of flight: the same submission now
	// hits the result cache instead of attaching.
	again := submitJob(t, hs.URL, `{"gen":"fir"}`)
	if !again.Cached || again.Attached != "" {
		t.Fatalf("post-completion resubmission: %+v", again)
	}
}

// TestSingleflightFollowsCancel: canceling the leader cancels everyone who
// attached to it — sharing a run means sharing its fate.
func TestSingleflightFollowsCancel(t *testing.T) {
	testStageHook = func(ctx context.Context, stage string) {
		select {
		case <-ctx.Done():
		case <-time.After(time.Minute):
		}
	}
	t.Cleanup(func() { testStageHook = nil })

	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	leader := submitJob(t, hs.URL, `{"gen":"fir"}`)
	waitForKind(t, hs.URL, leader.ID, "start")
	follower := submitJob(t, hs.URL, `{"gen":"fir"}`)
	if follower.Attached != leader.ID {
		t.Fatalf("duplicate did not attach: %+v", follower)
	}
	if code, _ := mustPost(t, hs.URL+"/jobs/"+leader.ID+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	if st := waitTerminal(t, hs.URL, follower.ID); st.State != StateCanceled {
		t.Fatalf("follower of a canceled leader ended %s", st.State)
	}
}

// TestTwoPhaseSubmission drives a twophase-backend job through the server:
// the TP-* lint gate replaces the desync gate set, the desync-only gates
// are dropped at canonicalization (sharing one cache entry with a request
// that never asked), and result.json reflects the backend.
func TestTwoPhaseSubmission(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	st := submitJob(t, hs.URL, `{"gen":"fir","options":{"backend":"twophase","equiv":true,"faults":true}}`)
	final := waitTerminal(t, hs.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("twophase FIR failed: %+v", final)
	}
	for _, name := range final.Artifacts {
		if name == ArtifactStatic || name == ArtifactEquiv || name == ArtifactFaults {
			t.Fatalf("desync-only artifact %s on a twophase job", name)
		}
	}
	_, rb := mustGet(t, hs.URL+"/jobs/"+st.ID+"/artifacts/"+ArtifactResult)
	var sum Summary
	if err := json.Unmarshal(rb, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Options.Backend != core.BackendTwoPhase {
		t.Fatalf("result backend %q", sum.Options.Backend)
	}
	if sum.StaticOK || sum.EquivRan || sum.FaultsRan || sum.Controllers != 0 {
		t.Fatalf("desync gate results on a twophase job: %+v", sum)
	}
	if sum.Options.Equiv || sum.Options.Faults {
		t.Fatalf("desync-only gate knobs survived canonicalization: %+v", sum.Options)
	}
	var noted bool
	for _, ev := range streamEvents(t, hs.URL, st.ID) {
		if ev.Kind == "note" && ev.Stage == "gates" {
			noted = true
		}
	}
	if !noted {
		t.Fatal("dropped equiv/faults request produced no note event")
	}

	// A request that never asked for the dropped gates shares the entry.
	plain := submitJob(t, hs.URL, `{"gen":"fir","options":{"backend":"twophase"}}`)
	if plain.CacheKey != st.CacheKey || !plain.Cached {
		t.Fatalf("inert gate knobs split the cache: %+v vs %+v", plain, st)
	}
	// The desync flow on the same design addresses a different entry.
	if d := submitJob(t, hs.URL, `{"gen":"fir"}`); d.CacheKey == st.CacheKey {
		t.Fatal("backends share a cache entry")
	}
}

// TestSubmitValidation: malformed submissions are rejected before any
// flow work happens.
func TestSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, body := range []string{
		`{}`,
		`{"gen":"dlx","verilog":"module m; endmodule"}`,
		`{"gen":"vax"}`,
		`{"gen":"dlx","lib":"XX"}`,
		`{"gen":"dlx","top":"dlx"}`,
		`{"gen":"dlx","options":{"backend":"fourphase"}}`,
		`{"gen":"dlx","options":{"backend":"twophase","mode":"cdet"}}`,
		`not json`,
	} {
		code, _ := mustPost(t, hs.URL+"/jobs", body)
		if code != http.StatusBadRequest {
			t.Errorf("submit %q: HTTP %d, want 400", body, code)
		}
	}
	if code, _ := mustGet(t, hs.URL+"/jobs/j999"); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
}

// TestCancelAndBackpressure exercises the bounded queue and both cancel
// paths over real HTTP: a full queue rejects with 503, a queued job
// cancels instantly, a running job cancels at the next stage boundary.
func TestCancelAndBackpressure(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Hold the running job at its first stage until its context is canceled
	// (the flow itself finishes in milliseconds — far too fast to race the
	// cancel request against).
	testStageHook = func(ctx context.Context, stage string) {
		select {
		case <-ctx.Done():
		case <-time.After(time.Minute):
		}
	}
	t.Cleanup(func() { testStageHook = nil })

	// The held job occupies the single worker.
	running := submitJob(t, hs.URL, `{"gen":"arm"}`)
	waitForKind(t, hs.URL, running.ID, "start")

	queued := submitJob(t, hs.URL, `{"gen":"dlx"}`)
	if queued.State != StateQueued {
		t.Fatalf("second job state = %s, want queued", queued.State)
	}
	if code, b := mustPost(t, hs.URL+"/jobs", `{"gen":"fir"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: HTTP %d: %s", code, b)
	}

	if code, _ := mustPost(t, hs.URL+"/jobs/"+queued.ID+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel queued: HTTP %d", code)
	}
	if st := waitTerminal(t, hs.URL, queued.ID); st.State != StateCanceled {
		t.Fatalf("canceled queued job ended %s", st.State)
	}

	if code, _ := mustPost(t, hs.URL+"/jobs/"+running.ID+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel running: HTTP %d", code)
	}
	st := waitTerminal(t, hs.URL, running.ID)
	if st.State != StateCanceled {
		t.Fatalf("mid-job cancel ended %s (%s)", st.State, st.Error)
	}
	evs := streamEvents(t, hs.URL, running.ID)
	if last := evs[len(evs)-1]; last.Kind != StateCanceled {
		t.Fatalf("canceled job's stream ends with %+v", last)
	}
}

// waitForKind polls the job's status until its event log contains the
// kind (events streaming is covered elsewhere; polling keeps this helper
// free of a second connection).
func waitForKind(t *testing.T, base, id, kind string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		resp, err := http.Get(base + "/jobs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		dec := json.NewDecoder(resp.Body)
		for {
			var ev Event
			if err := dec.Decode(&ev); err != nil {
				break
			}
			if ev.Kind == kind {
				resp.Body.Close()
				return
			}
			if terminalState(ev.Kind) {
				break
			}
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached event kind %q", id, kind)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrainUnderSIGTERM sends the test process a real SIGTERM while one
// job runs and two sit queued, through the same cliutil drain path the
// CLI uses: the running job finishes inside the grace period, the queued
// jobs are canceled, and Serve returns cleanly.
func TestDrainUnderSIGTERM(t *testing.T) {
	// Slow every stage down enough that the queued jobs are still queued
	// when SIGTERM lands, while the running job still finishes well inside
	// the grace period.
	testStageHook = func(ctx context.Context, stage string) {
		select {
		case <-ctx.Done():
		case <-time.After(250 * time.Millisecond):
		}
	}
	t.Cleanup(func() { testStageHook = nil })

	s := New(Config{Workers: 1, QueueDepth: 4, DrainGrace: 2 * time.Minute})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	interrupted, err := cliutil.RunDrained(func(ctx context.Context) error {
		serveErr := make(chan error, 1)
		go func() { serveErr <- s.Serve(ctx, ln) }()

		running := submitJob(t, base, `{"gen":"dlx"}`)
		waitForKind(t, base, running.ID, "start")
		q1 := submitJob(t, base, `{"gen":"dlx","options":{"margin":1.2}}`)
		q2 := submitJob(t, base, `{"gen":"dlx","options":{"margin":1.3}}`)
		if q1.State != StateQueued || q2.State != StateQueued {
			t.Fatalf("expected queued jobs, got %s and %s", q1.State, q2.State)
		}

		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatalf("self-SIGTERM: %v", err)
		}
		<-ctx.Done()
		if err := <-serveErr; err != nil {
			t.Fatalf("Serve under drain: %v", err)
		}

		// The listener is down; read terminal states from the store.
		for id, want := range map[string]string{
			running.ID: StateDone, q1.ID: StateCanceled, q2.ID: StateCanceled,
		} {
			j := s.jobByID(id)
			<-j.done
			if st := j.status(); st.State != want {
				t.Errorf("after drain, job %s = %s, want %s (%s)", id, st.State, want, st.Error)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("drained run: interrupted=%v err=%v", interrupted, err)
	}
}

// TestEventStreamDeterministic: two fresh runs of the same submission on
// two servers produce byte-identical event streams — no timestamps, no
// ordering leaks.
func TestEventStreamDeterministic(t *testing.T) {
	var streams [2]string
	for i := range streams {
		_, hs := newTestServer(t, Config{})
		st := submitJob(t, hs.URL, `{"gen":"fir"}`)
		waitTerminal(t, hs.URL, st.ID)
		evs := streamEvents(t, hs.URL, st.ID)
		b, err := json.Marshal(evs)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = string(b)
	}
	if streams[0] != streams[1] {
		t.Fatalf("event streams differ across identical fresh runs:\n%s\n%s", streams[0], streams[1])
	}
}

// BenchmarkServeCachedSubmit is the cache-hit latency guard wired into
// make check: submit an already-cached design over real HTTP.
func BenchmarkServeCachedSubmit(b *testing.B) {
	s := New(Config{})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j := range s.queue {
			s.runJob(ctx, j)
		}
	}()
	defer func() { s.beginDrain(); <-done }()

	prime := func() Status {
		resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(`{"gen":"fir"}`))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		return st
	}
	st := prime()
	for !terminalState(st.State) {
		time.Sleep(20 * time.Millisecond)
		_, sb := benchGet(b, hs.URL+"/jobs/"+st.ID)
		if err := json.Unmarshal(sb, &st); err != nil {
			b.Fatal(err)
		}
	}
	if st.State != StateDone {
		b.Fatalf("priming run ended %s: %s", st.State, st.Error)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := prime(); !st.Cached {
			b.Fatalf("iteration %d missed the cache: %+v", i, st)
		}
	}
}

func benchGet(b *testing.B, url string) (int, []byte) {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	bs, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	return resp.StatusCode, bs
}
