package mga

import (
	"fmt"
	"math"
	"sort"

	"desync/internal/ctrlnet"
	"desync/internal/equiv"
	"desync/internal/lint"
	"desync/internal/netlist"
)

// TransKind classifies a marked-graph transition.
type TransKind uint8

// Transition kinds.
const (
	TransMaster  TransKind = iota // master capture of one region
	TransSlave                    // slave capture of one region
	TransEnvSrc                   // environment request production
	TransEnvSink                  // environment acknowledge consumption
)

// Transition is one event class of the marked graph: a region's master or
// slave capture, or one environment channel's production/consumption.
type Transition struct {
	ID     int
	Name   string // "M3", "S3", "E:G5_env_ri"
	Kind   TransKind
	Region int // owning region; -1 for free-standing environment channels
}

// Place is one marked-graph place: a producer→consumer dependency with an
// initial token count and a worst-case event-chain latency in ns.
type Place struct {
	ID      int
	Src     int // producing transition
	Dst     int // consuming transition
	Tokens  int
	Delay   float64
	Name    string // "req G1>G3", "ack G3>G1", "ms G3", "cycle G3"
	Channel string // bottleneck label: "G1>G3" for channel places, "" otherwise
}

// Graph is the delay-annotated marked graph of one controller network.
type Graph struct {
	Design string
	Trans  []Transition
	Places []Place

	// out/in index places by their source/destination transition.
	out, in [][]int

	// masterOf/slaveOf map a region id to its transition id (-1: missing).
	masterOf, slaveOf map[int]int

	// wiringPreds records, per region, the pred regions its request wiring
	// actually synchronizes against (for the DDG cross-check).
	wiringPreds map[int]map[int]bool

	// ddgPreds is the data-dependency pred set from the ctrlnet IR.
	ddgPreds map[int][]int

	// resetFaults lists reset-phase findings discovered during the build.
	findings []lint.Finding

	// sigs is the model-signal export captured at build time so CheckModel
	// does not re-export it (the export allocates per signal).
	sigs []equiv.StaticSignal
}

// AddTransition appends a transition and returns its id. Hand-built
// graphs (tests, fixtures) use this; Analyze only needs Trans/Places.
func (g *Graph) AddTransition(name string, kind TransKind, region int) int {
	id := len(g.Trans)
	g.Trans = append(g.Trans, Transition{ID: id, Name: name, Kind: kind, Region: region})
	return id
}

// AddPlace appends a place (its ID field is assigned) and returns the id.
func (g *Graph) AddPlace(p Place) int {
	p.ID = len(g.Places)
	g.Places = append(g.Places, p)
	return p.ID
}

// index (re)builds the adjacency lists; Analyze calls it, so hand-built
// graphs never have to.
func (g *Graph) index() {
	g.out = make([][]int, len(g.Trans))
	g.in = make([][]int, len(g.Trans))
	for _, p := range g.Places {
		g.out[p.Src] = append(g.out[p.Src], p.ID)
		g.in[p.Dst] = append(g.in[p.Dst], p.ID)
	}
}

// builder carries the state of BuildGraph.
type builder struct {
	g      *Graph
	cn     *ctrlnet.Network
	sigs   []equiv.StaticSignal
	corner netlist.Corner

	// stop is the set of nets whose drivers are controller gates: path
	// walks terminate there (the place starting at that gate prices the
	// gate's own arc separately).
	stop map[*netlist.Net]bool

	// memo caches path delays per (net, rise); a NaN entry marks a net
	// currently on the walk stack (combinational-cycle guard).
	memo map[pathKey]float64

	// pins caches each cell's input/output pin names: path visits the
	// same few cell types hundreds of times across the delay chains, and
	// CellDef.Inputs allocates on every call.
	pins map[*netlist.CellDef]*pinSets
}

type pinSets struct {
	ins, outs []string
}

func (b *builder) pinsOf(c *netlist.CellDef) *pinSets {
	if ps, ok := b.pins[c]; ok {
		return ps
	}
	ps := &pinSets{ins: c.Inputs(), outs: c.Outputs()}
	b.pins[c] = ps
	return ps
}

type pathKey struct {
	n    *netlist.Net
	rise bool
}

// BuildGraph constructs the delay-annotated marked graph of a
// desynchronized module from the shared control-network IR and the equiv
// token-marking model.
//
// Topology comes from the model's resolved wiring (so rewired fixtures
// are modelled as built); token counts come from the latch reset phases
// (a master resets transparent and ready to capture, so the place feeding
// it holds the schedule's initial token — a swapped reset phase drains
// the tokens off its channel cycles, which liveness then rejects); delays
// come from walking the actual request trees, acknowledge trees and
// matched delay chains in the netlist and pricing every traversed arc the
// way the simulator does.
func BuildGraph(mod *netlist.Module, cn *ctrlnet.Network, m *equiv.Model, opts Options) *Graph {
	b := &builder{
		g: &Graph{
			Design:      mod.Name,
			masterOf:    map[int]int{},
			slaveOf:     map[int]int{},
			wiringPreds: map[int]map[int]bool{},
			ddgPreds:    map[int][]int{},
		},
		cn:   cn,
		sigs: m.StaticSignals(),

		corner: opts.corner(),
		stop:   map[*netlist.Net]bool{},
		memo:   make(map[pathKey]float64, 512),
		pins:   map[*netlist.CellDef]*pinSets{},
	}
	g := b.g
	g.sigs = b.sigs

	// Transitions: master and slave per region, then environment channels
	// in model signal order (deterministic: extraction order is fixed).
	for _, r := range cn.Regions {
		g.masterOf[r] = g.AddTransition(fmt.Sprintf("M%d", r), TransMaster, r)
		g.slaveOf[r] = g.AddTransition(fmt.Sprintf("S%d", r), TransSlave, r)
		g.wiringPreds[r] = map[int]bool{}
		g.ddgPreds[r] = append([]int(nil), cn.Preds[r]...)
	}
	envOf := map[int]int{} // model signal index -> transition id
	for i, s := range b.sigs {
		switch s.Kind {
		case equiv.SigEnvSrc:
			envOf[i] = g.AddTransition("E:"+s.Name, TransEnvSrc, -1)
		case equiv.SigEnvSink:
			envOf[i] = g.AddTransition("E:"+s.Name, TransEnvSink, -1)
		}
	}

	// Path walks stop at controller gate outputs and environment ports.
	for _, r := range cn.Regions {
		c := cn.Controllers[r]
		for _, gs := range []ctrlnet.Gates{c.Master, c.Slave} {
			for _, in := range []*netlist.Inst{gs.G, gs.RO, gs.B, gs.AI} {
				if n := gateOut(in); n != nil {
					b.stop[n] = true
				}
			}
		}
	}

	for _, v := range cn.Regions {
		b.buildRegion(v, m, envOf)
	}
	return g
}

// gateOut returns a controller gate's output net (Q for the gC gates, Z
// for the acknowledge AND).
func gateOut(in *netlist.Inst) *netlist.Net {
	if in == nil {
		return nil
	}
	if n := in.Conn("Q"); n != nil {
		return n
	}
	return in.Conn("Z")
}

// dedupLinks drops duplicate generation links while preserving order.
func dedupLinks(links []equiv.GenLink) []equiv.GenLink {
	seen := map[equiv.GenLink]bool{}
	out := links[:0:0]
	for _, l := range links {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// buildRegion adds region v's places: its request channels (from the
// resolved wiring), its acknowledge channels (from its slave's consumer
// wiring), its internal master→slave and slave→master places, and the
// environment cycles it borders.
func (b *builder) buildRegion(v int, m *equiv.Model, envOf map[int]int) {
	g, cn := b.g, b.cn
	c := cn.Controllers[v]
	ch := cn.Channels[v]
	if c == nil {
		c = &ctrlnet.Controller{Region: v}
	}
	if ch == nil {
		ch = &ctrlnet.Channel{}
	}
	gates := m.StaticGates(v)
	mInit := gates.MG >= 0 && b.sigs[gates.MG].Init
	sInit := gates.SG >= 0 && b.sigs[gates.SG].Init
	tokIf := func(init bool) int {
		if init {
			return 1
		}
		return 0
	}

	// Reset-phase audit: the flow resets masters transparent and slaves
	// opaque; an inversion leaves a latch pair holding the wrong phase at
	// reset, which also drains its channel cycles of tokens below.
	if gates.MG >= 0 && !mInit {
		b.addFinding(lint.Error, b.sigs[gates.MG].Name,
			fmt.Sprintf("region %d master latch-enable resets opaque (want transparent): reset phase inverted", v))
	}
	if gates.SG >= 0 && sInit {
		b.addFinding(lint.Error, b.sigs[gates.SG].Name,
			fmt.Sprintf("region %d slave latch-enable resets transparent (want opaque): reset phase inverted", v))
	}

	// Request places into the master: one per generation source.
	capture := b.arc(c.Master.G, "B", false) // ri-triggered capture
	reqRise := b.path(ch.MRI, true)
	reqFall := b.path(ch.MRI, false)
	for _, l := range dedupLinks(m.StaticPreds(v)) {
		switch l.Kind {
		case equiv.LinkSlave, equiv.LinkMaster:
			u := l.Region
			if _, ok := g.slaveOf[u]; !ok { // region not in the IR
				continue
			}
			g.wiringPreds[v][u] = true
			src, ro := g.slaveOf[u], cn.Controllers[u].Slave.RO
			name := fmt.Sprintf("req G%d>G%d", u, v)
			if l.Kind == equiv.LinkMaster {
				src, ro = g.masterOf[u], cn.Controllers[u].Master.RO
				name = fmt.Sprintf("req G%d.m>G%d", u, v)
			}
			d := b.arc(ro, "A", true) + reqRise + capture
			g.AddPlace(Place{Src: src, Dst: g.masterOf[v], Tokens: tokIf(mInit), Delay: d, Name: name, Channel: fmt.Sprintf("G%d>G%d", u, v)})
		case equiv.LinkEnv:
			e, ok := envOf[l.Sig]
			if !ok {
				continue
			}
			// E→M: the request edge through the boundary delay chain.
			g.AddPlace(Place{Src: e, Dst: g.masterOf[v], Tokens: 0, Delay: reqRise + capture, Name: fmt.Sprintf("env-req>G%d", v), Channel: fmt.Sprintf("env>G%d", v)})
			// M→E: acknowledge out plus the channel's return-to-zero (an
			// eager environment answers instantly; the chain's fast fall
			// and the acknowledge gate dominate).
			d := b.arc(c.Master.AI, "B", true) + reqFall + b.arc(c.Master.AI, "A", false)
			g.AddPlace(Place{Src: g.masterOf[v], Dst: e, Tokens: 1, Delay: d, Name: fmt.Sprintf("G%d>env-req", v)})
		}
	}

	// Acknowledge places out of the slave: one per consumer. The place
	// covers the acknowledge rise (reopen) and the return-to-zero the
	// slave's next capture must wait out.
	aoNet := (*netlist.Net)(nil)
	if c.Slave.G != nil {
		aoNet = c.Slave.G.Conn("A")
	}
	cons := dedupLinks(m.StaticConsumers(v))
	rtz := b.slaveRTZ(v, cons, aoNet)
	for _, l := range cons {
		switch l.Kind {
		case equiv.LinkCons:
			w := l.Region
			cw := cn.Controllers[w]
			if cw == nil {
				continue
			}
			d := b.arc(cw.Master.AI, "B", true) + b.path(aoNet, true) +
				b.arc(c.Slave.G, "A", true) + rtz
			g.AddPlace(Place{Src: g.masterOf[w], Dst: g.slaveOf[v], Tokens: tokIf(sInit), Delay: d, Name: fmt.Sprintf("ack G%d>G%d", w, v)})
		case equiv.LinkEnvSink:
			e, ok := envOf[l.Sig]
			if !ok {
				continue
			}
			// S→E: request out to the environment consumer.
			g.AddPlace(Place{Src: g.slaveOf[v], Dst: e, Tokens: 1, Delay: b.arc(c.Slave.RO, "A", true) + b.path0(ch.SRO, true), Name: fmt.Sprintf("G%d>env-ack", v)})
			// E→S: the (eager) environment acknowledge reopens the slave.
			g.AddPlace(Place{Src: e, Dst: g.slaveOf[v], Tokens: 0, Delay: b.arc(c.Slave.G, "A", true) + rtz, Name: fmt.Sprintf("env-ack>G%d", v), Channel: fmt.Sprintf("G%d>env", v)})
		}
	}

	// Internal places: master→slave data hand-off through the matched
	// master→slave delay, and slave→master reopen plus the master-side
	// return-to-zero.
	msd := b.arc(c.Master.RO, "A", true) + b.path(ch.SRI, true) + b.arc(c.Slave.G, "B", false)
	g.AddPlace(Place{Src: g.masterOf[v], Dst: g.slaveOf[v], Tokens: tokIf(sInit), Delay: msd, Name: fmt.Sprintf("ms G%d", v)})
	mrtz := b.arc(c.Master.RO, "A", false) + b.path(ch.SRI, false) + b.arc(c.Slave.AI, "A", false)
	aoM := (*netlist.Net)(nil)
	if c.Master.G != nil {
		aoM = c.Master.G.Conn("A")
	}
	reopen := b.arc(c.Slave.AI, "B", true) + b.path(aoM, true) + b.arc(c.Master.G, "A", true)
	g.AddPlace(Place{Src: g.slaveOf[v], Dst: g.masterOf[v], Tokens: tokIf(mInit), Delay: reopen + mrtz, Name: fmt.Sprintf("cycle G%d", v)})
}

// slaveRTZ prices the return-to-zero phase region v's slave must wait out
// between reopening and its next capture: its request-out falls, ripples
// through every successor channel's tree and chain, the successors'
// acknowledges fall, and the acknowledge rendezvous clears.
func (b *builder) slaveRTZ(v int, cons []equiv.GenLink, aoNet *netlist.Net) float64 {
	c := b.cn.Controllers[v]
	worst := 0.0
	for _, l := range cons {
		if l.Kind != equiv.LinkCons {
			continue
		}
		cw := b.cn.Controllers[l.Region]
		chw := b.cn.Channels[l.Region]
		if cw == nil || chw == nil {
			continue
		}
		if d := b.path(chw.MRI, false) + b.arc(cw.Master.AI, "A", false); d > worst {
			worst = d
		}
	}
	return b.arc(c.Slave.RO, "A", false) + worst + b.path(aoNet, false) + b.arc(c.Slave.G, "A", false)
}

func (b *builder) addFinding(sev lint.Severity, net, msg string) {
	b.g.findings = append(b.g.findings, lint.Finding{
		Rule: RuleSafe, Severity: sev, Module: b.g.Design, Net: net, Msg: msg,
	})
}

// arc prices one controller gate's triggering arc at the analysis corner,
// scaled by the instance's delay factor the way the simulator does. A
// missing gate or arc contributes the worst arc into the output, or zero
// when there is nothing to price (the gate's absence is reported by the
// model extraction).
func (b *builder) arc(in *netlist.Inst, from string, rise bool) float64 {
	if in == nil || in.Cell == nil {
		return 0
	}
	out := "Q"
	if in.Conn("Q") == nil {
		out = "Z"
	}
	var d float64
	if a := in.Cell.Arc(from, out); a != nil {
		if rise {
			d = a.Rise.At(b.corner)
		} else {
			d = a.Fall.At(b.corner)
		}
	} else {
		for _, a := range in.Cell.Arcs {
			if a.To != out {
				continue
			}
			dd := a.Rise.At(b.corner)
			if !rise {
				dd = a.Fall.At(b.corner)
			}
			if dd > d {
				d = dd
			}
		}
	}
	return d * effFactor(in)
}

// effFactor mirrors sta.EffectiveFactor without importing the package: a
// zero delay factor means unset.
func effFactor(in *netlist.Inst) float64 {
	if in.DelayFactor == 0 {
		return 1
	}
	return in.DelayFactor
}

// path returns the worst-case propagation delay to net n from any
// controller gate output or environment port feeding it, walking drivers
// backwards through delay chains, rendezvous trees and buffers and
// pricing every traversed arc at the analysis corner.
//
// The leg-join rule follows the gates' monotone semantics. A rendezvous
// (C-element) output moves only when its last input has moved — maximum
// over legs, on both edges. An AND-family gate rises on its last rising
// input (maximum) but falls on its FIRST falling input (minimum): matched
// delay chains exploit exactly this, tying every stage's second input to
// the chain's source so a withdrawn request broadcasts through the chain
// in one gate delay instead of rippling down it. Pricing chain falls with
// a maximum would overstate every return-to-zero phase by the full chain
// latency and push the period bound far past what the circuit does.
func (b *builder) path(n *netlist.Net, rise bool) float64 {
	if n == nil {
		return 0
	}
	k := pathKey{n, rise}
	if d, ok := b.memo[k]; ok {
		if math.IsNaN(d) {
			// A combinational cycle outside the controller gates; lint's
			// NL-LOOP owns reporting it. Cut the walk.
			return 0
		}
		return d
	}
	if b.stop[n] {
		return 0
	}
	in := n.Driver.Inst
	if in == nil || in.Cell == nil {
		return 0 // environment port or unmodelled boundary
	}
	b.memo[k] = math.NaN()
	ps := b.pinsOf(in.Cell)
	outPin := ""
	for _, pin := range ps.outs {
		if in.Conn(pin) == n {
			outPin = pin
			break
		}
	}
	rendezvous := in.Cell.Kind == netlist.KindCElem || in.Cell.Kind == netlist.KindGC
	first := true
	d := 0.0
	for _, pin := range ps.ins {
		src := in.Conn(pin)
		if src == nil {
			continue
		}
		leg := b.path(src, rise) + b.arcFromPin(in, pin, outPin, rise)
		if first {
			d, first = leg, false
		} else if rise || rendezvous {
			d = max(d, leg)
		} else {
			d = min(d, leg)
		}
	}
	b.memo[k] = d
	return d
}

// path0 is path for nets that may be ports themselves (no driver walk).
func (b *builder) path0(n *netlist.Net, rise bool) float64 { return b.path(n, rise) }

// arcFromPin prices inst's from→out arc (falling back like the
// simulator's delayOf to the worst arc into the output).
func (b *builder) arcFromPin(in *netlist.Inst, from, out string, rise bool) float64 {
	if out == "" {
		return b.arc(in, from, rise)
	}
	if a := in.Cell.Arc(from, out); a != nil {
		d := a.Fall.At(b.corner)
		if rise {
			d = a.Rise.At(b.corner)
		}
		return d * effFactor(in)
	}
	var d float64
	for _, a := range in.Cell.Arcs {
		if a.To != out {
			continue
		}
		dd := a.Rise.At(b.corner)
		if !rise {
			dd = a.Fall.At(b.corner)
		}
		if dd > d {
			d = dd
		}
	}
	return d * effFactor(in)
}

// SortedRegions returns the region ids present in the graph, sorted.
func (g *Graph) SortedRegions() []int {
	out := make([]int, 0, len(g.masterOf))
	for r := range g.masterOf {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
