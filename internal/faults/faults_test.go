package faults_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"desync/internal/expt"
	"desync/internal/faults"
	"desync/internal/logic"
)

// The DLX flow is expensive to build; every test shares one desynchronized
// design and one campaign (campaign runs never mutate the module — delay
// faults travel as per-simulator factor snapshots).
var (
	once     sync.Once
	flow     *expt.DLXFlow
	campaign *faults.Campaign
	buildErr error
)

func dlxCampaign(t *testing.T) *faults.Campaign {
	t.Helper()
	once.Do(func() {
		flow, buildErr = expt.RunDLXFlow(expt.FlowConfig{})
		if buildErr != nil {
			return
		}
		campaign, buildErr = expt.NewDLXCampaign(context.Background(), flow, 10, 0)
	})
	if buildErr != nil {
		t.Fatalf("building DLX campaign: %v", buildErr)
	}
	return campaign
}

// TestGoldenRunClean is the baseline acceptance check: with every watchdog
// armed, the unfaulted desynchronized DLX produces zero diagnostics (this
// is asserted inside NewCampaign) and a live handshake network.
func TestGoldenRunClean(t *testing.T) {
	c := dlxCampaign(t)
	if len(c.Regions()) < 2 {
		t.Fatalf("expected a multi-region DLX, got regions %v", c.Regions())
	}
	if c.GoldenEvents() == 0 {
		t.Fatal("golden run processed no events")
	}
}

// TestDelayFaultsDetected injects under-margin delay faults (40x on the two
// most active datapath gates of every region) and requires every one to be
// caught.
func TestDelayFaultsDetected(t *testing.T) {
	c := dlxCampaign(t)
	list := c.DelayFaults(40, 2)
	if len(list) < len(c.Regions()) {
		t.Fatalf("enumerated only %d delay faults for %d regions", len(list), len(c.Regions()))
	}
	rep, err := c.Run(context.Background(), list)
	if err != nil {
		t.Fatal(err)
	}
	if d, n := rep.Detected(faults.ClassDelay); d != n {
		t.Errorf("delay faults: %d/%d detected\n%s", d, n, rep.Render())
	}
}

// TestControlStuckFaultsDetected pins each region's request, acknowledge
// and latch-enable nets to both rails; the handshake network must visibly
// stall or corrupt state for every one.
func TestControlStuckFaultsDetected(t *testing.T) {
	c := dlxCampaign(t)
	list := c.ControlStuckFaults()
	if len(list) < 4*len(c.Regions()) {
		t.Fatalf("enumerated only %d stuck faults for %d regions", len(list), len(c.Regions()))
	}
	rep, err := c.Run(context.Background(), list)
	if err != nil {
		t.Fatal(err)
	}
	if d, n := rep.Detected(faults.ClassStuckAt); d != n {
		t.Errorf("stuck-at faults: %d/%d detected\n%s", d, n, rep.Render())
	}
	// Stuck handshakes should mostly be caught as stalls, not only as data
	// corruption: check at least one liveness/watchdog detection exists.
	stall := 0
	for _, o := range rep.Outcomes {
		if o.By == faults.ByLiveness || o.By == faults.ByWatchdog {
			stall++
		}
	}
	if stall == 0 {
		t.Errorf("no stuck-at fault classified as a stall:\n%s", rep.Render())
	}
}

// TestGlitchFaultsClassified runs the pulse class; glitches may escape (a
// pulse can be absorbed), so this asserts classification, not detection.
func TestGlitchFaultsClassified(t *testing.T) {
	c := dlxCampaign(t)
	list := c.GlitchFaults(flow.Period*5, 0.3)
	if len(list) == 0 {
		t.Fatal("no glitch faults enumerated")
	}
	rep, err := c.Run(context.Background(), list[:4])
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if o.Detected && o.By == faults.NotDetected {
			t.Errorf("detected outcome without a mechanism: %+v", o)
		}
	}
	if s := rep.Render(); !strings.Contains(s, "glitch") {
		t.Errorf("report does not mention the glitch class:\n%s", s)
	}
}

// TestReportRendering exercises the aggregation arithmetic without any
// simulation.
func TestReportRendering(t *testing.T) {
	rep := &faults.Report{Outcomes: []faults.Outcome{
		{Fault: faults.Fault{Class: faults.ClassDelay, Inst: "u1", Factor: 40}, Detected: true, By: faults.ByFlowMismatch},
		{Fault: faults.Fault{Class: faults.ClassDelay, Inst: "u2", Factor: 40}},
		{Fault: faults.Fault{Class: faults.ClassStuckAt, Net: "G1_mri", Value: logic.H}, Detected: true, By: faults.ByWatchdog},
	}}
	if got := rep.DetectionRate(faults.ClassDelay); got != 0.5 {
		t.Errorf("delay rate = %v, want 0.5", got)
	}
	if got := rep.DetectionRate(""); got != 2.0/3.0 {
		t.Errorf("overall rate = %v, want 2/3", got)
	}
	if esc := rep.Escaped(); len(esc) != 1 || esc[0].Inst != "u2" {
		t.Errorf("escaped = %v", esc)
	}
	s := rep.Render()
	for _, want := range []string{"stuck-at", "ESCAPED: delay u2 x40", "flow-mismatch=1", "watchdog=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
