package sta

import (
	"context"
	"math"
	"testing"

	"desync/internal/netlist"
	"desync/internal/stdcells"
)

func hs() *netlist.Library { return stdcells.New(stdcells.HighSpeed) }

// invChain builds in -> INV^n -> out.
func invChain(lib *netlist.Library, n int) *netlist.Module {
	m := netlist.NewModule("chain")
	m.AddPort("in", netlist.In)
	m.AddPort("out", netlist.Out)
	prev := m.Net("in")
	for i := 0; i < n; i++ {
		net := m.Net("out")
		if i != n-1 {
			net = m.AddNet(nodeName(i))
		}
		g := m.AddInst(nodeName(i)+"_g", lib.MustCell("INVX1"))
		m.MustConnect(g, "A", prev)
		m.MustConnect(g, "Z", net)
		prev = net
	}
	return m
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestInverterChainDelay(t *testing.T) {
	lib := hs()
	m := invChain(lib, 4)
	g, err := Build(m, Options{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	r := g.Analyze()
	min, max, err := r.PortToPortDelay("out")
	if err != nil {
		t.Fatal(err)
	}
	arc := lib.MustCell("INVX1").Arcs[0]
	want := 4 * arc.Rise.At(netlist.Worst)
	if !approx(max, want, 1e-9) {
		t.Fatalf("max delay %.4f want %.4f", max, want)
	}
	if !approx(min, want, 1e-9) {
		t.Fatalf("min delay %.4f want %.4f", min, want)
	}
	// Best corner must be faster.
	gB, _ := Build(m, Options{Corner: netlist.Best})
	rB := gB.Analyze()
	_, maxB, _ := rB.PortToPortDelay("out")
	if maxB >= max {
		t.Fatalf("best corner %v not faster than worst %v", maxB, max)
	}
}

// The asymmetric delay element of Fig 2.9: chained ANDs all fed by the
// primary input. Rising edges ripple through the whole chain (slow rise);
// falling edges cut through the last gate (fast fall).
func TestAsymmetricDelayElementTiming(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("delem")
	m.AddPort("in", netlist.In)
	m.AddPort("out", netlist.Out)
	n := 8
	prev := m.Net("in")
	for i := 0; i < n; i++ {
		net := m.Net("out")
		if i != n-1 {
			net = m.AddNet(nodeName(i))
		}
		g := m.AddInst(nodeName(i)+"_g", lib.MustCell("AND2X1"))
		m.MustConnect(g, "A", prev)
		m.MustConnect(g, "B", m.Net("in"))
		m.MustConnect(g, "Z", net)
		prev = net
	}
	g, err := Build(m, Options{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	r := g.Analyze()
	id := g.PortID("out")
	riseMax := r.MaxRise[id]
	fallMin := r.MinFall[id]
	arc := lib.MustCell("AND2X1").Arcs[0]
	wantRise := float64(n) * arc.Rise.At(netlist.Worst)
	if !approx(riseMax, wantRise, 1e-9) {
		t.Fatalf("rise max %.4f want %.4f", riseMax, wantRise)
	}
	wantFallMin := arc.Fall.At(netlist.Worst)
	if !approx(fallMin, wantFallMin, 1e-9) {
		t.Fatalf("fall min %.4f want %.4f (fast fall through last AND)", fallMin, wantFallMin)
	}
	if riseMax < 5*fallMin {
		t.Fatalf("element not asymmetric: rise %.4f fall %.4f", riseMax, fallMin)
	}
}

// Flip-flops bound timing paths: arrival at a downstream FF's D counts only
// the combinational cloud, not paths through the FF.
func TestRegisterBoundedPaths(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("ck", netlist.In)
	m.AddPort("in", netlist.In)
	m.AddPort("out", netlist.Out)
	q1 := m.AddNet("q1")
	z := m.AddNet("z")
	f1 := m.AddInst("f1", lib.MustCell("DFFQX1"))
	m.MustConnect(f1, "D", m.Net("in"))
	m.MustConnect(f1, "CK", m.Net("ck"))
	m.MustConnect(f1, "Q", q1)
	m.MustConnect(f1, "QN", m.AddNet("nc1"))
	g1 := m.AddInst("g1", lib.MustCell("AND2X1"))
	m.MustConnect(g1, "A", q1)
	m.MustConnect(g1, "B", m.Net("in"))
	m.MustConnect(g1, "Z", z)
	f2 := m.AddInst("f2", lib.MustCell("DFFQX1"))
	m.MustConnect(f2, "D", z)
	m.MustConnect(f2, "CK", m.Net("ck"))
	m.MustConnect(f2, "Q", m.Net("out"))
	m.MustConnect(f2, "QN", m.AddNet("nc2"))

	g, err := Build(m, Options{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	r := g.Analyze()
	// Arrival at f2/D is one AND2 from q1 (a startpoint at 0).
	id := g.NodeID(m.Inst("f2"), "D")
	arc := lib.MustCell("AND2X1").Arcs[0]
	if !approx(r.MaxAt(id), arc.Rise.At(netlist.Worst), 1e-9) {
		t.Fatalf("arrival at f2/D = %.4f, want one AND delay", r.MaxAt(id))
	}
	// out (port) is fed by f2/Q, a startpoint: arrival 0.
	if r.MaxAt(g.PortID("out")) != 0 {
		t.Fatalf("arrival at out = %.4f, want 0", r.MaxAt(g.PortID("out")))
	}
}

func TestCombinationalLoopDetection(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("loop")
	a := m.AddNet("a")
	b := m.AddNet("b")
	i1 := m.AddInst("i1", lib.MustCell("INVX1"))
	m.MustConnect(i1, "A", a)
	m.MustConnect(i1, "Z", b)
	i2 := m.AddInst("i2", lib.MustCell("INVX1"))
	m.MustConnect(i2, "A", b)
	m.MustConnect(i2, "Z", a)

	if _, err := Build(m, Options{Corner: netlist.Worst}); err == nil {
		t.Fatal("expected loop error")
	}
	g, err := Build(m, Options{Corner: netlist.Worst, AutoBreakLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.AutoBroken) == 0 {
		t.Fatal("expected auto-broken arcs to be reported")
	}
	g.Analyze() // must not hang or panic
}

// §4.6.1: breaking a controller loop with explicit disabled arcs instead of
// arbitrary auto-breaking.
func TestDisabledArcBreaksLoop(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("cloop")
	a := m.AddNet("a")
	b := m.AddNet("b")
	rq := m.AddNet("rq")
	c1 := m.AddInst("c1", lib.MustCell("C2X1"))
	m.MustConnect(c1, "A", a)
	m.MustConnect(c1, "B", b)
	m.MustConnect(c1, "Q", rq)
	i1 := m.AddInst("i1", lib.MustCell("INVX1"))
	m.MustConnect(i1, "A", rq)
	m.MustConnect(i1, "Z", b)
	m.AddPort("a", netlist.In) // drive a externally
	// b -> c1 -> rq -> i1 -> b is a cycle.
	if _, err := Build(m, Options{Corner: netlist.Worst}); err == nil {
		t.Fatal("expected loop error")
	}
	disabled := map[ArcKey]bool{{Inst: "c1", From: "B", To: "Q"}: true}
	g, err := Build(m, Options{Corner: netlist.Worst, Disabled: disabled})
	if err != nil {
		t.Fatalf("disabled arc did not break loop: %v", err)
	}
	if len(g.AutoBroken) != 0 {
		t.Fatal("no auto-breaking should be needed")
	}
	// The A->Q arc must still be timed.
	r := g.Analyze()
	id := g.NodeID(c1, "Q")
	if math.IsInf(r.MaxAt(id), -1) {
		t.Fatal("C element output untimed after loop breaking")
	}
}

func TestRegionDelays(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("ck", netlist.In)
	m.AddPort("in", netlist.In)
	// Region 1: one AND cloud into f1; Region 2: three-AND cloud into f2.
	mkff := func(name string, d *netlist.Net, grp int) *netlist.Inst {
		f := m.AddInst(name, lib.MustCell("DFFQX1"))
		f.Group = grp
		m.MustConnect(f, "D", d)
		m.MustConnect(f, "CK", m.Net("ck"))
		m.MustConnect(f, "Q", m.AddNet(name+"_q"))
		m.MustConnect(f, "QN", m.AddNet(name+"_qn"))
		return f
	}
	z1 := m.AddNet("z1")
	g1 := m.AddInst("g1", lib.MustCell("AND2X1"))
	g1.Group = 1
	m.MustConnect(g1, "A", m.Net("in"))
	m.MustConnect(g1, "B", m.Net("in"))
	m.MustConnect(g1, "Z", z1)
	f1 := mkff("f1", z1, 1)

	prev := m.Net(f1.Name + "_q")
	for i := 0; i < 3; i++ {
		z := m.AddNet(nodeName(20 + i))
		g := m.AddInst(nodeName(20+i)+"_g", lib.MustCell("AND2X1"))
		g.Group = 2
		m.MustConnect(g, "A", prev)
		m.MustConnect(g, "B", m.Net("in"))
		m.MustConnect(g, "Z", z)
		prev = z
	}
	mkff("f2", prev, 2)

	rds, err := RegionDelays(context.Background(), m, netlist.Worst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rds) != 2 {
		t.Fatalf("want 2 regions, got %d", len(rds))
	}
	arc := lib.MustCell("AND2X1").Arcs[0].Rise.At(netlist.Worst)
	if !approx(rds[1].CombMax, arc, 1e-9) {
		t.Fatalf("region 1 comb %.4f want %.4f", rds[1].CombMax, arc)
	}
	if !approx(rds[2].CombMax, 3*arc, 1e-9) {
		t.Fatalf("region 2 comb %.4f want %.4f", rds[2].CombMax, 3*arc)
	}
	if rds[2].Budget() <= rds[2].CombMax {
		t.Fatal("budget must add clock-to-Q and setup")
	}
}

func TestCheckSetup(t *testing.T) {
	lib := hs()
	m := invChain(lib, 10)
	// Append a flip-flop capturing the chain output.
	f := m.AddInst("f", lib.MustCell("DFFQX1"))
	m.AddPort("ck", netlist.In)
	m.MustConnect(f, "D", m.Net("out"))
	m.MustConnect(f, "CK", m.Net("ck"))
	m.MustConnect(f, "Q", m.AddNet("q"))
	m.MustConnect(f, "QN", m.AddNet("qn"))

	// Generous period: no violations.
	v, err := CheckSetup(m, netlist.Worst, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Tiny period: violation at f/D.
	v, err = CheckSetup(m, netlist.Worst, 0.01, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 || v[0].Endpoint != "f/D" {
		t.Fatalf("expected violation at f/D, got %v", v)
	}
}

func TestCheckHold(t *testing.T) {
	lib := hs()
	// Direct FF->FF connection: the fastest path is just the net, so a
	// large skew shows a hold violation while zero skew is clean (the min
	// arrival is 0 at the FF D driven directly by another FF's Q, and hold
	// requirements are positive... that direct hop arrives at t=0 which is
	// below the hold time: the classic shift-register hold risk).
	m := netlist.NewModule("m")
	m.AddPort("ck", netlist.In)
	m.AddPort("in", netlist.In)
	q1 := m.AddNet("q1")
	f1 := m.AddInst("f1", lib.MustCell("DFFQX1"))
	m.MustConnect(f1, "D", m.Net("in"))
	m.MustConnect(f1, "CK", m.Net("ck"))
	m.MustConnect(f1, "Q", q1)
	m.MustConnect(f1, "QN", m.AddNet("n1"))
	f2 := m.AddInst("f2", lib.MustCell("DFFQX1"))
	m.MustConnect(f2, "D", q1)
	m.MustConnect(f2, "CK", m.Net("ck"))
	m.MustConnect(f2, "Q", m.AddNet("q2"))
	m.MustConnect(f2, "QN", m.AddNet("n2"))

	// The FF's own clock-to-Q (not modelled in the min arrival, which
	// starts at the Q pin) exceeds its hold time in this library, so with
	// zero skew the direct hop only violates if hold > 0 arrival. Check
	// both regimes explicitly.
	v0, err := CheckHold(m, netlist.Worst, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Arrival at f2/D is 0 (Q startpoint + zero wire), hold is positive:
	// flagged — the launch clock-to-Q margin is the designer's to claim
	// via negative skew.
	if len(v0) == 0 {
		t.Fatal("expected the direct register hop to be flagged at zero margin")
	}
	c2q := lib.MustCell("DFFQX1").Arc("CK", "Q").Rise.At(netlist.Worst)
	vc, err := CheckHold(m, netlist.Worst, -c2q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vc {
		if v.Endpoint == "f2/D" {
			t.Fatalf("clock-to-Q credit should clear the hop: %+v", v)
		}
	}
}

func TestCriticalPathTrace(t *testing.T) {
	lib := hs()
	m := invChain(lib, 5)
	g, err := Build(m, Options{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	r := g.Analyze()
	path := r.CriticalPath()
	if len(path) < 6 { // in + gate pins... at least input, 5 gates' pins collapse pairwise
		t.Fatalf("path too short: %d steps\n%s", len(path), FormatPath(path))
	}
	if path[0].Node != "in" {
		t.Fatalf("path should start at input port, starts at %s", path[0].Node)
	}
	if path[len(path)-1].Node != "out" {
		t.Fatalf("path should end at output port, ends at %s", path[len(path)-1].Node)
	}
	// Arrivals are non-decreasing.
	for i := 1; i < len(path); i++ {
		if path[i].Arrival+1e-9 < path[i-1].Arrival {
			t.Fatalf("arrivals decrease along path:\n%s", FormatPath(path))
		}
	}
}

func TestWireDelays(t *testing.T) {
	lib := hs()
	m := invChain(lib, 2)
	m.Net("n00").Wire = netlist.Delay{Best: 0.1, Worst: 0.3}
	gNo, _ := Build(m, Options{Corner: netlist.Worst})
	gYes, _ := Build(m, Options{Corner: netlist.Worst, UseWireDelays: true})
	_, maxNo, _ := gNo.Analyze().PortToPortDelay("out")
	_, maxYes, _ := gYes.Analyze().PortToPortDelay("out")
	if !approx(maxYes-maxNo, 0.3, 1e-9) {
		t.Fatalf("wire delay not applied: %.4f vs %.4f", maxYes, maxNo)
	}
}

func TestVariabilityFactor(t *testing.T) {
	lib := hs()
	m := invChain(lib, 1)
	m.Inst("n00_g").DelayFactor = 2.0
	g, _ := Build(m, Options{Corner: netlist.Worst})
	r := g.Analyze()
	_, max, _ := r.PortToPortDelay("out")
	arc := lib.MustCell("INVX1").Arcs[0]
	if !approx(max, 2*arc.Rise.At(netlist.Worst), 1e-9) {
		t.Fatalf("delay factor not applied: %.4f", max)
	}
	gNo, _ := Build(m, Options{Corner: netlist.Worst, NoVariability: true})
	_, maxNo, _ := gNo.Analyze().PortToPortDelay("out")
	if !approx(maxNo, arc.Rise.At(netlist.Worst), 1e-9) {
		t.Fatalf("NoVariability ignored: %.4f", maxNo)
	}
}

func TestLatchTransparency(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("d", netlist.In)
	m.AddPort("g", netlist.In)
	m.AddPort("z", netlist.Out)
	q := m.AddNet("q")
	la := m.AddInst("la", lib.MustCell("LATQX1"))
	m.MustConnect(la, "D", m.Net("d"))
	m.MustConnect(la, "G", m.Net("g"))
	m.MustConnect(la, "Q", q)
	inv := m.AddInst("inv", lib.MustCell("INVX1"))
	m.MustConnect(inv, "A", q)
	m.MustConnect(inv, "Z", m.Net("z"))

	// Opaque: z is reached from the latch Q startpoint only.
	gOp, _ := Build(m, Options{Corner: netlist.Worst})
	rOp := gOp.Analyze()
	invd := lib.MustCell("INVX1").Arcs[0].Rise.At(netlist.Worst)
	if !approx(rOp.MaxAt(gOp.PortID("z")), invd, 1e-9) {
		t.Fatalf("opaque: %.4f want %.4f", rOp.MaxAt(gOp.PortID("z")), invd)
	}
	// Transparent: d -> Q -> z path counts D->Q.
	gTr, _ := Build(m, Options{Corner: netlist.Worst, LatchTransparent: true})
	rTr := gTr.Analyze()
	if rTr.MaxAt(gTr.PortID("z")) <= invd {
		t.Fatal("transparent latch path not included")
	}
}

func approx(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
