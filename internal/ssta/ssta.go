// Package ssta is a first-order parameterized statistical static timing
// engine — the methodology the paper's introduction contrasts
// desynchronization with [2], and the verification its future-work section
// asks for: "SSTA can be used to verify how well the delay elements match
// the logic delay across the whole spectrum of operation conditions" (§6).
//
// Each cell delay is modelled in canonical first-order form
//
//	D = μ + g·Xg + l·Xl
//
// with one shared global variable Xg (inter-die: process/voltage/
// temperature moving every cell together) and an independent local variable
// Xl per instance (intra-die mismatch). Arrival times propagate as
// canonical forms: addition is exact, MAX uses Clark's moment-matching
// approximation with the correlation induced by the shared global term.
//
// The point of keeping the global term symbolic is the paper's core
// argument: a matched delay element and the logic it shadows share Xg, so
// the global variation cancels in their difference — coverage stays high
// across the whole spectrum — whereas an external clock does not track it.
package ssta

import (
	"fmt"
	"math"

	"desync/internal/netlist"
	"desync/internal/sta"
)

// Dist is a canonical first-order random delay: Mean + G·Xg + L·Xl with
// Xg, Xl independent standard normals (L aggregates this arrival's
// accumulated local variance).
type Dist struct {
	Mean float64
	G    float64 // sensitivity to the shared global variable
	L    float64 // RSS of local sensitivities
}

// Sigma is the total standard deviation.
func (d Dist) Sigma() float64 { return math.Hypot(d.G, d.L) }

// Quantile returns Mean + z·Sigma.
func (d Dist) Quantile(z float64) float64 { return d.Mean + z*d.Sigma() }

// Add sums two independent-local canonical forms (series path segments).
func (d Dist) Add(o Dist) Dist {
	return Dist{Mean: d.Mean + o.Mean, G: d.G + o.G, L: math.Hypot(d.L, o.L)}
}

// Sub returns the distribution of d − o, assuming the global term is
// shared (the desynchronization case) and locals independent.
func (d Dist) Sub(o Dist) Dist {
	return Dist{Mean: d.Mean - o.Mean, G: d.G - o.G, L: math.Hypot(d.L, o.L)}
}

// Max approximates max(d, o) by Clark's method, preserving the canonical
// form (the global sensitivity blends by tightness probability; the local
// term is refit to match Clark's total variance).
func Max(a, b Dist) Dist {
	s1, s2 := a.Sigma(), b.Sigma()
	cov := a.G * b.G // locals independent
	theta2 := s1*s1 + s2*s2 - 2*cov
	if theta2 <= 1e-18 {
		// Fully correlated and equal variance: max is just the larger mean.
		if a.Mean >= b.Mean {
			return a
		}
		return b
	}
	theta := math.Sqrt(theta2)
	alpha := (a.Mean - b.Mean) / theta
	t := cdf(alpha)
	p := pdf(alpha)
	mean := a.Mean*t + b.Mean*(1-t) + theta*p
	m2 := (a.Mean*a.Mean+s1*s1)*t + (b.Mean*b.Mean+s2*s2)*(1-t) + (a.Mean+b.Mean)*theta*p
	variance := m2 - mean*mean
	if variance < 0 {
		variance = 0
	}
	g := a.G*t + b.G*(1-t)
	l2 := variance - g*g
	if l2 < 0 {
		l2 = 0
	}
	return Dist{Mean: mean, G: g, L: math.Sqrt(l2)}
}

func pdf(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
func cdf(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// Model converts best-corner cell delays into canonical forms.
type Model struct {
	// GlobalMean scales best-corner delays to the population mean (the
	// mid-corner point: (1+spread)/2 for a spread of worst/best).
	GlobalMean float64
	// GlobalSigma is the standard deviation of the global scale.
	GlobalSigma float64
	// LocalSigma is the per-instance mismatch (fraction of the delay).
	LocalSigma float64
}

// DefaultModel matches internal/variability's population: global scale
// spanning [1, spread] as N((1+spread)/2, (spread-1)/6), 3% local mismatch.
func DefaultModel(spread float64) Model {
	return Model{
		GlobalMean:  (1 + spread) / 2,
		GlobalSigma: (spread - 1) / 6,
		LocalSigma:  0.03,
	}
}

// CellDelay converts one best-corner delay into a canonical form.
func (mo Model) CellDelay(d float64) Dist {
	return Dist{
		Mean: d * mo.GlobalMean,
		G:    d * mo.GlobalSigma,
		L:    d * mo.GlobalMean * mo.LocalSigma,
	}
}

// Result holds per-node arrival distributions.
type Result struct {
	G        *sta.Graph
	Arrivals []Dist
	reached  []bool
}

// Analyze builds the timing graph at the best corner and propagates
// canonical arrival forms from the startpoints.
func Analyze(m *netlist.Module, staOpts sta.Options, model Model) (*Result, error) {
	staOpts.Corner = netlist.Best
	staOpts.NoVariability = true // the model supplies variation
	g, err := sta.Build(m, staOpts)
	if err != nil {
		return nil, err
	}
	n := g.NodeCount()
	r := &Result{G: g, Arrivals: make([]Dist, n), reached: make([]bool, n)}
	for _, s := range g.StartNodes() {
		r.reached[s] = true
	}
	for _, v := range g.TopoOrder() {
		if !r.reached[v] {
			continue
		}
		av := r.Arrivals[v]
		g.OutEdges(v, func(e sta.EdgeInfo) {
			var d Dist
			if e.IsNet {
				// Net arcs carry no variation model pre-layout; wire delay
				// shares the global scale loosely — treat as deterministic.
				d = Dist{Mean: e.Delay}
			} else {
				d = model.CellDelay(e.Delay)
			}
			cand := av.Add(d)
			if !r.reached[e.To] {
				r.Arrivals[e.To] = cand
				r.reached[e.To] = true
			} else {
				r.Arrivals[e.To] = Max(r.Arrivals[e.To], cand)
			}
		})
	}
	return r, nil
}

// ArrivalAt returns the arrival distribution at an instance pin.
func (r *Result) ArrivalAt(in *netlist.Inst, pin string) (Dist, error) {
	id := r.G.NodeID(in, pin)
	if id < 0 || !r.reached[id] {
		return Dist{}, fmt.Errorf("ssta: no arrival at %s/%s", in.Name, pin)
	}
	return r.Arrivals[id], nil
}

// CoverageProbability returns P(cover ≥ path + guard): the probability a
// matched delay element covers the logic it shadows. sharedGlobal selects
// the desynchronization situation (both on the same die: the global term
// cancels in the difference); with it false the two vary independently —
// the external-reference situation the paper contrasts against.
func CoverageProbability(cover, path Dist, guard float64, sharedGlobal bool) float64 {
	var diff Dist
	if sharedGlobal {
		diff = cover.Sub(path)
	} else {
		diff = Dist{
			Mean: cover.Mean - path.Mean,
			G:    0,
			L:    math.Hypot(math.Hypot(cover.G, cover.L), math.Hypot(path.G, path.L)),
		}
	}
	sigma := diff.Sigma()
	if sigma < 1e-12 {
		if diff.Mean >= guard {
			return 1
		}
		return 0
	}
	return cdf((diff.Mean - guard) / sigma)
}
