package core

import (
	"context"
	"fmt"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/stdcells"
)

func hs() *netlist.Library { return stdcells.New(stdcells.HighSpeed) }

func TestCleanLogicRemovesBuffers(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	n1, n2 := m.AddNet("n1"), m.AddNet("n2")
	b1 := m.AddInst("b1", lib.MustCell("BUFX1"))
	m.MustConnect(b1, "A", m.Net("a"))
	m.MustConnect(b1, "Z", n1)
	b2 := m.AddInst("b2", lib.MustCell("BUFX2"))
	m.MustConnect(b2, "A", n1)
	m.MustConnect(b2, "Z", n2)
	g := m.AddInst("g", lib.MustCell("INVX1"))
	m.MustConnect(g, "A", n2)
	m.MustConnect(g, "Z", m.Net("z"))

	removed := CleanLogic(m)
	if removed != 2 {
		t.Fatalf("removed %d cells, want 2", removed)
	}
	if g.Conn("A") != m.Net("a") {
		t.Fatal("sink not rewired to source")
	}
	if errs := m.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs)
	}
}

func TestCleanLogicCollapsesInverterPairs(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	n1, n2 := m.AddNet("n1"), m.AddNet("n2")
	i1 := m.AddInst("i1", lib.MustCell("INVX1"))
	m.MustConnect(i1, "A", m.Net("a"))
	m.MustConnect(i1, "Z", n1)
	i2 := m.AddInst("i2", lib.MustCell("INVX1"))
	m.MustConnect(i2, "A", n1)
	m.MustConnect(i2, "Z", n2)
	g := m.AddInst("g", lib.MustCell("AND2X1"))
	m.MustConnect(g, "A", n2)
	m.MustConnect(g, "B", m.Net("a"))
	m.MustConnect(g, "Z", m.Net("z"))

	removed := CleanLogic(m)
	if removed != 2 {
		t.Fatalf("removed %d cells, want 2", removed)
	}
	if g.Conn("A") != m.Net("a") {
		t.Fatal("pair not collapsed onto source")
	}
}

func TestCleanLogicKeepsLoneInverter(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	g := m.AddInst("g", lib.MustCell("INVX1"))
	m.MustConnect(g, "A", m.Net("a"))
	m.MustConnect(g, "Z", m.Net("z"))
	if removed := CleanLogic(m); removed != 0 {
		t.Fatalf("lone inverter removed (%d)", removed)
	}
}

// addFF wires a DFFRQX1 with reset and returns it.
func addFF(m *netlist.Module, lib *netlist.Library, name string, d *netlist.Net, grpHint int) *netlist.Inst {
	ff := m.AddInst(name, lib.MustCell("DFFRQX1"))
	m.MustConnect(ff, "D", d)
	m.MustConnect(ff, "CK", m.EnsureNet("clk"))
	m.MustConnect(ff, "RN", m.EnsureNet("rstn"))
	m.MustConnect(ff, "Q", m.AddNet(name+"_q"))
	_ = grpHint
	return ff
}

// Fig 3.3 shape: two independent clouds with their registers, plus an
// input-registering flip-flop, plus an FF->FF history chain.
func TestAutoGroupBasicShapes(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("clk", netlist.In)
	m.AddPort("rstn", netlist.In)
	m.AddPort("in1", netlist.In)
	m.AddPort("in2", netlist.In)

	// Input-registering FF (step 3 -> group 0).
	fin := addFF(m, lib, "fin", m.Net("in1"), 0)

	// Cloud 1: AND(in2, fin_q) -> f1.
	z1 := m.AddNet("z1")
	g1 := m.AddInst("g1", lib.MustCell("AND2X1"))
	m.MustConnect(g1, "A", m.Net("in2"))
	m.MustConnect(g1, "B", m.Net("fin_q"))
	m.MustConnect(g1, "Z", z1)
	f1 := addFF(m, lib, "f1", z1, 1)

	// Cloud 2: INV(f1_q) -> f2.
	z2 := m.AddNet("z2")
	g2 := m.AddInst("g2", lib.MustCell("INVX1"))
	m.MustConnect(g2, "A", m.Net("f1_q"))
	m.MustConnect(g2, "Z", z2)
	f2 := addFF(m, lib, "f2", z2, 2)

	// History chain: f2 -> f3 directly (step 2 joins f3 to f2's group).
	f3 := addFF(m, lib, "f3", m.Net("f2_q"), 2)
	_ = f3

	res := AutoGroup(m)
	if res.Groups != 2 {
		t.Fatalf("groups = %d, want 2", res.Groups)
	}
	if fin.Group != 0 {
		t.Fatalf("input FF group = %d, want 0", fin.Group)
	}
	if f1.Group == f2.Group {
		t.Fatal("independent clouds merged")
	}
	if g1.Group != f1.Group || g2.Group != f2.Group {
		t.Fatal("clouds separated from their registers")
	}
	if m.Inst("f3").Group != f2.Group {
		t.Fatal("FF->FF chain not joined to driver's group")
	}
}

// Fig 3.6: disconnected gates driving bits of one bus merge via the
// by-name heuristic.
func TestAutoGroupBusHeuristic(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("clk", netlist.In)
	m.AddPort("rstn", netlist.In)
	m.AddPort("a", netlist.In)
	m.AddPort("b", netlist.In)
	for i := 0; i < 2; i++ {
		z := m.AddNet(fmt.Sprintf("bus[%d]", i))
		g := m.AddInst(fmt.Sprintf("g%d", i), lib.MustCell("INVX1"))
		src := m.Net("a")
		if i == 1 {
			src = m.Net("b")
		}
		m.MustConnect(g, "A", src)
		m.MustConnect(g, "Z", z)
		addFF(m, lib, fmt.Sprintf("f%d", i), z, 0)
	}
	res := AutoGroup(m)
	if res.Groups != 1 {
		t.Fatalf("bus bits split into %d groups, want 1", res.Groups)
	}
	// Control: without bus naming the same structure splits.
	m2 := netlist.NewModule("m2")
	m2.AddPort("clk", netlist.In)
	m2.AddPort("rstn", netlist.In)
	m2.AddPort("a", netlist.In)
	m2.AddPort("b", netlist.In)
	for i := 0; i < 2; i++ {
		z := m2.AddNet(fmt.Sprintf("bus_%d", i))
		g := m2.AddInst(fmt.Sprintf("g%d", i), lib.MustCell("INVX1"))
		src := m2.Net("a")
		if i == 1 {
			src = m2.Net("b")
		}
		m2.MustConnect(g, "A", src)
		m2.MustConnect(g, "Z", z)
		addFF(m2, lib, fmt.Sprintf("f%d", i), z, 0)
	}
	if res2 := AutoGroup(m2); res2.Groups != 2 {
		t.Fatalf("collapsed bus names grouped into %d, want 2", res2.Groups)
	}
}

// §3.2.2 "False Paths": a global signal wired into every cloud would merge
// all regions unless marked.
func TestAutoGroupFalsePaths(t *testing.T) {
	lib := hs()
	build := func() *netlist.Module {
		m := netlist.NewModule("m")
		m.AddPort("clk", netlist.In)
		m.AddPort("rstn", netlist.In)
		m.AddPort("mode", netlist.In)
		// A shared driver cell on the mode signal.
		shared := m.AddNet("modeb")
		sb := m.AddInst("sb", lib.MustCell("INVX1"))
		m.MustConnect(sb, "A", m.Net("mode"))
		m.MustConnect(sb, "Z", shared)
		for i := 0; i < 2; i++ {
			z := m.AddNet(fmt.Sprintf("z%d", i))
			g := m.AddInst(fmt.Sprintf("g%d", i), lib.MustCell("AND2X1"))
			m.MustConnect(g, "A", m.EnsureNet(fmt.Sprintf("f%d_q", i)))
			m.MustConnect(g, "B", shared)
			m.MustConnect(g, "Z", z)
			ff := m.AddInst(fmt.Sprintf("f%d", i), lib.MustCell("DFFRQX1"))
			m.MustConnect(ff, "D", z)
			m.MustConnect(ff, "CK", m.Net("clk"))
			m.MustConnect(ff, "RN", m.Net("rstn"))
			m.MustConnect(ff, "Q", m.Net(fmt.Sprintf("f%d_q", i)))
		}
		return m
	}
	m := build()
	if res := AutoGroup(m); res.Groups != 1 {
		t.Fatalf("without marking: %d groups, want 1 (merged)", res.Groups)
	}
	m = build()
	if missing := MarkFalsePaths(m, []string{"modeb"}); len(missing) != 0 {
		t.Fatalf("missing: %v", missing)
	}
	if res := AutoGroup(m); res.Groups != 2 {
		t.Fatalf("with false path marked: %d groups, want 2", res.Groups)
	}
	if missing := MarkFalsePaths(m, []string{"nope"}); len(missing) != 1 {
		t.Fatal("unknown net not reported")
	}
}

func TestSubstituteFlipFlopsStructure(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	m.AddPort("clk", netlist.In)
	m.AddPort("rstn", netlist.In)
	m.AddPort("d", netlist.In)
	m.AddPort("si", netlist.In)
	m.AddPort("se", netlist.In)
	m.AddPort("q", netlist.Out)

	ff := m.AddInst("f_plain", lib.MustCell("DFFQX1"))
	m.MustConnect(ff, "D", m.Net("d"))
	m.MustConnect(ff, "CK", m.Net("clk"))
	m.MustConnect(ff, "Q", m.Net("q"))
	m.MustConnect(ff, "QN", m.AddNet("qn_unused"))
	ff.Group = 1

	sc := m.AddInst("f_scan", lib.MustCell("SDFFRQX1"))
	m.MustConnect(sc, "D", m.Net("d"))
	m.MustConnect(sc, "SI", m.Net("si"))
	m.MustConnect(sc, "SE", m.Net("se"))
	m.MustConnect(sc, "CK", m.Net("clk"))
	m.MustConnect(sc, "RN", m.Net("rstn"))
	m.MustConnect(sc, "Q", m.AddNet("q2"))
	sc.Group = 1

	d := &netlist.Design{Name: "m", Top: m, Lib: lib, Modules: map[string]*netlist.Module{"m": m}}
	res, err := SubstituteFlipFlops(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.FFs != 2 {
		t.Fatalf("substituted %d FFs, want 2", res.FFs)
	}
	if m.Inst("f_plain") != nil {
		t.Fatal("flip-flop instance still present")
	}
	if m.Inst("f_plain/ml") == nil || m.Inst("f_plain/sl") == nil {
		t.Fatal("latch pair missing")
	}
	if m.Inst("f_plain/ml").Cell.Name != "LATQX1" {
		t.Fatal("plain FF should use the plain latch")
	}
	if m.Inst("f_scan/ml").Cell.Name != "LATRQX1" {
		t.Fatal("async-reset FF should use the reset latch")
	}
	if m.Inst("f_scan/scanmux") == nil {
		t.Fatal("scan multiplexer missing (Fig 3.1a)")
	}
	if _, ok := res.Enables[1]; !ok {
		t.Fatal("enable nets not created")
	}
	if m.Net("clk") != nil || m.Port("clk") != nil {
		t.Fatal("clock network not removed")
	}
	// The slave drives the original Q net.
	if m.Net("q").Driver.Inst != m.Inst("f_plain/sl") {
		t.Fatal("slave does not drive the original output")
	}
	// Latch pairs and helper gates are tagged for area accounting.
	for _, name := range []string{"f_plain/ml", "f_scan/scanmux"} {
		if m.Inst(name).Origin != "ffsub" {
			t.Fatalf("%s not tagged ffsub", name)
		}
	}
}

// buildPipelineRing makes a 3-stage 4-bit ring: A = inc(C), B = ~A, C = B
// with per-stage clouds and bused net names, flip-flops with async reset.
func buildPipelineRing(lib *netlist.Library) *netlist.Design {
	d := netlist.NewDesign("ring3", lib)
	m := d.Top
	m.AddPort("clk", netlist.In)
	m.AddPort("rstn", netlist.In)
	m.AddPort("out[0]", netlist.Out)
	m.AddPort("out[1]", netlist.Out)
	m.AddPort("out[2]", netlist.Out)
	m.AddPort("out[3]", netlist.Out)

	q := func(stage string, i int) *netlist.Net { return m.EnsureNet(fmt.Sprintf("%s_q[%d]", stage, i)) }
	mkFF := func(stage string, i int, dnet *netlist.Net) {
		ff := m.AddInst(fmt.Sprintf("%s_r[%d]", stage, i), lib.MustCell("DFFRQX1"))
		m.MustConnect(ff, "D", dnet)
		m.MustConnect(ff, "CK", m.Net("clk"))
		m.MustConnect(ff, "RN", m.Net("rstn"))
		m.MustConnect(ff, "Q", q(stage, i))
	}

	// Stage A cloud: increment C's output. s0=!c0; k1=c0; s1=c1^k1;
	// k2=c1&k1; s2=c2^k2; k3=c2&k2; s3=c3^k3.
	ad := func(i int) *netlist.Net { return m.EnsureNet(fmt.Sprintf("ad[%d]", i)) }
	inv := m.AddInst("a_inc0", lib.MustCell("INVX1"))
	m.MustConnect(inv, "A", q("c", 0))
	m.MustConnect(inv, "Z", ad(0))
	carry := q("c", 0)
	for i := 1; i < 4; i++ {
		x := m.AddInst(fmt.Sprintf("a_incx%d", i), lib.MustCell("XOR2X1"))
		m.MustConnect(x, "A", q("c", i))
		m.MustConnect(x, "B", carry)
		m.MustConnect(x, "Z", ad(i))
		if i < 3 {
			nc := m.AddNet(fmt.Sprintf("ak[%d]", i))
			a := m.AddInst(fmt.Sprintf("a_inca%d", i), lib.MustCell("AND2X1"))
			m.MustConnect(a, "A", q("c", i))
			m.MustConnect(a, "B", carry)
			m.MustConnect(a, "Z", nc)
			carry = nc
		}
	}
	for i := 0; i < 4; i++ {
		mkFF("a", i, ad(i))
	}
	// Stage B cloud: bitwise NOT of A (independent INVs joined by the bus
	// heuristic).
	for i := 0; i < 4; i++ {
		bd := m.AddNet(fmt.Sprintf("bd[%d]", i))
		g := m.AddInst(fmt.Sprintf("b_inv%d", i), lib.MustCell("INVX1"))
		m.MustConnect(g, "A", q("a", i))
		m.MustConnect(g, "Z", bd)
		mkFF("b", i, bd)
	}
	// Stage C cloud: XOR adjacent bits of B.
	for i := 0; i < 4; i++ {
		cd := m.AddNet(fmt.Sprintf("cd[%d]", i))
		g := m.AddInst(fmt.Sprintf("c_x%d", i), lib.MustCell("XOR2X1"))
		m.MustConnect(g, "A", q("b", i))
		m.MustConnect(g, "B", q("b", (i+1)%4))
		m.MustConnect(g, "Z", cd)
		mkFF("c", i, cd)
	}
	// Observe stage C.
	for i := 0; i < 4; i++ {
		b := m.AddInst(fmt.Sprintf("obuf%d", i), lib.MustCell("BUFX1"))
		m.MustConnect(b, "A", q("c", i))
		m.MustConnect(b, "Z", m.Net(fmt.Sprintf("out[%d]", i)))
	}
	return d
}

func TestBuildDDGPipelineRing(t *testing.T) {
	lib := hs()
	d := buildPipelineRing(lib)
	CleanLogic(d.Top)
	res := AutoGroup(d.Top)
	if res.Groups != 3 {
		t.Fatalf("groups = %d, want 3 (one per stage)", res.Groups)
	}
	if _, err := SubstituteFlipFlops(d); err != nil {
		t.Fatal(err)
	}
	ddg := BuildDDG(d.Top)
	if len(ddg.Nodes) != 3 {
		t.Fatalf("DDG nodes = %v, want 3", ddg.Nodes)
	}
	// Ring: each node has exactly one pred and one succ, no self edges.
	for _, n := range ddg.Nodes {
		if len(ddg.Succs[n]) != 1 || len(ddg.Preds[n]) != 1 {
			t.Fatalf("node %d: succs=%v preds=%v, want ring", n, ddg.Succs[n], ddg.Preds[n])
		}
		if ddg.Succs[n][0] == n {
			t.Fatalf("unexpected self edge on %d", n)
		}
	}
}

// The headline property (§2.1): the desynchronized pipeline produces, at
// every sequential element, exactly the data sequence of its synchronous
// counterpart.
func TestDesynchronizeFlowEquivalence(t *testing.T) {
	lib := hs()

	// Synchronous reference run.
	dsync := buildPipelineRing(lib)
	ssim, err := sim.New(dsync.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	period := 3.0
	ssim.Drive("rstn", logic.L, 0)
	ssim.Drive("rstn", logic.H, period*1.2)
	ssim.Clock("clk", period, 0, period*14)
	if err := ssim.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}

	// Desynchronized run.
	ddes := buildPipelineRing(lib)
	res, err := Desynchronize(context.Background(), ddes, Options{Period: period})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grouping.Groups != 3 {
		t.Fatalf("groups = %d, want 3", res.Grouping.Groups)
	}
	dsim, err := sim.New(ddes.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	dsim.Drive("rstn", logic.L, 0)
	dsim.Drive("rst_desync", logic.H, 0)
	dsim.Drive("rstn", logic.H, 1)
	dsim.Drive("rst_desync", logic.L, 2)
	if err := dsim.Run(300); err != nil {
		t.Fatal(err)
	}

	// Compare capture sequences of every flip-flop vs its slave latch.
	compared := 0
	for name, want := range ssim.Captures {
		got := dsim.Captures[name+"/sl"]
		n := len(want)
		if len(got) < 6 {
			t.Fatalf("%s: desynchronized version captured only %d values (deadlock?)", name, len(got))
		}
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k] != want[k] {
				t.Fatalf("%s capture %d: desync %v, sync %v — flow equivalence broken\nsync:   %v\ndesync: %v",
					name, k, got[k], want[k], want[:n], got[:n])
			}
		}
		compared++
	}
	if compared != 12 {
		t.Fatalf("compared %d registers, want 12", compared)
	}
}

func TestDesynchronizedNetlistExports(t *testing.T) {
	lib := hs()
	d := buildPipelineRing(lib)
	res, err := Desynchronize(context.Background(), d, Options{Period: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Constraints.Disabled) == 0 || len(res.Constraints.SizeOnly) == 0 {
		t.Fatal("constraints missing")
	}
	if len(res.Constraints.Clocks) != 2 {
		t.Fatalf("want ClkM/ClkS, got %d clocks", len(res.Constraints.Clocks))
	}
	out := res.Constraints.Write()
	if out == "" {
		t.Fatal("empty SDC")
	}
	for g, lv := range res.DelayLevels {
		if lv < 1 {
			t.Fatalf("region %d: delay levels %d", g, lv)
		}
	}
}

func TestSimplifyNames(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	n := m.AddNet("u1/weird.name[3]")
	_ = n
	m.AddNet("ok_name")
	if renamed := SimplifyNames(m); renamed != 1 {
		t.Fatalf("renamed %d, want 1", renamed)
	}
	if m.Net("u1_weird_name[3]") == nil {
		t.Fatal("simplified name missing; bus suffix must be preserved")
	}
	_ = lib
}
