package faults

// Scenario runs: one campaign fault evaluated at an arbitrary operating
// point (inter-die corner position, per-instance intra-die factors, delay
// jitter), against the same nominal golden reference. Flow equivalence is
// what makes that sound: a correct desynchronized design produces the same
// *sequence* of captured values under any delay assignment (§2.1), so the
// capture-prefix comparison stays valid when the operating point moves —
// only the time axis stretches, and every time-valued knob of the run
// (horizon, quiescence gap, X-capture threshold, glitch placement) scales
// with it.

import (
	"context"
	"fmt"

	"desync/internal/sim"
)

// DeriveSeed mixes a scenario or fault index into a root seed via the
// SplitMix64 finalizer, so every index gets a statistically independent
// stream and any single scenario is reproducible standalone from
// (root seed, index) — no sweep state, no injection order. Mixing the index
// matters: feeding the root seed alone into every fault's randomization
// would give all of them the same stimulus stream.
func DeriveSeed(root, index int64) int64 {
	z := uint64(root) + 0x9E3779B97F4A7C15*uint64(index+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Scenario is one (operating point, fault) cell of a sweep.
type Scenario struct {
	Fault Fault
	// Index identifies the scenario inside its sweep; it is mixed into the
	// campaign seed (DeriveSeed) for this run's delay jitter, so a failed
	// scenario replays from (Config.Seed, Index) alone.
	Index int64
	// Scale is the inter-die position: a global delay multiplier applied on
	// top of the campaign's nominal corner (1 or 0 = nominal). The horizon,
	// quiescence gap, X-guard threshold and glitch times scale with it.
	Scale float64
	// DelayFactors overlays per-instance intra-die factors (a Monte Carlo
	// chip draw). A delay fault multiplies into its instance's entry rather
	// than replacing it.
	DelayFactors map[string]float64
	// Interrupt, when non-nil, is polled inside the simulator run
	// (sim.Config.Interrupt): the hook for per-scenario wall-clock deadlines
	// and context cancellation.
	Interrupt func() error
}

// RunScenario injects the scenario's fault at its operating point and
// classifies the outcome against the campaign's golden run. Like RunFault
// it never mutates the module, so concurrent scenarios are safe; unlike
// RunFault it also measures the run's effective handshake period
// (normalized back to the nominal corner) for streaming aggregation.
func (c *Campaign) RunScenario(ctx context.Context, sc Scenario) (Outcome, error) {
	out := Outcome{Fault: sc.Fault}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	scale := sc.Scale
	if scale == 0 {
		scale = 1
	}

	// Per-instance factors: chip draw first, then jitter, then the delay
	// fault compounding into whatever base its instance already carries.
	factors := make(map[string]float64, len(sc.DelayFactors)+1)
	for name, f := range sc.DelayFactors {
		factors[name] = f
	}
	if c.cfg.Jitter > 0 {
		jit := sim.DelayFactorMap(c.M, DeriveSeed(c.cfg.Seed, sc.Index), c.cfg.Jitter, nil)
		for name, j := range jit {
			if base, ok := factors[name]; ok {
				// DelayFactorMap folded the instance's nominal factor into
				// j; divide it back out so the chip draw composes with the
				// pure jitter term instead of double-counting the nominal.
				factors[name] = base * j / instNominal(c, name)
			} else {
				factors[name] = j
			}
		}
	}
	f := sc.Fault
	if f.Class == ClassDelay {
		in := c.M.Inst(f.Inst)
		if in == nil {
			return out, fmt.Errorf("faults: no instance %q", f.Inst)
		}
		base, ok := factors[f.Inst]
		if !ok {
			base = in.DelayFactor
			if base == 0 {
				base = 1
			}
		}
		factors[f.Inst] = base * f.Factor
	}
	if len(factors) == 0 {
		factors = nil
	}

	budget := int64(float64(c.goldenEvents)*c.cfg.MaxEventsFactor) + eventBudgetHeadroom
	s, err := c.newScenarioSim(budget, c.lastGoldenX*scale, factors, scale, sc.Interrupt)
	if err != nil {
		return out, err
	}

	switch f.Class {
	case ClassDelay:
		// Injected via the factor map above.
	case ClassStuckAt:
		if err := s.Force(f.Net, f.Value, f.At*scale); err != nil {
			return out, err
		}
	case ClassGlitch:
		if err := s.Force(f.Net, f.Value, f.At*scale); err != nil {
			return out, err
		}
		if err := s.Release(f.Net, (f.At+f.Width)*scale); err != nil {
			return out, err
		}
	default:
		return out, fmt.Errorf("faults: unknown fault class %q", f.Class)
	}

	runErr := s.Run(c.cfg.Horizon * scale)
	if sc.Interrupt != nil {
		// An interrupt (deadline, cancellation) is the caller's verdict to
		// make, not a fault detection.
		if err := sc.Interrupt(); err != nil {
			return out, err
		}
	}
	out.Diags = s.Diagnostics()
	out.Period = scenarioPeriod(s, scale)
	c.classify(&out, s, runErr)
	return out, nil
}

// instNominal is the module's baked-in per-instance factor (1 when unset),
// the base DelayFactorMap already multiplied into its jitter draw.
func instNominal(c *Campaign, name string) float64 {
	if in := c.M.Inst(name); in != nil && in.DelayFactor != 0 {
		return in.DelayFactor
	}
	return 1
}

// scenarioPeriod estimates the run's effective handshake period from its
// busiest capture train (the campaign constructor's estimator, applied to a
// faulted run), normalized back to the nominal corner by the global scale.
// Runs with fewer than three captures report 0.
func scenarioPeriod(s *sim.Simulator, scale float64) float64 {
	busiest := busiestCaptureTrain(s.CaptureTimes)
	n := len(busiest)
	if n < 3 {
		return 0
	}
	return (busiest[n-1] - busiest[1]) / float64(n-2) / scale
}

// busiestCaptureTrain picks the longest capture-time train, breaking length
// ties by instance name: map iteration order must never reach a reported
// number (sweep aggregates diff byte-for-byte across runs).
func busiestCaptureTrain(trains map[string][]float64) []float64 {
	var busiest []float64
	var at string
	for name, times := range trains {
		if len(times) > len(busiest) || (len(times) == len(busiest) && (at == "" || name < at)) {
			busiest, at = times, name
		}
	}
	return busiest
}
