package sdc

import (
	"reflect"
	"strings"
	"testing"
)

func sampleConstraints() *Constraints {
	return &Constraints{
		Clocks: []Clock{
			{Name: "mclk", Period: 2.4, Waveform: [2]float64{0, 1.2}, Sources: []string{"G1_gm", "G2_gm"}, OnPins: true},
			{Name: "clk", Period: 4.65, Waveform: [2]float64{0, 2.325}, Sources: []string{"clk"}},
		},
		Disabled: []DisabledArc{
			{Inst: "G1/g", From: "A", To: "Q"},
			{Inst: "G1/ro", From: "B", To: "Q"},
		},
		SizeOnly:    []string{"G1/g", "G1/ro"},
		PointDelays: []PointDelay{{From: "G1/ro/Q", To: "G2/g/B", Min: 0.1, Max: 1.5}},
		FalsePaths:  [][2]string{{"tb/a", "tb/b"}},
	}
}

// TestParseRoundTrip: everything Write emits parses back to the same
// constraint set (modulo the deterministic ordering Write applies).
func TestParseRoundTrip(t *testing.T) {
	want := sampleConstraints()
	text := want.Write()
	got, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if got.Write() != text {
		t.Fatalf("round trip mismatch:\n--- wrote\n%s--- reparsed\n%s", text, got.Write())
	}
	if !reflect.DeepEqual(got.PointDelays, want.PointDelays) {
		t.Fatalf("point delays = %+v, want %+v", got.PointDelays, want.PointDelays)
	}
}

// TestParseMalformed: every malformed directive is rejected with a
// line-numbered error naming the problem — not skipped. A dropped
// set_disable_timing would let STA time through a cut arc.
func TestParseMalformed(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown command", "set_clock_gating on", "unknown command"},
		{"unterminated brace", "set_size_only [get_cells {G1/g]", "unterminated {"},
		{"unmatched close brace", "set_size_only [get_cells G1/g}]", "unmatched }"},
		{"unterminated string", `create_clock -name "mclk -period 2`, "unterminated string"},
		{"clock without period", `create_clock -name "c" [get_ports {clk}]`, "-period"},
		{"clock negative period", `create_clock -name "c" -period -2 [get_ports {clk}]`, "-period"},
		{"clock without sources", `create_clock -name "c" -period 2`, "no sources"},
		{"bad waveform arity", `create_clock -name "c" -period 2 -waveform {0 1 2} [get_ports {clk}]`, "waveform"},
		{"bad waveform number", `create_clock -name "c" -period 2 -waveform {0 x} [get_ports {clk}]`, "waveform edge"},
		{"disable missing to", "set_disable_timing -from A [get_cells {u1}]", "missing"},
		{"disable empty cells", "set_disable_timing -from A -to Q [get_cells {}]", "one cell"},
		{"min delay bad number", "set_min_delay abc -from [get_pins {a}] -to [get_pins {b}]", "bad number"},
		{"min delay missing to", "set_min_delay 0.5 -from [get_pins {a}]", "missing"},
		{"false path wrong collection", "set_false_path -from [get_ports {a}] -to [get_pins {b}]", "expected get_pins"},
		{"line number reported", "create_clock -name \"c\" -period 2 [get_ports {clk}]\nbogus_cmd x", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.in)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.in, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseIgnoresCommentsAndBlanks: comment and blank lines are skipped.
func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	c, err := Parse("# header\n\nset_size_only [get_cells {u1}]\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.SizeOnly) != 1 || c.SizeOnly[0] != "u1" {
		t.Fatalf("SizeOnly = %v", c.SizeOnly)
	}
}
