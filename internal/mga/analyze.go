package mga

import (
	"fmt"
	"sort"
	"strings"

	"desync/internal/equiv"
	"desync/internal/lint"
)

// Analyze runs every static check over the graph and returns the report:
// dead-input and token-free-cycle liveness (MG-LIVE), place bounds, reset
// phases and the request-vs-data cross-check (MG-SAFE), and — when the
// graph is live — the maximum cycle ratio with its critical cycle
// (MG-CYCLE) and per-region bottlenecks (MG-PERF).
func (g *Graph) Analyze() *Report {
	g.index()
	r := &Report{
		Design:      g.Design,
		Regions:     len(g.masterOf),
		Transitions: len(g.Trans),
		PlaceCount:  len(g.Places),
		Live:        true,
		Safe:        true,
	}
	// Build-time findings: the reset-phase audit lands here; CheckModel's
	// dead-input findings are folded in by checkDeadInputs below.
	for _, f := range g.findings {
		if f.Rule == RuleLive {
			continue
		}
		r.Findings = append(r.Findings, f)
		if f.Severity == lint.Error {
			r.Safe = false
		}
	}

	g.checkDeadInputs(r)
	g.checkTokenFreeCycles(r)
	g.checkBounds(r)
	g.checkDDG(r)
	if r.Live {
		g.analyzeCycles(r)
	} else {
		r.Findings = append(r.Findings, lint.Finding{
			Rule: RuleCycle, Severity: lint.Info, Module: g.Design,
			Msg: "throughput analysis skipped: the marked graph is not live",
		})
	}
	sortFindings(r.Findings)
	return r
}

// deadSignals returns the model signal names whose handshake inputs are
// stuck, keyed by the (region, master) controller half they starve.
type deadSource struct {
	region int
	master bool
	signal string
	input  string
}

// CheckModel records dead-input faults found in the extracted model: a
// controller gate (or a join or delay chain feeding one) with a stuck
// operand can never complete a handshake phase, so its transition is dead
// in every marking — no state search needed. Call before Analyze on
// graphs built by BuildGraph; hand-built graphs have no model.
func (g *Graph) CheckModel(m *equiv.Model) {
	sigs := g.sigs
	if sigs == nil {
		sigs = m.StaticSignals()
	}
	var dead []deadSource
	for _, s := range sigs {
		if s.Kind == equiv.SigEnvSrc || s.Kind == equiv.SigEnvSink {
			continue // an env channel watches a gate; gate faults are reported there
		}
		for _, op := range s.Inputs {
			if op.Sig >= 0 {
				continue
			}
			dead = append(dead, deadSource{
				region: s.Region, master: s.Master, signal: s.Name,
				input: fmt.Sprintf("stuck %s", stuckName(op.Stuck)),
			})
		}
	}
	for _, d := range dead {
		side := "slave"
		if d.master {
			side = "master"
		}
		g.findings = append(g.findings, lint.Finding{
			Rule: RuleLive, Severity: lint.Error, Module: g.Design, Net: d.signal,
			Msg: fmt.Sprintf("region %d %s handshake input %s is %s: its transition can never complete a cycle (dead without state search)",
				d.region, side, d.signal, d.input),
		})
	}
}

func stuckName(v bool) string {
	if v {
		return "high"
	}
	return "low"
}

// checkDeadInputs folds CheckModel's findings (already in g.findings)
// into the liveness verdict and reports the starved downstream cone: in
// a connected marked graph a transition that never fires starves every
// transition downstream of it, so one dead input condemns the component.
func (g *Graph) checkDeadInputs(r *Report) {
	dead := 0
	for _, f := range g.findings {
		if f.Rule == RuleLive && f.Severity == lint.Error {
			r.Live = false
			r.Findings = append(r.Findings, f)
			dead++
		}
	}
	if dead == 0 {
		return
	}
	r.Findings = append(r.Findings, lint.Finding{
		Rule: RuleLive, Severity: lint.Info, Module: g.Design,
		Msg: fmt.Sprintf("%d dead handshake input(s) starve the connected control network (%d transitions)", dead, len(g.Trans)),
	})
}

// checkTokenFreeCycles rejects any directed cycle whose places carry no
// tokens: such a cycle can never fire any of its transitions. Tarjan SCC
// over the token-free subgraph finds one without enumerating cycles.
func (g *Graph) checkTokenFreeCycles(r *Report) {
	// Token-free adjacency, as places and as destination transitions.
	adj := make([][]int, len(g.Trans))
	succ := make([][]int, len(g.Trans))
	for _, p := range g.Places {
		if p.Tokens == 0 {
			adj[p.Src] = append(adj[p.Src], p.ID)
			succ[p.Src] = append(succ[p.Src], p.Dst)
		}
	}
	sccs := tarjan(len(g.Trans), succ)
	inSCC := make([]bool, len(g.Trans))
	for _, scc := range sccs {
		for i := range inSCC {
			inSCC[i] = false
		}
		for _, v := range scc {
			inSCC[v] = true
		}
		cyclic := len(scc) > 1
		if !cyclic {
			for _, pid := range adj[scc[0]] {
				if g.Places[pid].Dst == scc[0] {
					cyclic = true
				}
			}
		}
		if !cyclic {
			continue
		}
		r.Live = false
		names := g.cycleIn(scc[0], inSCC, adj)
		r.Findings = append(r.Findings, lint.Finding{
			Rule: RuleLive, Severity: lint.Error, Module: g.Design,
			Msg: fmt.Sprintf("token-free cycle: %s can never fire (no token ever arrives on the cycle)",
				joinNames(names)),
		})
	}
}

// cycleIn walks token-free places inside one SCC from start until a
// transition repeats, and returns the place names along the loop.
func (g *Graph) cycleIn(start int, inSCC []bool, adj [][]int) []string {
	var names []string
	seen := make([]bool, len(g.Trans))
	v := start
	for !seen[v] {
		seen[v] = true
		next := -1
		for _, pid := range adj[v] {
			if inSCC[g.Places[pid].Dst] {
				names = append(names, g.Places[pid].Name)
				next = g.Places[pid].Dst
				break
			}
		}
		if next < 0 {
			break
		}
		v = next
	}
	return names
}

func joinNames(names []string) string {
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		sb.WriteString(n)
	}
	return sb.String()
}

// checkBounds computes, per place, the maximum token count it can reach:
// its initial marking plus the minimum token count over return paths from
// its consumer back to its producer. No return path means the place is
// unbounded — tokens pour in and nothing ever drains them (a severed
// acknowledge). Any bound above one breaks the single-rail channels the
// controllers implement.
func (g *Graph) checkBounds(r *Report) {
	const inf = int(1) << 30
	buf := newDistBuf(len(g.Trans))
	for _, p := range g.Places {
		d := g.minTokenDist(p.Dst, p.Src, inf, buf)
		if d >= inf {
			r.Safe = false
			r.Findings = append(r.Findings, lint.Finding{
				Rule: RuleSafe, Severity: lint.Error, Module: g.Design,
				Msg: fmt.Sprintf("place %s is unbounded: no acknowledge path returns from %s to %s",
					p.Name, g.Trans[p.Dst].Name, g.Trans[p.Src].Name),
			})
			continue
		}
		bound := p.Tokens + d
		if bound > r.MaxBound {
			r.MaxBound = bound
		}
		if bound > 1 {
			r.Safe = false
			r.Findings = append(r.Findings, lint.Finding{
				Rule: RuleSafe, Severity: lint.Error, Module: g.Design,
				Msg: fmt.Sprintf("place %s can hold %d tokens: the single-rail channel overflows (latch overwrite)",
					p.Name, bound),
			})
		}
	}
}

// minTokenDist is a 0/1-weight shortest path from s to t over places
// (weight = token count, clamped to 1), computed level by level: nodes
// at the current token distance expand through 0-weight places in place,
// 1-weight places feed the next level. O(places) per query — the graph
// has two transitions per region, so this stays far from the quadratic
// regime on any realistic design.
func (g *Graph) minTokenDist(s, t, inf int, buf *distBuf) int {
	dist := buf.dist
	for i := range dist {
		dist[i] = inf
	}
	dist[s] = 0
	cur, nxt := buf.cur[:0], buf.nxt[:0]
	cur = append(cur, s)
	for d := 0; len(cur) > 0; d++ {
		for len(cur) > 0 {
			v := cur[len(cur)-1]
			cur = cur[:len(cur)-1]
			if dist[v] != d {
				continue // superseded entry
			}
			for _, pid := range g.out[v] {
				p := g.Places[pid]
				if p.Tokens == 0 {
					if d < dist[p.Dst] {
						dist[p.Dst] = d
						cur = append(cur, p.Dst)
					}
				} else if d+1 < dist[p.Dst] {
					dist[p.Dst] = d + 1
					nxt = append(nxt, p.Dst)
				}
			}
		}
		cur, nxt = nxt, cur[:0]
	}
	buf.cur, buf.nxt = cur, nxt
	return dist[t]
}

// distBuf is the scratch space minTokenDist reuses across the per-place
// bound queries.
type distBuf struct {
	dist, cur, nxt []int
}

func newDistBuf(n int) *distBuf {
	return &distBuf{dist: make([]int, n), cur: make([]int, 0, n), nxt: make([]int, 0, n)}
}

// checkDDG cross-checks the request wiring against the data dependencies:
// every data edge u→v in the derived region DDG must be synchronized by a
// request channel from u's controller to v's master (a missing rendezvous
// input lets v capture before u's datum settles — the missing-C-input
// failure class), and every request edge should carry data (pure
// over-synchronization only costs throughput, so it warns).
func (g *Graph) checkDDG(r *Report) {
	regions := g.SortedRegions()
	for _, v := range regions {
		wired := g.wiringPreds[v]
		for _, u := range g.ddgPreds[v] {
			if u == v {
				continue // intra-region edges are the ms place, always present
			}
			if !wired[u] {
				r.Safe = false
				r.Findings = append(r.Findings, lint.Finding{
					Rule: RuleSafe, Severity: lint.Error, Module: g.Design,
					Msg: fmt.Sprintf("region %d feeds region %d data with no request synchronization: region %d can capture before the datum settles (missing rendezvous input?)",
						u, v, v),
				})
			}
		}
		ddg := map[int]bool{}
		for _, u := range g.ddgPreds[v] {
			ddg[u] = true
		}
		var extra []int
		for u := range wired {
			if !ddg[u] && u != v {
				extra = append(extra, u)
			}
		}
		sort.Ints(extra)
		for _, u := range extra {
			r.Findings = append(r.Findings, lint.Finding{
				Rule: RuleSafe, Severity: lint.Warning, Module: g.Design,
				Msg: fmt.Sprintf("request channel G%d>G%d synchronizes no data dependency (over-synchronization: throughput only)", u, v),
			})
		}
	}
}

// tarjan computes strongly connected components over n nodes with the
// given adjacency lists, iteratively, in deterministic node order.
func tarjan(n int, succ [][]int) [][]int {
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0

	type frame struct {
		v, i int
	}
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ss := succ[f.v]
			if f.i < len(ss) {
				w := ss[f.i]
				f.i++
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.v {
						break
					}
				}
				sort.Ints(scc)
				sccs = append(sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return sccs
}

// sortFindings orders findings for byte-identical reports: severity
// (errors first), then rule, then message.
func sortFindings(fs []lint.Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		if fs[i].Net != fs[j].Net {
			return fs[i].Net < fs[j].Net
		}
		return fs[i].Msg < fs[j].Msg
	})
}
