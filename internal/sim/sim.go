// Package sim is an event-driven gate-level logic simulator with
// three-valued logic and per-corner, per-instance delays. It stands in for
// the VerilogXL simulations of §4.8/§5: it verifies flow equivalence
// between a synchronous circuit and its desynchronized version, measures the
// effective period of the self-timed controller network (Fig 5.3/5.4), and
// collects the switching activity that drives power estimation (Fig 5.5).
//
// Delays are taken from the library arcs at the chosen corner, scaled by
// each instance's DelayFactor (intra-die variability) and a global Scale
// (inter-die variability sampled by internal/variability), plus annotated
// wire delays when enabled. Nets follow inertial-delay semantics: a newly
// scheduled transition supersedes a pending one on the same net.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// Default limits of Config. They are the documented meaning of each field's
// zero value; callers that need tighter budgets (scenario sweeps, unit
// tests) set the fields instead of relying on package behaviour.
const (
	// DefaultMaxEvents is the oscillation guard when Config.MaxEvents is 0.
	DefaultMaxEvents = 50_000_000
	// DefaultMaxDiags bounds the watchdog report when Config.MaxDiags and
	// WatchdogConfig.MaxDiags are both 0.
	DefaultMaxDiags = 64
	// DefaultInterruptEvery is the Interrupt polling stride (in applied
	// events) when Config.InterruptEvery is 0.
	DefaultInterruptEvery = 4096
)

// Config controls a simulation run.
type Config struct {
	Corner        netlist.Corner
	UseWireDelays bool
	// Scale multiplies every cell delay; 1.0 when zero. It models inter-die
	// (global) variability: the whole chip speeds up or slows down together.
	Scale float64
	// MaxEvents guards against oscillation; 0 means DefaultMaxEvents.
	MaxEvents int64
	// MaxDiags bounds the watchdog diagnostics recorded per run; 0 means
	// DefaultMaxDiags. WatchdogConfig.MaxDiags overrides it per Watch call.
	MaxDiags int
	// Interrupt, when non-nil, is polled every InterruptEvery applied events;
	// a non-nil return aborts Run with that error. It is the hook scenario
	// sweeps use for per-scenario wall-clock deadlines and context
	// cancellation inside long runs — the simulator itself never blocks, so
	// without events there is nothing to interrupt.
	Interrupt func() error
	// InterruptEvery is the Interrupt polling stride in applied events; 0
	// means DefaultInterruptEvery.
	InterruptEvery int64
	// DelayFactors overrides instances' DelayFactor by name, for this
	// simulator only. The factors are snapshotted at construction, so
	// campaigns and jitter runs can share one immutable module across
	// concurrent simulators instead of mutating instance state.
	DelayFactors map[string]float64
}

// Simulator executes one flat module.
type Simulator struct {
	M   *netlist.Module
	cfg Config

	netIdx  map[*netlist.Net]int
	nets    []*netlist.Net
	val     []logic.V
	gen     []uint32 // inertial-cancel generation per net
	pendVal []logic.V
	pendOK  []bool

	q      eventHeap
	seq    int64
	now    float64
	events int64

	// forced marks nets pinned by fault injection: gate-driven and stimulus
	// transitions on them are dropped until Release.
	forced []bool
	// actions holds callbacks scheduled via At; events reference them by
	// index+1 in their act field.
	actions []func()

	wd *watchdog

	instState map[*netlist.Inst]*state
	// factors holds the per-instance delay-factor overrides from
	// Config.DelayFactors, resolved to instances at construction; nil when
	// the config has none, so the common path stays a field read.
	factors  map[*netlist.Inst]float64
	monitors map[int][]func(t float64, v logic.V)

	// Captures records, per sequential instance name, the sequence of data
	// values captured (FF: at each effective clock edge; latch: at each
	// closing edge). This is the observable of the flow-equivalence
	// property (§2.1).
	Captures map[string][]logic.V
	// CaptureTimes records when each capture happened, for effective-period
	// measurement.
	CaptureTimes map[string][]float64

	// Toggles counts value changes per net index (activity for power).
	Toggles []int64
}

type state struct {
	prevClk logic.V
	env     map[string]logic.V
}

type event struct {
	t   float64
	seq int64
	net int32
	val logic.V
	gen uint32
	act int32 // index+1 into actions; 0 for net transitions
}

// transportGen marks stimulus events exempt from inertial cancellation.
const transportGen = ^uint32(0)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New builds a simulator for a flat module. All nets start at X; tie cells
// assert their constants at time zero.
func New(m *netlist.Module, cfg Config) (*Simulator, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	if cfg.MaxDiags == 0 {
		cfg.MaxDiags = DefaultMaxDiags
	}
	if cfg.InterruptEvery == 0 {
		cfg.InterruptEvery = DefaultInterruptEvery
	}
	s := &Simulator{
		M:            m,
		cfg:          cfg,
		netIdx:       make(map[*netlist.Net]int, len(m.Nets)),
		instState:    make(map[*netlist.Inst]*state, len(m.Insts)),
		monitors:     map[int][]func(float64, logic.V){},
		Captures:     map[string][]logic.V{},
		CaptureTimes: map[string][]float64{},
	}
	for i, n := range m.Nets {
		s.netIdx[n] = i
	}
	if len(cfg.DelayFactors) > 0 {
		s.factors = make(map[*netlist.Inst]float64, len(cfg.DelayFactors))
		for name, f := range cfg.DelayFactors {
			if in := m.Inst(name); in != nil {
				s.factors[in] = f
			}
		}
	}
	s.nets = m.Nets
	s.val = make([]logic.V, len(m.Nets))
	s.gen = make([]uint32, len(m.Nets))
	s.pendVal = make([]logic.V, len(m.Nets))
	s.pendOK = make([]bool, len(m.Nets))
	s.Toggles = make([]int64, len(m.Nets))
	for _, in := range m.Insts {
		if in.Sub != nil {
			return nil, fmt.Errorf("sim: module %s not flat (instance %s)", m.Name, in.Name)
		}
		s.instState[in] = &state{prevClk: logic.X, env: map[string]logic.V{}}
		if in.Cell.Kind == netlist.KindTie {
			for out, fn := range in.Cell.Functions {
				if n := in.Conn(out); n != nil {
					s.schedule(n, fn.Eval(nil), 0)
				}
			}
		}
	}
	return s, nil
}

// Now returns the current simulation time in ns.
func (s *Simulator) Now() float64 { return s.now }

// Value returns the current value of the named net.
func (s *Simulator) Value(name string) logic.V {
	n := s.M.Net(name)
	if n == nil {
		return logic.X
	}
	return s.val[s.netIdx[n]]
}

// Vector reads a bit-blasted bus (base[i] nets), LSB first up to width.
func (s *Simulator) Vector(base string, width int) logic.Vector {
	out := make(logic.Vector, width)
	for i := 0; i < width; i++ {
		out[i] = s.Value(fmt.Sprintf("%s[%d]", base, i))
	}
	return out
}

// Drive schedules a primary-input change at an absolute time ≥ now.
func (s *Simulator) Drive(port string, v logic.V, at float64) error {
	p := s.M.Port(port)
	if p == nil || p.Dir != netlist.In {
		return fmt.Errorf("sim: no input port %q", port)
	}
	if at < s.now {
		return fmt.Errorf("sim: drive at %.4f is in the past (now %.4f)", at, s.now)
	}
	// Stimulus uses transport semantics: many future edges may be queued on
	// the same port at once, so they must not cancel one another the way
	// gate-driven (inertial) transitions do.
	idx := s.netIdx[p.Net]
	s.seq++
	heap.Push(&s.q, event{t: at, seq: s.seq, net: int32(idx), val: v, gen: transportGen})
	return nil
}

// DriveVector drives a bit-blasted input bus with an integer value.
func (s *Simulator) DriveVector(base string, width int, value uint64, at float64) error {
	for i := 0; i < width; i++ {
		if err := s.Drive(fmt.Sprintf("%s[%d]", base, i), logic.FromBool(value>>uint(i)&1 == 1), at); err != nil {
			return err
		}
	}
	return nil
}

// Clock schedules a 50%-duty clock on an input port from start until until.
// The clock starts low (so the first rising edge falls at start+period/2),
// giving flip-flops a clean 0→1 edge from the initial X state.
func (s *Simulator) Clock(port string, period, start, until float64) error {
	t := start
	v := logic.L
	for t < until {
		if err := s.Drive(port, v, t); err != nil {
			return err
		}
		v = v.Not()
		t += period / 2
	}
	return nil
}

// OnChange registers a monitor callback on a net.
func (s *Simulator) OnChange(name string, fn func(t float64, v logic.V)) error {
	n := s.M.Net(name)
	if n == nil {
		return fmt.Errorf("sim: no net %q", name)
	}
	idx := s.netIdx[n]
	s.monitors[idx] = append(s.monitors[idx], fn)
	return nil
}

// schedule queues a transition after a relative delay.
func (s *Simulator) schedule(n *netlist.Net, v logic.V, delay float64) {
	s.scheduleAt(n, v, s.now+delay)
}

func (s *Simulator) scheduleAt(n *netlist.Net, v logic.V, at float64) {
	idx := s.netIdx[n]
	// Effective future value: pending transition if any, else current.
	eff := s.val[idx]
	if s.pendOK[idx] {
		eff = s.pendVal[idx]
	}
	if eff == v {
		return
	}
	s.gen[idx]++
	s.pendVal[idx] = v
	s.pendOK[idx] = true
	s.seq++
	heap.Push(&s.q, event{t: at, seq: s.seq, net: int32(idx), val: v, gen: s.gen[idx]})
}

// Run processes events until the queue is empty or time passes until.
func (s *Simulator) Run(until float64) error {
	for s.q.Len() > 0 {
		if s.q[0].t > until {
			s.now = until
			s.endOfRunChecks(until)
			return nil
		}
		e := heap.Pop(&s.q).(event)
		if e.act > 0 {
			s.now = e.t
			s.actions[e.act-1]()
			continue
		}
		idx := int(e.net)
		if e.gen != transportGen {
			if e.gen != s.gen[idx] {
				continue // superseded (inertial cancellation)
			}
			s.pendOK[idx] = false
		}
		s.now = e.t
		if s.forced != nil && s.forced[idx] {
			continue // pinned by fault injection
		}
		if s.val[idx] == e.val {
			continue
		}
		s.events++
		if s.events > s.cfg.MaxEvents {
			return fmt.Errorf("sim: event budget exceeded at t=%.4f (oscillation?)", s.now)
		}
		if s.cfg.Interrupt != nil && s.events%s.cfg.InterruptEvery == 0 {
			if err := s.cfg.Interrupt(); err != nil {
				return fmt.Errorf("sim: interrupted at t=%.4f: %w", s.now, err)
			}
		}
		s.applyChange(idx, e.val)
	}
	if !math.IsInf(until, 1) {
		s.now = until
	}
	s.endOfRunChecks(until)
	return nil
}

// applyChange commits a net transition: value, activity counters, watchdog
// bookkeeping, monitors, and sink re-evaluation.
func (s *Simulator) applyChange(idx int, v logic.V) {
	s.val[idx] = v
	s.Toggles[idx]++
	if s.wd != nil {
		s.wd.noteChange(idx, s.now)
	}
	n := s.nets[idx]
	for _, fn := range s.monitors[idx] {
		fn(s.now, v)
	}
	for _, sink := range n.Sinks {
		if sink.Inst != nil {
			s.evaluate(sink.Inst, sink.Pin)
		}
	}
}

// RunUntilQuiescent processes all pending events (no time bound).
func (s *Simulator) RunUntilQuiescent() error { return s.Run(math.Inf(1)) }

// Events reports how many net transitions were applied.
func (s *Simulator) Events() int64 { return s.events }

// delayOf picks the arc delay into outPin for a transition to v, triggered
// by fromPin (falling back to the worst arc into the output), including
// variability scaling and wire delay of the driven net.
func (s *Simulator) delayOf(in *netlist.Inst, fromPin, outPin string, v logic.V) float64 {
	c := in.Cell
	arc := c.Arc(fromPin, outPin)
	var d float64
	if arc != nil {
		if v == logic.H {
			d = arc.Rise.At(s.cfg.Corner)
		} else {
			d = arc.Fall.At(s.cfg.Corner)
		}
	} else {
		// No direct arc (e.g. data pin of an FF): use the worst arc into
		// the output.
		for _, a := range c.Arcs {
			if a.To != outPin {
				continue
			}
			dd := a.Rise.At(s.cfg.Corner)
			if v != logic.H {
				dd = a.Fall.At(s.cfg.Corner)
			}
			if dd > d {
				d = dd
			}
		}
	}
	factor := in.DelayFactor
	if s.factors != nil {
		if f, ok := s.factors[in]; ok {
			factor = f
		}
	}
	if factor == 0 {
		factor = 1
	}
	d *= factor * s.cfg.Scale
	if s.cfg.UseWireDelays {
		if n := in.Conn(outPin); n != nil {
			d += n.Wire.At(s.cfg.Corner)
		}
	}
	return d
}

// buildEnv refreshes the instance's cached input environment.
func (s *Simulator) buildEnv(in *netlist.Inst) map[string]logic.V {
	st := s.instState[in]
	for _, p := range in.Cell.Pins {
		if p.Dir != netlist.In {
			continue
		}
		if n := in.Conn(p.Name); n != nil {
			st.env[p.Name] = s.val[s.netIdx[n]]
		} else {
			st.env[p.Name] = logic.X
		}
	}
	return st.env
}

// evaluate reacts to a change on pin of inst.
func (s *Simulator) evaluate(in *netlist.Inst, pin string) {
	c := in.Cell
	switch c.Kind {
	case netlist.KindComb:
		env := s.buildEnv(in)
		for out, fn := range c.Functions {
			n := in.Conn(out)
			if n == nil {
				continue
			}
			v := fn.Eval(env)
			s.schedule(n, v, s.delayOf(in, pin, out, v))
		}
	case netlist.KindFF:
		s.evalFF(in, pin)
	case netlist.KindLatch:
		s.evalLatch(in, pin)
	case netlist.KindCElem, netlist.KindGC:
		env := s.buildEnv(in)
		var v logic.V
		switch {
		case c.GC.Set.Eval(env) == logic.H:
			v = logic.H
		case c.GC.Reset.Eval(env) == logic.H:
			v = logic.L
		default:
			return // hold
		}
		if n := in.Conn(c.GC.Q); n != nil {
			s.schedule(n, v, s.delayOf(in, pin, c.GC.Q, v))
		}
	case netlist.KindTie:
		// constants never change
	}
}

// asyncState returns the forced output value if an async set/reset is
// active, else X.
func asyncState(spec *netlist.SeqSpec, env map[string]logic.V) logic.V {
	active := func(pin string, low bool) bool {
		v := env[pin]
		if low {
			return v == logic.L
		}
		return v == logic.H
	}
	if spec.AsyncReset != "" && active(spec.AsyncReset, spec.AsyncResetLow) {
		return logic.L
	}
	if spec.AsyncSet != "" && active(spec.AsyncSet, spec.AsyncSetLow) {
		return logic.H
	}
	return logic.X
}

func (s *Simulator) driveQ(in *netlist.Inst, v logic.V, fromPin string) {
	spec := in.Cell.Seq
	if n := in.Conn(spec.Q); n != nil {
		s.schedule(n, v, s.delayOf(in, fromPin, spec.Q, v))
	}
	if spec.QN != "" {
		if n := in.Conn(spec.QN); n != nil {
			s.schedule(n, v.Not(), s.delayOf(in, fromPin, spec.QN, v.Not()))
		}
	}
}

func (s *Simulator) evalFF(in *netlist.Inst, pin string) {
	spec := in.Cell.Seq
	st := s.instState[in]
	env := s.buildEnv(in)

	if forced := asyncState(spec, env); forced != logic.X &&
		(pin == spec.AsyncReset || pin == spec.AsyncSet) {
		s.driveQ(in, forced, pin)
		if pin == spec.ClockPin {
			st.prevClk = env[spec.ClockPin]
		}
		return
	}
	if pin != spec.ClockPin {
		return // data changes wait for the edge
	}
	clk := env[spec.ClockPin]
	rising := st.prevClk == logic.L && clk == logic.H
	st.prevClk = clk
	if !rising {
		return
	}
	if forced := asyncState(spec, env); forced != logic.X {
		s.driveQ(in, forced, pin)
		return
	}
	if spec.ClockGate != "" && env[spec.ClockGate] != logic.H {
		return // gated off: no capture
	}
	v := spec.Next.Eval(env)
	s.record(in, v)
	s.driveQ(in, v, pin)
}

func (s *Simulator) evalLatch(in *netlist.Inst, pin string) {
	spec := in.Cell.Seq
	st := s.instState[in]
	env := s.buildEnv(in)

	if forced := asyncState(spec, env); forced != logic.X {
		s.driveQ(in, forced, pin)
		if pin == spec.ClockPin {
			st.prevClk = env[spec.ClockPin]
		}
		return
	}
	g := env[spec.ClockPin]
	if pin == spec.ClockPin {
		prev := st.prevClk
		st.prevClk = g
		switch {
		case g == logic.H:
			// Opening (or staying open): follow data.
			v := spec.Next.Eval(env)
			s.driveQ(in, v, pin)
		case prev == logic.H && g == logic.L:
			// Closing edge: the data present now is what gets captured.
			if s.wd != nil {
				s.wd.checkSetup(in)
			}
			v := spec.Next.Eval(env)
			s.record(in, v)
			s.driveQ(in, v, pin)
		}
		return
	}
	// Data change while transparent.
	if g == logic.H {
		v := spec.Next.Eval(env)
		s.driveQ(in, v, pin)
	}
}

func (s *Simulator) record(in *netlist.Inst, v logic.V) {
	s.Captures[in.Name] = append(s.Captures[in.Name], v)
	s.CaptureTimes[in.Name] = append(s.CaptureTimes[in.Name], s.now)
	if s.wd != nil && v == logic.X {
		s.wd.noteXCapture(in, s.now)
	}
}

// endOfRunChecks lets the watchdog inspect the state a completed Run leaves
// behind (quiescence/deadlock detection).
func (s *Simulator) endOfRunChecks(until float64) {
	if s.wd != nil {
		s.wd.checkQuiescence(until)
	}
}
