package core

import (
	"context"
	"fmt"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
)

// buildSpecialFFRing makes a 2-region ring exercising one special flip-flop
// kind in region B: region A is a plain 2-bit stage; region B uses the
// given flip-flop cell with its control pin wired to the "ctl" input.
// Remaining control pins wire to sensible defaults (resets to rstn, scan
// data to a neighbouring register).
func buildSpecialFFRing(lib *netlist.Library, ffCell string, ctlPin string) *netlist.Design {
	d := netlist.NewDesign("ring", lib)
	m := d.Top
	clk := m.AddPort("clk", netlist.In).Net
	rstn := m.AddPort("rstn", netlist.In).Net
	ctl := m.AddPort("ctl", netlist.In).Net

	aq := []*netlist.Net{m.AddNet("aq[0]"), m.AddNet("aq[1]")}
	bq := []*netlist.Net{m.AddNet("bq[0]"), m.AddNet("bq[1]")}

	// Region A cloud: invert B's outputs.
	for i := 0; i < 2; i++ {
		ad := m.AddNet(fmt.Sprintf("ad[%d]", i))
		g := m.AddInst(fmt.Sprintf("ga%d", i), lib.MustCell("INVX1"))
		m.MustConnect(g, "A", bq[i])
		m.MustConnect(g, "Z", ad)
		ff := m.AddInst(fmt.Sprintf("fa%d", i), lib.MustCell("DFFRQX1"))
		m.MustConnect(ff, "D", ad)
		m.MustConnect(ff, "CK", clk)
		m.MustConnect(ff, "RN", rstn)
		m.MustConnect(ff, "Q", aq[i])
	}
	// Region B cloud: xor the two A bits into each B bit.
	for i := 0; i < 2; i++ {
		bd := m.AddNet(fmt.Sprintf("bd[%d]", i))
		g := m.AddInst(fmt.Sprintf("gb%d", i), lib.MustCell("XOR2X1"))
		m.MustConnect(g, "A", aq[i])
		m.MustConnect(g, "B", aq[(i+1)%2])
		m.MustConnect(g, "Z", bd)
		cell := lib.MustCell(ffCell)
		ff := m.AddInst(fmt.Sprintf("fb%d", i), cell)
		m.MustConnect(ff, "D", bd)
		m.MustConnect(ff, "CK", clk)
		if ctlPin != "" {
			m.MustConnect(ff, ctlPin, ctl)
		}
		m.MustConnect(ff, "Q", bq[i])
		for _, p := range cell.Pins {
			if p.Dir != netlist.In || ff.Conn(p.Name) != nil {
				continue
			}
			switch p.Name {
			case "RN", "SN":
				m.MustConnect(ff, p.Name, rstn)
			case "SI":
				m.MustConnect(ff, "SI", aq[i])
			default:
				m.MustConnect(ff, p.Name, ctl)
			}
		}
	}
	return d
}

// ctlEdge drives the control input after region B's capture #AfterCycle
// (and, for Pulse, returns it to the previous value within the same
// inter-capture window). Token-aligned stimulus is the §4.8 discipline: the
// desynchronized circuit has no wall clock, so the environment must act
// per handshake, not per nanosecond.
type ctlEdge struct {
	AfterCycle int
	V          logic.V
	Pulse      bool
}

func runBoth(t *testing.T, ffCell, ctlPin string, initial logic.V, edges []ctlEdge) {
	t.Helper()
	lib := hs()
	period := 2.5
	cycles := 16

	// Synchronous reference: reset releases before the first edge, so no
	// clock edges happen during reset (the flow-equivalence alignment).
	sync := buildSpecialFFRing(lib, ffCell, ctlPin)
	ss, err := sim.New(sync.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ss.Drive("rstn", logic.L, 0)
	ss.Drive("rstn", logic.H, period*0.4)
	ss.Drive("ctl", initial, 0)
	for _, e := range edges {
		// Capture k happens at period/2 + k*period.
		tk := period/2 + float64(e.AfterCycle)*period
		ss.Drive("ctl", e.V, tk+0.25*period)
		if e.Pulse {
			ss.Drive("ctl", e.V.Not(), tk+0.6*period)
		}
	}
	ss.Clock("clk", period, 0, period*float64(cycles))
	if err := ss.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}

	// Desynchronized run with token-aligned control edges.
	des := buildSpecialFFRing(lib, ffCell, ctlPin)
	res, err := Desynchronize(context.Background(), des, Options{Period: period})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grouping.Groups != 2 {
		t.Fatalf("groups = %d, want 2", res.Grouping.Groups)
	}
	groupB := des.Top.Inst("fb0/sl").Group
	// Control pins are sampled by the MASTER latches, so stimulus aligns to
	// master captures: driving after master capture k affects capture k+1,
	// with a full handshake cycle of margin.
	gsNet := fmt.Sprintf("G%d_gm", groupB)
	ds, err := sim.New(des.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	captures := 0
	pending := append([]ctlEdge(nil), edges...)
	if err := ds.OnChange(gsNet, func(tm float64, v logic.V) {
		if v != logic.L {
			return
		}
		captures++
		for len(pending) > 0 && pending[0].AfterCycle == captures-1 {
			e := pending[0]
			pending = pending[1:]
			ds.Drive("ctl", e.V, tm+0.3)
			if e.Pulse {
				ds.Drive("ctl", e.V.Not(), tm+0.9)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	ds.Drive("rstn", logic.L, 0)
	ds.Drive("rst_desync", logic.H, 0)
	ds.Drive("ctl", initial, 0)
	ds.Drive("rstn", logic.H, 1)
	ds.Drive("rst_desync", logic.L, 2)
	if err := ds.Run(period * float64(cycles) * 3); err != nil {
		t.Fatal(err)
	}

	for name, want := range ss.Captures {
		got := ds.Captures[name+"/sl"]
		if len(got) < 8 {
			t.Fatalf("%s: only %d desync captures", name, len(got))
		}
		n := len(want)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k] != want[k] {
				t.Fatalf("%s capture %d: desync %v vs sync %v (cell %s)\nsync:   %v\ndesync: %v",
					name, k, got[k], want[k], ffCell, want[:n], got[:n])
			}
		}
	}
}

// Fig 3.1(b): synchronous reset folds into the master latch's data path.
func TestSubstitutionSyncResetBehaviour(t *testing.T) {
	runBoth(t, "DFFSYNRX1", "R", logic.L, []ctlEdge{
		{AfterCycle: 5, V: logic.H},
		{AfterCycle: 8, V: logic.L},
	})
}

// Fig 3.1(d): clock gating gates both latch enables.
func TestSubstitutionClockGatingBehaviour(t *testing.T) {
	runBoth(t, "DFFCGX1", "EN", logic.H, []ctlEdge{
		{AfterCycle: 6, V: logic.L},
		{AfterCycle: 9, V: logic.H},
	})
}

// Fig 3.1(a): scan flip-flops become mux + latch pair; flow equivalence
// holds through a scan-mode episode (SI wired to a neighbouring register).
func TestSubstitutionScanBehaviour(t *testing.T) {
	runBoth(t, "SDFFRQX1", "SE", logic.L, []ctlEdge{
		{AfterCycle: 5, V: logic.H},
		{AfterCycle: 9, V: logic.L},
	})
}

// Fig 3.1(c): asynchronous set rebuilt from OR gating around plain latches.
// Asynchronous set/reset is initialization semantics: a mid-run pulse on a
// free-running self-timed pipeline has no single global "between cycles"
// instant, so — as in the paper, where async controls initialize state —
// we assert SN together with the system reset and check that the set value
// (1) boots the ring in both versions and the sequences stay identical.
func TestSubstitutionAsyncSetBehaviour(t *testing.T) {
	lib := hs()
	period := 2.5

	sync := buildSpecialFFRing(lib, "DFFSQX1", "SN")
	ss, err := sim.New(sync.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ss.Drive("rstn", logic.L, 0)
	ss.Drive("ctl", logic.L, 0) // SN asserted with reset
	ss.Drive("rstn", logic.H, period*0.3)
	ss.Drive("ctl", logic.H, period*0.4)
	ss.Clock("clk", period, 0, period*14)
	if err := ss.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}

	des := buildSpecialFFRing(lib, "DFFSQX1", "SN")
	if _, err := Desynchronize(context.Background(), des, Options{Period: period}); err != nil {
		t.Fatal(err)
	}
	ds, err := sim.New(des.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ds.Drive("rstn", logic.L, 0)
	ds.Drive("rst_desync", logic.H, 0)
	ds.Drive("ctl", logic.L, 0)
	ds.Drive("rstn", logic.H, 1)
	ds.Drive("ctl", logic.H, 1.5)
	ds.Drive("rst_desync", logic.L, 2)
	if err := ds.Run(period * 40); err != nil {
		t.Fatal(err)
	}
	// The set boots fb to 1: the very first A captures read INV(1)=0.
	for name, want := range ss.Captures {
		got := ds.Captures[name+"/sl"]
		if len(got) < 8 {
			t.Fatalf("%s: only %d desync captures", name, len(got))
		}
		// Releasing SN closes the forced-open latch, which our simulator
		// logs as one extra capture of the set value; the stored-value
		// sequences are identical (the synchronous flip-flop holds the same
		// 1 during the set, it just isn't a clocked capture). Skip that
		// known artifact.
		if len(got) > 0 && got[0] == logic.H && len(want) > 0 && want[0] != logic.H {
			got = got[1:]
		}
		n := len(want)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k] != want[k] {
				t.Fatalf("%s capture %d: desync %v vs sync %v\nsync:   %v\ndesync: %v",
					name, k, got[k], want[k], want[:n], got[:n])
			}
		}
		if want[0] == logic.X {
			t.Fatalf("%s: async set did not define the boot state", name)
		}
	}
}
