package power

import (
	"strings"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/stdcells"
)

func toggler(t *testing.T) (*netlist.Module, *sim.Simulator) {
	t.Helper()
	lib := stdcells.New(stdcells.HighSpeed)
	m := netlist.NewModule("m")
	m.AddPort("a", netlist.In)
	m.AddPort("z", netlist.Out)
	mid := m.AddNet("mid")
	g1 := m.AddInst("g1", lib.MustCell("INVX1"))
	m.MustConnect(g1, "A", m.Net("a"))
	m.MustConnect(g1, "Z", mid)
	g2 := m.AddInst("g2", lib.MustCell("BUFX1"))
	m.MustConnect(g2, "A", mid)
	m.MustConnect(g2, "Z", m.Net("z"))
	s, err := sim.New(m, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestEstimateScalesWithActivity(t *testing.T) {
	run := func(toggles int) Report {
		m, s := toggler(t)
		for i := 0; i < toggles; i++ {
			s.Drive("a", logic.FromBool(i%2 == 0), float64(i)+1)
		}
		if err := s.RunUntilQuiescent(); err != nil {
			t.Fatal(err)
		}
		rep, err := Estimate(m, s, 100, netlist.Worst)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	low := run(4)
	high := run(40)
	if high.DynamicMW <= low.DynamicMW {
		t.Fatalf("dynamic power must grow with activity: %v vs %v", low, high)
	}
	if low.LeakageMW != high.LeakageMW {
		t.Fatal("leakage must not depend on activity")
	}
	if low.LeakageMW <= 0 {
		t.Fatal("leakage missing")
	}
	if low.Total() != low.DynamicMW+low.LeakageMW {
		t.Fatal("total wrong")
	}
}

func TestLeakageCornerAndVariant(t *testing.T) {
	m, s := toggler(t)
	best, _ := Estimate(m, s, 100, netlist.Best)
	worst, _ := Estimate(m, s, 100, netlist.Worst)
	if worst.LeakageMW <= best.LeakageMW {
		t.Fatal("hot corner must leak more")
	}
}

func TestEstimateErrors(t *testing.T) {
	m, s := toggler(t)
	if _, err := Estimate(m, s, 0, netlist.Worst); err == nil {
		t.Fatal("expected duration error")
	}
	other := netlist.NewModule("other")
	if _, err := Estimate(other, s, 10, netlist.Worst); err == nil {
		t.Fatal("expected module mismatch error")
	}
}

func TestCollectorSAIF(t *testing.T) {
	m, s := toggler(t)
	c, err := NewCollector(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Drive("a", logic.L, 1)
	s.Drive("a", logic.H, 2) // mid falls, z follows
	s.Drive("a", logic.L, 10)
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	saif := c.Finish(20)
	_ = m
	a := saif.Nets["a"]
	if a == nil || a.TC != 3 {
		t.Fatalf("activity of a wrong: %+v", a)
	}
	if a.T1 < 7.9 || a.T1 > 8.1 {
		t.Fatalf("a high-time %.2f, want ~8", a.T1)
	}
	var sb strings.Builder
	if err := saif.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "(NET \"a\"") || !strings.Contains(out, "(TC 3)") {
		t.Fatalf("SAIF rendering wrong:\n%s", out)
	}
}

func TestVCDWriter(t *testing.T) {
	_, s := toggler(t)
	var sb strings.Builder
	v, err := NewVCD(s, &sb, "m")
	if err != nil {
		t.Fatal(err)
	}
	s.Drive("a", logic.H, 1)
	s.Drive("a", logic.L, 3)
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	if v.Err() != nil {
		t.Fatal(v.Err())
	}
	out := sb.String()
	for _, want := range []string{"$timescale 1ns $end", "$var wire 1", "$enddefinitions", "#1000", "#3000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in VCD:\n%s", want, out)
		}
	}
}
