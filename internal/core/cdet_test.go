package core

import (
	"context"
	"testing"

	"desync/internal/designs"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
)

// §2.4.4: the completion-detection alternative must preserve flow
// equivalence while running at data-dependent speed, at roughly 2x the
// combinational area.
func TestCompletionDetectionFlowEquivalence(t *testing.T) {
	lib := hs()
	prog := designs.TestProgram()

	dsync, err := designs.BuildDLX(lib, prog)
	if err != nil {
		t.Fatal(err)
	}
	ddes, err := designs.BuildDLX(lib, prog)
	if err != nil {
		t.Fatal(err)
	}
	combBefore := func() float64 {
		CleanLogic(dsync.Top)
		var a float64
		for _, in := range dsync.Top.Insts {
			if in.Cell != nil && in.Cell.Kind == netlist.KindComb {
				a += in.Cell.Area
			}
		}
		return a
	}()

	res, err := Desynchronize(context.Background(), ddes, Options{Period: 5, Mode: ModeCompletion})
	if err != nil {
		t.Fatal(err)
	}
	if res.Insert.CompletionCells == 0 {
		t.Fatal("no completion cells created")
	}
	// Area: the completion networks roughly double-to-quadruple the
	// combinational logic (the paper cites ~2x; our generic prime-implicant
	// images are less optimized than hand-mapped dual-rail cells).
	var combAfter float64
	for _, in := range ddes.Top.Insts {
		if in.Cell != nil && in.Cell.Kind == netlist.KindComb {
			combAfter += in.Cell.Area
		}
	}
	ratio := combAfter / combBefore
	if ratio < 1.7 || ratio > 6 {
		t.Fatalf("completion-detection comb area ratio %.2f outside the expected regime", ratio)
	}

	// Behaviour: full flow equivalence against the synchronous run.
	period := 5.0
	ss, err := sim.New(dsync.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ss.Drive("rstn", logic.L, 0)
	ss.Drive("rstn", logic.H, period*0.4)
	ss.Clock("clk", period, 0, period*30)
	if err := ss.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	ds, err := sim.New(ddes.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	ds.Drive("rstn", logic.L, 0)
	ds.Drive("rst_desync", logic.H, 0)
	ds.Drive("rstn", logic.H, 1)
	ds.Drive("rst_desync", logic.L, 2)
	if err := ds.Run(period * 60); err != nil {
		t.Fatal(err)
	}
	compared := 0
	for name, want := range ss.Captures {
		got := ds.Captures[name+"/sl"]
		if len(got) < 8 {
			t.Fatalf("%s: only %d captures (deadlock?)", name, len(got))
		}
		n := len(want)
		if len(got) < n {
			n = len(got)
		}
		for k := 0; k < n; k++ {
			if got[k] != want[k] {
				t.Fatalf("%s capture %d: %v vs %v — completion detection broke flow equivalence",
					name, k, got[k], want[k])
			}
		}
		compared++
	}
	if compared < 500 {
		t.Fatalf("compared only %d registers", compared)
	}

	// Average-case behaviour: cycle intervals vary with the data (unlike
	// the fixed matched-delay version).
	times := ds.CaptureTimes["pc_r[0]/sl"]
	if len(times) < 12 {
		t.Fatal("too few cycles")
	}
	minI, maxI := 1e9, 0.0
	for k := 6; k < len(times); k++ {
		d := times[k] - times[k-1]
		if d < minI {
			minI = d
		}
		if d > maxI {
			maxI = d
		}
	}
	if maxI-minI < 0.05 {
		t.Fatalf("completion-detected cycle time not data-dependent: min %.3f max %.3f", minI, maxI)
	}
}
