package sdc

import (
	"testing"
)

// FuzzParse feeds arbitrary text through the SDC reader. Parse must either
// return constraints or a line-numbered error; panics and hangs are bugs —
// this is the path that consumes .sdc files written by other tools. On a
// successful parse the rendered form must re-parse, and rendering is the
// normal form: writing the re-parsed constraints must reproduce it exactly.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"create_clock -name \"G1_m\" -period 2 -waveform {0 1} [get_ports {clk}]\n",
		"create_clock -name \"G1_m\" -period 2.5 -waveform {0 1.25} [get_pins {G1_Mctrl/g/Z}]\n",
		"set_disable_timing -from A -to Q [get_cells {G1_Mctrl/g}]\n",
		"set_size_only [get_cells {G1_reqC/c0 G2_delem/a0}]\n",
		"set_min_delay 0.2 -from [get_pins {G1_Mctrl/g/Z}] -to [get_pins {G2_reqC/c0/A}]\n" +
			"set_max_delay 1.5 -from [get_pins {G1_Mctrl/g/Z}] -to [get_pins {G2_reqC/c0/A}]\n",
		"set_false_path -from [get_pins {G1_sro}] -to [get_pins {G2_mri}]\n",
		"create_clock -name c -period 1 [get_ports {a b c}]\n",
		"create_clock -period 1 [get_ports {a}]\n",   // missing -name
		"create_clock -name c [get_ports {a}]\n",     // missing -period
		"set_disable_timing -from A [get_cells {u}]", // missing -to
		"set_max_delay x -from [get_pins {a}] -to [get_pins {b}]\n",
		"bogus_command 1 2 3\n",
		"create_clock -name c -period 1 [get_ports {a]\n", // unterminated group
		"create_clock -name \"c -period 1\n",              // unterminated string
		"set_size_only [get_cells {}]\n",                  // empty collection
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // bound parse work per input
		}
		c, err := Parse(src)
		if err != nil {
			return
		}
		text := c.Write()
		c2, err := Parse(text)
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q\nrendered:\n%s", err, src, text)
		}
		if text2 := c2.Write(); text2 != text {
			t.Fatalf("rendering is not a fixed point\ninput: %q\nfirst:\n%s\nsecond:\n%s", src, text, text2)
		}
	})
}
