// Package handshake builds the asynchronous control elements of the
// desynchronization flow: the 4-phase semi-decoupled latch controllers
// (§2.2, §3.1.3), multi-input C-Muller rendezvous trees (§3.1.5), and the
// asymmetric matched delay elements with optional multiplexed taps (§2.4.4,
// §3.1.4).
//
// The controller is re-derived from the semi-decoupled protocol (the
// thesis' exact gate netlist is not recoverable from the text; see
// DESIGN.md §5) and maps onto three hazard-free complex gates:
//
//	g  = gC(set: ao·ri̅ (+rst for masters), reset: ao̅·ri)   — latch enable
//	ai = ri · g̅                                            — input ack
//	ro = gC(set: g̅·ao̅, reset: g·ao, reset-to-0)            — output request
//
// Cycle: ri+ → g− (capture) → ai+ and ro+ ; ri− → ai− ; ao+ → g+ (reopen)
// → ro− ; ao− → ready. Masters reset transparent (g=1); slaves reset opaque
// (g=0) holding the registers' reset state, and their ro fires as soon as
// reset releases, announcing that data — which is what boots the network.
package handshake

import (
	"fmt"

	"desync/internal/netlist"
)

// DelayCellName is the per-level cell of the asymmetric matched delay
// elements (the AND of Fig 2.9). It is the single owner of that choice:
// the element builder, the flow's sizing and the under-margin audit all
// resolve the per-level delay through DelayLevel, so they cannot disagree
// about what one chain level is worth on any library variant.
const DelayCellName = "AND2X1"

// DelayLevel returns the worst-corner rise delay of one matched-element
// chain level — the quantum every delay-element sizing computation uses.
func DelayLevel(lib *netlist.Library) (float64, error) {
	c, err := lib.Cell(DelayCellName)
	if err != nil {
		return 0, fmt.Errorf("handshake: delay-element cell: %w", err)
	}
	arc := c.Arc("A", "Z")
	if arc == nil {
		return 0, fmt.Errorf("handshake: delay-element cell %s has no A->Z arc", DelayCellName)
	}
	return arc.Rise.At(netlist.Worst), nil
}

// ControllerPorts names the nets a latch controller connects to.
type ControllerPorts struct {
	Ri, Ai, Ro, Ao, G, Rst *netlist.Net
}

// AddController instantiates one latch controller into m with the given
// instance-name prefix. master selects the reset phase (transparent vs
// opaque). All gates are marked SizeOnly (§4.6.2) and tagged Origin "ctrl".
func AddController(m *netlist.Module, lib *netlist.Library, prefix string, master bool, p ControllerPorts) error {
	gcell := "CGSX1"
	if master {
		gcell = "CGMX1"
	}
	cells := map[string]*netlist.CellDef{}
	for _, name := range []string{gcell, "CROX1", "CBX1", "ANDN3X1"} {
		c, err := lib.Cell(name)
		if err != nil {
			return fmt.Errorf("handshake: controller %s: %w", prefix, err)
		}
		cells[name] = c
	}
	gInst := m.AddInst(prefix+"/g", cells[gcell])
	roInst := m.AddInst(prefix+"/ro", cells["CROX1"])
	bInst := m.AddInst(prefix+"/b", cells["CBX1"])
	aiInst := m.AddInst(prefix+"/ai", cells["ANDN3X1"])
	for _, in := range []*netlist.Inst{gInst, roInst, bInst, aiInst} {
		in.SizeOnly = true
		in.Origin = "ctrl"
	}
	bNet := m.AddNet(prefix + "/bq")
	type conn struct {
		inst *netlist.Inst
		pin  string
		net  *netlist.Net
	}
	conns := []conn{
		{gInst, "A", p.Ao}, {gInst, "B", p.Ri}, {gInst, "R", p.Rst}, {gInst, "Q", p.G},
		{roInst, "A", p.G}, {roInst, "B", p.Ao}, {roInst, "R", p.Rst}, {roInst, "Q", p.Ro},
		{bInst, "A", p.G}, {bInst, "B", p.Ri}, {bInst, "Q", bNet},
		{aiInst, "A", p.Ri}, {aiInst, "B", p.G}, {aiInst, "C", bNet}, {aiInst, "Z", p.Ai},
	}
	for _, c := range conns {
		if err := m.Connect(c.inst, c.pin, c.net); err != nil {
			return fmt.Errorf("handshake: controller %s: %w", prefix, err)
		}
	}
	return nil
}

// ControllerDisabledArcs returns the set_disable_timing arcs that break the
// asynchronous timing loops through the controllers (§4.6.1, Fig 4.5c).
// Cutting the acknowledge input of the latch-enable element and both data
// inputs of the request element leaves the network acyclic: requests still
// time end-to-end into g, b and ai through their ri pins, while the fully
// cut request gate is constrained through its reset pin and the explicit
// min/max point delays the tool emits — exactly the situation the paper
// describes ("this specific gate can be constrained through its other
// pins").
func ControllerDisabledArcs(prefix string) [][3]string {
	return [][3]string{
		{prefix + "/g", "A", "Q"},  // ao -> g
		{prefix + "/ro", "A", "Q"}, // g  -> ro
		{prefix + "/ro", "B", "Q"}, // ao -> ro
	}
}

// IsControlOrigin reports whether an instance Origin tag marks a cell
// created by a clock-replacement stage (controllers and rendezvous trees,
// delay elements, completion networks, enable-tree buffers, the two-phase
// clock generator). Such cells are exempt from the synchronous-netlist
// rules — combinational-loop and dead-cone checks — that the lint engine
// applies to the datapath.
func IsControlOrigin(origin string) bool {
	switch origin {
	case "ctrl", "delem", "cdet", "cts", "tpgen":
		return true
	}
	return false
}

// ControlRegion parses the "G<id>_" prefix every control-network net and
// instance name carries, returning the region id. Unlike Origin tags, names
// survive a Verilog write/read round trip, so this is the test standalone
// tools use on re-imported netlists.
func ControlRegion(name string) (int, bool) {
	if len(name) < 3 || name[0] != 'G' {
		return 0, false
	}
	i, g := 1, 0
	for i < len(name) && name[i] >= '0' && name[i] <= '9' {
		g = g*10 + int(name[i]-'0')
		i++
	}
	if i == 1 || i >= len(name) || name[i] != '_' {
		return 0, false
	}
	return g, true
}

// AddCTree builds a C-Muller rendezvous over the given input nets, writing
// the result to out. A single input is wired through directly (the caller
// passes out == inputs[0] in that case — AddCTree rejects it). Trees use
// C3X1 and C2X1 cells; the paper synthesizes 2..10-input C elements, we
// compose them (§3.1.5). Returns the number of cells created.
func AddCTree(m *netlist.Module, lib *netlist.Library, prefix string, inputs []*netlist.Net, out *netlist.Net) (int, error) {
	if len(inputs) < 2 {
		return 0, fmt.Errorf("handshake: C tree needs ≥2 inputs, got %d", len(inputs))
	}
	cells := 0
	level := append([]*netlist.Net(nil), inputs...)
	for len(level) > 1 {
		var next []*netlist.Net
		for i := 0; i < len(level); {
			rem := len(level) - i
			var take int
			switch {
			case rem == 1:
				next = append(next, level[i])
				i++
				continue
			case rem == 3 || rem > 4:
				take = 3
			default:
				take = 2
			}
			cellName := "C2X1"
			if take == 3 {
				cellName = "C3X1"
			}
			dst := out
			if !(len(next) == 0 && rem == take) {
				dst = m.AddNet(fmt.Sprintf("%s/t%d", prefix, cells))
			}
			cd, err := lib.Cell(cellName)
			if err != nil {
				return cells, fmt.Errorf("handshake: C tree %s: %w", prefix, err)
			}
			c := m.AddInst(fmt.Sprintf("%s/c%d", prefix, cells), cd)
			c.SizeOnly = true
			c.Origin = "ctrl"
			cells++
			pins := []string{"A", "B", "C"}
			for k := 0; k < take; k++ {
				if err := m.Connect(c, pins[k], level[i+k]); err != nil {
					return cells, err
				}
			}
			if err := m.Connect(c, "Q", dst); err != nil {
				return cells, err
			}
			next = append(next, dst)
			i += take
		}
		level = next
	}
	return cells, nil
}

// DelayElementSpec describes a matched delay element.
type DelayElementSpec struct {
	// Levels is the AND-chain depth of the longest tap.
	Levels int
	// Taps, when non-nil, lists chain positions (1..Levels, ascending, last
	// == Levels) selectable through a multiplexer tree driven by select
	// nets; nil builds a fixed-length element.
	Taps []int
}

// AddDelayElement builds an asymmetric (slow-rise, fast-fall) delay element
// per Fig 2.9: a chain of AND gates all gated by the primary input, so a
// rising edge ripples through every level while a falling edge cuts through
// the last gate. When spec.Taps is set, an 8-to-1 (or narrower) multiplexer
// tree selects the effective length using the sel nets (LSB first,
// len(sel) = ceil(log2(len(Taps)))). Cells are tagged Origin "delem".
func AddDelayElement(m *netlist.Module, lib *netlist.Library, prefix string, in, out, rst *netlist.Net, sel []*netlist.Net, spec DelayElementSpec) error {
	if spec.Levels < 1 {
		return fmt.Errorf("handshake: delay element needs ≥1 level")
	}
	and, err := lib.Cell(DelayCellName)
	if err != nil {
		return fmt.Errorf("handshake: delay element %s: %w", prefix, err)
	}
	connect := func(in *netlist.Inst, pin string, n *netlist.Net) error {
		if err := m.Connect(in, pin, n); err != nil {
			return fmt.Errorf("handshake: delay element %s: %w", prefix, err)
		}
		return nil
	}
	taps := map[int]*netlist.Net{}
	prev := in
	for lvl := 1; lvl <= spec.Levels; lvl++ {
		dst := m.AddNet(fmt.Sprintf("%s/d%d", prefix, lvl))
		g := m.AddInst(fmt.Sprintf("%s/a%d", prefix, lvl), and)
		g.SizeOnly = true
		g.Origin = "delem"
		for _, c := range []struct {
			pin string
			net *netlist.Net
		}{{"A", prev}, {"B", in}, {"Z", dst}} {
			if err := connect(g, c.pin, c.net); err != nil {
				return err
			}
		}
		prev = dst
		taps[lvl] = dst
	}
	_ = rst // reset is implicit: requests are low during reset, so the chain drains

	if spec.Taps == nil {
		// Fixed element: buffer the last level onto out.
		buf, err := lib.Cell("BUFX2")
		if err != nil {
			return fmt.Errorf("handshake: delay element %s: %w", prefix, err)
		}
		b := m.AddInst(prefix+"/out", buf)
		b.SizeOnly = true
		b.Origin = "delem"
		if err := connect(b, "A", prev); err != nil {
			return err
		}
		return connect(b, "Z", out)
	}

	// Validate taps.
	last := 0
	var tapNets []*netlist.Net
	for _, t := range spec.Taps {
		if t <= last || t > spec.Levels {
			return fmt.Errorf("handshake: bad tap list %v", spec.Taps)
		}
		last = t
		tapNets = append(tapNets, taps[t])
	}
	if spec.Taps[len(spec.Taps)-1] != spec.Levels {
		return fmt.Errorf("handshake: last tap must equal Levels")
	}
	need := bitsFor(len(tapNets))
	if len(sel) < need {
		return fmt.Errorf("handshake: %d taps need %d select nets, got %d", len(tapNets), need, len(sel))
	}

	// Mux tree: level k collapses pairs using sel[k].
	mux, err := lib.Cell("MUX2X1")
	if err != nil {
		return fmt.Errorf("handshake: delay element %s: %w", prefix, err)
	}
	muxes := 0
	level := tapNets
	for k := 0; len(level) > 1; k++ {
		var next []*netlist.Net
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			dst := out
			if !(len(next) == 0 && len(level) == 2) {
				dst = m.AddNet(fmt.Sprintf("%s/m%d", prefix, muxes))
			}
			g := m.AddInst(fmt.Sprintf("%s/mx%d", prefix, muxes), mux)
			g.SizeOnly = true
			g.Origin = "delem"
			muxes++
			for _, c := range []struct {
				pin string
				net *netlist.Net
			}{{"A", level[i]}, {"B", level[i+1]}, {"S", sel[k]}, {"Z", dst}} {
				// A takes the shorter tap (sel bit 0), B the longer.
				if err := connect(g, c.pin, c.net); err != nil {
					return err
				}
			}
			next = append(next, dst)
		}
		level = next
	}
	return nil
}

// AddSymmetricDelayElement builds the 2-phase-handshake variant of the
// matched element (§2.4.4, §3.1.4): a buffer chain with equal rise and fall
// delay, as used when requests are transition-encoded rather than 4-phase
// pulses ("in the case of symmetric delay elements the AND gates are
// substituted by buffers or pairs of inverters").
func AddSymmetricDelayElement(m *netlist.Module, lib *netlist.Library, prefix string, in, out *netlist.Net, levels int) error {
	if levels < 1 {
		return fmt.Errorf("handshake: symmetric delay element needs ≥1 level")
	}
	buf, err := lib.Cell("BUFX1")
	if err != nil {
		return fmt.Errorf("handshake: symmetric delay element %s: %w", prefix, err)
	}
	prev := in
	for i := 1; i <= levels; i++ {
		dst := out
		if i != levels {
			dst = m.AddNet(fmt.Sprintf("%s/s%d", prefix, i))
		}
		g := m.AddInst(fmt.Sprintf("%s/b%d", prefix, i), buf)
		g.SizeOnly = true
		g.Origin = "delem"
		if err := m.Connect(g, "A", prev); err != nil {
			return fmt.Errorf("handshake: symmetric delay element %s: %w", prefix, err)
		}
		if err := m.Connect(g, "Z", dst); err != nil {
			return fmt.Errorf("handshake: symmetric delay element %s: %w", prefix, err)
		}
		prev = dst
	}
	return nil
}

func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
