package faults_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"desync/internal/expt"
)

// TestCampaignParallelDeterministic is the campaign half of the parallel
// determinism contract: the same fault list run at -j 1 and -j 4 must
// produce byte-identical JSON reports — every outcome classified the same
// way, in fault-list order, regardless of which worker simulated it.
func TestCampaignParallelDeterministic(t *testing.T) {
	dlxCampaign(t) // builds the shared flow
	c1, err := expt.NewDLXCampaign(context.Background(), flow, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := expt.NewDLXCampaign(context.Background(), flow, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	list := c1.DelayFaults(40, 1)
	list = append(list, c1.ControlStuckFaults()[:6]...)

	rep1, err := c1.Run(context.Background(), list)
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := c4.Run(context.Background(), list)
	if err != nil {
		t.Fatal(err)
	}
	var buf1, buf4 bytes.Buffer
	if err := rep1.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := rep4.WriteJSON(&buf4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf4.Bytes()) {
		t.Fatalf("campaign report depends on the worker count:\n-j 1:\n%s\n-j 4:\n%s",
			buf1.String(), buf4.String())
	}
	if len(rep1.Outcomes) != len(list) {
		t.Fatalf("report has %d outcomes for %d faults", len(rep1.Outcomes), len(list))
	}
}

// TestCampaignCancellation: a canceled context stops both campaign
// construction (before the golden run) and an in-flight Run.
func TestCampaignCancellation(t *testing.T) {
	c := dlxCampaign(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := expt.NewDLXCampaign(ctx, flow, 10, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewDLXCampaign err = %v, want context.Canceled", err)
	}
	list := c.DelayFaults(40, 1)
	if _, err := c.Run(ctx, list); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
}
