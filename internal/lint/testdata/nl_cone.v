// NL-CONE fixture: u2's output reaches no port, register, or control
// input — a dead logic cone.
module bad_cone (a, z);
  input a;
  output z;
  wire dead;
  BUFX1 u1 (.A(a), .Z(z));
  INVX1 u2 (.A(a), .Z(dead));
endmodule
