// Command sta runs static timing analysis on a gate-level Verilog netlist:
// critical path report, per-region combinational delays, and setup checks
// against a clock period — the PrimeTime role of the flow (§4.5, §3.2.5).
//
// Usage:
//
//	sta -in design.v [-top name] [-lib HS|LL] [-corner worst|best]
//	    [-period 2.4] [-autobreak] [-regions]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"desync/internal/netlist"
	"desync/internal/sta"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

func main() {
	var (
		in        = flag.String("in", "", "input gate-level Verilog netlist (required)")
		top       = flag.String("top", "", "top module (default: auto-detect)")
		libV      = flag.String("lib", "HS", "library variant: HS or LL")
		cornerS   = flag.String("corner", "worst", "corner: worst or best")
		period    = flag.Float64("period", 0, "check setup against this clock period (ns)")
		autobreak = flag.Bool("autobreak", false, "auto-break combinational loops (back-edge cuts)")
		regions   = flag.Bool("regions", false, "report per-region combinational delays (requires Group fields via two-level hierarchy)")
	)
	flag.Parse()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "sta: internal error: %v\n", r)
			os.Exit(3)
		}
	}()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *top, *libV, *cornerS, *period, *autobreak, *regions); err != nil {
		fmt.Fprintln(os.Stderr, "sta:", err)
		os.Exit(1)
	}
}

func run(in, top, libV, cornerS string, period float64, autobreak, regions bool) error {
	lib, err := stdcells.NewChecked(stdcells.Variant(libV))
	if err != nil {
		return err
	}
	src, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	d, err := verilog.Read(string(src), lib, top)
	if err != nil {
		return err
	}
	if err := d.Flatten(true); err != nil {
		return err
	}
	corner := netlist.Worst
	if cornerS == "best" {
		corner = netlist.Best
	}
	opts := sta.Options{Corner: corner, AutoBreakLoops: autobreak}
	g, err := sta.Build(d.Top, opts)
	if err != nil {
		return err
	}
	if n := len(g.AutoBroken); n > 0 {
		fmt.Printf("auto-broke %d timing loops (arbitrary cuts — constrain them instead, §4.6.1)\n", n)
	}
	r := g.Analyze()
	fmt.Printf("critical combinational delay (%s corner): %.4f ns\n", corner, r.WorstEndpointArrival())
	fmt.Println("critical path:")
	fmt.Print(sta.FormatPath(r.CriticalPath()))

	if regions {
		rds, err := sta.RegionDelays(context.Background(), d.Top, corner, opts)
		if err != nil {
			return err
		}
		fmt.Println("per-region combinational delays:")
		var ids []int
		for id := range rds {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			rd := rds[id]
			fmt.Printf("  region %d: comb %.4f ns, budget %.4f ns (worst endpoint %s)\n",
				id, rd.CombMax, rd.Budget(), rd.WorstPath)
		}
	}
	if period > 0 {
		viol, err := sta.CheckSetup(d.Top, corner, period, opts)
		if err != nil {
			return err
		}
		if len(viol) == 0 {
			fmt.Printf("setup: clean at %.4f ns\n", period)
		} else {
			fmt.Printf("setup: %d violations at %.4f ns; worst:\n", len(viol), period)
			for i, v := range viol {
				if i == 5 {
					fmt.Println("  ...")
					break
				}
				fmt.Printf("  %s arrives %.4f, required %.4f\n", v.Endpoint, v.Arrival, v.Required)
			}
		}
	}
	return nil
}
