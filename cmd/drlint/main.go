// Command drlint is the standalone static verification tool: it runs the
// internal/lint rule engine over a gate-level netlist — the synchronous
// netlist rules on any design, and with -desync the control-network rules
// on a desynchronized one — and exits non-zero when any finding of Error
// severity survives the baseline.
//
// Usage:
//
//	drlint -in design.v [-top name] [-lib HS|LL] [-desync] [-sdc out.sdc] \
//	       [-midflow] [-json] [-baseline accepted.lint] [-write-baseline accepted.lint]
//	drlint -gen dlx|arm|fir [-lib HS|LL] [-json]
//	drlint -gen pipeline:depth=32,width=64,regions=100 [-json]
//	drlint -rules
//
// -gen lints a built-in generator instead of a file — a fixed case study
// (dlx, arm, fir) or a parametric spec in the designs.ParseSpec grammar
// (pipeline, riscv, des with key=value overrides) — so CI can gate the
// example designs without carrying netlist artifacts.
// -sdc supplies the generated constraints for the loop-coverage and
// delay-margin cross-checks (it implies -desync). A baseline file accepts
// known findings by key (rule|module|inst|net); -write-baseline records the
// current findings as accepted.
//
// Exit codes: 0 clean (or all findings suppressed/below Error), 1 findings
// at Error severity, 2 usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"desync/internal/cliutil"
	"desync/internal/ctrlnet"
	"desync/internal/designs"
	"desync/internal/lint"
	"desync/internal/netlist"
	"desync/internal/sdc"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type lintOpts struct {
	in, gen, top, libVariant string
	sdcIn                    string
	baseline, writeBaseline  string
	desync, midflow          bool
	jsonOut, rules           bool
	parallelism              int
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o lintOpts
	fs.StringVar(&o.in, "in", "", "input gate-level Verilog netlist")
	fs.StringVar(&o.gen, "gen", "", "lint a generated design instead of a file: dlx, arm, fir, or a spec like pipeline:depth=8,width=32")
	fs.StringVar(&o.top, "top", "", "top module (default: auto-detect)")
	fs.StringVar(&o.libVariant, "lib", "HS", "technology library variant: HS or LL")
	fs.BoolVar(&o.desync, "desync", false, "run the desynchronization (DS-*) rules as well")
	fs.StringVar(&o.sdcIn, "sdc", "", "SDC constraints for the DS-SDC/DS-MARGIN cross-checks (implies -desync)")
	fs.BoolVar(&o.midflow, "midflow", false, "mid-flow snapshot: suspend the floating-net rule")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the report as JSON")
	fs.StringVar(&o.baseline, "baseline", "", "baseline file of accepted findings (rule|module|inst|net per line)")
	fs.StringVar(&o.writeBaseline, "write-baseline", "", "write the current findings as a baseline file and exit 0")
	fs.BoolVar(&o.rules, "rules", false, "print the rule catalog and exit")
	cliutil.ParallelismVar(fs, &o.parallelism)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.rules {
		for _, ri := range lint.Rules {
			fmt.Fprintf(stdout, "%-12s %-8s %s\n", ri.ID, ri.Severity, ri.Summary)
		}
		return 0
	}
	if (o.in == "") == (o.gen == "") {
		fmt.Fprintln(stderr, "drlint: exactly one of -in or -gen is required")
		fs.Usage()
		return 2
	}
	code, err := lintRun(o, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "drlint:", err)
		return 2
	}
	return code
}

func lintRun(o lintOpts, stdout io.Writer) (int, error) {
	lib := stdcells.New(stdcells.Variant(o.libVariant))
	d, err := loadDesign(o, lib)
	if err != nil {
		return 0, err
	}

	opts := lint.Options{Desync: o.desync, MidFlow: o.midflow, Parallelism: o.parallelism}
	if o.sdcIn != "" {
		text, err := os.ReadFile(o.sdcIn)
		if err != nil {
			return 0, err
		}
		cons, err := sdc.Parse(string(text))
		if err != nil {
			return 0, err
		}
		opts.Desync = true
		opts.Constraints = cons
	}
	// Derive the control-network IR once for the whole run; the DS-* rules
	// consume it instead of re-deriving per check.
	if opts.Desync {
		opts.Network = ctrlnet.Derive(d.Top)
	}

	rep := lint.CheckDesign(d, opts)
	if o.baseline != "" {
		f, err := os.Open(o.baseline)
		if err != nil {
			return 0, err
		}
		base, err := lint.ParseBaseline(f)
		f.Close()
		if err != nil {
			return 0, err
		}
		rep.ApplyBaseline(base)
	}

	if o.jsonOut {
		out, err := rep.JSON()
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(stdout, "%s\n", out)
	} else {
		fmt.Fprint(stdout, rep.Text())
	}
	if o.writeBaseline != "" {
		if err := os.WriteFile(o.writeBaseline, []byte(rep.BaselineText()), 0o644); err != nil {
			return 0, err
		}
		return 0, nil
	}
	if rep.Errors() > 0 {
		return 1, nil
	}
	return 0, nil
}

// loadDesign reads the input netlist or builds one of the case-study
// generators.
func loadDesign(o lintOpts, lib *netlist.Library) (*netlist.Design, error) {
	if o.gen != "" {
		return designs.ParseSpec(o.gen, lib)
	}
	src, err := os.ReadFile(o.in)
	if err != nil {
		return nil, err
	}
	return verilog.Read(string(src), lib, o.top)
}
