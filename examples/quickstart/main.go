// Quickstart: desynchronize a small synchronous pipeline and watch flow
// equivalence hold — every register of the clockless version captures the
// exact data sequence of the clocked one.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"desync/internal/core"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// A two-stage synchronous pipeline: stage A increments a 4-bit value fed
// back from stage B; stage B inverts A's output.
const src = `
module pipe (clk, rstn, out);
  input clk, rstn;
  output [3:0] out;
  wire [3:0] aq, bq, ad, bd;

  // Stage A cloud: increment bq.
  INVX1  a0 (.A(bq[0]), .Z(ad[0]));
  XOR2X1 a1 (.A(bq[1]), .B(bq[0]), .Z(ad[1]));
  AND2X1 c1 (.A(bq[1]), .B(bq[0]), .Z(k1));
  XOR2X1 a2 (.A(bq[2]), .B(k1), .Z(ad[2]));
  AND2X1 c2 (.A(bq[2]), .B(k1), .Z(k2));
  XOR2X1 a3 (.A(bq[3]), .B(k2), .Z(ad[3]));
  DFFRQX1 ra0 (.D(ad[0]), .CK(clk), .RN(rstn), .Q(aq[0]));
  DFFRQX1 ra1 (.D(ad[1]), .CK(clk), .RN(rstn), .Q(aq[1]));
  DFFRQX1 ra2 (.D(ad[2]), .CK(clk), .RN(rstn), .Q(aq[2]));
  DFFRQX1 ra3 (.D(ad[3]), .CK(clk), .RN(rstn), .Q(aq[3]));

  // Stage B cloud: bitwise NOT of aq.
  INVX1 b0 (.A(aq[0]), .Z(bd[0]));
  INVX1 b1 (.A(aq[1]), .Z(bd[1]));
  INVX1 b2 (.A(aq[2]), .Z(bd[2]));
  INVX1 b3 (.A(aq[3]), .Z(bd[3]));
  DFFRQX1 rb0 (.D(bd[0]), .CK(clk), .RN(rstn), .Q(bq[0]));
  DFFRQX1 rb1 (.D(bd[1]), .CK(clk), .RN(rstn), .Q(bq[1]));
  DFFRQX1 rb2 (.D(bd[2]), .CK(clk), .RN(rstn), .Q(bq[2]));
  DFFRQX1 rb3 (.D(bd[3]), .CK(clk), .RN(rstn), .Q(bq[3]));

  assign out = bq;
endmodule
`

func main() {
	lib := stdcells.New(stdcells.HighSpeed)

	// Synchronous reference run.
	ds, err := verilog.Read(src, lib, "")
	if err != nil {
		log.Fatal(err)
	}
	ss, err := sim.New(ds.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		log.Fatal(err)
	}
	period := 2.0
	ss.Drive("rstn", logic.L, 0)
	ss.Drive("rstn", logic.H, period*1.2)
	ss.Clock("clk", period, 0, period*10)
	if err := ss.RunUntilQuiescent(); err != nil {
		log.Fatal(err)
	}

	// Desynchronize a fresh copy of the same netlist.
	dd, err := verilog.Read(src, lib, "")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Desynchronize(context.Background(), dd, core.Options{Period: period})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("desynchronized: %d regions, delay elements %v levels\n",
		res.Grouping.Groups, res.DelayLevels)

	dsim, err := sim.New(dd.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		log.Fatal(err)
	}
	dsim.Drive("rstn", logic.L, 0)
	dsim.Drive("rst_desync", logic.H, 0)
	dsim.Drive("rstn", logic.H, 1)
	dsim.Drive("rst_desync", logic.L, 2)
	if err := dsim.Run(period * 12); err != nil {
		log.Fatal(err)
	}

	// Compare the capture sequences.
	seq := func(vs []logic.V) string {
		var out []byte
		for _, v := range vs {
			out = append(out, v.String()[0])
		}
		return string(out)
	}
	fmt.Println("register   synchronous   desynchronized")
	ok := true
	for _, r := range []string{"ra0", "ra1", "rb0", "rb1"} {
		want := ss.Captures[r]
		got := dsim.Captures[r+"/sl"]
		n := min(len(want), len(got))
		match := true
		for k := 0; k < n; k++ {
			if want[k] != got[k] {
				match = false
				ok = false
			}
		}
		fmt.Printf("%-10s %-13s %-13s match=%v\n", r, seq(want[:n]), seq(got[:n]), match)
	}
	if ok {
		fmt.Println("flow equivalence holds: same data, no clock.")
	} else {
		fmt.Println("FLOW EQUIVALENCE BROKEN")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
