package sta

import (
	"context"
	"fmt"
	"math"
	"strings"

	"desync/internal/netlist"
	"desync/internal/par"
)

// Result holds per-node arrival times for a late (max) and early (min)
// analysis, separated by transition.
type Result struct {
	G *Graph
	// Late arrival times to a rising / falling transition; -Inf where
	// unreachable.
	MaxRise, MaxFall []float64
	// Early arrival times; +Inf where unreachable.
	MinRise, MinFall []float64

	predRise, predFall []int32 // predecessor nodes of the late arrivals
}

// Analyze propagates arrival times over the graph. Startpoints launch at
// time zero.
func (g *Graph) Analyze() *Result {
	n := len(g.keys)
	r := &Result{
		G:       g,
		MaxRise: fill(n, math.Inf(-1)), MaxFall: fill(n, math.Inf(-1)),
		MinRise: fill(n, math.Inf(1)), MinFall: fill(n, math.Inf(1)),
		predRise: fillInt32(n, -1), predFall: fillInt32(n, -1),
	}
	for _, s := range g.starts {
		r.MaxRise[s], r.MaxFall[s] = 0, 0
		r.MinRise[s], r.MinFall[s] = 0, 0
	}
	for _, v := range g.order {
		if math.IsInf(r.MaxRise[v], -1) && math.IsInf(r.MaxFall[v], -1) &&
			math.IsInf(r.MinRise[v], 1) && math.IsInf(r.MinFall[v], 1) {
			continue
		}
		for _, e := range g.out[v] {
			// Late propagation.
			switch e.sense {
			case positiveUnate:
				r.relaxMax(v, e.to, r.MaxRise[v]+e.rise, r.MaxFall[v]+e.fall)
				r.relaxMin(e.to, r.MinRise[v]+e.rise, r.MinFall[v]+e.fall)
			case negativeUnate:
				r.relaxMax(v, e.to, r.MaxFall[v]+e.rise, r.MaxRise[v]+e.fall)
				r.relaxMin(e.to, r.MinFall[v]+e.rise, r.MinRise[v]+e.fall)
			default:
				worst := math.Max(r.MaxRise[v], r.MaxFall[v])
				r.relaxMax(v, e.to, worst+e.rise, worst+e.fall)
				best := math.Min(r.MinRise[v], r.MinFall[v])
				r.relaxMin(e.to, best+e.rise, best+e.fall)
			}
		}
	}
	return r
}

func (r *Result) relaxMax(from, to int, rise, fall float64) {
	if rise > r.MaxRise[to] {
		r.MaxRise[to] = rise
		r.predRise[to] = int32(from)
	}
	if fall > r.MaxFall[to] {
		r.MaxFall[to] = fall
		r.predFall[to] = int32(from)
	}
}

func (r *Result) relaxMin(to int, rise, fall float64) {
	if rise < r.MinRise[to] {
		r.MinRise[to] = rise
	}
	if fall < r.MinFall[to] {
		r.MinFall[to] = fall
	}
}

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func fillInt32(n int, v int32) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// MaxAt returns the late arrival (worst of rise/fall) at a node; -Inf if
// unreachable.
func (r *Result) MaxAt(id int) float64 {
	return math.Max(r.MaxRise[id], r.MaxFall[id])
}

// MinAt returns the early arrival at a node; +Inf if unreachable.
func (r *Result) MinAt(id int) float64 {
	return math.Min(r.MinRise[id], r.MinFall[id])
}

// PathStep is one node of a reported critical path.
type PathStep struct {
	Node    string
	Arrival float64
	Rising  bool
}

// CriticalPath returns the worst late path ending at any endpoint, as a
// start-to-end list of steps.
func (r *Result) CriticalPath() []PathStep {
	bestID, bestT, rising := -1, math.Inf(-1), true
	for _, e := range r.G.ends {
		if r.MaxRise[e] > bestT {
			bestT, bestID, rising = r.MaxRise[e], e, true
		}
		if r.MaxFall[e] > bestT {
			bestT, bestID, rising = r.MaxFall[e], e, false
		}
	}
	if bestID < 0 || math.IsInf(bestT, -1) {
		return nil
	}
	return r.trace(bestID, rising)
}

// trace walks predecessors from an endpoint back to a startpoint.
func (r *Result) trace(id int, rising bool) []PathStep {
	var rev []PathStep
	for id >= 0 && len(rev) < len(r.G.keys)+1 {
		at := r.MaxRise[id]
		pred := r.predRise[id]
		if !rising {
			at = r.MaxFall[id]
			pred = r.predFall[id]
		}
		rev = append(rev, PathStep{Node: r.G.NodeName(id), Arrival: at, Rising: rising})
		if pred < 0 {
			break
		}
		// The predecessor's launching transition depends on the arc sense;
		// recover it by comparing arrivals (a heuristic trace good enough
		// for reports: prefer the transition whose time matches).
		pid := int(pred)
		id = pid
		// Choose the transition at the predecessor that explains the time.
		rising = r.MaxRise[pid] >= r.MaxFall[pid]
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// WorstEndpointArrival returns the maximum late arrival over all endpoints:
// the module's critical combinational delay from any startpoint.
func (r *Result) WorstEndpointArrival() float64 {
	worst := math.Inf(-1)
	for _, e := range r.G.ends {
		if t := r.MaxAt(e); t > worst {
			worst = t
		}
	}
	if math.IsInf(worst, -1) {
		return 0
	}
	return worst
}

// PortToPortDelay reports late max and early min delay from an input port
// to an output port; used to characterize delay elements (§3.1.4).
func (r *Result) PortToPortDelay(out string) (min, max float64, err error) {
	id := r.G.PortID(out)
	if id < 0 {
		return 0, 0, fmt.Errorf("sta: no port %q", out)
	}
	return r.MinAt(id), r.MaxAt(id), nil
}

// RegionDelay is the per-region combinational summary used for delay
// element sizing: the worst path arriving at any sequential data input of
// the region, plus that cell's setup and the driving register's
// clock-to-output, i.e. the full launch-to-capture budget the delay element
// must cover.
type RegionDelay struct {
	Group     int
	CombMax   float64 // worst comb path into the region's registers
	CombMin   float64 // fastest such path (hold view)
	ClkToQ    float64 // worst clock/enable-to-output of source registers
	Setup     float64 // worst setup of the region's registers
	WorstPath string  // endpoint of the critical path, for reports
}

// Budget is the total delay a matched delay element must exceed.
func (rd RegionDelay) Budget() float64 { return rd.ClkToQ + rd.CombMax + rd.Setup }

// RegionDelays computes, for each group id present in the module, the
// combinational critical path into that group's sequential elements
// (§3.2.5). The analysis runs register-bounded (latches opaque), so each
// region's cloud is measured independently as the paper requires — which
// also makes the per-region extraction embarrassingly parallel: after one
// shared graph build and arrival propagation, each region scans only its
// own registers (opts.Parallelism workers; identical results at any
// count, since regions never share a summary and each keeps its module
// instance order).
func RegionDelays(ctx context.Context, m *netlist.Module, corner netlist.Corner, opts Options) (map[int]*RegionDelay, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts.Corner = corner
	opts.LatchTransparent = false
	g, err := Build(m, opts)
	if err != nil {
		return nil, err
	}
	r := g.Analyze()

	// Worst clock-to-Q over all sequential cells: the launch cost. Kept
	// global (any region may feed any other).
	var worstC2Q float64
	for _, in := range m.Insts {
		c := in.Cell
		if c == nil || c.Seq == nil {
			continue
		}
		if a := c.Arc(c.Seq.ClockPin, c.Seq.Q); a != nil {
			d := math.Max(a.Rise.At(corner), a.Fall.At(corner))
			if d > worstC2Q {
				worstC2Q = d
			}
		}
	}

	// Partition the sequential instances by region, preserving module
	// instance order within each (ties in the max scans below resolve the
	// same way the old single loop did).
	byGroup := map[int][]*netlist.Inst{}
	var groups []int
	for _, in := range m.Insts {
		if in.Cell == nil || in.Cell.Seq == nil {
			continue
		}
		if _, ok := byGroup[in.Group]; !ok {
			groups = append(groups, in.Group)
		}
		byGroup[in.Group] = append(byGroup[in.Group], in)
	}

	rds, err := par.Map(ctx, opts.Parallelism, groups, func(ctx context.Context, _ int, grp int) (*RegionDelay, error) {
		rd := &RegionDelay{Group: grp, CombMin: math.Inf(1), ClkToQ: worstC2Q}
		for _, in := range byGroup[grp] {
			c := in.Cell
			if s := c.Setup.At(corner); s > rd.Setup {
				rd.Setup = s
			}
			// Data inputs of this register are endpoints of its region's
			// cloud.
			for _, p := range c.Pins {
				if p.Dir != netlist.In || p.Name == c.Seq.ClockPin {
					continue
				}
				id := g.NodeID(in, p.Name)
				if id < 0 {
					continue
				}
				if t := r.MaxAt(id); !math.IsInf(t, -1) && t > rd.CombMax {
					rd.CombMax = t
					rd.WorstPath = g.NodeName(id)
				}
				if t := r.MinAt(id); t < rd.CombMin {
					rd.CombMin = t
				}
			}
		}
		if math.IsInf(rd.CombMin, 1) {
			rd.CombMin = 0
		}
		return rd, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]*RegionDelay, len(rds))
	for _, rd := range rds {
		out[rd.Group] = rd
	}
	return out, nil
}

// SetupViolation describes a failed setup check.
type SetupViolation struct {
	Endpoint string
	Arrival  float64
	Required float64
}

// CheckSetup verifies that every sequential data input meets setup against
// the given cycle budget (period minus clock-to-Q already consumed by the
// launch, handled by the caller). Returns all violations.
func CheckSetup(m *netlist.Module, corner netlist.Corner, period float64, opts Options) ([]SetupViolation, error) {
	opts.Corner = corner
	g, err := Build(m, opts)
	if err != nil {
		return nil, err
	}
	r := g.Analyze()
	var out []SetupViolation
	for _, in := range m.Insts {
		c := in.Cell
		if c == nil || c.Seq == nil {
			continue
		}
		var launch float64
		if a := c.Arc(c.Seq.ClockPin, c.Seq.Q); a != nil {
			launch = math.Max(a.Rise.At(corner), a.Fall.At(corner))
		}
		for _, p := range c.Pins {
			if p.Dir != netlist.In || p.Name == c.Seq.ClockPin || p.Class == netlist.ClassScanEnable {
				continue
			}
			id := g.NodeID(in, p.Name)
			if id < 0 {
				continue
			}
			t := r.MaxAt(id)
			if math.IsInf(t, -1) {
				continue
			}
			required := period - c.Setup.At(corner) - launch
			if t > required {
				out = append(out, SetupViolation{
					Endpoint: g.NodeName(id),
					Arrival:  t,
					Required: required,
				})
			}
		}
	}
	return out, nil
}

// HoldViolation describes a failed hold check: the fastest path into a
// sequential data input beats the cell's hold requirement after the
// capturing edge.
type HoldViolation struct {
	Endpoint string
	Arrival  float64 // earliest data arrival after the launching edge
	Required float64 // hold requirement plus capture skew
}

// CheckHold verifies that every sequential data input keeps its value for
// the hold window after the capture edge: the early (min) arrival from any
// startpoint — launched by the same edge — must exceed the cell's hold
// time plus the given capture skew. For a zero-skew ideal clock, skew is 0;
// latch-based desynchronized designs satisfy hold by construction (§4.5.1
// "hold constraints are automatically satisfied since we have a latch
// design and sufficiently wide pulses"), which this check confirms.
func CheckHold(m *netlist.Module, corner netlist.Corner, skew float64, opts Options) ([]HoldViolation, error) {
	opts.Corner = corner
	g, err := Build(m, opts)
	if err != nil {
		return nil, err
	}
	r := g.Analyze()
	var out []HoldViolation
	for _, in := range m.Insts {
		c := in.Cell
		if c == nil || c.Seq == nil {
			continue
		}
		for _, p := range c.Pins {
			if p.Dir != netlist.In || p.Name == c.Seq.ClockPin || p.Class == netlist.ClassScanEnable {
				continue
			}
			id := g.NodeID(in, p.Name)
			if id < 0 {
				continue
			}
			t := r.MinAt(id)
			if math.IsInf(t, 1) {
				continue
			}
			required := c.Hold.At(corner) + skew
			if t < required {
				out = append(out, HoldViolation{
					Endpoint: g.NodeName(id),
					Arrival:  t,
					Required: required,
				})
			}
		}
	}
	return out, nil
}

// FormatPath renders a critical path report.
func FormatPath(path []PathStep) string {
	var sb strings.Builder
	for _, s := range path {
		dir := "r"
		if !s.Rising {
			dir = "f"
		}
		fmt.Fprintf(&sb, "%-40s %s %8.4f\n", s.Node, dir, s.Arrival)
	}
	return sb.String()
}
