package handshake

import (
	"fmt"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/stdcells"
)

func hs() *netlist.Library { return stdcells.New(stdcells.HighSpeed) }

func TestControllerHandshakeCycle(t *testing.T) {
	// One controller driven by a scripted environment; verify the 4-phase
	// cycle ri+ → g- → ai+/ro+ ; ri- → ai- ; ao+ → g+ → ro- ; ao-.
	lib := hs()
	m := netlist.NewModule("m")
	for _, p := range []string{"ri", "ao", "rst"} {
		m.AddPort(p, netlist.In)
	}
	for _, p := range []string{"ai", "ro", "g"} {
		m.AddPort(p, netlist.Out)
	}
	err := AddController(m, lib, "ctl", true, ControllerPorts{
		Ri: m.Net("ri"), Ai: m.Net("ai"), Ro: m.Net("ro"),
		Ao: m.Net("ao"), G: m.Net("g"), Rst: m.Net("rst"),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(m, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	s.Drive("rst", logic.H, 0)
	s.Drive("ri", logic.L, 0)
	s.Drive("ao", logic.L, 0)
	s.Drive("rst", logic.L, 1)
	s.RunUntilQuiescent()
	if s.Value("g") != logic.H {
		t.Fatalf("master must reset transparent, g=%v", s.Value("g"))
	}
	if s.Value("ro") != logic.H {
		// With g=1 the request stays low until capture.
		t.Logf("ro=%v after reset (expected 0 for master)", s.Value("ro"))
	}
	if s.Value("ro") == logic.H {
		t.Fatal("master must not request before capturing")
	}
	// ri+ -> capture: g falls, ai and ro rise.
	s.Drive("ri", logic.H, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("g") != logic.L || s.Value("ai") != logic.H || s.Value("ro") != logic.H {
		t.Fatalf("after ri+: g=%v ai=%v ro=%v, want 0 1 1",
			s.Value("g"), s.Value("ai"), s.Value("ro"))
	}
	// ri- -> ai-.
	s.Drive("ri", logic.L, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("ai") != logic.L {
		t.Fatalf("after ri-: ai=%v want 0", s.Value("ai"))
	}
	if s.Value("g") != logic.L {
		t.Fatal("g must stay low until the successor acknowledges")
	}
	// ao+ -> reopen and withdraw the request.
	s.Drive("ao", logic.H, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("g") != logic.H || s.Value("ro") != logic.L {
		t.Fatalf("after ao+: g=%v ro=%v, want 1 0", s.Value("g"), s.Value("ro"))
	}
	// ao- completes the cycle; state matches post-reset.
	s.Drive("ao", logic.L, s.Now()+1)
	s.RunUntilQuiescent()
	if s.Value("g") != logic.H || s.Value("ro") != logic.L || s.Value("ai") != logic.L {
		t.Fatal("cycle did not return to the idle state")
	}
}

func TestSlaveControllerAnnouncesResetData(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	for _, p := range []string{"ri", "ao", "rst"} {
		m.AddPort(p, netlist.In)
	}
	for _, p := range []string{"ai", "ro", "g"} {
		m.AddPort(p, netlist.Out)
	}
	if err := AddController(m, lib, "ctl", false, ControllerPorts{
		Ri: m.Net("ri"), Ai: m.Net("ai"), Ro: m.Net("ro"),
		Ao: m.Net("ao"), G: m.Net("g"), Rst: m.Net("rst"),
	}); err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(m, sim.Config{Corner: netlist.Worst})
	s.Drive("rst", logic.H, 0)
	s.Drive("ri", logic.L, 0)
	s.Drive("ao", logic.L, 0)
	s.Drive("rst", logic.L, 1)
	s.RunUntilQuiescent()
	if s.Value("g") != logic.L {
		t.Fatalf("slave must reset opaque, g=%v", s.Value("g"))
	}
	if s.Value("ro") != logic.H {
		t.Fatalf("slave must announce its reset data: ro=%v want 1", s.Value("ro"))
	}
}

func TestCTreeRendezvous(t *testing.T) {
	lib := hs()
	for _, n := range []int{2, 3, 4, 5, 7, 10} {
		m := netlist.NewModule("m")
		var ins []*netlist.Net
		for i := 0; i < n; i++ {
			ins = append(ins, m.AddPort(fmt.Sprintf("i%d", i), netlist.In).Net)
		}
		out := m.AddPort("out", netlist.Out).Net
		cells, err := AddCTree(m, lib, "ct", ins, out)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cells == 0 {
			t.Fatalf("n=%d: no cells", n)
		}
		if errs := m.Check(); len(errs) > 0 {
			t.Fatalf("n=%d: %v", n, errs)
		}
		s, _ := sim.New(m, sim.Config{Corner: netlist.Worst})
		// All low -> out 0.
		for i := 0; i < n; i++ {
			s.Drive(fmt.Sprintf("i%d", i), logic.L, 0)
		}
		s.RunUntilQuiescent()
		if s.Value("out") != logic.L {
			t.Fatalf("n=%d: all-low should give 0", n)
		}
		// Raise all but one: must hold 0.
		for i := 1; i < n; i++ {
			s.Drive(fmt.Sprintf("i%d", i), logic.H, s.Now()+1)
		}
		s.RunUntilQuiescent()
		if s.Value("out") != logic.L {
			t.Fatalf("n=%d: partial inputs must hold", n)
		}
		// Raise the last: out rises.
		s.Drive("i0", logic.H, s.Now()+1)
		s.RunUntilQuiescent()
		if s.Value("out") != logic.H {
			t.Fatalf("n=%d: all-high should give 1", n)
		}
		// Drop one: holds 1.
		s.Drive("i0", logic.L, s.Now()+1)
		s.RunUntilQuiescent()
		if s.Value("out") != logic.H {
			t.Fatalf("n=%d: partial low must hold 1", n)
		}
	}
}

func TestCTreeRejectsSingleInput(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	in := m.AddPort("i", netlist.In).Net
	out := m.AddPort("o", netlist.Out).Net
	if _, err := AddCTree(m, lib, "ct", []*netlist.Net{in}, out); err == nil {
		t.Fatal("expected error for single input")
	}
}

func TestDelayElementAsymmetry(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	in := m.AddPort("in", netlist.In).Net
	out := m.AddPort("out", netlist.Out).Net
	rst := m.AddPort("rst", netlist.In).Net
	if err := AddDelayElement(m, lib, "de", in, out, rst, nil, DelayElementSpec{Levels: 10}); err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(m, sim.Config{Corner: netlist.Worst})
	var riseAt, fallAt float64
	s.OnChange("out", func(tm float64, v logic.V) {
		if v == logic.H {
			riseAt = tm
		} else {
			fallAt = tm
		}
	})
	s.Drive("in", logic.L, 0)
	s.RunUntilQuiescent()
	t0 := s.Now() + 1
	s.Drive("in", logic.H, t0)
	s.RunUntilQuiescent()
	rise := riseAt - t0
	t1 := s.Now() + 1
	s.Drive("in", logic.L, t1)
	s.RunUntilQuiescent()
	fall := fallAt - t1
	if rise < 5*fall {
		t.Fatalf("not asymmetric: rise %.4f fall %.4f", rise, fall)
	}
}

// §3.1.4: the 2-phase variant has equal rise and fall delay.
func TestSymmetricDelayElement(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	in := m.AddPort("in", netlist.In).Net
	out := m.AddPort("out", netlist.Out).Net
	if err := AddSymmetricDelayElement(m, lib, "sd", in, out, 8); err != nil {
		t.Fatal(err)
	}
	if err := AddSymmetricDelayElement(m, lib, "bad", in, m.AddNet("x"), 0); err == nil {
		t.Fatal("expected level validation error")
	}
	s, _ := sim.New(m, sim.Config{Corner: netlist.Worst})
	var riseAt, fallAt float64
	s.OnChange("out", func(tm float64, v logic.V) {
		if v == logic.H {
			riseAt = tm
		} else {
			fallAt = tm
		}
	})
	s.Drive("in", logic.L, 0)
	s.RunUntilQuiescent()
	t0 := s.Now() + 1
	s.Drive("in", logic.H, t0)
	s.RunUntilQuiescent()
	rise := riseAt - t0
	t1 := s.Now() + 1
	s.Drive("in", logic.L, t1)
	s.RunUntilQuiescent()
	fall := fallAt - t1
	if rise <= 0 || fall <= 0 {
		t.Fatal("element did not propagate")
	}
	if rise/fall > 1.05 || fall/rise > 1.05 {
		t.Fatalf("not symmetric: rise %.4f fall %.4f", rise, fall)
	}
}

func TestMuxedDelayElementTaps(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("m")
	in := m.AddPort("in", netlist.In).Net
	out := m.AddPort("out", netlist.Out).Net
	rst := m.AddPort("rst", netlist.In).Net
	var sel []*netlist.Net
	for i := 0; i < 3; i++ {
		sel = append(sel, m.AddPort(fmt.Sprintf("sel%d", i), netlist.In).Net)
	}
	spec := DelayElementSpec{Levels: 16, Taps: []int{2, 4, 6, 8, 10, 12, 14, 16}}
	if err := AddDelayElement(m, lib, "de", in, out, rst, sel, spec); err != nil {
		t.Fatal(err)
	}
	measure := func(selVal int) float64 {
		s, _ := sim.New(m, sim.Config{Corner: netlist.Worst})
		for i := 0; i < 3; i++ {
			s.Drive(fmt.Sprintf("sel%d", i), logic.FromBool(selVal>>i&1 == 1), 0)
		}
		s.Drive("in", logic.L, 0)
		s.RunUntilQuiescent()
		var riseAt float64
		s.OnChange("out", func(tm float64, v logic.V) {
			if v == logic.H {
				riseAt = tm
			}
		})
		t0 := s.Now() + 1
		s.Drive("in", logic.H, t0)
		s.RunUntilQuiescent()
		if riseAt == 0 {
			t.Fatalf("sel=%d: output never rose", selVal)
		}
		return riseAt - t0
	}
	prev := 0.0
	for v := 0; v < 8; v++ {
		d := measure(v)
		if d <= prev {
			t.Fatalf("tap %d delay %.4f not longer than tap %d (%.4f)", v, d, v-1, prev)
		}
		prev = d
	}
}

// The definitive controller check: a two-register self-timed ring must be
// live and flow-equivalent to its synchronous counterpart. reg1.D = !reg0.Q
// and reg0.D = reg1.Q, all latches 1 bit wide, reset to 0. The synchronous
// capture sequences are computed analytically and compared against the
// slave latches' capture records.
func TestTwoRegisterRingFlowEquivalence(t *testing.T) {
	lib := hs()
	m := netlist.NewModule("ring")
	rst := m.AddPort("rst", netlist.In).Net
	rstn := m.AddNet("rstn")
	ri := m.AddInst("rinv", lib.MustCell("INVX1"))
	m.MustConnect(ri, "A", rst)
	m.MustConnect(ri, "Z", rstn)

	// Datapath: per register r, master latch Mr -> slave latch Sr.
	// Comb: S0 -> INV -> M1 ; S1 -> BUF -> M0.
	type reg struct {
		mQ, sQ, mG, sG *netlist.Net
	}
	var regs [2]reg
	for r := 0; r < 2; r++ {
		regs[r].mQ = m.AddNet(fmt.Sprintf("m%dq", r))
		regs[r].sQ = m.AddNet(fmt.Sprintf("s%dq", r))
		regs[r].mG = m.AddNet(fmt.Sprintf("m%dg", r))
		regs[r].sG = m.AddNet(fmt.Sprintf("s%dg", r))
	}
	mkLatch := func(name string, cell string, d, g, q *netlist.Net, withRst bool) {
		la := m.AddInst(name, lib.MustCell(cell))
		m.MustConnect(la, "D", d)
		m.MustConnect(la, "G", g)
		m.MustConnect(la, "Q", q)
		if withRst {
			m.MustConnect(la, "RN", rstn)
		}
	}
	d1 := m.AddNet("d1") // into M1 = !s0q
	inv := m.AddInst("cloud1", lib.MustCell("INVX1"))
	m.MustConnect(inv, "A", regs[0].sQ)
	m.MustConnect(inv, "Z", d1)
	d0 := m.AddNet("d0") // into M0 = s1q
	buf := m.AddInst("cloud0", lib.MustCell("BUFX1"))
	m.MustConnect(buf, "A", regs[1].sQ)
	m.MustConnect(buf, "Z", d0)

	mkLatch("M0", "LATRQX1", d0, regs[0].mG, regs[0].mQ, true)
	mkLatch("S0", "LATRQX1", regs[0].mQ, regs[0].sG, regs[0].sQ, true)
	mkLatch("M1", "LATRQX1", d1, regs[1].mG, regs[1].mQ, true)
	mkLatch("S1", "LATRQX1", regs[1].mQ, regs[1].sG, regs[1].sQ, true)

	// Control: per register, master+slave controllers.
	// S_{r-1}.ro -> delay -> M_r.ri ; M_r.ai -> S_{r-1}.ao
	// M_r.ro -> S_r.ri ; S_r.ai -> M_r.ao
	net := func(name string) *netlist.Net { return m.AddNet(name) }
	var (
		mRi = [2]*netlist.Net{net("m0ri"), net("m1ri")}
		mAi = [2]*netlist.Net{net("m0ai"), net("m1ai")}
		mRo = [2]*netlist.Net{net("m0ro"), net("m1ro")}
		sRi = [2]*netlist.Net{net("s0ri"), net("s1ri")}
		sAi = [2]*netlist.Net{net("s0ai"), net("s1ai")}
		sRo = [2]*netlist.Net{net("s0ro"), net("s1ro")}
	)
	for r := 0; r < 2; r++ {
		if err := AddController(m, lib, fmt.Sprintf("M%dc", r), true, ControllerPorts{
			Ri: mRi[r], Ai: mAi[r], Ro: mRo[r], Ao: sAi[r], G: regs[r].mG, Rst: rst,
		}); err != nil {
			t.Fatal(err)
		}
		if err := AddController(m, lib, fmt.Sprintf("S%dc", r), false, ControllerPorts{
			Ri: sRi[r], Ai: sAi[r], Ro: sRo[r], Ao: mAi[(r+1)%2], G: regs[r].sG, Rst: rst,
		}); err != nil {
			t.Fatal(err)
		}
		// Master ro feeds slave ri through a short matched element (master
		// to slave has no logic between, only the latch).
		if err := AddDelayElement(m, lib, fmt.Sprintf("deMS%d", r), mRo[r], sRi[r], rst, nil, DelayElementSpec{Levels: 2}); err != nil {
			t.Fatal(err)
		}
		// Slave ro feeds the next master through the cloud-matched element.
		if err := AddDelayElement(m, lib, fmt.Sprintf("deSM%d", r), sRo[r], mRi[(r+1)%2], rst, nil, DelayElementSpec{Levels: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if errs := m.Check(); len(errs) > 0 {
		t.Fatalf("ring netlist broken: %v", errs)
	}

	s, err := sim.New(m, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	s.Drive("rst", logic.H, 0)
	s.Drive("rst", logic.L, 2)
	if err := s.Run(200); err != nil {
		t.Fatal(err)
	}

	// Synchronous reference: q0,q1 reset 0; q1' = !q0 ; q0' = q1.
	// FF capture sequence = the value captured at each edge.
	q0, q1 := false, false
	var want0, want1 []logic.V
	for k := 0; k < 8; k++ {
		n1 := !q0
		n0 := q1
		q0, q1 = n0, n1
		want0 = append(want0, logic.FromBool(q0))
		want1 = append(want1, logic.FromBool(q1))
	}
	got0 := s.Captures["S0"]
	got1 := s.Captures["S1"]
	if len(got0) < 8 || len(got1) < 8 {
		t.Fatalf("ring not live: %d/%d slave captures in 200ns", len(got0), len(got1))
	}
	for k := 0; k < 8; k++ {
		if got0[k] != want0[k] {
			t.Fatalf("S0 capture %d = %v, want %v (flow equivalence broken)\n got %v\nwant %v",
				k, got0[k], want0[k], got0[:8], want0)
		}
		if got1[k] != want1[k] {
			t.Fatalf("S1 capture %d = %v, want %v (flow equivalence broken)\n got %v\nwant %v",
				k, got1[k], want1[k], got1[:8], want1)
		}
	}
}
