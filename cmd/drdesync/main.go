// Command drdesync is the desynchronization tool of the paper (§3.2): it
// reads a post-synthesis gate-level Verilog netlist, applies the
// desynchronization methodology — logic cleaning, automatic region
// creation, flip-flop substitution, dependency-graph construction, matched
// delay-element sizing and controller-network insertion — and writes the
// desynchronized netlist plus the backend timing constraints.
//
// Usage:
//
//	drdesync -in design.v [-top name] [-lib HS|LL] [-period 2.4] \
//	         [-mux] [-margin 1.15] [-falsepath net1,net2] [-manual-groups] \
//	         [-simplify-names] [-faults] [-j N] -out out.v [-sdc out.sdc] [-blif out.blif]
//	drdesync -gen pipeline:depth=32,width=64,regions=100 -out out.v [...]
//
// -gen desynchronizes a generated design instead of a file: a fixed case
// study (dlx, arm, fir) or a parametric spec in the designs.ParseSpec
// grammar. Pre-grouped generators (arm, the pipeline family) imply
// -manual-groups.
//
// When the automatic grouping finds no regions the tool degrades to a
// single-region desynchronization (the ARM-style fallback of §5.3) with a
// warning; when a sized delay element does not cover its region's budget
// the tool bumps the margin and retries. -faults runs a fault-injection
// campaign against the result and prints the detection report. -j bounds the
// workers of the parallel kernels — delay-element sizing, the -equiv gate,
// the -faults campaign — with 0 meaning all CPUs; every output is identical
// at any value. Ctrl-C cancels the run cleanly between stages.
//
// After export the tool always runs the static marked-graph gate
// (internal/mga): polynomial-time liveness, token-bound safety and a
// static period bound over the inserted control network, deterministic at
// any -j. The optional -equiv gate then explores the same extraction
// exhaustively; when the design's protocol-state estimate exceeds the
// -max-states reach, the static gate stands alone and the tool says so
// explicitly instead of truncating a search.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"desync/internal/blif"
	"desync/internal/cliutil"
	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/lint"
	"desync/internal/netlist"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

type runOpts struct {
	in, gen, top, libVariant     string
	out, sdcOut, blifOut, tbOut  string
	falsePaths, backend          string
	period, margin               float64
	mux, manualGroups, simplify  bool
	skipClean, cdet              bool
	faults                       bool
	faultCycles, faultsPerRegion int
	equivGate                    bool
	equivMaxStates, equivXval    int
	equivSeed                    int64
	parallelism                  int
}

func main() {
	var o runOpts
	flag.StringVar(&o.in, "in", "", "input gate-level Verilog netlist (required unless -gen)")
	flag.StringVar(&o.gen, "gen", "", "desynchronize a generated design instead of a file: dlx, arm, fir, or a spec like pipeline:depth=8,width=32")
	flag.StringVar(&o.top, "top", "", "top module (default: auto-detect)")
	flag.StringVar(&o.libVariant, "lib", "HS", "technology library variant: HS or LL")
	flag.StringVar(&o.backend, "backend", "", "clocking-conversion backend: "+strings.Join(core.BackendNames(), " or ")+" (default desync)")
	flag.Float64Var(&o.period, "period", 0, "original clock period in ns for constraint generation")
	flag.BoolVar(&o.mux, "mux", false, "build 8-tap multiplexed delay elements (adds delsel[2:0] ports)")
	flag.Float64Var(&o.margin, "margin", 1.15, "delay-element sizing margin")
	flag.StringVar(&o.falsePaths, "falsepath", "", "comma-separated nets to ignore during grouping")
	flag.BoolVar(&o.manualGroups, "manual-groups", false, "keep hierarchy-derived regions instead of auto grouping")
	flag.BoolVar(&o.simplify, "simplify-names", false, "rewrite escaped names as simple identifiers first")
	flag.StringVar(&o.out, "out", "", "output Verilog netlist (required)")
	flag.StringVar(&o.sdcOut, "sdc", "", "output SDC constraints file")
	flag.StringVar(&o.blifOut, "blif", "", "output BLIF netlist (SIS export)")
	flag.BoolVar(&o.skipClean, "no-clean", false, "skip buffer/inverter-pair removal")
	flag.BoolVar(&o.cdet, "cdet", false, "use dual-rail completion detection instead of matched delay elements (§2.4.4)")
	flag.StringVar(&o.tbOut, "tb", "", "output a behavioural testbench skeleton (§4.8)")
	flag.BoolVar(&o.equivGate, "equiv", false, "model-check the inserted control network (deadlock, phase safety, flow equivalence)")
	flag.IntVar(&o.equivMaxStates, "equiv-max-states", 0, "marking budget for the -equiv gate (0: engine default)")
	flag.IntVar(&o.equivXval, "equiv-xval", 0, "cross-validate the -equiv model against N randomized simulator traces")
	cliutil.SeedVar(flag.CommandLine, &o.equivSeed, "equiv-seed", 1, "PRNG seed for -equiv-xval traces")
	cliutil.ParallelismVar(flag.CommandLine, &o.parallelism)
	flag.BoolVar(&o.faults, "faults", false, "run a fault-injection campaign on the desynchronized design")
	flag.IntVar(&o.faultCycles, "fault-cycles", 12, "campaign run length in clock periods")
	flag.IntVar(&o.faultsPerRegion, "faults-per-region", 2, "delay faults injected per region")
	flag.Parse()
	if (o.in == "") == (o.gen == "") || o.out == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Construction panics (library misuse, malformed internal state) that
	// escape the error paths become one-line diagnostics, not stack traces:
	// the tool's contract with scripts driving it is exit codes and stderr.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "drdesync: internal error: %v\n", r)
			os.Exit(3)
		}
	}()
	interrupted, err := cliutil.RunDrained(func(ctx context.Context) error {
		return run(ctx, o)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "drdesync:", err)
		if interrupted {
			fmt.Fprintln(os.Stderr, "drdesync: interrupted; the flow drained at a stage boundary")
		} else if stage := core.StageOf(err); stage != "" {
			fmt.Fprintf(os.Stderr, "drdesync: failed during the %s stage\n", stage)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, o runOpts) error {
	variant := stdcells.Variant(o.libVariant)
	if _, err := stdcells.NewChecked(variant); err != nil {
		return err
	}

	var src []byte
	if o.in != "" {
		var err error
		if src, err = os.ReadFile(o.in); err != nil {
			return err
		}
	}
	var fps []string
	if o.falsePaths != "" {
		fps = strings.Split(o.falsePaths, ",")
	}
	var mode core.Mode
	if o.cdet {
		mode = core.ModeCompletion
	}
	opts := core.Options{
		Backend:    o.backend,
		Mode:       mode,
		Period:     o.period,
		Margin:     o.margin,
		MuxTaps:    o.mux,
		FalsePaths: fps,
		// Pre-grouped generators (arm, the pipeline family) bake their
		// region assignment into the instances.
		ManualGroups: o.manualGroups || designs.PreGrouped(o.gen),
		SkipClean:    o.skipClean,
		Parallelism:  o.parallelism,
	}
	d, res, err := desynchronizeWithFallback(ctx, func() (*designState, error) {
		var dd *netlist.Design
		var err error
		if o.gen != "" {
			dd, err = designs.ParseSpec(o.gen, stdcells.New(variant))
		} else {
			dd, err = verilog.Read(string(src), stdcells.New(variant), o.top)
		}
		if err != nil {
			return nil, err
		}
		// Pre-import lint gate: reject structurally broken inputs before the
		// heavy pipeline touches them.
		if err := lintGate("pre-import", lint.CheckDesign(dd, lint.Options{}), os.Stderr); err != nil {
			return nil, err
		}
		if o.simplify {
			n := core.SimplifyNames(dd.Top)
			fmt.Printf("simplified %d names\n", n)
		}
		return &designState{d: dd}, nil
	}, opts, os.Stderr)
	if err != nil {
		return err
	}

	fmt.Printf("cleaned %d buffering cells\n", res.CleanedCells)
	fmt.Printf("regions: %d (+%d cells in group 0)\n", res.Grouping.Groups, res.Grouping.Group0)
	fmt.Printf("flip-flops substituted: %d (+%d helper gates)\n",
		res.Substitution.FFs, res.Substitution.ExtraGates)
	switch res.Backend {
	case core.BackendDesync:
		if err := desyncGates(ctx, d, res, o); err != nil {
			return err
		}
	case core.BackendTwoPhase:
		if err := twophaseGates(d, res, o); err != nil {
			return err
		}
	default:
		return fmt.Errorf("no gate pipeline for backend %q", res.Backend)
	}

	if err := os.WriteFile(o.out, []byte(verilog.Write(d)), 0o644); err != nil {
		return err
	}
	if o.sdcOut != "" {
		if err := os.WriteFile(o.sdcOut, []byte(res.Constraints.Write()), 0o644); err != nil {
			return err
		}
	}
	if o.tbOut != "" {
		if res.Backend != core.BackendDesync {
			fmt.Fprintf(os.Stderr, "drdesync: -tb drives the handshake reset protocol; not applicable to the %s backend, skipped\n", res.Backend)
		} else if err := os.WriteFile(o.tbOut, []byte(core.WriteTestbench(d, res, "", o.period)), 0o644); err != nil {
			return err
		}
	}
	if o.blifOut != "" {
		text, err := blif.Write(d.Top)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.blifOut, []byte(text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
