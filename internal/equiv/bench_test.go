package equiv

import (
	"testing"
	"time"

	"desync/internal/ctrlnet"
	"desync/internal/expt"
)

// dlxStates is the reduced reachable-marking count of the desynchronized
// DLX control network. It is pinned (rather than merely bounded) so that
// any change to the model construction or the partial-order reduction is
// a conscious decision: a silent growth here is how the gate stops being
// tractable.
const dlxStates = 4013

// dlxExploreBudget bounds one reduced exploration of the DLX network. The
// gate runs inside drdesync and make check; it must stay interactive.
const dlxExploreBudget = 30 * time.Second

// BenchmarkEquivDLX guards the formal gate's cost on the DLX case study:
// the reduced state count must stay exactly dlxStates and a single
// exploration must finish within dlxExploreBudget.
func BenchmarkEquivDLX(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatalf("DLX flow: %v", err)
	}
	m, err := FromModule(f.Desync.Top)
	if err != nil {
		b.Fatalf("FromModule: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res := m.Explore(ExploreOptions{})
		if d := time.Since(start); d > dlxExploreBudget {
			b.Fatalf("exploration took %v, budget %v", d, dlxExploreBudget)
		}
		if !res.Clean() {
			b.Fatalf("DLX network no longer verifies: %+v", res.Violation)
		}
		if res.States != dlxStates {
			b.Fatalf("reduced state count drifted: got %d, pinned %d (update the pin deliberately)", res.States, dlxStates)
		}
	}
	b.ReportMetric(float64(dlxStates), "markings")
}

// BenchmarkModelFromFreshDerive vs BenchmarkModelFromSharedNetwork price
// what the derive-once refactor buys: extraction on top of a private
// re-derivation of the control network versus extraction reusing the IR the
// rest of the run already holds.
func BenchmarkModelFromFreshDerive(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatalf("DLX flow: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromNetwork(f.Desync.Top, ctrlnet.DeriveFresh(f.Desync.Top)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelFromSharedNetwork(b *testing.B) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		b.Fatalf("DLX flow: %v", err)
	}
	cn := ctrlnet.Derive(f.Desync.Top)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromNetwork(f.Desync.Top, cn); err != nil {
			b.Fatal(err)
		}
	}
}
