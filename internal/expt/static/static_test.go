package static

import (
	"bytes"
	"strings"
	"testing"
)

// TestCrossCheckDLX runs the cross-check with the ARM flow skipped (its
// synthesis dominates wall-clock) and checks the static engine against
// both dynamic oracles on the two simulated case studies.
func TestCrossCheckDLX(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow build in -short mode")
	}
	tab, err := Run(Options{Reps: 2, SimCycles: 200, FIRSamples: 60, SkipARM: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want dlx and fir", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if !r.Live || !r.Safe {
			t.Errorf("%s: static verdict live=%v safe=%v, BFS proves both", r.Design, r.Live, r.Safe)
		}
		if r.SimNs <= 0 {
			t.Errorf("%s: no measured period", r.Design)
		}
		// The static period is an upper bound on the measured one, and on
		// these case studies a tight one.
		if r.StaticNs < r.SimNs-1e-6 {
			t.Errorf("%s: static bound %.5f below measured %.5f", r.Design, r.StaticNs, r.SimNs)
		}
		if r.StaticNs > r.SimNs*1.10 {
			t.Errorf("%s: static bound %.5f more than 10%% above measured %.5f", r.Design, r.StaticNs, r.SimNs)
		}
		if r.SSTANs <= 0 || r.SSTANs > r.StaticNs {
			t.Errorf("%s: SSTA 3σ logic delay %.5f should be a positive lower bound under %.5f",
				r.Design, r.SSTANs, r.StaticNs)
		}
		if r.BFSStates == 0 || r.StaticUS <= 0 || r.BFSUS <= 0 {
			t.Errorf("%s: missing timing data: %+v", r.Design, r)
		}
	}
	if tab.DLXFull.US <= 0 || tab.DLXFull.States == 0 {
		t.Errorf("missing full-interleaving baseline: %+v", tab.DLXFull)
	}

	var buf bytes.Buffer
	Render(&buf, tab)
	out := buf.String()
	for _, want := range []string{"dlx", "fir", "full interleaving", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
