package lint

import (
	"fmt"

	"desync/internal/ctrlnet"
	"desync/internal/netlist"
	"desync/internal/sdc"
	"desync/internal/twophase"
)

// tpChecker carries the state the TP-* rules share: the derived generator
// structure and the report under construction. The derivation lives in
// internal/twophase; the rules here only judge it — the same division of
// labor as the DS-* family over internal/ctrlnet.
type tpChecker struct {
	r *Report
	m *netlist.Module
	n *twophase.Network
}

// checkTwoPhase runs the TP-* family over one post-flow module.
func (r *Report) checkTwoPhase(m *netlist.Module, opts Options) {
	c := &tpChecker{r: r, m: m, n: twophase.Derive(m)}
	c.checkFFs()
	if c.n.Phi1 == "" && c.n.Phi2 == "" && len(c.n.Regions) == 0 {
		r.addf(RuleTPGen, Error, m.Name, "", "",
			"no two-phase generator found (no "+ctrlnet.TPSrcName+" instance); the design is not two-phase clocked")
		return
	}
	c.checkGenerator()
	c.checkPhases()
	c.checkOverlap(opts.Constraints)
	c.checkSDC(opts.Constraints)
}

// checkFFs: after substitution no flip-flop may remain (TP-FF).
func (c *tpChecker) checkFFs() {
	for _, in := range c.m.Insts {
		if in.Cell != nil && in.Cell.Kind == netlist.KindFF {
			c.r.addf(RuleTPFF, Error, c.m.Name, in.Name, "",
				fmt.Sprintf("flip-flop %s survived master/slave substitution", in.CellName()))
		}
	}
}

// checkGenerator judges the derived topology (TP-GEN): the ring must close
// through the source NOR, the splitter must be cross-coupled through the
// non-overlap chains, the phases must be distinct nets, and every region's
// distribution pair must tap the phase roots.
func (c *tpChecker) checkGenerator() {
	n := c.n
	if n.RingLevels < 1 {
		c.r.addf(RuleTPGen, Error, c.m.Name, ctrlnet.TPRingPrefix, "",
			"ring oscillator has no delay chain")
	}
	if !n.RingClosed {
		c.r.addf(RuleTPGen, Error, c.m.Name, ctrlnet.TPSrcName, "",
			"ring oscillator loop is not closed through the source NOR")
	}
	if !n.CrossCoupled {
		c.r.addf(RuleTPGen, Error, c.m.Name, ctrlnet.TPPhase1Name, "",
			"phase splitter is not cross-coupled through the non-overlap chains")
	}
	if n.Phi1 != "" && n.Phi1 == n.Phi2 {
		c.r.addf(RuleTPGen, Error, c.m.Name, "", n.Phi1,
			"phi1 and phi2 resolve to the same net")
	}
	for _, g := range n.Regions {
		if !n.Wired[g] {
			c.r.addf(RuleTPGen, Error, c.m.Name, ctrlnet.TPDistName(g, true), "",
				fmt.Sprintf("region %d distribution pair does not tap the phase roots", g))
		}
	}
}

// checkPhases colors every latch by the phase its enable resolves to
// (TP-PHASE): each enable must be rooted at exactly one phase through a
// distribution buffer, and a latch feeding another latch directly must sit
// on the opposite phase — the non-overlap guarantee is void if both ends
// of a transfer open together.
func (c *tpChecker) checkPhases() {
	// Phase roots and their distributed copies: the splitter outputs plus
	// every distribution buffer's output net.
	phaseOf := map[*netlist.Net]int{}
	if r := c.m.Net(c.n.Phi1); r != nil {
		phaseOf[r] = 1
	}
	if r := c.m.Net(c.n.Phi2); r != nil {
		phaseOf[r] = 2
	}
	for _, g := range c.n.Regions {
		for _, master := range []bool{true, false} {
			in := c.m.Inst(ctrlnet.TPDistName(g, master))
			if in == nil {
				continue
			}
			if src, out := in.Conn("A"), in.Conn("Z"); src != nil && out != nil {
				if p, ok := phaseOf[src]; ok {
					phaseOf[out] = p
				}
			}
		}
	}

	latchPhase := map[*netlist.Inst]int{}
	for _, in := range c.m.Insts {
		if in.Cell == nil || in.Cell.Kind != netlist.KindLatch {
			continue
		}
		en := in.Conn(in.Cell.Seq.ClockPin)
		if en == nil {
			c.r.addf(RuleTPPhase, Error, c.m.Name, in.Name, "",
				"latch enable pin unconnected")
			continue
		}
		p, ok := phaseOf[en]
		if !ok {
			c.r.addf(RuleTPPhase, Error, c.m.Name, in.Name, en.Name,
				"latch enable not rooted at a phase-distribution buffer")
			continue
		}
		latchPhase[in] = p
	}

	// Direct latch-to-latch transfers (the substituted master/slave pairs,
	// and any hand-wired equivalent) must alternate phases.
	for _, in := range c.m.Insts {
		p, ok := latchPhase[in]
		if !ok {
			continue
		}
		d := in.Conn("D")
		if d == nil || d.Driver.Inst == nil {
			continue
		}
		if src, ok := latchPhase[d.Driver.Inst]; ok && src == p {
			c.r.addf(RuleTPPhase, Error, c.m.Name, in.Name, d.Name,
				fmt.Sprintf("latch fed directly from %s on the same phase %d",
					d.Driver.Inst.Name, p))
		}
	}
}

// checkOverlap cross-checks the phase clock constraints (TP-OVERLAP): the
// netlist's non-overlap chains must exist, and the exported waveforms must
// keep a strict gap — phi1 falls before phi2 rises, phi2 falls before the
// period wraps back to phi1.
func (c *tpChecker) checkOverlap(cons *sdc.Constraints) {
	if c.n.Nov1Levels < 1 || c.n.Nov2Levels < 1 {
		c.r.addf(RuleTPOverlap, Error, c.m.Name, ctrlnet.TPNov1Prefix, "",
			fmt.Sprintf("non-overlap chains missing or empty (%d/%d levels)",
				c.n.Nov1Levels, c.n.Nov2Levels))
	}
	if cons == nil {
		c.r.addf(RuleTPOverlap, Info, c.m.Name, "", "",
			"no SDC constraints supplied; phase overlap not cross-checked")
		return
	}
	var phi1, phi2 *sdc.Clock
	for i := range cons.Clocks {
		switch cons.Clocks[i].Name {
		case "Phi1":
			phi1 = &cons.Clocks[i]
		case "Phi2":
			phi2 = &cons.Clocks[i]
		}
	}
	if phi1 == nil || phi2 == nil {
		c.r.addf(RuleTPOverlap, Error, c.m.Name, "", "",
			"constraints do not define both Phi1 and Phi2 clocks")
		return
	}
	if phi1.Waveform[1] >= phi2.Waveform[0] {
		c.r.addf(RuleTPOverlap, Error, c.m.Name, "", "",
			fmt.Sprintf("Phi1 falls at %.4g, Phi2 rises at %.4g: phases overlap",
				phi1.Waveform[1], phi2.Waveform[0]))
	}
	if phi2.Waveform[1] >= phi2.Period {
		c.r.addf(RuleTPOverlap, Error, c.m.Name, "", "",
			fmt.Sprintf("Phi2 falls at %.4g past the period %.4g: phases overlap at wrap",
				phi2.Waveform[1], phi2.Period))
	}
}

// checkSDC verifies the loop-breaking coverage (TP-SDC): the ring feedback
// and both splitter cross-coupling arcs must each carry a
// set_disable_timing so STA sees an acyclic graph.
func (c *tpChecker) checkSDC(cons *sdc.Constraints) {
	if cons == nil {
		c.r.addf(RuleTPSDC, Info, c.m.Name, "", "",
			"no SDC constraints supplied; loop coverage not cross-checked")
		return
	}
	covered := map[sdc.DisabledArc]bool{}
	for _, da := range cons.Disabled {
		covered[da] = true
	}
	for _, want := range []sdc.DisabledArc{
		{Inst: ctrlnet.TPSrcName, From: "B", To: "Z"},
		{Inst: ctrlnet.TPPhase1Name, From: "B", To: "Z"},
		{Inst: ctrlnet.TPPhase2Name, From: "B", To: "Z"},
	} {
		if !covered[want] {
			c.r.addf(RuleTPSDC, Error, c.m.Name, want.Inst, "",
				fmt.Sprintf("loop-breaking constraint missing for arc %s %s->%s",
					want.Inst, want.From, want.To))
		}
	}
}
