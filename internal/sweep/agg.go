package sweep

import (
	"math"
	"sort"

	"desync/internal/faults"
)

// Streaming aggregates: everything the sweep reports is folded record by
// record in scenario order, holds O(corners) state regardless of sweep
// size, and is a pure function of the record sequence — so a resumed run
// (journal prefix replayed, tail recomputed) reproduces the uninterrupted
// run's report byte for byte.

// Quantile is a P² (Jain & Chlamtac) streaming quantile estimator: five
// markers track the p-quantile of an unbounded stream in constant memory.
// It is deterministic in the insertion order, which the ordered fold fixes.
type Quantile struct {
	p    float64
	n    int
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	np   [5]float64 // desired marker positions
	dn   [5]float64 // desired position increments
	init []float64  // first five samples, before the markers exist
}

// NewQuantile estimates the p-quantile (0 < p < 1) of the stream.
func NewQuantile(p float64) *Quantile {
	return &Quantile{p: p, dn: [5]float64{0, p / 2, p, (1 + p) / 2, 1}}
}

// Add feeds one observation.
func (e *Quantile) Add(x float64) {
	if e.n < 5 {
		e.init = append(e.init, x)
		e.n++
		if e.n == 5 {
			sort.Float64s(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.pos[i] = float64(i + 1)
			}
			e.np = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
			e.init = nil
		}
		return
	}
	e.n++
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x < e.q[1]:
		k = 0
	case x < e.q[2]:
		k = 1
	case x < e.q[3]:
		k = 2
	case x <= e.q[4]:
		k = 3
	default:
		e.q[4] = x
		k = 3
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.np[i] += e.dn[i]
	}
	for i := 1; i <= 3; i++ {
		d := e.np[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			if qn := e.parabolic(i, s); e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Count is the number of observations fed so far.
func (e *Quantile) Count() int { return e.n }

// Value is the current estimate; with fewer than five observations it is
// the nearest-rank quantile of what arrived.
func (e *Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := append([]float64(nil), e.init...)
		sort.Float64s(s)
		k := int(e.p * float64(len(s)))
		if k >= len(s) {
			k = len(s) - 1
		}
		return s[k]
	}
	return e.q[2]
}

// WilsonCI is the 95% Wilson score interval for k detections in n trials —
// the right interval for rates near 1, where the sweep's detection rates
// live (a normal approximation would report [0.99, 1.01]).
func WilsonCI(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054
	p := float64(k) / float64(n)
	fn := float64(n)
	denom := 1 + z*z/fn
	center := p + z*z/(2*fn)
	half := z * math.Sqrt(p*(1-p)/fn+z*z/(4*fn*fn))
	lo = (center - half) / denom
	hi = (center + half) / denom
	// At the boundaries the Wilson bounds are exactly 0 and 1; pin them so
	// float roundoff cannot leak a 0.9999999999999998 into the report.
	if k == 0 || lo < 0 {
		lo = 0
	}
	if k == n || hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ClassCounts is one fault class's tally inside a corner.
type ClassCounts struct {
	Class    faults.Class `json:"class"`
	Injected int          `json:"injected"`
	Detected int          `json:"detected"`
}

// CornerStats aggregates one corner of the sweep. The count fields stream;
// the derived fields (rate, interval, quantile values) are filled by
// finalize so the JSON is self-contained.
type CornerStats struct {
	Corner   int     `json:"corner"`
	Scale    float64 `json:"scale"`
	Injected int     `json:"injected"`
	Detected int     `json:"detected"`
	Rate     float64 `json:"rate"`
	RateLo   float64 `json:"rate_lo"`
	RateHi   float64 `json:"rate_hi"`

	Classes []ClassCounts `json:"classes,omitempty"`

	// Period quantiles (ns, normalized to the nominal corner) over every
	// completed scenario that measured one — the robustness surface's
	// latency axis.
	PeriodN   int     `json:"period_n"`
	PeriodP50 float64 `json:"period_p50,omitempty"`
	PeriodP90 float64 `json:"period_p90,omitempty"`
	PeriodP99 float64 `json:"period_p99,omitempty"`

	Timeouts int `json:"timeouts,omitempty"`
	Panics   int `json:"panics,omitempty"`
	Errors   int `json:"errors,omitempty"`

	q50, q90, q99 *Quantile
}

func newCornerStats(corner int, scale float64) *CornerStats {
	return &CornerStats{
		Corner: corner, Scale: scale,
		q50: NewQuantile(0.5), q90: NewQuantile(0.9), q99: NewQuantile(0.99),
	}
}

func (cs *CornerStats) class(c faults.Class) *ClassCounts {
	for i := range cs.Classes {
		if cs.Classes[i].Class == c {
			return &cs.Classes[i]
		}
	}
	cs.Classes = append(cs.Classes, ClassCounts{Class: c})
	return &cs.Classes[len(cs.Classes)-1]
}

func (cs *CornerStats) finalize() {
	if cs.Injected > 0 {
		cs.Rate = float64(cs.Detected) / float64(cs.Injected)
	}
	cs.RateLo, cs.RateHi = WilsonCI(cs.Detected, cs.Injected)
	cs.PeriodN = cs.q50.Count()
	if cs.PeriodN > 0 {
		cs.PeriodP50 = cs.q50.Value()
		cs.PeriodP90 = cs.q90.Value()
		cs.PeriodP99 = cs.q99.Value()
	}
}

// FailureRef is one quarantined scenario kept in the report (the sweep
// keeps the first maxFailureRefs; the journal keeps them all).
type FailureRef struct {
	Index  int    `json:"index"`
	Corner int    `json:"corner"`
	Chip   int    `json:"chip"`
	Fault  int    `json:"fault"`
	Kind   Kind   `json:"kind"`
	Msg    string `json:"msg"`
}

// maxFailureRefs bounds the report's inline failure list; the count is
// always exact.
const maxFailureRefs = 16

// agg folds Records into the streaming state.
type agg struct {
	space        Space
	corners      []*CornerStats
	done         int
	detected     int
	injected     int
	failures     []FailureRef
	failureCount int
}

func newAgg(space Space) *agg {
	space = space.normalize()
	a := &agg{space: space}
	for i, s := range space.Corners {
		a.corners = append(a.corners, newCornerStats(i, s))
	}
	return a
}

// add folds one record. Called in strict scenario order.
func (a *agg) add(rec Record) {
	a.done++
	cs := a.corners[rec.Corner]
	if rec.Failure != nil {
		a.failureCount++
		switch rec.Failure.Kind {
		case KindPanic:
			cs.Panics++
		case KindTimeout:
			cs.Timeouts++
		default:
			cs.Errors++
		}
		if len(a.failures) < maxFailureRefs {
			a.failures = append(a.failures, FailureRef{
				Index: rec.Index, Corner: rec.Corner, Chip: rec.Chip, Fault: rec.Fault,
				Kind: rec.Failure.Kind, Msg: rec.Failure.Msg,
			})
		}
		return
	}
	o := rec.Outcome
	cs.Injected++
	a.injected++
	cc := cs.class(o.Fault.Class)
	cc.Injected++
	if o.Detected {
		cs.Detected++
		a.detected++
		cc.Detected++
	}
	if o.Period > 0 {
		cs.q50.Add(o.Period)
		cs.q90.Add(o.Period)
		cs.q99.Add(o.Period)
	}
}
