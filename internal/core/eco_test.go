package core

import (
	"context"
	"fmt"
	"testing"

	"desync/internal/designs"
	"desync/internal/netlist"
	"desync/internal/pnr"
)

// §6: post-layout ECO calibration of the delay elements. We place & route
// the desynchronized DLX, then artificially degrade one region's cloud
// wires so its element no longer covers, and verify the ECO both detects
// and repairs the shortfall.
func TestECOCalibration(t *testing.T) {
	lib := hs()
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Desynchronize(context.Background(), d, Options{Period: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := pnr.DefaultOptions()
	opts.Utilization = 0.91
	if _, err := pnr.PlaceAndRoute(d, opts); err != nil {
		t.Fatal(err)
	}

	// With the 1.15 sizing margin, the freshly routed design must pass the
	// check outright.
	rows, err := ECOCalibrate(context.Background(), d, res, 1.15, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 calibrated regions, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Covered {
			t.Fatalf("region %d uncovered right after layout: element %.3f vs budget %.3f",
				r.Region, r.ElementDelay, r.Budget)
		}
		if r.ElementDelay <= 0 || r.Budget <= 0 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
	}

	// Degrade the MEM region's cloud: inflate wire delays on nets feeding
	// its master latches (as if routing detoured them).
	victim := rows[0]
	for _, r := range rows {
		if r.Budget > victim.Budget {
			victim = r
		}
	}
	degraded := 0
	for _, in := range d.Top.Insts {
		if in.Group != victim.Region || in.Cell == nil || in.Cell.Kind != netlist.KindLatch {
			continue
		}
		if n := in.Conn("D"); n != nil {
			n.Wire = netlist.Delay{Best: 0.5, Worst: 1.5}
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("nothing degraded")
	}

	// Detection pass: the victim region must now be uncovered.
	rows2, err := ECOCalibrate(context.Background(), d, res, 1.15, false)
	if err != nil {
		t.Fatal(err)
	}
	var v2 *ECORow
	for i := range rows2 {
		if rows2[i].Region == victim.Region {
			v2 = &rows2[i]
		}
	}
	if v2 == nil || v2.Covered {
		t.Fatalf("degradation not detected: %+v", v2)
	}

	// Repair pass: splice levels until covered again.
	rows3, err := ECOCalibrate(context.Background(), d, res, 1.15, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows3 {
		if r.Region == victim.Region {
			if !r.Covered {
				t.Fatalf("ECO failed to repair region %d: %+v", r.Region, r)
			}
			if r.AddedLevels == 0 {
				t.Fatal("repair reported no added levels")
			}
			fmt.Printf("ECO added %d levels to region %d (element %.3f vs budget %.3f)\n",
				r.AddedLevels, r.Region, r.ElementDelay, r.Budget)
		}
	}
	if errs := d.Top.Check(); len(errs) > 0 {
		t.Fatalf("netlist broken after ECO: %v", errs[0])
	}
}
