package expt

import (
	"fmt"
	"strings"

	"desync/internal/core"
	"desync/internal/twophase"
)

// BackendCell is one backend's outcome on one design: the converted
// netlist's size and the cycle time the conversion commits to, with the
// overheads against the synchronous reference.
type BackendCell struct {
	Backend    string
	Cells      int
	CellArea   float64
	AreaOvhPct float64
	// Period is the backend's operating cycle time: the worst
	// launch-to-capture budget scaled by the sizing margin for the desync
	// backend (what the matched delay elements enforce), the generated
	// clock period for the twophase backend (what the ring oscillates at).
	Period       float64
	PeriodOvhPct float64
}

// BackendRow is one design's line of the comparison: the synchronous
// reference and every backend's conversion of it.
type BackendRow struct {
	Spec       string
	SyncCells  int
	SyncArea   float64
	SyncPeriod float64
	Backends   []BackendCell
}

// DefaultComparisonSpecs is the design set of the backend comparison: the
// three case studies plus one parametric pipeline, so the table covers both
// libraries, manual and automatic grouping, and a generator-driven design.
var DefaultComparisonSpecs = []string{
	"dlx", "arm", "fir", "pipeline:depth=8,width=16,regions=8",
}

// CompareBackends converts every spec with every backend and assembles the
// comparison rows. The synchronous reference (size and STA period) is taken
// once per spec from the first backend's run — the reference build is
// backend-independent by construction.
func CompareBackends(specs, backends []string, cfg FlowConfig) ([]BackendRow, error) {
	var rows []BackendRow
	for _, spec := range specs {
		row := BackendRow{Spec: spec}
		for _, be := range backends {
			c := cfg
			c.Backend = be
			f, err := RunGenFlow(spec, c)
			if err != nil {
				return nil, fmt.Errorf("%s with the %s backend: %w", spec, be, err)
			}
			if row.Backends == nil {
				sb := BreakdownOf(f.Sync.Top)
				row.SyncCells, row.SyncArea = sb.Cells, sb.CellArea
				row.SyncPeriod = f.Period
			}
			db := BreakdownOf(f.Desync.Top)
			cell := BackendCell{
				Backend: f.Result.Backend, Cells: db.Cells, CellArea: db.CellArea,
				Period: operatingPeriod(f.Result, cfg.Margin),
			}
			if row.SyncArea != 0 {
				cell.AreaOvhPct = (db.CellArea - row.SyncArea) / row.SyncArea * 100
			}
			if row.SyncPeriod != 0 {
				cell.PeriodOvhPct = (cell.Period - row.SyncPeriod) / row.SyncPeriod * 100
			}
			row.Backends = append(row.Backends, cell)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// operatingPeriod is the cycle time a conversion commits the design to.
// The twophase backend names it directly — the generated clock's period.
// The desync backend has no clock; its steady-state cycle is bounded by
// the slowest region's matched delay, i.e. the worst budget scaled by the
// sizing margin (the same quantity the delay elements were sized to cover).
func operatingPeriod(res *core.Result, margin float64) float64 {
	if tp, ok := res.BackendResult.(*twophase.Result); ok {
		return tp.Period
	}
	if margin == 0 {
		margin = 1.15
	}
	worst := 0.0
	for _, rd := range res.RegionDelays {
		if b := rd.Budget(); b > worst {
			worst = b
		}
	}
	return worst * margin
}

// RenderBackendTable prints the comparison in the report layout of
// EXPERIMENTS.md §Backend comparison.
func RenderBackendTable(rows []BackendRow) string {
	var sb strings.Builder
	sb.WriteString("Backend comparison: area and cycle time per conversion\n")
	fmt.Fprintf(&sb, "  %-36s %-10s %8s %14s %10s %12s %10s\n",
		"design", "backend", "cells", "area (um2)", "area +%", "period (ns)", "period +%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-36s %-10s %8d %14.2f %10s %12.3f %10s\n",
			r.Spec, "sync", r.SyncCells, r.SyncArea, "-", r.SyncPeriod, "-")
		for _, c := range r.Backends {
			fmt.Fprintf(&sb, "  %-36s %-10s %8d %14.2f %10.2f %12.3f %10.2f\n",
				"", c.Backend, c.Cells, c.CellArea, c.AreaOvhPct, c.Period, c.PeriodOvhPct)
		}
	}
	return sb.String()
}
