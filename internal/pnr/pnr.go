// Package pnr is the backend substrate of the flow (§4.7): floorplanning,
// clock/enable tree synthesis, row-based placement, and a wire-load model
// that annotates net delays for post-layout timing and simulation. It
// stands in for the commercial P&R tool and produces the post-layout rows
// of Tables 5.1/5.2: cell and net counts, standard-cell area, core size and
// utilization.
package pnr

import (
	"fmt"
	"math"
	"sort"

	"desync/internal/netlist"
)

// Options configures the backend run.
type Options struct {
	// Utilization is the floorplan target (the paper's DLX runs used ~95%
	// for the synchronous and ~91% for the desynchronized version).
	Utilization float64
	// RowHeight in µm; 2.6 matches a 90nm 7-track library.
	RowHeight float64
	// MaxFanout triggers buffer-tree synthesis on clock/enable-class nets.
	MaxFanout int
	// WirePerUm is the interconnect delay per µm of half-perimeter length.
	WirePerUm netlist.Delay
	// RegionAware places each desynchronization region contiguously, which
	// keeps the matched delay elements physically close to the logic they
	// track — the floorplanning constraint the paper's future-work section
	// proposes for maximal variability correlation (§6).
	RegionAware bool
}

// DefaultOptions returns backend settings used by the experiments.
func DefaultOptions() Options {
	return Options{
		Utilization: 0.95,
		RowHeight:   2.6,
		MaxFanout:   16,
		WirePerUm:   netlist.Delay{Best: 0.00012, Worst: 0.0003},
	}
}

// Report is the post-layout summary (the "Post Layout" block of the area
// tables).
type Report struct {
	Nets        int
	Cells       int
	StdCellArea float64 // µm²
	CoreArea    float64 // µm²
	Utilization float64 // %
	CTSBuffers  int
	Rows        int
}

// Layout holds placement results.
type Layout struct {
	Pos    map[*netlist.Inst][2]float64
	CoreW  float64
	CoreH  float64
	Report Report
}

// PlaceAndRoute runs the backend on a flat design: enable/clock tree
// synthesis, floorplan, placement, and wire-delay annotation. The module is
// modified in place (CTS buffers added, net Wire delays set).
func PlaceAndRoute(d *netlist.Design, opts Options) (*Layout, error) {
	if opts.Utilization <= 0 || opts.Utilization > 1 {
		return nil, fmt.Errorf("pnr: bad utilization %v", opts.Utilization)
	}
	m := d.Top
	for _, in := range m.Insts {
		if in.Sub != nil {
			return nil, fmt.Errorf("pnr: design not flat (%s)", in.Name)
		}
	}
	ctsBuffers, err := synthesizeTrees(d, opts.MaxFanout)
	if err != nil {
		return nil, err
	}

	// Floorplan.
	st := m.ComputeStats()
	coreArea := st.CellArea / opts.Utilization
	side := math.Sqrt(coreArea)
	rows := int(math.Ceil(side / opts.RowHeight))
	if rows < 1 {
		rows = 1
	}
	coreH := float64(rows) * opts.RowHeight
	coreW := coreArea / coreH

	// Placement: connectivity-driven linear order folded into rows;
	// region-aware mode orders region by region.
	var order []*netlist.Inst
	if opts.RegionAware {
		order = regionOrder(m)
	} else {
		order = connectivityOrder(m)
	}
	lay := &Layout{Pos: map[*netlist.Inst][2]float64{}, CoreW: coreW, CoreH: coreH}
	x, row := 0.0, 0
	rowCap := coreW
	for _, in := range order {
		w := in.Cell.Area / opts.RowHeight
		if x+w > rowCap && row < rows-1 {
			row++
			x = 0
		}
		cx := x + w/2
		if row%2 == 1 {
			cx = coreW - cx // boustrophedon: snake alternate rows
		}
		lay.Pos[in] = [2]float64{cx, (float64(row) + 0.5) * opts.RowHeight}
		x += w
	}

	// Wire model: HPWL per net.
	for _, n := range m.Nets {
		l := hpwl(lay, n)
		n.Wire = netlist.Delay{
			Best:  l * opts.WirePerUm.Best,
			Worst: l * opts.WirePerUm.Worst,
		}
	}

	lay.Report = Report{
		Nets:        len(m.Nets),
		Cells:       len(m.Insts),
		StdCellArea: st.CellArea,
		CoreArea:    coreArea,
		Utilization: st.CellArea / coreArea * 100,
		CTSBuffers:  ctsBuffers,
		Rows:        rows,
	}
	return lay, nil
}

// hpwl computes the half-perimeter wire length of a net.
func hpwl(lay *Layout, n *netlist.Net) float64 {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	add := func(in *netlist.Inst) {
		p, ok := lay.Pos[in]
		if !ok {
			return
		}
		minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
		minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
	}
	if n.Driver.Inst != nil {
		add(n.Driver.Inst)
	}
	for _, s := range n.Sinks {
		if s.Inst != nil {
			add(s.Inst)
		}
	}
	if math.IsInf(minX, 1) {
		return 0
	}
	return (maxX - minX) + (maxY - minY)
}

// connectivityOrder produces a BFS ordering over the instance adjacency so
// connected logic lands in nearby rows.
func connectivityOrder(m *netlist.Module) []*netlist.Inst {
	visited := map[*netlist.Inst]bool{}
	var order []*netlist.Inst
	// Deterministic seed order.
	seeds := append([]*netlist.Inst(nil), m.Insts...)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].Name < seeds[j].Name })
	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		queue := []*netlist.Inst{seed}
		visited[seed] = true
		for len(queue) > 0 {
			in := queue[0]
			queue = queue[1:]
			order = append(order, in)
			// Neighbours through all connected nets.
			var pins []string
			for _, pc := range in.Conns() {
				pin := pc.Pin
				pins = append(pins, pin)
			}
			sort.Strings(pins)
			for _, pin := range pins {
				n := in.Conn(pin)
				if len(n.Sinks) > 64 {
					continue // skip global nets: they connect everything
				}
				var nbrs []*netlist.Inst
				if n.Driver.Inst != nil {
					nbrs = append(nbrs, n.Driver.Inst)
				}
				for _, s := range n.Sinks {
					if s.Inst != nil {
						nbrs = append(nbrs, s.Inst)
					}
				}
				for _, nb := range nbrs {
					if !visited[nb] {
						visited[nb] = true
						queue = append(queue, nb)
					}
				}
			}
		}
	}
	return order
}

// regionOrder places whole regions contiguously: instances sorted by group
// then by connectivity within the group, with ungrouped cells last.
func regionOrder(m *netlist.Module) []*netlist.Inst {
	byGroup := map[int][]*netlist.Inst{}
	var groups []int
	for _, in := range m.Insts {
		if _, ok := byGroup[in.Group]; !ok {
			groups = append(groups, in.Group)
		}
		byGroup[in.Group] = append(byGroup[in.Group], in)
	}
	sort.Ints(groups)
	var order []*netlist.Inst
	for _, g := range groups {
		insts := byGroup[g]
		sort.Slice(insts, func(i, j int) bool { return insts[i].Name < insts[j].Name })
		order = append(order, insts...)
	}
	return order
}

// RegionSpread reports, per region, the mean distance of the region's
// matched-delay-element cells from the centroid of its logic — the metric
// the region-aware floorplan improves.
func RegionSpread(lay *Layout, m *netlist.Module) map[int]float64 {
	type acc struct {
		x, y float64
		n    int
	}
	centroid := map[int]*acc{}
	for _, in := range m.Insts {
		if in.Group <= 0 || in.Origin == "delem" {
			continue
		}
		p, ok := lay.Pos[in]
		if !ok {
			continue
		}
		a := centroid[in.Group]
		if a == nil {
			a = &acc{}
			centroid[in.Group] = a
		}
		a.x += p[0]
		a.y += p[1]
		a.n++
	}
	dist := map[int]*acc{}
	for _, in := range m.Insts {
		if in.Origin != "delem" || in.Group <= 0 {
			continue
		}
		c := centroid[in.Group]
		p, ok := lay.Pos[in]
		if c == nil || c.n == 0 || !ok {
			continue
		}
		cx, cy := c.x/float64(c.n), c.y/float64(c.n)
		a := dist[in.Group]
		if a == nil {
			a = &acc{}
			dist[in.Group] = a
		}
		a.x += math.Abs(p[0]-cx) + math.Abs(p[1]-cy)
		a.n++
	}
	out := map[int]float64{}
	for g, a := range dist {
		if a.n > 0 {
			out[g] = a.x / float64(a.n)
		}
	}
	return out
}

// synthesizeTrees builds balanced buffer trees on every net that drives
// more than maxFanout clock/enable-class pins — the CTS step that matches
// the depth of all latch-enable trees so the derived-clock constraints of
// Fig 4.2 hold (§4.5.1). Returns the number of buffers inserted.
func synthesizeTrees(d *netlist.Design, maxFanout int) (int, error) {
	if maxFanout < 2 {
		return 0, fmt.Errorf("pnr: max fanout %d too small", maxFanout)
	}
	m := d.Top
	buf := d.Lib.MustCell("CLKBUFX4")
	total := 0
	// Stable net order.
	nets := append([]*netlist.Net(nil), m.Nets...)
	sort.Slice(nets, func(i, j int) bool { return nets[i].Name < nets[j].Name })
	for _, n := range nets {
		var ctl []netlist.PinRef
		for _, s := range n.Sinks {
			if s.Inst == nil || s.Inst.Cell == nil {
				continue
			}
			pd := s.Inst.Cell.Pin(s.Pin)
			if pd == nil {
				continue
			}
			switch pd.Class {
			case netlist.ClassClock, netlist.ClassEnable, netlist.ClassAsyncSet,
				netlist.ClassAsyncReset, netlist.ClassScanEnable:
				ctl = append(ctl, s)
			}
		}
		if len(ctl) <= maxFanout {
			continue
		}
		// Detach the control sinks and rebuild them under a balanced
		// buffer tree rooted at the original net.
		for _, s := range ctl {
			m.Disconnect(s.Inst, s.Pin)
		}
		var drive func(src *netlist.Net, leaves []netlist.PinRef)
		drive = func(src *netlist.Net, leaves []netlist.PinRef) {
			if len(leaves) <= maxFanout {
				for _, s := range leaves {
					m.MustConnect(s.Inst, s.Pin, src)
				}
				return
			}
			chunks := maxFanout
			per := (len(leaves) + chunks - 1) / chunks
			for i := 0; i < len(leaves); i += per {
				end := i + per
				if end > len(leaves) {
					end = len(leaves)
				}
				total++
				nb := m.AddInst(fmt.Sprintf("%s_cts%d", sanitize(n.Name), total), buf)
				nb.Origin = "cts"
				out := m.AddNet(fmt.Sprintf("%s_cts%d_z", sanitize(n.Name), total))
				m.MustConnect(nb, "A", src)
				m.MustConnect(nb, "Z", out)
				drive(out, leaves[i:end])
			}
		}
		drive(n, ctl)
	}
	return total, nil
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}
