package netlist

// Index-based storage underneath the pointer-style API. The module's record
// arrays are slab-allocated (pointers into fixed-capacity chunks stay valid
// for the module's lifetime, and a million-record module costs hundreds of
// allocations instead of millions), every record carries a dense ID handle
// assigned at creation and never reused, and the name indices map interned
// name strings to IDs rather than pointers. Consumers keep the `*Net`/`*Inst`
// view; ID-addressed access (`NetByID`, `InstByID`, per-record `ID()`) is the
// index layer analyses build adjacency and scratch tables on.

// NetID is a dense handle for a net within its module: IDs are assigned in
// creation order starting at 0 and are never reused after removal, so a
// []T indexed by NetID is a valid side table across mutations.
type NetID int32

// InstID is the instance counterpart of NetID.
type InstID int32

// Sentinel IDs for "no net" / "no instance".
const (
	NoNet  NetID  = -1
	NoInst InstID = -1
)

// slabSize is the record count per slab chunk. Chunks are never reallocated
// (records are appended only up to the chunk's capacity), which is what keeps
// record pointers stable.
const slabSize = 4096

// slab is a chunked record allocator: alloc returns a stable pointer to a
// zeroed record.
type slab[T any] struct {
	chunks [][]T
}

func (s *slab[T]) alloc() *T {
	if len(s.chunks) == 0 || len(s.chunks[len(s.chunks)-1]) == slabSize {
		s.chunks = append(s.chunks, make([]T, 0, slabSize))
	}
	c := &s.chunks[len(s.chunks)-1]
	*c = append(*c, *new(T))
	return &(*c)[len(*c)-1]
}

// connChunkSize is the PinConn entry count per connection-arena chunk.
const connChunkSize = 8192

// connArena carves per-instance connection lists out of shared chunks.
// AddInst knows the instance's pin count, so each instance gets an
// exact-capacity window and never reallocates; a full module's connectivity
// lives in a few large arrays instead of one slice per instance.
type connArena struct {
	cur []PinConn
}

func (a *connArena) carve(capacity int) []PinConn {
	if capacity > connChunkSize {
		return make([]PinConn, 0, capacity)
	}
	if cap(a.cur)-len(a.cur) < capacity {
		a.cur = make([]PinConn, 0, connChunkSize)
	}
	off := len(a.cur)
	a.cur = a.cur[: off+capacity : cap(a.cur)]
	return a.cur[off : off : off+capacity]
}

// PinConn is one connection of an instance: the (interned) pin name, the
// pin's direction resolved once at Connect time, and the connected net.
// Entries are stored in connection order; the list is the instance-side half
// of the fanin/fanout adjacency (the net-side half is Net.Sinks/Net.Driver).
type PinConn struct {
	Pin string
	Net *Net
	Dir PinDir

	// mark is the validator's epoch stamp: a sink-list entry that resolved
	// to this connection during the current Validate pass. Stealing the
	// struct's padding byte-space keeps Validate allocation-free.
	mark uint32
}

// ID returns the net's dense handle within its module.
func (n *Net) ID() NetID { return n.id }

// Removed reports whether the net has been removed from its module (only
// observable between a bulk removal and the batch compaction).
func (n *Net) Removed() bool { return n.dead }

// ID returns the instance's dense handle within its module.
func (in *Inst) ID() InstID { return in.id }

// Removed reports whether the instance has been removed from its module
// (only observable between a bulk removal and the batch compaction).
func (in *Inst) Removed() bool { return in.dead }

// Conn returns the net connected to the named pin, or nil.
func (in *Inst) Conn(pin string) *Net {
	for i := range in.conns {
		if in.conns[i].Pin == pin {
			return in.conns[i].Net
		}
	}
	return nil
}

// Conns returns the instance's connections in connection order. The slice is
// a live view of the instance's storage: callers must not modify it, and
// mutators (Connect, Disconnect, RemoveInst) invalidate it.
func (in *Inst) Conns() []PinConn { return in.conns }

// connEntry returns the stored connection record for the pin, or nil.
func (in *Inst) connEntry(pin string) *PinConn {
	for i := range in.conns {
		if in.conns[i].Pin == pin {
			return &in.conns[i]
		}
	}
	return nil
}

// SetConnUnchecked sets or overwrites the pin's connection entry WITHOUT
// updating the net's driver/sink bookkeeping or the module's mutation
// counter. It exists so tests can manufacture the inconsistent states the
// validator must diagnose; flow code must use Connect/Disconnect.
func (in *Inst) SetConnUnchecked(pin string, n *Net) {
	if e := in.connEntry(pin); e != nil {
		e.Net = n
		return
	}
	dir := In
	if in.Cell != nil {
		if pd := in.Cell.Pin(pin); pd != nil {
			dir = pd.Dir
		}
	} else if in.Sub != nil {
		if p := in.Sub.Port(pin); p != nil {
			dir = p.Dir
		}
	}
	in.conns = append(in.conns, PinConn{Pin: pin, Net: n, Dir: dir})
}

// NetByID returns the net with the given handle, or nil if the ID is out of
// range or the net has been removed.
func (m *Module) NetByID(id NetID) *Net {
	if id < 0 || int(id) >= len(m.netsByID) {
		return nil
	}
	return m.netsByID[id]
}

// InstByID returns the instance with the given handle, or nil if the ID is
// out of range or the instance has been removed.
func (m *Module) InstByID(id InstID) *Inst {
	if id < 0 || int(id) >= len(m.instsByID) {
		return nil
	}
	return m.instsByID[id]
}

// NetIDBound returns the exclusive upper bound of net IDs ever assigned in
// this module; a side table of this length is indexable by every NetID.
func (m *Module) NetIDBound() int { return len(m.netsByID) }

// InstIDBound is the instance counterpart of NetIDBound.
func (m *Module) InstIDBound() int { return len(m.instsByID) }

// containsNet reports whether n is a live record of this module (O(1) via
// the ID index; safe on foreign or hand-built records).
func (m *Module) containsNet(n *Net) bool {
	return n != nil && n.id >= 0 && int(n.id) < len(m.netsByID) && m.netsByID[n.id] == n
}

func (m *Module) containsInst(in *Inst) bool {
	return in != nil && in.id >= 0 && int(in.id) < len(m.instsByID) && m.instsByID[in.id] == in
}

// BeginBulk enters bulk-mutation mode: RemoveInst/RemoveNet mark records
// dead and defer the order-preserving compaction of the Nets/Insts arrays to
// the matching EndBulk, turning k removals from k O(n) splices into one O(n)
// sweep. Calls nest. Between removal and compaction the slices still hold
// the dead records (check Removed()); the name and ID indices drop them
// immediately.
func (m *Module) BeginBulk() { m.bulkDepth++ }

// EndBulk leaves bulk-mutation mode, compacting the record arrays when the
// outermost bulk section closes.
func (m *Module) EndBulk() {
	if m.bulkDepth == 0 {
		panic("netlist: EndBulk without BeginBulk")
	}
	m.bulkDepth--
	if m.bulkDepth == 0 {
		m.compact()
	}
}

// compact removes dead records from the ordered Nets/Insts arrays in one
// order-preserving pass. A no-op when nothing is pending.
func (m *Module) compact() {
	if m.deadNets > 0 {
		w := 0
		for _, n := range m.Nets {
			if !n.dead {
				m.Nets[w] = n
				w++
			}
		}
		clear(m.Nets[w:])
		m.Nets = m.Nets[:w]
		m.deadNets = 0
	}
	if m.deadInsts > 0 {
		w := 0
		for _, in := range m.Insts {
			if !in.dead {
				m.Insts[w] = in
				w++
			}
		}
		clear(m.Insts[w:])
		m.Insts = m.Insts[:w]
		m.deadInsts = 0
	}
}

// dirtyLimit bounds the incremental-revalidation work lists; past it the
// next Validate falls back to a full scan.
const dirtyLimit = 4096

// validState is the incremental-revalidation baseline: the last clean
// Validate verdict plus the set of records mutated since. While a baseline
// holds and the dirty set is bounded, Validate rechecks only the dirty
// records (ECO splices, FF substitution windows) instead of rescanning the
// module.
type validState struct {
	ok            bool   // a clean baseline exists
	seq           uint64 // modseq at the baseline
	allowUndriven bool   // option the baseline was established under
	overflow      bool   // dirty set exceeded dirtyLimit; full scan required
	dirtyNets     []NetID
	dirtyInsts    []InstID
}

func (m *Module) touchNet(id NetID) {
	v := &m.valid
	if !v.ok || v.overflow {
		return
	}
	if len(v.dirtyNets)+len(v.dirtyInsts) >= dirtyLimit {
		v.overflow = true
		return
	}
	v.dirtyNets = append(v.dirtyNets, id)
}

func (m *Module) touchInst(id InstID) {
	v := &m.valid
	if !v.ok || v.overflow {
		return
	}
	if len(v.dirtyNets)+len(v.dirtyInsts) >= dirtyLimit {
		v.overflow = true
		return
	}
	v.dirtyInsts = append(v.dirtyInsts, id)
}

// noteClean records a fresh clean baseline at the current modseq.
func (m *Module) noteClean(opts ValidateOptions) {
	v := &m.valid
	v.ok = true
	v.seq = m.modseq
	v.allowUndriven = opts.AllowUndriven
	v.overflow = false
	v.dirtyNets = v.dirtyNets[:0]
	v.dirtyInsts = v.dirtyInsts[:0]
}

// dropBaseline forgets the incremental baseline (after a failed validation).
func (m *Module) dropBaseline() {
	v := &m.valid
	v.ok = false
	v.overflow = false
	v.dirtyNets = v.dirtyNets[:0]
	v.dirtyInsts = v.dirtyInsts[:0]
}

// scratchState holds the module's reusable validation/hash scratch buffers.
// Modules are single-goroutine during mutation and validation (the same
// contract the ModSeq derivation caches rely on), so one set per module
// keeps the hot paths allocation-free.
type scratchState struct {
	portSeen []uint32 // per-port epoch marks (validator)
	buf      []byte   // line buffer (hash writer)
	refs     []PinRef // sink sort scratch (hash writer)
	conns    []PinConn
}

// sortedCache memoizes the name-sorted net/instance orders on the module's
// mutation counter; ContentHash, SortedNets and the exporters share one
// sort per structural revision.
type sortedCache struct {
	seq   uint64
	valid bool
	nets  []*Net
	insts []*Inst
}
