package equiv

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"desync/internal/expt"
	"desync/internal/netlist"
)

var update = flag.Bool("update", false, "rewrite the golden counterexample traces")

// The known-bad fixtures: each mutation models a classic controller-network
// construction bug, and each must be caught purely formally with a concrete
// counterexample trace that the simulator then confirms dynamically. A nil
// confirm means the default: Replay forces the counterexample interleaving
// and requires the control-level watchdogs to corroborate it.
type fixture struct {
	name    string
	rules   []string // violation rules the mutation may legitimately trip
	mutate  func(t *testing.T, d *netlist.Design)
	confirm func(t *testing.T, f *expt.DLXFlow, m *Model, tr *Trace) string
}

var fixtures = []fixture{
	{
		// The master acknowledge of region 2 is cut, so its predecessors'
		// acknowledge joins never complete: a dropped ack channel wedges
		// the whole ring.
		name:  "dropped-ack",
		rules: []string{RuleDeadlock},
		mutate: func(t *testing.T, d *netlist.Design) {
			ai := d.Top.Inst("G2_Mctrl/ai")
			if ai == nil {
				t.Fatal("G2_Mctrl/ai not found")
			}
			d.Top.Disconnect(ai, "Z")
		},
	},
	{
		// Region 1's master and slave latch controllers exchange reset
		// phases (CGMX1 resets transparent, CGSX1 opaque): the region
		// comes out of reset with the slave open and the master closed,
		// off the synchronous master/slave discipline.
		name:  "swapped-phases",
		rules: []string{RuleSafety, RuleFlow, RuleDeadlock},
		mutate: func(t *testing.T, d *netlist.Design) {
			mg, sg := d.Top.Inst("G1_Mctrl/g"), d.Top.Inst("G1_Sctrl/g")
			if mg == nil || sg == nil {
				t.Fatal("G1 controller g cells not found")
			}
			mg.Cell = d.Lib.MustCell("CGSX1")
			sg.Cell = d.Lib.MustCell("CGMX1")
		},
		// The swapped-phase control network is hazard-free — the formal
		// violation is EQ-FLOW, not EQ-SAFE, so no illegal control state
		// exists for the replay watchdogs to trip on. Its dynamic shadow
		// is architectural: the slave latches the previous generation, so
		// the free-running design's PC/R7 trace diverges from the golden
		// model.
		confirm: func(t *testing.T, f *expt.DLXFlow, m *Model, tr *Trace) string {
			run, err := expt.MeasureDDLX(f, netlist.Worst, 1.0, -1, 20)
			if err != nil {
				return "free run stalled: " + err.Error()
			}
			if run.Correct {
				t.Fatal("free-running swapped-phase design still matched the golden architectural model")
			}
			return "free-running PC/R7 trace diverged from the golden architectural model"
		},
	},
	{
		// One leaf of region 4's request C-tree is rewired to duplicate
		// its sibling leg: the join fires without waiting for that
		// predecessor's request, so region 4 captures off schedule.
		name:  "missing-cinput",
		rules: []string{RuleFlow, RuleSafety},
		mutate: func(t *testing.T, d *netlist.Design) {
			c0 := d.Top.Inst("G4_reqC/c0")
			if c0 == nil {
				t.Fatal("G4_reqC/c0 not found")
			}
			dup := c0.Conn("A")
			if dup == nil || c0.Conn("B") == nil {
				t.Fatal("G4_reqC/c0 legs not wired as expected")
			}
			d.Top.Disconnect(c0, "B")
			d.Top.MustConnect(c0, "B", dup)
		},
	},
}

// TestKnownBadFixtures catches each construction bug formally, pins the
// counterexample against its golden trace under testdata/, and confirms it
// dynamically by replaying the interleaving on the mutated netlist.
func TestKnownBadFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			f, err := expt.RunDLXFlow(expt.FlowConfig{})
			if err != nil {
				t.Fatalf("DLX flow: %v", err)
			}
			fx.mutate(t, f.Desync)
			mod := f.Desync.Top

			m, err := FromModule(mod)
			if err != nil {
				t.Fatal(err)
			}
			res := mustExplore(t, m, ExploreOptions{})
			if res.Violation == nil {
				t.Fatalf("mutation not caught (states=%d truncated=%v)", res.States, res.Truncated)
			}
			if !ruleIn(res.Violation.Rule, fx.rules) {
				t.Fatalf("caught as %s, want one of %v: %s", res.Violation.Rule, fx.rules, res.Violation.Msg)
			}
			if len(res.Violation.Events) == 0 {
				t.Fatal("violation has no counterexample trace")
			}

			tr := res.CounterexampleTrace()
			golden := filepath.Join("testdata", fx.name+".json")
			if *update {
				var buf bytes.Buffer
				if err := WriteTrace(&buf, tr); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			gf, err := os.Open(golden)
			if err != nil {
				t.Fatalf("golden trace missing (run with -update): %v", err)
			}
			want, err := ReadTrace(gf)
			gf.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tr, want) {
				t.Errorf("counterexample drifted from golden %s:\n got rule %s with %d events\nwant rule %s with %d events\n(re-run with -update if the change is intended)",
					golden, tr.Rule, len(tr.Events), want.Rule, len(want.Events))
			}

			confirm := fx.confirm
			if confirm == nil {
				confirm = func(t *testing.T, f *expt.DLXFlow, m *Model, tr *Trace) string {
					rep, err := Replay(f.Desync.Top, m, tr, ReplayConfig{})
					if err != nil {
						t.Fatal(err)
					}
					if !rep.Confirmed {
						t.Fatalf("replay did not confirm the counterexample: %s", rep.Detail)
					}
					return rep.Detail
				}
			}
			detail := confirm(t, f, m, tr)
			t.Logf("%s: %s after %d states, %d-event counterexample; confirmed: %s",
				fx.name, res.Violation.Rule, res.States, len(tr.Events), detail)
		})
	}
}

func ruleIn(rule string, set []string) bool {
	for _, r := range set {
		if r == rule {
			return true
		}
	}
	return false
}
