package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"desync/internal/cdet"
	"desync/internal/ctrlnet"
	"desync/internal/handshake"
	"desync/internal/netlist"
	"desync/internal/sdc"
	"desync/internal/sta"
)

// SizeDelayElements computes, per region, the AND-chain depth whose
// worst-corner rise delay covers the region's launch-to-capture budget
// (§3.2.5): source clock-to-output + combinational critical path + setup,
// times the margin. Returns levels per region. The per-region budget
// extraction fans out over parallelism workers (0 = GOMAXPROCS).
func SizeDelayElements(ctx context.Context, d *netlist.Design, ddg *DDG, margin float64, parallelism int) (map[int]int, map[int]*sta.RegionDelay, error) {
	rds, err := sta.RegionDelays(ctx, d.Top, netlist.Worst, sta.Options{Parallelism: parallelism})
	if err != nil {
		return nil, nil, err
	}
	level, err := handshake.DelayLevel(d.Lib)
	if err != nil {
		return nil, nil, err
	}
	levels := map[int]int{}
	for _, g := range ddg.Nodes {
		budget := 0.0
		if rd := rds[g]; rd != nil {
			budget = rd.Budget()
		}
		n := int(math.Ceil(budget * margin / level))
		if n < 1 {
			n = 1
		}
		levels[g] = n
	}
	return levels, rds, nil
}

// InsertOptions controls the control-network insertion.
type InsertOptions struct {
	// Margin scales the matched delay elements over the measured budget.
	Margin float64
	// MuxTaps builds 8-tap multiplexed delay elements (Fig 5.3's
	// calibration knob) selected by new top-level ports delsel[2:0].
	MuxTaps bool
	// TapScales are the per-tap multipliers applied to the sized length
	// when MuxTaps is set; defaults to DefaultTapScales.
	TapScales []float64
	// Period is the original clock period used for the latch-enable clock
	// constraints (Fig 4.2); zero skips clock constraint generation.
	Period float64
	// CompletionDetection replaces each region's matched delay element
	// with a dual-rail completion network (§2.4.4): the request completes
	// when the region's outputs have actually resolved, giving
	// data-dependent average-case timing at ~2x combinational area.
	CompletionDetection bool
	// CompletionMargin is the extra slow-rise levels on each DONE signal.
	CompletionMargin int
}

// DefaultTapScales spreads eight taps below and above the sized length.
// Desynchronized latch pairs borrow time through transparency, so the
// request delay a region truly needs is well below the conservative
// launch+comb+setup budget the sizing uses (index 4 = 1.0); taps 0 and 1
// sit firmly below the failure boundary so the Fig 5.3 sweep shows the
// "too short delay elements" points at the same selections in both
// corners, with selection 2 the best working setup, as in the paper.
var DefaultTapScales = []float64{0.03, 0.07, 0.45, 0.7, 1.0, 1.4, 1.8, 2.2}

// InsertResult reports what the network insertion created.
type InsertResult struct {
	Controllers     int
	CTreeCells      int
	DelayCells      int
	CompletionCells int
	Constraints     *sdc.Constraints
	RstPort         string
	// EnvRequests lists input ports created for regions without
	// predecessors; EnvAcks lists input ports for regions without
	// successors (the testbench handshakes these, §4.8).
	EnvRequests, EnvAcks []string
	// Claim is the insertion's own record of the control network it built,
	// in the ctrlnet cross-check vocabulary: ctrlnet.Diff checks it against
	// the independently derived ctrlnet.Network at the end of the flow.
	Claim *ctrlnet.Claim
}

// InsertControlNetwork replaces the removed clock network with the latch
// controller network (§2.4, §3.2.6): one master/slave controller pair per
// region, C-Muller rendezvous for multiple requests/acknowledges, and one
// matched delay element per region on its request input. It also emits the
// backend constraints of §4.5–4.6.
func InsertControlNetwork(d *netlist.Design, ddg *DDG, enables map[int]EnableNets, levels map[int]int, opts InsertOptions) (*InsertResult, error) {
	m := d.Top
	lib := d.Lib
	res := &InsertResult{Constraints: &sdc.Constraints{}}
	claim := &ctrlnet.Claim{
		Module:  m,
		Regions: append([]int(nil), ddg.Nodes...),
		Preds:   map[int][]int{}, Succs: map[int][]int{},
		DelayLevels: map[int]int{}, MSLevels: map[int]int{},
		Completion: map[int]bool{},
	}
	for _, g := range ddg.Nodes {
		claim.Preds[g] = append([]int(nil), ddg.Preds[g]...)
		claim.Succs[g] = append([]int(nil), ddg.Succs[g]...)
	}
	res.Claim = claim

	// Reset port for the controllers.
	const rstName = "rst_desync"
	if m.Port(rstName) != nil {
		return nil, fmt.Errorf("core: port %s already exists", rstName)
	}
	rst := m.AddPort(rstName, netlist.In).Net
	res.RstPort = rstName

	// Tap-select ports when calibration muxes are requested.
	var sel []*netlist.Net
	tapScales := opts.TapScales
	if tapScales == nil {
		tapScales = DefaultTapScales
	}
	if opts.MuxTaps {
		for i := 0; i < 3; i++ {
			sel = append(sel, m.AddPort(fmt.Sprintf("delsel[%d]", i), netlist.In).Net)
		}
	}

	net := func(name string) *netlist.Net { return m.EnsureNet(name) }

	type regionNets struct {
		mri, mai, mro, sri, sai, sro *netlist.Net
	}
	rn := map[int]*regionNets{}
	for _, g := range ddg.Nodes {
		rn[g] = &regionNets{
			mri: net(ctrlnet.Name(g, "mri")), mai: net(ctrlnet.Name(g, "mai")),
			mro: net(ctrlnet.Name(g, "mro")), sri: net(ctrlnet.Name(g, "sri")),
			sai: net(ctrlnet.Name(g, "sai")), sro: net(ctrlnet.Name(g, "sro")),
		}
	}
	// Resolve each region's slave acknowledge source: the single
	// successor's master ack directly, a rendezvous net for several, or an
	// environment port for none.
	sao := map[int]*netlist.Net{}
	for _, g := range ddg.Nodes {
		switch succs := ddg.Succs[g]; len(succs) {
		case 0:
			port := ctrlnet.EnvAckPort(g)
			m.AddPort(port, netlist.In)
			sao[g] = m.Net(port)
			res.EnvAcks = append(res.EnvAcks, port)
			// The environment watches the slave's request to know when the
			// region's data is valid.
			if err := exposeNet(m, lib, ctrlnet.EnvReadyPort(g), rn[g].sro); err != nil {
				return nil, err
			}
		case 1:
			sao[g] = rn[succs[0]].mai
		default:
			sao[g] = net(ctrlnet.Name(g, "sao"))
		}
	}
	for _, g := range ddg.Nodes {
		en, ok := enables[g]
		if !ok {
			return nil, fmt.Errorf("core: region %d has no enable nets; run substitution first", g)
		}
		r := rn[g]
		mPrefix := ctrlnet.CtrlPrefix(g, true)
		sPrefix := ctrlnet.CtrlPrefix(g, false)
		if err := handshake.AddController(m, lib, mPrefix, true, handshake.ControllerPorts{
			Ri: r.mri, Ai: r.mai, Ro: r.mro, Ao: r.sai, G: en.Master, Rst: rst,
		}); err != nil {
			return nil, err
		}
		if err := handshake.AddController(m, lib, sPrefix, false, handshake.ControllerPorts{
			Ri: r.sri, Ai: r.sai, Ro: r.sro, Ao: sao[g], G: en.Slave, Rst: rst,
		}); err != nil {
			return nil, err
		}
		res.Controllers += 2
		// Master request feeds the slave through a short matched element
		// covering the master latch's enable-to-output plus the slave's
		// setup. This path is short, so intra-die mismatch is relatively
		// large on it: size with extra margin.
		msLevels := masterSlaveLevels(lib, opts.Margin+0.25)
		if err := handshake.AddDelayElement(m, lib, ctrlnet.MSDelayPrefix(g), r.mro, r.sri, rst, nil,
			handshake.DelayElementSpec{Levels: msLevels}); err != nil {
			return nil, err
		}
		res.DelayCells += msLevels + 1
		claim.MSLevels[g] = msLevels
		// Loop breaking and size-only constraints (§4.6).
		for _, p := range []string{mPrefix, sPrefix} {
			for _, a := range handshake.ControllerDisabledArcs(p) {
				res.Constraints.Disabled = append(res.Constraints.Disabled,
					sdc.DisabledArc{Inst: a[0], From: a[1], To: a[2]})
			}
		}
	}

	// Cross-region request/acknowledge wiring.
	for _, g := range ddg.Nodes {
		r := rn[g]
		preds := ddg.Preds[g]
		// Master request input: rendezvous of all predecessors' slave
		// requests, through this region's matched delay element.
		var reqSrc *netlist.Net
		switch len(preds) {
		case 0:
			// Environment provides the request and observes the acknowledge
			// (the testbench handshake of §4.8).
			port := ctrlnet.EnvRequestPort(g)
			m.AddPort(port, netlist.In)
			reqSrc = m.Net(port)
			res.EnvRequests = append(res.EnvRequests, port)
			if err := exposeNet(m, lib, ctrlnet.EnvReqAckPort(g), r.mai); err != nil {
				return nil, err
			}
		case 1:
			reqSrc = rn[preds[0]].sro
		default:
			join := net(ctrlnet.Name(g, "reqjoin"))
			var ins []*netlist.Net
			for _, p := range preds {
				ins = append(ins, rn[p].sro)
			}
			cells, err := handshake.AddCTree(m, lib, ctrlnet.CTreePrefix(g, true), ins, join)
			if err != nil {
				return nil, err
			}
			res.CTreeCells += cells
			reqSrc = join
		}
		completed := false
		reqFromCdet := ""
		if opts.CompletionDetection {
			built, doneInst, err := insertCompletion(m, lib, g, reqSrc, r.mri, opts.CompletionMargin, res)
			if err != nil {
				return nil, err
			}
			completed = built
			reqFromCdet = doneInst + "/A"
			if !built {
				// Regions without a combinational cloud (pure register
				// chains) fall back to a minimal matched element.
				levels[g] = 1
			}
		}
		claim.Completion[g] = completed
		reqFrom := reqFromCdet
		if !completed {
			lv := levels[g]
			if lv < 1 {
				lv = 1
			}
			spec := handshake.DelayElementSpec{Levels: lv}
			var selNets []*netlist.Net
			if opts.MuxTaps {
				spec = muxedSpec(lv, tapScales)
				selNets = sel
			}
			if err := handshake.AddDelayElement(m, lib, ctrlnet.DelayPrefix(g), reqSrc, r.mri, rst, selNets, spec); err != nil {
				return nil, err
			}
			res.DelayCells += spec.Levels
			claim.DelayLevels[g] = spec.Levels
			reqFrom = ctrlnet.ChainStage(ctrlnet.DelayPrefix(g), 1) + "/A"
		}
		// Constrain the request path min/max so timing-driven P&R keeps the
		// matched element matched (§4.6).
		res.Constraints.PointDelays = append(res.Constraints.PointDelays, sdc.PointDelay{
			From: reqFrom,
			To:   ctrlnet.CtrlGate(g, true, ctrlnet.GateG) + "/B",
			Min:  0,
			Max:  opts.Period,
		})

		// Slave acknowledge input: rendezvous of all successors' master
		// acknowledges (single- and zero-successor cases were wired when
		// the controllers were created).
		if succs := ddg.Succs[g]; len(succs) > 1 {
			var ins []*netlist.Net
			for _, s := range succs {
				ins = append(ins, rn[s].mai)
			}
			cells, err := handshake.AddCTree(m, lib, ctrlnet.CTreePrefix(g, false), ins, sao[g])
			if err != nil {
				return nil, err
			}
			res.CTreeCells += cells
		}
	}
	claim.EnvRequests = append([]string(nil), res.EnvRequests...)
	claim.EnvAcks = append([]string(nil), res.EnvAcks...)

	// Size-only markers for every controller-network cell (§4.6.2), and
	// region tags on them so region-aware placement can keep each
	// controller and delay element with the logic it serves (§6).
	for _, in := range m.Insts {
		if in.SizeOnly {
			res.Constraints.SizeOnly = append(res.Constraints.SizeOnly, in.Name)
		}
		if in.Group < 0 {
			if g, ok := ctrlnet.Region(in.Name); ok {
				in.Group = g
			}
		}
	}
	sort.Strings(res.Constraints.SizeOnly)

	// Latch-enable clock constraints (Fig 4.2): master and slave enables as
	// derived clocks with the original period; the master falling edge and
	// slave rising edge coincide at the original capture edge.
	if opts.Period > 0 {
		var mSrcs, sSrcs []string
		for _, g := range ddg.Nodes {
			mSrcs = append(mSrcs, ctrlnet.CtrlGate(g, true, ctrlnet.GateG)+"/Q")
			sSrcs = append(sSrcs, ctrlnet.CtrlGate(g, false, ctrlnet.GateG)+"/Q")
		}
		p := opts.Period
		res.Constraints.Clocks = append(res.Constraints.Clocks,
			sdc.Clock{Name: "ClkM", Period: p, Waveform: [2]float64{p / 2, p}, Sources: mSrcs, OnPins: true},
			sdc.Clock{Name: "ClkS", Period: p, Waveform: [2]float64{p, p + p/6}, Sources: sSrcs, OnPins: true},
		)
	}
	return res, nil
}

// insertCompletion shadows region g's combinational cloud with a dual-rail
// completion network (§2.4.4): go = the joined predecessor requests, done =
// the master's request input. Returns false when the region has no cloud to
// detect (pure register chains), and the instance name driving done.
func insertCompletion(m *netlist.Module, lib *netlist.Library, g int,
	goNet, done *netlist.Net, margin int, res *InsertResult) (bool, string, error) {

	var cloud []*netlist.Inst
	inCloud := map[*netlist.Inst]bool{}
	for _, in := range m.Insts {
		if in.Group != g || in.Cell == nil || in.Cell.Kind != netlist.KindComb {
			continue
		}
		switch in.Origin {
		case "ctrl", "delem", "cdet", "cts":
			continue
		}
		cloud = append(cloud, in)
		inCloud[in] = true
	}
	if len(cloud) == 0 {
		return false, "", nil
	}
	// Detect the nets that feed the region's sequential elements and are
	// driven by the cloud.
	seen := map[*netlist.Net]bool{}
	var detect []*netlist.Net
	for _, in := range m.Insts {
		if in.Group != g || in.Cell == nil || in.Cell.Seq == nil {
			continue
		}
		for _, pc := range in.Conns() {
			pin, n := pc.Pin, pc.Net
			pd := in.Cell.Pin(pin)
			if pd == nil || pd.Dir != netlist.In || pd.Class != netlist.ClassData {
				continue
			}
			if seen[n] || n.Driver.Inst == nil || !inCloud[n.Driver.Inst] {
				continue
			}
			seen[n] = true
			detect = append(detect, n)
		}
	}
	if len(detect) == 0 {
		return false, "", nil
	}
	sort.Slice(detect, func(i, j int) bool { return detect[i].Name < detect[j].Name })
	r, err := cdet.AddCompletionNetwork(m, lib, ctrlnet.CdetPrefix(g), cloud, detect, goNet, done, margin)
	if err != nil {
		return false, "", err
	}
	res.CompletionCells += r.RailCells + r.DetectCells
	return true, r.DoneInst, nil
}

// exposeNet publishes an internal handshake net on a new output port of the
// same name, buffered so the port has its own net.
func exposeNet(m *netlist.Module, lib *netlist.Library, port string, src *netlist.Net) error {
	p := m.AddPort(port, netlist.Out)
	b := m.AddInst(port+"_buf", lib.MustCell("BUFX1"))
	b.Origin = "ctrl"
	if err := m.Connect(b, "A", src); err != nil {
		return err
	}
	return m.Connect(b, "Z", p.Net)
}

// masterSlaveLevels sizes the master→slave request delay: the worst latch
// enable-to-output plus the worst latch setup, over one delay-element
// level's rise (resolved from the library's actual delay cell).
func masterSlaveLevels(lib *netlist.Library, margin float64) int {
	var c2q, setup float64
	for _, c := range lib.Cells {
		if c.Kind != netlist.KindLatch {
			continue
		}
		if a := c.Arc(c.Seq.ClockPin, c.Seq.Q); a != nil {
			c2q = math.Max(c2q, math.Max(a.Rise.Worst, a.Fall.Worst))
		}
		setup = math.Max(setup, c.Setup.Worst)
	}
	level, err := handshake.DelayLevel(lib)
	if err != nil || level <= 0 {
		return 2
	}
	n := int(math.Ceil((c2q + setup) * margin / level))
	if n < 2 {
		n = 2
	}
	return n
}

// muxedSpec builds an 8-tap spec spreading scales around the sized length.
func muxedSpec(base int, scales []float64) handshake.DelayElementSpec {
	taps := make([]int, 0, len(scales))
	last := 0
	for _, s := range scales {
		t := int(math.Ceil(float64(base) * s))
		if t <= last {
			t = last + 1
		}
		taps = append(taps, t)
		last = t
	}
	return handshake.DelayElementSpec{Levels: taps[len(taps)-1], Taps: taps}
}
