package main

import (
	"context"
	"errors"
	"fmt"
	"io"

	"desync/internal/core"
	"desync/internal/faults"
	"desync/internal/lint"
	"desync/internal/netlist"
)

// lintGate prints every finding of a gating report to w and fails when any
// Error-severity finding survives. The pre-import and post-export gates of
// the flow both go through here.
func lintGate(gate string, rep *lint.Report, w io.Writer) error {
	if len(rep.Findings) > 0 {
		fmt.Fprintf(w, "drdesync: %s lint:\n", gate)
		for _, f := range rep.Findings {
			fmt.Fprintf(w, "  %s\n", f)
		}
	}
	if n := rep.Errors(); n > 0 {
		return fmt.Errorf("%s lint gate failed with %d error(s)", gate, n)
	}
	return nil
}

// designState is one attempt's working copy. Desynchronize mutates the
// design in place, so every retry starts from a freshly built one.
type designState struct {
	d *netlist.Design
}

// maxMarginRetries bounds the under-margin auto-bump loop.
const maxMarginRetries = 3

// desynchronizeWithFallback runs the flow with two degradation policies
// instead of giving up:
//
//   - Grouping finds no regions → retry as a single region (the ARM-style
//     fallback of §5.3: when automatic grouping is not possible, the whole
//     design becomes one region). Correct but with coarser concurrency.
//   - A sized delay element under-covers its region (possible when the
//     margin is below 1.0) → bump the margin 15% and retry, up to
//     maxMarginRetries times.
//
// Both degradations print a warning to warnw; hard failures return the
// staged FlowError untouched.
func desynchronizeWithFallback(ctx context.Context, build func() (*designState, error),
	opts core.Options, warnw io.Writer) (*netlist.Design, *core.Result, error) {

	singleRegion := false
	for attempt := 0; ; attempt++ {
		st, err := build()
		if err != nil {
			return nil, nil, err
		}
		o := opts
		if singleRegion {
			for _, in := range st.d.Top.Insts {
				in.Group = 1
			}
			o.ManualGroups = true
		}
		// Per-stage lint: every netlist.Validate boundary also runs the
		// static netlist rules, so a stage that corrupts the structure is
		// caught at its own boundary, not at export.
		o.StageCheck = func(stage string, midFlow bool) error {
			rep := lint.Check(st.d.Top, lint.Options{MidFlow: midFlow})
			if n := rep.Errors(); n > 0 {
				return fmt.Errorf("lint: %d error(s), first: %s", n, rep.Findings[0])
			}
			return nil
		}
		res, err := core.Convert(ctx, st.d, o)
		switch {
		case err == nil && len(res.UnderMargin) > 0 && attempt < maxMarginRetries:
			bumped := opts.Margin
			if bumped == 0 {
				bumped = 1.15
			}
			bumped *= 1.15
			fmt.Fprintf(warnw, "drdesync: warning: delay elements under-cover regions %v at margin %.3g; retrying with margin %.3g\n",
				res.UnderMargin, opts.Margin, bumped)
			opts.Margin = bumped
			continue
		case err == nil:
			if len(res.UnderMargin) > 0 {
				fmt.Fprintf(warnw, "drdesync: warning: delay elements still under-cover regions %v after %d retries\n",
					res.UnderMargin, maxMarginRetries)
			}
			return st.d, res, nil
		case errors.Is(err, core.ErrNoRegions) && !singleRegion:
			fmt.Fprintf(warnw, "drdesync: warning: %v; falling back to a single region (§5.3)\n", err)
			singleRegion = true
			continue
		default:
			return nil, nil, err
		}
	}
}

// runFaultCampaign exercises the freshly desynchronized design with the
// default delay and control stuck-at fault sets and prints the report.
func runFaultCampaign(ctx context.Context, d *netlist.Design, res *core.Result, o runOpts, w io.Writer) error {
	period := o.period
	if period <= 0 {
		for _, rd := range res.RegionDelays {
			if b := rd.Budget(); b > period {
				period = b
			}
		}
		period *= 1.05
	}
	if period <= 0 {
		return fmt.Errorf("faults: cannot derive a period; pass -period")
	}
	cycles := o.faultCycles
	if cycles <= 0 {
		cycles = 12
	}
	c, err := faults.NewCampaign(ctx, d.Top, faults.Config{
		Stimulus:      faults.ResetStimulus(d.Top, 0),
		Horizon:       2 + period*float64(cycles)*6,
		QuiescenceGap: 8 * period,
		SetupGuard:    true,
		Parallelism:   o.parallelism,
	})
	if err != nil {
		return err
	}
	perRegion := o.faultsPerRegion
	if perRegion <= 0 {
		perRegion = 2
	}
	list := c.DelayFaults(40, perRegion)
	list = append(list, c.ControlStuckFaults()...)
	rep, err := c.Run(ctx, list)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, rep.Render())
	return err
}
