package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desync/internal/equiv"
	"desync/internal/expt"
	"desync/internal/verilog"
)

func TestCleanDLX(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-gen", "dlx"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"deadlock-freedom: proved", "phase safety:     proved", "flow equivalence: proved"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	// The -j flag must not change a single byte of the report.
	var out4, errb4 bytes.Buffer
	if code := run([]string{"-gen", "dlx", "-j", "4"}, &out4, &errb4); code != 0 {
		t.Fatalf("-j 4: exit %d, stderr: %s", code, errb4.String())
	}
	if !bytes.Equal(out.Bytes(), out4.Bytes()) {
		t.Errorf("report depends on -j:\n--- -j default ---\n%s\n--- -j 4 ---\n%s", out.String(), out4.String())
	}
}

func TestJSONReportRecordsSeed(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-gen", "arm", "-json", "-xval", "1", "-seed", "9"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var res equiv.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("JSON report did not parse: %v", err)
	}
	if !res.DeadlockFree || !res.Safe || !res.FlowEquivalent {
		t.Fatalf("ARM not proved clean: %+v", res)
	}
	if res.XVal == nil || res.XVal.Seed != 9 {
		t.Fatalf("cross-validation seed not recorded in the report: %+v", res.XVal)
	}
}

// TestViolationDumpAndReplay drives the whole counterexample life cycle
// through the CLI: a broken netlist read from a file is disproved (exit 1),
// its counterexample dumped, and the dump replayed through the simulator
// for dynamic confirmation (exit 0).
func TestViolationDumpAndReplay(t *testing.T) {
	f, err := expt.RunDLXFlow(expt.FlowConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ai := f.Desync.Top.Inst("G2_Mctrl/ai")
	if ai == nil {
		t.Fatal("G2_Mctrl/ai not found")
	}
	f.Desync.Top.Disconnect(ai, "Z")

	dir := t.TempDir()
	in := filepath.Join(dir, "broken.v")
	if err := os.WriteFile(in, []byte(verilog.Write(f.Desync)), 0o644); err != nil {
		t.Fatal(err)
	}
	ce := filepath.Join(dir, "ce.json")

	var out, errb bytes.Buffer
	code := run([]string{"-in", in, "-dump-ce", ce}, &out, &errb)
	if code != 1 {
		t.Fatalf("broken design: exit %d (want 1), stderr: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), equiv.RuleDeadlock) {
		t.Errorf("report does not name %s:\n%s", equiv.RuleDeadlock, out.String())
	}

	cf, err := os.Open(ce)
	if err != nil {
		t.Fatalf("counterexample not dumped: %v", err)
	}
	tr, err := equiv.ReadTrace(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rule != equiv.RuleDeadlock || len(tr.Events) == 0 {
		t.Fatalf("dumped trace rule=%s events=%d", tr.Rule, len(tr.Events))
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-in", in, "-replay", ce}, &out, &errb)
	if code != 0 {
		t.Fatalf("replay: exit %d, stderr: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "confirmed") || strings.Contains(out.String(), "NOT confirmed") {
		t.Errorf("replay did not confirm:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-gen", "dlx", "-in", "x.v"},
		{"-gen", "nonesuch"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
