package lint_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/lint"
	"desync/internal/netlist"
	"desync/internal/sdc"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

// -update regenerates the desynchronized fixtures (which are flow output,
// not hand-written) and every golden findings file. The nl_*.v fixtures are
// hand-written and never rewritten.
var update = flag.Bool("update", false, "regenerate generated fixtures and golden findings")

// fixture is one known-bad netlist under testdata: linting it must yield at
// least one finding of its rule, and the full report must match the golden.
type fixture struct {
	rule string
	file string                                   // Verilog netlist under testdata
	sdc  string                                   // optional SDC for the desync cross-checks (implies Desync)
	gen  func(t *testing.T, lib *netlist.Library) // regenerates file (+ sdc) under -update
}

func fixtures() []fixture {
	return []fixture{
		{rule: lint.RulePin, file: "nl_pin.v"},
		{rule: lint.RuleFloat, file: "nl_float.v"},
		{rule: lint.RuleLoop, file: "nl_loop.v"},
		{rule: lint.RuleCone, file: "nl_cone.v"},
		{rule: lint.RuleName, file: "nl_name.v"},
		{rule: lint.RuleFF, file: "ds_ff.v", sdc: "tiny.sdc", gen: genMutant(mutFF)},
		{rule: lint.RuleEnable, file: "ds_enable.v", sdc: "tiny.sdc", gen: genMutant(mutEnable)},
		{rule: lint.RulePhase, file: "ds_phase.v", sdc: "tiny.sdc", gen: genMutant(mutPhase)},
		{rule: lint.RulePair, file: "ds_pair.v", sdc: "tiny.sdc", gen: genMutant(mutPair)},
		{rule: lint.RuleCElem, file: "ds_celem.v", sdc: "tiny.sdc", gen: genMutant(mutCElem)},
		{rule: lint.RuleMargin, file: "ds_margin.v", sdc: "tiny.sdc", gen: genMutant(mutMargin)},
		{rule: lint.RuleSDC, file: "ds_sdc.v", sdc: "ds_sdc.sdc", gen: genSDCMutant},
	}
}

// buildTiny constructs and desynchronizes the three-region join pipeline
// all generated fixtures are mutations of: two parallel register banks
// rendezvousing into a third, so the control network has environment
// channels, a point-to-point channel and a C-element join.
func buildTiny(t *testing.T, lib *netlist.Library) (*netlist.Design, *core.Result) {
	t.Helper()
	b := designs.NewBuilder("tiny", lib)
	m := b.M
	clk := m.AddPort("clk", netlist.In).Net
	rstn := m.AddPort("rstn", netlist.In).Net
	da := b.InputBus("da", 2)
	db := b.InputBus("db", 2)
	q1 := b.RegBank("r1", da, clk, rstn, "q1")
	q2 := b.RegBank("r2", db, clk, rstn, "q2")
	x := make(designs.Bus, 2)
	for i := range x {
		x[i] = b.Xor(q1[i], q2[i])
		// The cloud groups with the region that captures it: the dependency
		// graph derives its edges from the reading instance's region.
		x[i].Driver.Inst.Group = 3
	}
	q3 := b.RegBank("r3", x, clk, rstn, "q3")
	for i, n := range b.OutputBus("dout", 2) {
		b.Gate("BUFX1", q3[i], n)
	}
	for _, in := range m.Insts {
		for prefix, g := range map[string]int{"r1[": 1, "r2[": 2, "r3[": 3} {
			if strings.HasPrefix(in.Name, prefix) {
				in.Group = g
			}
		}
	}
	d := &netlist.Design{Name: "tiny", Top: m, Modules: map[string]*netlist.Module{"tiny": m}, Lib: lib}
	res, err := core.Desynchronize(context.Background(), d, core.Options{Period: 2.0, ManualGroups: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

// genMutant regenerates one mutated netlist fixture plus the shared
// tiny.sdc (the unmutated constraints, identical for every mutant because
// the mutations never touch the control loops the SDC covers).
func genMutant(mut func(t *testing.T, m *netlist.Module, lib *netlist.Library)) func(*testing.T, *netlist.Library) {
	return func(t *testing.T, lib *netlist.Library) {
		d, res := buildTiny(t, lib)
		mut(t, d.Top, lib)
		writeFile(t, fixturePath(t.Name()), verilog.Write(d))
		writeFile(t, filepath.Join("testdata", "tiny.sdc"), res.Constraints.Write())
	}
}

// genSDCMutant leaves the netlist intact and strips the master controller
// of region 1 of its loop-breaking disables from the constraints.
func genSDCMutant(t *testing.T, lib *netlist.Library) {
	d, res := buildTiny(t, lib)
	writeFile(t, fixturePath(t.Name()), verilog.Write(d))
	cons := *res.Constraints
	var kept []sdc.DisabledArc
	for _, da := range cons.Disabled {
		if !strings.HasPrefix(da.Inst, "G1_Mctrl/") {
			kept = append(kept, da)
		}
	}
	if len(kept) == len(cons.Disabled) {
		t.Fatal("no G1_Mctrl disables found to strip")
	}
	cons.Disabled = kept
	writeFile(t, filepath.Join("testdata", "ds_sdc.sdc"), cons.Write())
}

func fixturePath(testName string) string {
	base := testName[strings.LastIndexByte(testName, '/')+1:]
	return filepath.Join("testdata", base)
}

func writeFile(t *testing.T, path, text string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustInst(t *testing.T, m *netlist.Module, name string) *netlist.Inst {
	t.Helper()
	in := m.Inst(name)
	if in == nil {
		t.Fatalf("fixture base design has no instance %q", name)
	}
	return in
}

func mustNet(t *testing.T, m *netlist.Module, name string) *netlist.Net {
	t.Helper()
	n := m.Net(name)
	if n == nil {
		t.Fatalf("fixture base design has no net %q", name)
	}
	return n
}

// dataPin returns a sequential cell's (sole) data input pin.
func dataPin(t *testing.T, cell *netlist.CellDef) string {
	t.Helper()
	for _, p := range cell.Pins {
		if p.Dir == netlist.In && p.Class == netlist.ClassData {
			return p.Name
		}
	}
	t.Fatalf("cell %s has no data pin", cell.Name)
	return ""
}

// mutFF plants a surviving flip-flop wired into live nets (DS-FF).
func mutFF(t *testing.T, m *netlist.Module, lib *netlist.Library) {
	ff := m.AddInst("zombie_ff", lib.MustCell("DFFRQX1"))
	m.MustConnect(ff, "D", mustNet(t, m, "G1_mri"))
	m.MustConnect(ff, "CK", mustNet(t, m, "G1_mro"))
	m.MustConnect(ff, "RN", m.Port("rst_desync").Net)
	m.MustConnect(ff, "Q", m.AddNet("zombie_q"))
}

// mutEnable reroutes one latch enable from its controller to the reset
// input (DS-ENABLE).
func mutEnable(t *testing.T, m *netlist.Module, lib *netlist.Library) {
	l := mustInst(t, m, "r1[0]/ml")
	ck := l.Cell.Seq.ClockPin
	m.Disconnect(l, ck)
	m.MustConnect(l, ck, m.Port("rst_desync").Net)
}

// mutPhase feeds a master latch from another region's master instead of its
// slave, breaking phase alternation (DS-PHASE).
func mutPhase(t *testing.T, m *netlist.Module, lib *netlist.Library) {
	dst := mustInst(t, m, "r3[0]/ml")
	src := mustInst(t, m, "r1[0]/ml")
	d := dataPin(t, dst.Cell)
	m.Disconnect(dst, d)
	m.MustConnect(dst, d, src.Conn(src.Cell.Seq.Q))
}

// mutPair rewires the join region's request away from its rendezvous net
// straight onto one predecessor (DS-PAIR).
func mutPair(t *testing.T, m *netlist.Module, lib *netlist.Library) {
	a1 := mustInst(t, m, "G3_delem/a1")
	m.Disconnect(a1, "B")
	m.MustConnect(a1, "B", mustNet(t, m, "G1_sro"))
}

// mutCElem collapses both legs of the request-join C-element onto one net,
// degenerating the rendezvous (DS-CELEM).
func mutCElem(t *testing.T, m *netlist.Module, lib *netlist.Library) {
	for _, in := range m.Insts {
		if strings.HasPrefix(in.Name, "G3_reqC/") && in.Cell != nil &&
			in.Cell.Kind == netlist.KindCElem {
			a := in.Conn("A")
			m.Disconnect(in, "B")
			m.MustConnect(in, "B", a)
			return
		}
	}
	t.Fatal("fixture base design has no G3_reqC C-element")
}

// mutMargin lengthens the datapath into region 3 with a buffer chain the
// matched delay element was not sized for (DS-MARGIN).
func mutMargin(t *testing.T, m *netlist.Module, lib *netlist.Library) {
	dst := mustInst(t, m, "r3[0]/ml")
	d := dataPin(t, dst.Cell)
	prev := dst.Conn(d)
	m.Disconnect(dst, d)
	for i := 0; i < 8; i++ {
		out := m.AddNet(fmt.Sprintf("slow%d", i))
		bu := m.AddInst(fmt.Sprintf("slowbuf%d", i), lib.MustCell("BUFX1"))
		m.MustConnect(bu, "A", prev)
		m.MustConnect(bu, "Z", out)
		prev = out
	}
	m.MustConnect(dst, d, prev)
}

// TestFixtures lints every known-bad netlist under testdata and compares
// the full report against its golden file; each fixture must fire its rule.
func TestFixtures(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	for _, fx := range fixtures() {
		t.Run(fx.file, func(t *testing.T) {
			if *update && fx.gen != nil {
				fx.gen(t, lib)
			}
			src, err := os.ReadFile(filepath.Join("testdata", fx.file))
			if err != nil {
				t.Fatal(err)
			}
			d, err := verilog.Read(string(src), lib, "")
			if err != nil {
				t.Fatal(err)
			}
			opts := lint.Options{}
			if fx.sdc != "" {
				text, err := os.ReadFile(filepath.Join("testdata", fx.sdc))
				if err != nil {
					t.Fatal(err)
				}
				cons, err := sdc.Parse(string(text))
				if err != nil {
					t.Fatal(err)
				}
				opts.Desync = true
				opts.Constraints = cons
			}
			rep := lint.Check(d.Top, opts)
			if len(rep.ByRule(fx.rule)) == 0 {
				t.Errorf("rule %s did not fire:\n%s", fx.rule, rep.Text())
			}
			goldenPath := filepath.Join("testdata", strings.TrimSuffix(fx.file, ".v")+".golden")
			got := rep.Text()
			if *update {
				writeFile(t, goldenPath, got)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("report drifted from %s:\n got:\n%s\nwant:\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestCorruptModuleFindings covers the two rules a Verilog fixture cannot
// express — the reader refuses double drivers at link time — by corrupting
// the in-memory bookkeeping the way a buggy flow stage would: a second
// output connection written straight into the Conns map fires both the
// wrapped validator (NL-VALIDATE) and the true-driver count (NL-MULTI).
func TestCorruptModuleFindings(t *testing.T) {
	lib := stdcells.New(stdcells.HighSpeed)
	m := netlist.NewModule("corrupt")
	a := m.AddPort("a", netlist.In).Net
	z := m.AddPort("z", netlist.Out).Net
	u1 := m.AddInst("u1", lib.MustCell("INVX1"))
	m.MustConnect(u1, "A", a)
	m.MustConnect(u1, "Z", z)
	u2 := m.AddInst("u2", lib.MustCell("INVX1"))
	m.MustConnect(u2, "A", a)
	u2.SetConnUnchecked("Z", z) // bypass Connect: the clash the bookkeeping cannot hold

	rep := lint.Check(m, lint.Options{})
	for _, rule := range []string{lint.RuleValidate, lint.RuleMulti} {
		if len(rep.ByRule(rule)) == 0 {
			t.Errorf("rule %s did not fire:\n%s", rule, rep.Text())
		}
	}
	goldenPath := filepath.Join("testdata", "nl_corrupt.golden")
	got := rep.Text()
	if *update {
		writeFile(t, goldenPath, got)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("report drifted from %s:\n got:\n%s\nwant:\n%s", goldenPath, got, want)
	}
}
