package netlist

import (
	"fmt"
	"slices"
	"strings"
)

// PinRef identifies one endpoint of a net: a pin of an instance, or (when
// Inst is nil) a port of the enclosing module.
type PinRef struct {
	Inst *Inst  // nil for module ports
	Pin  string // instance pin name or module port name
}

// String renders inst/pin or the bare port name.
func (r PinRef) String() string {
	if r.Inst == nil {
		return r.Pin
	}
	return r.Inst.Name + "/" + r.Pin
}

// Net is a single-bit wire. A net has at most one driver (instance output or
// module input port) and any number of sinks. Records are slab-allocated by
// their module; create nets with AddNet/EnsureNet, never by hand.
type Net struct {
	Name      string
	Driver    PinRef   // zero value (Inst==nil, Pin=="") means undriven
	Sinks     []PinRef // instance inputs and module output ports
	FalsePath bool     // marked via drdesync's command line to be ignored by grouping (§3.2.2)

	// Wire is the interconnect delay annotated by placement & routing;
	// zero before layout. Applied to every driver→sink hop of the net.
	Wire Delay

	id   NetID
	dead bool
}

// HasDriver reports whether the net has a driver.
func (n *Net) HasDriver() bool { return n.Driver.Inst != nil || n.Driver.Pin != "" }

// BusBase splits a bit-blasted bus net name "data[3]" into ("data", 3, true).
// Names without a [index] suffix return ok=false. The grouping bus heuristic
// (§3.2.2) relies on this: it only works when the synthesis tool has kept
// bus[n] naming rather than collapsing to bus_n.
func BusBase(name string) (base string, index int, ok bool) {
	if !strings.HasSuffix(name, "]") {
		return "", 0, false
	}
	i := strings.LastIndexByte(name, '[')
	if i < 0 {
		return "", 0, false
	}
	idx := 0
	digits := name[i+1 : len(name)-1]
	if digits == "" {
		return "", 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return "", 0, false
		}
		idx = idx*10 + int(c-'0')
	}
	return name[:i], idx, true
}

// Inst is an instance of a library cell or of a submodule (exactly one of
// Cell and Sub is non-nil). Connections are stored as an ordered list carved
// from the module's connection arena; read them with Conn/Conns. Records are
// slab-allocated by their module; create instances with AddInst/AddSubInst.
type Inst struct {
	Name string
	Cell *CellDef
	Sub  *Module

	// Group is the desynchronization region this instance belongs to;
	// -1 before grouping. Group 0 is the paper's catch-all region for
	// sequential elements registering circuit inputs.
	Group int

	// SizeOnly marks controller-internal gates that backend optimization may
	// resize but not restructure (§4.6.2).
	SizeOnly bool

	// Origin records which flow step created the instance ("" for cells
	// present in the imported netlist): "ffsub" for flip-flop substitution
	// products, "ctrl" for controller-network cells, "delem" for delay
	// elements, "cts" for enable-tree buffers, "scan" for DFT. The area
	// tables of §5 attribute "ffsub" gates to sequential logic, matching the
	// paper's accounting for the ARM scan design.
	Origin string

	// DelayFactor is this instance's intra-die variability multiplier applied
	// to all its timing arcs during simulation; 1.0 nominal.
	DelayFactor float64

	conns []PinConn
	id    InstID
	dead  bool
}

// CellName returns the library cell or submodule name.
func (in *Inst) CellName() string {
	if in.Cell != nil {
		return in.Cell.Name
	}
	return in.Sub.Name
}

// Port is a module-level port bound to an internal net of the same name.
type Port struct {
	Name string
	Dir  PinDir
	Net  *Net
}

// Module is a netlist: ports, nets and instances. Designs straight out of
// synthesis are flat modules of library cells; the Verilog reader may also
// build two-level hierarchies which Flatten collapses.
//
// Nets and Insts are the dense, insertion-ordered record views; they are
// maintained by the mutators and must be treated as read-only by consumers.
// Underneath, records live in slab chunks, carry dense NetID/InstID handles,
// and are indexed by interned-name tables mapping names to IDs.
type Module struct {
	Name  string
	Ports []*Port
	Nets  []*Net
	Insts []*Inst

	netByName  map[string]NetID
	instByName map[string]InstID
	netsByID   []*Net  // dense by NetID; nil after removal
	instsByID  []*Inst // dense by InstID; nil after removal

	netRecs  slab[Net]
	instRecs slab[Inst]
	arena    connArena

	bulkDepth int
	deadNets  int
	deadInsts int

	valid   validState
	scratch scratchState
	sorted  sortedCache
	epoch   uint32 // validator mark epoch

	// modseq counts structural mutations (nets, ports, instances,
	// connectivity). Derivation caches keyed on the module compare it to
	// decide whether a cached analysis is still valid.
	modseq uint64
}

// ModSeq returns the module's structural mutation counter. Two calls
// returning the same value bracket a window with no structural change, so an
// analysis derived inside it is still valid.
func (m *Module) ModSeq() uint64 { return m.modseq }

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:       name,
		netByName:  map[string]NetID{},
		instByName: map[string]InstID{},
	}
}

// AddNet creates a new named net. It is an error (panic) to reuse a name.
func (m *Module) AddNet(name string) *Net {
	if _, dup := m.netByName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate net %q in module %s", name, m.Name))
	}
	m.modseq++
	n := m.netRecs.alloc()
	n.Name = name
	n.id = NetID(len(m.netsByID))
	m.netsByID = append(m.netsByID, n)
	m.Nets = append(m.Nets, n)
	m.netByName[name] = n.id
	m.touchNet(n.id)
	return n
}

// Net returns the named net or nil.
func (m *Module) Net(name string) *Net {
	id, ok := m.netByName[name]
	if !ok {
		return nil
	}
	return m.netsByID[id]
}

// EnsureNet returns the named net, creating it if needed.
func (m *Module) EnsureNet(name string) *Net {
	if n := m.Net(name); n != nil {
		return n
	}
	return m.AddNet(name)
}

// AddPort declares a module port and binds it to a same-named net (creating
// the net if necessary). Input ports drive their net; output ports sink it.
func (m *Module) AddPort(name string, dir PinDir) *Port {
	n := m.EnsureNet(name)
	m.modseq++
	m.touchNet(n.id)
	p := &Port{Name: name, Dir: dir, Net: n}
	m.Ports = append(m.Ports, p)
	switch dir {
	case In:
		n.Driver = PinRef{Pin: name}
	case Out:
		n.Sinks = append(n.Sinks, PinRef{Pin: name})
	}
	return p
}

// AddPortOnNet declares a port bound to an existing net whose name may
// differ from the port's (used by the Verilog reader when assign aliases
// merge a port with another net).
func (m *Module) AddPortOnNet(name string, dir PinDir, n *Net) (*Port, error) {
	m.modseq++
	m.touchNet(n.id)
	p := &Port{Name: name, Dir: dir, Net: n}
	m.Ports = append(m.Ports, p)
	switch dir {
	case In:
		if n.HasDriver() {
			return nil, fmt.Errorf("netlist: input port %s on already-driven net %s", name, n.Name)
		}
		n.Driver = PinRef{Pin: name}
	case Out:
		n.Sinks = append(n.Sinks, PinRef{Pin: name})
	}
	return p, nil
}

// Port returns the named port or nil.
func (m *Module) Port(name string) *Port {
	for _, p := range m.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// AddInst creates an instance of a library cell with no connections.
func (m *Module) AddInst(name string, cell *CellDef) *Inst {
	return m.addInst(name, cell, nil, len(cell.Pins))
}

// AddSubInst creates an instance of a submodule.
func (m *Module) AddSubInst(name string, sub *Module) *Inst {
	return m.addInst(name, nil, sub, len(sub.Ports))
}

func (m *Module) addInst(name string, cell *CellDef, sub *Module, pins int) *Inst {
	if _, dup := m.instByName[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate instance %q in module %s", name, m.Name))
	}
	m.modseq++
	in := m.instRecs.alloc()
	in.Name = name
	in.Cell = cell
	in.Sub = sub
	in.Group = -1
	in.DelayFactor = 1
	in.conns = m.arena.carve(pins)
	in.id = InstID(len(m.instsByID))
	m.instsByID = append(m.instsByID, in)
	m.Insts = append(m.Insts, in)
	m.instByName[name] = in.id
	m.touchInst(in.id)
	return in
}

// Inst returns the named instance or nil.
func (m *Module) Inst(name string) *Inst {
	id, ok := m.instByName[name]
	if !ok {
		return nil
	}
	return m.instsByID[id]
}

// Connect attaches pin of inst to net, updating the net's driver/sink lists
// according to the pin direction. Connecting an output pin to an
// already-driven net is an error. The stored pin name is interned to the
// cell's (or submodule's) own pin-name string.
func (m *Module) Connect(in *Inst, pin string, net *Net) error {
	cpin, dir, err := m.pinOf(in, pin)
	if err != nil {
		return err
	}
	if old := in.Conn(cpin); old != nil {
		return fmt.Errorf("netlist: %s/%s already connected to %s", in.Name, pin, old.Name)
	}
	m.modseq++
	m.touchInst(in.id)
	m.touchNet(net.id)
	in.conns = append(in.conns, PinConn{Pin: cpin, Net: net, Dir: dir})
	ref := PinRef{Inst: in, Pin: cpin}
	if dir == Out {
		if net.HasDriver() {
			return fmt.Errorf("netlist: net %s has two drivers: %s and %s", net.Name, net.Driver, ref)
		}
		net.Driver = ref
	} else {
		net.Sinks = append(net.Sinks, ref)
	}
	return nil
}

// MustConnect is Connect that panics on error; for programmatic generators.
func (m *Module) MustConnect(in *Inst, pin string, net *Net) {
	if err := m.Connect(in, pin, net); err != nil {
		panic(err)
	}
}

// Disconnect removes the connection of pin on inst from its net.
func (m *Module) Disconnect(in *Inst, pin string) {
	var net *Net
	ci := -1
	for i := range in.conns {
		if in.conns[i].Pin == pin {
			net, ci = in.conns[i].Net, i
			break
		}
	}
	if net == nil {
		return
	}
	m.modseq++
	m.touchInst(in.id)
	m.touchNet(net.id)
	in.conns = append(in.conns[:ci], in.conns[ci+1:]...)
	ref := PinRef{Inst: in, Pin: pin}
	if net.Driver == ref {
		net.Driver = PinRef{}
		return
	}
	for i, s := range net.Sinks {
		if s == ref {
			net.Sinks = append(net.Sinks[:i], net.Sinks[i+1:]...)
			return
		}
	}
}

// DisconnectSinks removes every sink of net for which drop returns true, in
// one order-preserving pass, and splices the matching pin off each dropped
// instance. It is the batch counterpart of per-pin Disconnect for
// high-fanout nets: detaching k sinks from an n-sink net costs O(n + k·pins)
// instead of the k·O(n) of repeated Disconnect calls (quadratic on a clock
// net feeding every flip-flop). The driver is never touched.
func (m *Module) DisconnectSinks(net *Net, drop func(PinRef) bool) {
	w := 0
	for _, s := range net.Sinks {
		if s.Inst == nil || !drop(s) {
			net.Sinks[w] = s
			w++
			continue
		}
		in := s.Inst
		for i := range in.conns {
			if in.conns[i].Pin == s.Pin && in.conns[i].Net == net {
				in.conns = append(in.conns[:i], in.conns[i+1:]...)
				break
			}
		}
		m.touchInst(in.id)
	}
	if w == len(net.Sinks) {
		return
	}
	m.modseq++
	m.touchNet(net.id)
	clear(net.Sinks[w:])
	net.Sinks = net.Sinks[:w]
}

// RemoveInst removes the instance and all its connections. Inside a
// BeginBulk/EndBulk section the Insts array is compacted once at EndBulk;
// outside, the removal splices immediately.
func (m *Module) RemoveInst(in *Inst) {
	for len(in.conns) > 0 {
		m.Disconnect(in, in.conns[len(in.conns)-1].Pin)
	}
	m.modseq++
	delete(m.instByName, in.Name)
	if m.containsInst(in) {
		m.instsByID[in.id] = nil
	}
	in.dead = true
	if m.bulkDepth > 0 {
		m.deadInsts++
		return
	}
	for i, x := range m.Insts {
		if x == in {
			m.Insts = append(m.Insts[:i], m.Insts[i+1:]...)
			return
		}
	}
}

// RemoveNet removes an unconnected net. Inside a bulk section the Nets
// array is compacted at EndBulk.
func (m *Module) RemoveNet(n *Net) error {
	if n.HasDriver() || len(n.Sinks) > 0 {
		return fmt.Errorf("netlist: net %s still connected", n.Name)
	}
	m.modseq++
	delete(m.netByName, n.Name)
	if m.containsNet(n) {
		m.netsByID[n.id] = nil
	}
	n.dead = true
	if m.bulkDepth > 0 {
		m.deadNets++
		return nil
	}
	for i, x := range m.Nets {
		if x == n {
			m.Nets = append(m.Nets[:i], m.Nets[i+1:]...)
			break
		}
	}
	return nil
}

// RenameNet changes a net's name, keeping lookups consistent. The new name
// must be free.
func (m *Module) RenameNet(n *Net, name string) error {
	if _, taken := m.netByName[name]; taken {
		return fmt.Errorf("netlist: net name %q already in use", name)
	}
	m.modseq++
	m.touchNet(n.id)
	delete(m.netByName, n.Name)
	n.Name = name
	m.netByName[name] = n.id
	return nil
}

// ReplaceSinks moves every sink of from onto to (drivers are untouched).
// Used by logic cleaning when a buffer is removed.
func (m *Module) ReplaceSinks(from, to *Net) {
	m.modseq++
	m.touchNet(from.id)
	m.touchNet(to.id)
	for _, s := range from.Sinks {
		if s.Inst != nil {
			if e := s.Inst.connEntry(s.Pin); e != nil {
				e.Net = to
			}
			m.touchInst(s.Inst.id)
		} else {
			// Module output port: rebind the port to the surviving net.
			if p := m.Port(s.Pin); p != nil {
				p.Net = to
			}
		}
		to.Sinks = append(to.Sinks, s)
	}
	from.Sinks = nil
}

// pinOf resolves a pin name on the instance's cell or submodule, returning
// the interned (canonical) name string and the direction.
func (m *Module) pinOf(in *Inst, pin string) (string, PinDir, error) {
	if in.Cell != nil {
		pd := in.Cell.Pin(pin)
		if pd == nil {
			return "", In, fmt.Errorf("netlist: cell %s has no pin %q", in.Cell.Name, pin)
		}
		return pd.Name, pd.Dir, nil
	}
	p := in.Sub.Port(pin)
	if p == nil {
		return "", In, fmt.Errorf("netlist: module %s has no port %q", in.Sub.Name, pin)
	}
	return p.Name, p.Dir, nil
}

func (m *Module) pinDir(in *Inst, pin string) (PinDir, error) {
	_, dir, err := m.pinOf(in, pin)
	return dir, err
}

// Check validates structural sanity: every instance pin connected, every net
// with sinks has a driver, no unknown pins. It returns all problems found.
func (m *Module) Check() []error {
	m.compact()
	var errs []error
	for _, in := range m.Insts {
		var pins []PinDef
		if in.Cell != nil {
			pins = in.Cell.Pins
		} else {
			for _, p := range in.Sub.Ports {
				pins = append(pins, PinDef{Name: p.Name, Dir: p.Dir})
			}
		}
		for _, p := range pins {
			if in.Conn(p.Name) == nil {
				errs = append(errs, fmt.Errorf("%s: unconnected pin %s/%s", m.Name, in.Name, p.Name))
			}
		}
	}
	for _, n := range m.Nets {
		if len(n.Sinks) > 0 && !n.HasDriver() {
			errs = append(errs, fmt.Errorf("%s: net %s has sinks but no driver", m.Name, n.Name))
		}
	}
	return errs
}

// Stats summarizes a module for the area tables of §5.
type Stats struct {
	Nets       int
	Cells      int
	CellArea   float64 // total standard-cell area, µm²
	CombArea   float64
	SeqArea    float64
	FFs        int
	Latches    int
	CombGates  int
	OtherCells int
}

// ComputeStats walks the (flat) module and tallies cell counts and areas.
func (m *Module) ComputeStats() Stats {
	m.compact()
	var s Stats
	s.Nets = len(m.Nets)
	for _, in := range m.Insts {
		if in.Cell == nil {
			s.OtherCells++
			continue
		}
		s.Cells++
		s.CellArea += in.Cell.Area
		switch in.Cell.Kind {
		case KindFF:
			s.FFs++
			s.SeqArea += in.Cell.Area
		case KindLatch:
			s.Latches++
			s.SeqArea += in.Cell.Area
		case KindCElem, KindGC:
			s.SeqArea += in.Cell.Area
		default:
			s.CombGates++
			s.CombArea += in.Cell.Area
		}
	}
	return s
}

// SortedNets returns the nets sorted by name (stable output for writers).
func (m *Module) SortedNets() []*Net {
	return append([]*Net(nil), m.sortedNetsCached()...)
}

// sortedNetsCached returns the module-owned name-sorted net order, rebuilt
// only when the module has structurally changed since the last sort.
func (m *Module) sortedNetsCached() []*Net {
	m.refreshSorted()
	return m.sorted.nets
}

// sortedInstsCached is the instance counterpart of sortedNetsCached.
func (m *Module) sortedInstsCached() []*Inst {
	m.refreshSorted()
	return m.sorted.insts
}

func (m *Module) refreshSorted() {
	m.compact()
	if m.sorted.valid && m.sorted.seq == m.modseq {
		return
	}
	m.sorted.nets = append(m.sorted.nets[:0], m.Nets...)
	slices.SortFunc(m.sorted.nets, func(a, b *Net) int { return strings.Compare(a.Name, b.Name) })
	m.sorted.insts = append(m.sorted.insts[:0], m.Insts...)
	slices.SortFunc(m.sorted.insts, func(a, b *Inst) int { return strings.Compare(a.Name, b.Name) })
	m.sorted.seq = m.modseq
	m.sorted.valid = true
}

// Design couples a top module, its (optional) submodules and the library it
// is mapped to.
type Design struct {
	Name    string
	Top     *Module
	Modules map[string]*Module
	Lib     *Library
}

// NewDesign returns a design with a fresh top-level module of the same name.
func NewDesign(name string, lib *Library) *Design {
	top := NewModule(name)
	return &Design{Name: name, Top: top, Modules: map[string]*Module{name: top}, Lib: lib}
}

// Flatten collapses all submodule instances of the top module into library
// cell instances, prefixing inner names with "<inst>/". The paper's tool
// accepts a two-level netlist whose top contains only flattened submodules
// treated as regions (§3.2.2); Flatten records that origin in the Group
// field when assignGroups is true.
func (d *Design) Flatten(assignGroups bool) error {
	group := 1
	for {
		var sub *Inst
		for _, in := range d.Top.Insts {
			if in.Sub != nil {
				sub = in
				break
			}
		}
		if sub == nil {
			return nil
		}
		g := -1
		if assignGroups {
			g = group
			group++
		}
		if err := d.inline(sub, g); err != nil {
			return err
		}
	}
}

// inline expands one submodule instance into the top module.
func (d *Design) inline(in *Inst, group int) error {
	top, sub := d.Top, in.Sub
	prefix := in.Name + "/"
	// Map each submodule net to a top-level net: port nets bind to the
	// connected outer nets; internal nets get fresh prefixed names.
	netMap := map[*Net]*Net{}
	for _, p := range sub.Ports {
		outer := in.Conn(p.Name)
		if outer == nil {
			return fmt.Errorf("netlist: %s/%s unconnected during flatten", in.Name, p.Name)
		}
		netMap[p.Net] = outer
	}
	for _, n := range sub.Nets {
		if _, ok := netMap[n]; !ok {
			netMap[n] = top.EnsureNet(prefix + n.Name)
		}
	}
	// Remove the submodule instance before re-creating its contents so the
	// outer nets' driver slots are free.
	top.RemoveInst(in)
	for _, si := range sub.Insts {
		var ni *Inst
		if si.Cell != nil {
			ni = top.AddInst(prefix+si.Name, si.Cell)
		} else {
			ni = top.AddSubInst(prefix+si.Name, si.Sub)
		}
		ni.Group = group
		ni.SizeOnly = si.SizeOnly
		for _, pc := range si.Conns() {
			if err := top.Connect(ni, pc.Pin, netMap[pc.Net]); err != nil {
				return err
			}
		}
	}
	return nil
}
