package core

import (
	"errors"
	"fmt"
)

// Flow stage names, in pipeline order. FlowError.Stage is always one of
// these, so callers (cmd/drdesync's degradation logic, tests) can switch on
// them without string guessing.
const (
	StageImport     = "import"
	StageClean      = "clean"
	StageGroup      = "group"
	StageSubstitute = "substitute"
	StageSize       = "size"
	StageGenerate   = "generate"
	StageExport     = "export"
	StageStatic     = "static"
	StageEquiv      = "equiv"
)

// Stages lists the in-flow pipeline stages in execution order — exactly the
// sequence Options.Progress observes on a full run (StageClean is skipped
// under SkipClean). StageStatic and StageEquiv are post-export gate stages
// run by the drivers, not by Desynchronize itself.
var Stages = []string{
	StageImport, StageClean, StageGroup, StageSubstitute,
	StageSize, StageGenerate, StageExport,
}

// ErrNoRegions reports that grouping produced no desynchronization regions
// (no sequential logic outside the catch-all group 0); the caller may retry
// with a manual single-region assignment.
var ErrNoRegions = errors.New("no desynchronization regions")

// ErrUnderMargin reports that a sized delay element does not cover its
// region's launch-to-capture budget (margin < 1); the caller may bump the
// margin and retry.
var ErrUnderMargin = errors.New("delay element under margin")

// FlowError ties a failure to the desynchronization stage that produced it,
// so the command line can report where the pipeline broke and decide whether
// a degraded retry (single region, bumped margin) makes sense.
type FlowError struct {
	Stage  string // one of the Stage* constants
	Design string // top module name
	Detail string // optional human context (e.g. "post-stage validation")
	Err    error
}

func (e *FlowError) Error() string {
	msg := fmt.Sprintf("core: %s: stage %s", e.Design, e.Stage)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg + ": " + e.Err.Error()
}

func (e *FlowError) Unwrap() error { return e.Err }

// StageOf returns the flow stage recorded in err's FlowError, or "" when err
// carries none.
func StageOf(err error) string {
	var fe *FlowError
	if errors.As(err, &fe) {
		return fe.Stage
	}
	return ""
}

func flowErr(stage string, d string, detail string, err error) error {
	return &FlowError{Stage: stage, Design: d, Detail: detail, Err: err}
}
