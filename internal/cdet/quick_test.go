package cdet

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
)

// Property: for random small clouds built from random gates, the completion
// network never signals done before every detected output has settled, for
// every input vector — the bundling requirement the whole scheme rests on.
func TestQuickCompletionBoundsRandomClouds(t *testing.T) {
	lib := hs()
	gates := []string{"AND2X1", "OR2X1", "NAND2X1", "NOR2X1", "XOR2X1", "ANDN2X1", "AOI21X1", "MUX2X1"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := netlist.NewModule("m")
		nIn := 3 + rng.Intn(3)
		var pool []*netlist.Net
		for i := 0; i < nIn; i++ {
			pool = append(pool, m.AddPort(fmt.Sprintf("in[%d]", i), netlist.In).Net)
		}
		var cloud []*netlist.Inst
		nGates := 3 + rng.Intn(6)
		var outs []*netlist.Net
		for gi := 0; gi < nGates; gi++ {
			cell := lib.MustCell(gates[rng.Intn(len(gates))])
			g := m.AddInst(fmt.Sprintf("g%d", gi), cell)
			for _, pin := range cell.Inputs() {
				m.MustConnect(g, pin, pool[rng.Intn(len(pool))])
			}
			out := m.AddNet(fmt.Sprintf("w%d", gi))
			m.MustConnect(g, cell.Outputs()[0], out)
			pool = append(pool, out)
			cloud = append(cloud, g)
			outs = append(outs, out)
		}
		goNet := m.AddPort("go", netlist.In).Net
		done := m.AddPort("done", netlist.Out).Net
		if _, err := AddCompletionNetwork(m, lib, "cd", cloud, outs, goNet, done, 0); err != nil {
			t.Fatal(err)
		}
		if errs := m.Check(); len(errs) > 0 {
			t.Fatalf("check: %v", errs[0])
		}

		s, err := sim.New(m, sim.Config{Corner: netlist.Worst})
		if err != nil {
			t.Fatal(err)
		}
		var lastData, doneRise float64
		for _, n := range outs {
			name := n.Name
			s.OnChange(name, func(tm float64, v logic.V) {
				if tm > lastData {
					lastData = tm
				}
			})
		}
		s.OnChange("done", func(tm float64, v logic.V) {
			if v == logic.H {
				doneRise = tm
			}
		})
		for vec := 0; vec < 1<<nIn; vec++ {
			s.Drive("go", logic.L, s.Now()+1)
			if err := s.RunUntilQuiescent(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < nIn; i++ {
				s.Drive(fmt.Sprintf("in[%d]", i), logic.FromBool(vec>>i&1 == 1), s.Now()+1)
			}
			if err := s.RunUntilQuiescent(); err != nil {
				t.Fatal(err)
			}
			lastData, doneRise = 0, 0
			s.Drive("go", logic.H, s.Now()+1)
			if err := s.RunUntilQuiescent(); err != nil {
				t.Fatal(err)
			}
			if s.Value("done") != logic.H {
				t.Logf("seed %d vec %d: done never rose", seed, vec)
				return false
			}
			if doneRise < lastData {
				t.Logf("seed %d vec %d: done %.4f before data %.4f", seed, vec, doneRise, lastData)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
