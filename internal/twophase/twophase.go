// Package twophase is the two-phase non-overlapping clocking backend of
// the conversion flow. Where the desync backend replaces the removed clock
// tree with the paper's handshake controller network, this backend drives
// the same master/slave latches from an on-chip two-phase clock generator:
//
//   - a ring oscillator — one NOR gate (reset input plus ring feedback)
//     closed through a symmetric buffer chain whose depth sets the
//     half-period, sized off the same per-region STA budgets the desync
//     backend uses for its matched delay elements;
//   - a cross-coupled NOR phase splitter producing phi1 (master enables)
//     and phi2 (slave enables), with delay-sized feedback chains that
//     guarantee the two phases never overlap;
//   - one pair of phase-distribution buffers per region, driving the
//     master and slave latch-enable nets the shared flip-flop
//     substitution created.
//
// The result is synchronous in rhythm but self-timed in origin: no
// external clock port survives, the period is set by the sized ring, and
// the non-overlap gap makes race-through between the latch phases
// structurally impossible. The backend reuses the flow's shared SDC
// vocabulary — derived clocks with explicit waveforms, loop-breaking
// disabled arcs, size-only markers — so the same backend tooling consumes
// either backend's constraints.
package twophase

import (
	"fmt"
	"math"
	"sort"

	"desync/internal/ctrlnet"
	"desync/internal/handshake"
	"desync/internal/netlist"
	"desync/internal/sdc"
	"desync/internal/sta"
)

// RstPortName is the generator's reset input. While high, the ring is
// frozen and the generator parks with phi2 asserted (slaves transparent,
// masters opaque); the first phi1 pulse after release latches the initial
// data into the masters.
const RstPortName = "rst_2phase"

// Cell names the generator is built from. The ring and non-overlap chains
// use handshake.AddSymmetricDelayElement's BUFX1 stages; the splitter and
// source are NORs so reset folds into the oscillator for free; the
// per-region distribution uses the library's clock buffer.
const (
	srcCellName  = "NOR2X1"
	distCellName = "CLKBUFX2"
	ringCellName = "BUFX1"
)

// Enable is one region's latch-enable net pair, as created by the shared
// flip-flop substitution: Master opens the masters (phi1), Slave the
// slaves (phi2).
type Enable struct {
	Master, Slave *netlist.Net
}

// Sizing is the generator's timing parameterization, derived from the
// per-region STA budgets exactly where the desync backend derives its
// delay-element depths.
type Sizing struct {
	// RingLevels is the symmetric buffer-chain depth of the ring; one
	// traversal (plus the source NOR) is the half-period.
	RingLevels int
	// NovLevels is the depth of each non-overlap feedback chain.
	NovLevels int
	// HalfPeriod and Period are the achieved ring timings at the worst
	// corner (ns).
	HalfPeriod, Period float64
	// NonOverlap is the achieved gap between one phase falling and the
	// other rising (ns).
	NonOverlap float64
	// MaxBudget is the worst per-region launch-to-capture budget the
	// sizing covered (ns).
	MaxBudget float64
}

// Claim is what the generate stage says it built, in the same
// claim-versus-derivation discipline as the desync backend: Verify diffs
// it against the structure Derive extracts from the exported netlist.
type Claim struct {
	Regions    []int // sorted
	RingLevels int
	NovLevels  int
}

// Result reports everything the backend produced; it rides on
// core.Result.BackendResult.
type Result struct {
	Sizing
	// Regions lists the regions that received distribution buffers.
	Regions []int
	// GenCells counts the generator core (source, inverter, splitter,
	// ring and non-overlap chains); DistBufs the per-region buffers.
	GenCells, DistBufs int
	RstPort            string
	Constraints        *sdc.Constraints
	Claim              *Claim
}

// cellLevel returns a cell's average A→Z propagation at the worst corner —
// the per-stage quantum for ring and non-overlap chains, averaged over
// rise and fall because an oscillating node alternates between them.
func cellLevel(lib *netlist.Library, cell, from string) (float64, error) {
	c, err := lib.Cell(cell)
	if err != nil {
		return 0, fmt.Errorf("twophase: %w", err)
	}
	arc := c.Arc(from, "Z")
	if arc == nil {
		return 0, fmt.Errorf("twophase: cell %s has no %s->Z arc", cell, from)
	}
	return (arc.Rise.At(netlist.Worst) + arc.Fall.At(netlist.Worst)) / 2, nil
}

// SizeGenerator computes the ring and non-overlap chain depths for the
// given regions. The target period is the worst region budget times the
// margin — the same rule that sizes the desync backend's matched delay
// elements — never faster than the design's original synchronous period
// when one was given. The non-overlap gap covers the worst latch
// enable-to-output, so data released by a closing phase can never race
// through the other phase's still-open latches.
func SizeGenerator(lib *netlist.Library, regions []int, rds map[int]*sta.RegionDelay,
	margin, period float64) (*Sizing, error) {

	buf, err := cellLevel(lib, ringCellName, "A")
	if err != nil {
		return nil, err
	}
	nor, err := cellLevel(lib, srcCellName, "B")
	if err != nil {
		return nil, err
	}
	if buf <= 0 {
		return nil, fmt.Errorf("twophase: %s has a non-positive stage delay", ringCellName)
	}

	s := &Sizing{}
	maxC2Q := 0.0
	for _, g := range regions {
		rd := rds[g]
		if rd == nil {
			continue
		}
		if b := rd.Budget(); b > s.MaxBudget {
			s.MaxBudget = b
		}
		if rd.ClkToQ > maxC2Q {
			maxC2Q = rd.ClkToQ
		}
	}
	if s.MaxBudget <= 0 {
		return nil, fmt.Errorf("twophase: no region launch-to-capture budgets to size the ring from")
	}

	target := s.MaxBudget * margin
	if period > target {
		target = period
	}
	s.RingLevels = int(math.Ceil((target/2 - nor) / buf))
	if s.RingLevels < 1 {
		s.RingLevels = 1
	}
	s.NovLevels = int(math.Ceil(maxC2Q / buf))
	if s.NovLevels < 2 {
		s.NovLevels = 2
	}
	// Each phase must stay high for longer than it stays suppressed: grow
	// the ring until the half-period is at least twice the non-overlap gap,
	// so the duty cycle survives a conservative gap sizing.
	gap := nor + float64(s.NovLevels)*buf
	if half := nor + float64(s.RingLevels)*buf; half < 2*gap {
		s.RingLevels = int(math.Ceil((2*gap - nor) / buf))
	}
	s.NonOverlap = gap
	s.HalfPeriod = nor + float64(s.RingLevels)*buf
	s.Period = 2 * s.HalfPeriod
	return s, nil
}

// Generate inserts the two-phase clock generator and distribution into the
// design and emits the backend constraints: the Phi1/Phi2 derived clocks
// with explicitly non-overlapping waveforms, the set_disable_timing arcs
// that break the ring and the splitter cross-coupling for STA, and
// size-only markers on every delay-matched cell. The enables map is the
// substitution's per-region latch-enable pairs; every region in it gets a
// distribution buffer pair.
func Generate(d *netlist.Design, enables map[int]Enable, res *Result) error {
	m, lib := d.Top, d.Lib
	res.Constraints = &sdc.Constraints{}

	if m.Port(RstPortName) != nil {
		return fmt.Errorf("twophase: port %s already exists", RstPortName)
	}
	rst := m.AddPort(RstPortName, netlist.In).Net
	res.RstPort = RstPortName

	norCell, err := lib.Cell(srcCellName)
	if err != nil {
		return fmt.Errorf("twophase: %w", err)
	}
	invCell, err := lib.Cell("INVX1")
	if err != nil {
		return fmt.Errorf("twophase: %w", err)
	}
	distCell, err := lib.Cell(distCellName)
	if err != nil {
		return fmt.Errorf("twophase: %w", err)
	}

	gate := func(name string, cell *netlist.CellDef) *netlist.Inst {
		in := m.AddInst(name, cell)
		in.Origin = "tpgen"
		in.SizeOnly = true
		return in
	}

	// Ring oscillator: NOR(rst, feedback) closed through the symmetric
	// chain — one inversion around the loop, so it oscillates with a
	// half-period of one traversal once reset releases.
	osc := m.AddNet(ctrlnet.TPGenPrefix + "_osc")
	fb := m.AddNet(ctrlnet.TPGenPrefix + "_fb")
	src := gate(ctrlnet.TPSrcName, norCell)
	m.MustConnect(src, "A", rst)
	m.MustConnect(src, "B", fb)
	m.MustConnect(src, "Z", osc)
	if err := handshake.AddSymmetricDelayElement(m, lib, ctrlnet.TPRingPrefix, osc, fb, res.RingLevels); err != nil {
		return err
	}

	// Phase splitter: cross-coupled NORs on the oscillation and its
	// inverse. Each NOR's second input is the opposite phase through a
	// non-overlap chain, so a phase can only rise NovLevels stages after
	// the other has fallen.
	oscn := m.AddNet(ctrlnet.TPGenPrefix + "_oscn")
	inv := gate(ctrlnet.TPInvName, invCell)
	m.MustConnect(inv, "A", osc)
	m.MustConnect(inv, "Z", oscn)

	phi1 := m.AddNet(ctrlnet.TPGenPrefix + "_phi1")
	phi2 := m.AddNet(ctrlnet.TPGenPrefix + "_phi2")
	d1 := m.AddNet(ctrlnet.TPGenPrefix + "_d1")
	d2 := m.AddNet(ctrlnet.TPGenPrefix + "_d2")
	p1 := gate(ctrlnet.TPPhase1Name, norCell)
	m.MustConnect(p1, "A", oscn)
	m.MustConnect(p1, "B", d2)
	m.MustConnect(p1, "Z", phi1)
	p2 := gate(ctrlnet.TPPhase2Name, norCell)
	m.MustConnect(p2, "A", osc)
	m.MustConnect(p2, "B", d1)
	m.MustConnect(p2, "Z", phi2)
	if err := handshake.AddSymmetricDelayElement(m, lib, ctrlnet.TPNov1Prefix, phi1, d1, res.NovLevels); err != nil {
		return err
	}
	if err := handshake.AddSymmetricDelayElement(m, lib, ctrlnet.TPNov2Prefix, phi2, d2, res.NovLevels); err != nil {
		return err
	}
	res.GenCells = 4 + res.RingLevels + 2*res.NovLevels

	// Per-region distribution: one clock buffer per phase per region, from
	// the phase root onto the enable nets the substitution created.
	regions := make([]int, 0, len(enables))
	for g := range enables {
		regions = append(regions, g)
	}
	sort.Ints(regions)
	res.Regions = regions
	for _, g := range regions {
		en := enables[g]
		tpm := gate(ctrlnet.TPDistName(g, true), distCell)
		tpm.Group = g
		m.MustConnect(tpm, "A", phi1)
		m.MustConnect(tpm, "Z", en.Master)
		tps := gate(ctrlnet.TPDistName(g, false), distCell)
		tps.Group = g
		m.MustConnect(tps, "A", phi2)
		m.MustConnect(tps, "Z", en.Slave)
		res.DistBufs += 2
	}

	res.Claim = &Claim{
		Regions:    append([]int(nil), regions...),
		RingLevels: res.RingLevels,
		NovLevels:  res.NovLevels,
	}
	writeConstraints(m, res)
	return nil
}

// writeConstraints emits the backend SDC: Phi1/Phi2 as derived clocks on
// the splitter outputs with waveforms that spell out the non-overlap, the
// loop-breaking arcs for the ring and the cross-coupling, and size-only
// markers on every delay-matched generator cell.
func writeConstraints(m *netlist.Module, res *Result) {
	c := res.Constraints
	p, h, gap := res.Period, res.HalfPeriod, res.NonOverlap
	c.Clocks = append(c.Clocks,
		sdc.Clock{Name: "Phi1", Period: p, Waveform: [2]float64{0, h - gap},
			Sources: []string{ctrlnet.TPPhase1Name + "/Z"}, OnPins: true},
		sdc.Clock{Name: "Phi2", Period: p, Waveform: [2]float64{h, p - gap},
			Sources: []string{ctrlnet.TPPhase2Name + "/Z"}, OnPins: true},
	)
	c.Disabled = append(c.Disabled,
		sdc.DisabledArc{Inst: ctrlnet.TPSrcName, From: "B", To: "Z"},
		sdc.DisabledArc{Inst: ctrlnet.TPPhase1Name, From: "B", To: "Z"},
		sdc.DisabledArc{Inst: ctrlnet.TPPhase2Name, From: "B", To: "Z"},
	)
	for _, in := range m.Insts {
		if in.SizeOnly {
			c.SizeOnly = append(c.SizeOnly, in.Name)
		}
		if in.Group < 0 {
			if g, ok := ctrlnet.Region(in.Name); ok {
				in.Group = g
			}
		}
	}
	sort.Strings(c.SizeOnly)
}
