package liberty

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"desync/internal/logic"
	"desync/internal/netlist"
)

// WriteCorner renders the library as Liberty text characterized at the given
// corner, the way foundry libraries ship one .lib per corner.
func WriteCorner(lib *netlist.Library, corner netlist.Corner) string {
	var sb strings.Builder
	w := func(depth int, format string, args ...any) {
		sb.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&sb, format, args...)
		sb.WriteByte('\n')
	}
	w(0, "library (%s_%s) {", lib.Name, corner)
	w(1, "technology (cmos);")
	w(1, "delay_model : table_lookup;")
	w(1, "time_unit : \"1ns\";")
	w(1, "leakage_power_unit : \"1uW\";")
	w(1, "capacitive_load_unit (1, pf);")
	w(1, "default_operating_conditions : %s;", corner)

	names := make([]string, 0, len(lib.Cells))
	for n := range lib.Cells {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		writeCell(w, lib.Cells[name], corner)
	}
	w(0, "}")
	return sb.String()
}

func writeCell(w func(int, string, ...any), c *netlist.CellDef, corner netlist.Corner) {
	w(1, "cell (%s) {", c.Name)
	w(2, "area : %g;", c.Area)
	w(2, "cell_leakage_power : %g;", c.Leakage.At(corner))
	w(2, "desync_energy : %g;", c.Energy)
	switch c.Kind {
	case netlist.KindFF:
		s := c.Seq
		w(2, "ff (IQ, IQN) {")
		clocked := s.ClockPin
		if s.ClockGate != "" {
			clocked = s.ClockPin + "&" + s.ClockGate
		}
		w(3, "clocked_on : \"%s\";", clocked)
		w(3, "next_state : \"%s\";", s.Next)
		if s.AsyncReset != "" {
			w(3, "clear : \"%s\";", asyncExpr(s.AsyncReset, s.AsyncResetLow))
		}
		if s.AsyncSet != "" {
			w(3, "preset : \"%s\";", asyncExpr(s.AsyncSet, s.AsyncSetLow))
		}
		w(2, "}")
	case netlist.KindLatch:
		s := c.Seq
		w(2, "latch (IQ, IQN) {")
		w(3, "enable : \"%s\";", s.ClockPin)
		w(3, "data_in : \"%s\";", s.Next)
		if s.AsyncReset != "" {
			w(3, "clear : \"%s\";", asyncExpr(s.AsyncReset, s.AsyncResetLow))
		}
		if s.AsyncSet != "" {
			w(3, "preset : \"%s\";", asyncExpr(s.AsyncSet, s.AsyncSetLow))
		}
		w(2, "}")
	case netlist.KindCElem, netlist.KindGC:
		// Vendor-extension attributes: Liberty proper would use a
		// statetable; the custom pair keeps the subset small while
		// round-tripping the generalized-C semantics.
		w(2, "desync_celem_set : \"%s\";", c.GC.Set)
		w(2, "desync_celem_reset : \"%s\";", c.GC.Reset)
		if c.Kind == netlist.KindGC {
			w(2, "desync_celem_kind : gc;")
		}
	}
	for _, p := range c.Pins {
		writePin(w, c, &p, corner)
	}
	w(1, "}")
}

func asyncExpr(pin string, activeLow bool) string {
	if activeLow {
		return "!" + pin
	}
	return pin
}

func writePin(w func(int, string, ...any), c *netlist.CellDef, p *netlist.PinDef, corner netlist.Corner) {
	w(2, "pin (%s) {", p.Name)
	w(3, "direction : %s;", p.Dir)
	if p.Dir == netlist.In {
		w(3, "capacitance : %g;", p.Cap)
		switch p.Class {
		case netlist.ClassClock, netlist.ClassEnable:
			w(3, "clock : true;")
		case netlist.ClassScanIn:
			w(3, "signal_type : test_scan_in;")
		case netlist.ClassScanEnable:
			w(3, "signal_type : test_scan_enable;")
		case netlist.ClassAsyncSet:
			w(3, "signal_type : set;")
		case netlist.ClassAsyncReset:
			w(3, "signal_type : reset;")
		}
		// Setup/hold constraint arcs against the clock pin.
		if c.Seq != nil && p.Class == netlist.ClassData && c.Seq.Next != nil && refersTo(c.Seq.Next, p.Name) {
			w(3, "timing () {")
			w(4, "related_pin : \"%s\";", c.Seq.ClockPin)
			w(4, "timing_type : setup_rising;")
			w(4, "rise_constraint (scalar) { values (\"%g\"); }", c.Setup.At(corner))
			w(4, "fall_constraint (scalar) { values (\"%g\"); }", c.Setup.At(corner))
			w(3, "}")
			w(3, "timing () {")
			w(4, "related_pin : \"%s\";", c.Seq.ClockPin)
			w(4, "timing_type : hold_rising;")
			w(4, "rise_constraint (scalar) { values (\"%g\"); }", c.Hold.At(corner))
			w(4, "fall_constraint (scalar) { values (\"%g\"); }", c.Hold.At(corner))
			w(3, "}")
		}
	} else {
		if fn, ok := c.Functions[p.Name]; ok {
			w(3, "function : \"%s\";", fn)
		} else if c.Seq != nil {
			switch p.Name {
			case c.Seq.Q:
				w(3, "function : \"IQ\";")
			case c.Seq.QN:
				w(3, "function : \"IQN\";")
			}
		} else if c.GC != nil && p.Name == c.GC.Q {
			w(3, "function : \"IQ\";")
		}
		// Propagation arcs into this output.
		for _, a := range c.Arcs {
			if a.To != p.Name {
				continue
			}
			w(3, "timing () {")
			w(4, "related_pin : \"%s\";", a.From)
			w(4, "cell_rise (scalar) { values (\"%g\"); }", a.Rise.At(corner))
			w(4, "cell_fall (scalar) { values (\"%g\"); }", a.Fall.At(corner))
			w(3, "}")
		}
	}
	w(2, "}")
}

func refersTo(e *logic.Expr, name string) bool {
	for _, v := range e.Vars() {
		if v == name {
			return true
		}
	}
	return false
}

// ReadLibrary parses best- and worst-corner Liberty sources for the same
// library and merges them into a single netlist.Library with per-corner
// delays. The two sources must describe the same cells.
func ReadLibrary(name, variant, bestSrc, worstSrc string) (*netlist.Library, error) {
	best, err := readCorner(bestSrc)
	if err != nil {
		return nil, fmt.Errorf("liberty: best corner: %w", err)
	}
	worst, err := readCorner(worstSrc)
	if err != nil {
		return nil, fmt.Errorf("liberty: worst corner: %w", err)
	}
	lib := netlist.NewLibrary(name, variant)
	for cname, bc := range best {
		wc, ok := worst[cname]
		if !ok {
			return nil, fmt.Errorf("liberty: cell %s missing from worst corner", cname)
		}
		merged, err := mergeCorners(bc, wc)
		if err != nil {
			return nil, fmt.Errorf("liberty: cell %s: %w", cname, err)
		}
		lib.Add(merged)
	}
	for cname := range worst {
		if _, ok := best[cname]; !ok {
			return nil, fmt.Errorf("liberty: cell %s missing from best corner", cname)
		}
	}
	return lib, nil
}

// cornerCell is a cell as read from a single-corner .lib.
type cornerCell struct {
	def     *netlist.CellDef // delays stored in the Best slot only
	leakage float64
}

func readCorner(src string) (map[string]*cornerCell, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if root.Type != "library" {
		return nil, fmt.Errorf("top-level group is %q, want library", root.Type)
	}
	out := map[string]*cornerCell{}
	for _, cg := range root.Sub("cell") {
		cc, err := readCell(cg)
		if err != nil {
			return nil, err
		}
		out[cc.def.Name] = cc
	}
	return out, nil
}

func readCell(cg *Group) (*cornerCell, error) {
	if len(cg.Args) != 1 {
		return nil, fmt.Errorf("cell group with %d names", len(cg.Args))
	}
	c := &netlist.CellDef{Name: cg.Args[0], Kind: netlist.KindComb, Functions: map[string]*logic.Expr{}}
	cc := &cornerCell{def: c}
	var err error
	if v := cg.Attr("area"); v != "" {
		if c.Area, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("%s: bad area: %v", c.Name, err)
		}
	}
	if v := cg.Attr("cell_leakage_power"); v != "" {
		if cc.leakage, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("%s: bad leakage: %v", c.Name, err)
		}
	}
	if v := cg.Attr("desync_energy"); v != "" {
		if c.Energy, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, fmt.Errorf("%s: bad energy: %v", c.Name, err)
		}
	}

	// Sequential groups.
	if ff := cg.First("ff"); ff != nil {
		c.Kind = netlist.KindFF
		if c.Seq, err = readSeq(ff, false); err != nil {
			return nil, fmt.Errorf("%s: %v", c.Name, err)
		}
	} else if lt := cg.First("latch"); lt != nil {
		c.Kind = netlist.KindLatch
		if c.Seq, err = readSeq(lt, true); err != nil {
			return nil, fmt.Errorf("%s: %v", c.Name, err)
		}
	} else if set := cg.Attr("desync_celem_set"); set != "" {
		c.Kind = netlist.KindCElem
		if cg.Attr("desync_celem_kind") == "gc" {
			c.Kind = netlist.KindGC
		}
		gc := &netlist.GCSpec{}
		if gc.Set, err = logic.ParseExpr(set); err != nil {
			return nil, fmt.Errorf("%s: celem set: %v", c.Name, err)
		}
		if gc.Reset, err = logic.ParseExpr(cg.Attr("desync_celem_reset")); err != nil {
			return nil, fmt.Errorf("%s: celem reset: %v", c.Name, err)
		}
		c.GC = gc
	}

	for _, pg := range cg.Sub("pin") {
		if err := readPin(cc, pg); err != nil {
			return nil, fmt.Errorf("%s: %v", c.Name, err)
		}
	}
	// A cell whose only output has function "0"/"1" is a tie cell.
	if c.Kind == netlist.KindComb {
		outs := c.Outputs()
		if len(outs) == 1 {
			if f := c.Functions[outs[0]]; f != nil && f.Op == logic.OpConst {
				c.Kind = netlist.KindTie
			}
		}
	}
	// Resolve pin classes that depend on the seq spec (clock vs enable) and
	// the C-element output name.
	if c.Seq != nil {
		for i := range c.Pins {
			p := &c.Pins[i]
			switch {
			case p.Name == c.Seq.ClockPin && c.Kind == netlist.KindLatch:
				p.Class = netlist.ClassEnable
			case p.Name == c.Seq.ClockPin:
				p.Class = netlist.ClassClock
			case p.Name == c.Seq.Q:
				p.Class = netlist.ClassOutput
			case p.Name == c.Seq.QN:
				p.Class = netlist.ClassOutputN
			}
		}
	}
	if c.GC != nil {
		for i := range c.Pins {
			if c.Pins[i].Dir == netlist.Out {
				c.GC.Q = c.Pins[i].Name
				c.Pins[i].Class = netlist.ClassOutput
			}
		}
	}
	return cc, nil
}

func readSeq(g *Group, isLatch bool) (*netlist.SeqSpec, error) {
	s := &netlist.SeqSpec{Q: "Q"} // resolved properly from pin functions below
	var nextAttr, clockAttr string
	if isLatch {
		nextAttr, clockAttr = "data_in", "enable"
	} else {
		nextAttr, clockAttr = "next_state", "clocked_on"
	}
	next, err := logic.ParseExpr(g.Attr(nextAttr))
	if err != nil {
		return nil, fmt.Errorf("bad %s: %v", nextAttr, err)
	}
	s.Next = next
	clocked, err := logic.ParseExpr(g.Attr(clockAttr))
	if err != nil {
		return nil, fmt.Errorf("bad %s: %v", clockAttr, err)
	}
	// clocked_on is either a single pin or pin&gate for clock-gated cells;
	// the true clock pin is identified later by its clock:true attribute, so
	// here we take the first variable and patch in readPin if needed.
	vars := clocked.Vars()
	switch len(vars) {
	case 1:
		s.ClockPin = vars[0]
	case 2:
		// Disambiguated after pins are read (clock : true marks the pin).
		s.ClockPin = vars[0]
		s.ClockGate = vars[1]
	default:
		return nil, fmt.Errorf("unsupported %s expression %q", clockAttr, g.Attr(clockAttr))
	}
	if v := g.Attr("clear"); v != "" {
		pin, low, err := parseAsync(v)
		if err != nil {
			return nil, err
		}
		s.AsyncReset, s.AsyncResetLow = pin, low
	}
	if v := g.Attr("preset"); v != "" {
		pin, low, err := parseAsync(v)
		if err != nil {
			return nil, err
		}
		s.AsyncSet, s.AsyncSetLow = pin, low
	}
	return s, nil
}

func parseAsync(v string) (pin string, activeLow bool, err error) {
	e, err := logic.ParseExpr(v)
	if err != nil {
		return "", false, fmt.Errorf("bad async expression %q: %v", v, err)
	}
	switch {
	case e.Op == logic.OpVar:
		return e.Name, false, nil
	case e.Op == logic.OpNot && e.Child[0].Op == logic.OpVar:
		return e.Child[0].Name, true, nil
	}
	return "", false, fmt.Errorf("unsupported async expression %q", v)
}

func readPin(cc *cornerCell, pg *Group) error {
	c := cc.def
	if len(pg.Args) != 1 {
		return fmt.Errorf("pin group with %d names", len(pg.Args))
	}
	p := netlist.PinDef{Name: pg.Args[0]}
	switch pg.Attr("direction") {
	case "input":
		p.Dir = netlist.In
	case "output":
		p.Dir = netlist.Out
	case "inout":
		p.Dir = netlist.InOut
	default:
		return fmt.Errorf("pin %s: missing direction", p.Name)
	}
	if v := pg.Attr("capacitance"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("pin %s: bad capacitance: %v", p.Name, err)
		}
		p.Cap = f
	}
	switch pg.Attr("signal_type") {
	case "test_scan_in":
		p.Class = netlist.ClassScanIn
		if c.Seq != nil {
			c.Seq.ScanIn = p.Name
		}
	case "test_scan_enable":
		p.Class = netlist.ClassScanEnable
		if c.Seq != nil {
			c.Seq.ScanEnable = p.Name
		}
	case "set":
		p.Class = netlist.ClassAsyncSet
	case "reset":
		p.Class = netlist.ClassAsyncReset
	}
	if pg.Attr("clock") == "true" {
		p.Class = netlist.ClassClock
		// Patch clock-vs-gate ambiguity for gated flip-flops.
		if c.Seq != nil && c.Seq.ClockGate != "" && c.Seq.ClockPin != p.Name {
			c.Seq.ClockGate, c.Seq.ClockPin = c.Seq.ClockPin, p.Name
		}
	}

	if p.Dir == netlist.Out {
		if fn := pg.Attr("function"); fn != "" && fn != "IQ" && fn != "IQN" {
			e, err := logic.ParseExpr(fn)
			if err != nil {
				return fmt.Errorf("pin %s: bad function: %v", p.Name, err)
			}
			c.Functions[p.Name] = e
		} else if c.Seq != nil {
			switch fn {
			case "IQ":
				c.Seq.Q = p.Name
				p.Class = netlist.ClassOutput
			case "IQN":
				c.Seq.QN = p.Name
				p.Class = netlist.ClassOutputN
			}
		}
	}

	// Timing groups.
	for _, tg := range pg.Sub("timing") {
		related := tg.Attr("related_pin")
		switch tg.Attr("timing_type") {
		case "setup_rising":
			d, err := scalarValue(tg, "rise_constraint")
			if err != nil {
				return err
			}
			c.Setup = netlist.Delay{Best: d}
		case "hold_rising":
			d, err := scalarValue(tg, "rise_constraint")
			if err != nil {
				return err
			}
			c.Hold = netlist.Delay{Best: d}
		default:
			rise, err := scalarValue(tg, "cell_rise")
			if err != nil {
				return err
			}
			fall, err := scalarValue(tg, "cell_fall")
			if err != nil {
				return err
			}
			c.Arcs = append(c.Arcs, netlist.TimingArc{
				From: related, To: p.Name,
				Rise: netlist.Delay{Best: rise},
				Fall: netlist.Delay{Best: fall},
			})
		}
	}
	c.Pins = append(c.Pins, p)
	return nil
}

// scalarValue extracts the single value of a scalar table subgroup, e.g.
// cell_rise (scalar) { values ("0.05"); }.
func scalarValue(tg *Group, name string) (float64, error) {
	g := tg.First(name)
	if g == nil {
		return 0, fmt.Errorf("timing group missing %s", name)
	}
	for _, a := range g.Attrs {
		if a.Name == "values" && len(a.Complex) == 1 {
			return strconv.ParseFloat(a.Complex[0], 64)
		}
	}
	return 0, fmt.Errorf("%s has no values()", name)
}

// mergeCorners combines a best- and worst-corner view of the same cell.
func mergeCorners(best, worst *cornerCell) (*netlist.CellDef, error) {
	c := best.def
	wc := worst.def
	c.Leakage = netlist.Delay{Best: best.leakage, Worst: worst.leakage}
	if len(c.Arcs) != len(wc.Arcs) {
		return nil, fmt.Errorf("arc count differs between corners (%d vs %d)", len(c.Arcs), len(wc.Arcs))
	}
	for i := range c.Arcs {
		w := wc.Arc(c.Arcs[i].From, c.Arcs[i].To)
		if w == nil {
			return nil, fmt.Errorf("arc %s->%s missing from worst corner", c.Arcs[i].From, c.Arcs[i].To)
		}
		c.Arcs[i].Rise.Worst = w.Rise.Best
		c.Arcs[i].Fall.Worst = w.Fall.Best
	}
	c.Setup.Worst = wc.Setup.Best
	c.Hold.Worst = wc.Hold.Best
	return c, nil
}
