package stg

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// liveProtocols returns the five protocols of the lattice that are both
// live and flow-equivalent — the ones a correct flow may insert.
func liveProtocols(t *testing.T) []*Protocol {
	t.Helper()
	var out []*Protocol
	for i := range Protocols {
		p := &Protocols[i]
		if p.ExpectLive && p.ExpectFE {
			out = append(out, p)
		}
	}
	if len(out) != 5 {
		t.Fatalf("expected 5 live flow-equivalent protocols, got %d", len(out))
	}
	return out
}

// ringCycles enumerates the simple directed cycles of the marked graph up
// to maxLen arcs, deduplicated by arc set. Marked-graph theory says the
// token count around every one of them is invariant under firing; the
// property tests walk the ring randomly and hold the theorem to account.
func ringCycles(g *Graph, maxLen int) [][]int {
	g.freeze()
	outArcs := make([][]int, len(g.Events))
	for ai, a := range g.Arcs {
		outArcs[a.From] = append(outArcs[a.From], ai)
	}
	seen := map[string]bool{}
	var cycles [][]int
	var path []int
	onPath := make([]bool, len(g.Events))
	var dfs func(start, at int)
	dfs = func(start, at int) {
		if len(path) > maxLen {
			return
		}
		for _, ai := range outArcs[at] {
			to := g.Arcs[ai].To
			if to == start && len(path) > 0 {
				cyc := append(append([]int(nil), path...), ai)
				key := cycleKey(cyc)
				if !seen[key] {
					seen[key] = true
					cycles = append(cycles, cyc)
				}
				continue
			}
			if onPath[to] || to < start {
				continue // simple cycles only, rooted at their smallest event
			}
			onPath[to] = true
			path = append(path, ai)
			dfs(start, to)
			path = path[:len(path)-1]
			onPath[to] = false
		}
	}
	for e := range g.Events {
		onPath[e] = true
		dfs(e, e)
		onPath[e] = false
	}
	return cycles
}

func cycleKey(arcs []int) string {
	s := append([]int(nil), arcs...)
	sort.Ints(s)
	return fmt.Sprint(s)
}

// TestShowThroughBoundsConcurrency pins the boundary the random walks
// uncovered: under CheckRing's show-through data semantics the two most
// concurrent protocols are flow-equivalent on the 2-register ring (the
// lattice observable) but not beyond it — with three registers the slack
// lets an upstream latch reopen and pass a newer datum through a chain of
// transparent latches before the downstream capture lands. Semi-decoupled
// — the protocol the flow actually inserts — stays flow-equivalent.
func TestShowThroughBoundsConcurrency(t *testing.T) {
	for name, wantFE := range map[string]bool{
		"desynchronization": false,
		"fully-decoupled":   false,
		"semi-decoupled":    true,
	} {
		p, err := ProtocolByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := p.CheckRing(3, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !rr.Live {
			t.Errorf("%s ring(3): not live", name)
		}
		if rr.FlowEquiv != wantFE {
			t.Errorf("%s ring(3): flow-equivalent = %v, want %v (violation %q)",
				name, rr.FlowEquiv, wantFE, rr.Violation)
		}
	}
}

func tokenSum(m Marking, cyc []int) int {
	sum := 0
	for _, ai := range cyc {
		sum += int(m[ai])
	}
	return sum
}

// TestRingCycleTokenInvariant random-walks 2..5-stage rings of every live
// protocol and checks the marked-graph invariants at each step: the token
// count around every directed cycle never changes, and no arc ever carries
// more than the safe-net bound.
func TestRingCycleTokenInvariant(t *testing.T) {
	for _, p := range liveProtocols(t) {
		for regs := 2; regs <= 5; regs++ {
			t.Run(fmt.Sprintf("%s/regs=%d", p.Name, regs), func(t *testing.T) {
				g, err := p.Ring(regs)
				if err != nil {
					t.Fatal(err)
				}
				cycles := ringCycles(g, 8)
				if len(cycles) < 2*regs {
					t.Fatalf("found only %d cycles (want at least one per latch phase pair)", len(cycles))
				}
				init := g.Initial()
				want := make([]int, len(cycles))
				for c, cyc := range cycles {
					want[c] = tokenSum(init, cyc)
				}
				for seed := int64(0); seed < 3; seed++ {
					rng := rand.New(rand.NewSource(seed))
					m := g.Initial()
					for step := 0; step < 400; step++ {
						enabled := g.EnabledEvents(m)
						if len(enabled) == 0 {
							t.Fatalf("seed %d: walk deadlocked at step %d", seed, step)
						}
						m = g.Fire(m, enabled[rng.Intn(len(enabled))])
						for _, tok := range m {
							if tok > 4 {
								t.Fatalf("seed %d step %d: arc exceeded the safe-net bound (%d tokens)", seed, step, tok)
							}
						}
						for c, cyc := range cycles {
							if got := tokenSum(m, cyc); got != want[c] {
								t.Fatalf("seed %d step %d: cycle token count drifted %d -> %d", seed, step, want[c], got)
							}
						}
					}
				}
			})
		}
	}
}

// TestRingLiveness checks liveness of the 2..5-stage rings both ways:
// structurally (strong connectivity with every cycle marked) for the live
// protocols, and by exhaustive reachability for the over-constrained
// protocol, which must deadlock at every ring size.
func TestRingLiveness(t *testing.T) {
	for _, p := range liveProtocols(t) {
		for regs := 2; regs <= 5; regs++ {
			g, err := p.Ring(regs)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Live() {
				t.Errorf("%s ring(%d): structural liveness check failed", p.Name, regs)
			}
		}
	}
	dead, err := ProtocolByName("over-constrained")
	if err != nil {
		t.Fatal(err)
	}
	for regs := 2; regs <= 4; regs++ {
		g, err := dead.Ring(regs)
		if err != nil {
			t.Fatal(err)
		}
		if g.Live() {
			t.Errorf("over-constrained ring(%d): structural check claims live", regs)
		}
		rr := g.Reachable(500_000)
		if rr.Unbounded {
			t.Fatalf("over-constrained ring(%d): state space exceeded the bound", regs)
		}
		if !rr.Deadlock {
			t.Errorf("over-constrained ring(%d): no reachable deadlock in %d states", regs, rr.States)
		}
	}
}

// TestRingFlowEquivalenceWalk drives long seeded random walks through
// 2..5-stage rings with the data semantics of CheckRing (opaque latches
// hold, transparent latches show their upstream neighbour) and checks every
// capture latches exactly the datum the synchronous schedule assigns to
// that occurrence. Exhaustive checking stops at small rings; the walks
// reach deep occurrences of the schedule on the larger ones.
//
// The two maximally concurrent protocols are excluded above 2 registers:
// under show-through semantics their pairwise arc sets admit a datum racing
// through a chain of simultaneously transparent latches once the ring is
// long enough (TestShowThroughBoundsConcurrency pins that boundary), which
// is why the flow inserts semi-decoupled controllers.
func TestRingFlowEquivalenceWalk(t *testing.T) {
	feOnLargeRings := map[string]bool{
		"semi-decoupled": true, "simple": true, "non-overlapping": true,
	}
	for _, p := range liveProtocols(t) {
		for regs := 2; regs <= 5; regs++ {
			if regs > 2 && !feOnLargeRings[p.Name] {
				continue
			}
			t.Run(fmt.Sprintf("%s/regs=%d", p.Name, regs), func(t *testing.T) {
				g, err := p.Ring(regs)
				if err != nil {
					t.Fatal(err)
				}
				n := 2 * regs
				evLatch := make([]int, len(g.Events))
				evPlus := make([]bool, len(g.Events))
				for i, e := range g.Events {
					if _, err := fmt.Sscanf(e.Signal, "L%d", &evLatch[i]); err != nil {
						t.Fatalf("bad signal %q", e.Signal)
					}
					evPlus[i] = e.Plus
				}
				value := func(held []int, i int) int {
					for hops := 0; hops <= n; hops++ {
						if held[i] >= 0 {
							return held[i]
						}
						i = (i - 1 + n) % n
					}
					return -1
				}
				for seed := int64(0); seed < 4; seed++ {
					rng := rand.New(rand.NewSource(100 + seed))
					m := g.Initial()
					held := make([]int, n)
					caps := make([]int, n)
					for i := range held {
						if i%2 == 0 {
							held[i] = -1
						} else {
							held[i] = i / 2
						}
					}
					for step := 0; step < 600; step++ {
						enabled := g.EnabledEvents(m)
						if len(enabled) == 0 {
							t.Fatalf("seed %d: walk deadlocked at step %d", seed, step)
						}
						e := enabled[rng.Intn(len(enabled))]
						m = g.Fire(m, e)
						li := evLatch[e]
						if evPlus[e] {
							held[li] = -1
							continue
						}
						v := value(held, li)
						if v < 0 {
							t.Fatalf("seed %d step %d: data race closing L%d", seed, step, li)
						}
						r := li / 2
						expect := ((r-caps[li]-1)%regs + regs) % regs
						if v != expect {
							t.Fatalf("seed %d step %d: latch L%d capture #%d latched %d, schedule requires %d",
								seed, step, li, caps[li]+1, v, expect)
						}
						held[li] = v
						caps[li]++
					}
				}
			})
		}
	}
}
