package expt

import (
	"context"
	"fmt"

	"desync/internal/core"
	"desync/internal/designs"
	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/sta"
	"desync/internal/stdcells"
)

// FIRFlow holds the third case study: the FIR filter whose boundary
// regions talk to the environment through generated req/ack ports.
type FIRFlow struct {
	Sync   *netlist.Design
	Desync *netlist.Design
	Result *core.Result
	// Period is the synchronous worst-case clock period from STA (ns).
	Period float64
	// Env port names the insertion created on the open boundaries.
	ReqIn, AckIn, ReqOut, AckOut string
}

// RunFIRFlow desynchronizes the FIR filter (§6 future work: "more study
// case circuits"): build, take the clock from STA, desynchronize, and
// resolve the environment handshake ports the testbench discipline of
// §4.8 drives.
func RunFIRFlow(cfg FlowConfig) (*FIRFlow, error) {
	lib := stdcells.New(stdcells.HighSpeed)
	f := &FIRFlow{}
	var err error
	if f.Sync, err = designs.BuildFIR(lib); err != nil {
		return nil, err
	}
	core.CleanLogic(f.Sync.Top)
	rds, err := sta.RegionDelays(context.Background(), f.Sync.Top, netlist.Worst, sta.Options{})
	if err != nil {
		return nil, err
	}
	for _, rd := range rds {
		if b := rd.Budget(); b > f.Period {
			f.Period = b
		}
	}
	f.Period *= 1.15

	lib2 := stdcells.New(stdcells.HighSpeed)
	if f.Desync, err = designs.BuildFIR(lib2); err != nil {
		return nil, err
	}
	f.Result, err = core.Desynchronize(context.Background(), f.Desync, core.Options{
		Period:      f.Period,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	if len(f.Result.Insert.EnvRequests) != 1 || len(f.Result.Insert.EnvAcks) != 1 {
		return nil, fmt.Errorf("expt: FIR boundary ports %v / %v, want one open boundary per side",
			f.Result.Insert.EnvRequests, f.Result.Insert.EnvAcks)
	}
	f.ReqIn = f.Result.Insert.EnvRequests[0]
	f.AckIn = f.ReqIn[:len(f.ReqIn)-len("_ri")] + "_ai"
	f.AckOut = f.Result.Insert.EnvAcks[0]
	f.ReqOut = f.AckOut[:len(f.AckOut)-len("_ao")] + "_ro"
	for _, p := range []string{f.AckIn, f.ReqOut} {
		if f.Desync.Top.Port(p) == nil {
			return nil, fmt.Errorf("expt: FIR environment port %s missing", p)
		}
	}
	return f, nil
}

// MeasureDFIR free-runs the desynchronized FIR against an eager 4-phase
// environment (the §4.8 testbench discipline) for the given number of
// samples and measures the steady-state effective period from the
// accumulator's capture spacing, checking the output stream against the
// golden FIR model.
func MeasureDFIR(f *FIRFlow, corner netlist.Corner, samples int) (*MeasureRun, error) {
	s, err := sim.New(f.Desync.Top, sim.Config{Corner: corner})
	if err != nil {
		return nil, err
	}
	stream := make([]uint64, samples)
	x := uint64(0x9e)
	for i := range stream {
		x = (x*137 + 71) % 251
		stream[i] = x
	}

	// Input side: a 4-phase producer that answers the acknowledge as fast
	// as data validity allows. Edges during the boot window are the X->0
	// settling of the acknowledge, not handshakes.
	const kickAt = 3.5
	next := 0
	if err := s.OnChange(f.AckIn, func(tm float64, v logic.V) {
		if tm <= kickAt {
			return
		}
		if v == logic.H {
			s.Drive(f.ReqIn, logic.L, tm+0.1)
			return
		}
		if next < len(stream) {
			s.DriveVector("x", designs.FIRWidth, stream[next], tm+0.2)
			next++
			s.Drive(f.ReqIn, logic.H, tm+1.0)
		}
	}); err != nil {
		return nil, err
	}
	// Output side: an eager 4-phase consumer.
	if err := s.OnChange(f.ReqOut, func(tm float64, v logic.V) {
		s.Drive(f.AckOut, v, tm+0.2)
	}); err != nil {
		return nil, err
	}
	s.Drive("rstn", logic.L, 0)
	s.Drive("rst_desync", logic.H, 0)
	s.Drive(f.ReqIn, logic.L, 0)
	s.Drive(f.AckOut, logic.L, 0)
	s.Drive("rstn", logic.H, 1)
	s.Drive("rst_desync", logic.L, 2)
	s.DriveVector("x", designs.FIRWidth, stream[0], 2.5)
	next = 1
	s.Drive(f.ReqIn, logic.H, kickAt)
	if err := s.Run(f.Period * float64(samples) * 8); err != nil {
		return nil, err
	}

	times := s.CaptureTimes["yr[0]/sl"]
	run := &MeasureRun{Cycles: len(times)}
	if len(times) < samples/2 {
		return nil, fmt.Errorf("expt: desynchronized FIR stalled: %d captures", len(times))
	}
	skip := 3
	if len(times) <= skip+2 {
		skip = 0
	}
	run.EffectivePeriod = (times[len(times)-1] - times[skip]) / float64(len(times)-1-skip)

	// Output stream against the golden model.
	model := &designs.FIRModel{}
	for _, v := range stream {
		model.Step(uint16(v))
	}
	kmax := len(times)
	for i := 0; i < designs.FIRWidth+4; i++ {
		if n := len(s.Captures[fmt.Sprintf("yr[%d]", i)+"/sl"]); n < kmax {
			kmax = n
		}
	}
	run.Correct = kmax > 0
	for k := 0; k < kmax && k < len(model.YTrace) && run.Correct; k++ {
		var y uint16
		for i := 0; i < designs.FIRWidth+4; i++ {
			if s.Captures[fmt.Sprintf("yr[%d]", i)+"/sl"][k] == logic.H {
				y |= 1 << uint(i)
			}
		}
		if y != model.YTrace[k] {
			run.Correct = false
		}
	}
	return run, nil
}
