package ctrlnet_test

import (
	"reflect"
	"sync"
	"testing"

	"desync/internal/core"
	"desync/internal/ctrlnet"
	"desync/internal/expt"
	"desync/internal/netlist"
)

// The DLX flow is the richest fixture in the repo (4 regions, rendezvous
// trees, environment ports); run it once and share the result.
var (
	dlxOnce sync.Once
	dlxTop  *netlist.Module
	dlxRes  *core.Result
	dlxErr  error
)

func dlxModule(t testing.TB) *netlist.Module {
	dlxOnce.Do(func() {
		f, err := expt.RunDLXFlow(expt.FlowConfig{})
		if err != nil {
			dlxErr = err
			return
		}
		dlxTop = f.Desync.Top
		dlxRes = f.Result
	})
	if dlxErr != nil {
		t.Fatalf("DLX flow: %v", dlxErr)
	}
	return dlxTop
}

func TestDeriveDLX(t *testing.T) {
	m := dlxModule(t)
	n := ctrlnet.DeriveFresh(m)
	if n.Empty() {
		t.Fatal("derived empty network from desynchronized DLX")
	}
	if len(n.Regions) != 4 {
		t.Fatalf("regions = %v, want 4", n.Regions)
	}
	for _, g := range n.Regions {
		c := n.Controllers[g]
		if c == nil || !c.Complete() {
			t.Errorf("G%d: incomplete controller", g)
		}
		ch := n.Channels[g]
		for _, s := range ctrlnet.ChannelSuffixes {
			if ch.BySuffix(s) == nil {
				t.Errorf("G%d: missing channel net %s", g, s)
			}
		}
		if n.MSDelays[g] == nil {
			t.Errorf("G%d: missing master-slave delay chain", g)
		}
		if !n.Completion[g] && n.ReqDelays[g] == nil {
			t.Errorf("G%d: no completion detection and no matched delay chain", g)
		}
		if n.ControlNet(g, "mri") == nil || n.ControlNet(g, "gm") == nil {
			t.Errorf("G%d: ControlNet failed to resolve mri/gm", g)
		}
	}

	// Every latch must be cleanly colored, and the derived region graph must
	// agree with the DDG the flow built before insertion — that agreement is
	// exactly what Diff later institutionalizes.
	master, slave := 0, 0
	for _, l := range n.Latches {
		if !l.Colored() {
			t.Fatalf("latch %s not cleanly colored: %d roots", l.Inst.Name, len(l.Roots))
		}
		if l.Phase() == ctrlnet.Master {
			master++
		} else {
			slave++
		}
		if got := n.Latch(l.Inst); got != l {
			t.Fatalf("Latch(%s) lookup mismatch", l.Inst.Name)
		}
	}
	if master == 0 || slave == 0 {
		t.Fatalf("phase split master=%d slave=%d, want both non-zero", master, slave)
	}
	for _, g := range n.Regions {
		if !reflect.DeepEqual(n.Succs[g], dlxRes.DDG.Succs[g]) {
			t.Errorf("G%d: derived succs %v, flow DDG %v", g, n.Succs[g], dlxRes.DDG.Succs[g])
		}
	}
	// DLX's region graph is fully internal (every region has predecessors
	// and successors), so the flow exposes no environment handshake ports;
	// the derived view must agree with the insert stage's own record.
	if !reflect.DeepEqual(n.EnvRequests, dlxRes.Insert.EnvRequests) ||
		!reflect.DeepEqual(n.EnvAcks, dlxRes.Insert.EnvAcks) {
		t.Errorf("env ports req=%v ack=%v, flow recorded req=%v ack=%v",
			n.EnvRequests, n.EnvAcks, dlxRes.Insert.EnvRequests, dlxRes.Insert.EnvAcks)
	}
	if len(n.FFs) != 0 {
		t.Errorf("%d flip-flops survived substitution", len(n.FFs))
	}
}

func TestDeriveMemoization(t *testing.T) {
	m := dlxModule(t)
	a := ctrlnet.Derive(m)
	if b := ctrlnet.Derive(m); b != a {
		t.Fatal("second Derive did not hit the memo")
	}
	// Any structural mutation must invalidate.
	m.AddNet("ctrlnet_memo_probe")
	if c := ctrlnet.Derive(m); c == a {
		t.Fatal("Derive returned stale network after structural mutation")
	}
	if err := m.RemoveNet(m.Net("ctrlnet_memo_probe")); err != nil {
		t.Fatal(err)
	}
}

// TestDeriveConcurrent hammers the memo cache from many goroutines: every
// caller must get the same cached network with no data race (make check runs
// this package under -race precisely for this path).
func TestDeriveConcurrent(t *testing.T) {
	m := dlxModule(t)
	want := ctrlnet.Derive(m)
	var wg sync.WaitGroup
	got := make([]*ctrlnet.Network, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = ctrlnet.Derive(m)
		}(i)
	}
	wg.Wait()
	for i, n := range got {
		if n != want {
			t.Fatalf("goroutine %d got a different network instance", i)
		}
	}
}

func TestDiffDLX(t *testing.T) {
	m := dlxModule(t)
	n := ctrlnet.DeriveFresh(m)

	claim := &ctrlnet.Claim{
		Module:      m,
		Regions:     append([]int(nil), n.Regions...),
		Preds:       n.Preds,
		Succs:       n.Succs,
		DelayLevels: map[int]int{},
		MSLevels:    map[int]int{},
		Completion:  n.Completion,
		EnvRequests: n.EnvRequests,
		EnvAcks:     n.EnvAcks,
	}
	for g, c := range n.ReqDelays {
		claim.DelayLevels[g] = c.Levels
	}
	for g, c := range n.MSDelays {
		claim.MSLevels[g] = c.Levels
	}
	if mm := ctrlnet.Diff(claim, n); len(mm) != 0 {
		t.Fatalf("self-consistent claim diffed: %v", mm)
	}

	// Perturbations must surface as mismatches.
	claim.DelayLevels[n.Regions[0]]++
	claim.Completion[99] = false // no-op key, keeps map comparable
	if mm := ctrlnet.Diff(claim, n); len(mm) != 1 {
		t.Fatalf("delay-level perturbation: got %v, want 1 mismatch", mm)
	} else if mm[0].Region != n.Regions[0] {
		t.Fatalf("mismatch attributed to G%d, want G%d", mm[0].Region, n.Regions[0])
	}
	claim.DelayLevels[n.Regions[0]]--

	claim.Regions = claim.Regions[1:]
	mm := ctrlnet.Diff(claim, n)
	if len(mm) != 1 || mm[0].Region != -1 {
		t.Fatalf("region-set perturbation: got %v, want one global mismatch", mm)
	}
}

// BenchmarkCtrlnetDeriveDLX prices one full derivation of the DLX control
// network; BenchmarkCtrlnetDeriveCached prices the memo hit every consumer
// after the first pays instead.
func BenchmarkCtrlnetDeriveDLX(b *testing.B) {
	m := dlxModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrlnet.DeriveFresh(m)
	}
}

func BenchmarkCtrlnetDeriveCached(b *testing.B) {
	m := dlxModule(b)
	ctrlnet.Derive(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrlnet.Derive(m)
	}
}
