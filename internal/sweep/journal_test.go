package sweep

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"desync/internal/faults"
)

func testHeader() Header {
	return Header{
		Design: "t", Seed: 9, Corners: []float64{1, 2}, Chips: 3, Sigma: 0.1,
		FaultsHash: HashFaults([]faults.Fault{{Class: faults.ClassStuckAt, Net: "n"}}),
		Total:      6,
	}
}

func testRecord(i int) Record {
	return Record{
		Index: i, Corner: i / 3, Chip: 0, Fault: i % 3,
		Outcome: &faults.Outcome{Detected: true, Period: 1.5 + float64(i)},
	}
}

// writeTestJournal builds a journal with n records and returns its path
// and raw image.
func writeTestJournal(t *testing.T, n int) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := CreateJournal(path, testHeader(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestJournalRoundTrip: records come back exactly, in order, with a clean
// length equal to the file size.
func TestJournalRoundTrip(t *testing.T) {
	_, data := writeTestJournal(t, 5)
	hdr, recs, clean, err := ReadJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || !hdr.equal(testHeader()) {
		t.Fatalf("header mangled: %+v", hdr)
	}
	if len(recs) != 5 || clean != len(data) {
		t.Fatalf("got %d records, clean %d of %d", len(recs), clean, len(data))
	}
	for i, r := range recs {
		if r.Index != i || r.Outcome == nil || r.Outcome.Period != 1.5+float64(i) {
			t.Fatalf("record %d mangled: %+v", i, r)
		}
	}
}

// TestJournalTruncatedTail: chopping any suffix off — a crash mid-write —
// must never be an error; the reader reports the longest clean prefix and
// resume continues from it.
func TestJournalTruncatedTail(t *testing.T) {
	_, data := writeTestJournal(t, 5)
	full, _, _, _ := ReadJournal(data)
	if full == nil {
		t.Fatal("baseline journal unreadable")
	}
	for cut := len(data) - 1; cut >= 0; cut-- {
		hdr, recs, clean, err := ReadJournal(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if clean > cut {
			t.Fatalf("cut %d: clean %d beyond data", cut, clean)
		}
		if hdr != nil {
			// Whatever survived must be an exact record prefix.
			for i, r := range recs {
				if r.Index != i {
					t.Fatalf("cut %d: record %d has index %d", cut, i, r.Index)
				}
			}
		} else if len(recs) != 0 {
			t.Fatalf("cut %d: records without a header", cut)
		}
	}
}

// TestJournalResumeAfterTruncation: a torn journal resumes — the tail is
// discarded, appends continue, and a full read sees the combined sequence.
func TestJournalResumeAfterTruncation(t *testing.T) {
	path, data := writeTestJournal(t, 5)
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := ResumeJournal(path, testHeader(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("resumed with %d records, want 4 (torn 5th discarded)", len(recs))
	}
	for i := len(recs); i < 6; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, recs, clean, err := ReadJournal(data)
	if err != nil || len(recs) != 6 || clean != len(data) {
		t.Fatalf("after resume: %d records, clean %d/%d, err %v", len(recs), clean, len(data), err)
	}
}

// TestJournalResumeMismatch: a journal for a different sweep is refused.
func TestJournalResumeMismatch(t *testing.T) {
	path, _ := writeTestJournal(t, 2)
	other := testHeader()
	other.Seed = 10
	if _, _, err := ResumeJournal(path, other, 0); !errors.Is(err, ErrMismatch) {
		t.Fatalf("mismatched header resumed: %v", err)
	}
}

// TestJournalCorruptLength: an implausible length prefix is corruption
// (typed), not a huge allocation or a panic.
func TestJournalCorruptLength(t *testing.T) {
	_, data := writeTestJournal(t, 3)
	bad := append([]byte(nil), data...)
	// First frame after the magic: blow up its length field.
	binary.LittleEndian.PutUint32(bad[len(journalMagic):], 1<<30)
	if _, _, _, err := ReadJournal(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted length prefix accepted: %v", err)
	}
}

// TestJournalCorruptMidFile: a CRC failure with more frames after it is
// damage, not a torn tail — refused with the typed error.
func TestJournalCorruptMidFile(t *testing.T) {
	_, data := writeTestJournal(t, 3)
	bad := append([]byte(nil), data...)
	// Flip a payload byte inside the header frame (well before EOF).
	bad[len(journalMagic)+10] ^= 0xFF
	if _, _, _, err := ReadJournal(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-file corruption accepted: %v", err)
	}
}

// TestJournalDuplicateIndex: a record stream that repeats or skips an
// index would double-count scenarios on replay — refused.
func TestJournalDuplicateIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.journal")
	j, err := CreateJournal(path, testHeader(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord(0)); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadJournal(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate index accepted: %v", err)
	}
}

// TestJournalBadMagic: a file that is not a journal is corruption, even
// when it is long enough to frame.
func TestJournalBadMagic(t *testing.T) {
	if _, _, _, err := ReadJournal([]byte("definitely not a journal file")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic accepted: %v", err)
	}
	// An empty or torn-magic file is a fresh journal, not corruption.
	if _, recs, clean, err := ReadJournal(nil); err != nil || len(recs) != 0 || clean != 0 {
		t.Fatalf("empty file: recs %d clean %d err %v", len(recs), clean, err)
	}
	if _, _, _, err := ReadJournal(journalMagic[:4]); err != nil {
		t.Fatalf("torn magic: %v", err)
	}
}

// TestJournalTornFinalCRC: the last frame fully written but with a wrong
// checksum — a torn write caught by CRC — reads as a truncation.
func TestJournalTornFinalCRC(t *testing.T) {
	_, data := writeTestJournal(t, 2)
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	hdr, recs, clean, err := ReadJournal(bad)
	if err != nil {
		t.Fatalf("torn final frame refused: %v", err)
	}
	if hdr == nil || len(recs) != 1 || clean >= len(bad) {
		t.Fatalf("torn final frame: %d records, clean %d", len(recs), clean)
	}
	// Sanity: the reported prefix re-reads cleanly.
	if _, recs2, _, err := ReadJournal(bad[:clean]); err != nil || len(recs2) != 1 {
		t.Fatalf("clean prefix does not re-read: %d records, %v", len(recs2), err)
	}
}
