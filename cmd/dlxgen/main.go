// Command dlxgen emits the DLX case-study netlist (Fig 5.2) as gate-level
// Verilog — the post-synthesis starting point of both flow branches.
//
// Usage: dlxgen [-lib HS|LL] [-o dlx.v]
package main

import (
	"flag"
	"fmt"
	"os"

	"desync/internal/designs"
	"desync/internal/stdcells"
	"desync/internal/verilog"
)

func main() {
	var (
		libVariant = flag.String("lib", "HS", "technology library variant: HS or LL")
		out        = flag.String("o", "dlx.v", "output file")
		arm        = flag.Bool("arm", false, "emit the ARM-like design instead")
	)
	flag.Parse()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "dlxgen: internal error: %v\n", r)
			os.Exit(3)
		}
	}()
	lib, err := stdcells.NewChecked(stdcells.Variant(*libVariant))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlxgen:", err)
		os.Exit(1)
	}
	d, err := designs.BuildDLX(lib, designs.TestProgram())
	if *arm {
		d, err = designs.BuildARMLike(lib, 42)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlxgen:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, []byte(verilog.Write(d)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dlxgen:", err)
		os.Exit(1)
	}
	st := d.Top.ComputeStats()
	fmt.Printf("%s: %d cells, %d nets, %d flip-flops -> %s\n",
		d.Name, st.Cells, st.Nets, st.FFs, *out)
}
