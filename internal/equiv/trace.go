package equiv

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one transition of a counterexample or simulated trace: the
// design net and the value it moved to.
type TraceEvent struct {
	Net   string `json:"net"`
	Value bool   `json:"value"`
}

// Trace is the dumpable counterexample format consumed by drequiv -replay:
// the violated rule, the firing sequence from reset, and the enabling
// marking of the final event. Seed records the randomization that found a
// cross-validation divergence, when one did.
type Trace struct {
	Design  string          `json:"design"`
	Rule    string          `json:"rule"`
	Msg     string          `json:"msg"`
	Events  []TraceEvent    `json:"events"`
	Marking map[string]bool `json:"marking,omitempty"`
	Gens    map[string]int  `json:"generations,omitempty"`
	Seed    int64           `json:"seed,omitempty"`
}

// CounterexampleTrace packages a violation for dumping.
func (r *Result) CounterexampleTrace() *Trace {
	if r.Violation == nil {
		return nil
	}
	v := r.Violation
	return &Trace{
		Design: r.Design, Rule: v.Rule, Msg: v.Msg,
		Events: v.Events, Marking: v.Marking, Gens: v.Gens,
	}
}

// WriteTrace writes the JSON trace.
func WriteTrace(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace parses a JSON trace and checks its minimal invariants.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("equiv: malformed trace: %w", err)
	}
	for i, e := range t.Events {
		if e.Net == "" {
			return nil, fmt.Errorf("equiv: trace event %d has no net", i)
		}
	}
	return &t, nil
}
