package verilog

import (
	"fmt"
	"strconv"
	"strings"

	"desync/internal/netlist"
)

// srcRange is a declared [msb:lsb] range.
type srcRange struct{ msb, lsb int }

func (r srcRange) width() int {
	if r.msb >= r.lsb {
		return r.msb - r.lsb + 1
	}
	return r.lsb - r.msb + 1
}

// bits returns the bit indices MSB-first.
func (r srcRange) bits() []int {
	out := make([]int, 0, r.width())
	if r.msb >= r.lsb {
		for i := r.msb; i >= r.lsb; i-- {
			out = append(out, i)
		}
	} else {
		for i := r.msb; i <= r.lsb; i++ {
			out = append(out, i)
		}
	}
	return out
}

// srcRef is a single-bit reference after expansion: a net name, or a
// constant, or explicitly open.
type srcRef struct {
	name string // "" for constants/open
	cval int8   // 0 or 1 for constants, -1 otherwise
	open bool
}

// srcConn connects an instance pin (single bit, possibly "base[idx]") to a
// reference list (MSB-first before pin expansion).
type srcConn struct {
	pin  string // "" for positional
	refs []srcRef
}

type srcInst struct {
	cell, name string
	conns      []srcConn
	positional bool
	line       int
}

type srcAssign struct {
	lhs, rhs []srcRef
	line     int
}

type srcModule struct {
	name      string
	portOrder []string // base names in header order
	dirs      map[string]netlist.PinDir
	ranges    map[string]srcRange // declared ranges (ports and wires)
	scalars   map[string]bool     // declared scalar wires/ports
	insts     []srcInst
	assigns   []srcAssign
}

func (m *srcModule) declWidth(name string) (srcRange, bool) {
	r, ok := m.ranges[name]
	return r, ok
}

// parser over the token stream. Tokens are pulled from the lexer on demand
// with one token of lookahead; a lexing error surfaces as EOF plus lexErr so
// the grammar unwinds normally and parseSource reports the scan failure.
type parser struct {
	lx     *lexer
	tok    token // current lookahead
	lexErr error
}

func newParser(src string) *parser {
	p := &parser{lx: &lexer{src: src, line: 1}}
	p.advance()
	return p
}

func (p *parser) advance() {
	if p.lexErr != nil {
		return
	}
	t, err := p.lx.next()
	if err != nil {
		p.lexErr = err
		p.tok = token{kind: tEOF, line: p.lx.line}
		return
	}
	p.tok = t
}

func (p *parser) peek() token { return p.tok }
func (p *parser) next() token { t := p.tok; p.advance(); return t }
func (p *parser) atEOF() bool { return p.tok.kind == tEOF }

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return fmt.Errorf("verilog: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tIdent {
		return t, fmt.Errorf("verilog: line %d: expected identifier, got %q", t.line, t.text)
	}
	return t, nil
}

// identName strips the escape backslash: netlist names never carry it.
func identName(t token) string { return strings.TrimPrefix(t.text, "\\") }

// parseSource parses all modules in the source.
func parseSource(src string) ([]*srcModule, error) {
	p := newParser(src)
	var mods []*srcModule
	for !p.atEOF() {
		t := p.next()
		if t.kind != tIdent || t.text != "module" {
			return nil, fmt.Errorf("verilog: line %d: expected 'module', got %q", t.line, t.text)
		}
		m, err := p.parseModule()
		if err != nil {
			if p.lexErr != nil {
				return nil, p.lexErr
			}
			return nil, err
		}
		mods = append(mods, m)
	}
	if p.lexErr != nil {
		return nil, p.lexErr
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("verilog: no modules in source")
	}
	return mods, nil
}

func (p *parser) parseModule() (*srcModule, error) {
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &srcModule{
		name:    identName(nameTok),
		dirs:    map[string]netlist.PinDir{},
		ranges:  map[string]srcRange{},
		scalars: map[string]bool{},
		// A typical cell instantiation spends ~60 source bytes; pre-sizing
		// the instance slice keeps million-gate imports from repeatedly
		// reallocating (and zero-filling) a many-MB backing array.
		insts: make([]srcInst, 0, (len(p.lx.src)-p.lx.pos)/64),
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for p.peek().kind != tPunct || p.peek().text != ")" {
		t := p.next()
		if t.kind == tPunct && t.text == "," {
			continue
		}
		if t.kind != tIdent {
			return nil, fmt.Errorf("verilog: line %d: bad port list token %q", t.line, t.text)
		}
		m.portOrder = append(m.portOrder, identName(t))
	}
	p.next() // ')'
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}

	for {
		t := p.peek()
		if t.kind == tEOF {
			return nil, fmt.Errorf("verilog: line %d: missing endmodule for %s", t.line, m.name)
		}
		if t.kind == tIdent && t.text == "endmodule" {
			p.next()
			return m, nil
		}
		switch {
		case t.kind == tIdent && (t.text == "input" || t.text == "output" || t.text == "inout"):
			if err := p.parseDecl(m, t.text); err != nil {
				return nil, err
			}
		case t.kind == tIdent && t.text == "wire":
			if err := p.parseDecl(m, "wire"); err != nil {
				return nil, err
			}
		case t.kind == tIdent && t.text == "assign":
			if err := p.parseAssign(m); err != nil {
				return nil, err
			}
		case t.kind == tIdent:
			if err := p.parseInst(m); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("verilog: line %d: unexpected token %q in module %s", t.line, t.text, m.name)
		}
	}
}

// parseDecl handles: input [7:0] a, b; / wire x; etc.
func (p *parser) parseDecl(m *srcModule, kind string) error {
	p.next() // keyword
	var rng *srcRange
	if p.peek().kind == tPunct && p.peek().text == "[" {
		r, err := p.parseRange()
		if err != nil {
			return err
		}
		rng = &r
	}
	for {
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		name := identName(t)
		// Redeclaration with the same shape is normal netlist style
		// (e.g. "output [7:0] q; wire [7:0] q;"); a shape conflict is not.
		if rng != nil {
			if m.scalars[name] {
				return fmt.Errorf("verilog: line %d: %s redeclared as a bus (was scalar)", t.line, name)
			}
			if prev, ok := m.ranges[name]; ok && prev != *rng {
				return fmt.Errorf("verilog: line %d: %s redeclared as [%d:%d] (was [%d:%d])",
					t.line, name, rng.msb, rng.lsb, prev.msb, prev.lsb)
			}
			m.ranges[name] = *rng
		} else {
			if _, ok := m.ranges[name]; ok {
				return fmt.Errorf("verilog: line %d: %s redeclared as a scalar (was a bus)", t.line, name)
			}
			m.scalars[name] = true
		}
		switch kind {
		case "input":
			m.dirs[name] = netlist.In
		case "output":
			m.dirs[name] = netlist.Out
		case "inout":
			m.dirs[name] = netlist.InOut
		}
		sep := p.next()
		if sep.kind == tPunct && sep.text == ";" {
			return nil
		}
		if sep.kind != tPunct || sep.text != "," {
			return fmt.Errorf("verilog: line %d: expected ',' or ';' in declaration", sep.line)
		}
	}
}

func (p *parser) parseRange() (srcRange, error) {
	if err := p.expectPunct("["); err != nil {
		return srcRange{}, err
	}
	msb, err := p.parseInt()
	if err != nil {
		return srcRange{}, err
	}
	if err := p.expectPunct(":"); err != nil {
		return srcRange{}, err
	}
	lsb, err := p.parseInt()
	if err != nil {
		return srcRange{}, err
	}
	if err := p.expectPunct("]"); err != nil {
		return srcRange{}, err
	}
	return srcRange{msb, lsb}, nil
}

func (p *parser) parseInt() (int, error) {
	t := p.next()
	if t.kind != tNumber {
		return 0, fmt.Errorf("verilog: line %d: expected number, got %q", t.line, t.text)
	}
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("verilog: line %d: bad number %q", t.line, t.text)
	}
	return v, nil
}

// parseAssign handles: assign lhs = rhs;
func (p *parser) parseAssign(m *srcModule) error {
	t := p.next() // 'assign'
	lhs, err := p.parseRefList(m)
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	rhs, err := p.parseRefList(m)
	if err != nil {
		return err
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	if len(lhs) != len(rhs) {
		return fmt.Errorf("verilog: line %d: assign width mismatch (%d vs %d)", t.line, len(lhs), len(rhs))
	}
	m.assigns = append(m.assigns, srcAssign{lhs: lhs, rhs: rhs, line: t.line})
	return nil
}

// parseInst handles: CELL instname ( .A(x), .Z(y) ); or positional.
func (p *parser) parseInst(m *srcModule) error {
	cellTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst := srcInst{cell: identName(cellTok), name: identName(nameTok), line: cellTok.line}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	first := true
	for {
		t := p.peek()
		if t.kind == tPunct && t.text == ")" {
			p.next()
			break
		}
		if !first {
			if err := p.expectPunct(","); err != nil {
				return err
			}
		}
		first = false
		if p.peek().kind == tPunct && p.peek().text == "." {
			p.next()
			pinTok, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectPunct("("); err != nil {
				return err
			}
			var refs []srcRef
			if p.peek().kind == tPunct && p.peek().text == ")" {
				refs = []srcRef{{open: true, cval: -1}}
			} else {
				refs, err = p.parseRefList(m)
				if err != nil {
					return err
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			inst.conns = append(inst.conns, srcConn{pin: identName(pinTok), refs: refs})
		} else {
			refs, err := p.parseRefList(m)
			if err != nil {
				return err
			}
			inst.positional = true
			inst.conns = append(inst.conns, srcConn{refs: refs})
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return err
	}
	m.insts = append(m.insts, inst)
	return nil
}

// parseRefList parses a reference: ident, ident[i], ident[m:l], constant, or
// a concatenation {r, r, ...}. Returns single-bit references MSB-first.
func (p *parser) parseRefList(m *srcModule) ([]srcRef, error) {
	t := p.peek()
	switch {
	case t.kind == tPunct && t.text == "{":
		p.next()
		var out []srcRef
		for {
			refs, err := p.parseRefList(m)
			if err != nil {
				return nil, err
			}
			out = append(out, refs...)
			sep := p.next()
			if sep.kind == tPunct && sep.text == "}" {
				return out, nil
			}
			if sep.kind != tPunct || sep.text != "," {
				return nil, fmt.Errorf("verilog: line %d: bad concatenation", sep.line)
			}
		}
	case t.kind == tNumber:
		p.next()
		return parseConst(t)
	case t.kind == tIdent:
		p.next()
		name := identName(t)
		if p.peek().kind == tPunct && p.peek().text == "[" {
			r, err := p.parseRangeOrIndex()
			if err != nil {
				return nil, err
			}
			var out []srcRef
			for _, b := range r.bits() {
				out = append(out, srcRef{name: fmt.Sprintf("%s[%d]", name, b), cval: -1})
			}
			return out, nil
		}
		// Bare name: expand if it is a declared bus.
		if r, ok := m.declWidth(name); ok {
			var out []srcRef
			for _, b := range r.bits() {
				out = append(out, srcRef{name: fmt.Sprintf("%s[%d]", name, b), cval: -1})
			}
			return out, nil
		}
		return []srcRef{{name: name, cval: -1}}, nil
	}
	return nil, fmt.Errorf("verilog: line %d: expected net reference, got %q", t.line, t.text)
}

// parseRangeOrIndex parses [i] or [m:l] after an identifier.
func (p *parser) parseRangeOrIndex() (srcRange, error) {
	if err := p.expectPunct("["); err != nil {
		return srcRange{}, err
	}
	a, err := p.parseInt()
	if err != nil {
		return srcRange{}, err
	}
	t := p.next()
	if t.kind == tPunct && t.text == "]" {
		return srcRange{a, a}, nil
	}
	if t.kind != tPunct || t.text != ":" {
		return srcRange{}, fmt.Errorf("verilog: line %d: bad bit select", t.line)
	}
	b, err := p.parseInt()
	if err != nil {
		return srcRange{}, err
	}
	if err := p.expectPunct("]"); err != nil {
		return srcRange{}, err
	}
	return srcRange{a, b}, nil
}

// parseConst expands 1'b0-style literals to constant bit refs, MSB-first.
func parseConst(t token) ([]srcRef, error) {
	s := t.text
	q := strings.IndexByte(s, '\'')
	if q < 0 {
		return nil, fmt.Errorf("verilog: line %d: bare number %q not supported as net", t.line, s)
	}
	width, err := strconv.Atoi(s[:q])
	if err != nil || width <= 0 || width > 64 {
		return nil, fmt.Errorf("verilog: line %d: bad constant width in %q", t.line, s)
	}
	if q+1 >= len(s) {
		return nil, fmt.Errorf("verilog: line %d: bad constant %q", t.line, s)
	}
	base := s[q+1]
	digits := s[q+2:]
	var val uint64
	switch base {
	case 'b', 'B':
		v, err := strconv.ParseUint(digits, 2, 64)
		if err != nil {
			return nil, fmt.Errorf("verilog: line %d: bad binary constant %q", t.line, s)
		}
		val = v
	case 'h', 'H':
		v, err := strconv.ParseUint(digits, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("verilog: line %d: bad hex constant %q", t.line, s)
		}
		val = v
	case 'd', 'D':
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("verilog: line %d: bad decimal constant %q", t.line, s)
		}
		val = v
	default:
		return nil, fmt.Errorf("verilog: line %d: unsupported constant base %q", t.line, s)
	}
	out := make([]srcRef, width)
	for i := 0; i < width; i++ {
		bit := int8(0)
		if val>>uint(width-1-i)&1 == 1 {
			bit = 1
		}
		out[i] = srcRef{cval: bit}
	}
	return out, nil
}
