package logic

import (
	"testing"
	"testing/quick"
)

func TestValueOps(t *testing.T) {
	cases := []struct {
		name    string
		f       func(a, b V) V
		a, b, r V
	}{
		{"and11", And, H, H, H},
		{"and10", And, H, L, L},
		{"and0x", And, L, X, L},
		{"andx1", And, X, H, X},
		{"andxx", And, X, X, X},
		{"or00", Or, L, L, L},
		{"or01", Or, L, H, H},
		{"or1x", Or, H, X, H},
		{"orx0", Or, X, L, X},
		{"xor01", Xor, L, H, H},
		{"xor11", Xor, H, H, L},
		{"xorx1", Xor, X, H, X},
	}
	for _, c := range cases {
		if got := c.f(c.a, c.b); got != c.r {
			t.Errorf("%s: got %v want %v", c.name, got, c.r)
		}
	}
	if H.Not() != L || L.Not() != H || X.Not() != X {
		t.Error("Not is wrong")
	}
}

func TestValueString(t *testing.T) {
	if L.String() != "0" || H.String() != "1" || X.String() != "x" {
		t.Fatal("String rendering wrong")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	f := func(u uint64) bool {
		v := VectorFromUint(u, 16)
		return v.Uint() == u&0xffff && v.Known()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorString(t *testing.T) {
	v := VectorFromUint(0b1010, 4)
	if v.String() != "1010" {
		t.Fatalf("got %q", v.String())
	}
	if !v.Known() {
		t.Fatal("expected known")
	}
	v[2] = X
	if v.Known() {
		t.Fatal("expected unknown after setting X")
	}
}

func TestParseExprBasic(t *testing.T) {
	cases := []struct {
		in  string
		env map[string]V
		out V
	}{
		{"A&B", map[string]V{"A": H, "B": H}, H},
		{"A*B", map[string]V{"A": H, "B": L}, L},
		{"A+B", map[string]V{"A": L, "B": H}, H},
		{"A|B", map[string]V{"A": L, "B": L}, L},
		{"!A", map[string]V{"A": H}, L},
		{"A'", map[string]V{"A": H}, L},
		{"A^B", map[string]V{"A": H, "B": H}, L},
		{"A^B^C", map[string]V{"A": H, "B": H, "C": H}, H},
		{"(A+B)&!C", map[string]V{"A": H, "B": L, "C": L}, H},
		{"(A+B)&!C", map[string]V{"A": H, "B": L, "C": H}, L},
		{"A&B+C&D", map[string]V{"A": L, "B": L, "C": H, "D": H}, H},
		{"0", nil, L},
		{"1", nil, H},
		{"(S&A)|(!S&B)", map[string]V{"S": L, "A": H, "B": L}, L},
		{"(S&A)|(!S&B)", map[string]V{"S": H, "A": H, "B": L}, H},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if got := e.Eval(c.env); got != c.out {
			t.Errorf("%q under %v: got %v want %v", c.in, c.env, got, c.out)
		}
	}
}

func TestParseExprImplicitAnd(t *testing.T) {
	e, err := ParseExpr("A (B+C)")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Eval(map[string]V{"A": H, "B": L, "C": H}); got != H {
		t.Fatalf("implicit and: got %v", got)
	}
	if got := e.Eval(map[string]V{"A": L, "B": H, "C": H}); got != L {
		t.Fatalf("implicit and: got %v", got)
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, bad := range []string{"", "(A", "A)", "&A", "A!", "A$B"} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestExprVars(t *testing.T) {
	e := MustParseExpr("(S&A)|(!S&B)")
	vars := e.Vars()
	if len(vars) != 3 || vars[0] != "A" || vars[1] != "B" || vars[2] != "S" {
		t.Fatalf("got vars %v", vars)
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Render then re-parse: must evaluate identically over all assignments.
	exprs := []string{
		"(S&A)|(!S&B)",
		"A^B^C",
		"!(A&B)|C",
		"A&!B&C|!A&B",
	}
	for _, s := range exprs {
		e1 := MustParseExpr(s)
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", s, e1.String(), err)
		}
		vars := e1.Vars()
		for mask := 0; mask < 1<<len(vars); mask++ {
			env := map[string]V{}
			for i, v := range vars {
				env[v] = FromBool(mask>>i&1 == 1)
			}
			if e1.Eval(env) != e2.Eval(env) {
				t.Fatalf("%q: round trip mismatch under %v", s, env)
			}
		}
	}
}

// Property: three-valued operators agree with boolean operators on known
// values, and are monotone w.r.t. information (replacing X by any value never
// changes a known output).
func TestThreeValuedMonotone(t *testing.T) {
	vals := []V{L, H, X}
	ops := []struct {
		name string
		f    func(a, b V) V
		bf   func(a, b bool) bool
	}{
		{"and", And, func(a, b bool) bool { return a && b }},
		{"or", Or, func(a, b bool) bool { return a || b }},
		{"xor", Xor, func(a, b bool) bool { return a != b }},
	}
	for _, op := range ops {
		for _, a := range vals {
			for _, b := range vals {
				r := op.f(a, b)
				if a.Known() && b.Known() {
					want := FromBool(op.bf(a.Bool(), b.Bool()))
					if r != want {
						t.Errorf("%s(%v,%v)=%v want %v", op.name, a, b, r, want)
					}
					continue
				}
				// If output is known despite an X input, then it must be
				// independent of the X input(s).
				if r.Known() {
					for _, ra := range refine(a) {
						for _, rb := range refine(b) {
							if op.f(ra, rb) != r {
								t.Errorf("%s(%v,%v)=%v not stable under refinement (%v,%v)",
									op.name, a, b, r, ra, rb)
							}
						}
					}
				}
			}
		}
	}
}

func refine(v V) []V {
	if v == X {
		return []V{L, H}
	}
	return []V{v}
}
