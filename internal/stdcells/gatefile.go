package stdcells

import (
	"fmt"
	"strings"

	"desync/internal/netlist"
)

// The gatefile text format (§3.1.1): one line per cell with its type and
// pin roles, plus replacement rules mapping each flip-flop to its
// master/slave latch recipe. The paper's tool generates this file once per
// library migration with a .lib-parsing script; here WriteGatefile and
// ParseGatefile are that script and its consumer.

// ReplacementRule names the latch recipe for one flip-flop cell.
type ReplacementRule struct {
	FF    string
	Latch string   // latch cell for master and slave
	Extra []string // helper structures: scanmux, syncreset, clockgate, asyncset
}

// ReplacementRules derives the flip-flop substitution table for a library:
// flip-flops with asynchronous reset use the reset latch; scan, synchronous
// reset, clock gating and asynchronous set list the helper gating that
// Fig 3.1 prescribes.
func ReplacementRules(lib *netlist.Library) []ReplacementRule {
	var rules []ReplacementRule
	for _, name := range sortedCellNames(lib) {
		c := lib.Cells[name]
		if c.Kind != netlist.KindFF {
			continue
		}
		r := ReplacementRule{FF: name, Latch: "LATQX1"}
		s := c.Seq
		if s.AsyncReset != "" {
			r.Latch = "LATRQX1"
		}
		if s.ScanIn != "" {
			r.Extra = append(r.Extra, "scanmux:MUX2X1")
		}
		if s.AsyncSet != "" {
			r.Extra = append(r.Extra, "asyncset:OR2X1")
		}
		if s.ClockGate != "" {
			r.Extra = append(r.Extra, "clockgate:AND2X1")
		}
		if name == "DFFSYNRX1" {
			r.Extra = append(r.Extra, "syncreset:ANDN2X1")
		}
		rules = append(rules, r)
	}
	return rules
}

// WriteGatefile renders the gatefile as text.
func WriteGatefile(lib *netlist.Library) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# gatefile for %s (%s)\n", lib.Name, lib.Variant)
	g := ExtractGatefile(lib)
	for _, e := range g.Cells {
		fmt.Fprintf(&sb, "cell %s %s", e.Name, e.Kind)
		for _, p := range e.Pins {
			fmt.Fprintf(&sb, " %s:%s:%s", p.Name, dirCode(p.Dir), classCode(p.Class))
		}
		sb.WriteByte('\n')
	}
	for _, r := range ReplacementRules(lib) {
		fmt.Fprintf(&sb, "replace %s -> %s", r.FF, r.Latch)
		for _, x := range r.Extra {
			fmt.Fprintf(&sb, " %s", x)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// GatefileSummary is the parsed view of a gatefile text.
type GatefileSummary struct {
	Cells    map[string]netlist.CellKind
	Pins     map[string][]string // cell -> "name:dir:class" entries
	Replaces map[string]ReplacementRule
}

// ParseGatefile reads the text form back.
func ParseGatefile(src string) (*GatefileSummary, error) {
	out := &GatefileSummary{
		Cells:    map[string]netlist.CellKind{},
		Pins:     map[string][]string{},
		Replaces: map[string]ReplacementRule{},
	}
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "cell":
			if len(fields) < 3 {
				return nil, fmt.Errorf("gatefile: line %d: short cell line", lineNo+1)
			}
			kind, err := kindOf(fields[2])
			if err != nil {
				return nil, fmt.Errorf("gatefile: line %d: %v", lineNo+1, err)
			}
			out.Cells[fields[1]] = kind
			out.Pins[fields[1]] = fields[3:]
		case "replace":
			if len(fields) < 4 || fields[2] != "->" {
				return nil, fmt.Errorf("gatefile: line %d: bad replace line", lineNo+1)
			}
			out.Replaces[fields[1]] = ReplacementRule{FF: fields[1], Latch: fields[3], Extra: fields[4:]}
		default:
			return nil, fmt.Errorf("gatefile: line %d: unknown directive %q", lineNo+1, fields[0])
		}
	}
	return out, nil
}

func dirCode(d netlist.PinDir) string {
	switch d {
	case netlist.In:
		return "in"
	case netlist.Out:
		return "out"
	}
	return "inout"
}

var classCodes = map[netlist.PinClass]string{
	netlist.ClassData:       "data",
	netlist.ClassClock:      "clock",
	netlist.ClassEnable:     "enable",
	netlist.ClassAsyncSet:   "aset",
	netlist.ClassAsyncReset: "areset",
	netlist.ClassScanIn:     "scanin",
	netlist.ClassScanEnable: "scanen",
	netlist.ClassOutput:     "q",
	netlist.ClassOutputN:    "qn",
}

func classCode(c netlist.PinClass) string { return classCodes[c] }

func kindOf(s string) (netlist.CellKind, error) {
	for _, k := range []netlist.CellKind{
		netlist.KindComb, netlist.KindFF, netlist.KindLatch,
		netlist.KindCElem, netlist.KindGC, netlist.KindTie,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown cell kind %q", s)
}
