package stg

import (
	"strings"
	"testing"
)

// A simple two-event ring: a+ -> a- -> a+ with one token.
func toggleGraph() *Graph {
	g := NewGraph()
	p, m := g.Ev("a", true), g.Ev("a", false)
	g.AddArc(p, m, 0)
	g.AddArc(m, p, 1)
	return g
}

func TestFireSemantics(t *testing.T) {
	g := toggleGraph()
	m0 := g.Initial()
	p, mi := g.Ev("a", true), g.Ev("a", false)
	if !g.Enabled(m0, p) || g.Enabled(m0, mi) {
		t.Fatal("only a+ should be enabled initially")
	}
	m1 := g.Fire(m0, p)
	if g.Enabled(m1, p) || !g.Enabled(m1, mi) {
		t.Fatal("after a+, only a- should be enabled")
	}
	m2 := g.Fire(m1, mi)
	if m2.key() != m0.key() {
		t.Fatal("firing a+ then a- must return to the initial marking")
	}
}

func TestReachableCounts(t *testing.T) {
	g := toggleGraph()
	r := g.Reachable(100)
	if r.States != 2 || r.Deadlock || r.Unbounded {
		t.Fatalf("toggle: %+v", r)
	}
}

func TestDeadlockDetection(t *testing.T) {
	g := NewGraph()
	p, m := g.Ev("a", true), g.Ev("a", false)
	g.AddArc(p, m, 0)
	g.AddArc(m, p, 0) // token-free cycle: dead
	r := g.Reachable(100)
	if !r.Deadlock {
		t.Fatal("expected deadlock")
	}
	if g.Live() {
		t.Fatal("token-free cycle must not be live")
	}
}

func TestLiveStructural(t *testing.T) {
	if !toggleGraph().Live() {
		t.Fatal("toggle graph is live")
	}
	// Not strongly connected: a dangling event.
	g := toggleGraph()
	g.Ev("b", true)
	if g.Live() {
		t.Fatal("disconnected graph must not be live")
	}
}

func TestEventString(t *testing.T) {
	g := toggleGraph()
	if g.Events[0].String() != "a+" || g.Events[1].String() != "a-" {
		t.Fatal("event rendering wrong")
	}
	if !strings.Contains(g.Dump(), "a+ -> a- [0]") {
		t.Fatal("dump missing arc")
	}
}

// Fig 2.4: the protocol lattice. State counts decrease with concurrency;
// all lattice members are live and flow-equivalent; the two deliberately
// broken variants fail in exactly the advertised way.
func TestProtocolLattice(t *testing.T) {
	for _, p := range Protocols {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pg, err := p.PairGraph()
			if err != nil {
				t.Fatal(err)
			}
			r := pg.Reachable(10000)
			if p.ExpectStates > 0 {
				if r.Unbounded {
					t.Fatal("pair STG unbounded")
				}
				if r.States != p.ExpectStates {
					t.Errorf("pair states = %d, want %d", r.States, p.ExpectStates)
				}
			}
			rr, err := p.CheckRing(2, 2_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if rr.Live != p.ExpectLive {
				t.Errorf("ring live = %v, want %v", rr.Live, p.ExpectLive)
			}
			if rr.FlowEquiv != p.ExpectFE {
				t.Errorf("ring flow-equivalent = %v, want %v (violation: %s)",
					rr.FlowEquiv, p.ExpectFE, rr.Violation)
			}
		})
	}
}

func TestLatticeOrderedByConcurrency(t *testing.T) {
	// The five valid protocols must have strictly decreasing state counts.
	var counts []int
	for _, p := range Protocols {
		if !p.ExpectLive || !p.ExpectFE {
			continue
		}
		pg, err := p.PairGraph()
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, pg.Reachable(10000).States)
	}
	if len(counts) != 5 {
		t.Fatalf("expected 5 valid protocols, got %d", len(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] {
			t.Fatalf("lattice not strictly decreasing: %v", counts)
		}
	}
}

func TestRingScalesToMoreRegisters(t *testing.T) {
	p, err := ProtocolByName("semi-decoupled")
	if err != nil {
		t.Fatal(err)
	}
	for _, regs := range []int{2, 3} {
		rr, err := p.CheckRing(regs, 5_000_000)
		if err != nil {
			t.Fatalf("regs=%d: %v", regs, err)
		}
		if !rr.Live || !rr.FlowEquiv {
			t.Fatalf("regs=%d: live=%v FE=%v (%s)", regs, rr.Live, rr.FlowEquiv, rr.Violation)
		}
	}
}

func TestProtocolByName(t *testing.T) {
	if _, err := ProtocolByName("semi-decoupled"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProtocolByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFallDecoupledViolationIsOverwrite(t *testing.T) {
	p, _ := ProtocolByName("fall-decoupled-unsafe")
	rr, err := p.CheckRing(2, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rr.FlowEquiv {
		t.Fatal("fall-decoupled must not be flow-equivalent")
	}
	if rr.Violation == "" {
		t.Fatal("violation message missing")
	}
}

func TestOverConstrainedDeadlocks(t *testing.T) {
	p, _ := ProtocolByName("over-constrained")
	rr, err := p.CheckRing(2, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Live {
		t.Fatal("over-constrained must deadlock")
	}
}

func TestPairTokensRejectNegative(t *testing.T) {
	// An arc whose occurrence pairing is inconsistent with the reset phase
	// must be reported, not silently mis-marked.
	bad := CrossArc{FromA: false, FromPlus: true, ToA: true, ToPlus: true, Offset: 0} // A+(k) after B+(k)
	if _, err := pairTokens(bad, true, false); err == nil {
		t.Fatal("expected negative-marking error")
	}
}
