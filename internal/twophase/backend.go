package twophase

import (
	"context"
	"fmt"
	"sort"

	"desync/internal/core"
	"desync/internal/netlist"
	"desync/internal/sta"
)

func init() { core.RegisterBackend(backend{}) }

// backend plugs the two-phase generator into the shared stage skeleton:
// the same flip-flop substitution and grouping as the desync backend, a
// Size stage that parameterizes the ring from the per-region STA budgets,
// a Generate stage that inserts the generator and distribution, and the
// claim-versus-derivation cross-check at export.
type backend struct{}

func (backend) Name() string { return core.BackendTwoPhase }

// Canonicalize rejects modes — the backend has a single strategy — and
// zeroes the desync-only knobs (mux taps, completion margin), which are
// inert here and would otherwise split the job server's cache entries.
func (backend) Canonicalize(o core.Options) (core.Options, error) {
	if o.Mode != "" {
		return o, fmt.Errorf("the twophase backend has no modes (got %q)", o.Mode)
	}
	o.MuxTaps = false
	o.TapScales = nil
	o.CompletionMargin = 0
	return o, nil
}

func (backend) Substitute(ctx context.Context, f *core.Flow) error {
	sub, err := core.SubstituteFlipFlops(f.Design)
	if err != nil {
		return err
	}
	f.Res.Substitution = sub
	return nil
}

func (backend) Size(ctx context.Context, f *core.Flow) error {
	rds, err := sta.RegionDelays(ctx, f.Design.Top, netlist.Worst,
		sta.Options{Parallelism: f.Opts.Parallelism})
	if err != nil {
		return err
	}
	f.Res.RegionDelays = rds
	regions := make([]int, 0, len(f.Res.Substitution.Enables))
	for g := range f.Res.Substitution.Enables {
		regions = append(regions, g)
	}
	sort.Ints(regions)
	siz, err := SizeGenerator(f.Design.Lib, regions, rds, f.Opts.Margin, f.Opts.Period)
	if err != nil {
		return err
	}
	f.Res.BackendResult = &Result{Sizing: *siz}
	return nil
}

func (backend) Generate(ctx context.Context, f *core.Flow) error {
	tp, ok := f.Res.BackendResult.(*Result)
	if !ok {
		return fmt.Errorf("twophase: generate ran without a sizing result")
	}
	enables := make(map[int]Enable, len(f.Res.Substitution.Enables))
	for g, en := range f.Res.Substitution.Enables {
		enables[g] = Enable{Master: en.Master, Slave: en.Slave}
	}
	if err := Generate(f.Design, enables, tp); err != nil {
		return err
	}
	f.Res.Constraints = tp.Constraints
	return nil
}

func (backend) Verify(ctx context.Context, f *core.Flow) error {
	tp, ok := f.Res.BackendResult.(*Result)
	if !ok || tp.Claim == nil {
		return fmt.Errorf("twophase: verify ran without a generate claim")
	}
	diffs := Diff(tp.Claim, Derive(f.Design.Top))
	if len(diffs) > 0 {
		return fmt.Errorf("netlist disagrees with the generate stage's claim: %v (and %d more)",
			diffs[0], len(diffs)-1)
	}
	return nil
}
