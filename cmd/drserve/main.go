// Command drserve runs the desynchronization flow as an HTTP job service:
// POST a design (a built-in generator name or an uploaded gate-level
// netlist) with flow options, stream per-stage progress as NDJSON, and
// fetch the exported netlist, constraints and verification reports from
// stable artifact URLs. Repeated submissions of the same design and
// options are served byte-identically from a content-addressed cache.
//
// Usage:
//
//	drserve [-addr :8080] [-queue 16] [-workers 2] [-j N] [-cache 64]
//	        [-max-upload 4194304] [-drain-grace 5s]
//	drserve -smoke
//	drserve -loadtest [-clients 8] [-rounds 2] [-designs dlx,arm,fir]
//	        [-addr ...]
//
// API:
//
//	POST /jobs                        {"gen":"dlx","options":{...}} or
//	                                  {"verilog":"...","top":"..."}
//	GET  /jobs                        admitted jobs, in admission order
//	GET  /jobs/{id}                   status snapshot
//	GET  /jobs/{id}/events            NDJSON progress stream to terminal
//	GET  /jobs/{id}/artifacts/{name}  netlist.v constraints.sdc lint.json
//	                                  static.json equiv.json faults.json
//	                                  result.json
//	POST /jobs/{id}/cancel            cancel queued or running job
//	GET  /stats                       queue, job and cache counters
//	GET  /healthz                     ok / draining
//
// SIGTERM or Ctrl-C drains: new submissions get 503, queued jobs are
// canceled, running jobs get -drain-grace to finish before their contexts
// are canceled, then the listener shuts down. A second signal kills.
//
// -smoke starts an in-process server on an ephemeral port, submits the
// DLX, polls it to completion, resubmits and verifies the cache hit is
// instant and byte-identical — the make-check gate. -loadtest drives a
// load test against -addr (starting an in-process server when the flag is
// left at its default), prints the latency/throughput/cache table, then
// sends itself SIGTERM to exercise the drain path for real.
//
// Exit codes: 0 clean (server drained, smoke passed, load test passed),
// 1 failure, 2 usage errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"

	"desync/internal/cliutil"
	"desync/internal/flowserv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type serveOpts struct {
	addr       string
	queue      int
	workers    int
	cache      int
	maxUpload  int64
	drainGrace time.Duration
	jobJ       int

	smoke    bool
	loadtest bool
	clients  int
	rounds   int
	designs  string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := serveOpts{}
	fs.StringVar(&o.addr, "addr", ":8080", "listen address (server) or target address (loadtest)")
	fs.IntVar(&o.queue, "queue", 0, "queued-job bound; past it submissions get 503 (0 = 16)")
	fs.IntVar(&o.workers, "workers", 0, "jobs run concurrently (0 = 2)")
	fs.IntVar(&o.cache, "cache", 0, "content-addressed result cache entries (0 = 64)")
	fs.Int64Var(&o.maxUpload, "max-upload", 0, "POST body bound in bytes (0 = 4 MiB)")
	fs.DurationVar(&o.drainGrace, "drain-grace", 0, "running-job grace after SIGTERM (0 = 5s)")
	cliutil.ParallelismVar(fs, &o.jobJ)
	fs.BoolVar(&o.smoke, "smoke", false, "run the self-contained smoke check and exit")
	fs.BoolVar(&o.loadtest, "loadtest", false, "run a load test and exit")
	fs.IntVar(&o.clients, "clients", 8, "loadtest: concurrent clients")
	fs.IntVar(&o.rounds, "rounds", 2, "loadtest: rounds per client over the design list")
	fs.StringVar(&o.designs, "designs", "dlx,arm,fir", "loadtest: comma-separated gen designs")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := flowserv.Config{
		QueueDepth:     o.queue,
		Workers:        o.workers,
		JobParallelism: o.jobJ,
		CacheEntries:   o.cache,
		MaxUploadBytes: o.maxUpload,
		DrainGrace:     o.drainGrace,
	}

	var err error
	var interrupted bool
	switch {
	case o.smoke:
		interrupted, err = cliutil.RunDrained(func(ctx context.Context) error {
			return runSmoke(ctx, cfg, stdout)
		})
	case o.loadtest:
		interrupted, err = cliutil.RunDrained(func(ctx context.Context) error {
			return runLoadTest(ctx, cfg, o, stdout)
		})
	default:
		interrupted, err = cliutil.RunDrained(func(ctx context.Context) error {
			return runServer(ctx, cfg, o.addr, stdout)
		})
		if interrupted {
			// The drained server is the clean exit, not a failure.
			fmt.Fprintln(stdout, "drserve: drained and shut down")
			return 0
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "drserve:", err)
		if interrupted {
			fmt.Fprintln(stderr, "drserve: interrupted before completing")
		}
		return 1
	}
	return 0
}

// runServer serves until the drained context cancels, then reports the
// cancellation so RunDrained classifies the exit.
func runServer(ctx context.Context, cfg flowserv.Config, addr string, stdout io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "drserve: listening on %s\n", ln.Addr())
	if err := flowserv.New(cfg).Serve(ctx, ln); err != nil {
		return err
	}
	return ctx.Err()
}

// startLocal runs an in-process server on an ephemeral port and returns
// its base URL plus a shutdown function.
func startLocal(ctx context.Context, cfg flowserv.Config) (base string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srvCtx, cancel := context.WithCancel(ctx)
	errc := make(chan error, 1)
	go func() { errc <- flowserv.New(cfg).Serve(srvCtx, ln) }()
	var once sync.Once
	var srvErr error
	shutdown = func() error {
		once.Do(func() {
			cancel()
			srvErr = <-errc
		})
		return srvErr
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// runSmoke is the make-check gate: full job lifecycle plus the cache-hit
// guarantee, against a real listener.
func runSmoke(ctx context.Context, cfg flowserv.Config, stdout io.Writer) error {
	base, shutdown, err := startLocal(ctx, cfg)
	if err != nil {
		return err
	}
	defer shutdown() //nolint:errcheck // the fresh-run error already decided the verdict

	submit := func() (flowserv.Status, time.Duration, error) {
		start := time.Now()
		var st flowserv.Status
		err := postJSON(ctx, base+"/jobs", `{"gen":"dlx"}`, &st)
		if err != nil {
			return st, 0, err
		}
		for !terminal(st.State) {
			select {
			case <-time.After(100 * time.Millisecond):
			case <-ctx.Done():
				return st, 0, ctx.Err()
			}
			if err := getJSON(ctx, base+"/jobs/"+st.ID, &st); err != nil {
				return st, 0, err
			}
		}
		return st, time.Since(start), nil
	}

	fresh, freshTook, err := submit()
	if err != nil {
		return err
	}
	if fresh.State != flowserv.StateDone {
		return fmt.Errorf("fresh DLX job ended %s: %s", fresh.State, fresh.Error)
	}
	if fresh.Cached {
		return fmt.Errorf("fresh job claims to be cached")
	}
	freshNetlist, err := getBytes(ctx, base+"/jobs/"+fresh.ID+"/artifacts/"+flowserv.ArtifactNetlist)
	if err != nil {
		return err
	}

	hit, hitTook, err := submit()
	if err != nil {
		return err
	}
	if hit.State != flowserv.StateDone || !hit.Cached {
		return fmt.Errorf("resubmission not served from cache: state=%s cached=%v", hit.State, hit.Cached)
	}
	if hit.CacheKey != fresh.CacheKey {
		return fmt.Errorf("cache keys differ across identical submissions")
	}
	hitNetlist, err := getBytes(ctx, base+"/jobs/"+hit.ID+"/artifacts/"+flowserv.ArtifactNetlist)
	if err != nil {
		return err
	}
	if !bytes.Equal(freshNetlist, hitNetlist) {
		return fmt.Errorf("cached netlist differs from the fresh run's bytes")
	}
	if hitTook > freshTook/2 {
		return fmt.Errorf("cache hit took %v vs %v fresh — not instant", hitTook, freshTook)
	}
	if err := shutdown(); err != nil {
		return fmt.Errorf("drain after smoke: %w", err)
	}
	fmt.Fprintf(stdout, "drserve: smoke ok (fresh %v, cached %v, byte-identical netlist, drained)\n",
		freshTook.Round(time.Millisecond), hitTook.Round(time.Microsecond))
	return nil
}

// runLoadTest drives the load table and then exercises the SIGTERM drain
// path for real by signalling itself.
func runLoadTest(ctx context.Context, cfg flowserv.Config, o serveOpts, stdout io.Writer) error {
	base := "http://" + strings.TrimPrefix(o.addr, "http://")
	var shutdown func() error
	if o.addr == ":8080" { // default flag: self-host on an ephemeral port
		var err error
		base, shutdown, err = startLocal(ctx, cfg)
		if err != nil {
			return err
		}
	}
	rep, err := flowserv.RunLoadTest(ctx, flowserv.LoadConfig{
		BaseURL: base,
		Clients: o.clients,
		Rounds:  o.rounds,
		Designs: strings.Split(o.designs, ","),
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.Render())
	if len(rep.Errors) > 0 {
		return fmt.Errorf("%d job(s) failed during the load test", len(rep.Errors))
	}
	if shutdown == nil {
		return nil
	}
	// Exercise the real signal path: SIGTERM ourselves, then drain the
	// in-process server under the now-canceled context.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return fmt.Errorf("self-SIGTERM: %w", err)
	}
	<-ctx.Done()
	if err := shutdown(); err != nil {
		return fmt.Errorf("drain under SIGTERM: %w", err)
	}
	fmt.Fprintln(stdout, "drserve: drained cleanly under SIGTERM")
	return nil
}

func terminal(state string) bool {
	return state == flowserv.StateDone || state == flowserv.StateFailed ||
		state == flowserv.StateCanceled
}

func postJSON(ctx context.Context, url, body string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(req, v)
}

func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(req, v)
}

func doJSON(req *http.Request, v any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s %s: HTTP %d: %s", req.Method, req.URL, resp.StatusCode,
			strings.TrimSpace(string(b)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func getBytes(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
