// Command libprep performs the library-preparation step of §3.1: it emits
// the built-in technology libraries as per-corner Liberty files and prints
// the gatefile — the per-cell name/type/pin summary the desynchronization
// tool works from.
//
// Usage: libprep [-variant HS|LL] [-dir .] [-gatefile]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"desync/internal/liberty"
	"desync/internal/netlist"
	"desync/internal/stdcells"
)

func main() {
	var (
		variant  = flag.String("variant", "HS", "library variant: HS or LL")
		dir      = flag.String("dir", ".", "output directory for .lib files")
		gatefile = flag.Bool("gatefile", false, "print the gatefile to stdout")
	)
	flag.Parse()
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "libprep: internal error: %v\n", r)
			os.Exit(3)
		}
	}()
	lib, err := stdcells.NewChecked(stdcells.Variant(*variant))
	if err != nil {
		fmt.Fprintln(os.Stderr, "libprep:", err)
		os.Exit(1)
	}
	for _, corner := range []netlist.Corner{netlist.Best, netlist.Worst} {
		path := filepath.Join(*dir, fmt.Sprintf("%s_%s.lib", lib.Name, corner))
		if err := os.WriteFile(path, []byte(liberty.WriteCorner(lib, corner)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "libprep:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
	if *gatefile {
		fmt.Print(stdcells.WriteGatefile(lib))
	}
}
