package flowserv

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"desync/internal/core"
	"desync/internal/equiv"
	"desync/internal/faults"
	"desync/internal/lint"
	"desync/internal/mga"
	"desync/internal/netlist"
	"desync/internal/sta"
	_ "desync/internal/twophase" // registers the twophase backend with the core flow
	"desync/internal/verilog"
)

// Artifact names served under /jobs/{id}/artifacts/. Every successful job
// has the first three plus result.json; equiv.json and faults.json appear
// when their gates were requested.
const (
	ArtifactNetlist     = "netlist.v"
	ArtifactConstraints = "constraints.sdc"
	ArtifactLint        = "lint.json"
	ArtifactStatic      = "static.json"
	ArtifactEquiv       = "equiv.json"
	ArtifactFaults      = "faults.json"
	ArtifactResult      = "result.json"
)

// Summary is result.json: what the run produced, in one stable record.
type Summary struct {
	Design      string      `json:"design"`
	Gen         string      `json:"gen,omitempty"`
	Lib         string      `json:"lib"`
	CacheKey    string      `json:"cacheKey"`
	Options     FlowOptions `json:"options"`
	Period      float64     `json:"period"`
	Regions     int         `json:"regions"`
	Cleaned     int         `json:"cleanedCells"`
	FFs         int         `json:"ffsSubstituted"`
	Controllers int         `json:"controllers"`
	DelayCells  int         `json:"delayCells"`
	UnderMargin []int       `json:"underMargin,omitempty"`
	LintErrors  int         `json:"lintErrors"`
	StaticOK    bool        `json:"staticOK"`
	EquivRan    bool        `json:"equivRan"`
	EquivNote   string      `json:"equivNote,omitempty"`
	FaultsRan   bool        `json:"faultsRan"`
	Artifacts   []string    `json:"artifacts"`
}

// runGuarded executes one job's flow with the package's single panic
// quarantine: a panic escaping any kernel (malformed upload driving a
// builder guard, an internal invariant breach) fails that job, never the
// server. The boundary mirrors internal/sweep's runQuarantined and is
// audited in cmd/repolint's recover allowlist.
func runGuarded(ctx context.Context, j *job, jobParallelism int) (arts map[string][]byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("flow panic (quarantined): %v", r)
		}
	}()
	return runFlow(ctx, j, jobParallelism)
}

// testStageHook, when non-nil, is invoked on every stage transition after
// the progress event is recorded. Tests use it to hold a job in flight
// deterministically: the flow on the small generated inputs is far too fast
// to race HTTP cancel/drain requests against.
var testStageHook func(ctx context.Context, stage string)

// runFlow drives the whole flow for one job: pre-import lint, the
// desynchronization pipeline with per-stage progress events and mid-flow
// lint gates, the post-export lint / static / optional equiv and faults
// gates, and the artifact exports. It returns the artifacts produced so
// far even on failure, so a tripped gate stays diagnosable over HTTP.
func runFlow(ctx context.Context, j *job, jobParallelism int) (map[string][]byte, error) {
	arts := map[string][]byte{}
	d := j.design
	// Submit-time validation already canonicalized once; a failure here
	// would mean the request mutated in flight.
	opts, err := j.req.Options.Canonicalize()
	if err != nil {
		return arts, fmt.Errorf("options: %w", err)
	}
	canonical := opts
	opts.Parallelism = jobParallelism

	// Pre-import gate: reject structurally broken inputs before the heavy
	// pipeline touches them (same discipline as drdesync).
	pre := lint.CheckDesign(d, lint.Options{Parallelism: opts.Parallelism})
	if n := pre.Errors(); n > 0 {
		return arts, fmt.Errorf("pre-import lint: %d error(s), first: %s", n, pre.Findings[0])
	}
	j.event("gate", "pre-import", "lint clean")

	period := opts.Period
	if period == 0 {
		var err error
		if period, err = derivePeriod(ctx, d.Top, opts.Parallelism); err != nil {
			return arts, fmt.Errorf("deriving a period from STA: %w (pass options.period)", err)
		}
	}

	res, err := core.Convert(ctx, d, core.Options{
		Backend:      opts.Backend,
		Mode:         core.Mode(opts.Mode),
		Period:       period,
		Margin:       opts.Margin,
		MuxTaps:      opts.MuxTaps,
		ManualGroups: opts.ManualGroups,
		SkipClean:    opts.SkipClean,
		Parallelism:  opts.Parallelism,
		Progress: func(stage string) {
			j.setStage(stage)
			if testStageHook != nil {
				testStageHook(ctx, stage)
			}
		},
		StageCheck: func(stage string, midFlow bool) error {
			rep := lint.Check(d.Top, lint.Options{MidFlow: midFlow, Parallelism: opts.Parallelism})
			if n := rep.Errors(); n > 0 {
				return fmt.Errorf("lint: %d error(s), first: %s", n, rep.Findings[0])
			}
			return nil
		},
	})
	if err != nil {
		return arts, err
	}

	// Post-export lint over the final design, cross-checked against the
	// constraints the run generated. The rule family follows the backend:
	// DS-* (reusing the flow's derived control-network IR) after a
	// desynchronization, TP-* after a two-phase conversion.
	lopts := lint.Options{Constraints: res.Constraints, Parallelism: opts.Parallelism}
	if res.Backend == core.BackendDesync {
		lopts.Desync = true
		lopts.Network = res.Network
	} else {
		lopts.TwoPhase = true
	}
	lrep := lint.Check(d.Top, lopts)
	if lj, err := lrep.JSON(); err == nil {
		arts[ArtifactLint] = lj
	}
	if n := lrep.Errors(); n > 0 {
		return arts, fmt.Errorf("post-export lint gate: %d error(s), first: %s", n, lrep.Findings[0])
	}
	j.event("gate", "lint", "post-export lint clean")

	// The remaining gates model the handshake control network, so they run
	// only for the desync backend. Canonicalization already zeroed the equiv
	// and faults knobs for other backends; if the submitter asked anyway, say
	// why nothing ran instead of silently passing.
	staticOK := false
	equivRan := false
	equivNote := ""
	if res.Backend == core.BackendDesync {
		// Static marked-graph gate: always on, polynomial time.
		srep, err := mga.Analyze(d.Top, res.Network, mga.Options{})
		if err != nil {
			return arts, fmt.Errorf("static marked-graph gate: %w", err)
		}
		var sbuf bytes.Buffer
		if err := srep.WriteJSON(&sbuf); err == nil {
			arts[ArtifactStatic] = sbuf.Bytes()
		}
		if n := srep.LintReport(srep.ModelFindings).Errors(); n > 0 {
			return arts, fmt.Errorf("static marked-graph gate: %d error finding(s)", n)
		}
		j.event("gate", "static", "liveness, safety and period verdicts clean")
		staticOK = true

		equivRan, equivNote, err = runEquivGate(ctx, j, d, res, opts, arts)
		if err != nil {
			return arts, err
		}
		if opts.Faults {
			if err := runFaultsGate(ctx, j, d, res, opts, period, arts); err != nil {
				return arts, err
			}
		}
	} else {
		j.event("note", "static", "marked-graph gates model the handshake control network; not applicable to the "+res.Backend+" backend")
		if j.req.Options.Equiv || j.req.Options.Faults {
			j.event("note", "gates", "equiv and faults gates are desync-only; dropped at canonicalization")
		}
	}

	arts[ArtifactNetlist] = []byte(verilog.Write(d))
	arts[ArtifactConstraints] = []byte(res.Constraints.Write())
	sum := Summary{
		Design: d.Top.Name, Gen: j.req.Gen, Lib: j.req.Lib,
		CacheKey: j.key, Options: canonical,
		Period: period, Regions: res.Grouping.Groups,
		Cleaned: res.CleanedCells, FFs: res.Substitution.FFs,
		UnderMargin: res.UnderMargin, LintErrors: lrep.Errors(),
		StaticOK: staticOK, EquivRan: equivRan, EquivNote: equivNote,
		FaultsRan: opts.Faults,
	}
	if res.Insert != nil {
		sum.Controllers = res.Insert.Controllers
		sum.DelayCells = res.Insert.DelayCells
	}
	sum.Artifacts = artifactNames(arts)
	// result.json names itself in the artifact list.
	sum.Artifacts = append(sum.Artifacts, ArtifactResult)
	sj, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return arts, err
	}
	arts[ArtifactResult] = append(sj, '\n')
	for _, name := range sum.Artifacts {
		j.event("artifact", "", name)
	}
	return arts, nil
}

// runEquivGate runs the exhaustive marked-graph exploration when requested
// and within the marking budget's reach, mirroring drdesync's downgrade
// discipline: past the estimate, the static verdicts stand alone and the
// job says so in an explicit note instead of truncating a search.
func runEquivGate(ctx context.Context, j *job, d *netlist.Design, res *core.Result,
	opts FlowOptions, arts map[string][]byte) (ran bool, note string, err error) {
	if !opts.Equiv {
		return false, "", nil
	}
	budget := opts.EquivMaxStates
	if budget <= 0 {
		budget = equiv.DefaultMaxStates
	}
	if est := mga.StateEstimate(res.Grouping.Groups); est > uint64(budget) {
		note = fmt.Sprintf("state estimate %d exceeds the %d-marking budget; static verdicts stand alone", est, budget)
		j.event("note", "equiv", note)
		return false, note, nil
	}
	m, err := equiv.FromNetwork(d.Top, res.Network)
	if err != nil {
		return false, "", fmt.Errorf("equiv gate: %w", err)
	}
	eres, err := m.Explore(ctx, equiv.ExploreOptions{
		MaxStates: opts.EquivMaxStates, Parallelism: opts.Parallelism,
	})
	if err != nil {
		return false, "", fmt.Errorf("equiv gate: %w", err)
	}
	var ebuf bytes.Buffer
	if err := eres.WriteJSON(&ebuf); err == nil {
		arts[ArtifactEquiv] = ebuf.Bytes()
	}
	if n := eres.Report(m.Findings).Errors(); n > 0 {
		return true, "", fmt.Errorf("equiv gate: %d error finding(s)", n)
	}
	if eres.Truncated {
		note = fmt.Sprintf("truncated at %d markings; properties hold only up to this bound", eres.States)
	}
	j.event("gate", "equiv", "deadlock-freedom, phase safety and flow equivalence clean")
	return true, note, nil
}

// runFaultsGate runs the default delay + control-stuck-at campaign against
// the freshly desynchronized design and attaches the report. Escapes do not
// fail the job — the report is the product — matching drdesync -faults.
func runFaultsGate(ctx context.Context, j *job, d *netlist.Design, res *core.Result,
	opts FlowOptions, period float64, arts map[string][]byte) error {
	c, err := faults.NewCampaign(ctx, d.Top, faults.Config{
		Stimulus:      faults.ResetStimulus(d.Top, 0),
		Horizon:       2 + period*float64(opts.FaultCycles)*6,
		QuiescenceGap: 8 * period,
		SetupGuard:    true,
		Parallelism:   opts.Parallelism,
	})
	if err != nil {
		return fmt.Errorf("fault campaign: %w", err)
	}
	list := c.DelayFaults(40, opts.FaultsPerRegion)
	list = append(list, c.ControlStuckFaults()...)
	rep, err := c.Run(ctx, list)
	if err != nil {
		return fmt.Errorf("fault campaign: %w", err)
	}
	var fbuf bytes.Buffer
	if err := rep.WriteJSON(&fbuf); err == nil {
		arts[ArtifactFaults] = fbuf.Bytes()
	}
	j.event("gate", "faults", fmt.Sprintf("campaign ran %d faults", len(list)))
	return nil
}

// derivePeriod measures the input design's synchronous clock period the way
// the experiment flows do: the worst launch-to-capture budget over all
// regions at the worst corner, with a 5% clock margin.
func derivePeriod(ctx context.Context, m *netlist.Module, parallelism int) (float64, error) {
	rds, err := sta.RegionDelays(ctx, m, netlist.Worst, sta.Options{})
	if err != nil {
		return 0, err
	}
	p := 0.0
	for _, rd := range rds {
		if b := rd.Budget(); b > p {
			p = b
		}
	}
	if p <= 0 {
		return 0, fmt.Errorf("no launch-to-capture budgets found")
	}
	return p * 1.05, nil
}
