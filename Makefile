# Build and verification entry points. `make check` is the CI gate:
# vet, the static lint gate, the full test suite under the race detector,
# and the fault-campaign smoke guard (any escaped delay or stuck-at fault
# fails the build).

GO ?= go

.PHONY: all build test check lint fuzz bench faults

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static verification: repolint enforces the repo's own coding conventions,
# drlint verifies both example designs before and (via the flow's built-in
# gates) after desynchronization.
lint:
	$(GO) run ./cmd/repolint
	$(GO) run ./cmd/drlint -gen dlx
	$(GO) run ./cmd/drlint -gen arm

check: lint
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run XXX -bench 'BenchmarkFaultCampaignSmoke|BenchmarkLintClean' -benchtime 1x .

# Short fuzz passes over the three text front ends; corpora are committed
# under internal/{verilog,liberty,sdc}/testdata/fuzz.
fuzz:
	$(GO) test ./internal/verilog/ -fuzz FuzzRead -fuzztime 20s
	$(GO) test ./internal/liberty/ -fuzz FuzzParse -fuzztime 20s
	$(GO) test ./internal/sdc/ -fuzz FuzzParse -fuzztime 20s

bench:
	$(GO) test -run XXX -bench . -benchtime 1x .

faults:
	$(GO) run ./cmd/experiments -faults
