package main

import (
	"context"
	"fmt"
	"os"
	"sort"

	"desync/internal/core"
	"desync/internal/lint"
	"desync/internal/netlist"
	"desync/internal/twophase"
)

// desyncGates reports the desynchronization-specific flow results and runs
// the post-export verification pipeline for the desync backend: the DS-*
// lint family, the always-on static marked-graph gate, the optional
// exhaustive -equiv gate and the optional -faults campaign.
func desyncGates(ctx context.Context, d *netlist.Design, res *core.Result, o runOpts) error {
	var nodes []int
	for _, g := range res.DDG.Nodes {
		nodes = append(nodes, g)
	}
	sort.Ints(nodes)
	for _, g := range nodes {
		fmt.Printf("  region %d: succs %v, comb %.3f ns, delay element %d levels\n",
			g, res.DDG.Succs[g], res.RegionDelays[g].CombMax, res.DelayLevels[g])
	}
	fmt.Printf("controllers: %d, C-tree cells: %d, delay cells: %d\n",
		res.Insert.Controllers, res.Insert.CTreeCells, res.Insert.DelayCells)
	fmt.Printf("control network: %d regions derived, insert-claim cross-check clean\n",
		len(res.Network.Regions))

	// Post-export lint gate: the full DS-* family over the final design,
	// cross-checked against the constraints the run itself generated and
	// reusing the control-network IR the flow already derived. When the
	// margin-bump loop gave up and shipped under margin with an advisory,
	// the DS-MARGIN findings restate that advisory: demote them to warnings
	// so the acknowledged degradation still exits 0.
	rep := lint.Check(d.Top, lint.Options{
		Desync: true, Constraints: res.Constraints, Network: res.Network,
		Parallelism: o.parallelism,
	})
	if len(res.UnderMargin) > 0 {
		for i := range rep.Findings {
			if rep.Findings[i].Rule == lint.RuleMargin {
				rep.Findings[i].Severity = lint.Warning
			}
		}
	}
	if err := lintGate("post-export", rep, os.Stderr); err != nil {
		return err
	}

	// Static marked-graph gate: always on. Polynomial-time liveness,
	// safety and throughput verdicts over the inserted control network,
	// plus the estimate that decides whether the exhaustive -equiv gate's
	// marking budget can reach the design at all.
	srep, err := staticGate(d, res.Network, os.Stdout, os.Stderr)
	if err != nil {
		return err
	}

	if o.equivGate && equivWithinReach(srep, o.equivMaxStates, os.Stderr) {
		if err := equivGate(ctx, d, res.Network, o, os.Stdout, os.Stderr); err != nil {
			return err
		}
	}

	if o.faults {
		if err := runFaultCampaign(ctx, d, res, o, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// twophaseGates reports the two-phase generator's sizing and runs the
// post-export verification for the twophase backend: the TP-* lint family
// cross-checked against the generated phase-clock constraints. The
// marked-graph, -equiv and -faults gates model handshake controllers, which
// this backend does not insert, so requesting them prints a notice instead
// of silently passing.
func twophaseGates(d *netlist.Design, res *core.Result, o runOpts) error {
	tp, ok := res.BackendResult.(*twophase.Result)
	if !ok {
		return fmt.Errorf("twophase backend returned %T, want *twophase.Result", res.BackendResult)
	}
	fmt.Printf("two-phase generator: ring %d levels, non-overlap %d levels, period %.3f ns (non-overlap gap %.3f ns)\n",
		tp.RingLevels, tp.NovLevels, tp.Period, tp.NonOverlap)
	fmt.Printf("phase distribution: %d regions, %d generator cells, %d distribution buffers\n",
		len(tp.Regions), tp.GenCells, tp.DistBufs)

	rep := lint.Check(d.Top, lint.Options{
		TwoPhase: true, Constraints: res.Constraints,
		Parallelism: o.parallelism,
	})
	if err := lintGate("post-export", rep, os.Stderr); err != nil {
		return err
	}

	for _, g := range []struct {
		flag      string
		requested bool
	}{{"-equiv", o.equivGate}, {"-faults", o.faults}} {
		if g.requested {
			fmt.Fprintf(os.Stderr, "drdesync: %s models the handshake control network; not applicable to the twophase backend, skipped\n", g.flag)
		}
	}
	return nil
}
