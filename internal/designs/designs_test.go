package designs

import (
	"context"
	"fmt"
	"math"
	"testing"

	"desync/internal/logic"
	"desync/internal/netlist"
	"desync/internal/sim"
	"desync/internal/sta"
	"desync/internal/stdcells"
)

func hs() *netlist.Library { return stdcells.New(stdcells.HighSpeed) }

func TestEncodeDecodeRoundTrip(t *testing.T) {
	w := Encode(OpADD, 3, 1, 2, 0)
	if w>>12 != OpADD || w>>9&7 != 3 || w>>6&7 != 1 || w>>3&7 != 2 {
		t.Fatalf("ADD encoding wrong: %04x", w)
	}
	w = Encode(OpADDI, 5, 4, 0, -3)
	if w&0x3f != 0x3d {
		t.Fatalf("negative imm encoding wrong: %04x", w)
	}
	if sext6(0x3d) != 0xfffd {
		t.Fatalf("sext6 wrong: %04x", sext6(0x3d))
	}
	if sext9(0x1fe) != 0xfffe {
		t.Fatalf("sext9 wrong: %04x", sext9(0x1fe))
	}
}

func TestModelBasicOps(t *testing.T) {
	m := NewModel(TestProgram())
	m.Run(60)
	if m.Regs[1] != 5 || m.Regs[2] != 7 {
		t.Fatalf("LI failed: r1=%d r2=%d", m.Regs[1], m.Regs[2])
	}
	if m.Regs[3] != 12 {
		t.Fatalf("ADD failed: r3=%d", m.Regs[3])
	}
	if m.Regs[4] != 5 {
		t.Fatalf("XOR chain failed: r4=%d", m.Regs[4])
	}
	if m.Regs[5] != 13 {
		t.Fatalf("ADDI failed: r5=%d", m.Regs[5])
	}
	if m.Regs[6] != 12 {
		t.Fatalf("SW/LW round trip failed: r6=%d", m.Regs[6])
	}
	if m.DMem[2] != 12 {
		t.Fatalf("SW failed: dmem[2]=%d", m.DMem[2])
	}
	if m.Regs[7] < 2 {
		t.Fatalf("loop not incrementing: r7=%d", m.Regs[7])
	}
	// The loop keeps running: r7 grows with more cycles.
	before := m.Regs[7]
	m.Run(40)
	if m.Regs[7] <= before {
		t.Fatalf("loop stalled: r7 %d -> %d", before, m.Regs[7])
	}
}

func TestBuildDLXStructure(t *testing.T) {
	lib := hs()
	d, err := BuildDLX(lib, TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	st := d.Top.ComputeStats()
	if st.FFs < 500 {
		t.Fatalf("DLX too small: %d FFs", st.FFs)
	}
	if st.CombGates < 1500 {
		t.Fatalf("DLX too small: %d comb gates", st.CombGates)
	}
	if errs := d.Top.Check(); len(errs) > 0 {
		t.Fatalf("check: %v", errs[0])
	}
	// Stage D buses exist for the grouping heuristic.
	for _, base := range []string{"if_d[0]", "id_d[0]", "ex_d[0]", "mem_d[0]"} {
		if d.Top.Net(base) == nil {
			t.Fatalf("stage bus net %s missing", base)
		}
	}
}

// dlxPeriod picks a safe clock period from STA.
func dlxPeriod(t *testing.T, d *netlist.Design) float64 {
	t.Helper()
	rds, err := sta.RegionDelays(context.Background(), d.Top, netlist.Worst, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, rd := range rds {
		if b := rd.Budget(); b > worst {
			worst = b
		}
	}
	if worst <= 0 {
		t.Fatal("no timing budget found")
	}
	return worst * 1.15
}

// The gate-level DLX must match the golden model cycle for cycle.
func TestDLXMatchesModel(t *testing.T) {
	lib := hs()
	prog := TestProgram()
	d, err := BuildDLX(lib, prog)
	if err != nil {
		t.Fatal(err)
	}
	period := dlxPeriod(t, d)
	cycles := 60

	s, err := sim.New(d.Top, sim.Config{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	s.Drive("rstn", logic.L, 0)
	s.Drive("rstn", logic.H, period*0.4)
	s.Clock("clk", period, 0, period*(float64(cycles)+0.6))
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}

	model := NewModel(prog)
	steps := len(s.Captures["pc_r[0]"])
	if steps < cycles-2 {
		t.Fatalf("only %d captured cycles", steps)
	}
	model.Run(steps)

	// PC trace equality, cycle by cycle.
	for k := 0; k < steps; k++ {
		var pc uint16
		for i := 0; i < PCBits; i++ {
			caps := s.Captures[fmt.Sprintf("pc_r[%d]", i)]
			if caps[k] == logic.H {
				pc |= 1 << uint(i)
			}
		}
		if pc != model.Trace[k] {
			t.Fatalf("cycle %d: gate-level PC %d, model PC %d", k, pc, model.Trace[k])
		}
	}
	// Architectural state equality at the end.
	for r := 0; r < 8; r++ {
		got := s.Vector(fmt.Sprintf("rf%d_q", r), 16)
		if !got.Known() {
			t.Fatalf("r%d unknown: %v", r, got)
		}
		if uint16(got.Uint()) != model.Regs[r] {
			t.Fatalf("r%d = %d, model %d", r, got.Uint(), model.Regs[r])
		}
	}
	for w := 0; w < 16; w++ {
		got := s.Vector(fmt.Sprintf("dm%d_q", w), 16)
		if uint16(got.Uint()) != model.DMem[w] {
			t.Fatalf("dmem[%d] = %d, model %d", w, got.Uint(), model.DMem[w])
		}
	}
	// The watch bus mirrors R7.
	if uint16(s.Vector("watch", 16).Uint()) != model.Regs[7] {
		t.Fatal("watch bus does not mirror R7")
	}
}

func TestDLXTimingSane(t *testing.T) {
	lib := hs()
	d, err := BuildDLX(lib, TestProgram())
	if err != nil {
		t.Fatal(err)
	}
	g, err := sta.Build(d.Top, sta.Options{Corner: netlist.Worst})
	if err != nil {
		t.Fatal(err)
	}
	r := g.Analyze()
	worst := r.WorstEndpointArrival()
	if worst < 0.5 || math.IsInf(worst, 0) {
		t.Fatalf("implausible critical path %.3f ns", worst)
	}
	// The paper's DLX has a ~13-level critical path; ours is a ripple-carry
	// design, so expect a comb depth of at least 10 gate levels.
	path := r.CriticalPath()
	if len(path) < 10 {
		t.Fatalf("critical path only %d steps", len(path))
	}
}

func TestDLXProgramTooLarge(t *testing.T) {
	lib := hs()
	big := make([]uint16, 1<<PCBits+1)
	if _, err := BuildDLX(lib, big); err == nil {
		t.Fatal("expected ROM overflow error")
	}
}

// A second program — Fibonacci — validates the gate-level DLX on different
// control and data behaviour.
func TestDLXRunsFibonacci(t *testing.T) {
	lib := hs()
	prog := FibProgram()
	d, err := BuildDLX(lib, prog)
	if err != nil {
		t.Fatal(err)
	}
	period := dlxPeriod(t, d)
	cycles := 70
	s, err := sim.New(d.Top, sim.Config{Corner: netlist.Best})
	if err != nil {
		t.Fatal(err)
	}
	s.Drive("rstn", logic.L, 0)
	s.Drive("rstn", logic.H, period*0.4)
	s.Clock("clk", period, 0, period*float64(cycles))
	if err := s.RunUntilQuiescent(); err != nil {
		t.Fatal(err)
	}
	steps := len(s.Captures["pc_r[0]"])
	model := NewModel(prog)
	model.Run(steps)
	for r := 1; r <= 4; r++ {
		got := uint16(s.Vector(fmt.Sprintf("rf%d_q", r), 16).Uint())
		if got != model.Regs[r] {
			t.Fatalf("r%d = %d, model %d after %d cycles", r, got, model.Regs[r], steps)
		}
	}
	for w := 0; w < 16; w++ {
		got := uint16(s.Vector(fmt.Sprintf("dm%d_q", w), 16).Uint())
		if got != model.DMem[w] {
			t.Fatalf("dmem[%d] = %d, model %d", w, got, model.DMem[w])
		}
	}
	// The model itself computed real Fibonacci numbers.
	fib := []uint16{1, 1, 2, 3, 5, 8, 13, 21}
	found := 0
	for _, v := range model.DMem {
		for _, f := range fib {
			if v == f {
				found++
				break
			}
		}
	}
	if found < 3 {
		t.Fatalf("no Fibonacci numbers landed in memory: %v", model.DMem)
	}
}
