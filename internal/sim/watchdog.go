package sim

// Runtime guards for desynchronized simulations. The happy-path checks of
// the flow (flow-equivalence comparison, golden-model runs) only say
// something when the run completes and produces data; the watchdog instead
// reports structured diagnostics the moment the handshake network stalls, a
// latch closes on still-settling data, or an unknown value reaches latched
// state — the three ways a broken matched delay or a hazard manifests at
// the gate level (§2.5, §4.6).

import (
	"fmt"
	"math"

	"desync/internal/netlist"
)

// DiagKind classifies a watchdog diagnostic.
type DiagKind string

const (
	// DiagDeadlock: the watched handshake nets stopped cycling long before
	// the run's horizon — the control network has quiesced (liveness loss).
	DiagDeadlock DiagKind = "deadlock"
	// DiagSetup: a latch closed while one of its data inputs had changed
	// within its setup window — the matched delay no longer covers the
	// region's logic.
	DiagSetup DiagKind = "setup-violation"
	// DiagXCapture: a sequential element latched an unknown (X) value after
	// the boot transient — corrupted state is propagating.
	DiagXCapture DiagKind = "x-capture"
)

// Diagnostic is one structured watchdog report: which guard fired, on which
// instance/net, and when.
type Diagnostic struct {
	Kind DiagKind
	// Stage names the reporting guard ("watchdog/<kind>"), keeping the
	// format aligned with the flow's FlowError staging.
	Stage  string
	Inst   string
	Net    string
	Time   float64
	Detail string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: t=%.4f", d.Kind, d.Time)
	if d.Inst != "" {
		s += " inst=" + d.Inst
	}
	if d.Net != "" {
		s += " net=" + d.Net
	}
	if d.Detail != "" {
		s += ": " + d.Detail
	}
	return s
}

// WatchdogConfig enables the runtime guards.
type WatchdogConfig struct {
	// HandshakeNets are nets expected to keep cycling for the whole run
	// (typically the region request nets). Empty disables deadlock
	// detection.
	HandshakeNets []string
	// QuiescenceGap is the maximum tolerated gap (ns) between the last
	// toggle of every handshake net and the run horizon; 0 disables.
	QuiescenceGap float64
	// SetupGuard checks, at every latch closing edge, that no data input
	// changed within the cell's setup window.
	SetupGuard bool
	// XCaptureAfter reports captures of X at times strictly later than this;
	// negative disables the guard (a design boots through X).
	XCaptureAfter float64
	// MaxDiags bounds the report; 0 falls back to the simulator's
	// Config.MaxDiags (whose own zero value means DefaultMaxDiags).
	MaxDiags int
}

type watchdog struct {
	cfg     WatchdogConfig
	s       *Simulator
	diags   []Diagnostic
	watched map[int]bool
	// lastToggle tracks watched-net activity; lastChange tracks every net
	// (for the setup guard).
	lastToggle map[int]float64
	lastChange []float64
}

// Watch arms the runtime guards on this simulator. It must be called before
// Run; calling it again replaces the previous configuration and clears
// recorded diagnostics.
func (s *Simulator) Watch(cfg WatchdogConfig) error {
	w := &watchdog{
		cfg:        cfg,
		s:          s,
		watched:    map[int]bool{},
		lastToggle: map[int]float64{},
		lastChange: make([]float64, len(s.nets)),
	}
	for _, name := range cfg.HandshakeNets {
		n := s.M.Net(name)
		if n == nil {
			return fmt.Errorf("sim: watchdog: no net %q", name)
		}
		idx := s.netIdx[n]
		w.watched[idx] = true
		w.lastToggle[idx] = 0
	}
	s.wd = w
	return nil
}

// Diagnostics returns the watchdog reports accumulated so far.
func (s *Simulator) Diagnostics() []Diagnostic {
	if s.wd == nil {
		return nil
	}
	return s.wd.diags
}

func (w *watchdog) report(d Diagnostic) {
	limit := w.cfg.MaxDiags
	if limit <= 0 {
		limit = w.s.cfg.MaxDiags // New resolved the zero value already
	}
	if len(w.diags) < limit {
		d.Stage = "watchdog/" + string(d.Kind)
		w.diags = append(w.diags, d)
	}
}

func (w *watchdog) noteChange(idx int, t float64) {
	w.lastChange[idx] = t
	if w.watched[idx] {
		w.lastToggle[idx] = t
	}
}

// checkSetup runs at a latch closing edge: any data input that changed
// within the cell's setup window means the matched delay element no longer
// covers this path.
func (w *watchdog) checkSetup(in *netlist.Inst) {
	if !w.cfg.SetupGuard {
		return
	}
	setup := in.Cell.Setup.At(w.s.cfg.Corner)
	if setup <= 0 {
		return
	}
	for _, p := range in.Cell.Pins {
		if p.Dir != netlist.In || p.Class != netlist.ClassData {
			continue
		}
		n := in.Conn(p.Name)
		if n == nil {
			continue
		}
		idx := w.s.netIdx[n]
		if age := w.s.now - w.lastChange[idx]; age < setup {
			w.report(Diagnostic{
				Kind: DiagSetup, Inst: in.Name, Net: n.Name, Time: w.s.now,
				Detail: fmt.Sprintf("data changed %.4f ns before closing edge (setup %.4f)", age, setup),
			})
		}
	}
}

func (w *watchdog) noteXCapture(in *netlist.Inst, t float64) {
	if w.cfg.XCaptureAfter < 0 || t <= w.cfg.XCaptureAfter {
		return
	}
	w.report(Diagnostic{
		Kind: DiagXCapture, Inst: in.Name, Time: t,
		Detail: fmt.Sprintf("latched X after boot threshold %.4f ns", w.cfg.XCaptureAfter),
	})
}

// checkQuiescence runs when a Run(until) call completes: if every watched
// handshake net stopped toggling more than QuiescenceGap before the
// horizon, the control network has deadlocked. The stalest net (and its
// driver) is reported.
func (w *watchdog) checkQuiescence(until float64) {
	if w.cfg.QuiescenceGap <= 0 || len(w.watched) == 0 || math.IsInf(until, 1) {
		return
	}
	stalest, at := -1, math.Inf(1)
	for idx, t := range w.lastToggle {
		if t < at {
			stalest, at = idx, t
		}
	}
	if stalest < 0 || until-at <= w.cfg.QuiescenceGap {
		return
	}
	n := w.s.nets[stalest]
	inst := ""
	if n.Driver.Inst != nil {
		inst = n.Driver.Inst.Name
	}
	w.report(Diagnostic{
		Kind: DiagDeadlock, Inst: inst, Net: n.Name, Time: at,
		Detail: fmt.Sprintf("handshake stopped cycling %.4f ns before horizon %.4f", until-at, until),
	})
}
